#!/usr/bin/env python3
"""Markdown link checker for the snowkit docs set.

Validates every inline link/image in the given markdown files:

  * relative links must resolve to an existing file or directory
    (relative to the linking file), and a `#fragment` must match a
    heading's GitHub-style anchor in the target markdown file;
  * bare `#fragment` links must match a heading in the SAME file;
  * absolute http(s) links are collected but NOT fetched by default
    (CI must not flake on third-party outages); `--external` HEAD-checks
    them for local runs.

Links inside fenced code blocks and inline code spans are ignored.
Exit status: 0 iff no broken links.  Used by the CI `docs` job:

    python3 tools/check_md_links.py README.md docs/*.md
"""

import argparse
import functools
import pathlib
import re
import sys

FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
# Inline links/images: [text](target "title") — target ends at space or ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (close enough for this repo)."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def strip_code(lines):
    """Yields one output line per input line (so enumerate() keeps real line
    numbers): fenced-block lines come out blank, code spans blanked."""
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            yield ""
            continue
        if in_fence:
            yield ""
            continue
        yield CODE_SPAN_RE.sub("", line)


@functools.lru_cache(maxsize=None)
def anchors_of(path: pathlib.Path) -> frozenset:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_anchor(m.group(2)))
    return frozenset(anchors)


def check_file(md: pathlib.Path, externals: list) -> list:
    problems = []
    text = md.read_text(encoding="utf-8")
    for lineno, line in enumerate(strip_code(text.splitlines()), start=1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://")):
                externals.append((md, lineno, target))
                continue
            if target.startswith("mailto:"):
                continue
            if target.startswith("#"):
                if github_anchor(target[1:]) not in anchors_of(md):
                    problems.append((md, lineno, target, "no such heading in this file"))
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append((md, lineno, target, "file not found"))
                continue
            if fragment and resolved.suffix.lower() in (".md", ".markdown"):
                if github_anchor(fragment) not in anchors_of(resolved):
                    problems.append(
                        (md, lineno, target, f"no heading for #{fragment} in {resolved.name}")
                    )
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", type=pathlib.Path)
    ap.add_argument("--external", action="store_true",
                    help="also HEAD-check http(s) links (off in CI on purpose)")
    args = ap.parse_args()

    problems, externals = [], []
    checked = 0
    for md in args.files:
        if not md.exists():
            problems.append((md, 0, str(md), "input file missing"))
            continue
        problems.extend(check_file(md, externals))
        checked += 1

    if args.external:
        import urllib.request

        for md, lineno, url in externals:
            try:
                req = urllib.request.Request(url, method="HEAD",
                                             headers={"User-Agent": "snowkit-linkcheck"})
                urllib.request.urlopen(req, timeout=10)
            except Exception as e:  # noqa: BLE001 — any failure is a broken link
                problems.append((md, lineno, url, f"external: {e}"))

    for md, lineno, target, why in problems:
        print(f"{md}:{lineno}: broken link '{target}' — {why}", file=sys.stderr)
    print(f"checked {checked} files: {len(problems)} broken, "
          f"{len(externals)} external links {'checked' if args.external else 'skipped'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
