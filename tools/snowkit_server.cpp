// snowkit_server: hosts one fleet process's share of a protocol deployment.
//
//   snowkit_server --config fleet.cfg --index 0
//
// Reads the SAME fleet file every other process reads (runtime/fleet.hpp),
// builds the named registry protocol on a NetRuntime owning this process's
// node partition (server shards split contiguously; the last process hosts
// the clients), serves traffic until a SHUTDOWN frame arrives from the
// driving client, then exits 0.  Any registry protocol works unmodified —
// the daemon contains zero per-protocol code.
//
// With --audit-dir the daemon records every message it sends or delivers
// through the flight recorder (src/audit), writing snowkit-audit-chunk-v1
// files for the offline snowkit_audit pipeline.  SIGTERM and SIGINT take
// the same clean-exit path as a SHUTDOWN frame — open audit chunks are
// flushed and sealed, so a terminated daemon never leaves a torn chunk.
//
// The client side of a fleet is usually `bench_harness --scenario
// net_loopback` (which spawns three of these on 127.0.0.1), but any program
// may build the same FleetConfig at client_index() and drive TxnClient /
// WorkloadDriver against the remote fleet.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#ifdef __linux__
#include <unistd.h>
#endif

#include "audit/capture.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace {

void usage() {
  std::printf(
      "usage: snowkit_server --config FILE --index N [--transport CSV]\n"
      "                      [--audit-dir DIR] [--quiet]\n"
      "\n"
      "  --config FILE    fleet file (see src/runtime/fleet.hpp for the format)\n"
      "  --index N        which fleet process this daemon is (0-based; must be\n"
      "                   one of the 'server' lines, not the client)\n"
      "  --transport CSV  TransportOptions overrides layered on the fleet file's\n"
      "                   transport line, same key=value[,key=value] grammar\n"
      "                   (e.g. io_threads=2,coalesce_max_frames=128); validated\n"
      "                   fail-fast before the runtime starts\n"
      "  --audit-dir DIR  record message traffic as snowkit-audit-chunk-v1\n"
      "                   files in DIR (see docs/AUDIT.md)\n"
      "  --wal-dir DIR    replicated fleets only (replicas 2): write each\n"
      "                   hosted replica's write-ahead log to DIR/node-N.wal\n"
      "                   so a SIGKILLed daemon recovers its shard on restart\n"
      "  --audit-sample N capture 1 of every N messages (default 1 = all)\n"
      "  --stats-json F   on clean shutdown, write the quiesced TransportStats\n"
      "                   snapshot to F as a flat JSON object (the same keys as\n"
      "                   the bench extras, e.g. tcp_reconnects) — churn tests\n"
      "                   read the SERVER side of a drop from this file\n"
      "  --quiet          suppress the startup/shutdown banner\n");
}

}  // namespace

int main(int argc, char** argv) {
  // The transport's own socket writes use MSG_NOSIGNAL, but this daemon
  // should never die of SIGPIPE from any fd (e.g. stderr piped to a dead
  // reader under a supervisor); EPIPE error returns are always preferable.
  std::signal(SIGPIPE, SIG_IGN);

  std::string config_path;
  std::string transport_csv;
  std::string audit_dir;
  std::string wal_dir;
  std::string stats_json;
  long audit_sample = 1;
  long index = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next();
    } else if (arg == "--index") {
      // Strict parse: "--index two" must be an argument error, not a silent
      // index 0 impersonating fleet process 0.
      const char* value = next();
      char* end = nullptr;
      index = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || index < 0) {
        std::fprintf(stderr, "error: --index value '%s' is not a non-negative integer\n", value);
        return 1;
      }
    } else if (arg == "--transport") {
      transport_csv = next();
    } else if (arg == "--audit-dir") {
      audit_dir = next();
    } else if (arg == "--wal-dir") {
      wal_dir = next();
    } else if (arg == "--stats-json") {
      stats_json = next();
    } else if (arg == "--audit-sample") {
      const char* value = next();
      char* end = nullptr;
      audit_sample = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || audit_sample < 1) {
        std::fprintf(stderr, "error: --audit-sample value '%s' is not a positive integer\n",
                     value);
        return 1;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (config_path.empty() || index < 0) {
    usage();
    return 1;
  }

  try {
    const snowkit::FleetConfig fleet = snowkit::parse_fleet_file(config_path);
    if (static_cast<std::size_t>(index) >= fleet.client_index()) {
      std::fprintf(stderr,
                   "error: index %ld is not a server process (fleet has %zu server "
                   "processes; the client process drives itself)\n",
                   index, fleet.server_processes());
      return 1;
    }

#ifdef __linux__
    // SIGTERM/SIGINT must flush audit chunks, so they cannot be handled in
    // an async-signal context (the flush allocates and locks).  Block them
    // here — BEFORE anything spawns a thread (AuditCapture's flusher,
    // NetRuntime's workers all inherit the mask) — then sigwait() on a
    // dedicated thread that routes the signal into the normal clean-exit
    // path.  SIGUSR1 is the private "run ended normally, stand down" wakeup.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGUSR1);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
#endif

    snowkit::NetOptions net_opts = fleet.net_options(static_cast<std::size_t>(index));
    if (!transport_csv.empty()) {
      // Layered on top of the fleet file's transport line; parse_csv
      // re-validates the combined result, so a bad override fails here with
      // a named field instead of misconfiguring a running daemon.
      net_opts.transport.parse_csv(transport_csv);
    }
    snowkit::NetRuntime rt(std::move(net_opts));

    std::unique_ptr<snowkit::audit::AuditCapture> capture;
    if (!audit_dir.empty()) {
      snowkit::audit::CaptureOptions copts;
      copts.dir = audit_dir;
      copts.process_index = static_cast<std::uint32_t>(index);
      copts.protocol = fleet.protocol;
      copts.num_servers = static_cast<std::uint32_t>(fleet.system.server_count());
      copts.fleet_text = snowkit::fleet_text(fleet);
      copts.sample_every = static_cast<std::uint64_t>(audit_sample);
      capture = std::make_unique<snowkit::audit::AuditCapture>(copts);
      rt.set_observer(capture.get());
    }

    snowkit::HistoryRecorder rec(fleet.system.num_objects);
    snowkit::BuildOptions options = fleet.options;
    // FileWals open lazily, so only the replicas this process owns ever
    // create files under --wal-dir.  The directory itself is created here:
    // the first append must not abort on a fresh deployment path.
    if (!wal_dir.empty()) {
      std::filesystem::create_directories(wal_dir);
      options.set("wal_dir", wal_dir);
    }
    auto sys = snowkit::build_protocol(fleet.protocol, rt, rec, fleet.system, options);

#ifdef __linux__
    std::thread signal_thread([&rt, &sigs] {
      int sig = 0;
      while (sigwait(&sigs, &sig) != 0) {
      }
      if (sig != SIGUSR1) rt.request_shutdown();
    });
#endif

    rt.start();

    if (!quiet) {
      std::size_t owned = 0;
      for (snowkit::NodeId id = 0; id < rt.node_count(); ++id) {
        if (rt.owns(id)) ++owned;
      }
      std::printf("[snowkit_server %ld] %s on %s:%u — hosting %zu of %zu nodes%s\n", index,
                  fleet.protocol.c_str(), fleet.processes[index].host.c_str(),
                  fleet.processes[index].port, owned, rt.node_count(),
                  audit_dir.empty() ? "" : " (audit capture on)");
      std::fflush(stdout);
    }

    rt.run_until_shutdown();

#ifdef __linux__
    // Wake the signal thread if no signal ever arrived: the process-directed
    // SIGUSR1 stays pending until its sigwait() consumes it.
    kill(getpid(), SIGUSR1);
    signal_thread.join();
#endif

    rt.stop();
    if (capture) capture->close();
    if (!stats_json.empty()) {
      // Quiesced snapshot (the runtime is stopped), so the counters are
      // exact.  Every extras value is numeric; emit numbers so jq callers
      // can compare without tonumber gymnastics.
      if (std::FILE* f = std::fopen(stats_json.c_str(), "w")) {
        std::fputs("{\n", f);
        const auto extras = rt.transport_stats().extras();
        for (std::size_t i = 0; i < extras.size(); ++i) {
          std::fprintf(f, "  \"%s\": %s%s\n", extras[i].first.c_str(),
                       extras[i].second.c_str(), i + 1 < extras.size() ? "," : "");
        }
        std::fputs("}\n", f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "snowkit_server: cannot write --stats-json %s\n",
                     stats_json.c_str());
      }
    }
    if (!quiet) {
      const snowkit::TransportStats stats = rt.transport_stats();
      std::printf("[snowkit_server %ld] shutdown (frames in %llu, bytes in %llu / out %llu, "
                  "%.2f frames/syscall over %zu io thread(s))\n",
                  index, static_cast<unsigned long long>(stats.frames_received),
                  static_cast<unsigned long long>(stats.bytes_received),
                  static_cast<unsigned long long>(stats.bytes_sent),
                  stats.frames_per_syscall(), stats.epoll_wakeups.size());
      if (capture) {
        const auto cs = capture->stats();
        std::printf("[snowkit_server %ld] audit: %llu events, %llu drops, %llu bytes in %llu "
                    "chunk(s)\n",
                    index, static_cast<unsigned long long>(cs.events),
                    static_cast<unsigned long long>(cs.drops),
                    static_cast<unsigned long long>(cs.bytes_written),
                    static_cast<unsigned long long>(cs.chunks));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "snowkit_server: %s\n", e.what());
    return 1;
  }
  return 0;
}
