// snowkit_server: hosts one fleet process's share of a protocol deployment.
//
//   snowkit_server --config fleet.cfg --index 0
//
// Reads the SAME fleet file every other process reads (runtime/fleet.hpp),
// builds the named registry protocol on a NetRuntime owning this process's
// node partition (server shards split contiguously; the last process hosts
// the clients), serves traffic until a SHUTDOWN frame arrives from the
// driving client, then exits 0.  Any registry protocol works unmodified —
// the daemon contains zero per-protocol code.
//
// The client side of a fleet is usually `bench_harness --scenario
// net_loopback` (which spawns three of these on 127.0.0.1), but any program
// may build the same FleetConfig at client_index() and drive TxnClient /
// WorkloadDriver against the remote fleet.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace {

void usage() {
  std::printf(
      "usage: snowkit_server --config FILE --index N [--quiet]\n"
      "\n"
      "  --config FILE   fleet file (see src/runtime/fleet.hpp for the format)\n"
      "  --index N       which fleet process this daemon is (0-based; must be\n"
      "                  one of the 'server' lines, not the client)\n"
      "  --quiet         suppress the startup/shutdown banner\n");
}

}  // namespace

int main(int argc, char** argv) {
  // The transport's own socket writes use MSG_NOSIGNAL, but this daemon
  // should never die of SIGPIPE from any fd (e.g. stderr piped to a dead
  // reader under a supervisor); EPIPE error returns are always preferable.
  std::signal(SIGPIPE, SIG_IGN);

  std::string config_path;
  long index = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next();
    } else if (arg == "--index") {
      // Strict parse: "--index two" must be an argument error, not a silent
      // index 0 impersonating fleet process 0.
      const char* value = next();
      char* end = nullptr;
      index = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || index < 0) {
        std::fprintf(stderr, "error: --index value '%s' is not a non-negative integer\n", value);
        return 1;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (config_path.empty() || index < 0) {
    usage();
    return 1;
  }

  try {
    const snowkit::FleetConfig fleet = snowkit::parse_fleet_file(config_path);
    if (static_cast<std::size_t>(index) >= fleet.client_index()) {
      std::fprintf(stderr,
                   "error: index %ld is not a server process (fleet has %zu server "
                   "processes; the client process drives itself)\n",
                   index, fleet.server_processes());
      return 1;
    }

    snowkit::NetRuntime rt(fleet.net_options(static_cast<std::size_t>(index)));
    snowkit::HistoryRecorder rec(fleet.system.num_objects);
    auto sys = snowkit::build_protocol(fleet.protocol, rt, rec, fleet.system, fleet.options);
    rt.start();

    if (!quiet) {
      std::size_t owned = 0;
      for (snowkit::NodeId id = 0; id < rt.node_count(); ++id) {
        if (rt.owns(id)) ++owned;
      }
      std::printf("[snowkit_server %ld] %s on %s:%u — hosting %zu of %zu nodes\n", index,
                  fleet.protocol.c_str(), fleet.processes[index].host.c_str(),
                  fleet.processes[index].port, owned, rt.node_count());
      std::fflush(stdout);
    }

    rt.run_until_shutdown();
    rt.stop();
    if (!quiet) {
      const auto stats = rt.net_stats();
      std::printf("[snowkit_server %ld] shutdown (frames in %llu, bytes in %llu / out %llu)\n",
                  index, static_cast<unsigned long long>(stats.frames_received),
                  static_cast<unsigned long long>(stats.bytes_received),
                  static_cast<unsigned long long>(stats.bytes_sent));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "snowkit_server: %s\n", e.what());
    return 1;
  }
  return 0;
}
