// snowkit_audit: offline audit/query pipeline over flight-recorder chunks.
//
//   snowkit_audit check  run/*.auditchunk             # re-run the checkers
//   snowkit_audit merge  -o run.audit run/*.auditchunk
//   snowkit_audit query  --slowest 3 run.audit        # latency provenance
//   snowkit_audit stats  run/*.auditchunk             # per-chunk accounting
//
// check/query accept either raw chunk files (merged on the fly) or a merged
// file produced by `merge`.  All subcommands take --json for machine
// consumption (CI gates these with jq).
//
// Exit codes: 0 clean, 1 a checker flagged a violation, 2 usage or load
// error (torn/corrupt chunk, unknown protocol, ...).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "audit/check.hpp"
#include "audit/chunk.hpp"
#include "audit/merge.hpp"
#include "audit/query.hpp"

namespace {

using namespace snowkit;
using namespace snowkit::audit;

void usage() {
  std::printf(
      "usage: snowkit_audit <check|merge|query|stats> [options] FILE...\n"
      "\n"
      "subcommands:\n"
      "  check   merge inputs and re-run the tag-order / SNOW / strict-\n"
      "          serializability checkers; exit 1 if any violation is flagged\n"
      "  merge   merge chunk files into one self-contained .audit file (-o OUT)\n"
      "  query   latency provenance: per-leg / per-payload percentiles and the\n"
      "          slowest reads broken down leg by leg\n"
      "  stats   per-chunk capture accounting (events, drops, history)\n"
      "\n"
      "options:\n"
      "  --json            machine-readable output\n"
      "  --fleet FILE      fleet config overriding the one embedded in chunks\n"
      "  --slowest N       number of slowest reads to attribute (query; default 5)\n"
      "  -o OUT            output path (merge)\n"
      "  --max-search-txns N   exact-search size cutoff (check; default 48)\n"
      "  --max-states N        exact-search state cap (check; default 400000)\n"
      "\n"
      "inputs: .auditchunk files (any number, any process order) or one merged\n"
      ".audit file for check/query.\n");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jstr(const std::string& s) { return "\"" + json_escape(s) + "\""; }

std::string jstrs(const std::vector<std::string>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ", ";
    out += jstr(v[i]);
  }
  return out + "]";
}

std::string jsummary(const LatencySummary& s) {
  return "{\"count\": " + std::to_string(s.count) +
         ", \"mean_ns\": " + std::to_string(static_cast<std::uint64_t>(s.mean_ns)) +
         ", \"p50_ns\": " + std::to_string(s.p50_ns) + ", \"p95_ns\": " +
         std::to_string(s.p95_ns) + ", \"p99_ns\": " + std::to_string(s.p99_ns) +
         ", \"max_ns\": " + std::to_string(s.max_ns) + "}";
}

struct Args {
  std::string cmd;
  std::vector<std::string> files;
  std::string fleet_path;
  std::string out_path;
  bool json{false};
  std::size_t slowest{5};
  CheckMergedOptions check_opts;
};

int parse_args(int argc, char** argv, Args& a) {
  if (argc < 2) {
    usage();
    return 2;
  }
  a.cmd = argv[1];
  if (a.cmd == "--help" || a.cmd == "-h") {
    usage();
    return -1;  // clean exit
  }
  if (a.cmd != "check" && a.cmd != "merge" && a.cmd != "query" && a.cmd != "stats") {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n\n", a.cmd.c_str());
    usage();
    return 2;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      a.json = true;
    } else if (arg == "--fleet") {
      a.fleet_path = next();
    } else if (arg == "-o" || arg == "--out") {
      a.out_path = next();
    } else if (arg == "--slowest") {
      a.slowest = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-search-txns") {
      a.check_opts.max_search_txns = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-states") {
      a.check_opts.max_states = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return -1;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n\n", arg.c_str());
      usage();
      return 2;
    } else {
      a.files.push_back(arg);
    }
  }
  if (a.files.empty()) {
    std::fprintf(stderr, "error: no input files\n");
    return 2;
  }
  if (a.cmd == "merge" && a.out_path.empty()) {
    std::fprintf(stderr, "error: merge needs -o OUT\n");
    return 2;
  }
  return 0;
}

std::string read_fleet_override(const std::string& path) {
  if (path.empty()) return "";
  const auto bytes = audit::read_file(path);
  return std::string(bytes.begin(), bytes.end());
}

int cmd_check(const Args& a) {
  const MergedAudit m = load_inputs(a.files, read_fleet_override(a.fleet_path));
  const AuditVerdict v = check_merged(m, a.check_opts);
  bool all_expected = !v.findings.empty();
  for (const auto& f : v.findings) all_expected = all_expected && f.expected;

  if (a.json) {
    std::string out = "{\n";
    out += "  \"schema\": \"snowkit-audit-check-v1\",\n";
    out += "  \"protocol\": " + jstr(v.protocol) + ",\n";
    out += std::string("  \"violation\": ") + (v.violation ? "true" : "false") + ",\n";
    out += std::string("  \"inconclusive\": ") + (v.inconclusive ? "true" : "false") + ",\n";
    out += std::string("  \"expected_only\": ") + (all_expected ? "true" : "false") + ",\n";
    out += "  \"checks_run\": " + jstrs(v.checks_run) + ",\n";
    out += "  \"findings\": [";
    for (std::size_t i = 0; i < v.findings.size(); ++i) {
      const auto& f = v.findings[i];
      if (i) out += ", ";
      out += "{\"checker\": " + jstr(f.checker) + ", \"explanation\": " + jstr(f.explanation) +
             ", \"expected\": " + (f.expected ? "true" : "false") + "}";
    }
    out += "],\n";
    out += "  \"notes\": " + jstrs(v.notes) + ",\n";
    out += "  \"events\": " + std::to_string(m.total_events) + ",\n";
    out += "  \"drops\": " + std::to_string(m.total_drops) + ",\n";
    out += "  \"processes\": " + std::to_string(m.processes) + ",\n";
    out += "  \"unmatched_recvs\": " + std::to_string(m.unmatched_recvs) + ",\n";
    out += "  \"unmatched_sends\": " + std::to_string(m.unmatched_sends) + ",\n";
    out += "  \"warnings\": " + jstrs(m.warnings) + "\n";
    out += "}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("protocol %s: %zu events from %u process(es), %llu drops\n", v.protocol.c_str(),
                static_cast<std::size_t>(m.total_events), m.processes,
                static_cast<unsigned long long>(m.total_drops));
    std::printf("checks run: %s\n",
                v.checks_run.empty() ? "(none)" : [&] {
                  std::string s;
                  for (const auto& c : v.checks_run) s += (s.empty() ? "" : ", ") + c;
                  return s;
                }().c_str());
    for (const auto& w : m.warnings) std::printf("warning: %s\n", w.c_str());
    for (const auto& n : v.notes) std::printf("note: %s\n", n.c_str());
    for (const auto& f : v.findings) {
      std::printf("%s (%s): %s\n", f.expected ? "EXPECTED divergence" : "VIOLATION",
                  f.checker.c_str(), f.explanation.c_str());
    }
    if (!v.violation) {
      std::printf(v.inconclusive ? "no violation found (inconclusive)\n" : "ok\n");
    }
  }
  return v.violation ? 1 : 0;
}

int cmd_merge(const Args& a) {
  std::vector<ChunkFile> chunks;
  for (const auto& p : a.files) chunks.push_back(load_chunk(p));
  const MergedAudit m = merge_chunks(chunks, read_fleet_override(a.fleet_path));
  write_file_atomic(a.out_path, encode_merged(m));
  std::printf(
      "merged %zu chunks from %u process(es): %zu trace actions, %llu drops, "
      "%llu unmatched recvs, %llu unmatched sends, history %s -> %s\n",
      chunks.size(), m.processes, m.trace.size(),
      static_cast<unsigned long long>(m.total_drops),
      static_cast<unsigned long long>(m.unmatched_recvs),
      static_cast<unsigned long long>(m.unmatched_sends), m.history ? "yes" : "NO",
      a.out_path.c_str());
  for (const auto& w : m.warnings) std::printf("warning: %s\n", w.c_str());
  return 0;
}

int cmd_query(const Args& a) {
  const MergedAudit m = load_inputs(a.files, read_fleet_override(a.fleet_path));
  const QueryReport q = query_merged(m, a.slowest);

  if (a.json) {
    std::string out = "{\n";
    out += "  \"schema\": \"snowkit-audit-query-v1\",\n";
    out += "  \"protocol\": " + jstr(m.protocol) + ",\n";
    out += "  \"paired_messages\": " + std::to_string(q.paired_messages) + ",\n";
    out += "  \"reads\": " + jsummary(q.reads) + ",\n";
    out += "  \"writes\": " + jsummary(q.writes) + ",\n";
    auto leg_array = [](const std::vector<LegStats>& legs) {
      std::string s = "[";
      for (std::size_t i = 0; i < legs.size(); ++i) {
        if (i) s += ", ";
        s += "{\"name\": " + jstr(legs[i].name) + ", \"latency\": " + jsummary(legs[i].lat) + "}";
      }
      return s + "]";
    };
    out += "  \"legs\": " + leg_array(q.legs) + ",\n";
    out += "  \"payloads\": " + leg_array(q.payloads) + ",\n";
    out += "  \"slowest_reads\": [";
    for (std::size_t i = 0; i < q.slowest.size(); ++i) {
      const auto& p = q.slowest[i];
      if (i) out += ", ";
      out += "{\"txn\": " + std::to_string(p.txn) +
             ", \"latency_ns\": " + std::to_string(p.latency) +
             ", \"rounds\": " + std::to_string(p.rounds) +
             ", \"accounted_ns\": " + std::to_string(p.accounted) + ", \"legs\": [";
      for (std::size_t j = 0; j < p.legs.size(); ++j) {
        const auto& l = p.legs[j];
        if (j) out += ", ";
        out += "{\"leg\": " + jstr(l.leg) + ", \"payload\": " + jstr(l.payload) +
               ", \"server\": " +
               (l.server == kInvalidNode ? std::string("-1") : std::to_string(l.server)) +
               ", \"duration_ns\": " + std::to_string(l.duration) + "}";
      }
      out += "]}";
    }
    out += "]\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("protocol %s: %llu paired messages\n", m.protocol.c_str(),
                static_cast<unsigned long long>(q.paired_messages));
    std::printf("reads:  count %llu p50 %llu p99 %llu max %llu ns\n",
                static_cast<unsigned long long>(q.reads.count),
                static_cast<unsigned long long>(q.reads.p50_ns),
                static_cast<unsigned long long>(q.reads.p99_ns),
                static_cast<unsigned long long>(q.reads.max_ns));
    std::printf("writes: count %llu p50 %llu p99 %llu max %llu ns\n",
                static_cast<unsigned long long>(q.writes.count),
                static_cast<unsigned long long>(q.writes.p50_ns),
                static_cast<unsigned long long>(q.writes.p99_ns),
                static_cast<unsigned long long>(q.writes.max_ns));
    std::printf("legs (by p99):\n");
    for (const auto& l : q.legs) {
      std::printf("  %-18s count %8llu  p50 %8llu  p99 %8llu  max %8llu ns\n", l.name.c_str(),
                  static_cast<unsigned long long>(l.lat.count),
                  static_cast<unsigned long long>(l.lat.p50_ns),
                  static_cast<unsigned long long>(l.lat.p99_ns),
                  static_cast<unsigned long long>(l.lat.max_ns));
    }
    std::printf("payload transit (by p99):\n");
    for (const auto& l : q.payloads) {
      std::printf("  %-18s count %8llu  p50 %8llu  p99 %8llu  max %8llu ns\n", l.name.c_str(),
                  static_cast<unsigned long long>(l.lat.count),
                  static_cast<unsigned long long>(l.lat.p50_ns),
                  static_cast<unsigned long long>(l.lat.p99_ns),
                  static_cast<unsigned long long>(l.lat.max_ns));
    }
    for (const auto& p : q.slowest) {
      std::printf("slow read txn %llu: %llu ns over %d round(s), %llu ns on the critical server\n",
                  static_cast<unsigned long long>(p.txn),
                  static_cast<unsigned long long>(p.latency), p.rounds,
                  static_cast<unsigned long long>(p.accounted));
      for (const auto& l : p.legs) {
        std::printf("    %-18s %-16s server %-3d %8llu ns\n", l.leg.c_str(), l.payload.c_str(),
                    l.server == kInvalidNode ? -1 : static_cast<int>(l.server),
                    static_cast<unsigned long long>(l.duration));
      }
    }
  }
  return 0;
}

int cmd_stats(const Args& a) {
  std::vector<ChunkFile> chunks;
  for (const auto& p : a.files) chunks.push_back(load_chunk(p));
  std::uint64_t total_events = 0, total_drops = 0;
  for (const auto& c : chunks) {
    total_events += c.events.size();
    total_drops += c.drops;
  }
  if (a.json) {
    std::string out = "{\n  \"schema\": \"snowkit-audit-stats-v1\",\n  \"chunks\": [";
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const auto& c = chunks[i];
      if (i) out += ", ";
      out += "{\"path\": " + jstr(c.path) + ", \"process\": " +
             std::to_string(c.meta.process_index) + ", \"seq\": " +
             std::to_string(c.meta.chunk_seq) + ", \"protocol\": " + jstr(c.meta.protocol) +
             ", \"events\": " + std::to_string(c.events.size()) +
             ", \"drops\": " + std::to_string(c.drops) +
             ", \"has_history\": " + (c.history ? "true" : "false") + "}";
    }
    out += "],\n";
    out += "  \"total_events\": " + std::to_string(total_events) + ",\n";
    out += "  \"total_drops\": " + std::to_string(total_drops) + "\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    for (const auto& c : chunks) {
      std::printf("%s: process %u seq %u protocol %s — %zu events, %llu drops%s\n",
                  c.path.c_str(), c.meta.process_index, c.meta.chunk_seq,
                  c.meta.protocol.c_str(), c.events.size(),
                  static_cast<unsigned long long>(c.drops), c.history ? ", history" : "");
    }
    std::printf("total: %zu chunks, %llu events, %llu drops\n", chunks.size(),
                static_cast<unsigned long long>(total_events),
                static_cast<unsigned long long>(total_drops));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  const int rc = parse_args(argc, argv, a);
  if (rc == -1) return 0;
  if (rc != 0) return rc;
  try {
    if (a.cmd == "check") return cmd_check(a);
    if (a.cmd == "merge") return cmd_merge(a);
    if (a.cmd == "query") return cmd_query(a);
    return cmd_stats(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "snowkit_audit: %s\n", e.what());
    return 2;
  }
}
