// fuzz_harness CLI: seeded schedule exploration across protocols, with
// record/replay and failing-schedule minimization.
//
//   fuzz_harness --list
//   fuzz_harness --protocol eiger --seeds 500 --out-dir fuzz-out
//   fuzz_harness --all-protocols --seeds 200 --quick --differential
//   fuzz_harness --replay fuzz-out/FUZZ_eiger_s42.trace
//
// Exit codes: 0 ok (violations, if any, were expected divergences); 1 usage
// or configuration error; 2 UNEXPECTED violation (a protocol whose registry
// truth claims strict serializability failed a checker) or failed replay;
// 3 --expect-violation set but the sweep found nothing (vacuous fuzzer).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/trace_io.hpp"

namespace {

using namespace snowkit;
using namespace snowkit::fuzz;

void usage() {
  std::printf(
      "usage: fuzz_harness [--protocol NAME ... | --all-protocols] [options]\n"
      "       fuzz_harness --replay FILE\n"
      "\n"
      "seeded exploration:\n"
      "  --protocol NAME     fuzz one protocol (repeatable); default: the\n"
      "                      strict-serializability class (see --list)\n"
      "  --all-protocols     fuzz every registered protocol\n"
      "  --seeds N           seeds per protocol (default 100)\n"
      "  --seed-base N       first seed (default 1)\n"
      "  --minutes M         wall-clock budget; the sweep stops early once spent\n"
      "  --quick             CI smoke mode: smaller workloads, tighter budgets\n"
      "  --differential      per seed, also run the same client program and\n"
      "                      schedule seed across the whole strict class and\n"
      "                      compare verdicts\n"
      "  --max-failures N    stop a protocol's sweep after N minimized repros\n"
      "                      (default 1)\n"
      "  --expect-violation  exit 0 only if at least one violation was found\n"
      "                      (vacuity guard for eiger / broken-stale sweeps)\n"
      "  --out-dir DIR       where FUZZ_<proto>_s<seed>.trace repros are\n"
      "                      written (default .)\n"
      "  --list              list protocols with their audited claims and exit\n"
      "\n"
      "replay:\n"
      "  --replay FILE       re-execute a recorded repro; exits 0 iff the\n"
      "                      recorded checker failure re-triggers\n");
}

void list_protocols() {
  std::printf("registered protocols (S = strict serializability):\n");
  for (const auto& name : registered_protocols()) {
    const ProtocolTraits& t = ProtocolRegistry::global().traits(name);
    const char* audit = t.claims_strict_serializability ? "claims S (violations fail the build)"
                        : t.advertises_strict_serializability
                            ? "advertises S, truth denies it (violations expected)"
                            : "no S claim (liveness/N audits only)";
    std::printf("  %-14s %s\n                 %s\n", name.c_str(), t.summary.c_str(), audit);
  }
}

struct SweepStats {
  std::size_t runs{0};
  std::size_t violations{0};
  std::size_t unexpected{0};
  std::size_t traces_written{0};
};

std::string sanitize(std::string name) {
  for (char& ch : name) {
    if (ch == '/' || ch == ' ') ch = '_';
  }
  return name;
}

int replay(const std::string& path) {
  FuzzTraceFile file;
  try {
    file = read_trace_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("[replay] %s: protocol=%s ops=%zu checker=%s\n", path.c_str(),
              file.c.protocol.c_str(), file.c.ops.size(), file.checker.c_str());
  const CaseRun run = replay_case(file.c, file.log);
  const OracleReport report = check_run(file.c.protocol, run);
  const bool reproduced = report.violation && report.checker == file.checker;
  const std::uint64_t fingerprint = trace_fingerprint(run.trace);
  const bool byte_identical = fingerprint == file.trace_hash;
  std::printf("[replay] schedule: %zu decisions%s, trace %s (fingerprint %016llx)\n",
              run.stats.decisions, run.stats.guard_tripped ? " (guard tripped)" : "",
              byte_identical ? "byte-identical to the recorded run" : "DIVERGED from the record",
              static_cast<unsigned long long>(fingerprint));
  if (reproduced) {
    std::printf("[replay] REPRODUCED %s: %s\n", report.checker.c_str(),
                report.explanation.c_str());
    return 0;
  }
  std::fprintf(stderr, "[replay] FAILED to re-trigger %s (got %s)\n", file.checker.c_str(),
               report.violation ? report.checker.c_str() : "no violation");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> protocols;
  bool all_protocols = false;
  std::size_t seeds = 100;
  std::uint64_t seed_base = 1;
  double minutes = 0;  // 0 = unlimited
  bool quick = false;
  bool differential = false;
  std::size_t max_failures = 1;
  bool expect_violation = false;
  std::string out_dir = ".";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      protocols.emplace_back(next());
    } else if (arg == "--all-protocols") {
      all_protocols = true;
    } else if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed-base") {
      seed_base = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--minutes") {
      minutes = std::strtod(next(), nullptr);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--differential") {
      differential = true;
    } else if (arg == "--max-failures") {
      max_failures = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--expect-violation") {
      expect_violation = true;
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--list") {
      list_protocols();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n\n", arg.c_str());
      usage();
      return 1;
    }
  }

  if (!replay_path.empty()) return replay(replay_path);

  if (all_protocols) {
    protocols = registered_protocols();
  } else if (protocols.empty()) {
    protocols = strict_serializable_class();
  }
  for (const auto& name : protocols) {
    if (!ProtocolRegistry::global().contains(name)) {
      std::fprintf(stderr, "error: unknown protocol \"%s\"; registered:", name.c_str());
      for (const auto& known : registered_protocols()) std::fprintf(stderr, " %s", known.c_str());
      std::fprintf(stderr, "\n");
      return 1;
    }
  }

  GenParams params;
  params.max_ops_per_client = quick ? 6 : 10;
  ShrinkOptions shrink_opts;
  shrink_opts.max_runs = quick ? 250 : 500;
  const OracleOptions oracle_opts;

  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (minutes <= 0) return false;
    const std::chrono::duration<double> spent = std::chrono::steady_clock::now() - start;
    return spent.count() >= minutes * 60.0;
  };

  SweepStats total;
  bool budget_hit = false;
  try {
    for (const auto& name : protocols) {
      const ProtocolTraits& traits = ProtocolRegistry::global().traits(name);
      GenParams proto_params = params;
      proto_params.single_reader = !traits.mwmr;
      SweepStats stats;
      const auto proto_start = std::chrono::steady_clock::now();
      for (std::uint64_t seed = seed_base; seed < seed_base + seeds; ++seed) {
        if (out_of_time()) {
          budget_hit = true;
          break;
        }
        const FuzzCase c = generate_case(name, proto_params, seed);
        const CaseRun run = run_case(c);
        ++stats.runs;
        const OracleReport report = check_run(name, run, oracle_opts);
        if (!report.violation) continue;
        ++stats.violations;
        if (!report.expected) ++stats.unexpected;
        std::printf("\n[fuzz] %s seed %llu: %s VIOLATION (%s)\n  %s\n", name.c_str(),
                    static_cast<unsigned long long>(seed),
                    report.expected ? "expected" : "UNEXPECTED", report.checker.c_str(),
                    report.explanation.c_str());
        const ShrinkResult shrunk = shrink_case(c, report.checker, oracle_opts, shrink_opts);
        std::printf("  minimized: %zu -> %zu txns, %u objects, %zu clients (%zu shrink runs)\n",
                    c.ops.size(), shrunk.minimized.ops.size(), shrunk.minimized.num_objects,
                    shrunk.minimized.num_clients(), shrunk.runs);
        FuzzTraceFile file;
        file.c = shrunk.minimized;
        file.log = shrunk.log;
        file.checker = shrunk.report.checker;
        file.explanation = shrunk.report.explanation;
        file.trace_hash = shrunk.trace_hash;
        const std::string path = out_dir + "/FUZZ_" + sanitize(name) + "_s" +
                                 std::to_string(seed) + ".trace";
        write_trace_file(path, file);
        ++stats.traces_written;
        std::printf("  repro written: %s (replay with --replay)\n", path.c_str());
        if (stats.violations >= max_failures) break;
      }
      const std::chrono::duration<double> proto_spent =
          std::chrono::steady_clock::now() - proto_start;
      std::printf("[fuzz] %-14s %4zu seeds  %zu violation(s), %zu unexpected  (%.1fs)\n",
                  name.c_str(), stats.runs, stats.violations, stats.unexpected,
                  proto_spent.count());
      total.runs += stats.runs;
      total.violations += stats.violations;
      total.unexpected += stats.unexpected;
      total.traces_written += stats.traces_written;
      if (budget_hit) break;
    }

    if (differential) {
      const auto cls = strict_serializable_class();
      std::printf("\n[differential] class:");
      for (const auto& name : cls) std::printf(" %s", name.c_str());
      std::printf("\n");
      GenParams diff_params = params;
      diff_params.single_reader = true;  // the class contains MWSR algo-a
      std::size_t divergences = 0;
      for (std::uint64_t seed = seed_base; seed < seed_base + seeds; ++seed) {
        if (out_of_time()) {
          budget_hit = true;
          break;
        }
        const FuzzCase base = generate_case(cls.front(), diff_params, seed);
        const DifferentialReport diff = differential_check(base, cls, oracle_opts);
        total.runs += cls.size();
        // An unexpected violation must fail the build even when EVERY
        // protocol failed (no passing peer, so divergence stays false).
        if (diff.unexpected) ++total.unexpected;
        if (!diff.divergence && !diff.unexpected) continue;
        ++total.violations;
        if (diff.divergence) ++divergences;
        std::printf("[differential] seed %llu %s:\n%s",
                    static_cast<unsigned long long>(seed),
                    diff.divergence ? "diverged" : "failed across the whole class",
                    diff.details.c_str());
        if (divergences >= max_failures) break;
      }
      std::printf("[differential] %zu divergent seed(s)\n", divergences);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::chrono::duration<double> spent = std::chrono::steady_clock::now() - start;
  std::printf("\n[fuzz] total: %zu runs, %zu violation(s) (%zu unexpected), %zu repro(s) "
              "written, %.1fs%s\n",
              total.runs, total.violations, total.unexpected, total.traces_written,
              spent.count(), budget_hit ? " [time budget hit]" : "");

  if (total.unexpected > 0) return 2;
  if (expect_violation && total.violations == 0) return 3;
  return 0;
}
