// Adversary demo: watch the impossibility results happen, action by action.
//
// Prints (1) the naive one-round protocol fracturing under a two-event
// network reordering, with the full I/O-automata trace; (2) the Fig. 5
// Eiger counterexample timeline; (3) the alpha-chain summary for the
// three-client SNOW theorem.  Run with no arguments.
#include <cstdio>

#include "checker/serializability.hpp"
#include "core/system.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"
#include "theory/alpha_chain.hpp"
#include "theory/eiger_fig5.hpp"

using namespace snowkit;

namespace {

void demo_fracture() {
  std::printf("--- demo 1: fracturing the naive one-round READ transaction ---------------\n");
  SimRuntime rt;
  HistoryRecorder recorder(2);
  auto system = build_protocol("naive", rt, recorder, Topology{2, 1, 1});
  rt.start();
  rt.hold_matching(script::all_of({script::payload_is("simple-write"), script::to_node(1)}));

  invoke_write(rt, system->writer(0), {{0, 11}, {1, 22}}, [](const WriteResult&) {});
  rt.run_until_idle();
  std::printf("W(x=11, y=22) invoked; the adversary delays the write to s_y.\n");

  invoke_read(rt, system->reader(0), {0, 1}, [](const ReadResult& r) {
    std::printf("R returned (x=%lld, y=%lld) — a state NO serial execution produces.\n",
                static_cast<long long>(r.values[0].second),
                static_cast<long long>(r.values[1].second));
  });
  rt.run_until_idle();
  rt.hold_matching(nullptr);
  rt.release_all();
  rt.run_until_idle();

  std::printf("\nfull I/O-automata trace (s_x=n0, s_y=n1, reader=n2, writer=n3):\n%s",
              rt.trace().to_text().c_str());
  std::printf("checker: %s\n\n", find_fractured_read(recorder.snapshot()).c_str());
}

void demo_eiger() {
  std::printf("--- demo 2: the Fig. 5 Eiger counterexample --------------------------------\n");
  auto fig5 = theory::run_eiger_fig5();
  for (const auto& line : fig5.timeline) std::printf("  * %s\n", line.c_str());
  std::printf("verdict: %s\n\n",
              fig5.s_violated ? fig5.violation.c_str() : "unexpectedly serializable");
}

void demo_alpha_chain() {
  std::printf("--- demo 3: the three-client SNOW impossibility chain (Fig. 3) -------------\n");
  auto chain = theory::run_alpha_chain();
  for (const auto& step : chain.steps) {
    std::printf("  %-9s R1=%s R2=%s  %s\n", step.name.c_str(), step.r1_values.c_str(),
                step.r2_values.c_str(), step.order.c_str());
  }
  std::printf("verdict: %s\n", chain.violation.c_str());
}

}  // namespace

int main() {
  demo_fracture();
  demo_eiger();
  demo_alpha_chain();
  return 0;
}
