// Social-timeline scenario: the workload that motivates the paper (§1).
//
// A TAO-style social app renders a user's page by reading many small objects
// (profile, friend list, latest posts) spread across shards — hundreds of
// reads per write.  Rendering must never show a "torn" state (e.g., a reply
// without the post it replies to), and page latency is the product metric.
//
// This example runs the same timeline workload on three protocols and
// reports what each costs and what each guarantees:
//   simple  — one round, but torn timelines possible (and detected);
//   algo-c  — one round, strictly serializable (the paper's SNW+1-round);
//   algo-b  — two rounds, strictly serializable, one-version responses.
#include <cstdio>

#include "checker/serializability.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/sim_runtime.hpp"

using namespace snowkit;

namespace {

struct Outcome {
  LatencySummary read_latency;
  bool consistent{false};
  std::string note;
};

Outcome run_timeline(const std::string& kind, std::uint64_t seed) {
  // 8 shards: a post-chain lives on shards {post, reply} pairs; the page
  // read spans 4 shards; 100 page loads per reader vs 10 posts per writer.
  SimRuntime rt(make_uniform_delay(50'000, 2'000'000, seed));
  HistoryRecorder recorder(8);
  auto system = build_protocol(kind, rt, recorder, Topology{8, 2, 2});
  WorkloadSpec spec;
  spec.ops_per_reader = 100;
  spec.ops_per_writer = 10;
  spec.read_span = 4;   // page render = multi-get over 4 shards
  spec.write_span = 2;  // post+reply written atomically
  spec.zipf_theta = 0.9;  // hot users
  spec.seed = seed;
  ClosedLoopDriver driver(rt, *system, spec);
  driver.start();
  rt.run_until_idle();

  Outcome out;
  const History h = recorder.snapshot();
  out.read_latency = summarize_latency(h, /*reads=*/true);
  if (provides_tags(kind)) {
    auto verdict = check_tag_order(h);
    out.consistent = verdict.ok;
    out.note = verdict.ok ? "verified via Lemma-20 tags" : verdict.explanation;
  } else {
    const auto fracture = find_fractured_read(h);
    out.consistent = fracture.empty();
    out.note = fracture.empty() ? "no torn page observed in this run (not guaranteed!)"
                                : "TORN PAGE: " + fracture;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("social timeline: 8 shards, 2 page-render readers, 2 posting writers\n");
  std::printf("%-10s %12s %12s %8s  %s\n", "protocol", "p50(us)", "p99(us)", "pages", "consistency");
  int torn_runs = 0;
  for (const std::string kind : {"simple", "algo-c", "algo-b"}) {
    // Sweep seeds for the unguaranteed protocol to show torn pages are real.
    const int seeds = kind == "simple" ? 10 : 1;
    Outcome shown;
    for (int s = 1; s <= seeds; ++s) {
      shown = run_timeline(kind, static_cast<std::uint64_t>(s));
      if (!shown.consistent) {
        ++torn_runs;
        break;
      }
    }
    std::printf("%-10s %12.1f %12.1f %8llu  %s\n", kind,
                static_cast<double>(shown.read_latency.p50_ns) / 1000.0,
                static_cast<double>(shown.read_latency.p99_ns) / 1000.0,
                static_cast<unsigned long long>(shown.read_latency.count), shown.note.c_str());
  }
  std::printf("\ntakeaway: algo-c renders pages at simple-read latency (one non-blocking\n"
              "round) while guaranteeing no torn timeline — the SNW+one-round point the\n"
              "paper shows is achievable; simple multi-gets tear under write concurrency.\n");
  return 0;
}
