// Inventory-audit scenario: strict serializability as a business invariant.
//
// A warehouse's stock for one SKU is spread across shards.  Transfer
// transactions move stock between two shards (total conserved); an auditor
// repeatedly multi-gets all shards and checks that the sum equals the known
// total.  Under a strictly serializable READ transaction the audit can
// never observe a transfer "in flight"; with plain parallel reads it can.
//
// Transfers are blind multi-object WRITEs (the paper's OT type): each writer
// owns a disjoint pair of shards and tracks its pair's balances locally, so
// writes never race on a shard.
#include <cstdio>
#include <map>

#include "core/system.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

using namespace snowkit;

namespace {

constexpr Value kPerShard = 250;

struct AuditStats {
  int audits = 0;
  int inconsistent = 0;
  Value worst_sum = 0;
};

/// Runs transfers on writer-owned shard pairs with interleaved audits.
/// `adversarial` delays one leg of some transfers to maximize the window.
AuditStats run_audits(const std::string& kind, bool adversarial, std::uint64_t seed) {
  const std::size_t shards = 4;
  SimRuntime rt(make_uniform_delay(50'000, 1'500'000, seed));
  HistoryRecorder recorder(shards);
  auto system = build_protocol(kind, rt, recorder, Topology{shards, 1, 2});
  rt.start();

  const Value total = kPerShard * static_cast<Value>(shards);
  // Writer w owns shards {2w, 2w+1}; local bookkeeping of the pair.
  std::map<ObjectId, Value> book{{0, kPerShard}, {1, kPerShard}, {2, kPerShard}, {3, kPerShard}};

  AuditStats stats;
  Xoshiro256 rng(seed);

  // Seed the stock: each writer stores the initial balances of its pair
  // (the objects' default initial value is 0, not kPerShard).
  for (std::size_t w = 0; w < 2; ++w) {
    const ObjectId a = static_cast<ObjectId>(2 * w);
    const ObjectId b = static_cast<ObjectId>(2 * w + 1);
    invoke_write(rt, system->writer(w), {{a, book[a]}, {b, book[b]}}, [](const WriteResult&) {});
    rt.run_until_idle();
  }

  for (int round = 0; round < 40; ++round) {
    // Each writer transfers a random amount within its pair.
    for (std::size_t w = 0; w < 2; ++w) {
      const ObjectId a = static_cast<ObjectId>(2 * w);
      const ObjectId b = static_cast<ObjectId>(2 * w + 1);
      const Value amount = static_cast<Value>(rng.below(50)) + 1;
      book[a] -= amount;
      book[b] += amount;
      if (adversarial && rng.chance(0.5)) {
        // Delay the write leg to shard b: the transfer is visibly torn for
        // any protocol whose READs are not strictly serializable.
        rt.hold_matching(script::any_of({script::all_of({script::payload_is("simple-write"),
                                                         script::to_node(b)}),
                                         script::all_of({script::payload_is("write-val"),
                                                         script::to_node(b)})}));
      }
      invoke_write(rt, system->writer(w), {{a, book[a]}, {b, book[b]}}, [](const WriteResult&) {});
      rt.run_until_idle();

      // Audit while the transfer may still be in flight.
      Value sum = -1;
      invoke_read(rt, system->reader(0), all_objects(shards), [&](const ReadResult& r) {
        sum = 0;
        for (const auto& [obj, v] : r.values) {
          (void)obj;
          sum += v;
        }
      });
      rt.run_until_idle();
      rt.hold_matching(nullptr);
      rt.release_all();
      rt.run_until_idle();

      ++stats.audits;
      if (sum != total) {
        ++stats.inconsistent;
        if (stats.worst_sum == 0 || std::llabs(sum - total) > std::llabs(stats.worst_sum - total)) {
          stats.worst_sum = sum;
        }
      }
    }
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("inventory audit: 4 shards x %lld units, transfers conserve the total (%lld)\n\n",
              static_cast<long long>(kPerShard), static_cast<long long>(kPerShard * 4));
  std::printf("%-10s %-12s %8s %14s %12s\n", "protocol", "schedule", "audits", "bad audits",
              "worst sum");
  for (const char* kind : {"naive", "algo-c", "algo-b"}) {
    for (bool adversarial : {false, true}) {
      AuditStats stats{};
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        AuditStats s = run_audits(kind, adversarial, seed);
        stats.audits += s.audits;
        stats.inconsistent += s.inconsistent;
        if (s.worst_sum != 0) stats.worst_sum = s.worst_sum;
      }
      char worst[32] = "-";
      if (stats.worst_sum != 0) {
        std::snprintf(worst, sizeof worst, "%lld", static_cast<long long>(stats.worst_sum));
      }
      std::printf("%-10s %-12s %8d %14d %12s\n", kind,
                  adversarial ? "adversarial" : "benign", stats.audits, stats.inconsistent, worst);
    }
  }
  std::printf("\ntakeaway: naive parallel multi-gets report phantom shrinkage/creation the\n"
              "moment the network misbehaves; Algorithms B and C never do — the audit is a\n"
              "strictly serializable READ transaction, at one (C) or two (B) rounds.\n");
  return 0;
}
