// Prints the protocol capability table straight from the ProtocolRegistry's
// ProtocolTraits records, as the markdown used in README.md.  Regenerate the
// README table with:
//
//   ./build/example_protocol_table
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace snowkit;
  std::printf("| protocol | S | N | O | W | MWMR | tags | versions/resp | summary |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");
  for (const std::string& name : registered_protocols()) {
    const ProtocolTraits& t = ProtocolRegistry::global().traits(name);
    const auto mark = [](bool b) { return b ? "✓" : "✗"; };
    std::printf("| `%s` | %s | %s | %s | %s | %s | %s | %s | %s |\n", name.c_str(),
                mark(t.snow_s), mark(t.snow_n), mark(t.snow_o), mark(t.snow_w), mark(t.mwmr),
                mark(t.provides_tags), t.version_bound.c_str(), t.summary.c_str());
  }
  return 0;
}
