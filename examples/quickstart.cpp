// Quickstart: build a strictly serializable sharded store with bounded-
// latency READ transactions (Algorithm B), write to it, read from it, and
// verify the run with the built-in checker.
//
//   cmake --build build && ./build/example_quickstart
#include <cstdio>

#include "checker/tag_order.hpp"
#include "core/system.hpp"
#include "sim/sim_runtime.hpp"

int main() {
  using namespace snowkit;

  // A datacenter with 8 objects hash-sharded over 3 servers, 1 read-client
  // and 1 write-client, on the deterministic simulator.  Protocols resolve
  // by registry name — swap "algo-b" for any of registered_protocols(), and
  // SimRuntime for ThreadRuntime to run on real threads; the protocol code
  // is identical.  Leave num_servers at 0 for the paper's one-server-per-
  // object model.
  SystemConfig config{/*num_objects=*/8, /*num_readers=*/1, /*num_writers=*/1};
  config.num_servers = 3;
  config.placement = PlacementKind::kHash;

  SimRuntime rt(make_uniform_delay(50'000, 500'000, /*seed=*/1));
  HistoryRecorder recorder(config.num_objects);
  auto system = build_protocol("algo-b", rt, recorder, config);
  std::printf("built %s: %zu objects on %zu servers\n", system->name().c_str(),
              system->num_objects(), system->num_servers());

  // WRITE transaction: update objects 0 and 2 atomically, via the unified
  // client API (a TxnRequest is a read-set or a write-set).
  system->client(0).submit(write_txn({{0, 100}, {2, 300}}), [](const TxnResult& w) {
    std::printf("WRITE txn %llu committed\n", static_cast<unsigned long long>(w.txn));
  });
  rt.run_until_idle();

  // READ transaction: a consistent multi-get across three objects — which
  // may live on fewer servers.  With Algorithm B this takes exactly two
  // non-blocking rounds and returns one version per object; Algorithm C
  // would take one round.
  system->client(0).submit(read_txn({0, 1, 2}), [](const TxnResult& r) {
    std::printf("READ txn %llu returned:", static_cast<unsigned long long>(r.txn));
    for (const auto& [obj, value] : r.values) {
      std::printf("  obj%u=%lld", obj, static_cast<long long>(value));
    }
    std::printf("\n");
  });
  rt.run_until_idle();

  // Verify the whole run is strictly serializable via the Lemma-20 tags.
  const auto verdict = check_tag_order(recorder.snapshot());
  std::printf("strict serializability: %s\n", verdict.ok ? "VERIFIED" : verdict.explanation.c_str());
  return verdict.ok ? 0 : 1;
}
