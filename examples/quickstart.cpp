// Quickstart: build a strictly serializable sharded store with bounded-
// latency READ transactions (Algorithm B), write to it, read from it, and
// verify the run with the built-in checker.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "checker/tag_order.hpp"
#include "core/system.hpp"
#include "sim/sim_runtime.hpp"

int main() {
  using namespace snowkit;

  // A datacenter with 4 shards (one object per server, as in the paper's
  // model), 1 read-client and 1 write-client, on the deterministic simulator.
  // Swap SimRuntime for ThreadRuntime to run on real threads — the protocol
  // code is identical.
  SimRuntime rt(make_uniform_delay(50'000, 500'000, /*seed=*/1));
  HistoryRecorder recorder(/*num_objects=*/4);
  auto system = build_protocol(ProtocolKind::AlgoB, rt, recorder, Topology{4, 1, 1});

  // WRITE transaction: update objects 0 and 2 atomically.
  invoke_write(rt, system->writer(0), {{0, 100}, {2, 300}}, [](const WriteResult& w) {
    std::printf("WRITE txn %llu committed\n", static_cast<unsigned long long>(w.txn));
  });
  rt.run_until_idle();

  // READ transaction: a consistent multi-get across three shards.  With
  // Algorithm B this takes exactly two non-blocking rounds and returns one
  // version per object; Algorithm C would take one round.
  invoke_read(rt, system->reader(0), {0, 1, 2}, [](const ReadResult& r) {
    std::printf("READ txn %llu returned:", static_cast<unsigned long long>(r.txn));
    for (const auto& [obj, value] : r.values) {
      std::printf("  obj%u=%lld", obj, static_cast<long long>(value));
    }
    std::printf("\n");
  });
  rt.run_until_idle();

  // Verify the whole run is strictly serializable via the Lemma-20 tags.
  const auto verdict = check_tag_order(recorder.snapshot());
  std::printf("strict serializability: %s\n", verdict.ok ? "VERIFIED" : verdict.explanation.c_str());
  return verdict.ok ? 0 : 1;
}
