// Failover end-to-end: a replicated 3-daemon fleet survives SIGKILL of the
// process hosting shard 0's PRIMARY (which is also the algo-b coordinator
// s*) while a client workload is in flight.  The surviving backup must take
// over — NetRuntime's peer-down detector fans NodeDownNotice to the backup,
// the backup replays its log and broadcasts TakeoverNotice, clients re-route
// — and the run must finish with ZERO lost acknowledged writes: after all
// writes complete, full-span reads return exactly the max-tag write per
// object, and the merged audit of the surviving processes re-checks green.
#include <gtest/gtest.h>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "audit/capture.hpp"
#include "audit/check.hpp"
#include "audit/merge.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace snowkit {
namespace {

#ifndef __linux__

TEST(FailoverE2E, RequiresLinux) { GTEST_SKIP() << "TCP transport requires Linux"; }

#else

std::string server_binary() {
  if (const char* env = std::getenv("SNOWKIT_SERVER_BIN")) return env;
  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path() / "snowkit_server").string();
}

bool wait_listening(std::uint16_t port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
    if (rc == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct Daemon {
  pid_t pid{-1};
  std::string audit_dir;
  std::string wal_dir;

  void sigkill() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }

  /// Clean stop: SIGTERM seals every audit chunk.  Returns exit status ok.
  bool sigterm() {
    if (pid <= 0) return false;
    if (::kill(pid, SIGTERM) != 0) return false;
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return false;
    pid = -1;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  ~Daemon() { sigkill(); }
};

struct Fixture {
  FleetConfig fleet;
  std::string root;  ///< scratch dir holding config, wal dirs, audit dirs.
  bool keep{false};  ///< SNOWKIT_FAILOVER_KEEP_DIR: leave artifacts for CI.
  std::vector<Daemon> daemons;

  ~Fixture() {
    daemons.clear();  // kill before removing their dirs
    if (keep) return;
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
  }
};

FleetConfig make_replicated_fleet() {
  FleetConfig fleet;
  fleet.protocol = "algo-b";  // coordinator s* = shard 0: killing process 0
                              // fails over coordination, not just storage
  fleet.system.num_objects = 4;
  fleet.system.num_readers = 2;
  fleet.system.num_writers = 2;
  fleet.system.num_servers = 3;
  fleet.replicas = 2;
  fleet.options.set("replicas", std::int64_t{2});
  // 1s default detection grace would dominate the test; 250ms is still far
  // above loopback jitter.
  fleet.transport.parse_csv("peer_down_grace_ms=250");
  for (const std::uint16_t port : net::pick_free_ports(4)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }
  return fleet;
}

void spawn_daemons(Fixture& fx) {
  // CI points this at a workspace path so the job can re-run `snowkit_audit
  // check` over the surviving chunks with the real CLI afterwards.
  if (const char* keep = std::getenv("SNOWKIT_FAILOVER_KEEP_DIR")) {
    fx.root = keep;
    fx.keep = true;
  } else {
    const auto tmp = std::filesystem::temp_directory_path();
    fx.root = (tmp / ("snowkit_failover_" + std::to_string(static_cast<unsigned>(::getpid()))))
                  .string();
  }
  std::filesystem::remove_all(fx.root);
  std::filesystem::create_directories(fx.root);
  const std::string cfg = fx.root + "/fleet.cfg";
  {
    std::ofstream f(cfg, std::ios::trunc);
    ASSERT_TRUE(f) << cfg;
    f << fleet_text(fx.fleet);
  }
  const std::string bin = server_binary();
  fx.daemons.resize(fx.fleet.server_processes());
  for (std::size_t i = 0; i < fx.daemons.size(); ++i) {
    Daemon& d = fx.daemons[i];
    d.audit_dir = fx.root + "/audit" + std::to_string(i);
    d.wal_dir = fx.root + "/wal" + std::to_string(i);
    const std::string index = std::to_string(i);
    d.pid = ::fork();
    ASSERT_GE(d.pid, 0);
    if (d.pid == 0) {
      ::execl(bin.c_str(), bin.c_str(), "--config", cfg.c_str(), "--index", index.c_str(),
              "--audit-dir", d.audit_dir.c_str(), "--wal-dir", d.wal_dir.c_str(), "--quiet",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
  }
  for (std::size_t i = 0; i < fx.daemons.size(); ++i) {
    ASSERT_TRUE(wait_listening(fx.fleet.processes[i].port, 15'000))
        << "daemon " << i << " never listened";
  }
}

/// driver.wait() with a deadline: a wedged failover must fail the test, not
/// hang the ctest job until its global timeout.
bool wait_done(const WorkloadDriver& driver, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (driver.done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return driver.done();
}

/// Loads every SEALED chunk in `dir`; torn chunks (a SIGKILLed writer's
/// unsealed tail) are skipped, mirroring what an operator can actually
/// recover after a crash.
void load_sealed_chunks(const std::string& dir, std::vector<audit::ChunkFile>& out) {
  if (!std::filesystem::is_directory(dir)) return;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".auditchunk") continue;
    try {
      out.push_back(audit::load_chunk(entry.path().string()));
    } catch (const std::exception&) {
      // torn final chunk of a killed process — unrecoverable by design
    }
  }
}

TEST(FailoverE2E, PrimaryDaemonSigkillMidRunLosesNoAckedWrite) {
  if (!net::transport_supported()) GTEST_SKIP() << "TCP transport requires Linux";
  Fixture fx;
  fx.fleet = make_replicated_fleet();
  spawn_daemons(fx);
  ASSERT_FALSE(HasFatalFailure());

  // The client process, with a lossless audit capture so the merged run
  // keeps the checkers conclusive on the client's side of the story.
  audit::CaptureOptions copts;
  copts.dir = fx.root + "/audit_client";
  copts.process_index = static_cast<std::uint32_t>(fx.fleet.client_index());
  copts.protocol = fx.fleet.protocol;
  copts.num_servers = static_cast<std::uint32_t>(fx.fleet.system.server_count());
  copts.fleet_text = fleet_text(fx.fleet);
  copts.ring_capacity = 1 << 16;
  audit::AuditCapture cap(copts);

  NetRuntime rt(fx.fleet.net_options(fx.fleet.client_index()));
  rt.set_observer(&cap);
  HistoryRecorder rec(fx.fleet.system.num_objects);
  auto sys = build_protocol(fx.fleet.protocol, rt, rec, fx.fleet.system, fx.fleet.options);
  rt.start();
  ASSERT_TRUE(rt.wait_connected_for(15'000'000'000ull));

  // Phase 1: mixed closed loop, sized so the SIGKILL below lands mid-run on
  // any realistic machine (and stays correct either way — phase 2 still
  // forces shard 0 traffic through the failed-over backup).
  WorkloadSpec spec;
  spec.ops_per_reader = 600;
  spec.ops_per_writer = 400;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 29;
  WorkloadDriver driver(rt, *sys, spec);
  driver.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Kill the daemon hosting shard 0's primary (process 0; the backup lives
  // on process 1 by the fleet's cyclic placement).  SIGKILL: no shutdown
  // path, no sealed final chunk, exactly a crash.
  fx.daemons[0].sigkill();

  ASSERT_TRUE(wait_done(driver, 120'000)) << "workload wedged across the failover: "
                                          << driver.completed_reads() << " reads + "
                                          << driver.completed_writes() << " writes of "
                                          << driver.total_ops() << " completed";
  EXPECT_EQ(driver.completed_reads(), 2u * 600u);
  EXPECT_EQ(driver.completed_writes(), 2u * 400u);

  // Phase 2: every write above is acknowledged and finished, so full-span
  // reads must observe, per object, exactly the value of the max-tag write
  // covering it — a missing one IS a lost acknowledged write.
  const std::uint64_t watermark = [&] {
    std::uint64_t max_order = 0;
    for (const TxnRecord& t : rec.snapshot().txns) max_order = std::max(max_order, t.respond_order);
    return max_order;
  }();
  WorkloadSpec readback;
  readback.ops_per_reader = 4;
  readback.ops_per_writer = 0;
  readback.read_span = fx.fleet.system.num_objects;
  readback.write_span = 1;
  readback.seed = 31;
  WorkloadDriver reader(rt, *sys, readback);
  reader.start();
  ASSERT_TRUE(wait_done(reader, 60'000)) << "read-back phase wedged";

  const History h = rec.snapshot();
  std::map<ObjectId, std::pair<Tag, Value>> winner;  // max-tag write per object
  for (const TxnRecord& t : h.txns) {
    if (t.is_read || !t.complete) continue;
    ASSERT_NE(t.tag, kInvalidTag);
    for (const auto& [obj, val] : t.writes) {
      auto it = winner.find(obj);
      if (it == winner.end() || t.tag > it->second.first) winner[obj] = {t.tag, val};
    }
  }
  EXPECT_EQ(winner.size(), fx.fleet.system.num_objects);
  for (const TxnRecord& t : h.txns) {
    if (!t.is_read || !t.complete || t.invoke_order <= watermark) continue;
    for (const auto& [obj, val] : t.reads) {
      ASSERT_TRUE(winner.count(obj));
      EXPECT_EQ(val, winner[obj].second)
          << "object " << obj << ": read-back saw value " << val << " but the max-tag "
          << "acknowledged write put " << winner[obj].second << " — a write was lost";
    }
  }
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;

  // Replication really persisted: the surviving daemons wrote WAL bytes.
  for (std::size_t i = 1; i < fx.daemons.size(); ++i) {
    std::uintmax_t bytes = 0;
    if (std::filesystem::is_directory(fx.daemons[i].wal_dir)) {
      for (const auto& e : std::filesystem::directory_iterator(fx.daemons[i].wal_dir)) {
        bytes += std::filesystem::file_size(e.path());
      }
    }
    EXPECT_GT(bytes, 0u) << "daemon " << i << " wrote no WAL";
  }

  // Seal and collect the audit: client capture + clean SIGTERM of the two
  // survivors.  The killed daemon's dir holds at most a torn tail.
  rt.stop();
  cap.set_history(h);
  cap.close();
  EXPECT_EQ(cap.stats().drops, 0u);
  EXPECT_TRUE(fx.daemons[1].sigterm()) << "surviving daemon 1 did not exit cleanly";
  EXPECT_TRUE(fx.daemons[2].sigterm()) << "surviving daemon 2 did not exit cleanly";

  std::vector<audit::ChunkFile> chunks;
  load_sealed_chunks(copts.dir, chunks);
  const std::size_t client_chunks = chunks.size();
  ASSERT_GT(client_chunks, 0u);
  for (const Daemon& d : fx.daemons) load_sealed_chunks(d.audit_dir, chunks);
  ASSERT_GT(chunks.size(), client_chunks) << "survivors sealed no chunks";

  // The merged surviving capture must re-check green: the kill may make some
  // trace checks inconclusive (the dead process's events are gone), but no
  // checker may flag a violation — `snowkit_audit check` exit 0.
  const auto merged = audit::merge_chunks(chunks);
  ASSERT_TRUE(merged.history.has_value());
  const auto audit_verdict = audit::check_merged(merged);
  EXPECT_FALSE(audit_verdict.violation)
      << (audit_verdict.findings.empty() ? "" : audit_verdict.findings[0].explanation);
}

#endif  // __linux__

}  // namespace
}  // namespace snowkit
