// Adaptive meta-protocol (ISSUE 10): per-object B<->C switching, the
// watermark-proved client cache and batched read legs — basic behaviour.
// The differential-fuzz battery lives in adaptive_fuzz_test.cpp and the
// cache-invariant property suite in adaptive_cache_property_test.cpp.
#include <gtest/gtest.h>

#include <stdexcept>

#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/registry.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/adaptive/adaptive.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct Rig {
  SimRuntime sim;
  HistoryRecorder rec;
  std::unique_ptr<ProtocolSystem> sys;
  AdaptiveSystem* adaptive{nullptr};

  explicit Rig(std::size_t k, std::size_t readers = 1, std::size_t writers = 1,
               std::uint64_t seed = 1, AdaptiveOptions opts = {})
      : sim(make_uniform_delay(10, 5000, seed)), rec(k) {
    sys = build_adaptive(sim, rec, Topology{k, readers, writers}, opts);
    adaptive = dynamic_cast<AdaptiveSystem*>(sys.get());
  }
};

ReadResult read_now(Rig& rig, std::size_t reader, std::vector<ObjectId> objs) {
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(reader), std::move(objs),
              [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  return result;
}

void write_now(Rig& rig, std::size_t writer, std::vector<std::pair<ObjectId, Value>> writes) {
  invoke_write(rig.sim, rig.sys->writer(writer), std::move(writes), [](const WriteResult&) {});
  rig.sim.run_until_idle();
}

TEST(Adaptive, WriteThenReadRoundTrip) {
  Rig rig(3);
  write_now(rig, 0, {{0, 1}, {1, 2}, {2, 3}});
  const ReadResult result = read_now(rig, 0, {0, 2});
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(result.values[0].second, 1);
  EXPECT_EQ(result.values[1].second, 3);
  const auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Adaptive, WriteHeavyObjectSwitchesToPrefetchMode) {
  // Default thresholds: B -> C once an object's EWMA write credit reaches 4.
  // Sim delays are microseconds against a 2s decay constant, so every
  // write adds a nearly-full credit.  The cache is off so the C-mode object
  // must resolve from the prefetch, not from a hit.
  AdaptiveOptions no_cache;
  no_cache.cache_reads = false;
  Rig rig(2, 1, 1, /*seed=*/1, no_cache);
  ASSERT_NE(rig.adaptive, nullptr);
  for (Value v = 1; v <= 6; ++v) write_now(rig, 0, {{0, v * 10}});
  const AdaptiveStats after_writes = rig.adaptive->stats();
  EXPECT_GE(after_writes.switches, 1u) << "six back-to-back writes never flipped the mode";

  // The next READ learns the mode table from its tag array; the one after —
  // spanning only the C-mode object — prefetches Algorithm-C style and
  // completes in one round (object 1 stays B-mode and would cost a round 2).
  (void)read_now(rig, 0, {0, 1});
  const ReadResult r2 = read_now(rig, 0, {0});
  EXPECT_EQ(r2.values[0].second, 60);
  const AdaptiveStats s = rig.adaptive->stats();
  EXPECT_GE(s.prefetch_resolved, 1u) << "C-mode object was never resolved from a prefetch";
  EXPECT_GE(s.one_round_reads, 1u);
  const auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Adaptive, CacheHitCompletesWithoutASecondRound) {
  Rig rig(2);
  ASSERT_NE(rig.adaptive, nullptr);
  write_now(rig, 0, {{0, 7}, {1, 8}});
  (void)read_now(rig, 0, {0, 1});  // populates the cache (two misses)
  const ReadResult r2 = read_now(rig, 0, {0, 1});
  EXPECT_EQ(r2.values[0].second, 7);
  EXPECT_EQ(r2.values[1].second, 8);
  const AdaptiveStats s = rig.adaptive->stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_GE(s.one_round_reads, 1u) << "a fully cache-served READ still paid round 2";
}

TEST(Adaptive, WriteInvalidatesExactlyTheOverwrittenObject) {
  Rig rig(2);
  ASSERT_NE(rig.adaptive, nullptr);
  write_now(rig, 0, {{0, 1}, {1, 2}});
  (void)read_now(rig, 0, {0, 1});
  write_now(rig, 0, {{0, 99}});  // supersedes the cached key for object 0 only
  const ReadResult r = read_now(rig, 0, {0, 1});
  EXPECT_EQ(r.values[0].second, 99) << "cache served a superseded version";
  EXPECT_EQ(r.values[1].second, 2);
  const AdaptiveStats s = rig.adaptive->stats();
  EXPECT_EQ(s.cache_hits, 1u);    // object 1 still proves fresh
  EXPECT_EQ(s.cache_misses, 3u);  // first read (2) + re-fetch of object 0
  const auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Adaptive, BrokenCacheServesTheStaleVersion) {
  // The fault stub the fuzz battery must convict: with the freshness proof
  // removed, a cached entry outlives the write that superseded it.
  AdaptiveOptions opts;
  opts.broken_cache = true;
  Rig rig(2, 1, 1, /*seed=*/1, opts);
  write_now(rig, 0, {{0, 1}});
  (void)read_now(rig, 0, {0});
  write_now(rig, 0, {{0, 2}});
  const ReadResult r = read_now(rig, 0, {0});
  EXPECT_EQ(r.values[0].second, 1) << "broken_cache unexpectedly refetched — the planted "
                                      "bug is gone and the vacuity guard is meaningless";
  const auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_FALSE(verdict.ok) << "tag-order checker missed the stale cached read";
}

TEST(Adaptive, StrictSerializabilityUnderClosedLoopWorkload) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull, 24ull}) {
    Rig rig(4, 3, 3, seed);
    WorkloadSpec spec;
    spec.ops_per_reader = 50;
    spec.ops_per_writer = 25;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
    driver.start();
    rig.sim.run_until_idle();
    EXPECT_TRUE(driver.done());
    const auto verdict = check_tag_order(rig.rec.snapshot());
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
    const auto report = analyze_snow_trace(rig.sim.trace(), 4, rig.rec.snapshot());
    EXPECT_TRUE(report.satisfies_n())
        << (report.violations.empty() ? "" : report.violations[0]);
  }
}

TEST(Adaptive, RegistryBuildsItWithZeroProtocolSpecificCode) {
  const auto& traits = ProtocolRegistry::global().traits("adaptive");
  EXPECT_TRUE(traits.claims_strict_serializability);
  EXPECT_TRUE(traits.advertises_strict_serializability);
  EXPECT_TRUE(traits.provides_tags);
  EXPECT_TRUE(traits.supports_replication);
  EXPECT_EQ(traits.version_bound, "<=|W|+1");

  SimRuntime sim;
  HistoryRecorder rec(2);
  BuildOptions opts;
  opts.set("switch_up", "6.0");
  opts.set("switch_down", "2.0");
  opts.set("ewma_tau_ms", 100);
  auto sys = ProtocolRegistry::global().build("adaptive", sim, rec, Topology{2, 1, 1}, opts);
  EXPECT_EQ(sys->name(), "adaptive");
  EXPECT_NE(dynamic_cast<AdaptiveSystem*>(sys.get()), nullptr);
}

TEST(Adaptive, OptionsValidateFailFast) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  AdaptiveOptions opts;
  opts.switch_up = 1.0;
  opts.switch_down = 1.0;  // no hysteresis band
  EXPECT_THROW(build_adaptive(sim, rec, Topology{2, 1, 1}, opts), std::invalid_argument);
  opts = {};
  opts.ewma_tau_ns = 0;
  EXPECT_THROW(build_adaptive(sim, rec, Topology{2, 1, 1}, opts), std::invalid_argument);
  opts = {};
  opts.replicas = 3;
  EXPECT_THROW(build_adaptive(sim, rec, Topology{2, 1, 1}, opts), std::invalid_argument);
}

}  // namespace
}  // namespace snowkit
