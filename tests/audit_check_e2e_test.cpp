// End-to-end flight-recorder pipeline on the threaded runtime: capture a
// real run through the MessageObserver seam, merge the chunks offline, and
// re-run the checkers — a correct protocol must re-check green, and the
// broken-stale fault stub must be flagged from its capture alone.
#include <gtest/gtest.h>

#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "audit/capture.hpp"
#include "audit/check.hpp"
#include "audit/merge.hpp"
#include "audit/query.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

using audit::AuditCapture;
using audit::CaptureOptions;
using audit::ChunkFile;

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("snowkit_audit_e2e_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<ChunkFile> load_all(const std::string& dir) {
  std::vector<ChunkFile> chunks;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".auditchunk") {
      chunks.push_back(audit::load_chunk(entry.path().string()));
    }
  }
  return chunks;
}

/// Runs `protocol` on ThreadRuntime with the recorder attached and returns
/// the merged audit.  Each driver pass runs back-to-back on the same system
/// (phases let a test order writes before reads).
audit::MergedAudit captured_run(const std::string& protocol, Topology topo,
                                const std::vector<WorkloadSpec>& phases) {
  const std::string dir = fresh_dir(protocol);
  CaptureOptions copts;
  copts.dir = dir;
  copts.protocol = protocol;
  copts.num_servers = static_cast<std::uint32_t>(topo.server_count());
  copts.ring_capacity = 1 << 16;  // lossless: keep the checkers conclusive

  ThreadRuntime rt;
  AuditCapture cap(copts);
  rt.set_observer(&cap);
  HistoryRecorder rec(topo.num_objects);
  auto sys = build_protocol(protocol, rt, rec, topo);
  rt.start();
  for (const WorkloadSpec& spec : phases) {
    WorkloadDriver driver(rt, *sys, spec);
    driver.start();
    driver.wait();
  }
  rt.stop();
  cap.set_history(rec.snapshot());
  cap.close();

  EXPECT_EQ(cap.stats().drops, 0u);
  auto merged = audit::merge_chunks(load_all(dir));
  std::filesystem::remove_all(dir);
  return merged;
}

TEST(AuditCheckE2E, CapturedAlgoBRunRechecksGreen) {
  WorkloadSpec spec;
  spec.ops_per_reader = 10;
  spec.ops_per_writer = 5;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 21;
  const auto merged = captured_run("algo-b", Topology{3, 2, 2}, {spec});

  EXPECT_EQ(merged.total_drops, 0u);
  EXPECT_EQ(merged.unmatched_recvs, 0u);
  ASSERT_TRUE(merged.history.has_value());
  EXPECT_EQ(merged.history->completed_reads(), 20u);

  const auto verdict = audit::check_merged(merged);
  EXPECT_FALSE(verdict.violation)
      << (verdict.findings.empty() ? "" : verdict.findings[0].explanation);
  // algo-b assigns tags and is non-blocking: both trace checkers must have
  // actually run (a capture that silently skipped them would be vacuous).
  EXPECT_FALSE(verdict.checks_run.empty());

  // Latency provenance over the same merged run: every read decomposes into
  // captured legs.
  const auto q = audit::query_merged(merged, /*slowest_n=*/3);
  EXPECT_GT(q.paired_messages, 0u);
  EXPECT_EQ(q.reads.count, 20u);
  EXPECT_FALSE(q.legs.empty());
  EXPECT_FALSE(q.payloads.empty());
  ASSERT_FALSE(q.slowest.empty());
  EXPECT_FALSE(q.slowest[0].legs.empty());
  EXPECT_GT(q.slowest[0].latency, 0);
  EXPECT_LE(q.slowest[0].accounted, q.slowest[0].latency);
}

TEST(AuditCheckE2E, BrokenStaleCaptureIsFlagged) {
  // Phase 1: a single writer commits 8 writes (totally ordered in real
  // time).  Phase 2: readers run strictly after — the lag-2 server now
  // CANNOT serve the latest committed value, so the captured history admits
  // no strict serialization and the audit must convict.
  WorkloadSpec writes;
  writes.ops_per_reader = 0;
  writes.ops_per_writer = 8;
  writes.write_span = 2;
  writes.seed = 5;
  WorkloadSpec reads;
  reads.ops_per_reader = 4;
  reads.ops_per_writer = 0;
  reads.read_span = 2;
  reads.seed = 6;
  const auto merged = captured_run("broken-stale", Topology{2, 2, 1}, {writes, reads});

  const auto verdict = audit::check_merged(merged);
  EXPECT_TRUE(verdict.violation);
  ASSERT_FALSE(verdict.findings.empty());
  // broken-stale ADVERTISES strict serializability while the registry truth
  // denies it: the conviction is expected (the audit's whole job), and the
  // finding must say so.
  bool any_expected = false;
  for (const auto& f : verdict.findings) any_expected = any_expected || f.expected;
  EXPECT_TRUE(any_expected);
}

TEST(AuditCheckE2E, UnknownProtocolIsRejected) {
  audit::MergedAudit m;
  m.protocol = "no-such-protocol";
  EXPECT_THROW(audit::check_merged(m), std::invalid_argument);
}

#ifdef __linux__

/// The acceptance flow over a REAL multi-process fleet: three snowkit_server
/// daemons each capturing their own chunks, the driving client capturing a
/// fourth stream plus the fleet's only history, all merged offline into one
/// coherent record that the checkers convict.
TEST(AuditCheckE2E, BrokenStaleTcpFleetCaptureIsFlagged) {
  if (!net::transport_supported()) GTEST_SKIP() << "TCP transport requires Linux";

  FleetConfig fleet;
  fleet.protocol = "broken-stale";
  fleet.system.num_objects = 3;
  fleet.system.num_readers = 2;
  fleet.system.num_writers = 1;
  // One shard per object, one daemon per shard, plus the client process.
  for (const std::uint16_t port : net::pick_free_ports(4)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }

  const std::string dir = fresh_dir("tcp_fleet");
  std::filesystem::create_directories(dir);
  const auto cfg_path = std::filesystem::path(dir) / "fleet.cfg";
  {
    std::ofstream f(cfg_path, std::ios::trunc);
    ASSERT_TRUE(f) << cfg_path;
    f << fleet_text(fleet);
  }
  const std::string bin = [] {
    if (const char* env = std::getenv("SNOWKIT_SERVER_BIN")) return std::string(env);
    const auto self = std::filesystem::read_symlink("/proc/self/exe");
    return (self.parent_path() / "snowkit_server").string();
  }();

  std::vector<pid_t> daemons;
  for (std::size_t i = 0; i < fleet.client_index(); ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const std::string idx = std::to_string(i);
      ::execl(bin.c_str(), bin.c_str(), "--config", cfg_path.c_str(), "--index", idx.c_str(),
              "--audit-dir", dir.c_str(), "--quiet", static_cast<char*>(nullptr));
      ::_exit(127);
    }
    daemons.push_back(pid);
  }

  // Client process: its own capture stream chained onto the runtime, plus
  // the fleet's only HistoryRecorder (clients live here).
  {
    CaptureOptions copts;
    copts.dir = dir;
    copts.process_index = static_cast<std::uint32_t>(fleet.client_index());
    copts.protocol = fleet.protocol;
    copts.num_servers = static_cast<std::uint32_t>(fleet.system.server_count());
    copts.fleet_text = fleet_text(fleet);
    copts.ring_capacity = 1 << 16;
    AuditCapture cap(copts);

    NetRuntime rt(fleet.net_options(fleet.client_index()));
    rt.set_observer(&cap);
    HistoryRecorder rec(fleet.system.num_objects);
    auto sys = build_protocol(fleet.protocol, rt, rec, fleet.system, fleet.options);
    rt.start();
    ASSERT_TRUE(rt.wait_connected_for(15'000'000'000ull)) << "fleet never connected";

    // Same two-phase shape as the ThreadRuntime test: totally-ordered writes
    // first, reads strictly after — the lag-2 replicas then cannot serve the
    // newest committed value and the exact search convicts deterministically.
    WorkloadSpec writes;
    writes.ops_per_reader = 0;
    writes.ops_per_writer = 8;
    writes.write_span = 2;
    writes.seed = 5;
    WorkloadSpec reads;
    reads.ops_per_reader = 4;
    reads.ops_per_writer = 0;
    reads.read_span = 2;
    reads.seed = 6;
    for (const WorkloadSpec& spec : {writes, reads}) {
      WorkloadDriver driver(rt, *sys, spec);
      driver.start();
      driver.wait();
    }

    rt.broadcast_shutdown();
    rt.stop();
    cap.set_history(rec.snapshot());
    cap.close();
    EXPECT_EQ(cap.stats().drops, 0u);
  }

  for (const pid_t pid : daemons) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "daemon exited abnormally (status " << status << ")";
  }

  const auto merged = audit::merge_chunks(load_all(dir));
  std::filesystem::remove_all(dir);
  EXPECT_EQ(merged.processes, 4u);  // 3 daemons + the driving client
  EXPECT_EQ(merged.total_drops, 0u);
  ASSERT_TRUE(merged.history.has_value());

  const auto verdict = audit::check_merged(merged);
  EXPECT_TRUE(verdict.violation) << "TCP fleet capture failed to convict broken-stale";
  ASSERT_FALSE(verdict.findings.empty());
  bool any_expected = false;
  for (const auto& f : verdict.findings) any_expected = any_expected || f.expected;
  EXPECT_TRUE(any_expected);
}

#endif  // __linux__

}  // namespace
}  // namespace snowkit
