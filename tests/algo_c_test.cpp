// Algorithm C (§9): SNW + one-round, multi-version, MWMR (Theorem 5),
// including the feasibility descent and the bounded-version GC extension.
#include <gtest/gtest.h>

#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/algo_c/algo_c.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct Rig {
  SimRuntime sim;
  HistoryRecorder rec;
  std::unique_ptr<ProtocolSystem> sys;

  Rig(std::size_t k, std::size_t readers, std::size_t writers, std::uint64_t seed = 1,
      bool gc = false)
      : sim(make_uniform_delay(10, 5000, seed)), rec(k) {
    AlgoCOptions opts;
    opts.gc_versions = gc;
    sys = build_algo_c(sim, rec, Topology{k, readers, writers}, opts);
  }
};

TEST(AlgoC, WriteThenReadRoundTrip) {
  Rig rig(3, 1, 1);
  invoke_write(rig.sim, rig.sys->writer(0), {{0, 1}, {2, 3}}, [](const WriteResult&) {});
  rig.sim.run_until_idle();
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 1, 2}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 1);
  EXPECT_EQ(result.values[1].second, kInitialValue);
  EXPECT_EQ(result.values[2].second, 3);
}

TEST(AlgoC, OneRoundMultipleVersions) {
  Rig rig(3, 2, 3);
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 20;
  spec.read_span = 2;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  const History h = rig.rec.snapshot();
  const auto report = analyze_snow_trace(rig.sim.trace(), 3, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.max_read_rounds, 1);      // the one-round property
  EXPECT_GT(report.max_versions_per_response, 1);  // ...paid for in versions
  EXPECT_EQ(max_read_rounds(h), 1);
}

TEST(AlgoC, StrictSerializabilityUnderManyWritersAndReaders) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull, 24ull}) {
    Rig rig(4, 3, 3, seed);
    WorkloadSpec spec;
    spec.ops_per_reader = 50;
    spec.ops_per_writer = 25;
    spec.read_span = 3;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
    driver.start();
    rig.sim.run_until_idle();
    auto verdict = check_tag_order(rig.rec.snapshot());
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(AlgoC, DescentHandlesOvertakingReadVals) {
  // Force the race the descent exists for: the reader's read-vals reaches
  // s_y BEFORE the concurrent write lands there, while get-tag-arr reaches
  // the coordinator AFTER update-coor.  kappa_y is then missing from Vals_y
  // and the reader must fall back to the previous cut.
  SimRuntime sim;
  HistoryRecorder rec(2);
  AlgoCOptions opts;
  opts.gc_versions = false;  // GC-off: the descent must SETTLE (no retry path)
  auto sys = build_algo_c(sim, rec, Topology{2, 1, 1}, opts);
  sim.start();

  // Script: hold W's write-val to s_y (object 1) and the READ's messages.
  sim.hold_matching(script::any_of(
      {script::all_of({script::payload_is("write-val"), script::to_node(1)}),
       script::payload_is("read-vals"), script::payload_is("get-tag-arr")}));

  bool w_done = false;
  invoke_write(sim, sys->writer(0), {{0, 10}, {1, 20}}, [&](const WriteResult&) { w_done = true; });
  sim.run_until_idle();  // write-val@s_x delivered+acked; write-val@s_y held

  ReadResult result;
  bool r_done = false;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
    result = r;
    r_done = true;
  });
  sim.run_until_idle();

  // Deliver read-vals to BOTH servers now (s_y has no new version yet)...
  ASSERT_TRUE(script::release_one(sim, script::all_of({script::payload_is("read-vals"),
                                                       script::to_node(0)})));
  ASSERT_TRUE(script::release_one(sim, script::all_of({script::payload_is("read-vals"),
                                                       script::to_node(1)})));
  sim.run_until_idle();
  // ...then let the write finish (write-val@s_y, update-coor)...
  ASSERT_TRUE(script::release_one(sim, script::payload_is("write-val")));
  sim.run_until_idle();
  ASSERT_TRUE(w_done);
  // ...and only now deliver get-tag-arr: t_r names the new write, whose key
  // is absent from the reader's Vals_y snapshot.
  ASSERT_TRUE(script::release_one(sim, script::payload_is("get-tag-arr")));
  sim.run_until_idle();
  ASSERT_TRUE(r_done);
  // Descent must have settled on the old consistent cut.
  EXPECT_EQ(result.values[0].second, kInitialValue);
  EXPECT_EQ(result.values[1].second, kInitialValue);
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(AlgoC, GcBoundsResponseSizes) {
  // Without GC the response size grows with the whole write history; with GC
  // it stays bounded by |W| + 1: one anchor version plus the writes
  // concurrent with some in-flight READ (the watermark cannot pass a
  // registered read's floor).  With closed-loop reads back to back, each
  // writer can overlap a read window with at most two WRITEs under fixed
  // delays, so the bound here is 2 * writers + 1 — independent of the 40-op
  // history length either way.
  auto run = [](bool gc) {
    SimRuntime sim(make_fixed_delay(1000));
    HistoryRecorder rec(2);
    AlgoCOptions opts;
    opts.gc_versions = gc;
    auto sys = build_algo_c(sim, rec, Topology{2, 1, 2}, opts);
    WorkloadSpec spec;
    spec.ops_per_reader = 40;
    spec.ops_per_writer = 40;
    spec.read_span = 2;
    spec.write_span = 2;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    auto verdict = check_tag_order(rec.snapshot());
    EXPECT_TRUE(verdict.ok) << "gc=" << gc << ": " << verdict.explanation;
    return max_read_versions(rec.snapshot());
  };
  const int without_gc = run(false);
  const int with_gc = run(true);
  EXPECT_GT(without_gc, 10);      // grows with history length
  EXPECT_LE(with_gc, 2 * 2 + 1);  // |W| + 1 over the read window
}

TEST(AlgoC, GcPreservesStrictSerializabilityAcrossSeeds) {
  for (std::uint64_t seed = 31; seed < 39; ++seed) {
    Rig rig(3, 2, 3, seed, /*gc=*/true);
    WorkloadSpec spec;
    spec.ops_per_reader = 40;
    spec.ops_per_writer = 20;
    spec.read_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
    driver.start();
    rig.sim.run_until_idle();
    auto verdict = check_tag_order(rig.rec.snapshot());
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(AlgoC, CoordinatorAlsoServesItsObject) {
  Rig rig(2, 1, 1);
  invoke_write(rig.sim, rig.sys->writer(0), {{0, 77}}, [](const WriteResult&) {});
  rig.sim.run_until_idle();
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 77);  // get-tag-arr + read-vals both at s*
}

}  // namespace
}  // namespace snowkit
