// Lemma-20 tag-order verifier on hand-built histories.
#include <gtest/gtest.h>

#include "checker/tag_order.hpp"

namespace snowkit {
namespace {

TxnRecord mk(TxnId id, bool is_read, Tag tag, std::uint64_t inv, std::uint64_t resp,
             std::vector<std::pair<ObjectId, Value>> ops) {
  TxnRecord t;
  t.id = id;
  t.client = 50 + static_cast<NodeId>(id);
  t.is_read = is_read;
  t.tag = tag;
  t.invoke_order = inv;
  t.respond_order = resp;
  t.complete = true;
  if (is_read) {
    t.reads = std::move(ops);
  } else {
    t.writes = std::move(ops);
  }
  return t;
}

TEST(TagOrder, AcceptsConsistentHistory) {
  History h;
  h.num_objects = 2;
  h.txns = {
      mk(1, false, 1, 1, 2, {{0, 10}, {1, 20}}),
      mk(2, true, 1, 3, 4, {{0, 10}, {1, 20}}),   // read at tag 1: sees write 1
      mk(3, false, 2, 5, 6, {{0, 30}}),
      mk(4, true, 2, 7, 8, {{0, 30}, {1, 20}}),
  };
  auto v = check_tag_order(h);
  EXPECT_TRUE(v.ok) << v.explanation;
}

TEST(TagOrder, ReadAtTagZeroSeesInitialValues) {
  History h;
  h.num_objects = 2;
  h.txns = {mk(1, true, 0, 1, 2, {{0, kInitialValue}, {1, kInitialValue}})};
  EXPECT_TRUE(check_tag_order(h).ok);
}

TEST(TagOrder, P2RealTimeInversionRejected) {
  History h;
  h.num_objects = 1;
  // Read completes (tag 2) BEFORE a tag-1 read is invoked: the later read's
  // smaller tag inverts real time.
  h.txns = {
      mk(1, false, 1, 1, 2, {{0, 10}}),
      mk(2, false, 2, 3, 4, {{0, 20}}),
      mk(3, true, 2, 5, 6, {{0, 20}}),
      mk(4, true, 1, 7, 8, {{0, 10}}),
  };
  auto v = check_tag_order(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("P2"), std::string::npos);
}

TEST(TagOrder, P3DuplicateWriteTagsRejected) {
  History h;
  h.num_objects = 1;
  h.txns = {mk(1, false, 1, 1, 2, {{0, 10}}), mk(2, false, 1, 3, 4, {{0, 20}})};
  auto v = check_tag_order(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("P3"), std::string::npos);
}

TEST(TagOrder, P4WrongValueRejected) {
  History h;
  h.num_objects = 1;
  h.txns = {
      mk(1, false, 1, 1, 2, {{0, 10}}),
      mk(2, true, 1, 3, 4, {{0, kInitialValue}}),  // tag 1 but reads initial
  };
  auto v = check_tag_order(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("P4"), std::string::npos);
}

TEST(TagOrder, WriteBeforeReadAtEqualTag) {
  History h;
  h.num_objects = 1;
  // Read with tag 1 must see the tag-1 write (write ≺ read at equal tags).
  h.txns = {mk(1, false, 1, 1, 2, {{0, 10}}), mk(2, true, 1, 1, 3, {{0, 10}})};
  EXPECT_TRUE(check_tag_order(h).ok);
}

TEST(TagOrder, IncompleteTxnRejectedAsNonQuiescent) {
  History h;
  h.num_objects = 1;
  TxnRecord t = mk(1, false, 1, 1, 2, {{0, 10}});
  t.complete = false;
  h.txns = {t};
  auto v = check_tag_order(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("quiescent"), std::string::npos);
}

TEST(TagOrder, MissingTagRejected) {
  History h;
  h.num_objects = 1;
  TxnRecord t = mk(1, true, 0, 1, 2, {{0, kInitialValue}});
  t.tag = kInvalidTag;
  h.txns = {t};
  EXPECT_FALSE(check_tag_order(h).ok);
}

TEST(TagOrder, EqualTagReadsShareThePrefix) {
  History h;
  h.num_objects = 2;
  h.txns = {
      mk(1, false, 1, 1, 2, {{0, 10}, {1, 11}}),
      mk(2, true, 1, 3, 4, {{0, 10}}),
      mk(3, true, 1, 3, 5, {{1, 11}}),
  };
  EXPECT_TRUE(check_tag_order(h).ok);
}

}  // namespace
}  // namespace snowkit
