// The SNOW trace monitor: N/O verdicts computed from synthetic traces.
#include <gtest/gtest.h>

#include "checker/snow_monitor.hpp"

namespace snowkit {
namespace {

struct TraceBuilder {
  Trace t;
  std::uint64_t seq = 1;

  TraceBuilder& inv(NodeId client, TxnId txn) {
    t.append(Action{ActionKind::Invoke, 0, client, kInvalidNode, txn, "", 0, 0});
    return *this;
  }
  TraceBuilder& resp(NodeId client, TxnId txn) {
    t.append(Action{ActionKind::Respond, 0, client, kInvalidNode, txn, "", 0, 0});
    return *this;
  }
  std::uint64_t send(NodeId from, NodeId to, TxnId txn, const char* msg, int versions = 0) {
    t.append(Action{ActionKind::Send, 0, from, to, txn, msg, seq, versions});
    return seq++;
  }
  TraceBuilder& recv(NodeId at, NodeId from, TxnId txn, const char* msg, std::uint64_t s,
                     int versions = 0) {
    t.append(Action{ActionKind::Recv, 0, at, from, txn, msg, s, versions});
    return *this;
  }
};

History one_read_history(NodeId client, TxnId txn) {
  History h;
  h.num_objects = 2;
  TxnRecord r;
  r.id = txn;
  r.client = client;
  r.is_read = true;
  r.complete = true;
  h.txns.push_back(r);
  return h;
}

TEST(SnowMonitor, OneRoundNonBlockingRead) {
  TraceBuilder b;
  b.inv(2, 1);
  const auto s1 = b.send(2, 0, 1, "read-val");
  const auto s2 = b.send(2, 1, 1, "read-val");
  b.recv(0, 2, 1, "read-val", s1);
  const auto r1 = b.send(0, 2, 1, "read-val-resp", 1);
  b.recv(1, 2, 1, "read-val", s2);
  const auto r2 = b.send(1, 2, 1, "read-val-resp", 1);
  b.recv(2, 0, 1, "read-val-resp", r1, 1).recv(2, 1, 1, "read-val-resp", r2, 1);
  b.resp(2, 1);
  const auto report = analyze_snow_trace(b.t, 2, one_read_history(2, 1));
  EXPECT_TRUE(report.satisfies_n());
  EXPECT_TRUE(report.satisfies_o());
  EXPECT_EQ(report.max_read_rounds, 1);
  EXPECT_EQ(report.max_versions_per_response, 1);
}

TEST(SnowMonitor, BlockedServerDetected) {
  TraceBuilder b;
  b.inv(2, 1);
  const auto s1 = b.send(2, 0, 1, "lock-req");
  b.recv(0, 2, 1, "lock-req", s1);
  // Server receives ANOTHER input before responding: blocking.
  const auto w = b.send(3, 0, 9, "write-unlock");
  b.recv(0, 3, 9, "write-unlock", w);
  const auto g = b.send(0, 2, 1, "lock-grant", 1);
  b.recv(2, 0, 1, "lock-grant", g, 1);
  b.resp(2, 1);
  const auto report = analyze_snow_trace(b.t, 2, one_read_history(2, 1));
  EXPECT_FALSE(report.satisfies_n());
  ASSERT_FALSE(report.violations.empty());
}

TEST(SnowMonitor, NeverRespondedIsBlocking) {
  TraceBuilder b;
  b.inv(2, 1);
  const auto s1 = b.send(2, 0, 1, "read-val");
  b.recv(0, 2, 1, "read-val", s1);
  const auto report = analyze_snow_trace(b.t, 2, one_read_history(2, 1));
  EXPECT_FALSE(report.satisfies_n());
}

TEST(SnowMonitor, TwoRoundsCounted) {
  TraceBuilder b;
  b.inv(2, 1);
  const auto s1 = b.send(2, 0, 1, "get-tag-arr");
  b.recv(0, 2, 1, "get-tag-arr", s1);
  const auto r1 = b.send(0, 2, 1, "tag-arr", 1);
  b.recv(2, 0, 1, "tag-arr", r1, 1);
  const auto s2 = b.send(2, 1, 1, "read-val");
  b.recv(1, 2, 1, "read-val", s2);
  const auto r2 = b.send(1, 2, 1, "read-val-resp", 1);
  b.recv(2, 1, 1, "read-val-resp", r2, 1);
  b.resp(2, 1);
  const auto report = analyze_snow_trace(b.t, 2, one_read_history(2, 1));
  EXPECT_EQ(report.max_read_rounds, 2);
  EXPECT_TRUE(report.satisfies_n());
  EXPECT_FALSE(report.satisfies_o());  // two rounds break O
}

TEST(SnowMonitor, MultiVersionResponseCounted) {
  TraceBuilder b;
  b.inv(2, 1);
  const auto s1 = b.send(2, 0, 1, "read-vals");
  b.recv(0, 2, 1, "read-vals", s1);
  const auto r1 = b.send(0, 2, 1, "read-vals-resp", 4);
  b.recv(2, 0, 1, "read-vals-resp", r1, 4);
  b.resp(2, 1);
  const auto report = analyze_snow_trace(b.t, 2, one_read_history(2, 1));
  EXPECT_EQ(report.max_versions_per_response, 4);
  EXPECT_EQ(report.max_read_rounds, 1);
  EXPECT_FALSE(report.satisfies_o());  // multi-version breaks one-version
  EXPECT_TRUE(report.one_round());
}

TEST(SnowMonitor, WriteTrafficIgnored) {
  TraceBuilder b;
  History h;
  h.num_objects = 2;
  TxnRecord w;
  w.id = 9;
  w.client = 3;
  w.is_read = false;
  w.complete = true;
  h.txns.push_back(w);
  b.inv(3, 9);
  const auto s1 = b.send(3, 0, 9, "write-val");
  b.recv(0, 3, 9, "write-val", s1);
  // Server does NOT respond before another input — but txn 9 is a WRITE, so
  // the N verdict for reads is unaffected.
  const auto s2 = b.send(3, 1, 9, "write-val");
  b.recv(1, 3, 9, "write-val", s2);
  const auto report = analyze_snow_trace(b.t, 2, h);
  EXPECT_TRUE(report.satisfies_n());
  EXPECT_EQ(report.max_read_rounds, 0);
}

}  // namespace
}  // namespace snowkit
