// snowkit-wire-v1 framing at the byte boundary: encoded frames must survive
// arbitrary TCP segmentation (split at EVERY byte offset and reassembled
// through the NetRuntime framing decoder), and malformed streams — garbage
// prefixes, truncations, absurd lengths — must surface as decoder ERRORS,
// never aborts: a TCP peer is untrusted input until its HELLO checks out.
#include "runtime/socket.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "msg/codec.hpp"

namespace snowkit {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;

/// A payload corpus spanning the codec's interesting shapes: fixed fields,
/// bit-packed masks, delta-coded version lists and nested histories.
std::vector<Message> corpus() {
  std::vector<Message> msgs;
  msgs.push_back(Message{7, WriteValReq{WriteKey{3, 1}, 2, -40}});
  msgs.push_back(Message{8, InfoReaderReq{WriteKey{1, 0}, {1, 0, 1, 1, 0, 0, 1, 0, 1}}});
  msgs.push_back(Message{9, UpdateCoorAck{12, 5}});
  GetTagArrResp tagarr;
  tagarr.tag = 900;
  tagarr.watermark = 890;
  tagarr.latest = {WriteKey{5, 0}, WriteKey{9, 2}, kInitialKey};
  tagarr.history = {{ListedKey{1, WriteKey{1, 0}}, ListedKey{4, WriteKey{2, 1}}}, {}, {}};
  msgs.push_back(Message{10, tagarr});
  ReadValsResp vals;
  vals.obj = 1;
  vals.versions = {Version{kInitialKey, 0}, Version{WriteKey{2, 0}, 77},
                   Version{WriteKey{6, 3}, -1}};
  msgs.push_back(Message{11, vals});
  msgs.push_back(Message{kInvalidTxn, ReadDoneReq{42}});
  msgs.push_back(Message{13, EigerReadResp{0, 123, 4, 9, 17}});
  return msgs;
}

/// The reference stream: HELLO, the whole corpus as MSG frames, SHUTDOWN.
std::vector<std::uint8_t> reference_stream(const std::vector<Message>& msgs) {
  std::vector<std::uint8_t> bytes;
  net::append_hello(bytes, 3);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    net::append_msg(bytes, static_cast<NodeId>(10 + i), static_cast<NodeId>(i), msgs[i]);
  }
  net::append_shutdown(bytes);
  return bytes;
}

struct Decoded {
  std::vector<Message> msgs;
  std::vector<std::pair<NodeId, NodeId>> routes;
  int hellos = 0;
  int shutdowns = 0;
};

/// Drains every complete frame; fails the test on a decoder error.
void drain(FrameDecoder& dec, Decoded& out) {
  Frame f;
  while (true) {
    const auto st = dec.next(f);
    if (st == FrameDecoder::Status::kNeedMore) return;
    ASSERT_EQ(st, FrameDecoder::Status::kFrame) << dec.error();
    if (f.type == FrameType::kHello) {
      net::HelloBody hello;
      std::string err;
      ASSERT_TRUE(net::parse_hello(f.body, hello, err)) << err;
      EXPECT_EQ(hello.process_index, 3u);
      ++out.hellos;
    } else if (f.type == FrameType::kMsg) {
      net::MsgHeader hdr;
      std::string err;
      ASSERT_TRUE(net::parse_msg_header(f.body, hdr, err)) << err;
      out.routes.emplace_back(hdr.from, hdr.to);
      out.msgs.push_back(net::decode_msg_payload(f.body, hdr.payload_offset));
    } else {
      ++out.shutdowns;
    }
  }
}

TEST(FrameRoundtrip, SplitAtEveryByteOffset) {
  const auto msgs = corpus();
  const auto bytes = reference_stream(msgs);
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder dec;
    Decoded out;
    dec.feed(bytes.data(), split);
    drain(dec, out);
    if (HasFatalFailure()) return;
    dec.feed(bytes.data() + split, bytes.size() - split);
    drain(dec, out);
    if (HasFatalFailure()) return;
    ASSERT_EQ(out.hellos, 1) << "split at " << split;
    ASSERT_EQ(out.shutdowns, 1) << "split at " << split;
    ASSERT_EQ(out.msgs.size(), msgs.size()) << "split at " << split;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(out.msgs[i], msgs[i]) << "split at " << split << ", msg " << i;
      EXPECT_EQ(out.routes[i].first, static_cast<NodeId>(10 + i));
      EXPECT_EQ(out.routes[i].second, static_cast<NodeId>(i));
    }
    EXPECT_FALSE(dec.mid_frame());
  }
}

TEST(FrameRoundtrip, ByteAtATime) {
  const auto msgs = corpus();
  const auto bytes = reference_stream(msgs);
  FrameDecoder dec;
  Decoded out;
  for (const std::uint8_t b : bytes) {
    dec.feed(&b, 1);
    drain(dec, out);
    if (HasFatalFailure()) return;
  }
  EXPECT_EQ(out.msgs.size(), msgs.size());
  EXPECT_EQ(out.hellos, 1);
  EXPECT_EQ(out.shutdowns, 1);
}

TEST(FrameRoundtrip, TruncatedPrefixNeverErrorsAndNeverCompletes) {
  const auto msgs = corpus();
  const auto bytes = reference_stream(msgs);
  // Every strict prefix of a valid stream is "need more", possibly with a
  // partial frame pending — never an error, never a phantom extra frame.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameDecoder dec;
    dec.feed(bytes.data(), len);
    Frame f;
    std::size_t frames = 0;
    while (dec.next(f) == FrameDecoder::Status::kFrame) ++frames;
    ASSERT_FALSE(dec.failed()) << "prefix of length " << len << ": " << dec.error();
    ASSERT_LE(frames, msgs.size() + 2);
    if (len < bytes.size()) ASSERT_LT(frames, msgs.size() + 2);
  }
}

TEST(FrameRoundtrip, GarbagePrefixErrorsNotCrashes) {
  // A desynced stream usually presents as an absurd length prefix.
  {
    FrameDecoder dec;
    const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF, 0xFF, 0x00};
    dec.feed(garbage);
    Frame f;
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::kError);
    EXPECT_TRUE(dec.failed());
    // Terminal: feeding valid bytes afterwards cannot resurrect the stream.
    std::vector<std::uint8_t> valid;
    net::append_shutdown(valid);
    dec.feed(valid);
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::kError);
  }
  {
    FrameDecoder dec;  // zero-length frame
    const std::vector<std::uint8_t> zero{0x00, 0x00, 0x00, 0x00};
    dec.feed(zero);
    Frame f;
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::kError);
  }
  {
    FrameDecoder dec;  // unknown frame type
    const std::vector<std::uint8_t> unknown{0x01, 0x00, 0x00, 0x00, 0x7F};
    dec.feed(unknown);
    Frame f;
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::kError);
  }
  // Seeded random garbage: the decoder must error or want more — never pop a
  // frame that then parses as a valid HELLO (magic + version gate), and
  // never crash.
  Xoshiro256 rng(0xC0FFEE);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    std::vector<std::uint8_t> junk(1 + rng.next() % 64);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    dec.feed(junk);
    Frame f;
    while (dec.next(f) == FrameDecoder::Status::kFrame) {
      if (f.type == FrameType::kHello) {
        net::HelloBody hello;
        std::string err;
        EXPECT_FALSE(net::parse_hello(f.body, hello, err) && hello.process_index > 1000)
            << "random junk parsed as a plausible hello";
      }
    }
  }
}

TEST(FrameRoundtrip, ValidFrameThenGarbageDeliversThenErrors) {
  std::vector<std::uint8_t> bytes;
  const Message m{5, SimpleReadReq{1}};
  net::append_msg(bytes, 9, 0, m);
  bytes.insert(bytes.end(), {0xFF, 0xFF, 0xFF, 0x7F, 0x00});  // absurd length
  FrameDecoder dec;
  dec.feed(bytes);
  Frame f;
  ASSERT_EQ(dec.next(f), FrameDecoder::Status::kFrame);
  net::MsgHeader hdr;
  std::string err;
  ASSERT_TRUE(net::parse_msg_header(f.body, hdr, err));
  EXPECT_EQ(net::decode_msg_payload(f.body, hdr.payload_offset), m);
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::kError);
}

TEST(FrameRoundtrip, MsgHeaderParsersRejectMalformedBodies) {
  net::MsgHeader hdr;
  std::string err;
  EXPECT_FALSE(net::parse_msg_header({}, hdr, err));
  EXPECT_FALSE(net::parse_msg_header({0x80}, hdr, err));        // truncated varint
  EXPECT_FALSE(net::parse_msg_header({0x01, 0x02}, hdr, err));  // header, no payload
  net::HelloBody hello;
  EXPECT_FALSE(net::parse_hello({}, hello, err));
  EXPECT_FALSE(net::parse_hello({0x53, 0x4E, 0x57, 0x4B}, hello, err));  // magic only
  // Wrong wire version must be rejected, not silently accepted.
  std::vector<std::uint8_t> v2{0x53, 0x4E, 0x57, 0x4B, 0x02, 0x00};
  EXPECT_FALSE(net::parse_hello(v2, hello, err));
  EXPECT_NE(err.find("wire version"), std::string::npos);
}

TEST(FrameRoundtrip, FramedCodecBytesMatchEncodeMessage) {
  // The MSG payload is the codec's output verbatim — the transport adds
  // framing, never re-encodes (docs/WIRE.md freezes this).
  const auto msgs = corpus();
  for (const Message& m : msgs) {
    std::vector<std::uint8_t> framed;
    net::append_msg(framed, 1, 2, m);
    const auto codec_bytes = encode_message(m);
    ASSERT_GE(framed.size(), codec_bytes.size());
    EXPECT_TRUE(std::equal(codec_bytes.begin(), codec_bytes.end(),
                           framed.end() - static_cast<std::ptrdiff_t>(codec_bytes.size())));
  }
}

// --- write-side coalescing ---------------------------------------------------
//
// WriteCoalescer is the transport's send queue; coalescing must be invisible
// on the wire.  The proof obligation (docs/WIRE.md): the bytes that come out
// of gather()/consume() equal the flat reference stream byte-for-byte, no
// matter where partial writes land or how tight the iovec caps are.

using net::IoSlice;
using net::WriteCoalescer;

/// The corpus as individual whole frames — what NetRuntime queues per send.
std::vector<std::vector<std::uint8_t>> corpus_frames(const std::vector<Message>& msgs) {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.emplace_back();
  net::append_hello(frames.back(), 3);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    frames.emplace_back();
    net::append_msg(frames.back(), static_cast<NodeId>(10 + i), static_cast<NodeId>(i), msgs[i]);
  }
  frames.emplace_back();
  net::append_shutdown(frames.back());
  return frames;
}

/// Simulates the kernel accepting exactly `budget` bytes: gather, copy the
/// accepted prefix onto `wire`, consume — the transport's sendmsg loop with a
/// miserly socket.
void accept_bytes(WriteCoalescer& wq, std::size_t budget, std::size_t max_iov,
                  std::vector<std::uint8_t>& wire) {
  std::vector<IoSlice> slices(max_iov);
  while (budget > 0 && !wq.empty()) {
    const std::size_t cnt = wq.gather(slices.data(), max_iov);
    ASSERT_GT(cnt, 0u) << "non-empty queue gathered nothing";
    std::size_t taken = 0;
    for (std::size_t i = 0; i < cnt && taken < budget; ++i) {
      const std::size_t m = std::min(slices[i].len, budget - taken);
      wire.insert(wire.end(), slices[i].data, slices[i].data + m);
      taken += m;
    }
    wq.consume(taken);
    budget -= taken;
  }
}

TEST(WriteCoalescerTest, PartialWriteResumesAtEveryByteOffset) {
  const auto msgs = corpus();
  const auto frames = corpus_frames(msgs);
  const auto reference = reference_stream(msgs);
  for (std::size_t split = 0; split <= reference.size(); ++split) {
    WriteCoalescer wq;
    for (const auto& f : frames) wq.push(std::vector<std::uint8_t>(f));
    ASSERT_EQ(wq.pending_bytes(), reference.size());
    std::vector<std::uint8_t> wire;
    // First write stops at `split` — inside a length prefix, a type byte, a
    // payload, or exactly on a frame boundary — then the link drains.
    accept_bytes(wq, split, 8, wire);
    if (HasFatalFailure()) return;
    accept_bytes(wq, reference.size() - split, 8, wire);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(wq.empty()) << "split at " << split;
    ASSERT_EQ(wq.pending_bytes(), 0u) << "split at " << split;
    ASSERT_EQ(wire, reference) << "split at " << split;
    // And the stream a peer decoder sees is untouched by coalescing.
    FrameDecoder dec;
    Decoded out;
    dec.feed(wire);
    drain(dec, out);
    if (HasFatalFailure()) return;
    ASSERT_EQ(out.msgs.size(), msgs.size()) << "split at " << split;
    for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(out.msgs[i], msgs[i]);
  }
}

TEST(WriteCoalescerTest, ByteAtATimeKernelStillYieldsTheReferenceStream) {
  const auto msgs = corpus();
  const auto reference = reference_stream(msgs);
  WriteCoalescer wq;
  for (auto& f : corpus_frames(msgs)) wq.push(std::move(f));
  std::vector<std::uint8_t> wire;
  while (!wq.empty()) {
    accept_bytes(wq, 1, 4, wire);
    if (HasFatalFailure()) return;
  }
  EXPECT_EQ(wire, reference);
}

TEST(WriteCoalescerTest, GatherHonorsFrameIovAndByteCapsWithoutStalling) {
  auto five_byte_frame = [] {  // a SHUTDOWN frame is 5 bytes on the wire
    std::vector<std::uint8_t> f;
    net::append_shutdown(f);
    return f;
  };
  WriteCoalescer wq;
  for (int i = 0; i < 100; ++i) wq.push(five_byte_frame());
  std::vector<IoSlice> slices(128);

  // Frame cap: 100 queued, limits say 8 per syscall.
  wq.set_limits(/*max_frames=*/8, /*max_bytes=*/1u << 20);
  EXPECT_EQ(wq.gather(slices.data(), slices.size()), 8u);
  // The caller's iovec array can be smaller still (IOV_MAX clamp).
  EXPECT_EQ(wq.gather(slices.data(), 3), 3u);

  // Byte cap: 12 bytes admits two whole 5-byte frames, never a torn third.
  wq.set_limits(/*max_frames=*/64, /*max_bytes=*/12);
  EXPECT_EQ(wq.gather(slices.data(), slices.size()), 2u);

  // A frame bigger than max_bytes must still go out alone — the byte cap
  // never blocks the first slice, else the queue would stall forever.
  wq.set_limits(/*max_frames=*/64, /*max_bytes=*/4);
  ASSERT_EQ(wq.gather(slices.data(), slices.size()), 1u);
  EXPECT_EQ(slices[0].len, 5u);

  // Under the tightest caps the queue still drains completely and emits
  // every byte exactly once.
  std::vector<std::uint8_t> wire;
  while (!wq.empty()) {
    accept_bytes(wq, 3, 1, wire);
    if (HasFatalFailure()) return;
  }
  EXPECT_EQ(wire.size(), 100u * 5u);
  EXPECT_EQ(wq.pending_frames(), 0u);
}

TEST(WriteCoalescerTest, ConsumeReturnsSpentBuffersForRecycling) {
  const auto msgs = corpus();
  auto frames = corpus_frames(msgs);
  WriteCoalescer wq;
  std::size_t total = 0;
  for (const auto& f : frames) {
    total += f.size();
    wq.push(std::vector<std::uint8_t>(f));
  }
  std::vector<IoSlice> slices(frames.size());
  ASSERT_EQ(wq.gather(slices.data(), slices.size()), frames.size());
  std::vector<std::vector<std::uint8_t>> spent;
  EXPECT_EQ(wq.consume(total, &spent), frames.size());
  ASSERT_EQ(spent.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_EQ(spent[i], frames[i]);
  EXPECT_TRUE(wq.empty());
}

TEST(WriteCoalescerTest, TakeUnsentDropsOnlyThePartiallyWrittenFront) {
  const auto msgs = corpus();
  const auto frames = corpus_frames(msgs);
  {
    // Connection dies 3 bytes into frame 1: frame 0 is fully on the old
    // socket, frame 1's prefix died with it, frames 2.. must be requeued.
    WriteCoalescer wq;
    for (const auto& f : frames) wq.push(std::vector<std::uint8_t>(f));
    std::vector<std::uint8_t> wire;
    accept_bytes(wq, frames[0].size() + 3, 8, wire);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(wq.front_partially_written());
    const auto unsent = wq.take_unsent();
    ASSERT_EQ(unsent.size(), frames.size() - 2);
    for (std::size_t i = 0; i < unsent.size(); ++i) EXPECT_EQ(unsent[i], frames[i + 2]);
    EXPECT_TRUE(wq.empty());
    EXPECT_EQ(wq.pending_bytes(), 0u);
    EXPECT_FALSE(wq.front_partially_written());
  }
  {
    // Death exactly on a frame boundary: nothing is torn, nothing dropped.
    WriteCoalescer wq;
    for (const auto& f : frames) wq.push(std::vector<std::uint8_t>(f));
    std::vector<std::uint8_t> wire;
    accept_bytes(wq, frames[0].size(), 8, wire);
    if (HasFatalFailure()) return;
    ASSERT_FALSE(wq.front_partially_written());
    const auto unsent = wq.take_unsent();
    ASSERT_EQ(unsent.size(), frames.size() - 1);
    for (std::size_t i = 0; i < unsent.size(); ++i) EXPECT_EQ(unsent[i], frames[i + 1]);
  }
}

}  // namespace
}  // namespace snowkit
