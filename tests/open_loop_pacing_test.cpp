// Open-loop pacing correctness: absolute deadlines vs coordinated omission,
// the sharded TrafficModel engine, and pause/resume.
//
// The regression pinned here: the pre-fix driver re-armed each arrival timer
// RELATIVE to "after the previous callback ran", so every nanosecond of
// callback latency silently stretched the period — a 0.5 ms completion path
// against a 1 ms interval delivered ~2/3 of the nominal rate and hid the
// backlog from the sojourn histogram (textbook coordinated omission).  With
// absolute deadlines (arrival k due at start + k * interval, catch-up on
// overdue deadlines) the delivered rate stays nominal and lateness is
// CHARGED to sojourn instead of hidden.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/thread_runtime.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

// Delivered rate must stay within 10% of nominal even when every arrival's
// submission path burns half the arrival budget.  Pre-fix, the period was
// interval + callback (~1.5 ms), the delivered rate ~67% of nominal, and
// this test fails; with absolute-deadline pacing the catch-up loop absorbs
// the callback latency (0.5 ms of work per 1 ms of budget leaves headroom).
//
// A shared 1-core CI box can steal a large slice of the 150 ms measurement
// window, so the rate check gets 3 attempts — the pre-fix stretch is
// SYSTEMATIC (~0.67x nominal on every attempt), so retries keep the
// regression strict while absorbing transient scheduler noise.
TEST(OpenLoopPacing, DeliveredRateSurvivesSlowCallback) {
  const double nominal = 1000.0;  // 1 ms interval.
  double best = 0.0;
  for (int attempt = 0; attempt < 3 && best < 0.9 * nominal; ++attempt) {
    ThreadRuntime rt;
    HistoryRecorder rec(4);
    auto sys = build_protocol("algo-b", rt, rec, Topology{4, 2, 2});
    rt.start();
    WorkloadSpec spec;
    spec.seed = 5;
    DriverOptions opts;
    opts.mode = ArrivalMode::kOpenLoop;
    opts.total_ops = 150;
    opts.arrival_interval_ns = 1'000'000;  // nominal 1000 ops/s.
    opts.read_fraction = 0.5;
    opts.after_arrival = [] { std::this_thread::sleep_for(std::chrono::microseconds(500)); };
    WorkloadDriver driver(rt, *sys, spec, opts);
    driver.start();
    driver.wait();
    rt.stop();
    ASSERT_TRUE(driver.done());
    EXPECT_EQ(driver.arrivals_issued(), 150u);
    const double achieved = driver.achieved_arrival_rate();
    // The absolute-deadline schedule cannot run AHEAD of nominal on any
    // attempt, quiet window or not.
    EXPECT_LE(achieved, 1.1 * nominal);
    best = std::max(best, achieved);
  }
  EXPECT_GE(best, 0.9 * nominal)
      << "coordinated omission: delivered " << best << " ops/s of " << nominal;
}

// Engine mode on the simulator: virtual-time pacing, exact counts, green
// tag order — and determinism (the whole point of seeded TrafficShards).
TEST(OpenLoopPacing, EngineModeOnSimIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    SimRuntime sim;
    HistoryRecorder rec(8);
    auto sys = build_protocol("algo-c", sim, rec, SystemConfig{8, 2, 2});
    WorkloadSpec spec;
    spec.seed = seed;
    spec.zipf_theta = 0.9;
    DriverOptions opts;
    opts.mode = ArrivalMode::kOpenLoop;
    opts.total_ops = 60;
    opts.arrival_interval_ns = 10'000;
    TrafficModel model;
    model.zipf_theta = 0.9;
    model.permute_ranks = true;
    model.read_fraction = 0.5;
    model.read_span = SpanDist{SpanKind::kUniform, 1, 3, 0.5};
    model.write_span = SpanDist::fixed(2);
    model.logical_clients = 1'000'000;
    opts.traffic = model;
    opts.arrival_shards = 2;
    WorkloadDriver driver(sim, *sys, spec, opts);
    driver.start();
    sim.run_until_idle();
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 60u);
    const auto verdict = check_tag_order(rec.snapshot());
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
    return sim.trace().to_text();
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

// Sharded engine pacing on wall clock: 4 independent timer chains must
// deliver the aggregate nominal rate, and every arrival must complete.
TEST(OpenLoopPacing, ShardedEngineDeliversAggregateRate) {
  ThreadRuntime rt;
  HistoryRecorder rec(8);
  auto sys = build_protocol("algo-b", rt, rec, Topology{8, 4, 4});
  rt.start();
  WorkloadSpec spec;
  spec.seed = 9;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 400;
  opts.arrival_interval_ns = 250'000;  // aggregate nominal 4000 ops/s.
  TrafficModel model;
  model.zipf_theta = 0.99;
  model.permute_ranks = true;
  model.read_fraction = 0.9;
  model.logical_clients = 1'000'000;
  opts.traffic = model;
  opts.arrival_shards = 4;
  WorkloadDriver driver(rt, *sys, spec, opts);
  driver.start();
  driver.wait();
  rt.stop();
  ASSERT_TRUE(driver.done());
  EXPECT_EQ(driver.arrivals_issued(), 400u);
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 400u);
  const double nominal = 1e9 / static_cast<double>(opts.arrival_interval_ns);
  EXPECT_GE(driver.achieved_arrival_rate(), 0.9 * nominal);
  EXPECT_EQ(driver.sojourn_latency().count, 400u);
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// Sampled-Poisson pacing: same nominal rate as the piecewise-constant curve,
// but exponential inter-arrival gaps (CV ~1 instead of exactly 0).  The two
// modes must be STATISTICALLY distinguishable at the same mean, the draws
// must be deterministic per seed, and flipping the flag must not perturb the
// arrival-content stream (the pacer has its own RNG).
TEST(OpenLoopPacing, PoissonGapsShareTheMeanButNotTheShape) {
  constexpr TimeNs kMean = 100'000;  // one segment at 10k ops/s.
  TrafficModel constant;
  constant.rate.segments = {{1e9 / static_cast<double>(kMean), 1'000'000'000}};
  TrafficModel poisson = constant;
  poisson.rate.poisson = true;

  TrafficShard steady(8, constant, /*seed=*/42, 0, 1);
  TrafficShard bursty(8, poisson, /*seed=*/42, 0, 1);

  constexpr std::size_t kDraws = 20'000;
  double sum = 0, sum_sq = 0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    // Piecewise-constant: next_interval IS interval_at, every draw identical.
    ASSERT_EQ(steady.next_interval(0, 1), kMean);
    const auto gap = static_cast<double>(bursty.next_interval(0, 1));
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  const double cv = std::sqrt(var) / mean;
  // Exponential: mean = nominal interval, CV = 1.  20k samples put the
  // standard error well under the 10% bands.
  EXPECT_NEAR(mean, static_cast<double>(kMean), 0.05 * kMean)
      << "Poisson pacing drifted off the nominal rate";
  EXPECT_NEAR(cv, 1.0, 0.1) << "gaps are not exponential (piecewise-constant has CV 0)";

  // Determinism: a same-seed shard replays the identical gap sequence.
  TrafficShard replay(8, poisson, /*seed=*/42, 0, 1);
  TrafficShard fresh(8, poisson, /*seed=*/42, 0, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(replay.next_interval(0, 1), fresh.next_interval(0, 1));

  // The pacer RNG is dedicated: arrival CONTENT is byte-identical whether or
  // not the pacing draws happened (bursty consumed 20k of them above).
  for (int i = 0; i < 200; ++i) {
    const TrafficArrival a = steady.next();
    const TrafficArrival b = bursty.next();
    EXPECT_EQ(a.is_read, b.is_read);
    EXPECT_EQ(a.logical_client, b.logical_client);
    EXPECT_EQ(a.objects, b.objects);
  }
}

// Poisson pacing rides the absolute-deadline engine unchanged: virtual-time
// run completes every arrival, stays checker-green, and is deterministic.
TEST(OpenLoopPacing, PoissonEngineModeOnSimIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    SimRuntime sim;
    HistoryRecorder rec(8);
    auto sys = build_protocol("algo-c", sim, rec, SystemConfig{8, 2, 2});
    WorkloadSpec spec;
    spec.seed = seed;
    DriverOptions opts;
    opts.mode = ArrivalMode::kOpenLoop;
    opts.total_ops = 60;
    opts.arrival_interval_ns = 10'000;
    TrafficModel model;
    model.read_fraction = 0.5;
    model.logical_clients = 1000;
    model.rate.segments = {{100'000.0, 1'000'000'000}};
    model.rate.poisson = true;
    opts.traffic = model;
    opts.arrival_shards = 2;
    WorkloadDriver driver(sim, *sys, spec, opts);
    driver.start();
    sim.run_until_idle();
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 60u);
    const auto verdict = check_tag_order(rec.snapshot());
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
    return sim.trace().to_text();
  };
  EXPECT_EQ(run(31), run(31));
  EXPECT_NE(run(31), run(32));
}

// pause() must stop issuance, resume() must catch up the missed deadlines,
// and the outage must be charged to sojourn (deadlines keep accruing).
TEST(OpenLoopPacing, PauseResumeCatchesUpAndChargesSojourn) {
  ThreadRuntime rt;
  HistoryRecorder rec(4);
  auto sys = build_protocol("algo-b", rt, rec, Topology{4, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.seed = 31;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 100;
  opts.arrival_interval_ns = 500'000;
  opts.read_fraction = 0.5;
  WorkloadDriver driver(rt, *sys, spec, opts);
  driver.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  driver.pause();
  const std::size_t at_pause = driver.arrivals_issued();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Paused: issuance is frozen (the chain idle-polls, at most one tick races
  // the pause flag).
  EXPECT_LE(driver.arrivals_issued(), at_pause + 1);
  driver.resume();
  driver.wait();
  rt.stop();
  ASSERT_TRUE(driver.done());
  EXPECT_EQ(driver.arrivals_issued(), 100u);
  // A 20 ms outage against a 0.5 ms interval: the catch-up burst's sojourn
  // tail must show the outage, not hide it.
  EXPECT_GE(driver.sojourn_latency().p99_ns, 10'000'000u);
}

}  // namespace
}  // namespace snowkit
