// Checker cross-validation: the Lemma-20 tag verifier and the search-based
// checker are independent implementations of the same definition; on every
// history where both apply they must agree.  Also validates the fast
// violation detectors against the exact search (a detector hit must imply a
// search rejection — soundness).
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct XCase {
  std::string kind;
  std::uint64_t seed;
};

class CheckerCrossValidation : public testing::TestWithParam<XCase> {};

TEST_P(CheckerCrossValidation, TagOrderAndSearchAgree) {
  const XCase& c = GetParam();
  SimRuntime sim(make_uniform_delay(10, 6000, c.seed));
  HistoryRecorder rec(3);
  const std::size_t readers = c.kind == "algo-a" ? 1 : 2;  // A is MWSR
  auto sys = build_protocol(c.kind, sim, rec, Topology{3, readers, 2});
  WorkloadSpec spec;
  spec.ops_per_reader = 10;  // small so the exact search stays fast
  spec.ops_per_writer = 5;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = c.seed;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const History h = rec.snapshot();

  const auto tag_verdict = check_tag_order(h);
  const auto search_verdict = check_strict_serializability(h, CheckOptions{2'000'000});
  ASSERT_FALSE(search_verdict.exhausted);
  EXPECT_TRUE(tag_verdict.ok) << tag_verdict.explanation;
  EXPECT_TRUE(search_verdict.ok) << search_verdict.explanation;
}

std::vector<XCase> make_xcases() {
  std::vector<XCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const char* kind : {"algo-b", "algo-c"}) {
      cases.push_back({kind, seed});
    }
  }
  // Algorithm A in MWSR.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) cases.push_back({"algo-a", seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Protocols, CheckerCrossValidation, testing::ValuesIn(make_xcases()),
                         [](const testing::TestParamInfo<XCase>& info) {
                           std::string n = info.param.kind;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n + "_s" + std::to_string(info.param.seed);
                         });

// --- detector soundness on random mutated histories -------------------------

TEST(DetectorSoundness, FractureAndStaleImplySearchRejection) {
  // Generate serializable histories, then mutate one read value; whenever a
  // fast detector fires, the exact search must also reject.
  int detector_hits = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SimRuntime sim(make_uniform_delay(10, 4000, seed));
    HistoryRecorder rec(2);
    auto sys = build_protocol("algo-b", sim, rec, Topology{2, 1, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 8;
    spec.ops_per_writer = 5;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    History h = rec.snapshot();

    // Mutate: make some read return the initial value on its first object.
    Xoshiro256 rng(seed);
    std::vector<std::size_t> reads;
    for (std::size_t i = 0; i < h.txns.size(); ++i) {
      if (h.txns[i].is_read && h.txns[i].complete && h.txns[i].reads[0].second != kInitialValue) {
        reads.push_back(i);
      }
    }
    if (reads.empty()) continue;
    h.txns[reads[rng.below(reads.size())]].reads[0].second = kInitialValue;

    const bool detector = !find_fractured_read(h).empty() || !find_stale_reread(h).empty();
    if (!detector) continue;
    ++detector_hits;
    const auto verdict = check_strict_serializability(h, CheckOptions{2'000'000});
    EXPECT_FALSE(verdict.ok) << "detector fired but exact search accepted (seed " << seed << ")";
    EXPECT_FALSE(verdict.exhausted);
  }
  EXPECT_GT(detector_hits, 0) << "mutations never triggered a detector — test is vacuous";
}

TEST(DetectorSoundness, CleanHistoriesTriggerNoDetector) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    SimRuntime sim(make_uniform_delay(10, 4000, seed));
    HistoryRecorder rec(3);
    auto sys = build_protocol("algo-c", sim, rec, Topology{3, 2, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 15;
    spec.ops_per_writer = 8;
    spec.read_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    const History h = rec.snapshot();
    EXPECT_TRUE(find_fractured_read(h).empty());
    EXPECT_TRUE(find_stale_reread(h).empty());
    EXPECT_TRUE(find_unwritten_value(h).empty());
  }
}

}  // namespace
}  // namespace snowkit
