// Algorithm B (§8): SNW + one-version, two rounds, MWMR (Theorem 4).
#include <gtest/gtest.h>

#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/algo_b/algo_b.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct Rig {
  SimRuntime sim;
  HistoryRecorder rec;
  std::unique_ptr<ProtocolSystem> sys;

  Rig(std::size_t k, std::size_t readers, std::size_t writers, std::uint64_t seed = 1,
      ObjectId coor = 0)
      : sim(make_uniform_delay(10, 5000, seed)), rec(k) {
    AlgoBOptions opts;
    opts.coordinator = coor;
    sys = build_algo_b(sim, rec, Topology{k, readers, writers}, opts);
  }
};

TEST(AlgoB, WriteThenReadRoundTrip) {
  Rig rig(3, 1, 1);
  invoke_write(rig.sim, rig.sys->writer(0), {{0, 1}, {1, 2}, {2, 3}}, [](const WriteResult&) {});
  rig.sim.run_until_idle();
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 2}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(result.values[0].second, 1);
  EXPECT_EQ(result.values[1].second, 3);
}

TEST(AlgoB, ExactlyTwoRoundsOneVersion) {
  Rig rig(4, 2, 2);
  WorkloadSpec spec;
  spec.ops_per_reader = 25;
  spec.ops_per_writer = 10;
  spec.read_span = 3;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  const History h = rig.rec.snapshot();
  const auto report = analyze_snow_trace(rig.sim.trace(), 4, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.max_read_rounds, 2);
  EXPECT_EQ(report.max_versions_per_response, 1);
  EXPECT_EQ(max_read_rounds(h), 2);
  EXPECT_EQ(max_read_versions(h), 1);
}

TEST(AlgoB, StrictSerializabilityUnderManyWritersAndReaders) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    Rig rig(4, 3, 3, seed);
    WorkloadSpec spec;
    spec.ops_per_reader = 50;
    spec.ops_per_writer = 25;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
    driver.start();
    rig.sim.run_until_idle();
    auto verdict = check_tag_order(rig.rec.snapshot());
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(AlgoB, VersionRequestedIsAlwaysPresent) {
  // Round 2 asks each server for the exact kappa_i named by the coordinator;
  // sequencing guarantees presence (no descent needed).  Stress with delays
  // that reorder messages aggressively.
  Rig rig(2, 2, 4, /*seed=*/99);
  WorkloadSpec spec;
  spec.ops_per_reader = 80;
  spec.ops_per_writer = 40;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();  // VersionStore::get aborts if a key were missing
  EXPECT_TRUE(driver.done());
}

TEST(AlgoB, NonDefaultCoordinator) {
  Rig rig(3, 1, 1, /*seed=*/5, /*coor=*/2);
  invoke_write(rig.sim, rig.sys->writer(0), {{0, 7}}, [](const WriteResult&) {});
  rig.sim.run_until_idle();
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 7);
  EXPECT_EQ(result.values[1].second, kInitialValue);
  auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(AlgoB, ReadConcurrentWithWriteGetsConsistentCut) {
  // Hold the writer's update-coor: servers already store the new versions
  // but the coordinator's List does not — a READ must return the old cut.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_algo_b(sim, rec, Topology{2, 1, 1});
  sim.start();
  sim.hold_matching(script::payload_is("update-coor"));
  bool w_done = false;
  invoke_write(sim, sys->writer(0), {{0, 10}, {1, 20}}, [&](const WriteResult&) { w_done = true; });
  sim.run_until_idle();
  EXPECT_FALSE(w_done);

  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, kInitialValue);
  EXPECT_EQ(result.values[1].second, kInitialValue);

  sim.release_all();
  sim.run_until_idle();
  EXPECT_TRUE(w_done);
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace snowkit
