// mini-Eiger (§6): bounded rounds, but NOT strictly serializable — the
// Fig. 5 counterexample, scripted exactly.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/eiger/eiger.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

TEST(Eiger, BasicWriteRead) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_eiger(sim, rec, Topology{2, 1, 1});
  invoke_write(sim, sys->writer(0), {{0, 5}, {1, 6}}, [](const WriteResult&) {});
  sim.run_until_idle();
  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 5);
  EXPECT_EQ(result.values[1].second, 6);
}

TEST(Eiger, ReadsAreBoundedAtTwoNonBlockingRounds) {
  SimRuntime sim(make_uniform_delay(10, 5000, 77));
  HistoryRecorder rec(4);
  auto sys = build_eiger(sim, rec, Topology{4, 2, 2});
  WorkloadSpec spec;
  spec.ops_per_reader = 40;
  spec.ops_per_writer = 30;
  spec.read_span = 3;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const History h = rec.snapshot();
  const auto report = analyze_snow_trace(sim.trace(), 4, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_LE(report.max_read_rounds, 2);  // the bounded-latency claim that DOES hold
  EXPECT_LE(max_read_rounds(h), 2);
}

TEST(Eiger, SlowPathReReadsAtEffectiveTime) {
  // Force non-overlapping intervals: write object 0 repeatedly so its
  // versions carry high timestamps while object 1 stays at clock ~0, then
  // interleave a write between the READ's two server arrivals.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_eiger(sim, rec, Topology{2, 1, 1});
  sim.start();
  for (int i = 1; i <= 3; ++i) {
    invoke_write(sim, sys->writer(0), {{0, i * 10}}, [](const WriteResult&) {});
    sim.run_until_idle();
  }
  // Hold the READ's request to s_1; deliver to s_0 first; then another write
  // to object 1 bumps s_1's clock past s_0's interval before m_y arrives.
  sim.hold_matching(script::all_of({script::payload_is("eiger-read"), script::to_node(1)}));
  ReadResult result;
  bool r_done = false;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
    result = r;
    r_done = true;
  });
  sim.run_until_idle();
  invoke_write(sim, sys->writer(0), {{1, 99}}, [](const WriteResult&) {});
  sim.run_until_idle();
  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  ASSERT_TRUE(r_done);
  const History h = rec.snapshot();
  EXPECT_EQ(max_read_rounds(h), 2);  // slow path engaged
  // The combined result must still be one of the serializable outcomes.
  auto verdict = check_strict_serializability(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Eiger, Fig5ViolationScripted) {
  // Fig. 5: writers CW1 (w1, w2 on object B) and CW2 (w3 on object A),
  // reader CR with R = {rA, rB}.  The adversary delivers rB at S_B before
  // w2 and rA at S_A after w3; the logical validity intervals overlap, Eiger
  // accepts — but w3 starts after w2 finishes, so R observing w3 while
  // missing w2 violates strict serializability.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_eiger(sim, rec, Topology{2, 1, 2});
  sim.start();
  const ObjectId A = 0;
  const ObjectId B = 1;

  // w1 = write(B, 1) by CW1, completes.
  invoke_write(sim, sys->writer(0), {{B, 1}}, [](const WriteResult&) {});
  sim.run_until_idle();

  // R = {rA, rB} invoked; hold rA (to S_A); deliver rB at S_B now (before w2).
  sim.hold_matching(script::all_of({script::payload_is("eiger-read"), script::to_node(A)}));
  ReadResult result;
  bool r_done = false;
  invoke_read(sim, sys->reader(0), {A, B}, [&](const ReadResult& r) {
    result = r;
    r_done = true;
  });
  sim.run_until_idle();  // rB served: returns w1's value with interval [1, 2]
  EXPECT_FALSE(r_done);

  // w2 = write(B, 2) by CW1 completes; then w3 = write(A, 3) by CW2 —
  // invoked strictly after w2's response.
  bool w2_done = false;
  invoke_write(sim, sys->writer(0), {{B, 2}}, [&](const WriteResult&) { w2_done = true; });
  sim.run_until_idle();
  ASSERT_TRUE(w2_done);
  invoke_write(sim, sys->writer(1), {{A, 3}}, [](const WriteResult&) {});
  sim.run_until_idle();

  // Now deliver rA at S_A: returns w3 with a low logical interval that
  // overlaps rB's.  Eiger accepts in one round.
  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  ASSERT_TRUE(r_done);
  EXPECT_EQ(result.values[0].second, 3);  // rA = w3
  EXPECT_EQ(result.values[1].second, 1);  // rB = w1  (missed w2!)

  const History h = rec.snapshot();
  auto verdict = check_strict_serializability(h);
  EXPECT_FALSE(verdict.ok) << "Fig. 5 history must not be strictly serializable";
  EXPECT_FALSE(find_stale_reread(h).empty() && verdict.ok);
}

TEST(Eiger, RandomWorkloadsStayCausallyPlausibleButMayViolateS) {
  // Not an invariant test: documents that random (non-adversarial) runs of
  // mini-Eiger usually pass the checker — the violation needs a targeted
  // schedule, which is why the original claim survived review.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SimRuntime sim(make_uniform_delay(10, 3000, seed));
    HistoryRecorder rec(3);
    auto sys = build_eiger(sim, rec, Topology{3, 2, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 12;
    spec.ops_per_writer = 6;
    spec.read_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    auto verdict = check_strict_serializability(rec.snapshot(), CheckOptions{200'000});
    if (!verdict.ok && !verdict.exhausted) ++violations;
  }
  SUCCEED() << violations << " of 6 random runs violated S";
}

}  // namespace
}  // namespace snowkit
