// Differential-fuzz battery for the adaptive meta-protocol (ISSUE 10
// acceptance).
//
// The same generated client programs and schedule seeds run across
// {adaptive, algo-b, algo-c} and every run must stay checker-green —
// including under recorded crash/restart schedules through the replicated
// build.  Recorded adaptive ScheduleLogs carry kSwitch annotations (the
// coordinator's mode flips at their position in the decision stream) and
// must still replay byte-identically, which is what lets adaptive repros
// minimize through the ddmin shrinker like any other protocol's.  The
// battery's own vacuity guard is broken-adaptive — the cache stub that
// serves cached versions without the watermark proof — which must be
// convicted within kConvictionSeeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"
#include "sim/trace.hpp"

namespace snowkit::fuzz {
namespace {

// ISSUE 10 acceptance floor: >=200 seeds per protocol, crash/restart
// schedules included.
constexpr std::uint64_t kDifferentialSeeds = 200;
constexpr std::uint64_t kCrashSeeds = 25;
constexpr std::uint64_t kConvictionSeeds = 20;
constexpr std::size_t kCrashPoints[] = {15, 40, 90};

const std::vector<std::string> kStrictTrio{"adaptive", "algo-b", "algo-c"};

/// A hand-built case that reliably flips object 0 into C-mode: the default
/// switch_up of 4 against a 2s decay means four quick writes are enough,
/// and the trailing reads then travel the prefetch path.
FuzzCase switching_case(std::uint64_t seed) {
  FuzzCase c;
  c.protocol = "adaptive";
  c.num_objects = 2;
  c.num_readers = 1;
  c.num_writers = 1;
  c.schedule_seed = seed;
  // One unified client (max(readers, writers) = 1) running writes-then-reads
  // in FIFO order: the six writes build object 0's EWMA credit past
  // switch_up, the reads then travel the C-mode prefetch path.
  for (Value v = 1; v <= 6; ++v) c.ops.push_back({/*client=*/0, false, {0}, {v * 10}});
  c.ops.push_back({/*client=*/0, true, {0, 1}, {}});
  c.ops.push_back({/*client=*/0, true, {0, 1}, {}});
  return c;
}

bool has_switch(const ScheduleLog& log) {
  return std::any_of(log.decisions.begin(), log.decisions.end(), [](const ScheduleDecision& d) {
    return d.kind == ScheduleDecisionKind::kSwitch;
  });
}

TEST(AdaptiveFuzz, DifferentialBatteryStaysGreenAcrossTheStrictTrio) {
  GenParams params;
  for (std::uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
    const FuzzCase base = generate_case("adaptive", params, seed);
    const DifferentialReport diff = differential_check(base, kStrictTrio);
    ASSERT_EQ(diff.outcomes.size(), kStrictTrio.size());
    for (const DifferentialOutcome& out : diff.outcomes) {
      EXPECT_FALSE(out.report.violation)
          << out.protocol << " failed the shared program at seed " << seed << ": "
          << out.report.checker << ": " << out.report.explanation;
    }
    EXPECT_FALSE(diff.divergence) << "seed " << seed << ": " << diff.details;
  }
}

TEST(AdaptiveFuzz, CrashRestartSchedulesStayGreenAcrossTheTrio) {
  GenParams params;
  for (const std::string& protocol : kStrictTrio) {
    for (std::uint64_t seed = 1; seed <= kCrashSeeds; ++seed) {
      FuzzCase c = generate_case(protocol, params, seed);
      c.replicas = 2;
      for (const std::size_t crash_at : kCrashPoints) {
        // Half the runs also restart the victim, exercising WAL rejoin (and
        // for adaptive: the all-B/epoch-0 reset of the fresh lineage).
        const std::size_t restart_at = seed % 2 == 0 ? crash_at + 40 : 0;
        const CaseRun run = run_case_with_crash(c, /*victim=*/0, crash_at, restart_at);
        const OracleReport report = check_run(protocol, run);
        EXPECT_FALSE(report.violation)
            << protocol << " seed " << seed << " crash_at " << crash_at << " restart_at "
            << restart_at << ": " << report.checker << ": " << report.explanation;
        EXPECT_TRUE(run.completed) << protocol << " seed " << seed << " crash_at " << crash_at
                                   << ": workload wedged across failover";
      }
    }
  }
}

TEST(AdaptiveFuzz, SwitchDecisionsLandInTheLogAndReplayByteIdentically) {
  for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
    const FuzzCase c = switching_case(seed);
    const CaseRun first = run_case(c);
    ASSERT_TRUE(first.completed) << "seed " << seed;
    EXPECT_TRUE(has_switch(first.log))
        << "seed " << seed << ": six back-to-back writes produced no kSwitch annotation";
    const CaseRun again = replay_case(c, first.log);
    EXPECT_EQ(trace_fingerprint(first.trace), trace_fingerprint(again.trace)) << "seed " << seed;
    EXPECT_TRUE(again.log == first.log)
        << "seed " << seed << ": replay re-emitted a different decision stream";
    EXPECT_FALSE(again.stats.guard_tripped) << "seed " << seed;
  }
}

TEST(AdaptiveFuzz, CrashSchedulesWithSwitchesReplayByteIdentically) {
  FuzzCase c = switching_case(3);
  c.replicas = 2;
  const CaseRun first = run_case_with_crash(c, /*victim=*/0, /*crash_at=*/60, /*restart_at=*/120);
  ASSERT_TRUE(first.completed);
  const CaseRun again = replay_case(c, first.log);
  EXPECT_EQ(trace_fingerprint(first.trace), trace_fingerprint(again.trace));
  EXPECT_TRUE(again.log == first.log);
}

TEST(AdaptiveFuzz, SwitchAnnotationsSurviveTheLogCodec) {
  // kind rides as a raw u8, so kSwitch needs no codec change — pin it.
  ScheduleLog log;
  log.holds = {1, 0, 1};
  log.decisions.push_back({ScheduleDecisionKind::kStep, 0});
  log.decisions.push_back({ScheduleDecisionKind::kSwitch, (7u << 1) | 1u});
  log.decisions.push_back({ScheduleDecisionKind::kRelease, 2});
  BufWriter w;
  encode_schedule_log(log, w);
  const auto bytes = w.take();
  BufReader r(bytes);
  const ScheduleLog back = decode_schedule_log(r);
  EXPECT_TRUE(back == log);
}

TEST(AdaptiveFuzz, BrokenAdaptiveIsConvictedWithinBudget) {
  GenParams params;
  OracleReport convicting;
  std::uint64_t convicted_at = 0;
  for (std::uint64_t seed = 1; seed <= kConvictionSeeds && convicted_at == 0; ++seed) {
    const FuzzCase c = generate_case("broken-adaptive", params, seed);
    const OracleReport report = check_run("broken-adaptive", run_case(c));
    if (report.violation) {
      convicting = report;
      convicted_at = seed;
    }
  }
  ASSERT_NE(convicted_at, 0u)
      << "the unproved-cache injection survived " << kConvictionSeeds
      << " seeds: the differential-fuzz battery's cache half is vacuous";
  EXPECT_TRUE(convicting.expected) << "broken-adaptive does not truthfully claim S";
  EXPECT_FALSE(convicting.checker.empty());
  EXPECT_FALSE(convicting.explanation.empty());
}

TEST(AdaptiveFuzz, AdaptiveJoinsTheAuditedStrictClass) {
  EXPECT_TRUE(audits_strict_serializability("adaptive"));
  EXPECT_TRUE(audits_strict_serializability("broken-adaptive"));
  const auto cls = strict_serializable_class();
  EXPECT_TRUE(std::find(cls.begin(), cls.end(), "adaptive") != cls.end());
  EXPECT_TRUE(std::find(cls.begin(), cls.end(), "broken-adaptive") != cls.end());
}

}  // namespace
}  // namespace snowkit::fuzz
