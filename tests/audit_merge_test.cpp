// Offline merge: per-process chunk files -> one coherent, well-formed run.
// The synthetic fleets here hand-build chunks through the real ChunkWriter
// so the tests exercise codec + merge exactly as the CLI does.
#include "audit/merge.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/trace.hpp"

namespace snowkit::audit {
namespace {

ChunkMeta meta_for(std::uint32_t process_index, const std::string& protocol = "simple") {
  ChunkMeta meta;
  meta.process_index = process_index;
  meta.protocol = protocol;
  meta.num_servers = 1;
  return meta;
}

ChunkFile make_chunk(std::uint32_t process_index, std::uint64_t ring_uid,
                     const std::vector<RawEvent>& events, std::uint64_t drops = 0,
                     const History* history = nullptr,
                     const std::string& protocol = "simple") {
  ChunkWriter w(meta_for(process_index, protocol));
  if (!events.empty()) w.add_group(ring_uid, /*base_seq=*/0, events.data(), events.size());
  if (history != nullptr) w.set_history(*history);
  return decode_chunk(w.finish(drops), "make_chunk");
}

// One request/reply exchange: client node 1 <-> server node 0, seen from
// both processes' rings.  Timestamps share the machine-wide monotonic clock,
// so send <= recv on both legs.
std::vector<RawEvent> client_ring() {
  return {
      {EventKind::kSend, 100, 1, 0, 7, "SimpleReadReq", 20, 0},
      {EventKind::kRecv, 400, 1, 0, 7, "SimpleReadResp", 0, 1},
  };
}

std::vector<RawEvent> server_ring() {
  return {
      {EventKind::kRecv, 200, 0, 1, 7, "SimpleReadReq", 0, 0},
      {EventKind::kSend, 300, 0, 1, 7, "SimpleReadResp", 24, 1},
  };
}

TEST(AuditMerge, TwoProcessExchangeMergesWellFormed) {
  History h;
  h.num_objects = 1;
  const auto merged = merge_chunks({
      make_chunk(0, /*ring_uid=*/1, server_ring()),
      make_chunk(1, /*ring_uid=*/1, client_ring(), 0, &h),
  });

  EXPECT_EQ(merged.protocol, "simple");
  EXPECT_EQ(merged.processes, 2u);
  EXPECT_EQ(merged.total_events, 4u);
  EXPECT_EQ(merged.unmatched_recvs, 0u);
  EXPECT_EQ(merged.unmatched_sends, 0u);
  ASSERT_TRUE(merged.history.has_value());

  std::string why;
  EXPECT_TRUE(well_formed(merged.trace, &why)) << why;
  ASSERT_EQ(merged.trace.size(), 4u);
  // Time order with Recvs after their matched Sends.
  EXPECT_EQ(merged.trace[0].kind, ActionKind::Send);
  EXPECT_EQ(merged.trace[0].node, 1u);
  EXPECT_EQ(merged.trace[1].kind, ActionKind::Recv);
  EXPECT_EQ(merged.trace[1].node, 0u);
  EXPECT_EQ(merged.trace[2].kind, ActionKind::Send);
  EXPECT_EQ(merged.trace[3].kind, ActionKind::Recv);
  // Pairing: request legs share a msg_seq, reply legs share another.
  EXPECT_EQ(merged.trace[0].msg_seq, merged.trace[1].msg_seq);
  EXPECT_EQ(merged.trace[2].msg_seq, merged.trace[3].msg_seq);
  EXPECT_NE(merged.trace[0].msg_seq, merged.trace[2].msg_seq);
}

TEST(AuditMerge, RecvTimestampedBeforeItsSendStillOrdersAfterIt) {
  // Scheduling jitter can stamp the Recv before the Send it matches (the
  // observer runs around the actual socket ops).  The merge must still emit
  // Send before Recv or the trace breaks well_formed().
  const std::vector<RawEvent> client = {
      {EventKind::kSend, 150, 1, 0, 7, "SimpleReadReq", 20, 0},
  };
  const std::vector<RawEvent> server = {
      {EventKind::kRecv, 120, 0, 1, 7, "SimpleReadReq", 0, 0},  // "earlier" than the send
  };
  const auto merged = merge_chunks({
      make_chunk(0, 1, server),
      make_chunk(1, 1, client),
  });
  std::string why;
  EXPECT_TRUE(well_formed(merged.trace, &why)) << why;
  ASSERT_EQ(merged.trace.size(), 2u);
  EXPECT_EQ(merged.trace[0].kind, ActionKind::Send);
  EXPECT_EQ(merged.trace[1].kind, ActionKind::Recv);
}

TEST(AuditMerge, OrphanRecvIsExcludedAndCounted) {
  // The Send that would match this Recv was overwritten in its ring (drops
  // > 0); the Recv must be dropped from the trace, not crash the merge or
  // poison well_formed().
  const std::vector<RawEvent> server = {
      {EventKind::kRecv, 200, 0, 1, 7, "SimpleReadReq", 0, 0},
      {EventKind::kSend, 300, 0, 1, 7, "SimpleReadResp", 24, 1},
  };
  const std::vector<RawEvent> client = {
      {EventKind::kRecv, 400, 1, 0, 7, "SimpleReadResp", 0, 1},
  };
  const auto merged = merge_chunks({
      make_chunk(0, 1, server),
      make_chunk(1, 1, client, /*drops=*/5),
  });
  EXPECT_EQ(merged.total_drops, 5u);
  EXPECT_EQ(merged.unmatched_recvs, 1u);  // server's orphan request Recv
  std::string why;
  EXPECT_TRUE(well_formed(merged.trace, &why)) << why;
  // The reply exchange survived intact.
  ASSERT_EQ(merged.trace.size(), 2u);
  EXPECT_EQ(merged.trace[0].kind, ActionKind::Send);
  EXPECT_EQ(merged.trace[0].msg, "SimpleReadResp");
  EXPECT_EQ(merged.trace[1].kind, ActionKind::Recv);
}

TEST(AuditMerge, PerRingOrderSurvivesTimestampTies) {
  // Two events in one ring with the SAME timestamp: per-node program order
  // is the ring order, which must survive into the merged trace.
  const std::vector<RawEvent> ring = {
      {EventKind::kSend, 100, 1, 0, 7, "SimpleReadReq", 20, 0},
      {EventKind::kSend, 100, 1, 0, 8, "SimpleReadReq", 20, 0},
  };
  const auto merged = merge_chunks({make_chunk(1, 1, ring)});
  ASSERT_EQ(merged.trace.size(), 2u);
  EXPECT_EQ(merged.trace[0].txn, 7u);
  EXPECT_EQ(merged.trace[1].txn, 8u);
  EXPECT_EQ(merged.unmatched_sends, 2u);  // kept in the trace, but counted
}

TEST(AuditMerge, MismatchedChunksAreRejected) {
  EXPECT_THROW(merge_chunks({}), std::invalid_argument);
  EXPECT_THROW(merge_chunks({
                   make_chunk(0, 1, server_ring(), 0, nullptr, "simple"),
                   make_chunk(1, 1, client_ring(), 0, nullptr, "algo-b"),
               }),
               std::invalid_argument);
  // Two histories cannot belong to one run (exactly one client process).
  History h;
  h.num_objects = 1;
  EXPECT_THROW(merge_chunks({
                   make_chunk(0, 1, server_ring(), 0, &h),
                   make_chunk(1, 1, client_ring(), 0, &h),
               }),
               std::invalid_argument);
}

TEST(AuditMerge, MergedFileRoundTripsAndRejectsTruncation) {
  History h;
  h.num_objects = 1;
  const auto merged = merge_chunks({
      make_chunk(0, 1, server_ring()),
      make_chunk(1, 1, client_ring(), /*drops=*/2, &h),
  });
  const auto bytes = encode_merged(merged);
  const auto back = decode_merged(bytes, "roundtrip");

  EXPECT_EQ(back.protocol, merged.protocol);
  EXPECT_EQ(back.total_events, merged.total_events);
  EXPECT_EQ(back.total_drops, 2u);
  EXPECT_EQ(back.unmatched_recvs, merged.unmatched_recvs);
  ASSERT_TRUE(back.history.has_value());
  EXPECT_EQ(encode_trace(back.trace), encode_trace(merged.trace));

  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(decode_merged(prefix, "trunc"), std::invalid_argument) << len;
  }
}

}  // namespace
}  // namespace snowkit::audit
