// Simulator semantics: delivery, determinism, holds/releases, traces.
#include <gtest/gtest.h>

#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

/// Echo node: replies to every simple-read with its stored value; applies
/// simple-writes.
class Echo final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    if (const auto* w = std::get_if<SimpleWriteReq>(&m.payload)) {
      value_ = w->value;
      send(from, Message{m.txn, SimpleWriteAck{w->obj}});
    } else if (const auto* r = std::get_if<SimpleReadReq>(&m.payload)) {
      send(from, Message{m.txn, SimpleReadResp{r->obj, value_}});
    }
  }
  Value value_ = 0;
};

/// Client capturing responses.
class Probe final : public Node {
 public:
  void on_message(NodeId, const Message& m) override {
    if (const auto* r = std::get_if<SimpleReadResp>(&m.payload)) values.push_back(r->value);
    if (std::holds_alternative<SimpleWriteAck>(m.payload)) ++acks;
  }
  std::vector<Value> values;
  int acks = 0;
};

struct Rig {
  SimRuntime sim;
  Echo* server;
  Probe* client;
  NodeId server_id, client_id;

  explicit Rig(std::unique_ptr<DelayModel> d = nullptr) : sim(std::move(d)) {
    auto s = std::make_unique<Echo>();
    auto c = std::make_unique<Probe>();
    server = s.get();
    client = c.get();
    server_id = sim.add_node(std::move(s));
    client_id = sim.add_node(std::move(c));
  }
};

TEST(SimRuntime, DeliversReliably) {
  Rig rig;
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleWriteReq{0, 42}});
  });
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.server->value_, 42);
  EXPECT_EQ(rig.client->acks, 1);
}

TEST(SimRuntime, VirtualTimeAdvancesWithDelays) {
  Rig rig(make_fixed_delay(500));
  EXPECT_EQ(rig.sim.now_ns(), 0u);
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleReadReq{0}});
  });
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.sim.now_ns(), 1000u);  // request + response, 500ns each
}

TEST(SimRuntime, HoldCapturesMatchingMessages) {
  Rig rig;
  rig.sim.hold_matching(script::payload_is("simple-read"));
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleReadReq{0}});
  });
  rig.sim.run_until_idle();
  EXPECT_TRUE(rig.client->values.empty());
  EXPECT_EQ(rig.sim.held_count(), 1u);
}

TEST(SimRuntime, ReleaseDeliversImmediatelyBeforeQueuedEvents) {
  Rig rig;
  rig.sim.hold_matching(script::payload_is("simple-read"));
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleReadReq{0}});
    rig.sim.send(rig.client_id, rig.server_id, Message{2, SimpleWriteReq{0, 9}});
  });
  rig.sim.run_until(
      [&] { return rig.sim.held_count() == 1; });  // both sends done; write queued
  // Releasing the read delivers it NOW — before the queued write.
  ASSERT_TRUE(script::release_one(rig.sim, script::payload_is("simple-read")));
  EXPECT_EQ(rig.server->value_, 0);  // write not yet applied when read was served
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.client->values.size(), 1u);
  EXPECT_EQ(rig.client->values[0], 0);
  EXPECT_EQ(rig.server->value_, 9);
}

TEST(SimRuntime, ReleaseIfFiltersByPredicate) {
  Rig rig;
  rig.sim.hold_matching(script::hold_all());
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleReadReq{0}});
    rig.sim.send(rig.client_id, rig.server_id, Message{2, SimpleReadReq{0}});
  });
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.sim.held_count(), 2u);
  EXPECT_EQ(rig.sim.release_if(script::of_txn(2)), 1u);
  // txn 2's request was delivered; the server's response was captured by the
  // still-active hold_all, so txn 1's request and txn 2's response remain.
  ASSERT_EQ(rig.sim.held_count(), 2u);
  EXPECT_EQ(rig.sim.held()[0].msg.txn, 1u);
  EXPECT_EQ(std::string(payload_name(rig.sim.held()[1].msg.payload)), "simple-read-resp");
}

TEST(SimRuntime, TraceRecordsSendRecvPairs) {
  Rig rig;
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleReadReq{0}});
  });
  rig.sim.run_until_idle();
  const Trace& t = rig.sim.trace();
  ASSERT_EQ(t.size(), 4u);  // send req, recv req, send resp, recv resp
  EXPECT_EQ(t[0].kind, ActionKind::Send);
  EXPECT_EQ(t[1].kind, ActionKind::Recv);
  EXPECT_EQ(t[0].msg_seq, t[1].msg_seq);
  std::string why;
  EXPECT_TRUE(well_formed(t, &why)) << why;
}

TEST(SimRuntime, DeterministicAcrossRuns) {
  auto run = [] {
    Rig rig(make_uniform_delay(10, 1000, 42));
    for (int i = 0; i < 20; ++i) {
      rig.sim.post(rig.client_id, [&rig, i] {
        rig.sim.send(rig.client_id, rig.server_id, Message{static_cast<TxnId>(i), SimpleWriteReq{0, i}});
      });
    }
    rig.sim.run_until_idle();
    return rig.sim.trace().to_text();
  };
  EXPECT_EQ(run(), run());
}

TEST(SimRuntime, CodecCheckRoundTripsMessages) {
  Rig rig;
  rig.sim.set_codec_check(true);
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleWriteReq{0, 77}});
  });
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.server->value_, 77);
}

TEST(SimRuntime, RunUntilPredicate) {
  Rig rig;
  rig.sim.post(rig.client_id, [&] {
    rig.sim.send(rig.client_id, rig.server_id, Message{1, SimpleReadReq{0}});
  });
  EXPECT_TRUE(rig.sim.run_until([&] { return !rig.client->values.empty(); }));
  EXPECT_FALSE(rig.sim.run_until([&] { return rig.client->values.size() > 5; }));
}

TEST(TraceTest, IndistinguishabilityProjection) {
  Rig a;
  Rig b;
  for (Rig* r : {&a, &b}) {
    r->sim.post(r->client_id, [r] {
      r->sim.send(r->client_id, r->server_id, Message{1, SimpleReadReq{0}});
    });
    r->sim.run_until_idle();
  }
  EXPECT_TRUE(indistinguishable_at(a.sim.trace(), b.sim.trace(), a.server_id));
  EXPECT_TRUE(indistinguishable_at(a.sim.trace(), b.sim.trace(), a.client_id));
}

TEST(SimRuntime, SpikyDelayStaysFinite) {
  Rig rig(make_spiky_delay(1000, 10, 0.2, 7));
  for (int i = 0; i < 50; ++i) {
    rig.sim.post(rig.client_id, [&rig, i] {
      rig.sim.send(rig.client_id, rig.server_id, Message{static_cast<TxnId>(i), SimpleReadReq{0}});
    });
  }
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.client->values.size(), 50u);
}

}  // namespace
}  // namespace snowkit
