// Algorithm A (§5.2): SNOW in MWSR with C2C communication (Theorem 3).
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/algo_a/algo_a.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct Rig {
  SimRuntime sim;
  HistoryRecorder rec;
  std::unique_ptr<ProtocolSystem> sys;

  Rig(std::size_t k, std::size_t writers, std::uint64_t seed = 1)
      : sim(make_uniform_delay(10, 5000, seed)), rec(k) {
    sys = build_algo_a(sim, rec, Topology{k, 1, writers});
  }
};

TEST(AlgoA, SingleWriteThenRead) {
  Rig rig(2, 1);
  bool w_done = false;
  invoke_write(rig.sim, rig.sys->writer(0), {{0, 10}, {1, 20}},
               [&](const WriteResult&) { w_done = true; });
  rig.sim.run_until_idle();
  ASSERT_TRUE(w_done);

  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(result.values[0], (std::pair<ObjectId, Value>{0, 10}));
  EXPECT_EQ(result.values[1], (std::pair<ObjectId, Value>{1, 20}));
}

TEST(AlgoA, ReadBeforeAnyWriteReturnsInitial) {
  Rig rig(3, 1);
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 1, 2}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  for (const auto& [obj, v] : result.values) EXPECT_EQ(v, kInitialValue) << "object " << obj;
}

TEST(AlgoA, PartialWriteSetLookup) {
  // Write only object 1; a read of {0,1} must see initial for 0.
  Rig rig(2, 1);
  invoke_write(rig.sim, rig.sys->writer(0), {{1, 5}}, [](const WriteResult&) {});
  rig.sim.run_until_idle();
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, kInitialValue);
  EXPECT_EQ(result.values[1].second, 5);
}

TEST(AlgoA, ConcurrentReadIsSnapshotOfList) {
  // Hold the info-reader: the reader's List does not change, so a READ
  // concurrent with the WRITE returns the OLD consistent snapshot (never a
  // fractured mix), even though both servers already store the new values.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_algo_a(sim, rec, Topology{2, 1, 1});
  sim.start();
  sim.hold_matching(script::payload_is("info-reader"));
  bool w_done = false;
  invoke_write(sim, sys->writer(0), {{0, 10}, {1, 20}}, [&](const WriteResult&) { w_done = true; });
  sim.run_until_idle();
  EXPECT_FALSE(w_done);  // blocked on info-reader ack

  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, kInitialValue);
  EXPECT_EQ(result.values[1].second, kInitialValue);

  sim.release_all();
  sim.run_until_idle();
  EXPECT_TRUE(w_done);
  auto verdict = check_strict_serializability(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(AlgoA, TagOrderHoldsUnderRandomWorkload) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rig rig(4, 3, seed);
    WorkloadSpec spec;
    spec.ops_per_reader = 60;
    spec.ops_per_writer = 25;
    spec.read_span = 3;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
    driver.start();
    rig.sim.run_until_idle();
    ASSERT_TRUE(driver.done());
    const History h = rig.rec.snapshot();
    auto verdict = check_tag_order(h);
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(AlgoA, SnowPropertiesHoldOnTrace) {
  Rig rig(3, 2);
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  const History h = rig.rec.snapshot();
  const auto report = analyze_snow_trace(rig.sim.trace(), 3, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_TRUE(report.satisfies_o());
  EXPECT_EQ(report.max_read_rounds, 1);
  EXPECT_EQ(report.max_versions_per_response, 1);
  EXPECT_EQ(max_read_rounds(h), 1);
}

TEST(AlgoA, WritesEventuallyCompleteUnderConcurrency) {
  Rig rig(2, 4);
  WorkloadSpec spec;
  spec.ops_per_reader = 20;
  spec.ops_per_writer = 20;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  const History h = rig.rec.snapshot();
  EXPECT_EQ(h.completed_writes(), 4u * 20u);  // the W property
}

TEST(AlgoA, RefusesMultipleReadersByDefault) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  EXPECT_DEATH(build_algo_a(sim, rec, Topology{2, 2, 1}), "MWSR");
}

TEST(AlgoA, MultiReaderDemoViolatesS) {
  // The Fig. 1(a) ✗-cell: two readers + one writer.  Delay r2's info-reader;
  // r1 reads new values, then r2 (strictly later) reads old values.
  SimRuntime sim;
  HistoryRecorder rec(2);
  AlgoAOptions opts;
  opts.allow_multiple_readers = true;
  auto sys = build_algo_a(sim, rec, Topology{2, 2, 1}, opts);
  sim.start();
  const NodeId r2_node = sys->reader(1).node_id();
  sim.hold_matching(script::all_of({script::payload_is("info-reader"), script::to_node(r2_node)}));

  invoke_write(sim, sys->writer(0), {{0, 10}, {1, 20}}, [](const WriteResult&) {});
  sim.run_until_idle();

  ReadResult r1;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) { r1 = r; });
  sim.run_until_idle();
  EXPECT_EQ(r1.values[0].second, 10);  // r1 sees the new version

  ReadResult r2;
  invoke_read(sim, sys->reader(1), {0, 1}, [&](const ReadResult& r) { r2 = r; });
  sim.run_until_idle();
  EXPECT_EQ(r2.values[0].second, kInitialValue);  // r2, later, sees the old one

  sim.release_all();
  sim.run_until_idle();
  const History h = rec.snapshot();
  auto verdict = check_strict_serializability(h);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(find_stale_reread(h).empty());
}

}  // namespace
}  // namespace snowkit
