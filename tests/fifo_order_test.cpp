// Regression test for the ThreadRuntime fast path: batch-drained delivery
// must preserve FIFO order per (sender, receiver) pair — the delivery
// guarantee the paper's channel model specifies and that snow_monitor and
// the tag-order checker rely on when attributing rounds to transactions.
// Runs the same flood in both runtime modes (batched fast path and the
// legacy per-message-lock baseline) and checks every receiver observed every
// sender's sequence numbers strictly in order.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "checker/tag_order.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

/// Records the sequence numbers (Message::txn) observed per sender.  All
/// callbacks run on this node's executor, so no locking is needed.
class OrderRecorder final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    observed_[from].push_back(m.txn);
  }

  const std::map<NodeId, std::vector<TxnId>>& observed() const { return observed_; }

 private:
  std::map<NodeId, std::vector<TxnId>> observed_;
};

class Blaster final : public Node {
 public:
  void on_message(NodeId, const Message&) override {}
};

void run_fifo_flood(bool batched) {
  constexpr std::size_t kSenders = 4;
  constexpr std::size_t kReceivers = 2;
  constexpr std::size_t kPerSenderPerReceiver = 2000;

  ThreadRuntime rt(ThreadRuntime::Options{batched});
  std::vector<NodeId> receivers, senders;
  std::vector<OrderRecorder*> recorders;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    auto node = std::make_unique<OrderRecorder>();
    recorders.push_back(node.get());
    receivers.push_back(rt.add_node(std::move(node)));
  }
  for (std::size_t i = 0; i < kSenders; ++i) {
    senders.push_back(rt.add_node(std::make_unique<Blaster>()));
  }
  rt.start();
  for (std::size_t s = 0; s < kSenders; ++s) {
    const NodeId self = senders[s];
    rt.post(self, [&rt, &receivers, self] {
      // Interleave receivers so batches at each receiver span many senders.
      for (std::size_t seq = 0; seq < kPerSenderPerReceiver; ++seq) {
        for (NodeId to : receivers) {
          rt.send(self, to, Message{seq, SimpleWriteReq{0, static_cast<Value>(seq)}});
        }
      }
    });
  }
  rt.wait_idle();
  rt.stop();

  for (std::size_t r = 0; r < kReceivers; ++r) {
    const auto& observed = recorders[r]->observed();
    ASSERT_EQ(observed.size(), kSenders) << "receiver " << r << " missed a sender entirely";
    for (const auto& [from, seqs] : observed) {
      ASSERT_EQ(seqs.size(), kPerSenderPerReceiver)
          << "receiver " << r << " lost messages from sender " << from;
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        ASSERT_EQ(seqs[i], i) << "per-sender FIFO violated at receiver " << r << " from sender "
                              << from << " position " << i;
      }
    }
  }
}

TEST(FifoOrder, BatchDrainPreservesPerSenderFifo) { run_fifo_flood(/*batched=*/true); }

TEST(FifoOrder, LegacyModePreservesPerSenderFifo) { run_fifo_flood(/*batched=*/false); }

// End-to-end guard for the same property: the Lemma-20 tag order that
// snow_monitor-style checking depends on still holds when a protocol runs on
// the batch-draining runtime (delivery reordering across senders is allowed,
// reordering within a sender is not — a FIFO bug shows up as an S violation).
TEST(FifoOrder, TagOrderHoldsUnderBatchedDelivery) {
  ThreadRuntime rt;  // default = batched fast path
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-b", rt, rec, Topology{3, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 150;
  spec.ops_per_writer = 75;
  spec.read_span = 2;
  WorkloadDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace snowkit
