// Regression tests for batched delivery: draining many messages per wakeup
// must preserve FIFO order per (sender, receiver) pair — the delivery
// guarantee the paper's channel model specifies and that snow_monitor and
// the tag-order checker rely on when attributing rounds to transactions.
// Covered on BOTH runtimes that batch: ThreadRuntime's fast path (vs the
// legacy per-message-lock baseline) and NetRuntime, where write-side
// coalescing packs many frames per sendmsg and read-side batch decode
// delivers mailbox bursts — neither may reorder one sender's stream.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <vector>

#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "checker/tag_order.hpp"
#include "runtime/net_runtime.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

/// Records the sequence numbers (Message::txn) observed per sender.  All
/// callbacks run on this node's executor, so no locking is needed.
class OrderRecorder final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    observed_[from].push_back(m.txn);
  }

  const std::map<NodeId, std::vector<TxnId>>& observed() const { return observed_; }

 private:
  std::map<NodeId, std::vector<TxnId>> observed_;
};

class Blaster final : public Node {
 public:
  void on_message(NodeId, const Message&) override {}
};

void run_fifo_flood(bool batched) {
  constexpr std::size_t kSenders = 4;
  constexpr std::size_t kReceivers = 2;
  constexpr std::size_t kPerSenderPerReceiver = 2000;

  ThreadRuntime rt(ThreadRuntime::Options{batched});
  std::vector<NodeId> receivers, senders;
  std::vector<OrderRecorder*> recorders;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    auto node = std::make_unique<OrderRecorder>();
    recorders.push_back(node.get());
    receivers.push_back(rt.add_node(std::move(node)));
  }
  for (std::size_t i = 0; i < kSenders; ++i) {
    senders.push_back(rt.add_node(std::make_unique<Blaster>()));
  }
  rt.start();
  for (std::size_t s = 0; s < kSenders; ++s) {
    const NodeId self = senders[s];
    rt.post(self, [&rt, &receivers, self] {
      // Interleave receivers so batches at each receiver span many senders.
      for (std::size_t seq = 0; seq < kPerSenderPerReceiver; ++seq) {
        for (NodeId to : receivers) {
          rt.send(self, to, Message{seq, SimpleWriteReq{0, static_cast<Value>(seq)}});
        }
      }
    });
  }
  rt.wait_idle();
  rt.stop();

  for (std::size_t r = 0; r < kReceivers; ++r) {
    const auto& observed = recorders[r]->observed();
    ASSERT_EQ(observed.size(), kSenders) << "receiver " << r << " missed a sender entirely";
    for (const auto& [from, seqs] : observed) {
      ASSERT_EQ(seqs.size(), kPerSenderPerReceiver)
          << "receiver " << r << " lost messages from sender " << from;
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        ASSERT_EQ(seqs[i], i) << "per-sender FIFO violated at receiver " << r << " from sender "
                              << from << " position " << i;
      }
    }
  }
}

TEST(FifoOrder, BatchDrainPreservesPerSenderFifo) { run_fifo_flood(/*batched=*/true); }

TEST(FifoOrder, LegacyModePreservesPerSenderFifo) { run_fifo_flood(/*batched=*/false); }

// End-to-end guard for the same property: the Lemma-20 tag order that
// snow_monitor-style checking depends on still holds when a protocol runs on
// the batch-draining runtime (delivery reordering across senders is allowed,
// reordering within a sender is not — a FIFO bug shows up as an S violation).
TEST(FifoOrder, TagOrderHoldsUnderBatchedDelivery) {
  ThreadRuntime rt;  // default = batched fast path
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-b", rt, rec, Topology{3, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 150;
  spec.ops_per_writer = 75;
  spec.read_span = 2;
  WorkloadDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// --- the same property over real TCP -----------------------------------------

constexpr std::size_t kNetSenders = 2;
constexpr std::size_t kNetReceivers = 2;
constexpr std::size_t kNetPerPair = 1500;

/// OrderRecorder plus a shared delivery counter so the test can wait for the
/// flood to land (NetRuntime has no cross-process wait_idle).
class NetOrderRecorder final : public Node {
 public:
  NetOrderRecorder(std::mutex& mu, std::condition_variable& cv, std::size_t& delivered)
      : mu_(mu), cv_(cv), delivered_(delivered) {}

  void on_message(NodeId from, const Message& m) override {
    observed_[from].push_back(m.txn);
    std::lock_guard<std::mutex> lock(mu_);
    if (++delivered_ == kNetSenders * kNetReceivers * kNetPerPair) cv_.notify_all();
  }

  const std::map<NodeId, std::vector<TxnId>>& observed() const { return observed_; }

 private:
  std::mutex& mu_;
  std::condition_variable& cv_;
  std::size_t& delivered_;
  std::map<NodeId, std::vector<TxnId>> observed_;
};

/// Floods kNetSenders × kNetReceivers × kNetPerPair messages from a sender
/// process to a receiver process over one loopback fleet and checks every
/// per-sender stream arrived strictly in order.  Throws on listen/connect
/// failure so the caller can retry on fresh ports.
void run_net_fifo_flood_once(const std::vector<std::uint16_t>& ports,
                             std::vector<std::map<NodeId, std::vector<TxnId>>>& results,
                             TransportStats& sender) {
  std::vector<NetOrderRecorder*> recorders;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t delivered = 0;

  auto make_opts = [&](std::size_t index) {
    NetOptions opts;
    opts.index = index;
    opts.peers = {{"127.0.0.1", ports[0]}, {"127.0.0.1", ports[1]}};
    opts.owner = [](NodeId node) -> std::size_t { return node < kNetReceivers ? 0 : 1; };
    // Two io threads + default coalescing: the exact configuration the
    // saturation benchmark gates, so a FIFO bug in the batched paths cannot
    // hide behind the single-thread layout.
    opts.transport.io_threads = 2;
    return opts;
  };
  NetRuntime rt_recv(make_opts(0));
  NetRuntime rt_send(make_opts(1));

  std::vector<NodeId> receivers, senders;
  for (NetRuntime* rt : {&rt_recv, &rt_send}) {  // identical numbering on both
    std::vector<NodeId> r, s;
    for (std::size_t i = 0; i < kNetReceivers; ++i) {
      auto node = std::make_unique<NetOrderRecorder>(mu, cv, delivered);
      if (rt == &rt_recv) recorders.push_back(node.get());
      r.push_back(rt->add_node(std::move(node)));
    }
    for (std::size_t i = 0; i < kNetSenders; ++i) {
      s.push_back(rt->add_node(std::make_unique<Blaster>()));
    }
    receivers = std::move(r);
    senders = std::move(s);
  }

  rt_recv.start();
  rt_send.start();
  rt_send.wait_connected();

  for (const NodeId self : senders) {
    rt_send.post(self, [&rt_send, &receivers, self] {
      // Interleave receivers so coalesced writev batches and mailbox bursts
      // at each receiver span many senders.
      for (std::size_t seq = 0; seq < kNetPerPair; ++seq) {
        for (NodeId to : receivers) {
          rt_send.send(self, to, Message{seq, SimpleWriteReq{0, static_cast<Value>(seq)}});
        }
      }
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    const bool done = cv.wait_for(lock, std::chrono::seconds(60), [&] {
      return delivered == kNetSenders * kNetReceivers * kNetPerPair;
    });
    ASSERT_TRUE(done) << "flood stalled: " << delivered << " of "
                      << kNetSenders * kNetReceivers * kNetPerPair << " delivered";
  }

  sender = rt_send.transport_stats();
  const TransportStats recv = rt_recv.transport_stats();
  rt_send.stop();
  rt_recv.stop();

  // The flood must actually have exercised the batched paths: many frames
  // per sendmsg on the sender, many frames per mailbox burst on the
  // receiver.  A regression to frame-at-a-time I/O fails here, not just in
  // the benchmark.
  EXPECT_GT(sender.frames_per_syscall(), 1.0);
  EXPECT_GT(recv.frames_received, recv.mailbox_bursts);

  // Copy the observations out: the nodes (and their maps) die with the
  // runtimes at end of scope.
  for (const NetOrderRecorder* rec : recorders) results.push_back(rec->observed());
}

TEST(FifoOrder, NetRuntimeCoalescingAndBatchDecodePreserveFifo) {
  if (!net::transport_supported()) GTEST_SKIP() << "TCP transport requires Linux";
  std::vector<std::map<NodeId, std::vector<TxnId>>> results;
  TransportStats sender;
  try {
    run_net_fifo_flood_once(net::pick_free_ports(2), results, sender);
  } catch (const std::runtime_error&) {
    // Another process can grab a probed port between pick and listen.
    results.clear();
    run_net_fifo_flood_once(net::pick_free_ports(2), results, sender);
  }
  if (HasFatalFailure()) return;

  ASSERT_EQ(results.size(), kNetReceivers);
  for (std::size_t r = 0; r < results.size(); ++r) {
    const auto& observed = results[r];
    ASSERT_EQ(observed.size(), kNetSenders) << "receiver " << r << " missed a sender";
    for (const auto& [from, seqs] : observed) {
      ASSERT_EQ(seqs.size(), kNetPerPair)
          << "receiver " << r << " lost messages from sender " << from;
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        ASSERT_EQ(seqs[i], i) << "per-sender FIFO violated over TCP at receiver " << r
                              << " from sender " << from << " position " << i;
      }
    }
  }
}

}  // namespace
}  // namespace snowkit
