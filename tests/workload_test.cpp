// Workload generation: zipfian sampler statistics, op streams, determinism.
#include <gtest/gtest.h>

#include <map>

#include "workload/workload.hpp"

namespace snowkit {
namespace {

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(10, 0.0, 42);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[z.next()];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 10'000, 600);
  }
}

TEST(Zipf, SkewConcentratesOnLowIndices) {
  ZipfSampler z(100, 0.99, 42);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[z.next()];
  int head = 0;
  for (std::size_t k = 0; k < 10; ++k) head += counts.count(k) ? counts[k] : 0;
  EXPECT_GT(head, 55'000) << "top 10% of keys should absorb most accesses at theta=0.99";
  // All samples in range.
  for (const auto& [k, c] : counts) {
    (void)c;
    EXPECT_LT(k, 100u);
  }
}

TEST(Zipf, DeterministicAcrossInstances) {
  ZipfSampler a(50, 0.9, 7);
  ZipfSampler b(50, 0.9, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(OpStream, DistinctSortedObjects) {
  WorkloadSpec spec;
  spec.zipf_theta = 0.9;
  OpStream s(8, spec, 123);
  for (int i = 0; i < 200; ++i) {
    auto objs = s.next_objects(4);
    ASSERT_EQ(objs.size(), 4u);
    for (std::size_t j = 1; j < objs.size(); ++j) {
      EXPECT_LT(objs[j - 1], objs[j]);  // sorted + distinct
    }
    for (ObjectId o : objs) EXPECT_LT(o, 8u);
  }
}

TEST(OpStream, SpanClampedToObjectCount) {
  WorkloadSpec spec;
  OpStream s(3, spec, 1);
  auto objs = s.next_objects(10);
  EXPECT_EQ(objs.size(), 3u);
}

TEST(OpStream, SeedsGiveDifferentStreams) {
  WorkloadSpec spec;
  OpStream a(16, spec, 1);
  OpStream b(16, spec, 2);
  int diffs = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_objects(2) != b.next_objects(2)) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(Rng, Xoshiro256BelowIsUnbiasedEnough) {
  Xoshiro256 rng(9);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 30'000; ++i) ++counts[rng.below(3)];
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 10'000, 500);
  }
}

TEST(Rng, SplitMix64StreamsDiffer) {
  SplitMix64 sm(1);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace snowkit
