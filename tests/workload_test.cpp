// Workload generation: zipfian sampler statistics, op streams, determinism,
// and the TrafficModel engine (permuted ranks, span/rate distributions).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "workload/workload.hpp"

namespace snowkit {
namespace {

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(10, 0.0, 42);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[z.next()];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 10'000, 600);
  }
}

TEST(Zipf, SkewConcentratesOnLowIndices) {
  ZipfSampler z(100, 0.99, 42);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[z.next()];
  int head = 0;
  for (std::size_t k = 0; k < 10; ++k) head += counts.count(k) ? counts[k] : 0;
  EXPECT_GT(head, 55'000) << "top 10% of keys should absorb most accesses at theta=0.99";
  // All samples in range.
  for (const auto& [k, c] : counts) {
    (void)c;
    EXPECT_LT(k, 100u);
  }
}

TEST(Zipf, DeterministicAcrossInstances) {
  ZipfSampler a(50, 0.9, 7);
  ZipfSampler b(50, 0.9, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(OpStream, DistinctSortedObjects) {
  WorkloadSpec spec;
  spec.zipf_theta = 0.9;
  OpStream s(8, spec, 123);
  for (int i = 0; i < 200; ++i) {
    auto objs = s.next_objects(4);
    ASSERT_EQ(objs.size(), 4u);
    for (std::size_t j = 1; j < objs.size(); ++j) {
      EXPECT_LT(objs[j - 1], objs[j]);  // sorted + distinct
    }
    for (ObjectId o : objs) EXPECT_LT(o, 8u);
  }
}

TEST(OpStream, SpanClampedToObjectCount) {
  WorkloadSpec spec;
  OpStream s(3, spec, 1);
  auto objs = s.next_objects(10);
  EXPECT_EQ(objs.size(), 3u);
}

TEST(OpStream, SeedsGiveDifferentStreams) {
  WorkloadSpec spec;
  OpStream a(16, spec, 1);
  OpStream b(16, spec, 2);
  int diffs = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_objects(2) != b.next_objects(2)) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(Rng, Xoshiro256BelowIsUnbiasedEnough) {
  Xoshiro256 rng(9);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 30'000; ++i) ++counts[rng.below(3)];
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 10'000, 500);
  }
}

TEST(Rng, SplitMix64StreamsDiffer) {
  SplitMix64 sm(1);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

// --- zipf theta validation + zeta memoization --------------------------------

TEST(Zipf, ThetaOutsideUnitIntervalThrows) {
  EXPECT_THROW(ZipfSampler(10, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, std::nan(""), 1), std::invalid_argument);
  EXPECT_NO_THROW(ZipfSampler(10, 0.0, 1));
  EXPECT_NO_THROW(ZipfSampler(10, 0.99, 1));
}

TEST(Zipf, ZetaCacheSharesIdenticalParameters) {
  // A (n, theta) pair this test owns exclusively — no other test uses
  // n = 7919 — so the second construction MUST hit the cache.
  const auto before = zeta_cache_stats();
  ZipfSampler a(7919, 0.73, 1);
  const auto mid = zeta_cache_stats();
  EXPECT_EQ(mid.misses, before.misses + 1);
  ZipfSampler b(7919, 0.73, 2);
  const auto after = zeta_cache_stats();
  EXPECT_EQ(after.misses, mid.misses) << "identical (n, theta) recomputed zeta";
  EXPECT_GE(after.hits, mid.hits + 1);
  // Sharing must not perturb sampling: a fresh sampler equals a same-seeded
  // sampler built before the cache was warm for this pair.
  ZipfSampler c(7919, 0.73, 1);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.next(), c.next());
}

// Distribution shape: empirical top-k mass matches the analytic zipf mass
// zeta(k) / zeta(n) within a loose statistical tolerance.
TEST(Zipf, TopKMassMatchesAnalytic) {
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kTopK = 100;
  constexpr int kSamples = 200'000;
  for (const double theta : {0.0, 0.5, 0.99}) {
    ZipfSampler z(kN, theta, 42);
    int head = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (z.next() < kTopK) ++head;
    }
    const double expected = zipf_zeta(kTopK, theta) / zipf_zeta(kN, theta);
    const double observed = static_cast<double>(head) / kSamples;
    // Gray et al.'s quick sampler is approximate; 3% absolute slack covers
    // both the approximation and sampling noise at 2e5 draws.
    EXPECT_NEAR(observed, expected, 0.03) << "theta=" << theta;
  }
}

// --- RankPermutation ---------------------------------------------------------

TEST(RankPermutation, BijectionOverOddDomain) {
  // 1000 is not a power of two: cycle walking must still produce a bijection.
  RankPermutation perm(1000, 99);
  std::set<std::size_t> images;
  for (std::size_t r = 0; r < 1000; ++r) {
    const std::size_t img = perm.apply(r);
    ASSERT_LT(img, 1000u);
    images.insert(img);
  }
  EXPECT_EQ(images.size(), 1000u);
}

TEST(RankPermutation, DeterministicPerSeedAndDivergentAcrossSeeds) {
  RankPermutation a(512, 7);
  RankPermutation b(512, 7);
  RankPermutation c(512, 8);
  int diffs = 0;
  for (std::size_t r = 0; r < 512; ++r) {
    EXPECT_EQ(a.apply(r), b.apply(r));
    if (a.apply(r) != c.apply(r)) ++diffs;
  }
  EXPECT_GT(diffs, 400) << "different seeds should give an unrelated permutation";
}

TEST(RankPermutation, DefaultIsIdentity) {
  RankPermutation id;
  EXPECT_TRUE(id.is_identity());
  for (std::size_t r = 0; r < 64; ++r) EXPECT_EQ(id.apply(r), r);
}

TEST(RankPermutation, ScattersHotRanks) {
  // The hot-shard fix: consecutive hot ranks must not stay consecutive.
  // With 4 range shards over 1024 objects, the top 32 ranks map identity
  // into shard 0; permuted they should spread over most shards.
  RankPermutation perm(1024, 0x5eedf00dull);
  std::set<std::size_t> shards;
  for (std::size_t r = 0; r < 32; ++r) shards.insert(perm.apply(r) / 256);
  EXPECT_GE(shards.size(), 3u);
}

// --- SpanDist / RateCurve ----------------------------------------------------

TEST(SpanDist, SamplesStayInRange) {
  Xoshiro256 rng(5);
  SpanDist uni{SpanKind::kUniform, 1, 6, 0.5};
  SpanDist geo{SpanKind::kGeometric, 2, 8, 0.6};
  for (int i = 0; i < 5000; ++i) {
    const auto u = uni.sample(rng);
    EXPECT_GE(u, 1u);
    EXPECT_LE(u, 6u);
    const auto g = geo.sample(rng);
    EXPECT_GE(g, 2u);
    EXPECT_LE(g, 8u);
  }
  EXPECT_EQ(SpanDist::fixed(3).sample(rng), 3u);
}

TEST(SpanDist, ValidateRejectsBadRanges) {
  EXPECT_THROW((SpanDist{SpanKind::kFixed, 0, 0, 0.5}.validate("s", 8)), std::invalid_argument);
  EXPECT_THROW((SpanDist{SpanKind::kUniform, 4, 2, 0.5}.validate("s", 8)), std::invalid_argument);
  EXPECT_THROW((SpanDist{SpanKind::kFixed, 9, 9, 0.5}.validate("s", 8)), std::invalid_argument);
  EXPECT_THROW((SpanDist{SpanKind::kGeometric, 1, 4, 1.0}.validate("s", 8)),
               std::invalid_argument);
  EXPECT_NO_THROW((SpanDist{SpanKind::kGeometric, 1, 4, 0.5}.validate("s", 8)));
}

TEST(RateCurve, PiecewiseCyclicIntervals) {
  RateCurve curve;
  curve.segments = {{1000.0, 1'000'000'000}, {2000.0, 1'000'000'000}};
  curve.validate();
  EXPECT_EQ(curve.interval_at(0, 99), 1'000'000);                  // 1k ops/s
  EXPECT_EQ(curve.interval_at(1'500'000'000, 99), 500'000);        // 2k ops/s
  EXPECT_EQ(curve.interval_at(2'250'000'000, 99), 1'000'000);      // wrapped
  EXPECT_EQ(RateCurve{}.interval_at(0, 12345), 12345);             // empty -> fallback
  RateCurve bad;
  bad.segments = {{0.0, 1}};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --- TrafficShard ------------------------------------------------------------

TEST(TrafficShard, DeterministicPerSeed) {
  TrafficModel model;
  model.zipf_theta = 0.9;
  model.permute_ranks = true;
  model.read_fraction = 0.5;
  model.read_span = SpanDist{SpanKind::kUniform, 1, 4, 0.5};
  model.write_span = SpanDist{SpanKind::kGeometric, 1, 4, 0.4};
  model.logical_clients = 1'000'000;
  TrafficShard a(256, model, 11, 0, 1'000'000);
  TrafficShard b(256, model, 11, 0, 1'000'000);
  TrafficShard c(256, model, 12, 0, 1'000'000);
  int diffs = 0;
  for (int i = 0; i < 500; ++i) {
    const TrafficArrival x = a.next();
    const TrafficArrival y = b.next();
    EXPECT_EQ(x.is_read, y.is_read);
    EXPECT_EQ(x.logical_client, y.logical_client);
    EXPECT_EQ(x.objects, y.objects);
    if (x.objects != c.next().objects) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(TrafficShard, ArrivalsAreWellFormed) {
  TrafficModel model;
  model.zipf_theta = 0.99;
  model.permute_ranks = true;
  model.read_span = SpanDist{SpanKind::kUniform, 1, 5, 0.5};
  model.write_span = SpanDist::fixed(2);
  model.logical_clients = 1000;
  TrafficShard s(64, model, 3, 250, 750);
  for (int i = 0; i < 2000; ++i) {
    const TrafficArrival a = s.next();
    ASSERT_GE(a.objects.size(), 1u);
    for (std::size_t j = 1; j < a.objects.size(); ++j) {
      EXPECT_LT(a.objects[j - 1], a.objects[j]);  // sorted + distinct
    }
    for (const ObjectId o : a.objects) EXPECT_LT(o, 64u);
    EXPECT_GE(a.logical_client, 250u);
    EXPECT_LT(a.logical_client, 750u);
  }
}

TEST(TrafficModel, ValidateRejectsMisconfiguration) {
  TrafficModel model;
  EXPECT_NO_THROW(model.validate(16));
  model.zipf_theta = 1.0;
  EXPECT_THROW(model.validate(16), std::invalid_argument);
  model.zipf_theta = 0.5;
  model.read_fraction = 1.5;
  EXPECT_THROW(model.validate(16), std::invalid_argument);
  model.read_fraction = 0.9;
  model.logical_clients = 0;
  EXPECT_THROW(model.validate(16), std::invalid_argument);
}

}  // namespace
}  // namespace snowkit
