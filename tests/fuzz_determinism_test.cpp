// Determinism regression: the replay contract the fuzzer depends on.
//
// Same (protocol, workload, schedule seed) => byte-identical sim/trace
// output across two independent SimRuntime runs, for EVERY registered
// protocol; and a recorded ScheduleLog replayed over the same case
// reproduces the run byte-identically.  If any protocol picks up a source
// of nondeterminism (iteration over an unordered container, a stray
// wall-clock read), this test names it.
#include <gtest/gtest.h>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "fuzz/fuzz_case.hpp"
#include "sim/trace.hpp"

namespace snowkit::fuzz {
namespace {

class EveryProtocolDeterminism : public testing::TestWithParam<std::string> {};

TEST_P(EveryProtocolDeterminism, SameSeedSameTraceBytes) {
  const std::string& name = GetParam();
  GenParams params;
  params.max_ops_per_client = 8;
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const FuzzCase c = generate_case(name, params, seed);
    const CaseRun first = run_case(c);
    const CaseRun second = run_case(c);
    ASSERT_TRUE(first.completed) << name << " seed " << seed;
    const auto bytes_a = encode_trace(first.trace);
    const auto bytes_b = encode_trace(second.trace);
    EXPECT_EQ(bytes_a, bytes_b) << name << " seed " << seed
                                << ": two runs of the same case diverged";
    EXPECT_EQ(first.log, second.log) << name << " seed " << seed;
    EXPECT_EQ(trace_fingerprint(first.trace), trace_fingerprint(second.trace));
  }
}

TEST_P(EveryProtocolDeterminism, RecordedLogReplaysByteIdentically) {
  const std::string& name = GetParam();
  GenParams params;
  params.max_ops_per_client = 8;
  const FuzzCase c = generate_case(name, params, /*seed=*/5);
  const CaseRun recorded = run_case(c);
  ASSERT_TRUE(recorded.completed) << name;
  const CaseRun replayed = replay_case(c, recorded.log);
  ASSERT_TRUE(replayed.completed) << name;
  EXPECT_FALSE(replayed.stats.guard_tripped)
      << name << ": an exact replay must never fall back to the drain guard";
  EXPECT_EQ(encode_trace(recorded.trace), encode_trace(replayed.trace)) << name;
  EXPECT_EQ(recorded.log, replayed.log) << name << ": replay must re-record the same log";
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EveryProtocolDeterminism,
                         testing::ValuesIn(registered_protocols()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(FuzzDeterminism, DifferentSeedsGiveDifferentSchedules) {
  GenParams params;
  const FuzzCase a = generate_case("algo-b", params, 1);
  const FuzzCase b = generate_case("algo-b", params, 2);
  EXPECT_NE(a, b);
  const CaseRun ra = run_case(a);
  const CaseRun rb = run_case(b);
  EXPECT_NE(encode_trace(ra.trace), encode_trace(rb.trace));
}

TEST(FuzzDeterminism, TraceCodecRoundTrips) {
  const FuzzCase c = generate_case("algo-c", GenParams{}, 11);
  const CaseRun run = run_case(c);
  const auto bytes = encode_trace(run.trace);
  const Trace decoded = decode_trace(bytes);
  ASSERT_EQ(decoded.size(), run.trace.size());
  EXPECT_EQ(encode_trace(decoded), bytes);
  EXPECT_EQ(decoded.to_text(), run.trace.to_text());
}

// --- GC on vs off (the watermark version store must not perturb replay) -----

/// Where no pruning-visible difference exists — a read-only program sends no
/// finalize traffic in either mode — the GC'd store must be BYTE-IDENTICAL
/// to keep-everything: same messages, same trace, same fingerprint.
TEST(FuzzDeterminism, GcOnOffByteIdenticalWhenNoPruningIsVisible) {
  for (const std::string kind : {"algo-b", "algo-c"}) {
    std::vector<std::uint8_t> traces[2];
    for (const bool gc : {false, true}) {
      SimRuntime sim(make_uniform_delay(10, 9'000, /*seed=*/5));
      HistoryRecorder rec(3);
      BuildOptions opts;
      opts.set("gc_versions", gc);
      auto sys = build_protocol(kind, sim, rec, Topology{3, 2, 1}, opts);
      WorkloadSpec spec;
      spec.ops_per_reader = 12;
      spec.ops_per_writer = 0;  // read-only: no finalize traffic either way
      spec.read_span = 2;
      spec.seed = 5;
      ClosedLoopDriver driver(sim, *sys, spec);
      driver.start();
      sim.run_until_idle();
      traces[gc ? 1 : 0] = encode_trace(sim.trace());
    }
    EXPECT_EQ(traces[0], traces[1])
        << kind << ": GC mode diverged on a pruning-invisible (read-only) program";
  }
}

/// With writes in play the finalize fan-out makes the traces differ, but the
/// client-visible outcome must not: both modes stay strictly serializable
/// and agree on the quiescent state (single writer => a unique final value
/// per object).
TEST(FuzzDeterminism, GcOnOffAgreeOnQuiescentStateAndSafety) {
  for (const std::string kind : {"algo-b", "algo-c"}) {
    for (std::uint64_t seed : {3ull, 11ull}) {
      std::vector<std::pair<ObjectId, Value>> finals[2];
      for (const bool gc : {false, true}) {
        SimRuntime sim(make_uniform_delay(10, 9'000, seed));
        HistoryRecorder rec(3);
        BuildOptions opts;
        opts.set("gc_versions", gc);
        auto sys = build_protocol(kind, sim, rec, Topology{3, 2, 1}, opts);
        WorkloadSpec spec;
        spec.ops_per_reader = 15;
        spec.ops_per_writer = 15;
        spec.read_span = 2;
        spec.write_span = 2;
        spec.seed = seed;
        ClosedLoopDriver driver(sim, *sys, spec);
        driver.start();
        sim.run_until_idle();
        ReadResult result;
        invoke_read(sim, sys->reader(0), {0, 1, 2}, [&](const ReadResult& r) { result = r; });
        sim.run_until_idle();
        finals[gc ? 1 : 0] = result.values;
        auto verdict = check_tag_order(rec.snapshot());
        EXPECT_TRUE(verdict.ok) << kind << " seed " << seed << " gc=" << gc << ": "
                                << verdict.explanation;
      }
      EXPECT_EQ(finals[0], finals[1]) << kind << " seed " << seed
                                      << ": GC changed the quiescent state";
    }
  }
}

TEST(FuzzDeterminism, ScheduleLogCodecRoundTrips) {
  const FuzzCase c = generate_case("eiger", GenParams{}, 3);
  const CaseRun run = run_case(c);
  ASSERT_FALSE(run.log.decisions.empty());
  BufWriter w;
  encode_schedule_log(run.log, w);
  const auto bytes = w.take();
  BufReader r(bytes);
  const ScheduleLog decoded = decode_schedule_log(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded, run.log);
}

}  // namespace
}  // namespace snowkit::fuzz
