// Determinism regression: the replay contract the fuzzer depends on.
//
// Same (protocol, workload, schedule seed) => byte-identical sim/trace
// output across two independent SimRuntime runs, for EVERY registered
// protocol; and a recorded ScheduleLog replayed over the same case
// reproduces the run byte-identically.  If any protocol picks up a source
// of nondeterminism (iteration over an unordered container, a stray
// wall-clock read), this test names it.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "fuzz/fuzz_case.hpp"
#include "sim/trace.hpp"

namespace snowkit::fuzz {
namespace {

class EveryProtocolDeterminism : public testing::TestWithParam<std::string> {};

TEST_P(EveryProtocolDeterminism, SameSeedSameTraceBytes) {
  const std::string& name = GetParam();
  GenParams params;
  params.max_ops_per_client = 8;
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const FuzzCase c = generate_case(name, params, seed);
    const CaseRun first = run_case(c);
    const CaseRun second = run_case(c);
    ASSERT_TRUE(first.completed) << name << " seed " << seed;
    const auto bytes_a = encode_trace(first.trace);
    const auto bytes_b = encode_trace(second.trace);
    EXPECT_EQ(bytes_a, bytes_b) << name << " seed " << seed
                                << ": two runs of the same case diverged";
    EXPECT_EQ(first.log, second.log) << name << " seed " << seed;
    EXPECT_EQ(trace_fingerprint(first.trace), trace_fingerprint(second.trace));
  }
}

TEST_P(EveryProtocolDeterminism, RecordedLogReplaysByteIdentically) {
  const std::string& name = GetParam();
  GenParams params;
  params.max_ops_per_client = 8;
  const FuzzCase c = generate_case(name, params, /*seed=*/5);
  const CaseRun recorded = run_case(c);
  ASSERT_TRUE(recorded.completed) << name;
  const CaseRun replayed = replay_case(c, recorded.log);
  ASSERT_TRUE(replayed.completed) << name;
  EXPECT_FALSE(replayed.stats.guard_tripped)
      << name << ": an exact replay must never fall back to the drain guard";
  EXPECT_EQ(encode_trace(recorded.trace), encode_trace(replayed.trace)) << name;
  EXPECT_EQ(recorded.log, replayed.log) << name << ": replay must re-record the same log";
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EveryProtocolDeterminism,
                         testing::ValuesIn(registered_protocols()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(FuzzDeterminism, DifferentSeedsGiveDifferentSchedules) {
  GenParams params;
  const FuzzCase a = generate_case("algo-b", params, 1);
  const FuzzCase b = generate_case("algo-b", params, 2);
  EXPECT_NE(a, b);
  const CaseRun ra = run_case(a);
  const CaseRun rb = run_case(b);
  EXPECT_NE(encode_trace(ra.trace), encode_trace(rb.trace));
}

TEST(FuzzDeterminism, TraceCodecRoundTrips) {
  const FuzzCase c = generate_case("algo-c", GenParams{}, 11);
  const CaseRun run = run_case(c);
  const auto bytes = encode_trace(run.trace);
  const Trace decoded = decode_trace(bytes);
  ASSERT_EQ(decoded.size(), run.trace.size());
  EXPECT_EQ(encode_trace(decoded), bytes);
  EXPECT_EQ(decoded.to_text(), run.trace.to_text());
}

TEST(FuzzDeterminism, ScheduleLogCodecRoundTrips) {
  const FuzzCase c = generate_case("eiger", GenParams{}, 3);
  const CaseRun run = run_case(c);
  ASSERT_FALSE(run.log.decisions.empty());
  BufWriter w;
  encode_schedule_log(run.log, w);
  const auto bytes = w.take();
  BufReader r(bytes);
  const ScheduleLog decoded = decode_schedule_log(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded, run.log);
}

}  // namespace
}  // namespace snowkit::fuzz
