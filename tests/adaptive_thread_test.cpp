// Adaptive meta-protocol on the ThreadRuntime: the same Node state machines
// that the sim-based suites exercise, now with real concurrent executors.
// Protocol state is only ever touched from its owner's executor, so TSan
// (CI's sanitize-tsan leg runs this test) audits that the adaptive layer's
// mode table, client caches and EWMA tracker kept that contract — a data
// race here means a reader or the coordinator leaked state across threads.
#include <gtest/gtest.h>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/adaptive/adaptive.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

TEST(AdaptiveThread, ConcurrentWorkloadIsStrictlySerializable) {
  ThreadRuntime rt;
  HistoryRecorder rec(4);
  auto sys = build_protocol("adaptive", rt, rec, Topology{4, 3, 3});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 100;
  spec.ops_per_writer = 50;
  spec.read_span = 2;
  spec.write_span = 2;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  // The cache and prefetch paths must actually have run under threads, and
  // the reader-side counters must still reconcile exactly.
  const auto* adaptive = dynamic_cast<const AdaptiveSystem*>(sys.get());
  ASSERT_NE(adaptive, nullptr);
  const AdaptiveStats s = adaptive->stats();
  EXPECT_EQ(s.reads, 3u * 100u);
  EXPECT_GT(s.cache_hits + s.cache_misses, 0u);
  EXPECT_EQ(s.cache_misses, s.prefetch_resolved + s.round2_objects);
}

TEST(AdaptiveThread, WriteHeavyRunFlipsModesUnderThreads) {
  // Real wall-clock writes land well inside the 2 s EWMA window, so a
  // write-heavy burst must trip B->C switches on the live coordinator.
  ThreadRuntime rt;
  HistoryRecorder rec(2);
  auto sys = build_protocol("adaptive", rt, rec, Topology{2, 1, 2});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 100;
  spec.read_span = 2;
  spec.write_span = 1;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto* adaptive = dynamic_cast<const AdaptiveSystem*>(sys.get());
  ASSERT_NE(adaptive, nullptr);
  EXPECT_GE(adaptive->stats().switches, 1u)
      << "a 100-writes-per-writer burst never flipped any object to C-mode";
}

}  // namespace
}  // namespace snowkit
