// Property battery for the watermark-GC'd version store (the pruning-safety
// proof obligation of proto/version_store.hpp):
//
//  1. Randomized interleavings of inserts / finalizes / watermark advances
//     against a keep-everything reference model — GC must never prune a
//     version that a read at or above the watermark could still return
//     (the anchor and everything newer, plus every unfinalized version),
//     and must prune EXACTLY the superseded prefix (determinism).
//  2. Watermarks are monotone: a lower advance is a no-op.
//  3. Chain length stays bounded under sustained writes: live versions <=
//     unfinalized + finalized-above-watermark + 1, independent of history.
//  4. The same obligations for CoorList's history window (anchor + above-W).
//  5. End-to-end: random algo-b/algo-c sim workloads under the GC'd default
//     stay strictly serializable, actually prune (non-vacuity), and keep
//     read responses bounded while the keep-everything baseline grows.
//
// Iteration counts scale with the SNOWKIT_PROP_ITERS environment variable
// (default 300); CI's Release slow leg (ctest -L slow) runs the DISABLED_
// high-iteration sweep with a much larger budget.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "checker/tag_order.hpp"
#include "common/rng.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "metrics/gc_stats.hpp"
#include "proto/version_store.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

int prop_iters(int def = 300) {
  const char* env = std::getenv("SNOWKIT_PROP_ITERS");
  if (env == nullptr) return def;
  const int v = std::atoi(env);
  return v > 0 ? v : def;
}

// --- the keep-everything reference model -------------------------------------

struct RefModel {
  struct Entry {
    Value value{kInitialValue};
    std::optional<Tag> position;  ///< finalized List position, if any.
  };
  std::map<WriteKey, Entry> entries{{kInitialKey, {kInitialValue, 0}}};
  Tag watermark{0};

  /// Newest finalized position <= cut (the key a read at `cut` returns).
  WriteKey key_at(Tag cut) const {
    WriteKey best = kInitialKey;
    Tag best_pos = 0;
    for (const auto& [k, e] : entries) {
      if (e.position && *e.position <= cut && *e.position >= best_pos) {
        best = k;
        best_pos = *e.position;
      }
    }
    return best;
  }

  /// Everything the GC'd store MUST retain: unfinalized versions, the anchor
  /// (= key_at(watermark)), and every finalized version above the watermark.
  std::set<WriteKey> must_retain() const {
    std::set<WriteKey> keep;
    for (const auto& [k, e] : entries) {
      if (!e.position || *e.position > watermark) keep.insert(k);
    }
    keep.insert(key_at(watermark));
    return keep;
  }
};

/// One random schedule of store ops, cross-checked against the model after
/// every step.
void run_store_interleaving(std::uint64_t seed, int steps) {
  Xoshiro256 rng(seed);
  VersionStore store;
  RefModel ref;
  Tag next_pos = 1;
  std::vector<WriteKey> unfinalized;

  for (int step = 0; step < steps; ++step) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 40) {  // insert a fresh version
      const WriteKey key{next_pos + rng.below(5), static_cast<NodeId>(rng.below(4))};
      if (ref.entries.count(key) == 0) {
        store.insert(key, static_cast<Value>(step));
        ref.entries[key] = {static_cast<Value>(step), std::nullopt};
        unfinalized.push_back(key);
      }
    } else if (dice < 70 && !unfinalized.empty()) {  // finalize one (listing order)
      const std::size_t i = rng.below(unfinalized.size());
      const WriteKey key = unfinalized[i];
      unfinalized.erase(unfinalized.begin() + static_cast<std::ptrdiff_t>(i));
      store.finalize(key, next_pos);
      ref.entries[key].position = next_pos;
      ++next_pos;
    } else if (dice < 90) {  // advance the watermark (sometimes backwards)
      const Tag w = rng.below(next_pos + 2);
      store.advance_watermark(w);
      ref.watermark = std::max(ref.watermark, std::min(w, store.watermark()));
      // Monotonicity: the store never regresses.
      ASSERT_GE(store.watermark(), ref.watermark);
      ref.watermark = store.watermark();
    } else {  // a read at or above the watermark must still resolve
      const Tag cut = ref.watermark + rng.below(8);
      const WriteKey key = ref.key_at(cut);
      ASSERT_TRUE(store.has(key))
          << "seed " << seed << " step " << step << ": GC pruned " << to_string(key)
          << ", the version a read at cut " << cut << " (watermark " << ref.watermark
          << ") returns";
      ASSERT_EQ(store.get(key), ref.entries.at(key).value);
    }

    // Retention is EXACT: everything the watermark rule requires, nothing
    // more (pruning is deterministic, which the fuzzer's replay relies on).
    const std::set<WriteKey> want = ref.must_retain();
    ASSERT_EQ(store.size(), want.size()) << "seed " << seed << " step " << step;
    for (const WriteKey& k : want) {
      ASSERT_TRUE(store.has(k)) << "seed " << seed << " step " << step << ": lost "
                                << to_string(k);
    }
    // Bounded chain length: live <= unfinalized + finalized-above-W + 1.
    std::size_t above = 0;
    for (const auto& [k, e] : ref.entries) {
      if (e.position && *e.position > ref.watermark) ++above;
    }
    ASSERT_LE(store.size(), unfinalized.size() + above + 1);
  }
}

TEST(VersionStoreGcProperty, RandomInterleavingsNeverPruneAReachableVersion) {
  const int iters = prop_iters();
  for (int seed = 1; seed <= iters; ++seed) {
    run_store_interleaving(static_cast<std::uint64_t>(seed), 120);
    if (HasFatalFailure()) return;
  }
}

TEST(VersionStoreGcProperty, WatermarkIsMonotone) {
  VersionStore store;
  store.insert(WriteKey{1, 0}, 10);
  store.finalize(WriteKey{1, 0}, 1);
  store.insert(WriteKey{2, 0}, 20);
  store.finalize(WriteKey{2, 0}, 2);
  store.advance_watermark(2);
  EXPECT_EQ(store.watermark(), 2u);
  EXPECT_FALSE(store.has(WriteKey{1, 0}));  // superseded below the watermark
  store.advance_watermark(1);               // lower: must be a no-op
  EXPECT_EQ(store.watermark(), 2u);
  store.advance_watermark(0);
  EXPECT_EQ(store.watermark(), 2u);
  EXPECT_TRUE(store.has(WriteKey{2, 0}));
}

TEST(VersionStoreGcProperty, SustainedWritesKeepChainBounded) {
  // A writer loop: insert, finalize, advance.  Without GC this chain would
  // hold all 10'000 versions; with the watermark it never exceeds 2 (the
  // anchor + the one in-flight version).
  VersionStore store;
  std::size_t peak = 0;
  for (Tag pos = 1; pos <= 10'000; ++pos) {
    const WriteKey key{pos, 0};
    store.insert(key, static_cast<Value>(pos));
    peak = std::max(peak, store.size());
    store.finalize(key, pos);
    store.advance_watermark(pos);
  }
  EXPECT_LE(peak, 3u);
  EXPECT_EQ(store.size(), 1u);  // only the anchor survives quiescence
  EXPECT_EQ(store.get(WriteKey{10'000, 0}), 10'000);
  EXPECT_EQ(store.pruned(), 10'000u - 1u + 1u);  // everything but the newest (+kappa_0)
}

TEST(VersionStoreGcProperty, LateFinalizeBelowWatermarkPrunesImmediately) {
  VersionStore store;
  store.insert(WriteKey{1, 0}, 10);
  store.insert(WriteKey{2, 0}, 20);
  store.finalize(WriteKey{2, 0}, 2);
  store.advance_watermark(2);
  EXPECT_TRUE(store.has(WriteKey{1, 0}));  // unfinalized: always retained
  store.finalize(WriteKey{1, 0}, 1);       // late notice, superseded at listing
  EXPECT_FALSE(store.has(WriteKey{1, 0}));
  EXPECT_TRUE(store.has(WriteKey{2, 0}));
}

// --- CoorList ----------------------------------------------------------------

TEST(CoorListProperty, HistoryWindowKeepsAnchorPlusAboveWatermark) {
  const int iters = prop_iters(100);
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(iters); ++seed) {
    Xoshiro256 rng(seed);
    const std::size_t k = 2 + rng.below(3);
    CoorList list(k);
    std::vector<std::vector<ListedKey>> full(k);  // reference: everything
    for (std::size_t i = 0; i < k; ++i) full[i].push_back(ListedKey{0, kInitialKey});
    std::vector<Tag> unfinalized;
    std::map<NodeId, Tag> active;  // reader -> floor

    for (int step = 0; step < 80; ++step) {
      const std::uint64_t dice = rng.below(100);
      if (dice < 35) {  // a write lists
        std::vector<std::uint8_t> mask(k, 0);
        mask[rng.below(k)] = 1;
        mask[rng.below(k)] = 1;
        const WriteKey key{static_cast<std::uint64_t>(step + 1), 0};
        const Tag pos = list.push(key, mask);
        for (std::size_t i = 0; i < k; ++i) {
          if (mask[i] != 0) full[i].push_back(ListedKey{pos, key});
        }
        unfinalized.push_back(pos);
      } else if (dice < 60 && !unfinalized.empty()) {  // a write completes
        const std::size_t i = rng.below(unfinalized.size());
        list.finalize(unfinalized[i]);
        unfinalized.erase(unfinalized.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (dice < 80) {  // a read registers
        const NodeId reader = static_cast<NodeId>(100 + rng.below(3));
        active[reader] = list.register_reader(reader, static_cast<TxnId>(step));
      } else if (!active.empty()) {  // a read completes
        auto it = active.begin();
        std::advance(it, rng.below(active.size()));
        list.reader_done(it->first, kInvalidTxn);
        active.erase(it);
      }

      // The watermark never passes an active read's floor.
      for (const auto& [reader, floor] : active) {
        ASSERT_LE(list.watermark(), floor) << "seed " << seed << " step " << step;
      }
      // Per object: the live window is exactly the anchor (newest reference
      // entry <= watermark) plus every entry above the watermark.
      for (std::size_t i = 0; i < k; ++i) {
        const auto& h = list.history(static_cast<ObjectId>(i));
        std::vector<ListedKey> want;
        std::size_t anchor = 0;
        for (std::size_t j = 0; j < full[i].size(); ++j) {
          if (full[i][j].position <= list.watermark()) anchor = j;
        }
        for (std::size_t j = anchor; j < full[i].size(); ++j) want.push_back(full[i][j]);
        ASSERT_EQ(std::vector<ListedKey>(h.begin(), h.end()), want)
            << "seed " << seed << " step " << step << " obj " << i;
        ASSERT_EQ(list.latest(static_cast<ObjectId>(i)), full[i].back().key);
      }
    }
  }
}

TEST(CoorListProperty, StaleReadDoneNeverUnpinsANewerRead) {
  CoorList list(1);
  list.push(WriteKey{1, 0}, {1});
  list.finalize(1);
  list.register_reader(7, /*txn=*/10);
  list.reader_done(7, /*txn=*/4);  // reordered notice from an older READ
  list.push(WriteKey{2, 0}, {1});
  list.finalize(2);
  EXPECT_EQ(list.watermark(), 1u) << "reader 7's floor must still pin the watermark";
  list.reader_done(7, /*txn=*/10);
  EXPECT_EQ(list.watermark(), 2u);
}

// --- end-to-end: the GC'd protocols stay safe and actually prune -------------

int run_protocol_once(const std::string& kind, std::uint64_t seed, std::size_t ops,
                      std::uint64_t* pruned) {
  const GcSnapshot before = GcCounters::global().snapshot();
  SimRuntime sim(make_uniform_delay(10, 40'000, seed));
  HistoryRecorder rec(3);
  auto sys = build_protocol(kind, sim, rec, Topology{3, 2, 3});
  WorkloadSpec spec;
  spec.ops_per_reader = ops;
  spec.ops_per_writer = ops;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = seed;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const History h = rec.snapshot();
  auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << kind << " seed " << seed << ": " << verdict.explanation;
  *pruned += GcCounters::global().snapshot().delta(before).pruned;
  return max_read_versions(h);
}

void run_protocol_sweep(const std::string& kind, std::uint64_t seeds) {
  std::uint64_t pruned_total = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    // Bounded responses, independent of history length: |W| is the writes
    // overlapping a read window, which depends on delay variance but NOT on
    // how long the run is — tripling the op count must not grow responses.
    const int short_run = run_protocol_once(kind, seed, 20, &pruned_total);
    const int long_run = run_protocol_once(kind, seed, 60, &pruned_total);
    ASSERT_LE(long_run, short_run + 4) << kind << " seed " << seed
                                       << ": responses grew with history length";
    ASSERT_LE(long_run, 3 * 4 + 1) << kind << " seed " << seed;  // generous |W|+1 slack
  }
  // Vacuity guard: the sweep must have exercised pruning, not just passed.
  EXPECT_GT(pruned_total, 0u) << kind << ": GC never pruned anything across the sweep";
}

TEST(VersionStoreGcProperty, AlgoCEndToEndSafeAndNonVacuous) {
  run_protocol_sweep("algo-c", 12);
}

TEST(VersionStoreGcProperty, AlgoBEndToEndSafeAndNonVacuous) {
  run_protocol_sweep("algo-b", 12);
}

TEST(VersionStoreGcProperty, OccPessimisticFallbackUnderGcStaysSafe) {
  // occ-reads with BOTH gc_versions and the bounded pessimistic fallback:
  // speculative keys can be pruned (found == false -> validation-failed
  // retry), and after max_optimistic_rounds=1 every contended READ takes the
  // Algorithm-B pessimistic round — whose keys are watermark-protected, the
  // invariant its server-side assert enforces.  Write-heavy contention on
  // few objects makes the fallback fire constantly.
  std::uint64_t pruned_total = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const GcSnapshot before = GcCounters::global().snapshot();
    SimRuntime sim(make_uniform_delay(10, 40'000, seed));
    HistoryRecorder rec(2);
    BuildOptions opts;
    opts.set("gc_versions", true);
    opts.set("max_optimistic_rounds", 1);
    auto sys = build_protocol("occ-reads", sim, rec, Topology{2, 2, 3}, opts);
    WorkloadSpec spec;
    spec.ops_per_reader = 25;
    spec.ops_per_writer = 40;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    const History h = rec.snapshot();
    auto verdict = check_tag_order(h);
    ASSERT_TRUE(verdict.ok) << "occ seed " << seed << ": " << verdict.explanation;
    // The fallback caps rounds at max_optimistic + 1 pessimistic.
    ASSERT_LE(max_read_rounds(h), 2) << "occ seed " << seed;
    pruned_total += GcCounters::global().snapshot().delta(before).pruned;
  }
  EXPECT_GT(pruned_total, 0u) << "occ GC never pruned anything across the sweep";
}

// The CI slow leg (Release, ctest -L slow) runs this with
// SNOWKIT_PROP_ITERS=20000 via --gtest_also_run_disabled_tests; the default
// suite skips it (DISABLED_).  A wall-clock cap keeps the sweep bounded on
// slow build types without weakening the budget on fast ones.
TEST(VersionStoreGcProperty, DISABLED_HighIterationSweep) {
  const int iters = prop_iters(20'000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(90);
  int done = 0;
  for (int seed = 1; seed <= iters; ++seed) {
    run_store_interleaving(static_cast<std::uint64_t>(seed) * 7919, 160);
    if (HasFatalFailure()) return;
    ++done;
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  std::printf("[  sweep   ] %d/%d interleavings checked\n", done, iters);
}

}  // namespace
}  // namespace snowkit
