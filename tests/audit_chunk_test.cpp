// snowkit-audit-chunk-v1 codec: roundtrip fidelity plus the torn-chunk
// contract — a chunk truncated at ANY byte offset, or corrupted at any
// position, must be rejected with std::invalid_argument before parsing.
#include "audit/chunk.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

namespace snowkit::audit {
namespace {

ChunkMeta test_meta() {
  ChunkMeta meta;
  meta.process_index = 2;
  meta.chunk_seq = 5;
  meta.protocol = "algo-b";
  meta.num_servers = 3;
  meta.fleet_text = "protocol algo-b\nobjects 2\n";
  return meta;
}

std::vector<RawEvent> test_events() {
  return {
      {EventKind::kSend, 1'000, 7, 1, 42, "SimpleReadReq", 31, 0},
      {EventKind::kRecv, 1'200, 7, 1, 42, "SimpleReadResp", 0, 1},
      // kInvalidTxn must survive the +1 wraparound encoding.
      {EventKind::kSend, 1'500, 7, 2, kInvalidTxn, "Shutdown", 9, 0},
  };
}

History test_history() {
  History h;
  h.num_objects = 2;
  TxnRecord t;
  t.id = 42;
  t.client = 7;
  t.is_read = true;
  t.invoke_ns = 900;
  t.respond_ns = 1'300;
  t.complete = true;
  t.invoke_order = 1;
  t.respond_order = 2;
  t.reads = {{0, 5}, {1, 6}};
  t.tag = 3;
  t.rounds = 1;
  t.max_versions = 2;
  h.txns.push_back(t);
  return h;
}

std::vector<std::uint8_t> sealed_chunk(bool with_history) {
  ChunkWriter w(test_meta());
  const auto ev = test_events();
  w.add_group(/*ring_uid=*/11, /*base_seq=*/100, ev.data(), 2);
  w.add_group(/*ring_uid=*/12, /*base_seq=*/0, ev.data() + 2, 1);
  if (with_history) w.set_history(test_history());
  return w.finish(/*drops=*/7);
}

TEST(AuditChunk, RoundTripPreservesEverything) {
  const auto bytes = sealed_chunk(/*with_history=*/true);
  const ChunkFile f = decode_chunk(bytes, "test");

  EXPECT_EQ(f.meta.process_index, 2u);
  EXPECT_EQ(f.meta.chunk_seq, 5u);
  EXPECT_EQ(f.meta.protocol, "algo-b");
  EXPECT_EQ(f.meta.num_servers, 3u);
  EXPECT_EQ(f.meta.fleet_text, "protocol algo-b\nobjects 2\n");
  EXPECT_EQ(f.drops, 7u);

  ASSERT_EQ(f.events.size(), 3u);
  const AuditEvent& e0 = f.events[0];
  EXPECT_EQ(e0.kind, EventKind::kSend);
  EXPECT_EQ(e0.time, 1'000u);
  EXPECT_EQ(e0.node, 7u);
  EXPECT_EQ(e0.peer, 1u);
  EXPECT_EQ(e0.txn, 42u);
  EXPECT_EQ(e0.payload, "SimpleReadReq");
  EXPECT_EQ(e0.bytes, 31u);
  EXPECT_EQ(e0.ring, 11u);
  EXPECT_EQ(e0.seq, 100u);
  EXPECT_EQ(f.events[1].kind, EventKind::kRecv);
  EXPECT_EQ(f.events[1].versions, 1u);
  EXPECT_EQ(f.events[1].seq, 101u);
  EXPECT_EQ(f.events[2].txn, kInvalidTxn);
  EXPECT_EQ(f.events[2].ring, 12u);
  EXPECT_EQ(f.events[2].seq, 0u);

  ASSERT_TRUE(f.history.has_value());
  ASSERT_EQ(f.history->txns.size(), 1u);
  EXPECT_EQ(f.history->num_objects, 2u);
  EXPECT_EQ(f.history->txns[0].id, 42u);
  EXPECT_TRUE(f.history->txns[0].is_read);
  EXPECT_EQ(f.history->txns[0].reads.size(), 2u);
  EXPECT_EQ(f.history->txns[0].tag, 3u);
}

TEST(AuditChunk, EmptyFinalChunkRoundTrips) {
  // close() always seals a final chunk even with no events — it carries the
  // drop totals and (for the client) the history, and its presence marks a
  // clean shutdown.
  ChunkWriter w(test_meta());
  const auto bytes = w.finish(/*drops=*/0);
  const ChunkFile f = decode_chunk(bytes, "test");
  EXPECT_TRUE(f.events.empty());
  EXPECT_FALSE(f.history.has_value());
  EXPECT_EQ(f.drops, 0u);
}

TEST(AuditChunk, TruncationAtEveryOffsetIsRejected) {
  const auto bytes = sealed_chunk(/*with_history=*/true);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(decode_chunk(prefix, "trunc"), std::invalid_argument)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(AuditChunk, EveryByteFlipIsRejected) {
  // Any single-byte corruption lands either in the fingerprinted payload, in
  // the fingerprint itself, or in the end magic — all three fail the seal.
  const auto bytes = sealed_chunk(/*with_history=*/false);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x40;
    EXPECT_THROW(decode_chunk(corrupt, "flip"), std::invalid_argument)
        << "flip at offset " << i << " parsed";
  }
}

TEST(AuditChunk, GarbageAndTrailingJunkAreRejected) {
  EXPECT_THROW(decode_chunk({}, "empty"), std::invalid_argument);
  std::vector<std::uint8_t> junk(64);
  for (std::size_t i = 0; i < junk.size(); ++i) junk[i] = static_cast<std::uint8_t>(i * 37);
  EXPECT_THROW(decode_chunk(junk, "junk"), std::invalid_argument);

  auto padded = sealed_chunk(/*with_history=*/false);
  padded.push_back(0);  // the seal must sit at EOF exactly
  EXPECT_THROW(decode_chunk(padded, "padded"), std::invalid_argument);
}

TEST(AuditChunk, FilenameFormat) {
  EXPECT_EQ(chunk_filename("audit", 0, 0), "audit.p0.000000.auditchunk");
  EXPECT_EQ(chunk_filename("audit", 3, 41), "audit.p3.000041.auditchunk");
}

TEST(AuditChunk, AtomicWriteThenLoad) {
  const auto dir = std::filesystem::temp_directory_path() / "snowkit_audit_chunk_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / chunk_filename("audit", 2, 5)).string();

  const auto bytes = sealed_chunk(/*with_history=*/true);
  write_file_atomic(path, bytes);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const ChunkFile f = load_chunk(path);
  EXPECT_EQ(f.path, path);
  EXPECT_EQ(f.events.size(), 3u);
  EXPECT_EQ(peek_schema(read_file(path)), kChunkSchema);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace snowkit::audit
