// Client churn end-to-end over a real 3-daemon TCP fleet: the churn
// controller (core/churn.hpp) repeatedly stalls the client's reader,
// quiesces, cuts a live server link, pokes the servers' pre-HELLO bounds
// with garbage connects, and lets NetRuntime's initiator-side redial bring
// the fleet back — while an open-loop TrafficModel engine keeps a paced
// workload flowing.  The run must finish with tcp_reconnects scored on BOTH
// sides of the drop, ZERO lost acknowledged writes (max-tag read-back, as
// in the failover e2e), and a green tag-order check.
#include <gtest/gtest.h>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/tag_order.hpp"
#include "core/churn.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace snowkit {
namespace {

#ifndef __linux__

TEST(ChurnNetE2E, RequiresLinux) { GTEST_SKIP() << "TCP transport requires Linux"; }

#else

std::string server_binary() {
  if (const char* env = std::getenv("SNOWKIT_SERVER_BIN")) return env;
  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path() / "snowkit_server").string();
}

bool wait_listening(std::uint16_t port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
    if (rc == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct Daemon {
  pid_t pid{-1};
  std::string stats_json;

  bool sigterm() {
    if (pid <= 0) return false;
    if (::kill(pid, SIGTERM) != 0) return false;
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return false;
    pid = -1;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

struct Fixture {
  FleetConfig fleet;
  std::string root;
  std::vector<Daemon> daemons;

  ~Fixture() {
    daemons.clear();
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
  }
};

/// Reads one numeric field from a snowkit_server --stats-json file.  The
/// format is a flat JSON object with numeric values; a missing key is -1.
long long stats_field(const std::string& path, const std::string& key) {
  std::ifstream f(path);
  if (!f) return -1;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  const auto at = text.find("\"" + key + "\":");
  if (at == std::string::npos) return -1;
  return std::atoll(text.c_str() + at + key.size() + 3);
}

void spawn_daemons(Fixture& fx) {
  const auto tmp = std::filesystem::temp_directory_path();
  fx.root =
      (tmp / ("snowkit_churn_" + std::to_string(static_cast<unsigned>(::getpid())))).string();
  std::filesystem::remove_all(fx.root);
  std::filesystem::create_directories(fx.root);
  const std::string cfg = fx.root + "/fleet.cfg";
  {
    std::ofstream f(cfg, std::ios::trunc);
    ASSERT_TRUE(f) << cfg;
    f << fleet_text(fx.fleet);
  }
  const std::string bin = server_binary();
  fx.daemons.resize(fx.fleet.server_processes());
  for (std::size_t i = 0; i < fx.daemons.size(); ++i) {
    Daemon& d = fx.daemons[i];
    d.stats_json = fx.root + "/stats" + std::to_string(i) + ".json";
    const std::string index = std::to_string(i);
    d.pid = ::fork();
    ASSERT_GE(d.pid, 0);
    if (d.pid == 0) {
      ::execl(bin.c_str(), bin.c_str(), "--config", cfg.c_str(), "--index", index.c_str(),
              "--stats-json", d.stats_json.c_str(), "--quiet", static_cast<char*>(nullptr));
      ::_exit(127);
    }
  }
  for (std::size_t i = 0; i < fx.daemons.size(); ++i) {
    ASSERT_TRUE(wait_listening(fx.fleet.processes[i].port, 15'000))
        << "daemon " << i << " never listened";
  }
}

bool wait_done(const WorkloadDriver& driver, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (driver.done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return driver.done();
}

TEST(ChurnNetE2E, ChurningClientLosesNoAckedWriteAndScoresReconnects) {
  if (!net::transport_supported()) GTEST_SKIP() << "TCP transport requires Linux";
  Fixture fx;
  fx.fleet.protocol = "algo-b";
  fx.fleet.system.num_objects = 8;
  fx.fleet.system.num_readers = 2;
  fx.fleet.system.num_writers = 2;
  fx.fleet.system.num_servers = 3;
  for (const std::uint16_t port : net::pick_free_ports(4)) {
    fx.fleet.processes.push_back({"127.0.0.1", port});
  }
  spawn_daemons(fx);
  ASSERT_FALSE(HasFatalFailure());

  NetRuntime rt(fx.fleet.net_options(fx.fleet.client_index()));
  HistoryRecorder rec(fx.fleet.system.num_objects);
  auto sys = build_protocol(fx.fleet.protocol, rt, rec, fx.fleet.system, fx.fleet.options);
  rt.start();
  ASSERT_TRUE(rt.wait_connected_for(15'000'000'000ull));

  // Open-loop TrafficModel engine: skewed, permuted, write-heavy enough that
  // every churn cycle has acked writes at stake.
  WorkloadSpec spec;
  spec.seed = 41;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 2000;
  opts.arrival_interval_ns = 500'000;  // 2000 ops/s nominal.
  TrafficModel model;
  model.zipf_theta = 0.9;
  model.permute_ranks = true;
  model.read_fraction = 0.5;
  model.write_span = SpanDist::fixed(2);
  model.read_span = SpanDist{SpanKind::kUniform, 1, 4, 0.5};
  model.logical_clients = 1'000'000;
  opts.traffic = model;
  opts.arrival_shards = 2;
  WorkloadDriver driver(rt, *sys, spec, opts);
  driver.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ChurnOptions copts;
  copts.cycles = 2;
  copts.stall_ns = 20'000'000;
  copts.settle_ns = 50'000'000;
  copts.prehello_probes = 4;
  const ChurnReport rep = run_churn(rt, driver, copts);
  EXPECT_GE(rep.cycles_run, 1u);
  EXPECT_GE(rep.drops_requested, 1u);
  EXPECT_GT(rep.prehello_probes, 0u);
  EXPECT_TRUE(rep.clean()) << rep.drain_timeouts << " drain timeouts, "
                           << rep.reconnect_timeouts << " reconnect timeouts";

  ASSERT_TRUE(wait_done(driver, 120'000))
      << "workload wedged across churn: " << driver.completed_reads() << " reads + "
      << driver.completed_writes() << " writes of " << driver.total_ops() << " completed";
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 2000u);
  EXPECT_EQ(driver.sojourn_latency().count, 2000u);

  // The client's side of the drops: every injected drop redialed.
  const TransportStats client_stats = rt.transport_stats();
  EXPECT_GE(client_stats.churn_drops, rep.drops_requested);
  EXPECT_GE(client_stats.churn_stalls, rep.cycles_run);
  EXPECT_GT(client_stats.reconnects, 0u) << "no reconnect ever happened — churn was a no-op";

  // Zero lost acked writes: watermark + max-tag read-back (failover idiom).
  const std::uint64_t watermark = [&] {
    std::uint64_t max_order = 0;
    for (const TxnRecord& t : rec.snapshot().txns) max_order = std::max(max_order, t.respond_order);
    return max_order;
  }();
  WorkloadSpec readback;
  readback.ops_per_reader = 4;
  readback.ops_per_writer = 0;
  readback.read_span = fx.fleet.system.num_objects;
  readback.write_span = 1;
  readback.seed = 43;
  WorkloadDriver reader(rt, *sys, readback);
  reader.start();
  ASSERT_TRUE(wait_done(reader, 60'000)) << "read-back phase wedged";

  const History h = rec.snapshot();
  std::map<ObjectId, std::pair<Tag, Value>> winner;
  for (const TxnRecord& t : h.txns) {
    if (t.is_read || !t.complete) continue;
    ASSERT_NE(t.tag, kInvalidTag);
    for (const auto& [obj, val] : t.writes) {
      auto it = winner.find(obj);
      if (it == winner.end() || t.tag > it->second.first) winner[obj] = {t.tag, val};
    }
  }
  EXPECT_EQ(winner.size(), fx.fleet.system.num_objects);
  for (const TxnRecord& t : h.txns) {
    if (!t.is_read || !t.complete || t.invoke_order <= watermark) continue;
    for (const auto& [obj, val] : t.reads) {
      ASSERT_TRUE(winner.count(obj));
      EXPECT_EQ(val, winner[obj].second)
          << "object " << obj << ": read-back saw value " << val << " but the max-tag "
          << "acknowledged write put " << winner[obj].second << " — a write was lost";
    }
  }
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;

  rt.broadcast_shutdown();
  rt.stop();

  // The servers' side: clean exits, and at least one daemon scored the
  // reconnect from the re-accepted client link in its --stats-json.
  long long server_reconnects = 0;
  for (std::size_t i = 0; i < fx.daemons.size(); ++i) {
    EXPECT_TRUE(fx.daemons[i].sigterm()) << "daemon " << i << " did not exit cleanly";
    const long long r = stats_field(fx.daemons[i].stats_json, "tcp_reconnects");
    ASSERT_GE(r, 0) << "daemon " << i << " wrote no stats json";
    server_reconnects += r;
  }
  EXPECT_GT(server_reconnects, 0) << "no server saw the dropped client link come back";
}

#endif  // __linux__

}  // namespace
}  // namespace snowkit
