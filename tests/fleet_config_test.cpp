// Fleet config parsing + the owner partition every NetRuntime process must
// agree on (runtime/fleet.hpp).
#include "runtime/fleet.hpp"

#include <gtest/gtest.h>

namespace snowkit {
namespace {

const char* kSample = R"(
# three server processes, one client
protocol algo-c
objects 4
readers 2
writers 2
shards 3
placement hash
options gc_versions=true
server 127.0.0.1 7101
server 127.0.0.1 7102   # trailing comment
server 127.0.0.1 7103
client 127.0.0.1 7100
)";

TEST(FleetConfig, ParsesTheDocumentedFormat) {
  const FleetConfig fleet = parse_fleet_text(kSample);
  EXPECT_EQ(fleet.protocol, "algo-c");
  EXPECT_EQ(fleet.system.num_objects, 4u);
  EXPECT_EQ(fleet.system.num_readers, 2u);
  EXPECT_EQ(fleet.system.num_writers, 2u);
  EXPECT_EQ(fleet.system.num_servers, 3u);
  EXPECT_EQ(fleet.system.placement, PlacementKind::kHash);
  EXPECT_TRUE(fleet.options.get_bool("gc_versions"));
  ASSERT_EQ(fleet.processes.size(), 4u);
  EXPECT_EQ(fleet.server_processes(), 3u);
  EXPECT_EQ(fleet.client_index(), 3u);
  EXPECT_EQ(fleet.processes[0].port, 7101);
  EXPECT_EQ(fleet.processes[3].port, 7100);
}

TEST(FleetConfig, TextRoundTrips) {
  const FleetConfig fleet = parse_fleet_text(kSample);
  const FleetConfig again = parse_fleet_text(fleet_text(fleet));
  EXPECT_EQ(again.protocol, fleet.protocol);
  EXPECT_EQ(again.system.num_objects, fleet.system.num_objects);
  EXPECT_EQ(again.system.num_servers, fleet.system.num_servers);
  EXPECT_EQ(again.options.entries(), fleet.options.entries());
  ASSERT_EQ(again.processes.size(), fleet.processes.size());
  for (std::size_t i = 0; i < fleet.processes.size(); ++i) {
    EXPECT_EQ(again.processes[i].host, fleet.processes[i].host);
    EXPECT_EQ(again.processes[i].port, fleet.processes[i].port);
  }
}

TEST(FleetConfig, OwnerPartitionIsContiguousAndCovers) {
  const FleetConfig fleet = parse_fleet_text(kSample);
  // 3 shards over 3 server processes: identity; all higher nodes -> client.
  EXPECT_EQ(fleet.owner_of(0), 0u);
  EXPECT_EQ(fleet.owner_of(1), 1u);
  EXPECT_EQ(fleet.owner_of(2), 2u);
  for (NodeId n = 3; n < 10; ++n) EXPECT_EQ(fleet.owner_of(n), fleet.client_index());

  // 5 shards over 2 server processes: contiguous, non-decreasing, both used.
  FleetConfig wide = fleet;
  wide.system.num_servers = 5;
  wide.processes = {{"127.0.0.1", 1}, {"127.0.0.1", 2}, {"127.0.0.1", 3}};
  std::size_t prev = 0;
  bool used[2] = {false, false};
  for (NodeId s = 0; s < 5; ++s) {
    const std::size_t o = wide.owner_of(s);
    ASSERT_LT(o, 2u);
    EXPECT_GE(o, prev) << "shard->process map must be non-decreasing";
    prev = o;
    used[o] = true;
  }
  EXPECT_TRUE(used[0]);
  EXPECT_TRUE(used[1]);
}

TEST(FleetConfig, NetOptionsShareTheOwnerMapAndOutliveTheConfig) {
  NetOptions opts;
  {
    const FleetConfig fleet = parse_fleet_text(kSample);
    opts = fleet.net_options(3);
  }  // fleet destroyed: the owner closure must be self-contained
  EXPECT_EQ(opts.index, 3u);
  ASSERT_EQ(opts.peers.size(), 4u);
  EXPECT_EQ(opts.owner(0), 0u);
  EXPECT_EQ(opts.owner(2), 2u);
  EXPECT_EQ(opts.owner(7), 3u);
}

TEST(FleetConfig, TransportLineConfiguresEveryProcess) {
  // The client line must stay last, so the transport line goes before it.
  std::string text(kSample);
  text.insert(text.find("client "),
              "transport io_threads=2,coalesce_max_frames=128,reconnect_initial_ms=5\n");
  const FleetConfig fleet = parse_fleet_text(text);
  EXPECT_EQ(fleet.transport.io_threads, 2u);
  EXPECT_EQ(fleet.transport.coalesce_max_frames, 128u);
  EXPECT_EQ(fleet.transport.reconnect_initial_ns, 5'000'000u);
  // Unset knobs keep their defaults.
  EXPECT_EQ(fleet.transport.coalesce_max_bytes, TransportOptions{}.coalesce_max_bytes);

  // Every process derives the SAME transport config from the one file —
  // that is the point of putting it in the fleet file instead of a flag.
  for (std::size_t i = 0; i < fleet.processes.size(); ++i) {
    EXPECT_EQ(fleet.net_options(i).transport.io_threads, 2u) << "process " << i;
  }
}

TEST(FleetConfig, TransportLineRoundTripsAndDefaultsStayImplicit) {
  // A config that never mentions transport must serialize without a
  // transport line (old fleet files stay byte-stable).
  const FleetConfig plain = parse_fleet_text(kSample);
  EXPECT_EQ(fleet_text(plain).find("transport"), std::string::npos);

  // Non-default knobs survive parse(fleet_text(x)) exactly.
  FleetConfig tuned = plain;
  tuned.transport.io_threads = 4;
  tuned.transport.coalesce_max_bytes = 1u << 18;
  tuned.transport.backpressure_bytes = 1u << 22;
  const FleetConfig again = parse_fleet_text(fleet_text(tuned));
  EXPECT_EQ(again.transport.io_threads, 4u);
  EXPECT_EQ(again.transport.coalesce_max_bytes, 1u << 18);
  EXPECT_EQ(again.transport.backpressure_bytes, 1u << 22);
  EXPECT_EQ(fleet_text(again), fleet_text(tuned));
}

TEST(FleetConfig, TransportLineFailsFastWithLineNumbers) {
  auto with_transport = [](const std::string& csv) {
    return "protocol simple\nobjects 2\nshards 2\ntransport " + csv +
           "\nserver 127.0.0.1 1\nserver 127.0.0.1 2\nclient 127.0.0.1 3\n";
  };
  // Unknown key, bad value, out-of-range value: all rejected at parse time
  // with the offending line number, before any runtime exists.
  for (const char* bad : {"frobnicate=1", "io_threads=zero", "io_threads=0",
                          "io_threads=65", "coalesce_max_frames=0", "read_chunk_bytes=16"}) {
    try {
      parse_fleet_text(with_transport(bad));
      FAIL() << "accepted transport csv '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
          << "'" << bad << "' error lacks the line number: " << e.what();
    }
  }
}

TEST(FleetConfig, RejectsMalformedInput) {
  // no client line
  EXPECT_THROW(parse_fleet_text("protocol simple\nobjects 2\nserver 127.0.0.1 1\n"),
               std::invalid_argument);
  // client must be last
  EXPECT_THROW(
      parse_fleet_text("protocol simple\nclient 127.0.0.1 1\nserver 127.0.0.1 2\n"),
      std::invalid_argument);
  // unknown protocol fails fast with the registered list
  try {
    parse_fleet_text("protocol nope\nserver 127.0.0.1 1\nclient 127.0.0.1 2\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("algo-b"), std::string::npos);
  }
  // negative integers must be rejected, not wrapped by stoull
  EXPECT_THROW(parse_fleet_text("shards -1\n"), std::invalid_argument);
  // bad placement / port / key / trailing token
  EXPECT_THROW(parse_fleet_text("placement diagonal\n"), std::invalid_argument);
  EXPECT_THROW(parse_fleet_text("server 127.0.0.1 99999\n"), std::invalid_argument);
  EXPECT_THROW(parse_fleet_text("frobnicate 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_fleet_text("objects 2 extra\n"), std::invalid_argument);
  // more server processes than shards: someone would host nothing
  EXPECT_THROW(parse_fleet_text("protocol simple\nobjects 2\nshards 2\n"
                                "server 127.0.0.1 1\nserver 127.0.0.1 2\n"
                                "server 127.0.0.1 3\nclient 127.0.0.1 4\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace snowkit
