// Round-trip tests for the wire codec: every payload alternative must
// survive encode/decode bit-for-bit.
#include <gtest/gtest.h>

#include "msg/codec.hpp"

namespace snowkit {
namespace {

template <typename T>
void roundtrip(T payload, TxnId txn = 7) {
  Message m{txn, Payload{std::move(payload)}};
  const auto bytes = encode_message(m);
  const Message back = decode_message(bytes);
  EXPECT_EQ(back.txn, m.txn);
  EXPECT_EQ(back.payload.index(), m.payload.index());
  EXPECT_EQ(std::string(payload_name(back.payload)), payload_name(m.payload));
}

TEST(Codec, WriteVal) {
  roundtrip(WriteValReq{WriteKey{3, 9}, 1, 42});
  Message m{5, WriteValReq{WriteKey{3, 9}, 1, 42}};
  const Message back = decode_message(encode_message(m));
  const auto& p = std::get<WriteValReq>(back.payload);
  EXPECT_EQ(p.key, (WriteKey{3, 9}));
  EXPECT_EQ(p.obj, 1u);
  EXPECT_EQ(p.value, 42);
}

TEST(Codec, WriteValAck) { roundtrip(WriteValAck{WriteKey{1, 2}, 0}); }

TEST(Codec, InfoReader) {
  Message m{5, InfoReaderReq{WriteKey{8, 1}, {1, 0, 1}}};
  const Message back = decode_message(encode_message(m));
  const auto& p = std::get<InfoReaderReq>(back.payload);
  EXPECT_EQ(p.key, (WriteKey{8, 1}));
  EXPECT_EQ(p.mask, (std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(Codec, InfoReaderAck) { roundtrip(InfoReaderAck{99}); }
TEST(Codec, UpdateCoor) { roundtrip(UpdateCoorReq{WriteKey{2, 3}, {0, 1}}); }
TEST(Codec, UpdateCoorAck) { roundtrip(UpdateCoorAck{12}); }
TEST(Codec, GetTagArr) { roundtrip(GetTagArrReq{{1, 1, 0}}); }

TEST(Codec, GetTagArrRespWithHistory) {
  GetTagArrResp resp;
  resp.tag = 4;
  resp.latest = {WriteKey{1, 0}, WriteKey{2, 1}};
  resp.history = {{ListedKey{0, kInitialKey}, ListedKey{3, WriteKey{1, 0}}}, {}};
  Message m{11, resp};
  const Message back = decode_message(encode_message(m));
  const auto& p = std::get<GetTagArrResp>(back.payload);
  EXPECT_EQ(p.tag, 4u);
  ASSERT_EQ(p.latest.size(), 2u);
  EXPECT_EQ(p.latest[1], (WriteKey{2, 1}));
  ASSERT_EQ(p.history.size(), 2u);
  ASSERT_EQ(p.history[0].size(), 2u);
  EXPECT_EQ(p.history[0][1].position, 3u);
  EXPECT_EQ(p.history[0][1].key, (WriteKey{1, 0}));
  EXPECT_TRUE(p.history[1].empty());
}

TEST(Codec, ReadVal) { roundtrip(ReadValReq{0, WriteKey{5, 5}}); }
TEST(Codec, ReadValResp) { roundtrip(ReadValResp{0, WriteKey{5, 5}, -3}); }
TEST(Codec, ReadVals) { roundtrip(ReadValsReq{2}); }

TEST(Codec, ReadValsRespVersions) {
  ReadValsResp resp{1, {Version{kInitialKey, 0}, Version{WriteKey{1, 4}, 77}}};
  Message m{1, resp};
  const Message back = decode_message(encode_message(m));
  const auto& p = std::get<ReadValsResp>(back.payload);
  ASSERT_EQ(p.versions.size(), 2u);
  EXPECT_EQ(p.versions[1].value, 77);
}

TEST(Codec, Finalize) { roundtrip(FinalizeReq{WriteKey{9, 9}, 3, 17}); }
TEST(Codec, EigerWrite) { roundtrip(EigerWriteReq{0, 5, 3}); }
TEST(Codec, EigerWriteAck) { roundtrip(EigerWriteAck{0, 7, 7}); }
TEST(Codec, EigerRead) { roundtrip(EigerReadReq{1, 2}); }
TEST(Codec, EigerReadResp) { roundtrip(EigerReadResp{1, 10, 2, 5, 5}); }
TEST(Codec, EigerReadAt) { roundtrip(EigerReadAtReq{1, 4, 6}); }
TEST(Codec, EigerReadAtResp) { roundtrip(EigerReadAtResp{1, 10, 8}); }
TEST(Codec, Lock) { roundtrip(LockReq{2, true}); }
TEST(Codec, LockGrant) { roundtrip(LockGrant{2, 123}); }
TEST(Codec, WriteUnlock) { roundtrip(WriteUnlockReq{2, 9}); }
TEST(Codec, Unlock) { roundtrip(UnlockReq{2}); }
TEST(Codec, UnlockAck) { roundtrip(UnlockAck{2}); }
TEST(Codec, SimpleRead) { roundtrip(SimpleReadReq{0}); }
TEST(Codec, SimpleReadResp) { roundtrip(SimpleReadResp{0, 1}); }
TEST(Codec, SimpleWrite) { roundtrip(SimpleWriteReq{0, 1}); }
TEST(Codec, SimpleWriteAck) { roundtrip(SimpleWriteAck{0}); }

TEST(Codec, EncodedSizeMatches) {
  Message m{3, ReadValsResp{0, {Version{kInitialKey, 0}}}};
  EXPECT_EQ(encoded_size(m), encode_message(m).size());
}

TEST(Codec, VersionCountClassifier) {
  EXPECT_EQ(version_count(Payload{ReadValResp{}}), 1);
  EXPECT_EQ(version_count(Payload{ReadValsResp{0, {Version{}, Version{}, Version{}}}}), 3);
  EXPECT_EQ(version_count(Payload{WriteValReq{}}), 0);
}

// try_decode_message is the UNTRUSTED entry point (network frames): every
// malformation must error-return, never abort.
TEST(Codec, TryDecodeAcceptsValidBytes) {
  const Message m{5, Payload{WriteValReq{WriteKey{3, 9}, 1, 42}}};
  Message out;
  std::string err;
  ASSERT_TRUE(try_decode_message(encode_message(m), out, err)) << err;
  EXPECT_EQ(out, m);
}

TEST(Codec, TryDecodeRejectsMalformedBytes) {
  Message out;
  std::string err;
  // Out-of-range payload index.
  EXPECT_FALSE(try_decode_message({0x00, 0xFF}, out, err));
  // Empty buffer.
  EXPECT_FALSE(try_decode_message({}, out, err));
  // Truncated: valid prefix of a real message, cut at every byte offset.
  const auto full = encode_message(Message{7, Payload{GetTagArrResp{
      4, 2, {WriteKey{1, 0}, WriteKey{2, 1}}, {{ListedKey{1, WriteKey{1, 0}}}}}}});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> prefix(full.begin(),
                                     full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(try_decode_message(prefix, out, err)) << "cut at " << cut;
  }
  // Trailing garbage after a complete payload.
  auto padded = full;
  padded.push_back(0x00);
  EXPECT_FALSE(try_decode_message(padded, out, err));
  // And the full buffer still decodes.
  EXPECT_TRUE(try_decode_message(full, out, err)) << err;
}

}  // namespace
}  // namespace snowkit
