// Property-based sweeps (TEST_P): for every strictly serializable protocol,
// every randomized schedule must yield a history the checkers accept, the
// trace monitor must confirm the protocol's N/O signature, and all WRITEs
// must complete (the W property).  Non-serializable protocols are swept for
// the weaker invariants they do promise.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct SweepCase {
  std::string kind;
  std::size_t objects;
  std::size_t readers;
  std::size_t writers;
  std::uint64_t seed;
  int expected_max_rounds;     // -1 = no bound asserted
  int expected_max_versions;   // -1 = no bound asserted
  bool expect_nonblocking;
};

std::string case_name(const testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string n = c.kind;
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n + "_k" + std::to_string(c.objects) + "_r" + std::to_string(c.readers) + "_w" +
         std::to_string(c.writers) + "_s" + std::to_string(c.seed);
}

class ProtocolSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweep, InvariantsHoldUnderRandomAsynchrony) {
  const SweepCase& c = GetParam();
  SimRuntime sim(make_uniform_delay(10, 5000, c.seed * 1299721));
  HistoryRecorder rec(c.objects);
  auto sys = build_protocol(c.kind, sim, rec, Topology{c.objects, c.readers, c.writers});

  WorkloadSpec spec;
  spec.ops_per_reader = 40;
  spec.ops_per_writer = 20;
  spec.read_span = std::min<std::size_t>(3, c.objects);
  spec.write_span = std::min<std::size_t>(2, c.objects);
  spec.zipf_theta = (c.seed % 2 == 0) ? 0.0 : 0.9;
  spec.seed = c.seed;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done()) << "stuck transactions (W or liveness broken)";

  const History h = rec.snapshot();
  // W property: every WRITE completed.
  EXPECT_EQ(h.completed_writes(), c.writers * spec.ops_per_writer);
  EXPECT_EQ(h.completed_reads(), c.readers * spec.ops_per_reader);

  // S property (strictly serializable protocols only).
  if (provides_tags(c.kind)) {
    const auto verdict = check_tag_order(h);
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
  } else if (c.kind == "blocking-2pl") {
    const auto verdict = check_strict_serializability(h, CheckOptions{2'000'000});
    EXPECT_TRUE(verdict.ok || verdict.exhausted) << verdict.explanation;
  }

  // Every recorded execution must be well-formed (each recv matches an
  // earlier send with identical endpoints and payload).
  std::string why;
  EXPECT_TRUE(well_formed(sim.trace(), &why)) << why;

  // N / O signatures from the trace.
  const auto report = analyze_snow_trace(sim.trace(), c.objects, h);
  if (c.expect_nonblocking) {
    EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  }
  if (c.expected_max_rounds > 0) EXPECT_LE(report.max_read_rounds, c.expected_max_rounds);
  if (c.expected_max_versions > 0) {
    EXPECT_LE(report.max_versions_per_response, c.expected_max_versions);
  }
}

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    // Algorithm A: MWSR only; 1 round, 1 version, non-blocking.
    cases.push_back({"algo-a", 3, 1, 3, seed, 1, 1, true});
    cases.push_back({"algo-a", 6, 1, 2, seed, 1, 1, true});
    // Algorithm B: MWMR; 2 rounds, 1 version, non-blocking.
    cases.push_back({"algo-b", 3, 2, 2, seed, 2, 1, true});
    cases.push_back({"algo-b", 6, 3, 3, seed, 2, 1, true});
    // Algorithm C: MWMR; 1 round, many versions, non-blocking.
    cases.push_back({"algo-c", 3, 2, 2, seed, 1, -1, true});
    cases.push_back({"algo-c", 6, 3, 3, seed, 1, -1, true});
    // Eiger: <=2 rounds, non-blocking (but not S — not asserted here).
    cases.push_back({"eiger", 3, 2, 2, seed, 2, 1, true});
    // OCC reads: one version, non-blocking, rounds finite but unbounded.
    cases.push_back({"occ-reads", 3, 2, 2, seed, -1, 1, true});
    // Blocking 2PL: multi-round, blocking — only S and liveness asserted.
    cases.push_back({"blocking-2pl", 3, 2, 2, seed, -1, 1, false});
    // Simple: 1 round, non-blocking, no S claim.
    cases.push_back({"simple", 4, 2, 2, seed, 1, 1, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSweep, testing::ValuesIn(make_cases()),
                         case_name);

// --- GC sweep for Algorithm C: bounded versions must never cost S ---------

class AlgoCGcSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgoCGcSweep, GcKeepsStrictSerializability) {
  const std::uint64_t seed = GetParam();
  SimRuntime sim(make_uniform_delay(10, 8000, seed));
  HistoryRecorder rec(4);
  BuildOptions opts;
  opts.set("gc_versions", true);
  auto sys = build_protocol("algo-c", sim, rec, Topology{4, 2, 4}, opts);
  WorkloadSpec spec;
  spec.ops_per_reader = 50;
  spec.ops_per_writer = 30;
  spec.read_span = 3;
  spec.write_span = 2;
  spec.seed = seed;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgoCGcSweep, testing::Range<std::uint64_t>(1, 13));

// --- coordinator-placement sweep for B and C --------------------------------

struct CoorCase {
  std::string kind;
  ObjectId coordinator;
  std::uint64_t seed;
};

class CoordinatorSweep : public testing::TestWithParam<CoorCase> {};

TEST_P(CoordinatorSweep, AnyCoordinatorPreservesS) {
  const CoorCase& c = GetParam();
  SimRuntime sim(make_uniform_delay(10, 5000, c.seed));
  HistoryRecorder rec(4);
  BuildOptions opts;
  opts.set("coordinator", c.coordinator);
  auto sys = build_protocol(c.kind, sim, rec, Topology{4, 2, 2}, opts);
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 15;
  spec.read_span = 2;
  spec.seed = c.seed;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

INSTANTIATE_TEST_SUITE_P(
    Placements, CoordinatorSweep,
    testing::Values(CoorCase{"algo-b", 0, 1}, CoorCase{"algo-b", 3, 2},
                    CoorCase{"algo-c", 0, 3}, CoorCase{"algo-c", 3, 4},
                    CoorCase{"algo-b", 1, 5}, CoorCase{"algo-c", 2, 6}),
    [](const testing::TestParamInfo<CoorCase>& info) {
      return std::string(info.param.kind == "algo-b" ? "B" : "C") + "_coor" +
             std::to_string(info.param.coordinator) + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace snowkit
