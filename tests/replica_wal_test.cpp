// WAL framing and replay for the replication layer (proto/replica.hpp).
//
// The recovery contract mirrors the audit chunk format (audit_chunk_test.cpp):
// a damaged HEAD fails loudly, a damaged TAIL is torn off and replay recovers
// the longest valid prefix — it must never invent or reorder records.  The
// property tests below truncate and flip bytes at EVERY offset to pin that.
#include "proto/replica.hpp"

#include <gtest/gtest.h>

#include "msg/codec.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace snowkit {
namespace {

ReplRecord insert_rec(ObjectId obj, std::uint64_t seq, NodeId writer, Value v) {
  ReplRecord r;
  r.kind = ReplRecord::kInsert;
  r.obj = obj;
  r.key = WriteKey{seq, writer};
  r.value = v;
  return r;
}

ReplRecord push_rec(std::uint64_t seq, NodeId writer, Tag position, TxnId txn) {
  ReplRecord r;
  r.kind = ReplRecord::kListPush;
  r.key = WriteKey{seq, writer};
  r.position = position;
  r.mask = {1, 0, 1};
  r.txn = txn;
  r.writer = writer;
  return r;
}

ReplRecord epoch_rec(std::uint64_t epoch, bool primary) {
  ReplRecord r;
  r.kind = ReplRecord::kEpoch;
  r.epoch = epoch;
  r.primary = primary ? 1 : 0;
  return r;
}

std::vector<std::uint8_t> wal_bytes(const std::vector<ReplAppendReq>& batches) {
  std::vector<std::uint8_t> bytes(kWalMagic, kWalMagic + kWalMagicLen);
  for (const ReplAppendReq& b : batches) {
    const auto frame = wal_frame_batch(b);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

/// A realistic WAL: a boot-time epoch marker, two record batches, a role
/// change (takeover), and one batch from the new lineage.  kEpoch markers
/// carry first_seq = current log size but consume no sequence numbers.
std::vector<ReplAppendReq> sample_batches() {
  return {
      ReplAppendReq{0, 0, {epoch_rec(0, false)}},
      ReplAppendReq{0, 0, {insert_rec(0, 1, 10, 111), insert_rec(1, 1, 10, 222)}},
      ReplAppendReq{0, 2, {push_rec(1, 10, 1, 900)}},
      ReplAppendReq{1, 3, {epoch_rec(1, true)}},
      ReplAppendReq{1, 3, {insert_rec(0, 2, 11, 333), insert_rec(2, 2, 11, 444)}},
  };
}

std::vector<ReplRecord> flatten_non_epoch(const std::vector<ReplAppendReq>& batches) {
  std::vector<ReplRecord> out;
  for (const ReplAppendReq& b : batches)
    for (const ReplRecord& r : b.records)
      if (r.kind != ReplRecord::kEpoch) out.push_back(r);
  return out;
}

bool is_prefix(const std::vector<ReplRecord>& small, const std::vector<ReplRecord>& big) {
  if (small.size() > big.size()) return false;
  for (std::size_t i = 0; i < small.size(); ++i)
    if (!(small[i] == big[i])) return false;
  return true;
}

TEST(ReplicaWal, EmptyBytesAreAFreshBoot) {
  const WalReplayResult r = wal_replay({});
  EXPECT_TRUE(r.fresh);
  EXPECT_FALSE(r.torn);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_FALSE(r.was_primary);
}

TEST(ReplicaWal, MagicOnlyIsAnEmptyLog) {
  const WalReplayResult r = wal_replay(wal_bytes({}));
  EXPECT_FALSE(r.fresh);
  EXPECT_FALSE(r.torn);
  EXPECT_TRUE(r.records.empty());
}

TEST(ReplicaWal, ReplaysRecordsAndRecoversEpochWithoutConsumingSequences) {
  const auto batches = sample_batches();
  const WalReplayResult r = wal_replay(wal_bytes(batches));
  EXPECT_FALSE(r.fresh);
  EXPECT_FALSE(r.torn);
  // The two kEpoch markers are applied (newest wins) but are NOT log entries.
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_TRUE(r.was_primary);
  const auto want = flatten_non_epoch(batches);
  ASSERT_EQ(r.records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_TRUE(r.records[i] == want[i]) << i;
}

TEST(ReplicaWal, NonMagicHeadThrows) {
  // A head that exists but is not the magic is corruption, not a torn tail:
  // silently treating it as fresh would erase an entire lineage.
  EXPECT_THROW(wal_replay({0xDE, 0xAD}), std::invalid_argument);
  auto bytes = wal_bytes(sample_batches());
  bytes[3] ^= 0x40;  // damage inside the magic itself
  EXPECT_THROW(wal_replay(bytes), std::invalid_argument);
  // Any truncation that cuts into the magic line is likewise a bad head.
  const std::vector<std::uint8_t> full = wal_bytes(sample_batches());
  for (std::size_t cut = 1; cut < kWalMagicLen; ++cut) {
    const std::vector<std::uint8_t> head(full.begin(), full.begin() + cut);
    EXPECT_THROW(wal_replay(head), std::invalid_argument) << "cut at " << cut;
  }
}

TEST(ReplicaWal, TruncationAtEveryOffsetRecoversAPrefix) {
  const auto batches = sample_batches();
  const std::vector<std::uint8_t> full = wal_bytes(batches);
  const auto all = flatten_non_epoch(batches);
  std::size_t frame_boundaries = 0;
  for (std::size_t cut = kWalMagicLen; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> head(full.begin(), full.begin() + cut);
    WalReplayResult r;
    ASSERT_NO_THROW(r = wal_replay(head)) << "cut at " << cut;
    EXPECT_FALSE(r.fresh);
    EXPECT_TRUE(is_prefix(r.records, all)) << "cut at " << cut << " invented records";
    if (r.torn) {
      EXPECT_LT(r.records.size(), all.size()) << "cut at " << cut;
    } else {
      ++frame_boundaries;  // clean cut: ends exactly on a frame boundary
    }
  }
  // Exactly one clean truncation point per frame: the boundary BEFORE it
  // (cut == kWalMagicLen is the boundary before the first frame; cutting at
  // full.size() never enters the loop).
  EXPECT_EQ(frame_boundaries, batches.size());
}

TEST(ReplicaWal, SingleByteCorruptionAfterMagicNeverInventsRecords) {
  const auto batches = sample_batches();
  const std::vector<std::uint8_t> full = wal_bytes(batches);
  const auto all = flatten_non_epoch(batches);
  for (std::size_t off = kWalMagicLen; off < full.size(); ++off) {
    for (std::uint8_t bit : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> bytes = full;
      bytes[off] ^= bit;
      WalReplayResult r;
      // The FNV-1a checksum (or the length/seq-gap rules) must catch every
      // flip: replay stops at a valid prefix instead of applying garbage.
      ASSERT_NO_THROW(r = wal_replay(bytes)) << "flip at " << off;
      EXPECT_TRUE(r.torn) << "flip at " << off << " went unnoticed";
      EXPECT_TRUE(is_prefix(r.records, all)) << "flip at " << off << " invented records";
    }
  }
}

TEST(ReplicaWal, SequenceGapIsATornTail) {
  // A batch that does not extend the log contiguously ends replay even if its
  // frame is intact — a lost middle batch must not splice later records in.
  std::vector<ReplAppendReq> batches = sample_batches();
  batches[4].first_seq = 5;  // log only holds 3 records at this point
  const WalReplayResult r = wal_replay(wal_bytes(batches));
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.records.size(), 3u);
  // The gap frame also hides the later epoch marker?  No: the kEpoch batch
  // precedes the gap, so the recovered role survives.
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_TRUE(r.was_primary);
}

TEST(ReplicaWal, ForeignPayloadIsATornTail) {
  // A well-framed message of the wrong type (e.g. a stray ack) ends replay.
  std::vector<std::uint8_t> bytes = wal_bytes({sample_batches()[1]});
  const auto payload = encode_message(Message{kInvalidTxn, ReplAppendAck{0, 0}});
  std::vector<std::uint8_t> frame;
  frame.push_back(static_cast<std::uint8_t>(payload.size()));
  frame.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  frame.push_back(static_cast<std::uint8_t>(payload.size() >> 16));
  frame.push_back(static_cast<std::uint8_t>(payload.size() >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  // FNV-1a over the payload, little-endian, matching wal_frame_batch.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t b : payload) h = (h ^ b) * 0x100000001B3ull;
  for (int i = 0; i < 8; ++i) frame.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
  bytes.insert(bytes.end(), frame.begin(), frame.end());

  const WalReplayResult r = wal_replay(bytes);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.records.size(), 2u);
}

TEST(ReplicaWal, MemWalAppendIsByteExactAndResetClears) {
  MemWal wal;
  const auto frame = wal_frame_batch(sample_batches()[1]);
  std::vector<std::uint8_t> magic(kWalMagic, kWalMagic + kWalMagicLen);
  wal.append(magic);
  wal.append(frame);
  std::vector<std::uint8_t> want = magic;
  want.insert(want.end(), frame.begin(), frame.end());
  EXPECT_EQ(wal.read_all(), want);
  wal.reset();
  EXPECT_TRUE(wal.read_all().empty());
}

TEST(ReplicaWal, FileWalRoundTripsAcrossReopen) {
  const std::string path = testing::TempDir() + "/replica_wal_test.wal";
  const auto batches = sample_batches();
  {
    FileWal wal(path);
    wal.reset();  // independent of leftovers from a previous test run
    std::vector<std::uint8_t> magic(kWalMagic, kWalMagic + kWalMagicLen);
    wal.append(magic);
    for (const ReplAppendReq& b : batches) wal.append(wal_frame_batch(b));
  }  // destructor closes the fd: simulate a process death + restart
  FileWal wal(path);
  const WalReplayResult r = wal_replay(wal.read_all());
  EXPECT_FALSE(r.fresh);
  EXPECT_FALSE(r.torn);
  EXPECT_EQ(r.records.size(), flatten_non_epoch(batches).size());
  EXPECT_EQ(r.epoch, 1u);
  wal.reset();
  EXPECT_TRUE(wal.read_all().empty());
}

}  // namespace
}  // namespace snowkit
