// Blocking 2PL comparator: strictly serializable but blocking & multi-round.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/blocking/blocking.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

TEST(Blocking, WriteThenRead) {
  SimRuntime sim;
  HistoryRecorder rec(3);
  auto sys = build_blocking(sim, rec, Topology{3, 1, 1});
  invoke_write(sim, sys->writer(0), {{0, 1}, {2, 3}}, [](const WriteResult&) {});
  sim.run_until_idle();
  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1, 2}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 1);
  EXPECT_EQ(result.values[1].second, kInitialValue);
  EXPECT_EQ(result.values[2].second, 3);
}

TEST(Blocking, StrictlySerializableUnderContention) {
  for (std::uint64_t seed : {41ull, 42ull, 43ull}) {
    SimRuntime sim(make_uniform_delay(10, 4000, seed));
    HistoryRecorder rec(3);
    auto sys = build_blocking(sim, rec, Topology{3, 2, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 15;
    spec.ops_per_writer = 10;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    ASSERT_TRUE(driver.done()) << "deadlock at seed " << seed;
    auto verdict = check_strict_serializability(rec.snapshot(), CheckOptions{1'000'000});
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(Blocking, ReaderBlocksBehindWriterLock) {
  // Hold the writer's write-unlock: the write lock stays held, so a READ's
  // lock request must wait — the N property fails, observably in the trace.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_blocking(sim, rec, Topology{2, 1, 1});
  sim.start();
  sim.hold_matching(script::payload_is("write-unlock"));
  bool w_done = false;
  invoke_write(sim, sys->writer(0), {{0, 9}, {1, 9}}, [&](const WriteResult&) { w_done = true; });
  sim.run_until_idle();
  EXPECT_FALSE(w_done);  // locks held, writes not applied

  bool r_done = false;
  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
    result = r;
    r_done = true;
  });
  sim.run_until_idle();
  EXPECT_FALSE(r_done);  // blocked behind the exclusive lock

  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  ASSERT_TRUE(w_done);
  ASSERT_TRUE(r_done);
  EXPECT_EQ(result.values[0].second, 9);  // FIFO: read serialized after the write

  const History h = rec.snapshot();
  const auto report = analyze_snow_trace(sim.trace(), 2, h);
  EXPECT_FALSE(report.satisfies_n());  // blocking observed mechanically
  auto verdict = check_strict_serializability(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Blocking, RoundsGrowWithReadSpan) {
  SimRuntime sim;
  HistoryRecorder rec(4);
  auto sys = build_blocking(sim, rec, Topology{4, 1, 0});
  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1, 2, 3}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  const History h = rec.snapshot();
  EXPECT_EQ(max_read_rounds(h), 4);  // sequential lock acquisition
}

TEST(Blocking, NoDeadlockWithOpposingAccessOrders) {
  // Reader wants {0,1}, writer wants {1,0}: ordered acquisition sorts both,
  // so the classic deadlock cannot form.  Run many interleavings.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimRuntime sim(make_uniform_delay(10, 2000, seed));
    HistoryRecorder rec(2);
    auto sys = build_blocking(sim, rec, Topology{2, 1, 1});
    bool r_done = false;
    bool w_done = false;
    invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult&) { r_done = true; });
    invoke_write(sim, sys->writer(0), {{1, 5}, {0, 6}}, [&](const WriteResult&) { w_done = true; });
    sim.run_until_idle();
    EXPECT_TRUE(r_done && w_done) << "seed " << seed;
  }
}

}  // namespace
}  // namespace snowkit
