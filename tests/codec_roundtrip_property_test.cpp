// Fuzz-ish roundtrip property for the wire codec: randomly generated
// payloads of EVERY Payload alternative must survive encode/decode
// bit-for-bit (codec_test.cpp covers hand-picked cases only).  Also pins the
// three encoder entry points to each other: encode_message,
// encode_message_into (the ThreadRuntime fast path's reusable buffer), and
// encoded_size (the allocation-free counting path).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "msg/codec.hpp"

namespace snowkit {
namespace {

// --- random field generators -------------------------------------------------

std::uint64_t ru64(Xoshiro256& rng) { return rng.next(); }
std::uint32_t ru32(Xoshiro256& rng) { return static_cast<std::uint32_t>(rng.next()); }
std::int64_t ri64(Xoshiro256& rng) { return static_cast<std::int64_t>(rng.next()); }
bool rbool(Xoshiro256& rng) { return (rng.next() & 1) != 0; }

WriteKey rkey(Xoshiro256& rng) { return WriteKey{ru64(rng), ru32(rng)}; }

// Interest masks are 0/1 by contract (the codec bit-packs them).
std::vector<std::uint8_t> rmask(Xoshiro256& rng) {
  std::vector<std::uint8_t> mask(rng.below(20));
  for (auto& b : mask) b = static_cast<std::uint8_t>(rng.below(2));
  return mask;
}

Version rversion(Xoshiro256& rng) { return Version{rkey(rng), ri64(rng)}; }

ListedKey rlisted(Xoshiro256& rng) { return ListedKey{ru64(rng), rkey(rng)}; }

std::vector<Version> rversions(Xoshiro256& rng) {
  std::vector<Version> v(rng.below(12));
  for (auto& e : v) e = rversion(rng);
  return v;
}

std::vector<WriteKey> rkeys(Xoshiro256& rng) {
  std::vector<WriteKey> v(rng.below(10));
  for (auto& e : v) e = rkey(rng);
  return v;
}

std::vector<std::vector<ListedKey>> rhistory(Xoshiro256& rng) {
  std::vector<std::vector<ListedKey>> h(rng.below(6));
  for (auto& per_obj : h) {
    per_obj.resize(rng.below(8));
    for (auto& e : per_obj) e = rlisted(rng);
  }
  return h;
}

// --- per-alternative generators ----------------------------------------------

template <typename T>
T make_random(Xoshiro256& rng);

template <>
WriteValReq make_random(Xoshiro256& rng) { return {rkey(rng), ru32(rng), ri64(rng)}; }
template <>
WriteValAck make_random(Xoshiro256& rng) { return {rkey(rng), ru32(rng)}; }
template <>
InfoReaderReq make_random(Xoshiro256& rng) { return {rkey(rng), rmask(rng)}; }
template <>
InfoReaderAck make_random(Xoshiro256& rng) { return {ru64(rng)}; }
template <>
UpdateCoorReq make_random(Xoshiro256& rng) { return {rkey(rng), rmask(rng)}; }
template <>
UpdateCoorAck make_random(Xoshiro256& rng) { return {ru64(rng), ru64(rng)}; }
template <>
GetTagArrReq make_random(Xoshiro256& rng) { return {rmask(rng)}; }
template <>
GetTagArrResp make_random(Xoshiro256& rng) {
  return {ru64(rng), ru64(rng), rkeys(rng), rhistory(rng)};
}
template <>
ReadValReq make_random(Xoshiro256& rng) { return {ru32(rng), rkey(rng), ru64(rng)}; }
template <>
ReadValResp make_random(Xoshiro256& rng) {
  return {ru32(rng), rkey(rng), ri64(rng), rbool(rng)};
}
template <>
ReadValsReq make_random(Xoshiro256& rng) { return {ru32(rng)}; }
template <>
ReadValsResp make_random(Xoshiro256& rng) { return {ru32(rng), rversions(rng)}; }
template <>
FinalizeReq make_random(Xoshiro256& rng) {
  return {rkey(rng), ru32(rng), ru64(rng), ru64(rng)};
}
template <>
FinalizeCoorReq make_random(Xoshiro256& rng) { return {ru64(rng)}; }
template <>
ReadDoneReq make_random(Xoshiro256& rng) { return {ru64(rng)}; }
template <>
EigerWriteReq make_random(Xoshiro256& rng) { return {ru32(rng), ri64(rng), ru64(rng)}; }
template <>
EigerWriteAck make_random(Xoshiro256& rng) { return {ru32(rng), ru64(rng), ru64(rng)}; }
template <>
EigerReadReq make_random(Xoshiro256& rng) { return {ru32(rng), ru64(rng)}; }
template <>
EigerReadResp make_random(Xoshiro256& rng) {
  return {ru32(rng), ri64(rng), ru64(rng), ru64(rng), ru64(rng)};
}
template <>
EigerReadAtReq make_random(Xoshiro256& rng) { return {ru32(rng), ru64(rng), ru64(rng)}; }
template <>
EigerReadAtResp make_random(Xoshiro256& rng) { return {ru32(rng), ri64(rng), ru64(rng)}; }
template <>
LockReq make_random(Xoshiro256& rng) { return {ru32(rng), rbool(rng)}; }
template <>
LockGrant make_random(Xoshiro256& rng) { return {ru32(rng), ri64(rng)}; }
template <>
WriteUnlockReq make_random(Xoshiro256& rng) { return {ru32(rng), ri64(rng)}; }
template <>
UnlockReq make_random(Xoshiro256& rng) { return {ru32(rng)}; }
template <>
UnlockAck make_random(Xoshiro256& rng) { return {ru32(rng)}; }
template <>
SimpleReadReq make_random(Xoshiro256& rng) { return {ru32(rng)}; }
template <>
SimpleReadResp make_random(Xoshiro256& rng) { return {ru32(rng), ri64(rng)}; }
template <>
SimpleWriteReq make_random(Xoshiro256& rng) { return {ru32(rng), ri64(rng)}; }
template <>
SimpleWriteAck make_random(Xoshiro256& rng) { return {ru32(rng)}; }

ReplRecord rrecord(Xoshiro256& rng) {
  ReplRecord rec;
  rec.kind = static_cast<std::uint8_t>(rng.below(5));
  rec.obj = ru32(rng);
  rec.key = rkey(rng);
  rec.value = ri64(rng);
  rec.position = ru64(rng);
  rec.watermark = ru64(rng);
  rec.mask = rmask(rng);
  rec.txn = ru64(rng);
  rec.writer = ru32(rng);
  rec.epoch = ru64(rng);
  rec.primary = static_cast<std::uint8_t>(rng.below(2));
  return rec;
}

std::vector<ReplRecord> rrecords(Xoshiro256& rng) {
  std::vector<ReplRecord> v(rng.below(8));
  for (auto& e : v) e = rrecord(rng);
  return v;
}

template <>
ReplAppendReq make_random(Xoshiro256& rng) { return {ru64(rng), ru64(rng), rrecords(rng)}; }
template <>
ReplAppendAck make_random(Xoshiro256& rng) { return {ru64(rng), ru64(rng)}; }
template <>
ReplJoinReq make_random(Xoshiro256& rng) {
  return {ru64(rng), ru64(rng), static_cast<std::uint8_t>(rng.below(2))};
}
template <>
ReplJoinResp make_random(Xoshiro256& rng) {
  return {ru64(rng), static_cast<std::uint8_t>(rng.below(2)), ru64(rng), rrecords(rng)};
}
template <>
TakeoverNotice make_random(Xoshiro256& rng) { return {ru64(rng), ru32(rng), ru64(rng)}; }
template <>
NodeDownNotice make_random(Xoshiro256& rng) { return {ru32(rng)}; }

BatchReadEntry rentry(Xoshiro256& rng) { return {ru32(rng), rkey(rng)}; }

template <>
AdaptTagArrResp make_random(Xoshiro256& rng) {
  return {ru64(rng), ru64(rng), rkeys(rng), rmask(rng), ru64(rng)};
}
template <>
ReadValBatchReq make_random(Xoshiro256& rng) {
  std::vector<BatchReadEntry> entries(rng.below(8));
  for (auto& e : entries) e = rentry(rng);
  return {ru64(rng), std::move(entries)};
}
template <>
ReadValBatchResp make_random(Xoshiro256& rng) {
  std::vector<BatchReadResult> entries(rng.below(8));
  for (auto& e : entries) e = {ru32(rng), rkey(rng), ri64(rng), rbool(rng)};
  return {std::move(entries)};
}
template <>
ReadValsBatchReq make_random(Xoshiro256& rng) {
  std::vector<ObjectId> objs(rng.below(8));
  for (auto& o : objs) o = ru32(rng);
  return {ru64(rng), std::move(objs)};
}
template <>
ReadValsBatchResp make_random(Xoshiro256& rng) {
  std::vector<ObjectVersions> entries(rng.below(6));
  for (auto& e : entries) e = {ru32(rng), rversions(rng)};
  return {std::move(entries)};
}

template <std::size_t I = 0>
Payload random_alternative(std::size_t index, Xoshiro256& rng) {
  if constexpr (I < std::variant_size_v<Payload>) {
    if (index == I) return Payload{make_random<std::variant_alternative_t<I, Payload>>(rng)};
    return random_alternative<I + 1>(index, rng);
  } else {
    ADD_FAILURE() << "bad payload index " << index;
    return Payload{};
  }
}

// --- the property ------------------------------------------------------------

TEST(CodecRoundtripProperty, EveryAlternativeSurvivesRandomRoundtrips) {
  constexpr int kItersPerAlternative = 200;
  Xoshiro256 rng(0xC0DECull);  // fixed seed: failures replay bit-for-bit
  std::vector<std::uint8_t> reused;  // shared across iterations, like the fast path
  for (std::size_t index = 0; index < std::variant_size_v<Payload>; ++index) {
    for (int iter = 0; iter < kItersPerAlternative; ++iter) {
      Message m;
      m.txn = rng.next();
      m.payload = random_alternative(index, rng);

      const auto bytes = encode_message(m);
      EXPECT_EQ(encoded_size(m), bytes.size())
          << "encoded_size mismatch for " << payload_name(m.payload);

      encode_message_into(m, reused);
      EXPECT_EQ(reused, bytes) << "encode_message_into diverged for "
                               << payload_name(m.payload);

      const Message back = decode_message(bytes);
      ASSERT_TRUE(back == m) << "roundtrip mismatch for " << payload_name(m.payload)
                             << " at alternative " << index << " iter " << iter;
    }
  }
}

TEST(CodecRoundtripProperty, ReusedBufferShrinksAndGrowsCorrectly) {
  // A big message followed by a small one into the same buffer must not leave
  // stale trailing bytes (BufWriter clears, keeps capacity).
  Xoshiro256 rng(7);
  GetTagArrResp big{1, 0, rkeys(rng), rhistory(rng)};
  while (big.latest.size() < 4) big.latest.push_back(rkey(rng));
  Message big_msg{9, big};
  Message small_msg{10, SimpleReadReq{3}};

  std::vector<std::uint8_t> buf;
  encode_message_into(big_msg, buf);
  const std::size_t cap_after_big = buf.capacity();
  encode_message_into(small_msg, buf);
  EXPECT_EQ(buf, encode_message(small_msg));
  EXPECT_EQ(buf.capacity(), cap_after_big);  // capacity retained (no realloc)
  EXPECT_TRUE(decode_message(buf) == small_msg);
}

}  // namespace
}  // namespace snowkit
