// Degenerate-topology sweeps: one shard, one client, single-object
// transactions, write-sets touching every shard — the corners where mask and
// List indexing bugs live.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct EdgeCase {
  std::string kind;
  std::size_t objects;
  std::size_t readers;
  std::size_t writers;
  std::size_t read_span;
  std::size_t write_span;
};

class EdgeTopology : public testing::TestWithParam<EdgeCase> {};

TEST_P(EdgeTopology, RunsToQuiescenceAndStaysCorrect) {
  const EdgeCase& c = GetParam();
  SimRuntime sim(make_uniform_delay(10, 3000, 99));
  HistoryRecorder rec(c.objects);
  auto sys = build_protocol(c.kind, sim, rec, Topology{c.objects, c.readers, c.writers});
  WorkloadSpec spec;
  spec.ops_per_reader = 25;
  spec.ops_per_writer = 15;
  spec.read_span = c.read_span;
  spec.write_span = c.write_span;
  spec.seed = 123;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  const History h = rec.snapshot();
  EXPECT_EQ(h.completed_reads(), c.readers * 25);
  EXPECT_EQ(h.completed_writes(), c.writers * 15);
  if (provides_tags(c.kind)) {
    auto verdict = check_tag_order(h);
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
  }
}

std::vector<EdgeCase> make_edge_cases() {
  std::vector<EdgeCase> cases;
  for (const char* kind : {"algo-b", "algo-c", "occ-reads",
                            "blocking-2pl", "eiger"}) {
    cases.push_back({kind, 1, 1, 1, 1, 1});  // single shard, single clients
    cases.push_back({kind, 2, 1, 1, 2, 2});  // full-span txns on two shards
    cases.push_back({kind, 5, 1, 4, 1, 5});  // single-object reads, all-shard writes
    cases.push_back({kind, 5, 4, 1, 5, 1});  // all-shard reads, single-object writes
  }
  // Algorithm A: MWSR variants of the same corners.
  cases.push_back({"algo-a", 1, 1, 1, 1, 1});
  cases.push_back({"algo-a", 2, 1, 1, 2, 2});
  cases.push_back({"algo-a", 5, 1, 4, 1, 5});
  cases.push_back({"algo-a", 5, 1, 3, 5, 1});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Corners, EdgeTopology, testing::ValuesIn(make_edge_cases()),
                         [](const testing::TestParamInfo<EdgeCase>& info) {
                           const EdgeCase& c = info.param;
                           std::string n = c.kind;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n + "_k" + std::to_string(c.objects) + "_r" +
                                  std::to_string(c.readers) + "w" + std::to_string(c.writers) +
                                  "_rs" + std::to_string(c.read_span) + "ws" +
                                  std::to_string(c.write_span);
                         });

TEST(EdgeTopology, SingleShardSystemTriviallySerializesEverything) {
  // With one server the SNOW theorem does not bite ("SNOW is trivially
  // possible with a single server" — §1): every protocol, including naive,
  // is strictly serializable on one shard.
  for (const char* kind : {"naive", "simple"}) {
    SimRuntime sim(make_uniform_delay(10, 3000, 7));
    HistoryRecorder rec(1);
    auto sys = build_protocol(kind, sim, rec, Topology{1, 2, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 20;
    spec.ops_per_writer = 15;
    spec.read_span = 1;
    spec.write_span = 1;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    auto verdict = check_strict_serializability(rec.snapshot(), CheckOptions{2'000'000});
    EXPECT_TRUE(verdict.ok) << kind << ": " << verdict.explanation;
  }
}

}  // namespace
}  // namespace snowkit
