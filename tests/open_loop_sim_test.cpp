// WorkloadDriver open-loop timers on the deterministic simulator.
//
// The open-loop arrival chain runs on Runtime::post_after; until now it was
// only exercised on ThreadRuntime (wall clock).  These tests pin its
// SimRuntime behaviour: virtual-time pacing, exact completion counts,
// sojourn recording under backlog, determinism per seed, interaction with
// chaos scheduling — and the post_after tie-break (equal deadlines fire in
// posting order), which the arrival chain depends on.
#include <gtest/gtest.h>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/chaos.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

class NopNode final : public Node {
 public:
  void on_message(NodeId, const Message&) override {}
};

TEST(PostAfterOrdering, EqualDeadlinesFireInPostingOrder) {
  SimRuntime sim;
  sim.add_node(std::make_unique<NopNode>());
  std::vector<int> fired;
  sim.post_after(0, 1000, [&] { fired.push_back(1); });
  sim.post_after(0, 1000, [&] { fired.push_back(2); });
  sim.post_after(0, 1000, [&] { fired.push_back(3); });
  sim.run_until_idle();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}))
      << "ties on the virtual-time deadline must break by posting order";
  EXPECT_EQ(sim.now_ns(), 1000u);
}

TEST(PostAfterOrdering, ShorterDelayPostedLaterStillFiresFirst) {
  SimRuntime sim;
  sim.add_node(std::make_unique<NopNode>());
  std::vector<int> fired;
  sim.post_after(0, 2000, [&] { fired.push_back(1); });
  sim.post_after(0, 500, [&] { fired.push_back(2); });
  sim.post_after(0, 2000, [&] { fired.push_back(3); });  // ties with #1
  sim.run_until_idle();
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
}

TEST(OpenLoopOnSim, PacesArrivalsInVirtualTimeAndCompletes) {
  SimRuntime sim;
  HistoryRecorder rec(4);
  auto sys = build_protocol("algo-b", sim, rec, SystemConfig{4, 2, 2});
  WorkloadSpec spec;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 7;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 40;
  opts.arrival_interval_ns = 10'000;
  opts.read_fraction = 0.5;
  WorkloadDriver driver(sim, *sys, spec, opts);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 40u);
  // 40 arrivals at a 10us spacing: the last arrival fires at 400us of
  // virtual time, so the run cannot have quiesced before that.
  EXPECT_GE(sim.now_ns(), 40u * 10'000u);
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(OpenLoopOnSim, RecordsSojournLatencyIncludingBacklog) {
  SimRuntime sim;
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-c", sim, rec, SystemConfig{3, 1, 1});
  WorkloadSpec spec;
  spec.read_span = 2;
  spec.seed = 11;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 30;
  // Arrivals far faster than the ~4 round-trip txn latency at the default
  // 1000ns hop: a real backlog builds inside TxnClient.
  opts.arrival_interval_ns = 100;
  opts.read_fraction = 0.5;
  WorkloadDriver driver(sim, *sys, spec, opts);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  const LatencySummary sojourn = driver.sojourn_latency();
  EXPECT_EQ(sojourn.count, 30u);
  // Under backlog, client-perceived sojourn must exceed the bare protocol
  // invoke->respond latency for the worst transactions.
  const LatencySummary protocol = summarize_latency(rec.snapshot(), /*reads=*/true);
  EXPECT_GT(sojourn.p99_ns, protocol.p50_ns);
}

TEST(OpenLoopOnSim, DeterministicPerSeedAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimRuntime sim;
    HistoryRecorder rec(3);
    auto sys = build_protocol("algo-b", sim, rec, SystemConfig{3, 2, 2});
    WorkloadSpec spec;
    spec.read_span = 2;
    spec.seed = seed;
    DriverOptions opts;
    opts.mode = ArrivalMode::kOpenLoop;
    opts.total_ops = 25;
    opts.arrival_interval_ns = 5'000;
    opts.read_fraction = 0.6;
    WorkloadDriver driver(sim, *sys, spec, opts);
    driver.start();
    sim.run_until_idle();
    EXPECT_TRUE(driver.done());
    return sim.trace().to_text();
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(OpenLoopOnSim, SurvivesChaosScheduling) {
  // Timers are tasks, not messages: chaos can starve message delivery but
  // must not break the arrival chain or liveness.
  SimRuntime sim;
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-b", sim, rec, SystemConfig{3, 2, 2});
  WorkloadSpec spec;
  spec.read_span = 2;
  spec.seed = 13;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 30;
  opts.arrival_interval_ns = 2'000;
  opts.read_fraction = 0.5;
  WorkloadDriver driver(sim, *sys, spec, opts);
  driver.start();
  ChaosOptions chaos;
  chaos.seed = 17;
  chaos.hold_probability = 0.6;
  run_chaos(sim, chaos);
  ASSERT_TRUE(driver.done());
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 30u);
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace snowkit
