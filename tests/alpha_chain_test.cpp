// The Fig. 3 chain (Theorem 1) must reproduce end to end.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "theory/alpha_chain.hpp"

namespace snowkit::theory {
namespace {

TEST(AlphaChain, FullChainReproduces) {
  AlphaChainResult result = run_alpha_chain();
  ASSERT_EQ(result.steps.size(), 6u);
  for (const auto& step : result.steps) {
    EXPECT_TRUE(step.verified) << step.name << ": " << step.note;
  }
  EXPECT_EQ(result.steps[0].name, "alpha6");
  EXPECT_EQ(result.steps[0].r1_values, "(x0,y0)");
  EXPECT_EQ(result.steps[0].r2_values, "(x1,y1)");
  EXPECT_TRUE(result.s_violated) << "alpha10 realization must violate S";
  EXPECT_FALSE(result.violation.empty());
}

TEST(AlphaChain, Alpha6HasTheLemma10FragmentOrder) {
  AlphaChainResult result = run_alpha_chain();
  EXPECT_EQ(result.steps[0].order, "I2 ◦ I1 ◦ F1x ◦ F2y ◦ F1y ◦ E1 ◦ F2x ◦ E2");
}

TEST(AlphaChain, Alpha10PutsR2WhollyBeforeR1) {
  AlphaChainResult result = run_alpha_chain();
  const auto& a10 = result.steps[4];
  EXPECT_EQ(a10.name, "alpha10");
  EXPECT_EQ(a10.order, "I2 ◦ F2y ◦ F2x ◦ E2 ◦ I1 ◦ F1x ◦ F1y ◦ E1");
}

TEST(AlphaChain, FinalHistoryRejectedByChecker) {
  AlphaChainResult result = run_alpha_chain();
  auto verdict = check_strict_serializability(result.final_history);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(find_stale_reread(result.final_history).empty());
}

}  // namespace
}  // namespace snowkit::theory
