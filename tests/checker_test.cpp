// The search-based strict-serializability checker, exercised on hand-built
// histories with known verdicts.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"

namespace snowkit {
namespace {

/// History construction DSL for tests.
class HistoryBuilder {
 public:
  explicit HistoryBuilder(std::size_t k) { h_.num_objects = k; }

  /// Adds a WRITE with interval [inv, resp] in order units.
  HistoryBuilder& write(TxnId id, std::uint64_t inv, std::uint64_t resp,
                        std::vector<std::pair<ObjectId, Value>> writes) {
    TxnRecord t;
    t.id = id;
    t.client = 100 + static_cast<NodeId>(id);
    t.is_read = false;
    t.invoke_order = inv;
    t.respond_order = resp;
    t.complete = resp != 0;
    t.writes = std::move(writes);
    h_.txns.push_back(std::move(t));
    return *this;
  }

  HistoryBuilder& read(TxnId id, std::uint64_t inv, std::uint64_t resp,
                       std::vector<std::pair<ObjectId, Value>> reads) {
    TxnRecord t;
    t.id = id;
    t.client = 100 + static_cast<NodeId>(id);
    t.is_read = true;
    t.invoke_order = inv;
    t.respond_order = resp;
    t.complete = resp != 0;
    t.reads = std::move(reads);
    h_.txns.push_back(std::move(t));
    return *this;
  }

  History build() { return h_; }

 private:
  History h_;
};

TEST(Checker, EmptyHistoryOk) {
  History h;
  h.num_objects = 2;
  EXPECT_TRUE(check_strict_serializability(h).ok);
}

TEST(Checker, SequentialWriteRead) {
  auto h = HistoryBuilder(2)
               .write(1, 1, 2, {{0, 10}, {1, 20}})
               .read(2, 3, 4, {{0, 10}, {1, 20}})
               .build();
  EXPECT_TRUE(check_strict_serializability(h).ok);
}

TEST(Checker, ReadMissingCompletedWriteFails) {
  auto h = HistoryBuilder(2)
               .write(1, 1, 2, {{0, 10}, {1, 20}})
               .read(2, 3, 4, {{0, kInitialValue}, {1, kInitialValue}})
               .build();
  auto v = check_strict_serializability(h);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.exhausted);
}

TEST(Checker, ConcurrentWriteEitherOutcomeOk) {
  // R concurrent with W: both (old,old) and (new,new) serialize.
  auto old_ok = HistoryBuilder(2)
                    .write(1, 1, 10, {{0, 10}, {1, 20}})
                    .read(2, 2, 3, {{0, kInitialValue}, {1, kInitialValue}})
                    .build();
  EXPECT_TRUE(check_strict_serializability(old_ok).ok);
  auto new_ok = HistoryBuilder(2)
                    .write(1, 1, 10, {{0, 10}, {1, 20}})
                    .read(2, 2, 3, {{0, 10}, {1, 20}})
                    .build();
  EXPECT_TRUE(check_strict_serializability(new_ok).ok);
}

TEST(Checker, FracturedReadFails) {
  auto h = HistoryBuilder(2)
               .write(1, 1, 10, {{0, 10}, {1, 20}})
               .read(2, 2, 3, {{0, 10}, {1, kInitialValue}})
               .build();
  auto v = check_strict_serializability(h);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(find_fractured_read(h).empty());
}

TEST(Checker, NewThenOldAcrossTwoReadersFails) {
  // r1 sees the write, r2 — strictly after r1 — sees the initial values.
  auto h = HistoryBuilder(2)
               .write(1, 1, 100, {{0, 10}, {1, 20}})
               .read(2, 2, 3, {{0, 10}, {1, 20}})
               .read(3, 4, 5, {{0, kInitialValue}, {1, kInitialValue}})
               .build();
  auto v = check_strict_serializability(h);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(find_stale_reread(h).empty());
}

TEST(Checker, RealTimeOrderOfWritesRespected) {
  // w1 before w2 in real time; a later read must not see w1's value if it
  // also proves w2 happened... here: read sees w1 on obj0 but w2 completed
  // before the read started and wrote obj0 too -> must fail.
  auto h = HistoryBuilder(1)
               .write(1, 1, 2, {{0, 10}})
               .write(2, 3, 4, {{0, 20}})
               .read(3, 5, 6, {{0, 10}})
               .build();
  EXPECT_FALSE(check_strict_serializability(h).ok);
}

TEST(Checker, UnwrittenValueDetected) {
  auto h = HistoryBuilder(1).read(1, 1, 2, {{0, 999}}).build();
  auto v = check_strict_serializability(h);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(find_unwritten_value(h).empty());
}

TEST(Checker, IncompleteWritePlacedFreely) {
  // W never completed; a read may see it (took effect) or not.
  auto seen = HistoryBuilder(2)
                  .write(1, 1, 0, {{0, 10}, {1, 20}})
                  .read(2, 2, 3, {{0, 10}, {1, 20}})
                  .build();
  EXPECT_TRUE(check_strict_serializability(seen).ok);
  auto unseen = HistoryBuilder(2)
                    .write(1, 1, 0, {{0, 10}, {1, 20}})
                    .read(2, 2, 3, {{0, kInitialValue}, {1, kInitialValue}})
                    .build();
  EXPECT_TRUE(check_strict_serializability(unseen).ok);
}

TEST(Checker, IncompleteReadIgnored) {
  auto h = HistoryBuilder(1)
               .write(1, 1, 2, {{0, 10}})
               .read(2, 3, 0, {{0, kInitialValue}})  // incomplete
               .build();
  EXPECT_TRUE(check_strict_serializability(h).ok);
}

TEST(Checker, InterleavedWritersSerializeByValueChain) {
  // Two writers alternate on one object; a read of each successive value
  // must be serializable in the obvious order.
  auto h = HistoryBuilder(1)
               .write(1, 1, 2, {{0, 10}})
               .read(2, 3, 4, {{0, 10}})
               .write(3, 5, 6, {{0, 20}})
               .read(4, 7, 8, {{0, 20}})
               .build();
  EXPECT_TRUE(check_strict_serializability(h).ok);
}

TEST(Checker, EigerShapedCycleFails) {
  // The Fig. 5 shape: w1(B), w2(B), w3(A) with w2 -> w3 in real time; R
  // (concurrent with all) reads A=w3 and B=w1.
  auto h = HistoryBuilder(2)
               .write(1, 1, 2, {{1, 100}})   // w1: B=100
               .write(2, 5, 6, {{1, 200}})   // w2: B=200
               .write(3, 7, 8, {{0, 300}})   // w3: A=300 (after w2)
               .read(4, 3, 9, {{0, 300}, {1, 100}})
               .build();
  auto v = check_strict_serializability(h);
  EXPECT_FALSE(v.ok) << "read sees w3 but misses w2";
}

TEST(Checker, ManyConcurrentWritesStillTractable) {
  // 10 concurrent writes to one object, a read seeing one of them: the
  // memoized search must stay comfortably within bounds.
  HistoryBuilder b(1);
  for (TxnId i = 1; i <= 10; ++i) {
    b.write(i, 1, 100 + i, {{0, static_cast<Value>(i * 10)}});
  }
  b.read(99, 2, 3, {{0, 50}});
  auto v = check_strict_serializability(b.build());
  EXPECT_TRUE(v.ok);
  EXPECT_FALSE(v.exhausted);
}

TEST(Checker, ExhaustionReported) {
  // 18 mutually concurrent writes, all real-time-before the read; the read
  // demands the LOWEST-indexed write per object to be the last one, which is
  // maximally wrong for the DFS's natural index order, so a 50-state cap
  // exhausts before a witness is found.
  HistoryBuilder b(4);
  for (TxnId i = 1; i <= 18; ++i) {
    b.write(i, 1, 10, {{static_cast<ObjectId>(i % 4), static_cast<Value>(i)}});
  }
  b.read(99, 20, 21, {{0, 4}, {1, 1}, {2, 2}, {3, 3}});
  auto v = check_strict_serializability(b.build(), CheckOptions{50});
  EXPECT_FALSE(v.ok);
  // Either it found an answer quickly or it reports exhaustion; with a cap
  // of 50 states on 18 concurrent writes, exhaustion is expected.
  EXPECT_TRUE(v.exhausted);
}

}  // namespace
}  // namespace snowkit
