// Chaos-schedule property sweeps: under unbounded random reordering the
// strictly serializable protocols must stay strictly serializable, keep
// their round/version signatures, and complete every transaction.  The
// protocols that are NOT strictly serializable get caught red-handed far
// more often than under mere delay randomization.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/chaos.hpp"

namespace snowkit {
namespace {

struct ChaosCase {
  std::string kind;
  std::uint64_t seed;
};

class ChaosSweep : public testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, StrictProtocolsSurviveUnboundedReordering) {
  const ChaosCase& c = GetParam();
  SimRuntime sim;
  HistoryRecorder rec(3);
  const std::size_t readers = c.kind == "algo-a" ? 1 : 2;
  BuildOptions opts;
  if (c.seed % 2 == 0) opts.set("gc_versions", true);  // alternate GC mode
  auto sys = build_protocol(c.kind, sim, rec, Topology{3, readers, 2}, opts);

  WorkloadSpec spec;
  spec.ops_per_reader = 25;
  spec.ops_per_writer = 15;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = c.seed;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();

  ChaosOptions chaos;
  chaos.seed = c.seed * 2654435761u;
  chaos.hold_probability = 0.6;
  run_chaos(sim, chaos);
  ASSERT_TRUE(driver.done()) << "chaos must preserve liveness (W property)";

  const History h = rec.snapshot();
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << c.kind << " seed " << c.seed << ": "
                          << verdict.explanation;

  const auto report = analyze_snow_trace(sim.trace(), 3, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  if (c.kind == "algo-a") EXPECT_EQ(report.max_read_rounds, 1);
  if (c.kind == "algo-b") EXPECT_LE(report.max_read_rounds, 2);
  if (c.kind == "algo-c" && !opts.get_bool("gc_versions")) {
    EXPECT_EQ(report.max_read_rounds, 1);
  }
  if (c.kind != "algo-c") EXPECT_EQ(report.max_versions_per_response, 1);
}

std::vector<ChaosCase> make_chaos_cases() {
  std::vector<ChaosCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const char* kind :
         {"algo-a", "algo-b", "algo-c", "occ-reads"}) {
      cases.push_back({kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(StrictProtocols, ChaosSweep, testing::ValuesIn(make_chaos_cases()),
                         [](const testing::TestParamInfo<ChaosCase>& info) {
                           std::string n = info.param.kind;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n + "_s" + std::to_string(info.param.seed);
                         });

TEST(ChaosSweep, NaiveFracturesFrequentlyUnderChaos) {
  int violations = 0;
  const int runs = 10;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    SimRuntime sim;
    HistoryRecorder rec(2);
    auto sys = build_protocol("naive", sim, rec, Topology{2, 1, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 20;
    spec.ops_per_writer = 10;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    ChaosOptions chaos;
    chaos.seed = seed;
    run_chaos(sim, chaos);
    if (!find_fractured_read(rec.snapshot()).empty()) ++violations;
  }
  EXPECT_GT(violations, runs / 2)
      << "chaos schedules should fracture the naive protocol most of the time";
}

TEST(ChaosSweep, BlockingStaysSerializableAndLive) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SimRuntime sim;
    HistoryRecorder rec(2);
    auto sys = build_protocol("blocking-2pl", sim, rec, Topology{2, 2, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 10;
    spec.ops_per_writer = 8;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    ChaosOptions chaos;
    chaos.seed = seed + 77;
    run_chaos(sim, chaos);
    ASSERT_TRUE(driver.done()) << "no deadlock under chaos";
    auto verdict = check_strict_serializability(rec.snapshot(), CheckOptions{2'000'000});
    EXPECT_TRUE(verdict.ok || verdict.exhausted) << verdict.explanation;
  }
}

// Degenerate adversary knobs must still terminate: hold_probability 0.0
// (nothing captured), 1.0 (everything captured), and release_probability
// 0.0 (releases happen only when the queue runs dry).  Each run must take a
// bounded number of scheduling decisions — at most a small multiple of the
// messages exchanged — and complete every transaction.
TEST(ChaosEdgeCases, DegenerateProbabilitiesTerminateWithBoundedDecisions) {
  struct Edge {
    double hold;
    double release;
  };
  for (const Edge edge : {Edge{0.0, 0.0}, Edge{1.0, 0.0}, Edge{0.0, 1.0}, Edge{1.0, 1.0}}) {
    SimRuntime sim;
    HistoryRecorder rec(2);
    auto sys = build_protocol("algo-b", sim, rec, Topology{2, 1, 2});
    WorkloadSpec spec;
    spec.ops_per_reader = 10;
    spec.ops_per_writer = 8;
    spec.seed = 3;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    ChaosOptions chaos;
    chaos.seed = 9;
    chaos.hold_probability = edge.hold;
    chaos.release_probability = edge.release;
    const std::size_t decisions = run_chaos(sim, chaos);
    ASSERT_TRUE(driver.done()) << "hold=" << edge.hold << " release=" << edge.release
                               << " lost liveness";
    // Every decision either delivers a queued event or releases a held
    // message, and each message is held at most once, so decisions are
    // bounded by twice the recorded actions (sends + receives + tasks) plus
    // slack for the task events the trace does not count.
    EXPECT_LE(decisions, 4 * sim.trace().size() + 64)
        << "hold=" << edge.hold << " release=" << edge.release;
    const auto verdict = check_tag_order(rec.snapshot());
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
  }
}

// The max_decisions liveness guard: even with an adversary that would hold
// everything forever, the runner abandons it at the cap and drains the
// simulation deterministically to completion.
TEST(ChaosEdgeCases, MaxDecisionsGuardForcesTermination) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("algo-b", sim, rec, Topology{2, 1, 2});
  WorkloadSpec spec;
  spec.ops_per_reader = 10;
  spec.ops_per_writer = 8;
  spec.seed = 5;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  ChaosOptions chaos;
  chaos.seed = 2;
  chaos.hold_probability = 1.0;
  chaos.release_probability = 0.0;
  chaos.max_decisions = 7;  // absurdly small: the guard must take over
  run_chaos(sim, chaos);
  ASSERT_TRUE(driver.done()) << "guard-mode drain must preserve liveness";
  EXPECT_EQ(sim.held_count(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ChaosSweep, ChaosIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    SimRuntime sim;
    HistoryRecorder rec(2);
    auto sys = build_protocol("algo-b", sim, rec, Topology{2, 1, 1});
    WorkloadSpec spec;
    spec.ops_per_reader = 10;
    spec.ops_per_writer = 5;
    spec.seed = 1;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    ChaosOptions chaos;
    chaos.seed = seed;
    run_chaos(sim, chaos);
    return sim.trace().to_text();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace snowkit
