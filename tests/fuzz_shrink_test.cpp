// Failing-schedule minimization + the repro trace-file contract.
//
// A failing case must shrink to a smaller case that still trips the same
// checker; the minimized case's recorded schedule must replay
// byte-identically (pinned by the stored trace fingerprint); and the trace
// file must round-trip through its binary codec unchanged — the
// end-to-end guarantees behind `fuzz_harness --replay` of a CI artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/trace_io.hpp"

namespace snowkit::fuzz {
namespace {

/// First (case, report) pair that trips the oracle for `protocol`.
bool find_failure(const std::string& protocol, FuzzCase* c, OracleReport* report) {
  GenParams params;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    *c = generate_case(protocol, params, seed);
    *report = check_run(protocol, run_case(*c));
    if (report->violation) return true;
  }
  return false;
}

TEST(Shrink, MinimizesWhilePreservingTheChecker) {
  FuzzCase failing;
  OracleReport original;
  ASSERT_TRUE(find_failure("eiger", &failing, &original));

  const ShrinkResult shrunk = shrink_case(failing, original.checker);
  EXPECT_LE(shrunk.minimized.ops.size(), failing.ops.size());
  EXPECT_LE(shrunk.minimized.num_objects, failing.num_objects);
  EXPECT_EQ(shrunk.report.checker, original.checker);
  EXPECT_GT(shrunk.runs, 0u);

  // The minimized case is an independent repro: a fresh seeded run (no
  // recorded log involved) still trips the same checker.
  const OracleReport again = check_run(shrunk.minimized.protocol, run_case(shrunk.minimized));
  EXPECT_TRUE(again.violation);
  EXPECT_EQ(again.checker, original.checker);
}

TEST(Shrink, MinimizedScheduleReplaysByteIdentically) {
  FuzzCase failing;
  OracleReport original;
  ASSERT_TRUE(find_failure("broken-stale", &failing, &original));
  const ShrinkResult shrunk = shrink_case(failing, original.checker);

  const CaseRun replayed = replay_case(shrunk.minimized, shrunk.log);
  EXPECT_FALSE(replayed.stats.guard_tripped);
  EXPECT_EQ(trace_fingerprint(replayed.trace), shrunk.trace_hash)
      << "replaying the minimized schedule must reproduce the recorded run byte-identically";
  const OracleReport report = check_run(shrunk.minimized.protocol, replayed);
  EXPECT_TRUE(report.violation);
  EXPECT_EQ(report.checker, shrunk.report.checker);
}

TEST(Shrink, RefusesACaseThatDoesNotReproduce) {
  const FuzzCase clean = generate_case("algo-b", GenParams{}, 1);
  ASSERT_FALSE(check_run("algo-b", run_case(clean)).violation);
  EXPECT_THROW(shrink_case(clean, "fractured-read"), std::invalid_argument);
}

TEST(TraceIo, EncodeDecodeRoundTripsExactly) {
  FuzzCase failing;
  OracleReport original;
  ASSERT_TRUE(find_failure("eiger", &failing, &original));
  const ShrinkResult shrunk = shrink_case(failing, original.checker);

  FuzzTraceFile file;
  file.c = shrunk.minimized;
  file.log = shrunk.log;
  file.checker = shrunk.report.checker;
  file.explanation = shrunk.report.explanation;
  file.trace_hash = shrunk.trace_hash;

  const auto bytes = encode_trace_file(file);
  const FuzzTraceFile decoded = decode_trace_file(bytes);
  EXPECT_EQ(decoded, file);

  const std::string path = testing::TempDir() + "snowkit_shrink_roundtrip.trace";
  write_trace_file(path, file);
  const FuzzTraceFile from_disk = read_trace_file(path);
  EXPECT_EQ(from_disk, file);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsForeignAndTruncatedFiles) {
  EXPECT_THROW(decode_trace_file({0x01, 0x02, 0x03}), std::exception);
  FuzzTraceFile file;
  file.c = generate_case("naive", GenParams{}, 2);
  auto bytes = encode_trace_file(file);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_trace_file(bytes), std::exception);
  EXPECT_THROW(read_trace_file("/nonexistent/path.trace"), std::runtime_error);
}

TEST(TraceIo, StaleLogOnAShrunkCaseStillTerminates) {
  // Replaying a log over a DIFFERENT case must not hang or crash: the
  // runner abandons the log and drains deterministically.
  FuzzCase failing;
  OracleReport original;
  ASSERT_TRUE(find_failure("naive", &failing, &original));
  const CaseRun recorded = run_case(failing);
  FuzzCase shrunk = failing;
  shrunk.ops.resize(std::max<std::size_t>(1, shrunk.ops.size() / 2));
  const CaseRun replayed = replay_case(shrunk, recorded.log);
  EXPECT_TRUE(replayed.completed) << "stale-log replay must preserve liveness";
}

}  // namespace
}  // namespace snowkit::fuzz
