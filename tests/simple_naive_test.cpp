// The simple (non-transactional) and naive (fake-transactional) protocols.
#include <gtest/gtest.h>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/naive/naive.hpp"
#include "proto/simple/simple.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

TEST(Simple, OneRoundNonBlocking) {
  SimRuntime sim(make_uniform_delay(10, 3000, 5));
  HistoryRecorder rec(4);
  auto sys = build_simple(sim, rec, Topology{4, 2, 1});
  WorkloadSpec spec;
  spec.ops_per_reader = 20;
  spec.ops_per_writer = 10;
  spec.read_span = 3;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const History h = rec.snapshot();
  const auto report = analyze_snow_trace(sim.trace(), 4, h);
  EXPECT_TRUE(report.satisfies_n());
  EXPECT_TRUE(report.satisfies_o());
  EXPECT_EQ(max_read_rounds(h), 1);
}

TEST(Naive, FracturedReadUnderAdversary) {
  // Deliver the READ between the write's two server updates: the classic
  // fracture (x1, y0) — the concrete face of the SNOW Theorem.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_naive(sim, rec, Topology{2, 1, 1});
  sim.start();
  sim.hold_matching(script::all_of({script::payload_is("simple-write"), script::to_node(1)}));
  bool w_done = false;
  invoke_write(sim, sys->writer(0), {{0, 10}, {1, 20}}, [&](const WriteResult&) { w_done = true; });
  sim.run_until_idle();  // object 0 updated; object 1's write held
  EXPECT_FALSE(w_done);

  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 10);
  EXPECT_EQ(result.values[1].second, kInitialValue);

  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  EXPECT_TRUE(w_done);  // W still completes (the W property held)

  const History h = rec.snapshot();
  auto verdict = check_strict_serializability(h);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(find_fractured_read(h).empty());
}

TEST(Naive, BenignSchedulesLookSerializable) {
  // With writes draining between reads, naive looks fine — the violation is
  // a property of adversarial interleavings, not of every run.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_naive(sim, rec, Topology{2, 1, 1});
  for (int i = 1; i <= 5; ++i) {
    invoke_write(sim, sys->writer(0), {{0, i * 10}, {1, i * 10 + 1}}, [](const WriteResult&) {});
    sim.run_until_idle();
    invoke_read(sim, sys->reader(0), {0, 1}, [](const ReadResult&) {});
    sim.run_until_idle();
  }
  auto verdict = check_strict_serializability(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Naive, ProtocolRegistryTraits) {
  EXPECT_FALSE(claims_strict_serializability("naive"));
  EXPECT_FALSE(provides_tags("naive"));
  EXPECT_TRUE(claims_strict_serializability("algo-b"));
  EXPECT_TRUE(provides_tags("algo-c"));
  const ProtocolTraits& naive = ProtocolRegistry::global().traits("naive");
  EXPECT_TRUE(naive.snow_n && naive.snow_o && naive.snow_w);
  EXPECT_FALSE(naive.snow_s);  // the SNOW Theorem, as a capability record
}

TEST(Simple, BuildViaRegistry) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("simple", sim, rec, Topology{2, 1, 1});
  EXPECT_EQ(sys->name(), "simple");
  EXPECT_EQ(sys->num_objects(), 2u);
  EXPECT_EQ(sys->num_readers(), 1u);
  EXPECT_EQ(sys->num_writers(), 1u);
}

}  // namespace
}  // namespace snowkit
