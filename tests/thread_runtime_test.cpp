// ThreadRuntime: real-thread message passing with the same protocol code.
#include <gtest/gtest.h>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

TEST(ThreadRuntime, AlgoBWorkloadIsStrictlySerializable) {
  ThreadRuntime rt;
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-b", rt, rec, Topology{3, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 100;
  spec.ops_per_writer = 50;
  spec.read_span = 2;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(ThreadRuntime, AlgoCWorkloadIsStrictlySerializable) {
  ThreadRuntime rt;
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-c", rt, rec, Topology{3, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 100;
  spec.ops_per_writer = 50;
  spec.read_span = 3;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(ThreadRuntime, AlgoAMwsrUnderThreads) {
  ThreadRuntime rt;
  HistoryRecorder rec(4);
  auto sys = build_protocol("algo-a", rt, rec, Topology{4, 1, 3});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 150;
  spec.ops_per_writer = 40;
  spec.read_span = 2;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(ThreadRuntime, BlockingProtocolDrainsWithoutDeadlock) {
  ThreadRuntime rt;
  HistoryRecorder rec(2);
  auto sys = build_protocol("blocking-2pl", rt, rec, Topology{2, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 50;
  spec.ops_per_writer = 30;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  rt.stop();
  EXPECT_EQ(rec.snapshot().completed_reads(), 100u);
}

TEST(ThreadRuntime, StopIsIdempotentAndDrains) {
  ThreadRuntime rt;
  HistoryRecorder rec(2);
  auto sys = build_protocol("simple", rt, rec, Topology{2, 1, 1});
  rt.start();
  ClosedLoopDriver driver(rt, *sys, WorkloadSpec{.ops_per_reader = 5, .ops_per_writer = 5});
  driver.start();
  driver.wait();
  rt.stop();
  rt.stop();  // no-op
  SUCCEED();
}

}  // namespace
}  // namespace snowkit
