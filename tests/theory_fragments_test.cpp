// Fragment extraction and Lemma-2 commuting on real traces.
#include <gtest/gtest.h>

#include "proto/naive/naive.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"
#include "theory/commute.hpp"
#include "theory/fragments.hpp"

namespace snowkit::theory {
namespace {

/// A scripted naive-protocol read whose fragments are contiguous:
/// I ◦ Fx ◦ Fy ◦ E.
struct ScriptedRead {
  SimRuntime sim;
  HistoryRecorder rec{2};
  std::unique_ptr<ProtocolSystem> sys;
  TxnId txn{kInvalidTxn};

  ScriptedRead() {
    sys = build_naive(sim, rec, Topology{2, 1, 0});
    sim.start();
    sim.hold_matching(script::any_of(
        {script::payload_is("simple-read"), script::payload_is("simple-read-resp")}));
    invoke_read(sim, sys->reader(0), {0, 1}, [](const ReadResult&) {});
    sim.run_until_idle();
    const NodeId reader = sys->reader(0).node_id();
    script::release_one_and_drain(sim, script::to_node(0));       // Fx
    script::release_one_and_drain(sim, script::to_node(1));       // Fy
    script::release_one_and_drain(sim, script::between(0, reader));  // E begins
    script::release_one_and_drain(sim, script::between(1, reader));  // E completes
    txn = rec.snapshot().txns.at(0).id;
  }
};

TEST(Fragments, ExtractInvocation) {
  ScriptedRead s;
  const NodeId reader = s.sys->reader(0).node_id();
  auto i = extract_invocation_fragment(s.sim.trace(), s.txn, reader, "I");
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->node, reader);
  EXPECT_EQ(i->indices.size(), 3u);  // INV + 2 sends
  EXPECT_TRUE(i->has_input(s.sim.trace()));  // INV is an input
}

TEST(Fragments, ExtractServerFragments) {
  ScriptedRead s;
  auto fx = extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  auto fy = extract_server_fragment(s.sim.trace(), s.txn, 1, "Fy");
  ASSERT_TRUE(fx.has_value());
  ASSERT_TRUE(fy.has_value());
  EXPECT_EQ(fx->indices.size(), 2u);  // recv + send
  EXPECT_LT(fx->last(), fy->first());
}

TEST(Fragments, ExtractResponse) {
  ScriptedRead s;
  const NodeId reader = s.sys->reader(0).node_id();
  auto e = extract_response_fragment(s.sim.trace(), s.txn, reader, "E");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->indices.size(), 3u);  // recv, recv, RESP
  EXPECT_EQ(s.sim.trace()[e->last()].kind, ActionKind::Respond);
}

TEST(Fragments, OrderString) {
  ScriptedRead s;
  const NodeId reader = s.sys->reader(0).node_id();
  auto i = *extract_invocation_fragment(s.sim.trace(), s.txn, reader, "I");
  auto fx = *extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  auto fy = *extract_server_fragment(s.sim.trace(), s.txn, 1, "Fy");
  auto e = *extract_response_fragment(s.sim.trace(), s.txn, reader, "E");
  EXPECT_EQ(fragment_order_string({e, fx, i, fy}), "I ◦ Fx ◦ Fy ◦ E");
}

TEST(Commute, SwapsAdjacentIndependentFragments) {
  ScriptedRead s;
  auto fx = *extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  auto fy = *extract_server_fragment(s.sim.trace(), s.txn, 1, "Fy");
  ASSERT_TRUE(adjacent(fx, fy));
  auto result = commute(s.sim.trace(), fx, fy);
  ASSERT_TRUE(result.ok) << result.why;
  auto fy2 = *extract_server_fragment(result.trace, s.txn, 1, "Fy");
  auto fx2 = *extract_server_fragment(result.trace, s.txn, 0, "Fx");
  EXPECT_LT(fy2.last(), fx2.first());
  std::string why;
  EXPECT_TRUE(well_formed(result.trace, &why)) << why;
}

TEST(Commute, RefusesSameAutomaton) {
  ScriptedRead s;
  auto fx = *extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  auto result = commute(s.sim.trace(), fx, fx);
  EXPECT_FALSE(result.ok);
}

TEST(Commute, RefusesCausallyDependentSwap) {
  ScriptedRead s;
  const NodeId reader = s.sys->reader(0).node_id();
  // I sends the request that Fx receives: swapping I and Fx would put a
  // recv before its send.
  auto i = *extract_invocation_fragment(s.sim.trace(), s.txn, reader, "I");
  auto fx = *extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  ASSERT_TRUE(adjacent(i, fx));
  auto result = commute(s.sim.trace(), i, fx);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.why.find("depends"), std::string::npos);
}

TEST(Commute, RefusesNonAdjacentFragments) {
  ScriptedRead s;
  auto fx = *extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  const NodeId reader = s.sys->reader(0).node_id();
  auto e = *extract_response_fragment(s.sim.trace(), s.txn, reader, "E");
  auto result = commute(s.sim.trace(), fx, e);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.why.find("adjacent"), std::string::npos);
}

TEST(Commute, PreservesPerAutomatonProjections) {
  ScriptedRead s;
  auto fx = *extract_server_fragment(s.sim.trace(), s.txn, 0, "Fx");
  auto fy = *extract_server_fragment(s.sim.trace(), s.txn, 1, "Fy");
  auto result = commute(s.sim.trace(), fx, fy);
  ASSERT_TRUE(result.ok);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_TRUE(indistinguishable_at(s.sim.trace(), result.trace, n)) << "node " << n;
  }
}

TEST(Fragments, BlockedServerIsNotANonBlockingFragment) {
  // Build a trace where the server consumes another input between recv and
  // send: extraction must fail (it is not a non-blocking fragment).
  Trace t;
  t.append(Action{ActionKind::Recv, 0, /*node=*/0, /*peer=*/2, /*txn=*/1, "read-val", 1, 0});
  t.append(Action{ActionKind::Recv, 0, 0, 3, 9, "write-val", 2, 0});
  t.append(Action{ActionKind::Send, 0, 0, 2, 1, "read-val-resp", 3, 1});
  EXPECT_FALSE(extract_server_fragment(t, 1, 0, "F").has_value());
}

}  // namespace
}  // namespace snowkit::theory
