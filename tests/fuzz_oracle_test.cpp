// Oracle audits + the negative-oracle guard.
//
// The deliberately broken protocol (broken-stale, stale-read injection)
// must be convicted by the oracle within a handful of seeds — if it ever
// runs clean the fuzzer has gone vacuous.  Conversely the truthfully
// strict protocols must produce zero violations over the same sweep, and
// the differential oracle must attribute divergence to the broken protocol
// while the reference implementations pass the identical client program.
#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"

namespace snowkit::fuzz {
namespace {

constexpr std::uint64_t kGuardSeeds = 20;  // conviction budget for broken stubs

std::uint64_t first_violating_seed(const std::string& protocol, std::uint64_t max_seed,
                                   OracleReport* out = nullptr) {
  GenParams params;
  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    const FuzzCase c = generate_case(protocol, params, seed);
    const OracleReport report = check_run(protocol, run_case(c));
    if (report.violation) {
      if (out != nullptr) *out = report;
      return seed;
    }
  }
  return 0;
}

TEST(NegativeOracle, BrokenStaleIsConvictedWithinGuardSeeds) {
  OracleReport report;
  const std::uint64_t seed = first_violating_seed("broken-stale", kGuardSeeds, &report);
  ASSERT_NE(seed, 0u) << "stale-read injection survived " << kGuardSeeds
                      << " seeds: the fuzz oracle is vacuous";
  EXPECT_TRUE(report.expected) << "broken-stale does not truthfully claim S";
  EXPECT_FALSE(report.checker.empty());
  EXPECT_FALSE(report.explanation.empty());
}

TEST(NegativeOracle, EigerAndNaiveAreConvictedWithinGuardSeeds) {
  EXPECT_NE(first_violating_seed("eiger", kGuardSeeds), 0u)
      << "the paper's Fig. 5 class of executions went undetected";
  EXPECT_NE(first_violating_seed("naive", kGuardSeeds), 0u)
      << "the SNOW-impossible cell went undetected";
}

TEST(Oracle, StrictProtocolsRunCleanOverTheSameSweep) {
  for (const char* protocol : {"algo-a", "algo-b", "algo-c", "occ-reads"}) {
    OracleReport report;
    const std::uint64_t seed = first_violating_seed(protocol, kGuardSeeds, &report);
    EXPECT_EQ(seed, 0u) << protocol << " violated " << report.checker << " at seed " << seed
                        << ": " << report.explanation;
  }
}

TEST(Oracle, AuditedClassIsClaimersPlusAdvertisers) {
  EXPECT_TRUE(audits_strict_serializability("algo-b"));    // truthful claim
  EXPECT_TRUE(audits_strict_serializability("eiger"));     // advertised, refuted
  EXPECT_TRUE(audits_strict_serializability("broken-stale"));
  EXPECT_FALSE(audits_strict_serializability("simple"));   // claims nothing
  const auto cls = strict_serializable_class();
  EXPECT_TRUE(std::find(cls.begin(), cls.end(), "eiger") != cls.end());
  EXPECT_TRUE(std::find(cls.begin(), cls.end(), "simple") == cls.end());
  EXPECT_GE(cls.size(), 8u);  // 5 truthful + eiger + naive + broken-stale
}

TEST(DifferentialOracle, AttributesDivergenceToTheBrokenProtocol) {
  const std::vector<std::string> group{"algo-b", "blocking-2pl", "broken-stale"};
  GenParams params;
  params.single_reader = true;
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= kGuardSeeds && !diverged; ++seed) {
    const FuzzCase base = generate_case("algo-b", params, seed);
    const DifferentialReport diff = differential_check(base, group);
    ASSERT_EQ(diff.outcomes.size(), group.size());
    for (const DifferentialOutcome& out : diff.outcomes) {
      if (out.protocol != "broken-stale") {
        EXPECT_FALSE(out.report.violation)
            << out.protocol << " failed the shared program at seed " << seed << ": "
            << out.report.explanation;
      }
    }
    if (diff.divergence) {
      diverged = true;
      EXPECT_FALSE(diff.unexpected) << diff.details;
      const auto broken = std::find_if(
          diff.outcomes.begin(), diff.outcomes.end(),
          [](const DifferentialOutcome& out) { return out.report.violation; });
      ASSERT_NE(broken, diff.outcomes.end());
      EXPECT_EQ(broken->protocol, "broken-stale") << diff.details;
    }
  }
  EXPECT_TRUE(diverged) << "differential oracle never caught broken-stale in " << kGuardSeeds
                        << " seeds";
}

TEST(Oracle, LivenessViolationIsNeverExpected) {
  // A run whose client program did not complete must convict ANY protocol,
  // including ones with no S claim.  Forge one by truncating a real run.
  const FuzzCase c = generate_case("simple", GenParams{}, 1);
  CaseRun run = run_case(c);
  ASSERT_TRUE(run.completed);
  run.completed = false;
  const OracleReport report = check_run("simple", run);
  EXPECT_TRUE(report.violation);
  EXPECT_EQ(report.checker, "liveness");
  EXPECT_FALSE(report.expected);
}

}  // namespace
}  // namespace snowkit::fuzz
