// Optimistic one-version reads (the (inf,1) cell of Fig. 1(b)): strictly
// serializable, one version per response, one round when uncontended,
// unbounded rounds under adversarial write streams.
#include <gtest/gtest.h>

#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

TEST(OccReads, UncontendedReadTakesOneRound) {
  SimRuntime sim;
  HistoryRecorder rec(3);
  auto sys = build_protocol("occ-reads", sim, rec, Topology{3, 1, 1});
  invoke_write(sim, sys->writer(0), {{0, 5}, {2, 7}}, [](const WriteResult&) {});
  sim.run_until_idle();
  ReadResult result;
  invoke_read(sim, sys->reader(0), {0, 1, 2}, [&](const ReadResult& r) { result = r; });
  sim.run_until_idle();
  EXPECT_EQ(result.values[0].second, 5);
  EXPECT_EQ(result.values[1].second, kInitialValue);
  EXPECT_EQ(result.values[2].second, 7);
  const History h = rec.snapshot();
  // One optimistic round sufficed... except for the very first read after a
  // write: guesses start at kappa_0, so exactly one retry.  Re-read:
  ReadResult again;
  invoke_read(sim, sys->reader(0), {0, 2}, [&](const ReadResult& r) { again = r; });
  sim.run_until_idle();
  const History h2 = rec.snapshot();
  EXPECT_EQ(h2.txns.back().rounds, 2) << "first read re-validates once after the write";
  (void)h;
}

TEST(OccReads, StrictSerializabilityAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimRuntime sim(make_uniform_delay(10, 6000, seed));
    HistoryRecorder rec(3);
    auto sys = build_protocol("occ-reads", sim, rec, Topology{3, 2, 3});
    WorkloadSpec spec;
    spec.ops_per_reader = 40;
    spec.ops_per_writer = 25;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(sim, *sys, spec);
    driver.start();
    sim.run_until_idle();
    ASSERT_TRUE(driver.done());
    auto verdict = check_tag_order(rec.snapshot());
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(OccReads, OneVersionAndNonBlockingOnTrace) {
  SimRuntime sim(make_uniform_delay(10, 5000, 3));
  HistoryRecorder rec(3);
  auto sys = build_protocol("occ-reads", sim, rec, Topology{3, 2, 2});
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 15;
  spec.read_span = 2;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const History h = rec.snapshot();
  const auto report = analyze_snow_trace(sim.trace(), 3, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.max_versions_per_response, 1);  // always one version
}

TEST(OccReads, ContentionForcesRetries) {
  // An adversary commits one WRITE between every optimistic round of the
  // READ: each validation fails and the read keeps retrying — the concrete
  // face of the unbounded worst case that keeps (inf,1) an inf cell.
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("occ-reads", sim, rec, Topology{2, 1, 1});
  sim.start();
  sim.hold_matching(script::any_of(
      {script::payload_is("update-coor"), script::payload_is("get-tag-arr")}));

  // Chain 4 writes; each blocks at its held update-coor until released.
  int writes_done = 0;
  std::function<void()> next_write = [&] {
    invoke_write(sim, sys->writer(0), {{0, 10 + writes_done}, {1, 20 + writes_done}},
                 [&](const WriteResult&) {
                   ++writes_done;
                   if (writes_done < 4) next_write();
                 });
  };
  next_write();
  sim.run_until_idle();

  bool r_done = false;
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult&) { r_done = true; });
  sim.run_until_idle();  // round 1's get-tag-arr is held
  EXPECT_FALSE(r_done);

  // Interleave: commit a write, THEN let the pending validation through —
  // the tag array always names a key newer than the reader's guesses.
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(r_done);
    ASSERT_TRUE(script::release_one_and_drain(sim, script::payload_is("update-coor")));
    ASSERT_TRUE(script::release_one_and_drain(sim, script::payload_is("get-tag-arr")));
  }
  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  ASSERT_TRUE(r_done);
  EXPECT_EQ(writes_done, 4);

  const History h = rec.snapshot();
  EXPECT_GE(max_read_rounds(h), 4) << "each committed write must force a retry";
  auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(OccReads, BoundedFallbackCapsRounds) {
  SimRuntime sim(make_uniform_delay(10, 6000, 5));
  HistoryRecorder rec(2);
  BuildOptions opts;
  opts.set("max_optimistic_rounds", 2);
  auto sys = build_protocol("occ-reads", sim, rec, Topology{2, 2, 4}, opts);
  WorkloadSpec spec;
  spec.ops_per_reader = 60;
  spec.ops_per_writer = 60;  // heavy write contention
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 5;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  const History h = rec.snapshot();
  EXPECT_LE(max_read_rounds(h), 3);  // 2 optimistic + 1 pessimistic
  auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(OccReads, RoundsGrowUnderWriteContention) {
  // Statistical: with many writers, some reads need >1 round.
  SimRuntime sim(make_uniform_delay(10, 8000, 9));
  HistoryRecorder rec(2);
  auto sys = build_protocol("occ-reads", sim, rec, Topology{2, 2, 4});
  WorkloadSpec spec;
  spec.ops_per_reader = 80;
  spec.ops_per_writer = 80;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 9;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  EXPECT_GT(max_read_rounds(rec.snapshot()), 1);
  auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace snowkit
