// snowkit_server SIGTERM contract: a terminated daemon takes the same clean
// path as a SHUTDOWN frame — exit 0 and every audit chunk sealed.  The
// loader rejects torn chunks, so "all chunks load" IS the no-torn-final-
// chunk regression check.
#include <gtest/gtest.h>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "audit/merge.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace snowkit {
namespace {

#ifndef __linux__

TEST(AuditServerSigterm, RequiresLinux) { GTEST_SKIP() << "TCP transport requires Linux"; }

#else

std::string server_binary() {
  if (const char* env = std::getenv("SNOWKIT_SERVER_BIN")) return env;
  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path() / "snowkit_server").string();
}

FleetConfig make_fleet(const std::string& protocol) {
  FleetConfig fleet;
  fleet.protocol = protocol;
  fleet.system.num_objects = 2;
  fleet.system.num_readers = 1;
  fleet.system.num_writers = 1;
  fleet.system.num_servers = 2;
  for (const std::uint16_t port : net::pick_free_ports(2)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }
  return fleet;
}

bool wait_listening(std::uint16_t port, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
    if (rc == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct Daemon {
  pid_t pid{-1};
  std::string config_path;
  std::string audit_dir;

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    std::error_code ec;
    std::filesystem::remove(config_path, ec);
    std::filesystem::remove_all(audit_dir, ec);
  }
};

/// Forks snowkit_server --index 0 with audit capture on; returns once its
/// listen port accepts (daemon up) or fails the test.
void spawn_daemon(const FleetConfig& fleet, Daemon& d, const std::string& tag) {
  const auto tmp = std::filesystem::temp_directory_path();
  const auto uniq = tag + "_" + std::to_string(static_cast<unsigned>(::getpid()));
  d.config_path = (tmp / ("snowkit_sigterm_" + uniq + ".cfg")).string();
  d.audit_dir = (tmp / ("snowkit_sigterm_audit_" + uniq)).string();
  std::filesystem::remove_all(d.audit_dir);
  {
    std::ofstream f(d.config_path, std::ios::trunc);
    ASSERT_TRUE(f) << d.config_path;
    f << fleet_text(fleet);
  }
  const std::string bin = server_binary();
  d.pid = ::fork();
  ASSERT_GE(d.pid, 0);
  if (d.pid == 0) {
    ::execl(bin.c_str(), bin.c_str(), "--config", d.config_path.c_str(), "--index", "0",
            "--audit-dir", d.audit_dir.c_str(), "--quiet", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ASSERT_TRUE(wait_listening(fleet.processes[0].port, 15'000)) << "daemon never listened";
}

/// SIGTERM + reap; asserts exit 0 and that every chunk in the audit dir
/// loads (i.e. is sealed — load_chunk throws on a torn file).
std::vector<audit::ChunkFile> terminate_and_verify(Daemon& d) {
  EXPECT_EQ(::kill(d.pid, SIGTERM), 0);
  int status = 0;
  EXPECT_EQ(::waitpid(d.pid, &status, 0), d.pid);
  d.pid = -1;
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly on SIGTERM";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::vector<audit::ChunkFile> chunks;
  for (const auto& entry : std::filesystem::directory_iterator(d.audit_dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << "unrenamed partial chunk left behind";
    if (entry.path().extension() == ".auditchunk") {
      chunks.push_back(audit::load_chunk(entry.path().string()));
    }
  }
  return chunks;
}

TEST(AuditServerSigterm, IdleDaemonSealsFinalChunkOnSigterm) {
  if (!net::transport_supported()) GTEST_SKIP() << "TCP transport requires Linux";
  const FleetConfig fleet = make_fleet("simple");
  Daemon d;
  spawn_daemon(fleet, d, "idle");
  const auto chunks = terminate_and_verify(d);
  // Even with zero traffic the close path seals a final (empty) chunk — the
  // clean-shutdown marker.
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].events.size(), 0u);
  EXPECT_EQ(chunks[0].meta.protocol, "simple");
}

TEST(AuditServerSigterm, SigtermAfterTrafficLeavesOnlySealedChunks) {
  if (!net::transport_supported()) GTEST_SKIP() << "TCP transport requires Linux";
  const FleetConfig fleet = make_fleet("algo-b");
  Daemon d;
  spawn_daemon(fleet, d, "traffic");

  // Drive a real workload from an in-test client process, then walk away
  // WITHOUT broadcasting SHUTDOWN — SIGTERM is the only stop signal the
  // daemon gets.
  {
    NetRuntime rt(fleet.net_options(fleet.client_index()));
    HistoryRecorder rec(fleet.system.num_objects);
    auto sys = build_protocol(fleet.protocol, rt, rec, fleet.system, fleet.options);
    rt.start();
    ASSERT_TRUE(rt.wait_connected_for(15'000'000'000ull));
    WorkloadSpec spec;
    spec.ops_per_reader = 20;
    spec.ops_per_writer = 10;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = 13;
    WorkloadDriver driver(rt, *sys, spec);
    driver.start();
    driver.wait();
    rt.stop();
  }

  const auto chunks = terminate_and_verify(d);
  ASSERT_FALSE(chunks.empty());
  std::uint64_t events = 0;
  for (const auto& c : chunks) events += c.events.size();
  EXPECT_GT(events, 0u) << "daemon captured no traffic";
  // The daemon's chunks alone merge into a coherent (history-less) run.
  const auto merged = audit::merge_chunks(chunks);
  EXPECT_EQ(merged.processes, 1u);
  EXPECT_GT(merged.total_events, 0u);
}

#endif  // __linux__

}  // namespace
}  // namespace snowkit
