// AuditCapture: the runtime half of the flight recorder.  The
// ProducersRaceFlushRotateAndClose case is the suite's TSan target —
// recording threads race the flusher's drain/rotate and a concurrent
// close() — and the accounting identity (ring events == chunk events +
// drops) proves no event is lost or double-counted across the races.
#include "audit/capture.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "audit/chunk.hpp"
#include "msg/message.hpp"

namespace snowkit::audit {
namespace {

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("snowkit_capture_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<ChunkFile> load_all(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".auditchunk") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ChunkFile> chunks;
  for (const auto& p : paths) chunks.push_back(load_chunk(p));
  return chunks;
}

CaptureOptions small_opts(const std::string& dir) {
  CaptureOptions opts;
  opts.dir = dir;
  opts.protocol = "algo-b";
  opts.num_servers = 2;
  return opts;
}

TEST(AuditCapture, ProducersRaceFlushRotateAndClose) {
  const std::string dir = fresh_dir("race");
  CaptureOptions opts = small_opts(dir);
  opts.ring_capacity = 256;          // small enough that drops actually happen
  opts.rotate_bytes = 1 << 12;       // force rotation mid-run
  opts.flush_interval_ns = 500'000;  // flusher spins hard against producers
  AuditCapture cap(opts);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20'000;
  const Message msg{1, SimpleWriteReq{0, 1}};
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&cap, &msg, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if (i % 2 == 0) {
          cap.on_send(static_cast<NodeId>(t), 0, msg, 24);
        } else {
          cap.on_deliver(0, static_cast<NodeId>(t), msg);
        }
      }
    });
  }
  // Manual flushes from a fifth thread race the background flusher.
  std::thread manual([&cap] {
    for (int i = 0; i < 50; ++i) cap.flush();
  });
  for (auto& p : producers) p.join();
  manual.join();
  cap.close();
  cap.close();  // idempotent

  const auto stats = cap.stats();
  EXPECT_EQ(stats.events, kThreads * kPerThread);

  const auto chunks = load_all(dir);
  ASSERT_FALSE(chunks.empty());
  std::uint64_t chunk_events = 0, chunk_drops = 0;
  for (const auto& c : chunks) {
    chunk_events += c.events.size();
    chunk_drops += c.drops;
    EXPECT_EQ(c.meta.protocol, "algo-b");
  }
  // Conservation: everything recorded either reached a chunk or was counted
  // as an overwrite — no silent loss, no double count.
  EXPECT_EQ(chunk_events + chunk_drops, stats.events);
  EXPECT_EQ(chunk_drops, stats.drops);
  EXPECT_EQ(stats.chunks, chunks.size());
  EXPECT_GT(stats.chunks, 1u) << "rotate_bytes never triggered a rotation";

  std::filesystem::remove_all(dir);
}

TEST(AuditCapture, DropOldestKeepsTheNewestWindow) {
  const std::string dir = fresh_dir("drops");
  CaptureOptions opts = small_opts(dir);
  opts.ring_capacity = 8;
  opts.flush_interval_ns = 0;  // manual flush only: all 100 pushes hit one ring
  AuditCapture cap(opts);

  for (std::uint64_t i = 0; i < 100; ++i) {
    cap.on_send(1, 0, Message{static_cast<TxnId>(i), SimpleReadReq{0}}, 16);
  }
  cap.close();

  const auto chunks = load_all(dir);
  std::vector<AuditEvent> events;
  std::uint64_t drops = 0;
  for (const auto& c : chunks) {
    events.insert(events.end(), c.events.begin(), c.events.end());
    drops += c.drops;
  }
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(drops, 92u);
  // A flight recorder keeps the most recent window: txns 92..99, with seq
  // numbers still reflecting the true push index.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].txn, 92u + i);
    EXPECT_EQ(events[i].seq, 92u + i);
  }
  std::filesystem::remove_all(dir);
}

TEST(AuditCapture, SamplingCountsWhatItSkips) {
  const std::string dir = fresh_dir("sample");
  CaptureOptions opts = small_opts(dir);
  opts.sample_every = 4;
  opts.flush_interval_ns = 0;
  AuditCapture cap(opts);

  const Message msg{1, SimpleWriteReq{0, 1}};
  for (int i = 0; i < 100; ++i) cap.on_send(1, 0, msg, 24);
  cap.close();

  const auto stats = cap.stats();
  EXPECT_EQ(stats.events, 25u);
  EXPECT_EQ(stats.sampled_out, 75u);
  EXPECT_EQ(stats.drops, 0u);
  std::filesystem::remove_all(dir);
}

TEST(AuditCapture, FinalChunkCarriesHistoryAndCloseGatesRecording) {
  const std::string dir = fresh_dir("final");
  AuditCapture cap(small_opts(dir));

  History h;
  h.num_objects = 2;
  h.txns.push_back(TxnRecord{.id = 9, .client = 1, .is_read = true, .complete = true});
  cap.set_history(h);
  cap.close();

  // Recording after close() is a silent no-op.
  cap.on_send(1, 0, Message{1, SimpleWriteReq{0, 1}}, 24);
  EXPECT_EQ(cap.stats().events, 0u);

  // Even an event-free capture seals one final chunk: it is the clean-
  // shutdown marker and the history carrier.
  const auto chunks = load_all(dir);
  ASSERT_EQ(chunks.size(), 1u);
  ASSERT_TRUE(chunks[0].history.has_value());
  EXPECT_EQ(chunks[0].history->txns.size(), 1u);
  EXPECT_EQ(chunks[0].history->txns[0].id, 9u);
  std::filesystem::remove_all(dir);
}

/// Chained observer: sampling must not starve downstream observers.
class CountingObserver final : public MessageObserver {
 public:
  void on_send(NodeId, NodeId, const Message&, std::size_t) override { ++sends_; }
  void on_deliver(NodeId, NodeId, const Message&) override { ++delivers_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t delivers() const { return delivers_; }

 private:
  std::atomic<std::uint64_t> sends_{0};
  std::atomic<std::uint64_t> delivers_{0};
};

TEST(AuditCapture, ChainedObserverSeesEveryMessage) {
  const std::string dir = fresh_dir("chain");
  CaptureOptions opts = small_opts(dir);
  opts.sample_every = 10;  // recorder skips 90%...
  opts.flush_interval_ns = 0;
  CountingObserver counter;
  AuditCapture cap(opts, &counter);

  const Message msg{1, SimpleWriteReq{0, 1}};
  for (int i = 0; i < 50; ++i) cap.on_send(1, 0, msg, 24);
  for (int i = 0; i < 30; ++i) cap.on_deliver(1, 0, msg);
  cap.close();

  EXPECT_EQ(counter.sends(), 50u);  // ...but the chained observer sees all
  EXPECT_EQ(counter.delivers(), 30u);
  EXPECT_EQ(cap.stats().events + cap.stats().sampled_out, 80u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace snowkit::audit
