// WireStats observer + ClosedLoopDriver + latency summarization.
#include <gtest/gtest.h>

#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "metrics/wire_stats.hpp"
#include "msg/codec.hpp"
#include "runtime/thread_runtime.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

TEST(WireStats, CountsMessagesAndBytesOnSim) {
  SimRuntime sim;
  WireStats wire;
  sim.set_observer(&wire);
  HistoryRecorder rec(2);
  auto sys = build_protocol("simple", sim, rec, Topology{2, 1, 1});
  invoke_write(sim, sys->writer(0), {{0, 1}, {1, 2}}, [](const WriteResult&) {});
  sim.run_until_idle();
  EXPECT_EQ(wire.messages(), 4u);  // 2 writes + 2 acks
  EXPECT_GT(wire.bytes(), 0u);
  const auto per_type = wire.per_type();
  EXPECT_EQ(per_type.at("simple-write"), 2u);
  EXPECT_EQ(per_type.at("simple-write-ack"), 2u);
}

TEST(WireStats, BytesMatchCodecSizes) {
  const Message m{1, SimpleWriteReq{0, 5}};
  WireStats wire;
  wire.on_send(0, 1, m, encoded_size(m));
  EXPECT_EQ(wire.bytes(), encode_message(m).size());
}

TEST(WireStats, ResetClears) {
  WireStats wire;
  wire.on_send(0, 1, Message{1, SimpleReadReq{0}}, 10);
  wire.reset();
  EXPECT_EQ(wire.messages(), 0u);
  EXPECT_EQ(wire.bytes(), 0u);
}

TEST(Driver, CompletesExactOpCounts) {
  SimRuntime sim;
  HistoryRecorder rec(3);
  auto sys = build_protocol("algo-b", sim, rec, Topology{3, 2, 2});
  WorkloadSpec spec;
  spec.ops_per_reader = 7;
  spec.ops_per_writer = 5;
  ClosedLoopDriver driver(sim, *sys, spec);
  EXPECT_EQ(driver.total_ops(), 2u * 7 + 2u * 5);
  driver.start();
  sim.run_until_idle();
  EXPECT_TRUE(driver.done());
  const History h = rec.snapshot();
  EXPECT_EQ(h.completed_reads(), 14u);
  EXPECT_EQ(h.completed_writes(), 10u);
}

TEST(Driver, UniqueWriteValuesAcrossWriters) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("algo-b", sim, rec, Topology{2, 1, 3});
  WorkloadSpec spec;
  spec.ops_per_reader = 1;
  spec.ops_per_writer = 20;
  spec.write_span = 2;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  std::set<Value> values;
  std::size_t total = 0;
  for (const auto& t : rec.snapshot().txns) {
    for (const auto& [obj, v] : t.writes) {
      (void)obj;
      values.insert(v);
      ++total;
    }
  }
  EXPECT_EQ(values.size(), total) << "write values must be globally unique for the checkers";
}

TEST(Driver, ZeroOpsIsANoop) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("simple", sim, rec, Topology{2, 1, 1});
  WorkloadSpec spec;
  spec.ops_per_reader = 0;
  spec.ops_per_writer = 0;
  ClosedLoopDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(rec.snapshot().txns.size(), 0u);
}

TEST(Driver, WaitBlocksUntilDoneOnThreads) {
  ThreadRuntime rt;
  HistoryRecorder rec(2);
  auto sys = build_protocol("simple", rt, rec, Topology{2, 2, 1});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = 50;
  spec.ops_per_writer = 20;
  ClosedLoopDriver driver(rt, *sys, spec);
  driver.start();
  driver.wait();
  EXPECT_TRUE(driver.done());
  rt.stop();
  EXPECT_EQ(rec.snapshot().completed_reads(), 100u);
}

TEST(LatencySummary, ComputedFromHistory) {
  HistoryRecorder rec(1);
  SimRuntime sim;
  rec.attach_runtime(&sim);
  // Two reads with known (virtual) durations of zero — just check counting.
  const TxnId a = rec.begin_read(1, {0});
  rec.finish_read(a, {{0, 0}}, kInvalidTag, 1, 1);
  const TxnId b = rec.begin_write(2, {{0, 1}});
  rec.finish_write(b, kInvalidTag, 1);
  const auto reads = summarize_latency(rec.snapshot(), true);
  const auto writes = summarize_latency(rec.snapshot(), false);
  EXPECT_EQ(reads.count, 1u);
  EXPECT_EQ(writes.count, 1u);
}

}  // namespace
}  // namespace snowkit
