// The Fig. 4 construction (Theorem 2) must reproduce end to end.
#include <gtest/gtest.h>

#include "theory/two_client_chain.hpp"

namespace snowkit::theory {
namespace {

TEST(TwoClientChain, AllStepsVerify) {
  TwoClientChainResult result = run_two_client_chain();
  ASSERT_GE(result.steps.size(), 7u);  // alpha, beta, gamma/eta, delta(0..4)
  for (const auto& step : result.steps) {
    EXPECT_TRUE(step.verified) << step.name << ": " << step.note;
  }
}

TEST(TwoClientChain, BetaReturnsNewValues) {
  TwoClientChainResult result = run_two_client_chain();
  EXPECT_EQ(result.steps[1].name, "beta");
  EXPECT_EQ(result.steps[1].read_values, "(x1,y1)");
}

TEST(TwoClientChain, GammaMovesSendsBeforeInvW) {
  TwoClientChainResult result = run_two_client_chain();
  EXPECT_EQ(result.steps[2].name, "gamma/eta");
  EXPECT_EQ(result.steps[2].read_values, "(x1,y1)");
}

TEST(TwoClientChain, DescentFlipsAtAServer) {
  TwoClientChainResult result = run_two_client_chain();
  EXPECT_GE(result.flip_k, 1) << "the flip cannot happen with zero W events delivered";
  EXPECT_NE(result.flip_location.find("server"), std::string::npos)
      << "a_{k*+1} occurs at a server — the case Lemma 5 / Theorem 2 contradict";
}

TEST(TwoClientChain, IntermediateScheduleFractures) {
  TwoClientChainResult result = run_two_client_chain();
  EXPECT_TRUE(result.fracture_found);
  EXPECT_FALSE(result.fracture.empty());
}

}  // namespace
}  // namespace snowkit::theory
