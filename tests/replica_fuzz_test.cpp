// Crash-schedule fuzzing of the replicated protocols (ISSUE 8 acceptance).
//
// The battery injects a primary crash mid-workload into randomized schedules
// and feeds the run to the oracle.  It must CONVICT broken-lostack — the stub
// that acks writes before replication — within a bounded seed budget, while
// the real replicated algo-b / algo-c survive the identical (seed, crash_at)
// battery checker-green.  If broken-lostack ever runs clean the failover
// fuzzing has gone vacuous and this test fails CI.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/trace_io.hpp"
#include "sim/trace.hpp"

namespace snowkit::fuzz {
namespace {

constexpr std::uint64_t kConvictionSeeds = 20;  // budget to catch broken-lostack
constexpr std::uint64_t kSurvivalSeeds = 8;     // per real protocol
// Early / mid / late relative to typical run lengths (a few hundred
// decisions): covers crash-before-sync, crash-mid-commit and crash-after-
// steady-state without a per-seed search.
constexpr std::size_t kCrashPoints[] = {15, 40, 90};

FuzzCase replicated_case(const std::string& protocol, std::uint64_t seed) {
  FuzzCase c = generate_case(protocol, GenParams{}, seed);
  c.replicas = 2;
  return c;
}

/// First (seed, crash_at) that convicts `protocol`, or 0 if the whole budget
/// runs clean.  The victim is node 0: always a server, and under the default
/// coordinator choice the shard whose loss is most disruptive.
std::uint64_t first_crash_conviction(const std::string& protocol, std::uint64_t max_seed,
                                     OracleReport* out = nullptr) {
  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    const FuzzCase c = replicated_case(protocol, seed);
    for (const std::size_t crash_at : kCrashPoints) {
      const CaseRun run = run_case_with_crash(c, /*victim=*/0, crash_at);
      const OracleReport report = check_run(protocol, run);
      if (report.violation) {
        if (out != nullptr) *out = report;
        return seed;
      }
    }
  }
  return 0;
}

TEST(ReplicaFuzz, CrashScheduleConvictsBrokenLostack) {
  OracleReport report;
  const std::uint64_t seed = first_crash_conviction("broken-lostack", kConvictionSeeds, &report);
  ASSERT_NE(seed, 0u) << "lost-acknowledged-write injection survived " << kConvictionSeeds
                      << " crash-schedule seeds: the failover battery is vacuous";
  EXPECT_FALSE(report.checker.empty());
}

TEST(ReplicaFuzz, RealProtocolsSurviveTheCrashBattery) {
  for (const std::string protocol : {"algo-b", "algo-c"}) {
    for (std::uint64_t seed = 1; seed <= kSurvivalSeeds; ++seed) {
      const FuzzCase c = replicated_case(protocol, seed);
      for (const std::size_t crash_at : kCrashPoints) {
        // Half the runs also restart the victim later, exercising the WAL
        // rejoin path under the same schedule chaos.
        const std::size_t restart_at = seed % 2 == 0 ? crash_at + 40 : 0;
        const CaseRun run = run_case_with_crash(c, /*victim=*/0, crash_at, restart_at);
        const OracleReport report = check_run(protocol, run);
        EXPECT_FALSE(report.violation)
            << protocol << " seed " << seed << " crash_at " << crash_at << " restart_at "
            << restart_at << ": " << report.checker << ": " << report.explanation;
        EXPECT_TRUE(run.completed)
            << protocol << " seed " << seed << " crash_at " << crash_at
            << ": workload wedged across failover";
      }
    }
  }
}

TEST(ReplicaFuzz, CrashScheduleReplaysByteIdentically) {
  // The crash/restart decisions live in the recorded ScheduleLog, so a plain
  // replay_case — no CrashRestartPolicy wrapper — must reproduce the run
  // bit-for-bit.  This is what makes crash repros shippable as trace files.
  const FuzzCase c = replicated_case("algo-b", 7);
  const CaseRun first = run_case_with_crash(c, /*victim=*/0, 25, /*restart_at=*/80);
  ASSERT_TRUE(first.completed);
  const CaseRun again = replay_case(c, first.log);
  EXPECT_EQ(trace_fingerprint(first.trace), trace_fingerprint(again.trace));
  EXPECT_TRUE(again.log == first.log);
  EXPECT_FALSE(again.stats.guard_tripped);
}

TEST(ReplicaFuzz, CrashRunsRequireReplicatedCases) {
  FuzzCase c = generate_case("algo-b", GenParams{}, 1);  // replicas=1
  EXPECT_THROW(run_case_with_crash(c, 0, 10), std::invalid_argument);
}

TEST(ReplicaFuzz, ReplicationIsRejectedForProtocolsWithoutIt) {
  FuzzCase c = generate_case("simple", GenParams{}, 1);
  c.replicas = 2;
  EXPECT_THROW(run_case(c), std::invalid_argument);
  c.replicas = 3;
  EXPECT_THROW(run_case(c), std::invalid_argument);
}

TEST(ReplicaFuzz, TraceFileRoundTripsReplicas) {
  FuzzTraceFile f;
  f.c = replicated_case("algo-b", 3);
  f.log.holds = {1, 0, 0, 1};
  f.log.decisions.push_back({ScheduleDecisionKind::kCrash, 0});
  f.log.decisions.push_back({ScheduleDecisionKind::kStep, 0});
  f.checker = "tag-order";
  f.explanation = "example";
  f.trace_hash = 7;
  const FuzzTraceFile back = decode_trace_file(encode_trace_file(f));
  EXPECT_TRUE(back == f);
  EXPECT_EQ(back.c.replicas, 2u);
}

TEST(ReplicaFuzz, V1TraceFilesStillDecodeWithReplicasOne) {
  // Hand-encode the v1 layout (no replicas field) and check the reader
  // implies replicas=1 — repro files written before replication stay valid.
  FuzzTraceFile f;
  f.c = generate_case("algo-b", GenParams{}, 4);
  f.log.holds = {0, 1};
  f.log.decisions.push_back({ScheduleDecisionKind::kStep, 0});
  f.checker = "liveness";
  f.explanation = "wedged";
  f.trace_hash = 11;

  BufWriter w;
  w.str(kFuzzTraceSchemaV1);
  w.str(f.c.protocol);
  w.u32(f.c.num_objects);
  w.u32(f.c.num_readers);
  w.u32(f.c.num_writers);
  w.u32(f.c.num_servers);
  // v1: no replicas field here.
  w.u8(static_cast<std::uint8_t>(f.c.placement));
  w.u64(f.c.schedule_seed);
  w.u64(std::bit_cast<std::uint64_t>(f.c.hold_probability));
  w.u64(std::bit_cast<std::uint64_t>(f.c.release_probability));
  w.vec(f.c.ops, [](BufWriter& w2, const FuzzOp& op) {
    w2.u32(op.client);
    w2.u8(op.is_read ? 1 : 0);
    w2.vec(op.objects, [](BufWriter& w3, ObjectId obj) { w3.u32(obj); });
    w2.vec(op.values, [](BufWriter& w3, Value v) { w3.i64(v); });
  });
  encode_schedule_log(f.log, w);
  w.str(f.checker);
  w.str(f.explanation);
  w.u64(f.trace_hash);

  const FuzzTraceFile back = decode_trace_file(w.take());
  EXPECT_EQ(back.c.replicas, 1u);
  EXPECT_TRUE(back == f);  // f.c.replicas defaulted to 1, so full equality holds
}

}  // namespace
}  // namespace snowkit::fuzz
