// VersionStore: the per-server Vals set of the paper's pseudocode.
#include <gtest/gtest.h>

#include "proto/version_store.hpp"

namespace snowkit {
namespace {

TEST(VersionStore, InitialVersionPresent) {
  VersionStore s;
  EXPECT_TRUE(s.has(kInitialKey));
  EXPECT_EQ(s.get(kInitialKey), kInitialValue);
  EXPECT_EQ(s.size(), 1u);
}

TEST(VersionStore, CustomInitialValue) {
  VersionStore s(42);
  EXPECT_EQ(s.get(kInitialKey), 42);
}

TEST(VersionStore, InsertAndGet) {
  VersionStore s;
  const WriteKey k{1, 7};
  s.insert(k, 99);
  EXPECT_TRUE(s.has(k));
  EXPECT_EQ(s.get(k), 99);
  EXPECT_EQ(s.size(), 2u);
}

TEST(VersionStore, InsertOverwritesSameKey) {
  VersionStore s;
  const WriteKey k{1, 7};
  s.insert(k, 1);
  s.insert(k, 2);
  EXPECT_EQ(s.get(k), 2);
  EXPECT_EQ(s.size(), 2u);
}

TEST(VersionStore, TryGetMissing) {
  VersionStore s;
  EXPECT_FALSE(s.try_get(WriteKey{9, 9}).has_value());
  EXPECT_TRUE(s.try_get(kInitialKey).has_value());
}

TEST(VersionStore, AllReturnsEveryVersion) {
  VersionStore s;
  s.insert(WriteKey{1, 0}, 10);
  s.insert(WriteKey{1, 1}, 11);
  auto all = s.all();
  EXPECT_EQ(all.size(), 3u);
  // Keys are distinct.
  EXPECT_NE(all[0].key, all[1].key);
  EXPECT_NE(all[1].key, all[2].key);
}

TEST(VersionStore, EraseRemoves) {
  VersionStore s;
  const WriteKey k{3, 3};
  s.insert(k, 5);
  EXPECT_TRUE(s.erase(k));
  EXPECT_FALSE(s.has(k));
  EXPECT_FALSE(s.erase(k));
}

TEST(VersionStore, GetMissingAborts) {
  VersionStore s;
  EXPECT_DEATH(s.get(WriteKey{5, 5}), "not in Vals");
}

TEST(VersionStore, KeysFromDifferentWritersDistinct) {
  VersionStore s;
  s.insert(WriteKey{1, 0}, 10);
  s.insert(WriteKey{1, 1}, 20);  // same seq, different writer
  EXPECT_EQ(s.get(WriteKey{1, 0}), 10);
  EXPECT_EQ(s.get(WriteKey{1, 1}), 20);
}

TEST(WriteKeyTest, OrderingAndHash) {
  EXPECT_LT((WriteKey{1, 0}), (WriteKey{2, 0}));
  EXPECT_LT((WriteKey{1, 0}), (WriteKey{1, 1}));
  std::hash<WriteKey> h;
  EXPECT_NE(h(WriteKey{1, 0}), h(WriteKey{1, 1}));
  EXPECT_EQ(to_string(kInitialKey), "k0");
  EXPECT_EQ(to_string(WriteKey{2, 3}), "(2,w3)");
}

}  // namespace
}  // namespace snowkit
