// NetRuntime end-to-end: protocols running unmodified across runtime
// instances connected by real loopback TCP.  Each "process" of the fleet is
// a NetRuntime in this test binary (identical node numbering, disjoint
// ownership) — the same topology `snowkit_server` + `bench_harness
// --scenario net_loopback` deploys as actual OS processes.
#include "runtime/net_runtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace snowkit {
namespace {

#define SKIP_WITHOUT_TRANSPORT()                                      \
  do {                                                                \
    if (!net::transport_supported())                                  \
      GTEST_SKIP() << "TCP transport requires Linux";                 \
  } while (0)

/// An in-test fleet "process": one NetRuntime + the protocol built on it.
struct FleetProc {
  std::unique_ptr<NetRuntime> rt;
  std::unique_ptr<HistoryRecorder> rec;
  std::unique_ptr<ProtocolSystem> sys;

  void build(const FleetConfig& fleet, std::size_t index) {
    rt = std::make_unique<NetRuntime>(fleet.net_options(index));
    rec = std::make_unique<HistoryRecorder>(fleet.system.num_objects);
    sys = build_protocol(fleet.protocol, *rt, *rec, fleet.system, fleet.options);
  }
};

FleetConfig make_fleet(const std::string& protocol, std::size_t objects, std::size_t readers,
                       std::size_t writers, std::size_t shards, std::size_t server_procs) {
  FleetConfig fleet;
  fleet.protocol = protocol;
  fleet.system.num_objects = objects;
  fleet.system.num_readers = readers;
  fleet.system.num_writers = writers;
  fleet.system.num_servers = shards;
  for (const std::uint16_t port : net::pick_free_ports(server_procs + 1)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }
  return fleet;
}

/// Runs a split closed loop from the client process and returns its history.
History run_fleet_once(const FleetConfig& fleet, std::size_t ops_per_reader,
                       std::size_t ops_per_writer) {
  std::vector<FleetProc> procs(fleet.processes.size());
  for (std::size_t i = 0; i < procs.size(); ++i) procs[i].build(fleet, i);
  // Server processes first, client last — though start order must not matter
  // (reconnect-with-backoff covers the races; a dedicated test flips it).
  for (std::size_t i = 0; i < procs.size(); ++i) procs[i].rt->start();
  FleetProc& client = procs.back();
  client.rt->wait_connected();

  WorkloadSpec spec;
  spec.ops_per_reader = ops_per_reader;
  spec.ops_per_writer = ops_per_writer;
  spec.read_span = std::min<std::size_t>(2, fleet.system.num_objects);
  spec.write_span = std::min<std::size_t>(2, fleet.system.num_objects);
  spec.seed = 11;
  WorkloadDriver driver(*client.rt, *client.sys, spec);
  driver.start();
  driver.wait();

  client.rt->broadcast_shutdown();
  client.rt->stop();  // drains the SHUTDOWN frames before the sockets close
  for (std::size_t i = 0; i + 1 < procs.size(); ++i) procs[i].rt->stop();
  return client.rec->snapshot();
}

/// run_fleet_once with one retry on fresh ports: another process (parallel
/// ctest) can grab a probed port between pick_free_ports and listen.
History run_fleet_workload(FleetConfig fleet, std::size_t ops_per_reader,
                           std::size_t ops_per_writer) {
  try {
    return run_fleet_once(fleet, ops_per_reader, ops_per_writer);
  } catch (const std::runtime_error&) {
    const auto ports = net::pick_free_ports(fleet.processes.size());
    if (ports.size() != fleet.processes.size()) throw;  // probing itself failed
    for (std::size_t i = 0; i < fleet.processes.size(); ++i) fleet.processes[i].port = ports[i];
    return run_fleet_once(fleet, ops_per_reader, ops_per_writer);
  }
}

TEST(NetRuntime, AlgoBAcrossTwoProcesses) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("algo-b", 2, 2, 2, 2, 1);
  const History h = run_fleet_workload(fleet, 20, 10);
  EXPECT_EQ(h.completed_reads(), 2u * 20u);
  EXPECT_EQ(h.completed_writes(), 2u * 10u);
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(NetRuntime, AlgoCAcrossThreeServerProcesses) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("algo-c", 4, 2, 2, 3, 3);
  const History h = run_fleet_workload(fleet, 15, 8);
  EXPECT_EQ(h.completed_reads(), 2u * 15u);
  EXPECT_EQ(h.completed_writes(), 2u * 8u);
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(NetRuntime, EveryProtocolRunsUnmodifiedOverTcp) {
  SKIP_WITHOUT_TRANSPORT();
  // The registry's whole deployable surface: one quick fleet each.  (The
  // broken-stale fault stub is included on purpose — faulty protocols must
  // transport as faithfully as correct ones.)
  for (const std::string& name : registered_protocols()) {
    const std::size_t readers = name == "algo-a" ? 1 : 2;  // Algorithm A is MWSR
    const FleetConfig fleet = make_fleet(name, 2, readers, 2, 2, 2);
    const History h = run_fleet_workload(fleet, 6, 4);
    EXPECT_EQ(h.completed_reads(), readers * 6u) << name;
    EXPECT_EQ(h.completed_writes(), 2u * 4u) << name;
  }
}

TEST(NetRuntime, ClientBeforeServersReconnectsWithBackoff) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("algo-b", 2, 1, 1, 2, 1);
  FleetProc client;
  client.build(fleet, fleet.client_index());
  client.rt->start();  // server is NOT up: connects fail, backoff kicks in
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(client.rt->net_stats().frames_received, 0u);

  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();
  client.rt->wait_connected();  // resolves only via a successful retry

  WorkloadSpec spec;
  spec.ops_per_reader = 5;
  spec.ops_per_writer = 5;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*client.rt, *client.sys, spec);
  driver.start();
  driver.wait();
  EXPECT_EQ(client.rec->snapshot().completed_reads(), 5u);

  client.rt->broadcast_shutdown();
  server.rt->run_until_shutdown();  // the broadcast must reach the daemon path
  EXPECT_TRUE(server.rt->shutdown_requested());
  client.rt->stop();
  server.rt->stop();
}

TEST(NetRuntime, PostAfterPacesOpenLoopOverTcp) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  std::vector<FleetProc> procs(2);
  procs[0].build(fleet, 0);
  procs[1].build(fleet, 1);
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();

  WorkloadSpec spec;
  spec.read_span = 1;
  spec.write_span = 1;
  DriverOptions dopts;
  dopts.mode = ArrivalMode::kOpenLoop;
  dopts.total_ops = 40;
  dopts.arrival_interval_ns = 500'000;  // 0.5ms timerfd ticks
  dopts.read_fraction = 0.5;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec, dopts);
  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  driver.wait();
  const auto wall = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 40u);
  // 40 arrivals at 0.5ms spacing cannot complete faster than ~20ms of wall
  // clock: open-loop pacing really came from timers, not a burst.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(wall).count(), 15);
  const auto sojourn = driver.sojourn_latency();
  EXPECT_GT(sojourn.p50_ns, 0u);

  procs[1].rt->broadcast_shutdown();
  procs[0].rt->stop();
  procs[1].rt->stop();
}

TEST(NetRuntime, StatsCountFramesAndBytes) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  std::vector<FleetProc> procs(2);
  procs[0].build(fleet, 0);
  procs[1].build(fleet, 1);
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 10;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec);
  driver.start();
  driver.wait();
  const auto client = procs[1].rt->net_stats();
  const auto server = procs[0].rt->net_stats();
  // simple: every op fans out one request per object and gets one response.
  EXPECT_GT(server.frames_received, 0u);
  EXPECT_GT(client.frames_received, 0u);
  EXPECT_GE(client.frames_sent, server.frames_received);
  EXPECT_GT(client.bytes_sent, 0u);
  EXPECT_GT(client.bytes_received, 0u);
  EXPECT_EQ(client.reconnects, 0u);
  procs[1].rt->broadcast_shutdown();
  procs[0].rt->stop();
  procs[1].rt->stop();
}

TEST(NetRuntime, InboundFlowControlPausesAndResumes) {
  SKIP_WITHOUT_TRANSPORT();
  // A 1-byte inbound budget makes EVERY received frame trip the pause and
  // every drain resume it: the workload completing at all proves the
  // pause/resume cycle cannot livelock, and the counter proves it engaged.
  const FleetConfig fleet = make_fleet("algo-b", 2, 2, 2, 2, 1);
  std::vector<FleetProc> procs(2);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    NetOptions opts = fleet.net_options(i);
    opts.max_inbound_bytes = 1;
    procs[i].rt = std::make_unique<NetRuntime>(opts);
    procs[i].rec = std::make_unique<HistoryRecorder>(fleet.system.num_objects);
    procs[i].sys = build_protocol(fleet.protocol, *procs[i].rt, *procs[i].rec, fleet.system,
                                  fleet.options);
  }
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 15;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec);
  driver.start();
  driver.wait();
  EXPECT_EQ(driver.completed_reads(), 2u * 15u);
  EXPECT_GT(procs[0].rt->net_stats().inbound_pauses, 0u);  // servers saw bursts
  procs[1].rt->broadcast_shutdown();
  procs[1].rt->stop();
  procs[0].rt->stop();
}

TEST(NetRuntime, RefusesRemotePostAndForeignConfigs) {
  SKIP_WITHOUT_TRANSPORT();
  FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  NetOptions opts = fleet.net_options(0);
  NetRuntime rt(opts);
  EXPECT_TRUE(rt.owns(0));
  EXPECT_FALSE(rt.owns(3));
  EXPECT_EQ(rt.owner_of(3), fleet.client_index());
  // Construction-time validation.
  NetOptions bad = fleet.net_options(0);
  bad.owner = nullptr;
  EXPECT_THROW(NetRuntime{bad}, std::runtime_error);
  NetOptions oob = fleet.net_options(0);
  oob.index = 99;
  EXPECT_THROW(NetRuntime{oob}, std::runtime_error);
}

}  // namespace
}  // namespace snowkit
