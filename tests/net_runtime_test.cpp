// NetRuntime end-to-end: protocols running unmodified across runtime
// instances connected by real loopback TCP.  Each "process" of the fleet is
// a NetRuntime in this test binary (identical node numbering, disjoint
// ownership) — the same topology `snowkit_server` + `bench_harness
// --scenario net_loopback` deploys as actual OS processes.
#include "runtime/net_runtime.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/fleet.hpp"

namespace snowkit {
namespace {

#define SKIP_WITHOUT_TRANSPORT()                                      \
  do {                                                                \
    if (!net::transport_supported())                                  \
      GTEST_SKIP() << "TCP transport requires Linux";                 \
  } while (0)

/// An in-test fleet "process": one NetRuntime + the protocol built on it.
struct FleetProc {
  std::unique_ptr<NetRuntime> rt;
  std::unique_ptr<HistoryRecorder> rec;
  std::unique_ptr<ProtocolSystem> sys;

  void build(const FleetConfig& fleet, std::size_t index) {
    rt = std::make_unique<NetRuntime>(fleet.net_options(index));
    rec = std::make_unique<HistoryRecorder>(fleet.system.num_objects);
    sys = build_protocol(fleet.protocol, *rt, *rec, fleet.system, fleet.options);
  }
};

FleetConfig make_fleet(const std::string& protocol, std::size_t objects, std::size_t readers,
                       std::size_t writers, std::size_t shards, std::size_t server_procs) {
  FleetConfig fleet;
  fleet.protocol = protocol;
  fleet.system.num_objects = objects;
  fleet.system.num_readers = readers;
  fleet.system.num_writers = writers;
  fleet.system.num_servers = shards;
  for (const std::uint16_t port : net::pick_free_ports(server_procs + 1)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }
  return fleet;
}

/// Runs a split closed loop from the client process and returns its history.
History run_fleet_once(const FleetConfig& fleet, std::size_t ops_per_reader,
                       std::size_t ops_per_writer) {
  std::vector<FleetProc> procs(fleet.processes.size());
  for (std::size_t i = 0; i < procs.size(); ++i) procs[i].build(fleet, i);
  // Server processes first, client last — though start order must not matter
  // (reconnect-with-backoff covers the races; a dedicated test flips it).
  for (std::size_t i = 0; i < procs.size(); ++i) procs[i].rt->start();
  FleetProc& client = procs.back();
  client.rt->wait_connected();

  WorkloadSpec spec;
  spec.ops_per_reader = ops_per_reader;
  spec.ops_per_writer = ops_per_writer;
  spec.read_span = std::min<std::size_t>(2, fleet.system.num_objects);
  spec.write_span = std::min<std::size_t>(2, fleet.system.num_objects);
  spec.seed = 11;
  WorkloadDriver driver(*client.rt, *client.sys, spec);
  driver.start();
  driver.wait();

  client.rt->broadcast_shutdown();
  client.rt->stop();  // drains the SHUTDOWN frames before the sockets close
  for (std::size_t i = 0; i + 1 < procs.size(); ++i) procs[i].rt->stop();
  return client.rec->snapshot();
}

/// run_fleet_once with one retry on fresh ports: another process (parallel
/// ctest) can grab a probed port between pick_free_ports and listen.
History run_fleet_workload(FleetConfig fleet, std::size_t ops_per_reader,
                           std::size_t ops_per_writer) {
  try {
    return run_fleet_once(fleet, ops_per_reader, ops_per_writer);
  } catch (const std::runtime_error&) {
    const auto ports = net::pick_free_ports(fleet.processes.size());
    if (ports.size() != fleet.processes.size()) throw;  // probing itself failed
    for (std::size_t i = 0; i < fleet.processes.size(); ++i) fleet.processes[i].port = ports[i];
    return run_fleet_once(fleet, ops_per_reader, ops_per_writer);
  }
}

TEST(NetRuntime, AlgoBAcrossTwoProcesses) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("algo-b", 2, 2, 2, 2, 1);
  const History h = run_fleet_workload(fleet, 20, 10);
  EXPECT_EQ(h.completed_reads(), 2u * 20u);
  EXPECT_EQ(h.completed_writes(), 2u * 10u);
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(NetRuntime, AlgoCAcrossThreeServerProcesses) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("algo-c", 4, 2, 2, 3, 3);
  const History h = run_fleet_workload(fleet, 15, 8);
  EXPECT_EQ(h.completed_reads(), 2u * 15u);
  EXPECT_EQ(h.completed_writes(), 2u * 8u);
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(NetRuntime, EveryProtocolRunsUnmodifiedOverTcp) {
  SKIP_WITHOUT_TRANSPORT();
  // The registry's whole deployable surface: one quick fleet each.  (The
  // broken-stale fault stub is included on purpose — faulty protocols must
  // transport as faithfully as correct ones.)
  for (const std::string& name : registered_protocols()) {
    const std::size_t readers = name == "algo-a" ? 1 : 2;  // Algorithm A is MWSR
    const FleetConfig fleet = make_fleet(name, 2, readers, 2, 2, 2);
    const History h = run_fleet_workload(fleet, 6, 4);
    EXPECT_EQ(h.completed_reads(), readers * 6u) << name;
    EXPECT_EQ(h.completed_writes(), 2u * 4u) << name;
  }
}

TEST(NetRuntime, ClientBeforeServersReconnectsWithBackoff) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("algo-b", 2, 1, 1, 2, 1);
  FleetProc client;
  client.build(fleet, fleet.client_index());
  client.rt->start();  // server is NOT up: connects fail, backoff kicks in
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(client.rt->transport_stats().frames_received, 0u);

  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();
  client.rt->wait_connected();  // resolves only via a successful retry

  WorkloadSpec spec;
  spec.ops_per_reader = 5;
  spec.ops_per_writer = 5;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*client.rt, *client.sys, spec);
  driver.start();
  driver.wait();
  EXPECT_EQ(client.rec->snapshot().completed_reads(), 5u);

  client.rt->broadcast_shutdown();
  server.rt->run_until_shutdown();  // the broadcast must reach the daemon path
  EXPECT_TRUE(server.rt->shutdown_requested());
  client.rt->stop();
  server.rt->stop();
}

TEST(NetRuntime, PostAfterPacesOpenLoopOverTcp) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  std::vector<FleetProc> procs(2);
  procs[0].build(fleet, 0);
  procs[1].build(fleet, 1);
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();

  WorkloadSpec spec;
  spec.read_span = 1;
  spec.write_span = 1;
  DriverOptions dopts;
  dopts.mode = ArrivalMode::kOpenLoop;
  dopts.total_ops = 40;
  dopts.arrival_interval_ns = 500'000;  // 0.5ms timerfd ticks
  dopts.read_fraction = 0.5;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec, dopts);
  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  driver.wait();
  const auto wall = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 40u);
  // 40 arrivals at 0.5ms spacing cannot complete faster than ~20ms of wall
  // clock: open-loop pacing really came from timers, not a burst.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(wall).count(), 15);
  const auto sojourn = driver.sojourn_latency();
  EXPECT_GT(sojourn.p50_ns, 0u);

  procs[1].rt->broadcast_shutdown();
  procs[0].rt->stop();
  procs[1].rt->stop();
}

TEST(NetRuntime, StatsCountFramesAndBytes) {
  SKIP_WITHOUT_TRANSPORT();
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  std::vector<FleetProc> procs(2);
  procs[0].build(fleet, 0);
  procs[1].build(fleet, 1);
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 10;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec);
  driver.start();
  driver.wait();
  const TransportStats client = procs[1].rt->transport_stats();
  const TransportStats server = procs[0].rt->transport_stats();
  // simple: every op fans out one request per object and gets one response.
  EXPECT_GT(server.frames_received, 0u);
  EXPECT_GT(client.frames_received, 0u);
  EXPECT_GE(client.frames_sent, server.frames_received);
  EXPECT_GT(client.bytes_sent, 0u);
  EXPECT_GT(client.bytes_received, 0u);
  EXPECT_EQ(client.reconnects, 0u);
  // Syscall-level accounting must reconcile with itself: every queued frame
  // either hit the wire or is still queued, sendmsg calls were counted, and
  // the per-thread wakeup vector matches the configured io_threads (1 here).
  EXPECT_GT(client.send_syscalls, 0u);
  EXPECT_GT(client.recv_syscalls, 0u);
  // frames_written counts every frame whose last byte hit the wire —
  // including the one HELLO per connection — while frames_sent counts only
  // queued MSG frames.  Quiesced (every response arrived), they reconcile
  // exactly: all sent frames were written, plus one HELLO per connection.
  EXPECT_GE(client.frames_written, client.frames_sent);
  EXPECT_LE(client.frames_written, client.frames_sent + 1 + client.reconnects);
  EXPECT_GT(client.mailbox_bursts, 0u);
  EXPECT_LE(client.mailbox_bursts, client.frames_received);
  ASSERT_EQ(client.epoll_wakeups.size(), 1u);
  EXPECT_GT(client.total_epoll_wakeups(), 0u);
  procs[1].rt->broadcast_shutdown();
  procs[0].rt->stop();
  procs[1].rt->stop();
}

TEST(NetRuntime, InboundFlowControlPausesAndResumes) {
  SKIP_WITHOUT_TRANSPORT();
  // A 1-byte inbound budget makes EVERY received frame trip the pause and
  // every drain resume it: the workload completing at all proves the
  // pause/resume cycle cannot livelock, and the counter proves it engaged.
  const FleetConfig fleet = make_fleet("algo-b", 2, 2, 2, 2, 1);
  std::vector<FleetProc> procs(2);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    NetOptions opts = fleet.net_options(i);
    opts.transport.inbound_budget_bytes = 1;
    procs[i].rt = std::make_unique<NetRuntime>(opts);
    procs[i].rec = std::make_unique<HistoryRecorder>(fleet.system.num_objects);
    procs[i].sys = build_protocol(fleet.protocol, *procs[i].rt, *procs[i].rec, fleet.system,
                                  fleet.options);
  }
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 15;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec);
  driver.start();
  driver.wait();
  EXPECT_EQ(driver.completed_reads(), 2u * 15u);
  EXPECT_GT(procs[0].rt->transport_stats().inbound_pauses, 0u);  // servers saw bursts
  procs[1].rt->broadcast_shutdown();
  procs[1].rt->stop();
  procs[0].rt->stop();
}

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool wait_closed(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
  std::uint8_t buf[16];
  return ::read(fd, buf, sizeof buf) <= 0;
}

TEST(NetRuntime, MisroutedFrameDropsConnectionNotProcess) {
  SKIP_WITHOUT_TRANSPORT();
  // HELLO is unauthenticated (magic/version/index are public), so anything a
  // greeted socket sends is still untrusted input: a MSG frame addressed to
  // a node this process does not own must drop the CONNECTION, never abort
  // the process — otherwise one well-formed frame is a remote crash vector.
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();

  // A node owned by the client process, as seen by the shared owner map.
  NodeId foreign = kInvalidNode;
  for (NodeId id = 0; id < 8; ++id) {
    if (!server.rt->owns(id)) {
      foreign = id;
      break;
    }
  }
  ASSERT_NE(foreign, kInvalidNode);

  // One connection per hostile variant; each must cost the attacker the
  // connection (FIN/RST) and nothing else.
  const auto attack = [&](const std::vector<std::uint8_t>& frames, const char* what) {
    const int fd = raw_connect(fleet.processes[0].port);
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> bytes;
    net::append_hello(bytes, 1);  // claims to be the client process — accepted
    bytes.insert(bytes.end(), frames.begin(), frames.end());
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()), static_cast<ssize_t>(bytes.size()));
    EXPECT_TRUE(wait_closed(fd, 5000)) << what;
    ::close(fd);
  };

  // `to` not owned by this process.
  std::vector<std::uint8_t> misrouted;
  net::append_msg(misrouted, foreign, foreign,
                  Message{1, Payload{WriteValReq{WriteKey{0, 1}, 0, 7}}});
  attack(misrouted, "server accepted a misrouted destination node");

  // `to` fine, but `from` names a node the claimed peer does not own:
  // replying to it would abort in send().  Node 0 is owned by the server
  // itself, never by the client the HELLO claims.
  std::vector<std::uint8_t> foreign_from;
  net::append_msg(foreign_from, 0, 0, Message{2, Payload{WriteValReq{WriteKey{0, 1}, 0, 7}}});
  attack(foreign_from, "server accepted a foreign sender node");

  // Routing header fine, payload bytes garbage: the worker's
  // try_decode_message must reject it and request the link drop, not abort
  // in decode.  Hand-build the MSG frame: len u32le, type 0x02, from uv,
  // to uv (both valid single-byte varints), then junk payload.
  NodeId from_node = kInvalidNode;
  for (NodeId id = 0; id < 8; ++id) {
    if (server.rt->owner_of(id) == 1) {
      from_node = id;
      break;
    }
  }
  ASSERT_NE(from_node, kInvalidNode);
  ASSERT_LT(from_node, 128u);  // single-byte varint below
  NodeId to_node = 0;
  ASSERT_TRUE(server.rt->owns(to_node));
  std::vector<std::uint8_t> junk = {0, 0, 0, 0, 0x02, static_cast<std::uint8_t>(from_node),
                                    static_cast<std::uint8_t>(to_node), 0x00, 0xFF};
  // payload = txn varint 0x00, payload index 0xFF (out of range)
  junk[0] = static_cast<std::uint8_t>(junk.size() - 4);
  attack(junk, "server survived but should also have dropped the junk-payload link");

  // And keep serving: a legitimate client fleet process still completes a
  // workload against the same server instance.
  FleetProc client;
  client.build(fleet, fleet.client_index());
  client.rt->start();
  client.rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 5;
  spec.ops_per_writer = 5;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*client.rt, *client.sys, spec);
  driver.start();
  driver.wait();
  EXPECT_EQ(client.rec->snapshot().completed_reads(), 5u);

  client.rt->broadcast_shutdown();
  client.rt->stop();
  server.rt->stop();
}

TEST(NetRuntime, OversizedHandshakeIsDropped) {
  SKIP_WITHOUT_TRANSPORT();
  // A pre-HELLO peer is untrusted: a valid-looking length prefix trickling
  // a large body must be cut off after a few hundred bytes, not allowed to
  // buffer up to the 16 MiB frame cap per squatting connection.
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();

  const int fd = raw_connect(fleet.processes[0].port);
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> bytes = {0xE8, 0x03, 0x00, 0x00};  // len = 1000
  bytes.resize(bytes.size() + 600, 0x5A);                      // incomplete body
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()), static_cast<ssize_t>(bytes.size()));
  EXPECT_TRUE(wait_closed(fd, 5000)) << "server kept buffering an oversized handshake";
  ::close(fd);
  server.rt->stop();
}

TEST(NetRuntime, PendingHandshakeCapRefusesFloods) {
  SKIP_WITHOUT_TRANSPORT();
  // 72 silent connections: the first 64 squat in pre-HELLO slots (reaped by
  // the handshake deadline, too slow for this test), the last 8 must be
  // refused immediately instead of pinning more fds.
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();

  std::vector<int> fds;
  for (int i = 0; i < 72; ++i) {
    const int fd = raw_connect(fleet.processes[0].port);
    ASSERT_GE(fd, 0) << "connect " << i;
    fds.push_back(fd);
  }
  // Refused connections close quickly; squatters stay open until the (5s)
  // handshake deadline, far past this poll.  Zero-timeout checks keep the
  // squatters free.
  int closed = 0;
  for (int spins = 0; spins < 100 && closed < 8; ++spins) {
    closed = 0;
    for (const int fd : fds) {
      if (wait_closed(fd, 0)) ++closed;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // >= rather than ==: on a very slow/sanitized host the loop's wall time
  // can cross the 5s handshake-deadline reap, which closes the 64 squatters
  // too.  At least the 8 over-cap connections must have been refused.
  EXPECT_GE(closed, 8);
  for (const int fd : fds) ::close(fd);
  server.rt->stop();
}

TEST(NetRuntime, ShutdownReachesSlowStartingServer) {
  SKIP_WITHOUT_TRANSPORT();
  // broadcast_shutdown() + stop() against a server that only comes up a few
  // tens of ms later: the drain's never-connected sub-window (plus the
  // kick_connects_ redial and fast backoff) must still deliver the SHUTDOWN
  // instead of skipping the link as dead.
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  FleetProc client;
  NetOptions copts = fleet.net_options(fleet.client_index());
  copts.transport.reconnect_initial_ns = 5'000'000;  // retry every 5-10ms
  copts.transport.reconnect_max_ns = 10'000'000;
  client.rt = std::make_unique<NetRuntime>(copts);
  client.rec = std::make_unique<HistoryRecorder>(fleet.system.num_objects);
  client.sys = build_protocol(fleet.protocol, *client.rt, *client.rec, fleet.system,
                              fleet.options);
  client.rt->start();  // server not up: the link never connects
  client.rt->broadcast_shutdown();
  std::thread stopper([&] { client.rt->stop(); });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();
  bool got = false;
  for (int i = 0; i < 200 && !got; ++i) {
    got = server.rt->shutdown_requested();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stopper.join();
  EXPECT_TRUE(got) << "slow-starting server never received the SHUTDOWN broadcast";
  server.rt->stop();
}

TEST(NetRuntime, StopDoesNotWaitOnNeverConnectedLinks) {
  SKIP_WITHOUT_TRANSPORT();
  // broadcast_shutdown queues SHUTDOWN frames on every link, including ones
  // whose peer daemon never came up; stop()'s bounded drain must not burn
  // its full window waiting on frames that can never flush.
  const FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  FleetProc client;
  client.build(fleet, fleet.client_index());
  client.rt->start();  // server process intentionally never started
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  client.rt->broadcast_shutdown();
  const auto t0 = std::chrono::steady_clock::now();
  client.rt->stop();
  const auto wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  EXPECT_LT(wall.count(), 500) << "stop() drained against a never-connected link";
}

TEST(NetRuntime, MultiThreadIoRunsProtocolsAndSplitsLinks) {
  SKIP_WITHOUT_TRANSPORT();
  // io_threads=2 on every fleet process: with 3 server processes the client
  // homes its links on BOTH threads (0,2 -> thread 0; 1 -> thread 1), so
  // cross-thread handoff, per-thread timers and per-thread flushing all run
  // under a real protocol workload.  TSan runs this test too.
  FleetConfig fleet = make_fleet("algo-c", 4, 2, 2, 3, 3);
  fleet.transport.io_threads = 2;
  const History h = run_fleet_workload(fleet, 15, 8);
  EXPECT_EQ(h.completed_reads(), 2u * 15u);
  EXPECT_EQ(h.completed_writes(), 2u * 8u);
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(NetRuntime, MultiThreadStatsReportPerThreadWakeups) {
  SKIP_WITHOUT_TRANSPORT();
  FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  fleet.transport.io_threads = 3;
  std::vector<FleetProc> procs(2);
  procs[0].build(fleet, 0);
  procs[1].build(fleet, 1);
  procs[0].rt->start();
  procs[1].rt->start();
  procs[1].rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 10;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*procs[1].rt, *procs[1].sys, spec);
  driver.start();
  driver.wait();
  const TransportStats stats = procs[1].rt->transport_stats();
  ASSERT_EQ(stats.epoll_wakeups.size(), 3u);
  // The client's single link to the server homes on thread 0 % 3; that
  // thread must have seen traffic wakeups.
  EXPECT_GT(stats.total_epoll_wakeups(), 0u);
  EXPECT_GT(stats.frames_received, 0u);
  procs[1].rt->broadcast_shutdown();
  procs[0].rt->stop();
  procs[1].rt->stop();
}

TEST(NetRuntime, ReconnectStormUnderMultiThreadEpoll) {
  SKIP_WITHOUT_TRANSPORT();
  // Hostile displacement storm against a MULTI-THREAD server: every raw
  // connection claims (via the public HELLO) to be the client process and
  // displaces the previous impostor, hammering the thread0 -> home-thread
  // handoff path while the home thread is also adopting, closing and
  // re-registering fds.  The real client then connects LAST and must win the
  // link and complete a full workload.  Under TSan this is the data-race
  // probe for the handoff design.
  FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  fleet.transport.io_threads = 2;
  FleetProc server;
  server.build(fleet, 0);
  server.rt->start();

  std::vector<int> fds;
  for (int round = 0; round < 40; ++round) {
    const int fd = raw_connect(fleet.processes[0].port);
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> hello;
    net::append_hello(hello, 1);  // impostor: claims to be fleet process 1
    ASSERT_EQ(::write(fd, hello.data(), hello.size()), static_cast<ssize_t>(hello.size()));
    fds.push_back(fd);
    if (fds.size() > 8) {  // keep a rolling window of live impostors
      ::close(fds.front());
      fds.erase(fds.begin());
    }
  }
  for (const int fd : fds) ::close(fd);

  // The genuine client dials after the storm; its connection displaces the
  // last impostor and the workload must complete.
  FleetProc client;
  client.build(fleet, fleet.client_index());
  client.rt->start();
  client.rt->wait_connected();
  WorkloadSpec spec;
  spec.ops_per_reader = 10;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  spec.write_span = 2;
  WorkloadDriver driver(*client.rt, *client.sys, spec);
  driver.start();
  driver.wait();
  EXPECT_EQ(client.rec->snapshot().completed_reads(), 10u);
  EXPECT_GT(server.rt->transport_stats().reconnects, 0u);  // displacements counted

  client.rt->broadcast_shutdown();
  client.rt->stop();
  server.rt->stop();
}

TEST(NetRuntime, TransportOptionsValidateFailFast) {
  // Pure validation (no sockets): every invalid field must throw a named
  // std::invalid_argument from every construction surface.
  TransportOptions t;
  t.io_threads = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.io_threads = 65;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.coalesce_max_frames = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.coalesce_max_frames = 2048;  // above the IOV_MAX bound
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.read_chunk_bytes = 1024;  // below the 4096 floor
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.reconnect_max_ns = t.reconnect_initial_ns - 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.max_pending_handshake_bytes = 16;  // too small to ever hold a HELLO
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  EXPECT_NO_THROW(t.validate());

  // The csv surface parses, applies and validates in one step...
  t.parse_csv("io_threads=4,coalesce_max_frames=128,reconnect_initial_ms=5");
  EXPECT_EQ(t.io_threads, 4u);
  EXPECT_EQ(t.coalesce_max_frames, 128u);
  EXPECT_EQ(t.reconnect_initial_ns, TimeNs{5'000'000});
  // ...and rejects unknown keys, bad grammar and invalid values by name.
  EXPECT_THROW(t.parse_csv("iothreads=2"), std::invalid_argument);
  EXPECT_THROW(t.parse_csv("io_threads"), std::invalid_argument);
  EXPECT_THROW(t.parse_csv("io_threads=-1"), std::invalid_argument);
  EXPECT_THROW(t.parse_csv("io_threads=0"), std::invalid_argument);

  // The NetRuntime constructor is a validation surface too: a bad transport
  // config must fail before any socket exists.
  if (net::transport_supported()) {
    FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
    NetOptions opts = fleet.net_options(0);
    opts.transport.io_threads = 0;
    EXPECT_THROW(NetRuntime{opts}, std::invalid_argument);
  }
}

TEST(NetRuntime, RefusesRemotePostAndForeignConfigs) {
  SKIP_WITHOUT_TRANSPORT();
  FleetConfig fleet = make_fleet("simple", 2, 1, 1, 2, 1);
  NetOptions opts = fleet.net_options(0);
  NetRuntime rt(opts);
  EXPECT_TRUE(rt.owns(0));
  EXPECT_FALSE(rt.owns(3));
  EXPECT_EQ(rt.owner_of(3), fleet.client_index());
  // Construction-time validation.
  NetOptions bad = fleet.net_options(0);
  bad.owner = nullptr;
  EXPECT_THROW(NetRuntime{bad}, std::runtime_error);
  NetOptions oob = fleet.net_options(0);
  oob.index = 99;
  EXPECT_THROW(NetRuntime{oob}, std::runtime_error);
}

}  // namespace
}  // namespace snowkit
