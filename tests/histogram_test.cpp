// Log-bucket latency histogram: accuracy and merging.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/histogram.hpp"

namespace snowkit {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_NEAR(static_cast<double>(h.p50()), 12345.0, 12345.0 * 0.04);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (TimeNs v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 32.0, 2.0);
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  Histogram h;
  Xoshiro256 rng(3);
  std::vector<TimeNs> values;
  for (int i = 0; i < 200'000; ++i) {
    const TimeNs v = 1000 + rng.below(10'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const TimeNs exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    const TimeNs approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05)
        << "q=" << q;
  }
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram both;
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const TimeNs v = rng.below(1'000'000);
    (i % 2 == 0 ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.p50(), both.p50());
  EXPECT_EQ(a.p99(), both.p99());
  EXPECT_EQ(a.max(), both.max());
}

TEST(Histogram, HugeValuesClampSafely) {
  Histogram h;
  h.record(~TimeNs{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), ~TimeNs{0});
  EXPECT_LE(h.quantile(1.0), ~TimeNs{0});
}

TEST(Histogram, SummaryContainsFields) {
  Histogram h;
  h.record(100);
  const std::string s = h.summary("ns");
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace snowkit
