// HistoryRecorder: transaction bookkeeping, ordering counters, snapshots.
#include <gtest/gtest.h>

#include <thread>

#include "history/history.hpp"

namespace snowkit {
namespace {

TEST(History, BeginFinishReadLifecycle) {
  HistoryRecorder rec(2);
  const TxnId id = rec.begin_read(5, {0, 1});
  {
    const History h = rec.snapshot();
    ASSERT_EQ(h.txns.size(), 1u);
    EXPECT_FALSE(h.txns[0].complete);
    EXPECT_TRUE(h.txns[0].is_read);
    EXPECT_EQ(h.txns[0].client, 5u);
  }
  rec.finish_read(id, {{0, 7}, {1, 8}}, /*tag=*/3, /*rounds=*/2, /*max_versions=*/1);
  const History h = rec.snapshot();
  EXPECT_TRUE(h.txns[0].complete);
  EXPECT_EQ(h.txns[0].tag, 3u);
  EXPECT_EQ(h.txns[0].rounds, 2);
  EXPECT_EQ(h.txns[0].reads[1].second, 8);
}

TEST(History, OrderCountersDefinePrecedence) {
  HistoryRecorder rec(1);
  const TxnId a = rec.begin_write(1, {{0, 1}});
  rec.finish_write(a, 1, 1);
  const TxnId b = rec.begin_read(2, {0});
  rec.finish_read(b, {{0, 1}}, 1, 1, 1);
  const History h = rec.snapshot();
  EXPECT_TRUE(History::precedes(*h.find(a), *h.find(b)));
  EXPECT_FALSE(History::precedes(*h.find(b), *h.find(a)));
}

TEST(History, ConcurrentTxnsDoNotPrecedeEachOther) {
  HistoryRecorder rec(1);
  const TxnId a = rec.begin_write(1, {{0, 1}});
  const TxnId b = rec.begin_read(2, {0});
  rec.finish_write(a, 1, 1);
  rec.finish_read(b, {{0, 1}}, 1, 1, 1);
  const History h = rec.snapshot();
  EXPECT_FALSE(History::precedes(*h.find(a), *h.find(b)));
  EXPECT_FALSE(History::precedes(*h.find(b), *h.find(a)));
}

TEST(History, IncompleteNeverPrecedes) {
  HistoryRecorder rec(1);
  const TxnId a = rec.begin_write(1, {{0, 1}});
  const TxnId b = rec.begin_read(2, {0});
  rec.finish_read(b, {{0, kInitialValue}}, 0, 1, 1);
  const History h = rec.snapshot();
  EXPECT_FALSE(History::precedes(*h.find(a), *h.find(b)));
}

TEST(History, CountsCompleted) {
  HistoryRecorder rec(1);
  const TxnId a = rec.begin_write(1, {{0, 1}});
  rec.begin_write(1, {{0, 2}});  // left incomplete
  const TxnId c = rec.begin_read(2, {0});
  rec.finish_write(a, 1, 1);
  rec.finish_read(c, {{0, 1}}, 1, 1, 1);
  const History h = rec.snapshot();
  EXPECT_EQ(h.completed_writes(), 1u);
  EXPECT_EQ(h.completed_reads(), 1u);
  EXPECT_EQ(h.txns.size(), 3u);
}

TEST(History, ThreadSafeConcurrentRecording) {
  HistoryRecorder rec(4);
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          const TxnId id = rec.begin_write(static_cast<NodeId>(t), {{0, i}});
          rec.finish_write(id, kInvalidTag, 1);
        } else {
          const TxnId id = rec.begin_read(static_cast<NodeId>(t), {0});
          rec.finish_read(id, {{0, 0}}, kInvalidTag, 1, 1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const History h = rec.snapshot();
  EXPECT_EQ(h.txns.size(), 4u * kPerThread);
  // Txn ids unique.
  std::set<TxnId> ids;
  for (const auto& t : h.txns) ids.insert(t.id);
  EXPECT_EQ(ids.size(), h.txns.size());
  // Order counters strictly increasing per txn (invoke < respond).
  for (const auto& t : h.txns) EXPECT_LT(t.invoke_order, t.respond_order);
}

TEST(History, NextIdAllocatesWithoutRecording) {
  HistoryRecorder rec(1);
  const TxnId a = rec.next_id();
  const TxnId b = rec.begin_read(1, {0});
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.snapshot().txns.size(), 1u);
}

}  // namespace
}  // namespace snowkit
