// Protocol registry + sharded placement + unified transaction API.
//
// Covers the api_redesign surface: fail-fast registry lookups, SystemConfig
// validation, every registered protocol building by name and passing the
// checkers on a small workload, hash/range sharding (objects > servers)
// round-tripping reads and writes, and the open-loop mixed WorkloadDriver.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "runtime/thread_runtime.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

TEST(Registry, AllSeedProtocolsAreRegistered) {
  const auto names = registered_protocols();
  const std::set<std::string> got(names.begin(), names.end());
  for (const char* expected : {"algo-a", "algo-b", "algo-c", "blocking-2pl", "eiger", "naive",
                               "occ-reads", "simple"}) {
    EXPECT_TRUE(got.count(expected)) << "missing protocol: " << expected;
  }
  EXPECT_GE(names.size(), 8u);
}

TEST(Registry, UnknownNameFailsFastWithRegisteredList) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  try {
    build_protocol("algo-z", sim, rec, SystemConfig{2, 1, 1});
    FAIL() << "unknown protocol must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("algo-z"), std::string::npos) << msg;
    EXPECT_NE(msg.find("algo-b"), std::string::npos)
        << "error must list the registered protocols: " << msg;
  }
  EXPECT_THROW(ProtocolRegistry::global().traits("nope"), std::invalid_argument);
  EXPECT_FALSE(ProtocolRegistry::global().contains("nope"));
  EXPECT_TRUE(ProtocolRegistry::global().contains("algo-b"));
}

TEST(Registry, TraitsRecordCapabilities) {
  const ProtocolTraits& a = ProtocolRegistry::global().traits("algo-a");
  EXPECT_TRUE(a.snow_s && a.snow_n && a.snow_o && a.snow_w);
  EXPECT_FALSE(a.mwmr);  // MWSR only
  const ProtocolTraits& b = ProtocolRegistry::global().traits("algo-b");
  EXPECT_TRUE(b.snow_s && b.snow_n && b.snow_w && b.mwmr);
  EXPECT_FALSE(b.snow_o);  // two rounds
  const ProtocolTraits& e = ProtocolRegistry::global().traits("eiger");
  EXPECT_FALSE(e.claims_strict_serializability);  // §6 refutes the claim
}

TEST(Registry, BuildOptionsParseAndTypedAccess) {
  const BuildOptions opts = BuildOptions::parse("coordinator=2,gc_versions=true");
  EXPECT_EQ(opts.get_int("coordinator", 0), 2);
  EXPECT_TRUE(opts.get_bool("gc_versions"));
  EXPECT_EQ(opts.get_int("absent", 7), 7);
  EXPECT_THROW(BuildOptions::parse("novalue"), std::invalid_argument);
  EXPECT_THROW(opts.get_bool("coordinator"), std::invalid_argument);
}

TEST(SystemConfigValidation, RejectsDegenerateConfigs) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  EXPECT_THROW(build_protocol("algo-b", sim, rec, SystemConfig{0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(build_protocol("simple", sim, rec, SystemConfig{2, 0, 0}), std::invalid_argument);
}

TEST(SystemConfigValidation, RejectsSpanBeyondObjects) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("algo-b", sim, rec, SystemConfig{2, 1, 1});
  WorkloadSpec spec;
  spec.read_span = 5;  // > num_objects
  EXPECT_THROW(WorkloadDriver(sim, *sys, spec), std::invalid_argument);
  WorkloadSpec zero;
  zero.write_span = 0;
  EXPECT_THROW(WorkloadDriver(sim, *sys, zero), std::invalid_argument);
}

TEST(Placement, DefaultIsOneServerPerObjectIdentity) {
  const SystemConfig cfg{4, 1, 1};
  const Placement place(cfg);
  EXPECT_EQ(place.num_servers(), 4u);
  for (ObjectId obj = 0; obj < 4; ++obj) EXPECT_EQ(place.server_node(obj), obj);
}

TEST(Placement, ShardingCoversAllObjectsAndServers) {
  for (PlacementKind kind : {PlacementKind::kHash, PlacementKind::kRange}) {
    SystemConfig cfg{8, 1, 1};
    cfg.num_servers = 3;
    cfg.placement = kind;
    const Placement place(cfg);
    EXPECT_EQ(place.num_servers(), 3u);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < 3; ++s) {
      for (ObjectId obj : place.objects_on(s)) {
        EXPECT_EQ(place.shard_of(obj), s);
        ++covered;
      }
    }
    EXPECT_EQ(covered, 8u);  // every object lives on exactly one shard
  }
}

// Every registered protocol must build by name on SimRuntime and pass its
// checkers on a small closed-loop workload — the registry's contract.
class EveryProtocol : public testing::TestWithParam<std::string> {};

TEST_P(EveryProtocol, BuildsByNameAndPassesCheckers) {
  const std::string& name = GetParam();
  const ProtocolTraits& traits = ProtocolRegistry::global().traits(name);
  SimRuntime sim(make_uniform_delay(10, 4000, 11));
  HistoryRecorder rec(3);
  const std::size_t readers = traits.mwmr ? 2 : 1;
  auto sys = build_protocol(name, sim, rec, SystemConfig{3, readers, 2});
  EXPECT_EQ(sys->name(), name);
  WorkloadSpec spec;
  spec.ops_per_reader = 15;
  spec.ops_per_writer = 8;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 5;
  WorkloadDriver driver(sim, *sys, spec);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  const History h = rec.snapshot();
  EXPECT_EQ(h.completed_reads(), readers * 15);
  EXPECT_EQ(h.completed_writes(), 2u * 8);
  if (traits.provides_tags) {
    const auto verdict = check_tag_order(h);
    EXPECT_TRUE(verdict.ok) << name << ": " << verdict.explanation;
  }
  const auto report = analyze_snow_trace(sim.trace(), sys->num_servers(), h);
  if (traits.snow_n) {
    EXPECT_TRUE(report.satisfies_n())
        << name << ": " << (report.violations.empty() ? "" : report.violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, EveryProtocol, testing::ValuesIn(registered_protocols()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// A hash-sharded k=8, s=3 fleet must round-trip reads and writes correctly:
// a READ after a quiesced WRITE returns exactly the written values.
TEST(Sharding, HashShardedTopologyRoundTripsReadsAndWrites) {
  SystemConfig cfg{8, 1, 1};
  cfg.num_servers = 3;
  SimRuntime sim;
  HistoryRecorder rec(cfg.num_objects);
  auto sys = build_protocol("algo-b", sim, rec, cfg);
  EXPECT_EQ(sys->num_servers(), 3u);
  EXPECT_LT(sys->server_node(7), 3u);

  sys->client(0).submit(write_txn(write_all(8, 100)), [](const TxnResult&) {});
  sim.run_until_idle();

  TxnResult got;
  sys->client(0).submit(read_txn(all_objects(8)), [&](const TxnResult& r) { got = r; });
  sim.run_until_idle();
  ASSERT_EQ(got.values.size(), 8u);
  for (const auto& [obj, value] : got.values) {
    EXPECT_EQ(value, 100 + static_cast<Value>(obj)) << "object " << obj;
  }
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// The acceptance scenario: objects > servers, mixed open-loop workload on
// SimRuntime, tag-order and SNOW checks passing.
class ShardedOpenLoop : public testing::TestWithParam<std::string> {};

TEST_P(ShardedOpenLoop, MixedWorkloadPassesChecksOnShardedFleet) {
  const std::string& name = GetParam();
  SystemConfig cfg{8, 2, 2};
  cfg.num_servers = 3;
  cfg.placement = name == "algo-b" ? PlacementKind::kHash : PlacementKind::kRange;
  SimRuntime sim(make_uniform_delay(10, 5000, 21));
  HistoryRecorder rec(cfg.num_objects);
  auto sys = build_protocol(name, sim, rec, cfg);

  WorkloadSpec spec;
  spec.read_span = 3;
  spec.write_span = 2;
  spec.seed = 9;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 120;
  opts.arrival_interval_ns = 20'000;  // faster than the mean txn latency: real backlog
  opts.read_fraction = 0.75;
  WorkloadDriver driver(sim, *sys, spec, opts);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 120u);
  EXPECT_GT(driver.completed_reads(), 0u);
  EXPECT_GT(driver.completed_writes(), 0u);

  const History h = rec.snapshot();
  EXPECT_EQ(h.completed_reads() + h.completed_writes(), 120u);
  const auto verdict = check_tag_order(h);
  EXPECT_TRUE(verdict.ok) << name << ": " << verdict.explanation;
  const auto report = analyze_snow_trace(sim.trace(), sys->num_servers(), h);
  EXPECT_TRUE(report.satisfies_n())
      << name << ": " << (report.violations.empty() ? "" : report.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ShardedOpenLoop, testing::Values("algo-b", "algo-c"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// Mixed closed-loop chains through the unified clients.
TEST(WorkloadDriverApi, MixedClosedLoopCompletesExactCounts) {
  SimRuntime sim;
  HistoryRecorder rec(4);
  auto sys = build_protocol("algo-c", sim, rec, SystemConfig{4, 2, 2});
  WorkloadSpec spec;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 3;
  DriverOptions opts;
  opts.mixed = true;
  opts.ops_per_client = 25;
  opts.read_fraction = 0.6;
  WorkloadDriver driver(sim, *sys, spec, opts);
  EXPECT_EQ(driver.total_ops(), 50u);
  driver.start();
  sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  EXPECT_EQ(driver.completed_reads() + driver.completed_writes(), 50u);
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// Open loop on ThreadRuntime: the timer thread paces arrivals in wall time.
TEST(WorkloadDriverApi, OpenLoopRunsOnThreads) {
  ThreadRuntime rt;
  HistoryRecorder rec(4);
  auto sys = build_protocol("algo-b", rt, rec, SystemConfig{4, 2, 2});
  rt.start();
  WorkloadSpec spec;
  spec.read_span = 2;
  spec.seed = 13;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = 60;
  opts.arrival_interval_ns = 50'000;  // 50us
  opts.read_fraction = 0.5;
  WorkloadDriver driver(rt, *sys, spec, opts);
  driver.start();
  driver.wait();
  rt.stop();
  const auto verdict = check_tag_order(rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_EQ(rec.snapshot().completed_reads() + rec.snapshot().completed_writes(), 60u);
}

// TxnRequest must be exactly one of read-set / write-set.
TEST(WorkloadDriverApi, RejectsMalformedTxnRequests) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_protocol("simple", sim, rec, SystemConfig{2, 1, 1});
  TxnRequest bad;  // neither reads nor writes
  EXPECT_DEATH(sys->client(0).submit(std::move(bad), nullptr), "read-set or a write-set");
}

}  // namespace
}  // namespace snowkit
