// Crash-tolerant shards (proto/replica.hpp) under the simulator's exact
// failure detector: primaries die mid-transaction, backups take over, and the
// oracle conditions are (1) no acknowledged write is ever lost, (2) reads
// stay non-blocking and strictly serializable across the failover.
#include <gtest/gtest.h>

#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/algo_b/algo_b.hpp"
#include "proto/algo_c/algo_c.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

// Node layout with replicas=2: servers [0,k), readers/writers [k, k+R+W),
// backup of shard s at k+R+W+s (proto/algo_b/algo_b.cpp keeps the plain
// layout untouched so recorded schedules stay valid).
NodeId backup_of(std::size_t k, std::size_t readers, std::size_t writers, std::size_t shard) {
  return static_cast<NodeId>(k + readers + writers + shard);
}

struct Rig {
  SimRuntime sim;
  HistoryRecorder rec;
  std::unique_ptr<ProtocolSystem> sys;

  Rig(bool algo_c, std::size_t k, std::size_t readers, std::size_t writers,
      std::uint64_t seed = 1)
      : sim(make_uniform_delay(10, 5000, seed)), rec(k) {
    if (algo_c) {
      AlgoCOptions opts;
      opts.replicas = 2;
      sys = build_algo_c(sim, rec, Topology{k, readers, writers}, opts);
    } else {
      AlgoBOptions opts;
      opts.replicas = 2;
      sys = build_algo_b(sim, rec, Topology{k, readers, writers}, opts);
    }
  }
};

void expect_clean_history(Rig& rig, const char* what) {
  const auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_TRUE(verdict.ok) << what << ": " << verdict.explanation;
}

// --- failure-free replicated fleets behave exactly like the paper's ---------

TEST(ReplicaFailover, AlgoBReplicatedFleetKeepsTwoRoundsOneVersion) {
  Rig rig(false, 3, 2, 2);
  WorkloadSpec spec;
  spec.ops_per_reader = 25;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  EXPECT_TRUE(driver.done());
  const History h = rig.rec.snapshot();
  const auto report = analyze_snow_trace(rig.sim.trace(), 3, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  // Replication must not cost the client anything: still 2 rounds, 1 version.
  EXPECT_EQ(report.max_read_rounds, 2);
  EXPECT_EQ(report.max_versions_per_response, 1);
  expect_clean_history(rig, "algo-b replicated, no faults");
}

TEST(ReplicaFailover, AlgoCReplicatedFleetKeepsOneRound) {
  Rig rig(true, 3, 2, 2);
  WorkloadSpec spec;
  spec.ops_per_reader = 25;
  spec.ops_per_writer = 10;
  spec.read_span = 2;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  EXPECT_TRUE(driver.done());
  const History h = rig.rec.snapshot();
  const auto report = analyze_snow_trace(rig.sim.trace(), 3, h);
  EXPECT_TRUE(report.satisfies_n()) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.max_read_rounds, 1);
  expect_clean_history(rig, "algo-c replicated, no faults");
}

// --- killing a primary mid-run ----------------------------------------------

void crash_mid_workload(bool algo_c, std::size_t victim_shard, std::uint64_t seed) {
  Rig rig(algo_c, 3, 2, 2, seed);
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 15;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = seed;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  // Let some transactions commit, then kill the primary with traffic in
  // flight.  Shard 0 is the coordinator, so victim_shard=0 also exercises
  // CoorList takeover and read-round restarts.
  rig.sim.run_until([&] { return driver.completed_writes() >= 5; });
  ASSERT_TRUE(rig.sim.can_crash(static_cast<NodeId>(victim_shard)));
  rig.sim.crash(static_cast<NodeId>(victim_shard));
  rig.sim.run_until_idle();
  // Every submitted transaction still completes: clients re-route to the
  // backup and retry, and no acknowledged write is lost (a lost write would
  // surface as a tag-order violation in a later read).
  EXPECT_TRUE(driver.done()) << "workload wedged after crashing shard " << victim_shard;
  const auto report = analyze_snow_trace(rig.sim.trace(), 3, rig.rec.snapshot());
  EXPECT_TRUE(report.satisfies_n())
      << "reads blocked across failover: "
      << (report.violations.empty() ? "" : report.violations[0]);
  expect_clean_history(rig, algo_c ? "algo-c failover" : "algo-b failover");
}

TEST(ReplicaFailover, AlgoBSurvivesDataShardCrash) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) crash_mid_workload(false, 1, seed);
}

TEST(ReplicaFailover, AlgoBSurvivesCoordinatorCrash) {
  for (std::uint64_t seed : {31ull, 32ull, 33ull}) crash_mid_workload(false, 0, seed);
}

TEST(ReplicaFailover, AlgoCSurvivesDataShardCrash) {
  for (std::uint64_t seed : {41ull, 42ull, 43ull}) crash_mid_workload(true, 2, seed);
}

TEST(ReplicaFailover, AlgoCSurvivesCoordinatorCrash) {
  for (std::uint64_t seed : {51ull, 52ull, 53ull}) crash_mid_workload(true, 0, seed);
}

// --- WAL recovery: restart, rejoin, and survive a SECOND failover ------------

TEST(ReplicaFailover, RestartedPrimaryRejoinsAndTakesOverAgain) {
  Rig rig(false, 2, 1, 1);
  const NodeId backup1 = backup_of(2, 1, 1, 1);
  auto write = [&](Value a, Value b) {
    bool done = false;
    invoke_write(rig.sim, rig.sys->writer(0), {{0, a}, {1, b}},
                 [&](const WriteResult&) { done = true; });
    rig.sim.run_until_idle();
    EXPECT_TRUE(done);
  };
  auto read = [&](Value a, Value b) {
    ReadResult result;
    invoke_read(rig.sim, rig.sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
    rig.sim.run_until_idle();
    ASSERT_EQ(result.values.size(), 2u);
    EXPECT_EQ(result.values[0].second, a);
    EXPECT_EQ(result.values[1].second, b);
  };

  write(10, 20);
  rig.sim.crash(1);  // shard 1's first primary dies
  rig.sim.run_until_idle();
  write(11, 21);  // committed by the backup-turned-primary
  read(11, 21);

  rig.sim.restart(1);  // old primary recovers from its WAL, rejoins as backup
  rig.sim.run_until_idle();
  EXPECT_TRUE(rig.sim.can_crash(backup1));
  rig.sim.crash(backup1);  // now kill the shard's SECOND primary
  rig.sim.run_until_idle();
  // The restarted node took over with full state: everything the dead
  // primary acknowledged — including writes from after the first failover
  // that the restarted node only saw via the rejoin catch-up — survives.
  read(11, 21);
  write(12, 22);
  read(12, 22);
  expect_clean_history(rig, "restart + second failover");
}

// --- update-coor retry dedup -------------------------------------------------

TEST(ReplicaFailover, UpdateCoorRetryIsDeduplicatedNotDoubleListed) {
  // Kill the coordinator AFTER it lists + replicates a WRITE but BEFORE the
  // writer sees the ack.  The writer's retry against the new primary must be
  // answered from the dedup table with the ORIGINAL List position — listing
  // it twice would give the WRITE two serialization points.
  Rig rig(false, 2, 1, 1);
  rig.sim.start();
  rig.sim.hold_matching(script::payload_is("update-coor-ack"));
  bool w_done = false;
  invoke_write(rig.sim, rig.sys->writer(0), {{0, 10}, {1, 20}},
               [&](const WriteResult&) { w_done = true; });
  rig.sim.run_until_idle();
  ASSERT_FALSE(w_done);  // listed and replicated, but the ack is held
  ASSERT_GE(rig.sim.held_count(), 1u);

  rig.sim.hold_matching(nullptr);  // the retry's ack must get through
  rig.sim.crash(0);
  rig.sim.run_until_idle();
  EXPECT_TRUE(w_done) << "retry against the new coordinator was not re-acked";

  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(0), {0, 1}, [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(result.values[0].second, 10);
  EXPECT_EQ(result.values[1].second, 20);

  // The stale ack from the dead lineage arrives last; clients ignore it.
  rig.sim.release_all();
  rig.sim.run_until_idle();
  expect_clean_history(rig, "update-coor dedup");
}

}  // namespace
}  // namespace snowkit
