// Property suite for the adaptive client cache invariant (ISSUE 10):
//
//   1. a cache hit is served ONLY while the watermark-anchor proof holds —
//      the cached key must equal latest[obj] in the READ's fresh tag array;
//   2. no cache entry survives a TakeoverNotice epoch bump;
//   3. the hit/miss/invalidation counters reconcile EXACTLY with the issued
//      read rounds: every object of every completed READ is either a hit or
//      a miss, and every miss is resolved by a C-mode prefetch or a round-2
//      batch fetch — nothing is double-counted, nothing leaks.
#include <gtest/gtest.h>

#include <numeric>

#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "proto/adaptive/adaptive.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {
namespace {

struct Rig {
  SimRuntime sim;
  HistoryRecorder rec;
  std::unique_ptr<ProtocolSystem> sys;
  AdaptiveSystem* adaptive{nullptr};

  explicit Rig(std::size_t k, std::size_t readers = 1, std::size_t writers = 1,
               std::uint64_t seed = 1, AdaptiveOptions opts = {})
      : sim(make_uniform_delay(10, 5000, seed)), rec(k) {
    sys = build_adaptive(sim, rec, Topology{k, readers, writers}, opts);
    adaptive = dynamic_cast<AdaptiveSystem*>(sys.get());
  }
};

ReadResult read_now(Rig& rig, std::size_t reader, std::vector<ObjectId> objs) {
  ReadResult result;
  invoke_read(rig.sim, rig.sys->reader(reader), std::move(objs),
              [&](const ReadResult& r) { result = r; });
  rig.sim.run_until_idle();
  return result;
}

void write_now(Rig& rig, std::size_t writer, std::vector<std::pair<ObjectId, Value>> writes) {
  invoke_write(rig.sim, rig.sys->writer(writer), std::move(writes), [](const WriteResult&) {});
  rig.sim.run_until_idle();
}

/// Sum of read spans over completed READ transactions — the number of
/// per-object resolutions the readers performed (failure-free runs have
/// exactly one tag-array resolution per READ).
std::uint64_t total_read_objects(const History& h) {
  std::uint64_t n = 0;
  for (const TxnRecord& t : h.txns) {
    if (t.is_read && t.complete) n += t.reads.size();
  }
  return n;
}

TEST(AdaptiveCacheProperty, CountersReconcileExactlyWithIssuedReadRounds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rig rig(3, 2, 2, seed);
    ASSERT_NE(rig.adaptive, nullptr);
    WorkloadSpec spec;
    spec.ops_per_reader = 40;
    spec.ops_per_writer = 20;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
    driver.start();
    rig.sim.run_until_idle();
    ASSERT_TRUE(driver.done()) << "seed " << seed;

    const History h = rig.rec.snapshot();
    const AdaptiveStats s = rig.adaptive->stats();
    EXPECT_EQ(s.reads, h.completed_reads()) << "seed " << seed;
    // Exact reconciliation, side 1: every object of every completed READ
    // resolved through the cache consult exactly once.
    EXPECT_EQ(s.cache_hits + s.cache_misses, total_read_objects(h)) << "seed " << seed;
    // Side 2: every miss was then resolved by exactly one fetch path.
    EXPECT_EQ(s.cache_misses, s.prefetch_resolved + s.round2_objects) << "seed " << seed;
    // Failure-free runs never invalidate.
    EXPECT_EQ(s.cache_invalidations, 0u) << "seed " << seed;
    // The invariant's teeth: hits never produced a stale read.
    const auto verdict = check_tag_order(h);
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.explanation;
  }
}

TEST(AdaptiveCacheProperty, HitServedOnlyWhileTheAnchorProofHolds) {
  Rig rig(2);
  ASSERT_NE(rig.adaptive, nullptr);
  write_now(rig, 0, {{0, 1}, {1, 2}});
  (void)read_now(rig, 0, {0, 1});
  ASSERT_EQ(rig.adaptive->stats().cache_hits, 0u);

  // Proof holds for both objects: both hit.
  (void)read_now(rig, 0, {0, 1});
  EXPECT_EQ(rig.adaptive->stats().cache_hits, 2u);

  // A write to object 0 moves latest[0]; its cached key no longer anchors.
  write_now(rig, 0, {{0, 3}});
  const ReadResult r = read_now(rig, 0, {0, 1});
  EXPECT_EQ(r.values[0].second, 3);
  EXPECT_EQ(r.values[1].second, 2);
  const AdaptiveStats s = rig.adaptive->stats();
  EXPECT_EQ(s.cache_hits, 3u);    // only object 1 hit in the third read
  EXPECT_EQ(s.cache_misses, 3u);  // first read (2) + object 0 re-proof failure
}

TEST(AdaptiveCacheProperty, CacheNeverSurvivesATakeoverEpochBump) {
  AdaptiveOptions opts;
  opts.replicas = 2;
  Rig rig(2, 1, 1, /*seed=*/1, opts);
  ASSERT_NE(rig.adaptive, nullptr);
  rig.sim.start();
  write_now(rig, 0, {{0, 5}, {1, 6}});
  (void)read_now(rig, 0, {0, 1});  // populates both cache entries
  (void)read_now(rig, 0, {0, 1});
  ASSERT_EQ(rig.adaptive->stats().cache_hits, 2u);
  ASSERT_EQ(rig.adaptive->stats().cache_invalidations, 0u);

  // Kill the shard-0 primary (the coordinator).  The backup takes over and
  // its TakeoverNotice epoch bump must wipe the whole cache.
  ASSERT_TRUE(rig.sim.can_crash(0));
  rig.sim.crash(0);
  rig.sim.run_until_idle();
  const AdaptiveStats after = rig.adaptive->stats();
  EXPECT_EQ(after.cache_invalidations, 2u)
      << "cache entries survived the takeover epoch bump";

  // Post-failover READ rebuilds from the new lineage: all misses, correct
  // values (the backup replicated every acked write).
  const ReadResult r = read_now(rig, 0, {0, 1});
  EXPECT_EQ(r.values[0].second, 5);
  EXPECT_EQ(r.values[1].second, 6);
  const AdaptiveStats s = rig.adaptive->stats();
  EXPECT_EQ(s.cache_hits, 2u) << "a wiped cache still produced a hit";
  const auto verdict = check_tag_order(rig.rec.snapshot());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(AdaptiveCacheProperty, ReconciliationAlsoHoldsWithTheCacheDisabled) {
  // cache=off is the degenerate corner: every object is a miss, and the
  // counters must still balance (guards against hits being counted
  // somewhere the cache_reads gate doesn't cover).
  AdaptiveOptions opts;
  opts.cache_reads = false;
  Rig rig(3, 2, 2, /*seed=*/7, opts);
  ASSERT_NE(rig.adaptive, nullptr);
  WorkloadSpec spec;
  spec.ops_per_reader = 30;
  spec.ops_per_writer = 15;
  spec.read_span = 2;
  spec.seed = 7;
  ClosedLoopDriver driver(rig.sim, *rig.sys, spec);
  driver.start();
  rig.sim.run_until_idle();
  ASSERT_TRUE(driver.done());
  const AdaptiveStats s = rig.adaptive->stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, total_read_objects(rig.rec.snapshot()));
  EXPECT_EQ(s.cache_misses, s.prefetch_resolved + s.round2_objects);
}

}  // namespace
}  // namespace snowkit
