// Scenario "net_loopback": the repo's first TRUE-network datapoint — every
// measured transaction crosses real TCP sockets between real OS processes.
//
// Per protocol line, the scenario deploys the fleet the paper's model
// describes (§2: clients and servers as separate processes over asynchronous
// channels): it writes a fleet file (runtime/fleet.hpp), fork/execs THREE
// `snowkit_server` daemons hosting the server shards on 127.0.0.1, runs the
// client process in-process on a NetRuntime, and drives an OPEN-LOOP
// fixed-rate workload through the unified TxnClient API — unchanged protocol
// code, unchanged driver, snowkit-wire-v1 frames on the wire.
//
// Each protocol is measured TWICE by default: a PACED open-loop run (5k
// arrivals/s, sojourn percentiles — the longitudinal series, comparable
// with every earlier checkin of BENCH_net_loopback.json) and an UNPACED
// closed-loop SATURATION run (64 client nodes, io_threads=2 — the honest
// transport ceiling, the headline datapoint).  `--rate 0` keeps only the
// saturation runs, `--rate R` only a paced run at R ops/s.
//
// JSON records carry wall-clock ops/sec and latency percentiles plus the
// full typed TransportStats snapshot (syscalls, frames/syscall, writev
// bytes, epoll wakeups) as extras — runtime/transport_stats.hpp owns the
// key names, CI's net-smoke jq gates read them.  `ctest -R
// net_loopback_smoke` is the same contract locally.
#include "bench_util.hpp"

#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <thread>

#include "audit/capture.hpp"
#include "runtime/fleet.hpp"

namespace snowkit {
namespace {

using bench::BenchRecord;
using bench::ScenarioOptions;
using bench::ScenarioResult;

#ifdef __linux__

/// The snowkit_server binary next to this executable (same build dir), or
/// $SNOWKIT_SERVER_BIN.
std::string server_binary() {
  if (const char* env = std::getenv("SNOWKIT_SERVER_BIN")) return env;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) throw std::runtime_error("net_loopback: cannot resolve /proc/self/exe");
  const auto candidate = self.parent_path() / "snowkit_server";
  if (!std::filesystem::exists(candidate)) {
    throw std::runtime_error("net_loopback: " + candidate.string() +
                             " not found (build the snowkit_server target, or set "
                             "SNOWKIT_SERVER_BIN)");
  }
  return candidate.string();
}

struct ServerProcs {
  std::vector<pid_t> pids;
  std::string config_path;

  ~ServerProcs() {
    reap(/*grace_ms=*/5000);
    if (!config_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(config_path, ec);
    }
  }

  /// True if any daemon has already exited (it should only exit after the
  /// client's SHUTDOWN broadcast — mid-run this means the fleet is broken).
  bool any_exited() {
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return true;
      }
    }
    return false;
  }

  /// Waits for every daemon to exit; SIGKILLs stragglers past the grace
  /// window.  Returns true iff all exited 0 on their own.
  bool reap(int grace_ms) {
    bool clean = true;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      while (true) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
          clean = clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
          pid = -1;
          break;
        }
        if (r < 0) {  // already reaped / never started
          pid = -1;
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, &status, 0);
          clean = false;
          pid = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    return clean;
  }
};

/// Writes the fleet file and spawns one snowkit_server per server process.
/// A non-empty audit_dir turns on each daemon's flight recorder.
void spawn_servers(const FleetConfig& fleet, ServerProcs& procs, const std::string& audit_dir) {
  const std::string bin = server_binary();
  const auto dir = std::filesystem::temp_directory_path();
  procs.config_path =
      (dir / ("snowkit_fleet_" + std::to_string(::getpid()) + "_" + fleet.protocol + ".cfg"))
          .string();
  {
    std::ofstream f(procs.config_path, std::ios::trunc);
    if (!f) throw std::runtime_error("net_loopback: cannot write " + procs.config_path);
    f << fleet_text(fleet);
  }
  for (std::size_t i = 0; i < fleet.server_processes(); ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("net_loopback: fork failed");
    if (pid == 0) {
      const std::string index = std::to_string(i);
      if (audit_dir.empty()) {
        ::execl(bin.c_str(), bin.c_str(), "--config", procs.config_path.c_str(), "--index",
                index.c_str(), "--quiet", static_cast<char*>(nullptr));
      } else {
        ::execl(bin.c_str(), bin.c_str(), "--config", procs.config_path.c_str(), "--index",
                index.c_str(), "--audit-dir", audit_dir.c_str(), "--quiet",
                static_cast<char*>(nullptr));
      }
      std::perror("execl snowkit_server");
      ::_exit(127);
    }
    procs.pids.push_back(pid);
  }
}

struct NetRun {
  std::uint64_t ops{0};
  double ops_per_sec{0};
  LatencySummary sojourn;
  std::uint64_t wire_messages{0};
  std::uint64_t wire_bytes{0};
  TransportStats net;  ///< the client process's typed transport snapshot.
  std::size_t client_nodes{0};
  bool servers_clean{false};
  bool audit_on{false};
  audit::CaptureStats audit;
};

/// $SNOWKIT_AUDIT_DIR turns on flight-recorder capture for the whole fleet:
/// each daemon AND the client process write snowkit-audit-chunk-v1 files
/// into `<env>/<protocol>` for the offline snowkit_audit pipeline.  The
/// per-protocol subdir is wiped first so a retried run can't interleave its
/// chunks with a failed attempt's.
std::string audit_dir_for(const std::string& protocol) {
  const char* env = std::getenv("SNOWKIT_AUDIT_DIR");
  if (env == nullptr || *env == '\0') return {};
  const auto dir = std::filesystem::path(env) / protocol;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) throw std::runtime_error("net_loopback: cannot create " + dir.string());
  return dir.string();
}

NetRun run_net_protocol(const std::string& protocol, std::size_t readers, std::size_t writers,
                        std::size_t total_ops, const ScenarioOptions& opts, bool saturate) {
  FleetConfig fleet;
  fleet.protocol = protocol;
  fleet.system.num_objects = 4;
  fleet.system.num_readers = readers;
  fleet.system.num_writers = writers;
  fleet.system.num_servers = 3;
  if (saturate) {
    // The saturation runs measure the transport ceiling, so give the
    // transport its parallel configuration: two epoll threads per process.
    // The fleet file carries the setting, so the daemons match the client.
    fleet.transport.io_threads = 2;
  }
  for (const std::uint16_t port : net::pick_free_ports(4)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }
  fleet.validate();

  const std::string audit_dir = audit_dir_for(protocol);

  ServerProcs procs;
  spawn_servers(fleet, procs, audit_dir);

  NetRuntime rt(fleet.net_options(fleet.client_index()));
  WireStats wire;
  std::unique_ptr<audit::AuditCapture> capture;
  if (!audit_dir.empty()) {
    audit::CaptureOptions copts;
    copts.dir = audit_dir;
    copts.process_index = static_cast<std::uint32_t>(fleet.client_index());
    copts.protocol = fleet.protocol;
    copts.num_servers = static_cast<std::uint32_t>(fleet.system.server_count());
    copts.fleet_text = fleet_text(fleet);
    capture = std::make_unique<audit::AuditCapture>(copts, &wire);
    rt.set_observer(capture.get());
  } else {
    rt.set_observer(&wire);
  }
  HistoryRecorder rec(fleet.system.num_objects);
  auto sys = build_protocol(fleet.protocol, rt, rec, fleet.system, fleet.options);
  rt.start();
  if (!rt.wait_connected_for(15'000'000'000ull)) {
    rt.stop();
    throw std::runtime_error("net_loopback: fleet for " + protocol +
                             " did not come up within 15s (server daemons dead?)");
  }

  WorkloadSpec spec;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = opts.seed;
  DriverOptions dopts;
  if (saturate) {
    // Unpaced saturation: every unified client chains its next op off the
    // previous completion, so the fleet runs at the transport's closed-loop
    // ceiling instead of a fixed offered load.  Closed loops have no arrival
    // backlog, hence no sojourn; read latency comes from the history below.
    dopts.mode = ArrivalMode::kClosedLoop;
    dopts.mixed = true;
    const std::size_t clients = readers + writers;
    dopts.ops_per_client = std::max<std::size_t>(1, total_ops / clients);
    total_ops = dopts.ops_per_client * clients;
  } else {
    dopts.mode = ArrivalMode::kOpenLoop;
    dopts.total_ops = total_ops;
    // Default 5k arrivals/s: sustained, not a burst; --rate R repaces it.
    dopts.arrival_interval_ns =
        opts.rate > 0 ? static_cast<TimeNs>(1e9 / opts.rate) : TimeNs{200'000};
  }
  dopts.read_fraction = 0.9;  // the paper's read-dominant regime
  WorkloadDriver driver(rt, *sys, spec, dopts);

  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  // Bounded wait with a daemon liveness probe: a server dying mid-run (or a
  // lost frame) must fail THIS bench loudly, not hang it until the CI job
  // timeout.  Budget: arrival pacing plus a generous completion margin.
  const auto run_deadline =
      t0 +
      std::chrono::nanoseconds(saturate ? TimeNs{0} : dopts.arrival_interval_ns * total_ops) +
      std::chrono::seconds(60);
  while (!driver.done()) {
    if (procs.any_exited()) {
      rt.stop();
      throw std::runtime_error("net_loopback: a snowkit_server daemon for " + protocol +
                               " exited mid-run");
    }
    if (std::chrono::steady_clock::now() > run_deadline) {
      rt.stop();
      throw std::runtime_error("net_loopback: " + protocol + " run stalled (" +
                               std::to_string(driver.completed_reads() +
                                              driver.completed_writes()) +
                               "/" + std::to_string(total_ops) + " ops completed)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto t1 = std::chrono::steady_clock::now();

  rt.broadcast_shutdown();
  rt.stop();  // drains the SHUTDOWN frames to all three daemons

  NetRun out;
  out.ops = driver.completed_reads() + driver.completed_writes();
  out.ops_per_sec = static_cast<double>(out.ops) / std::chrono::duration<double>(t1 - t0).count();
  if (saturate) {
    // Closed loops skip sojourn bookkeeping; report protocol-level READ
    // latency from the history instead so the record still has percentiles.
    out.sojourn = summarize_latency(rec.snapshot(), /*reads=*/true);
  } else {
    out.sojourn = driver.sojourn_latency();
  }
  out.wire_messages = wire.messages();
  out.wire_bytes = wire.bytes();
  out.net = rt.transport_stats();
  for (NodeId id = 0; id < rt.node_count(); ++id) {
    if (rt.owns(id)) ++out.client_nodes;
  }
  out.servers_clean = procs.reap(/*grace_ms=*/5000);
  if (capture) {
    // Sealed last, after the daemons flushed theirs: the client chunk carries
    // the fleet's only History, which the merge step pairs with their rings.
    capture->set_history(rec.snapshot());
    capture->close();
    out.audit_on = true;
    out.audit = capture->stats();
  }
  return out;
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;
  struct Line {
    std::string kind;
    std::size_t readers, writers;
  };
  // Quick mode keeps the CI acceptance pair (algo-c + eiger); the full run
  // adds the floor and the two-round comparator.
  std::vector<Line> lines = {{"algo-c", 2, 2}, {"eiger", 2, 2}};
  if (!opts.quick) {
    lines.push_back({"simple", 2, 2});
    lines.push_back({"algo-b", 2, 2});
  }
  // --protocol can also name a registry protocol outside the default sweep
  // (e.g. broken-stale, to capture a faulty fleet for the audit pipeline).
  if (!opts.protocol.empty()) {
    bool listed = false;
    for (const Line& line : lines) listed = listed || line.kind == opts.protocol;
    if (!listed) lines.push_back({opts.protocol, opts.protocol == "algo-a" ? 1u : 2u, 2});
  }

  // Which modes to run: the default (-1) measures BOTH series per protocol —
  // the paced open-loop run keeps the longitudinal sojourn series alive, the
  // unpaced closed-loop run is the transport-ceiling headline.
  std::vector<bool> modes;  // element: saturate?
  if (opts.rate < 0) {
    modes = {false, true};
  } else if (opts.rate == 0) {
    modes = {true};
  } else {
    modes = {false};
  }

  bench::heading("net_loopback: 3 snowkit_server processes + client over TCP, 90% reads\n"
                 "  paced: open loop (sojourn percentiles)  ·  sat: unpaced closed loop,\n"
                 "  64 clients, io_threads=2 (percentiles = history READ latency)");
  const std::vector<int> widths{14, 6, 8, 12, 12, 12, 12, 12};
  bench::row({"protocol", "mode", "ops", "ops/s", "p50(us)", "p95(us)", "p99(us)", "frames/sc"},
             widths);

  for (const Line& line : lines) {
    if (!opts.wants(line.kind)) continue;
    for (const bool saturate : modes) {
      // Saturation needs a much wider closed loop than the paced arrival
      // run: 64 clients (48 readers + 16 writers) sit at the measured
      // throughput knee — fewer leave the sockets idle between completions,
      // more only queue.  Single-reader protocols (algo-a) keep one reader.
      const std::size_t readers = saturate ? (line.readers == 1 ? 1 : 48) : line.readers;
      const std::size_t writers = saturate ? 16 : line.writers;
      // The saturation probe uses a FIXED op count (mode-independent, like
      // the scalability scenario): it measures the TRANSPORT's closed-loop
      // ceiling, and longer closed loops shift the bottleneck to protocol
      // state under sustained load (48 permanently-in-flight readers hold
      // the GC watermark back, so per-read histories — and server CPU —
      // grow with elapsed writes; ops/s decays ~3x by 45k ops).  Sustained
      // protocol scaling is the scalability scenario's datapoint; this one
      // is the transport's.
      const std::size_t total_ops = saturate ? 15000 : opts.scaled(4000, 10);
      // One retry with fresh kernel-chosen ports: pick_free_ports guarantees
      // distinctness within a fleet, but another process can grab a probed
      // port in the probe-to-bind gap (e.g. parallel ctest runs).
      NetRun r;
      try {
        r = run_net_protocol(line.kind, readers, writers, total_ops, opts, saturate);
      } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "[net_loopback] %s: %s — retrying with fresh ports\n",
                     line.kind.c_str(), e.what());
        r = run_net_protocol(line.kind, readers, writers, total_ops, opts, saturate);
      }

      char ops_s[32], fps[32];
      std::snprintf(ops_s, sizeof ops_s, "%.0f", r.ops_per_sec);
      std::snprintf(fps, sizeof fps, "%.2f", r.net.frames_per_syscall());
      bench::row({line.kind, saturate ? "sat" : "paced", std::to_string(r.ops), ops_s,
                  bench::us(static_cast<double>(r.sojourn.p50_ns)),
                  bench::us(static_cast<double>(r.sojourn.p95_ns)),
                  bench::us(static_cast<double>(r.sojourn.p99_ns)), fps},
                 widths);

      BenchRecord rec;
      rec.protocol = line.kind;
      rec.shards = 3;
      rec.threads = r.client_nodes;  // client-process executors; servers are real processes
      rec.ops = r.ops;
      rec.ops_per_sec = r.ops_per_sec;
      rec.latency(r.sojourn);
      rec.wire_messages = r.wire_messages;
      rec.wire_bytes = r.wire_bytes;
      rec.set("transport", "tcp-loopback");
      rec.set("server_processes", "3");
      rec.set("mode", saturate ? "closed-loop-saturation" : "open-loop");
      // The whole typed transport snapshot rides along; the key names are
      // TransportStats::extras()'s stable contract, not assembled here.
      for (const auto& [k, v] : r.net.extras()) rec.set(k, v);
      rec.set("servers_exited_clean", r.servers_clean ? "true" : "false");
      if (r.audit_on) {
        rec.set("audit_events", std::to_string(r.audit.events));
        rec.set("audit_drops", std::to_string(r.audit.drops));
        rec.set("audit_bytes", std::to_string(r.audit.bytes_written));
        rec.set("audit_chunks", std::to_string(r.audit.chunks));
      }
      result.records.push_back(std::move(rec));
    }
  }
  result.note("transport", "tcp-loopback");
  result.note("fleet", "3 server processes + 1 client process on 127.0.0.1");
  // Saturation numbers are meaningless without the hardware context: the
  // whole fleet (4 processes) shares this machine's cores on loopback.
  result.note("host_cores", std::to_string(std::thread::hardware_concurrency()));
  std::printf("\nshape check: paced sojourn sits above the ThreadRuntime numbers by the\n"
              "loopback syscall + framing cost with protocol ORDER unchanged (fewer rounds\n"
              "-> lower sojourn).  sat ops/s is the transport's closed-loop ceiling; its\n"
              "frames/syscall column > 1 is the write-coalescing win (percentiles there are\n"
              "protocol READ latency — closed loops have no arrival backlog to sojourn in).\n");
  bench::stamp_host_cores(result);
  return result;
}

#else  // !__linux__

ScenarioResult run_scenario(const ScenarioOptions&) {
  std::printf("net_loopback: TCP transport requires Linux (epoll); skipping.\n");
  return {};
}

#endif

const bench::ScenarioRegistration kReg{
    "net_loopback",
    "3 snowkit_server processes + client over loopback TCP; the first true-network datapoint",
    run_scenario};

}  // namespace
}  // namespace snowkit
