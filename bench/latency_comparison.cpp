// Scenario "latency": READ-transaction latency versus the simple-read floor
// (paper §1).
//
// The paper's motivation: reads dominate (Facebook TAO reports 500 reads per
// write), so READ-transaction latency must match simple reads.  Two parts:
//
//  1. closed-loop 500:1 mix over a simulated datacenter network (50us..2ms
//     per hop, heavy-tailed): per-protocol read latency, rounds, guarantee.
//     Expected shape: A ~ C ~ simple (one round), B ~ 2x, blocking worst.
//  2. open-loop fixed-rate arrivals per protocol: client-perceived SOJOURN
//     latency (arrival->completion including backlog) — these rows are the
//     JSON records, since sojourn under load is the honest number.
#include "bench_util.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

struct Line {
  const char* name;
  std::string kind;
  std::size_t readers;
  std::size_t writers;
  const char* guarantee;
};

const std::vector<Line>& lines() {
  static const std::vector<Line> kLines = {
      {"simple", "simple", 2, 1, "none (floor)"},
      {"algo-a", "algo-a", 1, 2, "strict serializability"},
      {"algo-b", "algo-b", 2, 2, "strict serializability"},
      {"algo-c", "algo-c", 2, 2, "strict serializability"},
      {"occ-reads", "occ-reads", 2, 2, "strict serializability"},
      {"eiger", "eiger", 2, 2, "NOT strict (see fig5_eiger)"},
      {"blocking-2pl", "blocking-2pl", 2, 2, "strict serializability"},
  };
  return kLines;
}

void print_closed_loop_table(const ScenarioOptions& opts) {
  bench::heading("READ latency vs the simple-read floor (500:1 read:write, 4 shards)");
  const std::vector<int> widths{14, 9, 10, 10, 10, 8, 26};
  bench::row({"protocol", "rounds", "p50(us)", "p99(us)", "mean(us)", "N holds", "guarantee"},
             widths);
  double floor_p50 = 0;
  for (const Line& line : lines()) {
    if (!opts.wants(line.kind) && line.kind != "simple") continue;  // keep the floor row
    WorkloadSpec spec;
    spec.ops_per_reader = opts.scaled(500);
    spec.ops_per_writer = 1 + opts.scaled(500) / 500;
    spec.read_span = 3;
    spec.write_span = 2;
    spec.zipf_theta = 0.9;
    spec.seed = 42;
    auto r = bench::run_sim_workload(line.kind, Topology{4, line.readers, line.writers}, spec, 42);
    if (line.kind == "simple") floor_p50 = static_cast<double>(r.read_latency.p50_ns);
    bench::row({line.name, std::to_string(r.snow.max_read_rounds),
                bench::us(static_cast<double>(r.read_latency.p50_ns)),
                bench::us(static_cast<double>(r.read_latency.p99_ns)),
                bench::us(r.read_latency.mean_ns), bench::yesno(r.snow.satisfies_n()),
                line.guarantee},
               widths);
  }
  std::printf("\nshape check (paper §1/§2): one-round protocols (algo-a, algo-c) match the\n"
              "simple-read floor (p50 ratio ~1x of %.1fus); algo-b pays ~2x (two rounds);\n"
              "blocking-2pl pays multi-round + lock waits.  Latency-optimal + strongest\n"
              "guarantees together only where the SNOW theorem permits.\n",
              floor_p50 / 1000.0);
}

void run_open_loop_rows(const ScenarioOptions& opts, ScenarioResult& result) {
  bench::heading("open-loop sojourn latency (fixed arrivals, 90% reads, 4 shards)");
  const std::vector<int> widths{14, 8, 12, 12, 12, 14};
  bench::row({"protocol", "ops", "p50(us)", "p95(us)", "p99(us)", "bytes/txn"}, widths);
  for (const Line& line : lines()) {
    if (!opts.wants(line.kind)) continue;
    WorkloadSpec spec;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = opts.seed;
    DriverOptions dopts;
    dopts.mode = ArrivalMode::kOpenLoop;
    dopts.total_ops = opts.scaled(400, 4);
    dopts.arrival_interval_ns = 2'000'000;  // 500 ops/s: below fleet capacity,
                                            // so sojourn measures a stable queue
    dopts.read_fraction = 0.9;
    auto r = bench::run_sim_workload(line.kind, Topology{4, line.readers, line.writers}, spec,
                                     opts.seed, {}, dopts);
    auto rec = bench::sim_record(line.kind, Topology{4, line.readers, line.writers}, r,
                                 r.sojourn_latency);
    rec.set("guarantee", line.guarantee);
    rec.set("max_read_rounds", std::to_string(r.snow.max_read_rounds));
    bench::row({line.kind, std::to_string(rec.ops),
                bench::us(static_cast<double>(r.sojourn_latency.p50_ns)),
                bench::us(static_cast<double>(r.sojourn_latency.p95_ns)),
                bench::us(static_cast<double>(r.sojourn_latency.p99_ns)),
                std::to_string(rec.ops == 0 ? 0 : rec.wire_bytes / rec.ops)},
               widths);
    result.records.push_back(std::move(rec));
  }
}

void print_contention_sensitivity(const ScenarioOptions& opts) {
  bench::heading("blocking reads vs write contention (why non-blocking matters)");
  const std::vector<int> widths{14, 12, 12, 12};
  bench::row({"protocol", "writers", "p50(us)", "p99(us)"}, widths);
  for (std::size_t writers : {1, 4, 8}) {
    for (const std::string kind : {"blocking-2pl", "algo-b"}) {
      WorkloadSpec spec;
      spec.ops_per_reader = opts.scaled(200);
      spec.ops_per_writer = opts.scaled(100);
      spec.read_span = 2;
      spec.write_span = 2;
      spec.seed = 7;
      auto r = bench::run_sim_workload(kind, Topology{2, 2, writers}, spec, 7);
      bench::row({kind, std::to_string(writers),
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  bench::us(static_cast<double>(r.read_latency.p99_ns))},
                 widths);
    }
  }
  std::printf("\nshape check: blocking read tails grow with writer count; algo-b's stay flat\n"
              "(non-blocking servers answer immediately regardless of concurrent WRITEs).\n");
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;
  print_closed_loop_table(opts);
  run_open_loop_rows(opts, result);
  if (!opts.quick && opts.protocol.empty()) print_contention_sensitivity(opts);
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "latency",
    "per-protocol READ latency vs the simple-read floor; open-loop sojourn rows feed the JSON",
    run_scenario};

}  // namespace
}  // namespace snowkit
