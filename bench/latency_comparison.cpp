// E9: READ-transaction latency versus the simple-read floor (paper §1).
//
// The paper's motivation: reads dominate (Facebook TAO reports 500 reads per
// write), so READ-transaction latency must match simple reads.  This bench
// runs a 500:1 read:write mix over a simulated datacenter network
// (50us..2ms per hop, heavy-tailed) and reports per-protocol read latency,
// rounds, and the guarantee actually delivered.  Expected shape: A ~ C ~
// simple (one round), B ~ 2x, blocking worst and contention-sensitive.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace snowkit {
namespace {

struct Line {
  const char* name;
  std::string kind;
  std::size_t readers;
  std::size_t writers;
  const char* guarantee;
};

void print_table() {
  bench::heading("READ latency vs the simple-read floor (500:1 read:write, 4 shards)");
  const std::vector<int> widths{14, 9, 10, 10, 10, 8, 26};
  bench::row({"protocol", "rounds", "p50(us)", "p99(us)", "mean(us)", "N holds", "guarantee"},
             widths);

  const Line lines[] = {
      {"simple", "simple", 2, 1, "none (floor)"},
      {"algo-a", "algo-a", 1, 2, "strict serializability"},
      {"algo-b", "algo-b", 2, 2, "strict serializability"},
      {"algo-c", "algo-c", 2, 2, "strict serializability"},
      {"occ-reads", "occ-reads", 2, 2, "strict serializability"},
      {"eiger", "eiger", 2, 2, "NOT strict (see fig5)"},
      {"blocking-2pl", "blocking-2pl", 2, 2, "strict serializability"},
  };

  double floor_p50 = 0;
  for (const Line& line : lines) {
    WorkloadSpec spec;
    spec.ops_per_reader = 500;
    spec.ops_per_writer = 1 + 500 / 500;  // ~500:1 with the reader count
    spec.read_span = 3;
    spec.write_span = 2;
    spec.zipf_theta = 0.9;
    spec.seed = 42;
    auto r = bench::run_sim_workload(line.kind, Topology{4, line.readers, line.writers}, spec, 42);
    if (line.kind == "simple") floor_p50 = static_cast<double>(r.read_latency.p50_ns);
    bench::row({line.name, std::to_string(r.snow.max_read_rounds),
                bench::us(static_cast<double>(r.read_latency.p50_ns)),
                bench::us(static_cast<double>(r.read_latency.p99_ns)),
                bench::us(r.read_latency.mean_ns), bench::yesno(r.snow.satisfies_n()),
                line.guarantee},
               widths);
  }
  std::printf("\nshape check (paper §1/§2): one-round protocols (algo-a, algo-c) match the\n"
              "simple-read floor (p50 ratio ~1x of %.1fus); algo-b pays ~2x (two rounds);\n"
              "blocking-2pl pays multi-round + lock waits.  Latency-optimal + strongest\n"
              "guarantees together only where the SNOW theorem permits.\n",
              floor_p50 / 1000.0);
}

void print_contention_sensitivity() {
  bench::heading("blocking reads vs write contention (why non-blocking matters)");
  const std::vector<int> widths{14, 12, 12, 12};
  bench::row({"protocol", "writers", "p50(us)", "p99(us)"}, widths);
  for (std::size_t writers : {1, 4, 8}) {
    for (const std::string kind : {"blocking-2pl", "algo-b"}) {
      WorkloadSpec spec;
      spec.ops_per_reader = 200;
      spec.ops_per_writer = 100;
      spec.read_span = 2;
      spec.write_span = 2;
      spec.seed = 7;
      auto r = bench::run_sim_workload(kind, Topology{2, 2, writers}, spec, 7);
      bench::row({kind, std::to_string(writers),
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  bench::us(static_cast<double>(r.read_latency.p99_ns))},
                 widths);
    }
  }
  std::printf("\nshape check: blocking read tails grow with writer count; algo-b's stay flat\n"
              "(non-blocking servers answer immediately regardless of concurrent WRITEs).\n");
}

const char* const kBmProtocols[] = {"algo-b", "algo-c", "simple"};

void BM_SimReadLatency(benchmark::State& state) {
  const std::string kind = kBmProtocols[state.range(0)];
  for (auto _ : state) {
    WorkloadSpec spec;
    spec.ops_per_reader = 100;
    spec.ops_per_writer = 10;
    spec.seed = 5;
    auto r = bench::run_sim_workload(kind, Topology{4, 2, 2}, spec, 5);
    state.counters["read_p50_us"] = static_cast<double>(r.read_latency.p50_ns) / 1000.0;
    benchmark::DoNotOptimize(r.read_latency.count);
  }
}
BENCHMARK(BM_SimReadLatency)
    ->Arg(0)   // algo-b
    ->Arg(1)   // algo-c
    ->Arg(2);  // simple

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_table();
  snowkit::print_contention_sensitivity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
