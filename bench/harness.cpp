#include "harness.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace snowkit::bench {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* reg = new ScenarioRegistry();
  return *reg;
}

void ScenarioRegistry::add(std::string name, std::string summary, ScenarioFn fn) {
  if (entries_.count(name) != 0) {
    throw std::logic_error("duplicate bench scenario: " + name);
  }
  entries_.emplace(std::move(name), Entry{std::move(summary), std::move(fn)});
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const ScenarioRegistry::Entry& ScenarioRegistry::lookup(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string msg = "unknown bench scenario \"" + name + "\"; registered:";
    for (const auto& n : names()) msg += " " + n;
    throw std::invalid_argument(msg);
  }
  return it->second;
}

const std::string& ScenarioRegistry::summary(const std::string& name) const {
  return lookup(name).summary;
}

ScenarioResult ScenarioRegistry::run(const std::string& name, const ScenarioOptions& opts) const {
  return lookup(name).fn(opts);
}

ScenarioRegistration::ScenarioRegistration(std::string name, std::string summary, ScenarioFn fn) {
  ScenarioRegistry::global().add(std::move(name), std::move(summary), std::move(fn));
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void append_string_map(std::string& out,
                       const std::vector<std::pair<std::string, std::string>>& kv) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  out += "}";
}

bool has_host_cores(const BenchRecord& r) {
  return std::any_of(r.extra.begin(), r.extra.end(),
                     [](const auto& kv) { return kv.first == "host_cores"; });
}

}  // namespace

std::string host_cores_string() {
  return std::to_string(std::thread::hardware_concurrency());
}

void stamp_host_cores(ScenarioResult& result) {
  const std::string cores = host_cores_string();
  for (BenchRecord& r : result.records) {
    if (!has_host_cores(r)) r.set("host_cores", cores);
  }
}

std::string bench_json(const std::string& scenario, const ScenarioOptions& opts,
                       const ScenarioResult& result) {
  for (const BenchRecord& r : result.records) {
    if (!has_host_cores(r)) {
      throw std::runtime_error("bench record \"" + r.protocol + "\" in scenario \"" + scenario +
                               "\" carries no host_cores stamp — call "
                               "bench::stamp_host_cores(result) before returning");
    }
  }
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"snowkit-bench-v1\",\n";
  out += "  \"scenario\": \"" + json_escape(scenario) + "\",\n";
  out += std::string("  \"quick\": ") + (opts.quick ? "true" : "false") + ",\n";
  out += "  \"seed\": " + std::to_string(opts.seed) + ",\n";
  out += "  \"protocol_filter\": \"" + json_escape(opts.protocol) + "\",\n";
  out += "  \"notes\": ";
  append_string_map(out, result.notes);
  out += ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const BenchRecord& r = result.records[i];
    out += "    {";
    out += "\"protocol\": \"" + json_escape(r.protocol) + "\", ";
    out += "\"shards\": " + std::to_string(r.shards) + ", ";
    out += "\"threads\": " + std::to_string(r.threads) + ", ";
    out += "\"ops\": " + std::to_string(r.ops) + ", ";
    out += "\"ops_per_sec\": " + num(r.ops_per_sec) + ", ";
    // Scenarios that measure no latency emit null, not a bogus 0.000.
    const auto sojourn = [&](double v) { return r.has_sojourn ? num(v) : std::string("null"); };
    out += "\"sojourn_p50_us\": " + sojourn(r.sojourn_p50_us) + ", ";
    out += "\"sojourn_p95_us\": " + sojourn(r.sojourn_p95_us) + ", ";
    out += "\"sojourn_p99_us\": " + sojourn(r.sojourn_p99_us) + ", ";
    out += "\"wire_messages\": " + std::to_string(r.wire_messages) + ", ";
    out += "\"wire_bytes\": " + std::to_string(r.wire_bytes) + ", ";
    out += "\"extra\": ";
    append_string_map(out, r.extra);
    out += i + 1 < result.records.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string write_bench_json(const std::string& out_dir, const std::string& scenario,
                             const ScenarioOptions& opts, const ScenarioResult& result) {
  const std::string dir = out_dir.empty() ? std::string(".") : out_dir;
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_" + scenario + ".json";
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << bench_json(scenario, opts, result);
  f.close();
  if (!f) throw std::runtime_error("short write to " + path);
  return path;
}

}  // namespace snowkit::bench
