// Scenario "skew": the million-client scenario engine under skewed,
// churning, adversarial production traffic — the paper's protocols where
// they actually diverge.
//
// Part 1 sweeps a theta x read-fraction grid (Zipfian hot-key popularity x
// read/write mix) over algo-b / algo-c / eiger on ThreadRuntime.  Arrivals
// come from the TrafficModel engine: 10^6 LOGICAL clients (stream
// identities, not threads) emulated as 4 sharded absolute-deadline arrival
// processes, hash-permuted rank->object map (the hot-shard fix: the grid
// runs RANGE placement, where an identity map would alias every hot rank
// onto shard 0 and measure placement, not protocol), geometric multi-get
// spans, paced at a fixed offered load.  Per-record percentiles are SOJOURN
// (intended arrival -> completion, backlog included), so under write-heavy
// skew the extra queueing each protocol's read path induces is charged
// honestly — that is where algo-b (2-round reads, 1 version) and algo-c
// (1-round reads, <=|W| versions) visibly separate, per the SNOW tradeoff.
//
// Part 2 runs the same engine over a REAL fleet: 3 snowkit_server processes
// on loopback TCP, with core/churn.hpp cycling slow-reader stalls, link
// drops and garbage pre-HELLO connects mid-run.  The record proves the
// fleet reconnects (tcp_reconnects > 0), the pacing survives churn
// (achieved vs nominal rate), and no acknowledged write is lost (the churn
// e2e test asserts that; the bench records the transport's side).
//
// One extra record replays algo-c under a piecewise diurnal RateCurve —
// plateau / peak / trough — exercising time-varying offered load.
#include "bench_util.hpp"

#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/churn.hpp"
#include "metrics/wire_stats.hpp"
#include "runtime/fleet.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

using bench::BenchRecord;
using bench::ScenarioOptions;
using bench::ScenarioResult;

constexpr std::size_t kObjects = 64;
constexpr std::size_t kServers = 4;
constexpr std::size_t kReaders = 4;
constexpr std::size_t kWriters = 4;
constexpr std::uint64_t kLogicalClients = 1'000'000;
constexpr std::size_t kArrivalShards = 4;

TrafficModel make_model(double theta, double read_fraction) {
  TrafficModel model;
  model.zipf_theta = theta;
  model.permute_ranks = true;  // hot-shard fix ON for every engine run here
  model.read_fraction = read_fraction;
  model.read_span = SpanDist{SpanKind::kGeometric, 1, 4, 0.5};
  model.write_span = SpanDist::fixed(2);
  model.logical_clients = kLogicalClients;
  return model;
}

struct CellRun {
  std::uint64_t ops{0};
  double ops_per_sec{0};
  double nominal_rate{0};
  double achieved_rate{0};
  LatencySummary sojourn;
  std::uint64_t wire_messages{0};
  std::uint64_t wire_bytes{0};
  int read_versions{0};
  int read_rounds{0};
};

/// One grid cell: paced engine-mode open loop on ThreadRuntime.
CellRun run_cell(const std::string& kind, const TrafficModel& model, std::size_t total_ops,
                 TimeNs interval_ns, std::uint64_t seed) {
  ThreadRuntime rt;
  WireStats wire;
  rt.set_observer(&wire);
  HistoryRecorder rec(kObjects);
  SystemConfig cfg;
  cfg.num_objects = kObjects;
  cfg.num_readers = kReaders;
  cfg.num_writers = kWriters;
  cfg.num_servers = kServers;
  // Range placement on purpose: this is the layout where the identity
  // rank->object map aliases the Zipf head onto shard 0 (the bug the
  // permutation fixes); with permute_ranks the hot keys scatter.
  cfg.placement = PlacementKind::kRange;
  auto sys = build_protocol(kind, rt, rec, cfg);
  rt.start();
  WorkloadSpec spec;
  spec.seed = seed;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.total_ops = total_ops;
  opts.arrival_interval_ns = interval_ns;
  opts.traffic = model;
  opts.arrival_shards = kArrivalShards;
  WorkloadDriver driver(rt, *sys, spec, opts);
  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  driver.wait();
  const auto t1 = std::chrono::steady_clock::now();
  rt.stop();

  CellRun out;
  out.ops = driver.completed_reads() + driver.completed_writes();
  out.ops_per_sec = static_cast<double>(out.ops) / std::chrono::duration<double>(t1 - t0).count();
  out.nominal_rate = 1e9 / static_cast<double>(interval_ns);
  out.achieved_rate = driver.achieved_arrival_rate();
  out.sojourn = driver.sojourn_latency();
  out.wire_messages = wire.messages();
  out.wire_bytes = wire.bytes();
  const History h = rec.snapshot();
  out.read_versions = max_read_versions(h);
  out.read_rounds = max_read_rounds(h);
  return out;
}

std::string fmt(double v, const char* spec = "%.2f") {
  char buf[48];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

BenchRecord cell_record(const std::string& kind, double theta, double read_fraction,
                        const CellRun& r) {
  BenchRecord rec;
  rec.protocol = kind;
  rec.shards = kServers;
  rec.threads = kServers + kReaders + kWriters;
  rec.ops = r.ops;
  rec.ops_per_sec = r.ops_per_sec;
  rec.latency(r.sojourn);
  rec.wire_messages = r.wire_messages;
  rec.wire_bytes = r.wire_bytes;
  rec.set("mode", "engine-grid");
  rec.set("zipf_theta", fmt(theta));
  rec.set("read_fraction", fmt(read_fraction));
  rec.set("nominal_rate", fmt(r.nominal_rate, "%.0f"));
  rec.set("achieved_rate", fmt(r.achieved_rate, "%.0f"));
  rec.set("logical_clients", std::to_string(kLogicalClients));
  rec.set("arrival_shards", std::to_string(kArrivalShards));
  rec.set("permute_ranks", "true");
  rec.set("placement", "range");
  rec.set("max_read_versions", std::to_string(r.read_versions));
  rec.set("max_read_rounds", std::to_string(r.read_rounds));
  return rec;
}

#ifdef __linux__

// --- churn over a real TCP fleet (net_loopback's daemon-spawn idiom) ---------

std::string server_binary() {
  if (const char* env = std::getenv("SNOWKIT_SERVER_BIN")) return env;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) throw std::runtime_error("skew: cannot resolve /proc/self/exe");
  const auto candidate = self.parent_path() / "snowkit_server";
  if (!std::filesystem::exists(candidate)) {
    throw std::runtime_error("skew: " + candidate.string() +
                             " not found (build snowkit_server or set SNOWKIT_SERVER_BIN)");
  }
  return candidate.string();
}

struct ServerProcs {
  std::vector<pid_t> pids;
  std::string config_path;

  ~ServerProcs() {
    reap(5000);
    if (!config_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(config_path, ec);
    }
  }

  bool any_exited() {
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return true;
      }
    }
    return false;
  }

  bool reap(int grace_ms) {
    bool clean = true;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      while (true) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
          clean = clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
          pid = -1;
          break;
        }
        if (r < 0) {
          pid = -1;
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, &status, 0);
          clean = false;
          pid = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    return clean;
  }
};

struct ChurnRun {
  std::uint64_t ops{0};
  double ops_per_sec{0};
  double nominal_rate{0};
  double achieved_rate{0};
  LatencySummary sojourn;
  TransportStats net;
  ChurnReport churn;
  bool servers_clean{false};
};

ChurnRun run_churn_fleet(const std::string& protocol, std::size_t total_ops, TimeNs interval_ns,
                         std::uint64_t seed) {
  FleetConfig fleet;
  fleet.protocol = protocol;
  fleet.system.num_objects = 8;
  fleet.system.num_readers = 2;
  fleet.system.num_writers = 2;
  fleet.system.num_servers = 3;
  for (const std::uint16_t port : net::pick_free_ports(4)) {
    fleet.processes.push_back({"127.0.0.1", port});
  }
  fleet.validate();

  ServerProcs procs;
  const std::string bin = server_binary();
  const auto dir = std::filesystem::temp_directory_path();
  procs.config_path =
      (dir / ("snowkit_skew_fleet_" + std::to_string(::getpid()) + ".cfg")).string();
  {
    std::ofstream f(procs.config_path, std::ios::trunc);
    if (!f) throw std::runtime_error("skew: cannot write " + procs.config_path);
    f << fleet_text(fleet);
  }
  for (std::size_t i = 0; i < fleet.server_processes(); ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("skew: fork failed");
    if (pid == 0) {
      const std::string index = std::to_string(i);
      ::execl(bin.c_str(), bin.c_str(), "--config", procs.config_path.c_str(), "--index",
              index.c_str(), "--quiet", static_cast<char*>(nullptr));
      std::perror("execl snowkit_server");
      ::_exit(127);
    }
    procs.pids.push_back(pid);
  }

  NetRuntime rt(fleet.net_options(fleet.client_index()));
  HistoryRecorder rec(fleet.system.num_objects);
  auto sys = build_protocol(fleet.protocol, rt, rec, fleet.system, fleet.options);
  rt.start();
  if (!rt.wait_connected_for(15'000'000'000ull)) {
    rt.stop();
    throw std::runtime_error("skew: churn fleet did not come up within 15s");
  }

  WorkloadSpec spec;
  spec.seed = seed;
  DriverOptions dopts;
  dopts.mode = ArrivalMode::kOpenLoop;
  dopts.total_ops = total_ops;
  dopts.arrival_interval_ns = interval_ns;
  dopts.traffic = make_model(/*theta=*/0.9, /*read_fraction=*/0.5);
  dopts.arrival_shards = 2;
  WorkloadDriver driver(rt, *sys, spec, dopts);

  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ChurnOptions copts;
  copts.cycles = 2;
  copts.stall_ns = 20'000'000;
  copts.settle_ns = 50'000'000;
  const ChurnReport churn = run_churn(rt, driver, copts);

  const auto run_deadline = t0 +
                            std::chrono::nanoseconds(interval_ns * total_ops) +
                            std::chrono::seconds(60);
  while (!driver.done()) {
    if (procs.any_exited()) {
      rt.stop();
      throw std::runtime_error("skew: a snowkit_server daemon exited mid-run");
    }
    if (std::chrono::steady_clock::now() > run_deadline) {
      rt.stop();
      throw std::runtime_error("skew: churn run stalled");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto t1 = std::chrono::steady_clock::now();

  rt.broadcast_shutdown();
  rt.stop();

  ChurnRun out;
  out.ops = driver.completed_reads() + driver.completed_writes();
  out.ops_per_sec = static_cast<double>(out.ops) / std::chrono::duration<double>(t1 - t0).count();
  out.nominal_rate = 1e9 / static_cast<double>(interval_ns);
  out.achieved_rate = driver.achieved_arrival_rate();
  out.sojourn = driver.sojourn_latency();
  out.net = rt.transport_stats();
  out.churn = churn;
  out.servers_clean = procs.reap(5000);
  return out;
}

#endif  // __linux__

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;

  const std::vector<double> thetas = opts.quick ? std::vector<double>{0.0, 0.99}
                                                : std::vector<double>{0.0, 0.9, 0.99};
  const std::vector<double> mixes = opts.quick ? std::vector<double>{0.9, 0.1}
                                               : std::vector<double>{0.9, 0.5, 0.1};
  const std::vector<std::string> kinds = {"algo-b", "algo-c", "eiger"};
  const std::size_t total_ops = opts.scaled(2000, 5);
  const TimeNs interval_ns =
      opts.rate > 0 ? static_cast<TimeNs>(1e9 / opts.rate) : TimeNs{500'000};  // 2000 ops/s

  bench::heading(
      "skew grid: 10^6 logical clients, 4 pacing shards, permuted ranks over range\n"
      "  placement; percentiles are SOJOURN (intended arrival -> completion)");
  const std::vector<int> widths{10, 8, 8, 10, 10, 12, 12, 12, 10};
  bench::row({"protocol", "theta", "rdfrac", "ops", "ach/s", "p50(us)", "p95(us)", "p99(us)",
              "maxver"},
             widths);

  // Discarded warmup (thread spawn, allocator, zeta cache fill): the first
  // recorded cell must not carry process-startup noise in its tail.
  run_cell("algo-b", make_model(0.9, 0.5), std::max<std::size_t>(50, total_ops / 10),
           interval_ns, opts.seed);

  // p99 per (kind, theta, mix) for the separation note below.
  std::map<std::string, double> p99;
  for (const double theta : thetas) {
    for (const double mix : mixes) {
      for (const std::string& kind : kinds) {
        if (!opts.wants(kind)) continue;
        const CellRun r = run_cell(kind, make_model(theta, mix), total_ops, interval_ns,
                                   opts.seed + 100 * static_cast<std::uint64_t>(theta * 100) +
                                       static_cast<std::uint64_t>(mix * 100));
        bench::row({kind, fmt(theta), fmt(mix), std::to_string(r.ops),
                    fmt(r.achieved_rate, "%.0f"),
                    bench::us(static_cast<double>(r.sojourn.p50_ns)),
                    bench::us(static_cast<double>(r.sojourn.p95_ns)),
                    bench::us(static_cast<double>(r.sojourn.p99_ns)),
                    std::to_string(r.read_versions)},
                   widths);
        p99[kind + "/" + fmt(theta) + "/" + fmt(mix)] =
            static_cast<double>(r.sojourn.p99_ns);
        result.records.push_back(cell_record(kind, theta, mix, r));
      }
    }
  }

  // The SNOW-tradeoff separation: in the most write-heavy mix, how much does
  // the algo-b : algo-c p99 ratio GROW from the uniform cell to the most
  // skewed cell?  >= 1.5 (or an ordering flip) is the acceptance bar — skew
  // must change the comparison, not just scale both curves.
  if (opts.protocol.empty()) {
    const std::string mix = fmt(mixes.back());
    const double uni_b = p99["algo-b/" + fmt(0.0) + "/" + mix];
    const double uni_c = p99["algo-c/" + fmt(0.0) + "/" + mix];
    const double skew_b = p99["algo-b/" + fmt(thetas.back()) + "/" + mix];
    const double skew_c = p99["algo-c/" + fmt(thetas.back()) + "/" + mix];
    if (uni_b > 0 && uni_c > 0 && skew_b > 0 && skew_c > 0) {
      const double uniform_ratio = uni_b / uni_c;
      const double skew_ratio = skew_b / skew_c;
      result.note("skew_p99_ratio_uniform", fmt(uniform_ratio));
      result.note("skew_p99_ratio_skewed", fmt(skew_ratio));
      result.note("skew_separation_x", fmt(skew_ratio / uniform_ratio));
      result.note("skew_ordering_flip",
                  (uniform_ratio - 1.0) * (skew_ratio - 1.0) < 0 ? "true" : "false");
      std::printf("\nwrite-heavy mix %s: p99(algo-b)/p99(algo-c) = %.2f uniform -> %.2f at "
                  "theta=%.2f (separation %.2fx)\n",
                  mix.c_str(), uniform_ratio, skew_ratio, thetas.back(),
                  skew_ratio / uniform_ratio);
    }
  }

  // Diurnal rate curve: one algo-c run whose offered load steps through
  // plateau / peak / trough each second of the cycle.
  if (opts.wants("algo-c")) {
    TrafficModel model = make_model(0.9, 0.9);
    model.rate.segments = {{2000.0, 1'000'000'000}, {4000.0, 500'000'000},
                          {500.0, 500'000'000}};
    const CellRun r = run_cell("algo-c", model, total_ops, interval_ns, opts.seed + 7);
    BenchRecord rec = cell_record("algo-c", 0.9, 0.9, r);
    rec.extra.erase(rec.extra.begin());  // replace mode=engine-grid
    rec.extra.insert(rec.extra.begin(), {"mode", "engine-diurnal"});
    rec.set("rate_curve", "2000x1s,4000x0.5s,500x0.5s");
    result.records.push_back(std::move(rec));
    std::printf("diurnal algo-c: achieved %.0f arrivals/s across the 2000/4000/500 curve\n",
                r.achieved_rate);
  }

#ifdef __linux__
  // Churn over the real fleet — runs in --quick too (CI gates on it).
  if (opts.protocol.empty() || opts.protocol == "algo-b") {
    ChurnRun r;
    try {
      r = run_churn_fleet("algo-b", opts.scaled(2000, 5), TimeNs{500'000}, opts.seed + 13);
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "[skew] churn fleet: %s — retrying with fresh ports\n", e.what());
      r = run_churn_fleet("algo-b", opts.scaled(2000, 5), TimeNs{500'000}, opts.seed + 13);
    }
    std::printf("churn fleet: %zu cycles, %zu drops, %zu pre-HELLO probes; "
                "%llu reconnects on the client side; achieved %.0f of %.0f arrivals/s\n",
                r.churn.cycles_run, r.churn.drops_requested, r.churn.prehello_probes,
                static_cast<unsigned long long>(r.net.reconnects), r.achieved_rate,
                r.nominal_rate);
    BenchRecord rec;
    rec.protocol = "algo-b";
    rec.shards = 3;
    rec.ops = r.ops;
    rec.ops_per_sec = r.ops_per_sec;
    rec.latency(r.sojourn);
    rec.set("mode", "churn");
    rec.set("transport", "tcp-loopback");
    rec.set("server_processes", "3");
    rec.set("nominal_rate", fmt(r.nominal_rate, "%.0f"));
    rec.set("achieved_rate", fmt(r.achieved_rate, "%.0f"));
    rec.set("churn_cycles", std::to_string(r.churn.cycles_run));
    rec.set("churn_link_drops", std::to_string(r.churn.drops_requested));
    rec.set("churn_prehello_probes", std::to_string(r.churn.prehello_probes));
    rec.set("churn_clean", r.churn.clean() ? "true" : "false");
    for (const auto& [k, v] : r.net.extras()) rec.set(k, v);
    rec.set("servers_exited_clean", r.servers_clean ? "true" : "false");
    result.records.push_back(std::move(rec));
    result.note("churn_reconnects", std::to_string(r.net.reconnects));
  }
#endif

  result.note("logical_clients", std::to_string(kLogicalClients));
  result.note("arrival_shards", std::to_string(kArrivalShards));
  result.note("host_cores", std::to_string(std::thread::hardware_concurrency()));
  std::printf("\nshape check: at theta=0 the three protocols track each other; under\n"
              "write-heavy skew algo-c's 1-round multi-version reads hold sojourn flat\n"
              "while algo-b's 2-round reads queue behind the hot keys' write traffic\n"
              "(eiger stays fast but is not strictly serializable — see the fuzz gates).\n");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "skew",
    "theta x read-mix grid via the million-client traffic engine, plus TCP churn; the SNOW "
    "tradeoff where it diverges",
    run_scenario};

}  // namespace
}  // namespace snowkit
