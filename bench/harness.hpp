// Unified benchmark harness: a scenario registry (mirroring the
// ProtocolRegistry idiom) plus machine-readable JSON output.
//
// Every bench under bench/ registers itself as a named scenario:
//
//   ScenarioResult run(const ScenarioOptions& opts) { ... }
//   const ScenarioRegistration kReg{"latency", "one-line summary", run};
//
// and the single bench_harness binary runs any of them:
//
//   bench_harness --scenario latency --protocol algo-b --quick
//
// A scenario prints its paper-style tables to stdout (the human artifact,
// unchanged from the old per-bench main()s) AND returns BenchRecords, which
// the harness writes to BENCH_<scenario>.json — one stable, jq-checkable
// schema ("snowkit-bench-v1") that CI uploads per run, so the repo's perf
// trajectory is machine-diffable across PRs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "metrics/histogram.hpp"

namespace snowkit::bench {

/// One measured configuration inside a scenario run.  Every field is always
/// emitted to JSON (zeros mean "not applicable to this scenario", except the
/// sojourn percentiles, which serialize as `null` unless the scenario
/// actually measured latency — a raw message flood has no sojourn and a
/// fake 0.000 would read as "instant"); anything scenario-specific goes into
/// `extra` as string key/values.
struct BenchRecord {
  std::string protocol;        ///< registry name, or a pseudo-name like "mailbox-flood".
  std::size_t shards{0};       ///< server-fleet size (0 = n/a).
  std::size_t threads{0};      ///< OS threads (ThreadRuntime nodes; 0 = simulated).
  std::uint64_t ops{0};        ///< completed transactions / delivered messages.
  double ops_per_sec{0};       ///< wall-clock throughput (0 for virtual-time runs).
  bool has_sojourn{false};     ///< set by latency(); false -> nulls in JSON.
  double sojourn_p50_us{0};    ///< client-perceived arrival->completion latency.
  double sojourn_p95_us{0};
  double sojourn_p99_us{0};
  std::uint64_t wire_messages{0};
  std::uint64_t wire_bytes{0};  ///< exact codec bytes (encoded_size) on the wire.
  std::vector<std::pair<std::string, std::string>> extra;

  BenchRecord& set(const std::string& key, std::string value) {
    extra.emplace_back(key, std::move(value));
    return *this;
  }

  /// Fills the sojourn percentile fields from a latency summary.
  BenchRecord& latency(const LatencySummary& s) {
    has_sojourn = true;
    sojourn_p50_us = static_cast<double>(s.p50_ns) / 1000.0;
    sojourn_p95_us = static_cast<double>(s.p95_ns) / 1000.0;
    sojourn_p99_us = static_cast<double>(s.p99_ns) / 1000.0;
    return *this;
  }
};

struct ScenarioResult {
  std::vector<BenchRecord> records;
  /// Scenario-level facts (e.g. "flood_speedup_x": "2.41") surfaced at the
  /// top of the JSON for CI gates to jq against.
  std::vector<std::pair<std::string, std::string>> notes;

  void note(const std::string& key, std::string value) {
    notes.emplace_back(key, std::move(value));
  }
};

struct ScenarioOptions {
  bool quick{false};       ///< CI smoke mode: shrink op counts, skip sweeps.
  std::string protocol;    ///< restrict protocol sweeps to one registry name.
  std::uint64_t seed{1};   ///< base seed; scenarios derive fixed per-run seeds.
  /// Offered load in ops/s for scenarios that pace arrivals (net_loopback).
  /// -1 keeps the scenario's default pacing; 0 means "unpaced": a closed-loop
  /// flood that reports the transport's saturation ceiling instead of the
  /// paced sojourn distribution.  Scenarios without pacing ignore it.
  double rate{-1};

  /// True if `kind` passes the --protocol filter.
  bool wants(const std::string& kind) const { return protocol.empty() || protocol == kind; }

  /// `full` scaled down in --quick mode (floor 1).
  std::size_t scaled(std::size_t full, std::size_t divisor = 5) const {
    return quick ? std::max<std::size_t>(1, full / divisor) : full;
  }
};

/// The host's core count as a string — the provenance stamp every record
/// must carry (a cross-host perf diff without it is noise, not signal).
std::string host_cores_string();

/// Stamps "host_cores" into every record that does not already carry one.
/// Scenarios call this once before returning; the harness REJECTS records
/// missing the stamp at emit time (bench_json throws), so a new scenario
/// cannot silently ship unattributed numbers.
void stamp_host_cores(ScenarioResult& result);

using ScenarioFn = std::function<ScenarioResult(const ScenarioOptions&)>;

/// String-keyed scenario registry; same self-registration idiom as the
/// ProtocolRegistry so adding a bench requires zero edits to the harness.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& global();

  void add(std::string name, std::string summary, ScenarioFn fn);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted.
  const std::string& summary(const std::string& name) const;

  /// Runs a scenario; throws std::invalid_argument for unknown names, with
  /// the full registered list (mirrors ProtocolRegistry::build).
  ScenarioResult run(const std::string& name, const ScenarioOptions& opts) const;

 private:
  struct Entry {
    std::string summary;
    ScenarioFn fn;
  };
  const Entry& lookup(const std::string& name) const;
  std::map<std::string, Entry> entries_;
};

/// Static-init registration helper:
///   namespace { const ScenarioRegistration reg{"name", "summary", run}; }
struct ScenarioRegistration {
  ScenarioRegistration(std::string name, std::string summary, ScenarioFn fn);
};

/// Serializes a scenario run as schema "snowkit-bench-v1" and writes it to
/// `<out_dir>/BENCH_<scenario>.json`; returns the path written.
std::string write_bench_json(const std::string& out_dir, const std::string& scenario,
                             const ScenarioOptions& opts, const ScenarioResult& result);

/// The JSON text itself (exposed for tests and --stdout).
std::string bench_json(const std::string& scenario, const ScenarioOptions& opts,
                       const ScenarioResult& result);

}  // namespace snowkit::bench
