// Scenario "fig3_alpha_chain": reproduces Fig. 3: the alpha_2..alpha_10
// execution chain of the SNOW Theorem proof (Theorem 1, three clients, C2C
// allowed), mechanised on Algorithm A extended to two readers.  Each row is
// an execution; the transpositions are real Lemma-2 commutes on recorded
// traces.
#include "bench_util.hpp"
#include "theory/alpha_chain.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

ScenarioResult run_scenario(const ScenarioOptions&) {
  bench::heading("Figure 3: execution chain for the 3-client SNOW impossibility (Theorem 1)");
  auto chain = theory::run_alpha_chain();
  const std::vector<int> widths{9, 52, 10, 10, 9};
  bench::row({"execution", "fragment order", "R1", "R2", "verified"}, widths);
  ScenarioResult result;
  bool all_verified = true;
  for (const auto& step : chain.steps) {
    bench::row({step.name, step.order, step.r1_values, step.r2_values,
                step.verified ? "yes" : "NO"},
               widths);
    if (!step.note.empty()) std::printf("          note: %s\n", step.note.c_str());
    all_verified = all_verified && step.verified;
    bench::BenchRecord rec;
    rec.protocol = "algo-a";
    rec.shards = 2;
    rec.set("execution", step.name);
    rec.set("r1", step.r1_values);
    rec.set("r2", step.r2_values);
    rec.set("verified", step.verified ? "yes" : "no");
    result.records.push_back(std::move(rec));
  }
  std::printf("\nfinal verdict: %s\n",
              chain.s_violated
                  ? ("alpha10 violates strict serializability — " + chain.violation).c_str()
                  : "UNEXPECTED: no violation");
  std::printf("paper: R2 precedes R1 yet returns the newer version — S broken.  Reproduced.\n");
  result.note("s_violated", chain.s_violated ? "yes" : "no");
  result.note("reproduced", (chain.s_violated && all_verified) ? "yes" : "no");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "fig3_alpha_chain",
    "Fig. 3 alpha-chain: mechanised Theorem-1 impossibility executions",
    run_scenario};

}  // namespace
}  // namespace snowkit
