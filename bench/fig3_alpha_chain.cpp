// Reproduces Fig. 3: the alpha_2..alpha_10 execution chain of the SNOW
// Theorem proof (Theorem 1, three clients, C2C allowed), mechanised on
// Algorithm A extended to two readers.  Each row is an execution; the
// transpositions are real Lemma-2 commutes on recorded traces.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "theory/alpha_chain.hpp"

namespace snowkit {
namespace {

void print_chain() {
  bench::heading("Figure 3: execution chain for the 3-client SNOW impossibility (Theorem 1)");
  auto result = theory::run_alpha_chain();
  const std::vector<int> widths{9, 52, 10, 10, 9};
  bench::row({"execution", "fragment order", "R1", "R2", "verified"}, widths);
  for (const auto& step : result.steps) {
    bench::row({step.name, step.order, step.r1_values, step.r2_values,
                step.verified ? "yes" : "NO"},
               widths);
    if (!step.note.empty()) std::printf("          note: %s\n", step.note.c_str());
  }
  std::printf("\nfinal verdict: %s\n",
              result.s_violated
                  ? ("alpha10 violates strict serializability — " + result.violation).c_str()
                  : "UNEXPECTED: no violation");
  std::printf("paper: R2 precedes R1 yet returns the newer version — S broken.  Reproduced.\n");
}

void BM_AlphaChain(benchmark::State& state) {
  for (auto _ : state) {
    auto result = snowkit::theory::run_alpha_chain();
    benchmark::DoNotOptimize(result.s_violated);
  }
}
BENCHMARK(BM_AlphaChain);

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_chain();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
