// Reproduces Fig. 5: Eiger's read-only transactions are not strictly
// serializable (paper §6) — the exact counterexample execution, plus a
// sweep showing how often random schedules trip the same bug.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "theory/eiger_fig5.hpp"

namespace snowkit {
namespace {

void print_fig5() {
  bench::heading("Figure 5: Eiger's READ transactions violate strict serializability");
  auto result = theory::run_eiger_fig5();
  for (std::size_t i = 0; i < result.timeline.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, result.timeline[i].c_str());
  }
  std::printf("\n  R returned A=%lld (w3) and B=%lld (w1) in %d round(s)\n",
              static_cast<long long>(result.read_a), static_cast<long long>(result.read_b),
              result.read_rounds);
  std::printf("  checker verdict: %s\n",
              result.s_violated ? ("NOT strictly serializable — " + result.violation).c_str()
                                : "UNEXPECTED: serializable");
  std::printf("  paper Fig. 5: rA = w3, rB = w1, overlapping logical intervals — reproduced.\n");
}

void print_random_sweep() {
  bench::heading("How often do RANDOM schedules trip the Eiger bug? (why the claim survived)");
  int violations = 0;
  int inconclusive = 0;
  const int runs = 20;
  for (int seed = 1; seed <= runs; ++seed) {
    WorkloadSpec spec;
    spec.ops_per_reader = 12;
    spec.ops_per_writer = 8;
    spec.read_span = 2;
    spec.write_span = 1;  // single-object writes: isolates the Fig.5 read
                          // mechanism from mini-Eiger's non-atomic multi-put
    spec.seed = static_cast<std::uint64_t>(seed);
    auto r = bench::run_sim_workload("eiger", Topology{3, 2, 2}, spec,
                                     static_cast<std::uint64_t>(seed));
    auto verdict = check_strict_serializability(r.history, CheckOptions{500'000});
    if (verdict.exhausted) {
      ++inconclusive;
    } else if (!verdict.ok) {
      ++violations;
    }
  }
  std::printf("  %d/%d random runs violated S (%d inconclusive) — the violation needs the\n"
              "  adversarial interleaving above, which is exactly why it went unnoticed.\n",
              violations, runs, inconclusive);
}

void BM_EigerFig5(benchmark::State& state) {
  for (auto _ : state) {
    auto result = snowkit::theory::run_eiger_fig5();
    benchmark::DoNotOptimize(result.s_violated);
  }
}
BENCHMARK(BM_EigerFig5);

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_fig5();
  snowkit::print_random_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
