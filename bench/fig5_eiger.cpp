// Scenario "fig5_eiger": reproduces Fig. 5: Eiger's read-only transactions
// are not strictly serializable (paper §6) — the exact counterexample
// execution, plus a sweep showing how often random schedules trip the same
// bug.
#include "bench_util.hpp"
#include "theory/eiger_fig5.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  bench::heading("Figure 5: Eiger's READ transactions violate strict serializability");
  auto fig5 = theory::run_eiger_fig5();
  for (std::size_t i = 0; i < fig5.timeline.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, fig5.timeline[i].c_str());
  }
  std::printf("\n  R returned A=%lld (w3) and B=%lld (w1) in %d round(s)\n",
              static_cast<long long>(fig5.read_a), static_cast<long long>(fig5.read_b),
              fig5.read_rounds);
  std::printf("  checker verdict: %s\n",
              fig5.s_violated ? ("NOT strictly serializable — " + fig5.violation).c_str()
                              : "UNEXPECTED: serializable");
  std::printf("  paper Fig. 5: rA = w3, rB = w1, overlapping logical intervals — reproduced.\n");

  bench::heading("How often do RANDOM schedules trip the Eiger bug? (why the claim survived)");
  int violations = 0;
  int inconclusive = 0;
  const int runs = opts.quick ? 5 : 20;
  for (int seed = 1; seed <= runs; ++seed) {
    WorkloadSpec spec;
    spec.ops_per_reader = 12;
    spec.ops_per_writer = 8;
    spec.read_span = 2;
    spec.write_span = 1;  // single-object writes: isolates the Fig.5 read
                          // mechanism from mini-Eiger's non-atomic multi-put
    spec.seed = static_cast<std::uint64_t>(seed);
    auto r = bench::run_sim_workload("eiger", Topology{3, 2, 2}, spec,
                                     static_cast<std::uint64_t>(seed));
    auto verdict = check_strict_serializability(r.history, CheckOptions{500'000});
    if (verdict.exhausted) {
      ++inconclusive;
    } else if (!verdict.ok) {
      ++violations;
    }
  }
  std::printf("  %d/%d random runs violated S (%d inconclusive) — the violation needs the\n"
              "  adversarial interleaving above, which is exactly why it went unnoticed.\n",
              violations, runs, inconclusive);

  ScenarioResult result;
  bench::BenchRecord rec;
  rec.protocol = "eiger";
  rec.shards = 2;
  rec.set("s_violated", fig5.s_violated ? "yes" : "no");
  rec.set("read_rounds", std::to_string(fig5.read_rounds));
  rec.set("random_violations", std::to_string(violations) + "/" + std::to_string(runs));
  result.records.push_back(std::move(rec));
  result.note("reproduced", fig5.s_violated ? "yes" : "no");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "fig5_eiger",
    "Fig. 5 Eiger counterexample + random-schedule trip rate",
    run_scenario};

}  // namespace
}  // namespace snowkit
