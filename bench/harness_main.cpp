// bench_harness CLI: run registered scenarios, print their paper-style
// tables, and write machine-readable BENCH_<scenario>.json files.
//
//   bench_harness --list
//   bench_harness --scenario latency --protocol algo-b --quick
//   bench_harness --all --quick --out-dir bench-out
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "harness.hpp"

namespace {

void usage() {
  std::printf(
      "usage: bench_harness [--scenario NAME | --all] [options]\n"
      "\n"
      "options:\n"
      "  --scenario NAME   run one scenario (see --list)\n"
      "  --all             run every registered scenario\n"
      "  --protocol NAME   restrict protocol sweeps to one registry name\n"
      "                    (scenarios without protocol sweeps ignore it)\n"
      "  --quick           CI smoke mode: shrunk op counts, skipped sweeps\n"
      "  --rate R          offered load in ops/s for paced scenarios; 0 = unpaced\n"
      "                    closed-loop saturation (net_loopback honors this)\n"
      "  --seed N          base seed (default 1; runs are deterministic per seed)\n"
      "  --out-dir DIR     where BENCH_<scenario>.json is written (default .)\n"
      "  --list            list scenarios and exit\n");
}

void list_scenarios() {
  auto& reg = snowkit::bench::ScenarioRegistry::global();
  std::printf("registered scenarios:\n");
  for (const auto& name : reg.names()) {
    std::printf("  %-22s %s\n", name.c_str(), reg.summary(name).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using snowkit::bench::ScenarioOptions;
  using snowkit::bench::ScenarioRegistry;

  ScenarioOptions opts;
  std::vector<std::string> scenarios;
  std::string out_dir = ".";
  bool all = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenarios.emplace_back(next());
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--protocol") {
      opts.protocol = next();
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--rate") {
      const char* value = next();
      char* end = nullptr;
      opts.rate = std::strtod(value, &end);
      if (end == value || *end != '\0' || opts.rate < 0) {
        std::fprintf(stderr, "error: --rate value '%s' is not a non-negative number\n", value);
        return 1;
      }
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--list") {
      list_scenarios();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n\n", arg.c_str());
      usage();
      return 1;
    }
  }

  auto& reg = ScenarioRegistry::global();
  if (all) scenarios = reg.names();
  if (scenarios.empty()) {
    usage();
    std::printf("\n");
    list_scenarios();
    return 1;
  }

  if (!opts.protocol.empty()) {
    // Fail fast on unknown protocol names, like ProtocolRegistry does.
    const auto known = snowkit::registered_protocols();
    bool found = false;
    for (const auto& name : known) found = found || name == opts.protocol;
    if (!found) {
      std::fprintf(stderr, "error: unknown protocol \"%s\"; registered:", opts.protocol.c_str());
      for (const auto& name : known) std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      return 1;
    }
  }

  try {
    for (const auto& name : scenarios) {
      auto result = reg.run(name, opts);
      if (result.records.empty()) {
        // Don't emit a file that violates the records-non-empty schema
        // invariant CI gates on (e.g. --protocol filtered everything out).
        std::fprintf(stderr,
                     "[bench_harness] %s produced no records (filter too narrow?) — "
                     "skipping BENCH_%s.json\n",
                     name.c_str(), name.c_str());
        continue;
      }
      const std::string path = snowkit::bench::write_bench_json(out_dir, name, opts, result);
      std::printf("\n[bench_harness] wrote %s (%zu records)\n", path.c_str(),
                  result.records.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
