// Scenario "throughput_threads": wall-clock throughput on the threaded
// runtime — the same protocol state machines under real concurrency
// (per-node threads, serialized messages, mutex-protected mailboxes).
//
// Two measurements:
//  1. mailbox flood — raw message throughput through ThreadRuntime
//     mailboxes, run in BOTH runtime modes: the batched fast path
//     (batch-drain + recycled encode buffers) and the legacy
//     per-message-lock baseline.  Their ratio is the note
//     "flood_speedup_x", which CI gates on.
//  2. protocol closed loops — end-to-end ops/s per protocol on the fast
//     path, with a warmup run before the measured run.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>

#include "audit/capture.hpp"
#include "bench_util.hpp"
#include "metrics/gc_stats.hpp"
#include "metrics/wire_stats.hpp"
#include "msg/codec.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

using bench::BenchRecord;
using bench::ScenarioOptions;
using bench::ScenarioResult;

// --- raw mailbox flood -------------------------------------------------------

/// Counts deliveries on a shared atomic (no per-message lock, so the sink
/// does not mask the mailbox cost being measured); the last delivery
/// releases the waiter.
class FloodSink final : public Node {
 public:
  FloodSink(std::mutex& mu, std::condition_variable& cv, std::atomic<std::size_t>& delivered,
            std::size_t total)
      : mu_(mu), cv_(cv), delivered_(delivered), total_(total) {}

  void on_message(NodeId, const Message&) override {
    if (delivered_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

 private:
  std::mutex& mu_;
  std::condition_variable& cv_;
  std::atomic<std::size_t>& delivered_;
  std::size_t total_;
};

/// Senders are plain nodes; the bench posts the send loop onto them.
class FloodSource final : public Node {
 public:
  void on_message(NodeId, const Message&) override {}
};

struct FloodResult {
  double msgs_per_sec{0};
  double secs{0};
  std::uint64_t messages{0};
  std::uint64_t wire_bytes{0};
  double batch_mean{0};  ///< messages delivered per worker wakeup.
};

/// `senders` nodes each fire `per_sender` messages at `sinks` receivers
/// (round-robin); measures wall-clock from first send to last delivery.
/// An optional observer rides along (used for the audited-flood overhead
/// measurement below).
FloodResult run_flood(bool batched, std::size_t senders, std::size_t sinks,
                      std::size_t per_sender, MessageObserver* obs = nullptr) {
  ThreadRuntime rt(ThreadRuntime::Options{batched});
  if (obs != nullptr) rt.set_observer(obs);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::size_t> delivered{0};
  const std::size_t total = senders * per_sender;
  std::vector<NodeId> sink_ids, source_ids;
  for (std::size_t i = 0; i < sinks; ++i) {
    sink_ids.push_back(rt.add_node(std::make_unique<FloodSink>(mu, cv, delivered, total)));
  }
  for (std::size_t i = 0; i < senders; ++i) {
    source_ids.push_back(rt.add_node(std::make_unique<FloodSource>()));
  }
  rt.start();
  const Message probe{1, SimpleWriteReq{0, 1}};

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < senders; ++s) {
    const NodeId self = source_ids[s];
    rt.post(self, [&rt, &sink_ids, &probe, self, s, per_sender] {
      for (std::size_t i = 0; i < per_sender; ++i) {
        Message m = probe;
        m.txn = static_cast<TxnId>(i);
        rt.send(self, sink_ids[(s + i) % sink_ids.size()], std::move(m));
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return delivered.load(std::memory_order_acquire) == total; });
  }
  const auto t1 = std::chrono::steady_clock::now();
  rt.stop();  // joins workers: their counter updates happen-before the read below
  const auto stats = rt.delivery_stats();

  FloodResult out;
  out.secs = std::chrono::duration<double>(t1 - t0).count();
  out.messages = total;
  out.msgs_per_sec = static_cast<double>(total) / out.secs;
  out.wire_bytes = total * encoded_size(probe);
  out.batch_mean = stats.wakeups == 0 ? 0.0
                                      : static_cast<double>(stats.messages) /
                                            static_cast<double>(stats.wakeups);
  return out;
}

FloodResult best_flood(bool batched, std::size_t senders, std::size_t sinks,
                       std::size_t per_sender, int repeats) {
  run_flood(batched, senders, sinks, per_sender / 4 + 1);  // warmup
  FloodResult best;
  for (int i = 0; i < repeats; ++i) {
    FloodResult r = run_flood(batched, senders, sinks, per_sender);
    if (r.msgs_per_sec > best.msgs_per_sec) best = r;
  }
  return best;
}

/// The flood with the flight recorder attached — the always-on-capture
/// overhead datapoint CI gates on (audit_drops / audit_bytes extras, and the
/// "audit_overhead_pct" note against the plain batched flood).
struct AuditedFlood {
  FloodResult flood;
  audit::CaptureStats cap;
};

/// The flood pushes >5M observer events/s — far past any real protocol
/// workload — so the recorder runs at the sampling rate a deployment would
/// use on a path this hot.  A sampled-out event costs two plain stores
/// (no lock, no clock read); protocol-rate captures (net_loopback, the
/// daemons) record every message.
constexpr std::uint64_t kFloodAuditSample = 32;

/// Measures capture overhead with interleaved pairs and a median-of-ratios
/// estimate: each rep runs the two modes back to back so a machine-state
/// drift (or a scheduler regime flip on small boxes) hits both sides of one
/// ratio instead of biasing a whole mode's block.
///
/// Both sides run a WireStats observer — every protocol deployment already
/// does (and the capture chains it via `next`), so the virtual-dispatch
/// seam is sunk cost and the ratio isolates what TURNING THE RECORDER ON
/// adds: the sampling gate plus the sampled share of ring writes.
AuditedFlood measure_audit_overhead(std::size_t senders, std::size_t sinks,
                                    std::size_t per_sender, int repeats, double* pct_out) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("snowkit_audit_flood_" +
                    std::to_string(static_cast<unsigned long long>(
                        std::chrono::steady_clock::now().time_since_epoch().count())));
  AuditedFlood best;
  std::vector<double> ratios;
  for (int i = 0; i < repeats; ++i) {
    // Alternate which mode runs first: back-to-back runs are not exchangeable
    // (page cache, frequency, scheduler state), and a fixed order would bake
    // that drift into every ratio as phantom overhead.
    FloodResult plain, audited_r;
    audit::CaptureStats cap_stats;
    auto run_plain = [&] {
      WireStats wire;
      plain = run_flood(/*batched=*/true, senders, sinks, per_sender, &wire);
    };
    auto run_audited = [&] {
      audit::CaptureOptions copts;
      copts.dir = dir.string();
      copts.protocol = "mailbox-flood";
      copts.num_servers = 0;
      copts.sample_every = kFloodAuditSample;
      // Sized to the sampled volume: the default 16K-slot rings would cost
      // ~12MB of first-touch zeroing + cache footprint across 16 threads,
      // which on a small machine reads as phantom "capture overhead".
      copts.ring_capacity = 2048;
      WireStats wire;
      audit::AuditCapture cap(copts, &wire);
      audited_r = run_flood(/*batched=*/true, senders, sinks, per_sender, &cap);
      cap.close();
      cap_stats = cap.stats();
    };
    if (i % 2 == 0) {
      run_plain();
      run_audited();
    } else {
      run_audited();
      run_plain();
    }
    if (plain.msgs_per_sec > 0) ratios.push_back(audited_r.msgs_per_sec / plain.msgs_per_sec);
    if (audited_r.msgs_per_sec > best.flood.msgs_per_sec) best = {audited_r, cap_stats};
  }
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  *pct_out = (1.0 - median) * 100.0;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // overhead datapoint only; chunks discarded
  return best;
}

// --- protocol closed loops ---------------------------------------------------

struct ThreadsRun {
  double ops_per_sec{0};
  std::size_t threads{0};
  std::uint64_t ops{0};
  LatencySummary read_latency;  ///< closed loop: invoke->respond == sojourn.
  std::uint64_t wire_messages{0};
  std::uint64_t wire_bytes{0};
  GcSnapshot gc;  ///< version-store GC delta for this run.
};

ThreadsRun run_threads_once(const std::string& kind, std::size_t readers, std::size_t writers,
                            std::size_t ops_per_reader, std::size_t ops_per_writer) {
  const GcSnapshot gc_before = GcCounters::global().snapshot();
  ThreadRuntime rt;
  WireStats wire;
  rt.set_observer(&wire);
  HistoryRecorder rec(4);
  auto sys = build_protocol(kind, rt, rec, Topology{4, readers, writers});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = ops_per_reader;
  spec.ops_per_writer = ops_per_writer;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 3;
  WorkloadDriver driver(rt, *sys, spec);
  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  driver.wait();
  const auto t1 = std::chrono::steady_clock::now();
  rt.stop();

  ThreadsRun out;
  out.threads = 4 + readers + writers;
  out.ops = driver.total_ops();
  out.ops_per_sec =
      static_cast<double>(driver.total_ops()) / std::chrono::duration<double>(t1 - t0).count();
  out.read_latency = summarize_latency(rec.snapshot(), /*reads=*/true);
  out.wire_messages = wire.messages();
  out.wire_bytes = wire.bytes();
  out.gc = GcCounters::global().snapshot().delta(gc_before);
  return out;
}

ThreadsRun run_threads(const std::string& kind, std::size_t readers, std::size_t writers,
                       std::size_t ops_per_reader, std::size_t ops_per_writer) {
  // Warmup pass (thread spawn, allocator, branch predictors), then measure.
  run_threads_once(kind, readers, writers, ops_per_reader / 4 + 1, ops_per_writer / 4 + 1);
  return run_threads_once(kind, readers, writers, ops_per_reader, ops_per_writer);
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;

  // 1. Raw mailbox flood: fast path vs per-message-lock baseline.  An 8x8
  // fleet floods small messages round-robin — the shape where per-message
  // lock round-trips, idle notifications and encode allocations dominate,
  // which is precisely what batch-drain + the buffer pool amortize away.
  const std::size_t senders = 8, sinks = 8;
  const std::size_t per_sender = opts.scaled(100'000, 4);
  // Each flood rep is ~0.1s; best-of-N per mode because the overhead
  // comparison (audit vs plain) needs both ceilings, not two noisy samples —
  // on a busy/small machine run-to-run scheduling noise exceeds the delta.
  const int repeats = opts.quick ? 9 : 11;
  const FloodResult fast = best_flood(/*batched=*/true, senders, sinks, per_sender, repeats);
  const FloodResult legacy = best_flood(/*batched=*/false, senders, sinks, per_sender, repeats);
  // Overhead pairs use 2 sinks: 4x-deeper per-sink queues keep the drain
  // loop in its steady batched regime in BOTH modes.  With 8 idle-prone
  // sinks, the audited senders' extra ns/msg can tip consumers into a
  // wake-per-message regime and the "overhead" reading becomes a futex
  // artifact (observed swinging -15%..+27% run to run), not capture cost.
  double audit_pct = 0;
  const AuditedFlood audited =
      measure_audit_overhead(senders, /*sinks=*/2, per_sender, repeats, &audit_pct);
  const double speedup = legacy.msgs_per_sec > 0 ? fast.msgs_per_sec / legacy.msgs_per_sec : 0;

  bench::heading("mailbox flood: fast path (batch-drain + buffer reuse) vs per-message lock");
  const std::vector<int> fw{22, 16, 14, 16};
  bench::row({"mode", "msgs/s", "batch mean", "wall secs"}, fw);
  auto flood_row = [&](const char* mode, const FloodResult& r) {
    char msgs[32], batch[32], secs[32];
    std::snprintf(msgs, sizeof msgs, "%.0f", r.msgs_per_sec);
    std::snprintf(batch, sizeof batch, "%.1f", r.batch_mean);
    std::snprintf(secs, sizeof secs, "%.3f", r.secs);
    bench::row({mode, msgs, batch, secs}, fw);
  };
  flood_row("batched (fast path)", fast);
  flood_row("per-message lock", legacy);
  flood_row("batched + audit", audited.flood);
  std::printf("\nspeedup: %.2fx (%zu senders x %zu msgs -> %zu sinks); audit capture (1/%llu "
              "sampling) costs %.1f%% over the wire-stats baseline every deployment runs "
              "(%llu events, %llu dropped, %llu chunk bytes)\n",
              speedup, senders, per_sender, sinks,
              static_cast<unsigned long long>(kFloodAuditSample), audit_pct,
              static_cast<unsigned long long>(audited.cap.events),
              static_cast<unsigned long long>(audited.cap.drops),
              static_cast<unsigned long long>(audited.cap.bytes_written));

  for (const auto* pair : {&fast, &legacy}) {
    BenchRecord rec;
    rec.protocol = "mailbox-flood";
    rec.threads = senders + sinks;
    rec.ops = pair->messages;
    rec.ops_per_sec = pair->msgs_per_sec;
    rec.wire_messages = pair->messages;
    rec.wire_bytes = pair->wire_bytes;
    rec.set("mode", pair == &fast ? "batched" : "per-message-lock");
    char batch[32];
    std::snprintf(batch, sizeof batch, "%.2f", pair->batch_mean);
    rec.set("batch_mean", batch);
    result.records.push_back(std::move(rec));
  }
  {
    BenchRecord rec;
    rec.protocol = "mailbox-flood";
    rec.threads = senders + sinks;
    rec.ops = audited.flood.messages;
    rec.ops_per_sec = audited.flood.msgs_per_sec;
    rec.wire_messages = audited.flood.messages;
    rec.wire_bytes = audited.flood.wire_bytes;
    rec.set("mode", "batched-audit");
    rec.set("audit_sample", std::to_string(kFloodAuditSample));
    rec.set("audit_events", std::to_string(audited.cap.events));
    rec.set("audit_sampled_out", std::to_string(audited.cap.sampled_out));
    rec.set("audit_drops", std::to_string(audited.cap.drops));
    rec.set("audit_bytes", std::to_string(audited.cap.bytes_written));
    rec.set("audit_chunks", std::to_string(audited.cap.chunks));
    result.records.push_back(std::move(rec));
  }
  char sp[32];
  std::snprintf(sp, sizeof sp, "%.2f", speedup);
  result.note("flood_speedup_x", sp);
  char ap[32];
  std::snprintf(ap, sizeof ap, "%.2f", audit_pct);
  result.note("audit_overhead_pct", ap);

  // 2. Protocol closed loops on the fast path.
  bench::heading("threaded runtime throughput (4 shards, ops/s wall clock)");
  const std::vector<int> widths{14, 10, 10, 14, 12};
  bench::row({"protocol", "readers", "writers", "ops/s", "p50(us)"}, widths);
  struct Line {
    std::string kind;
    std::size_t readers, writers;
  };
  const std::vector<Line> all_lines = {
      {"simple", 2, 2},  {"algo-a", 1, 3},      {"algo-b", 2, 2},
      {"algo-c", 2, 2},  {"eiger", 2, 2},       {"blocking-2pl", 2, 2},
  };
  for (const Line& line : all_lines) {
    if (!opts.wants(line.kind)) continue;
    const ThreadsRun r = run_threads(line.kind, line.readers, line.writers,
                                     opts.scaled(2000), opts.scaled(500));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", r.ops_per_sec);
    bench::row({line.kind, std::to_string(line.readers), std::to_string(line.writers), buf,
                bench::us(static_cast<double>(r.read_latency.p50_ns))},
               widths);
    BenchRecord rec;
    rec.protocol = line.kind;
    rec.shards = 4;
    rec.threads = r.threads;
    rec.ops = r.ops;
    rec.ops_per_sec = r.ops_per_sec;
    rec.latency(r.read_latency);
    rec.wire_messages = r.wire_messages;
    rec.wire_bytes = r.wire_bytes;
    if (r.gc.inserted > 0) {
      rec.set("gc_versions_inserted", std::to_string(r.gc.inserted));
      rec.set("gc_versions_pruned", std::to_string(r.gc.pruned));
    }
    result.records.push_back(std::move(rec));
  }
  std::printf("\nshape check: fewer rounds -> fewer mailbox hops -> higher closed-loop\n"
              "throughput; blocking-2pl pays lock queuing on top of its extra rounds.\n");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "throughput_threads",
    "wall-clock msgs/s + per-protocol ops/s on ThreadRuntime; gates the fast path vs the "
    "per-message-lock baseline",
    run_scenario};

}  // namespace
}  // namespace snowkit
