// E11: wall-clock throughput on the threaded runtime — the same protocol
// state machines under real concurrency (per-node threads, serialized
// messages, mutex-protected mailboxes).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "runtime/thread_runtime.hpp"

namespace snowkit {
namespace {

double run_threads_ops_per_sec(const std::string& kind, std::size_t readers, std::size_t writers,
                               std::size_t ops_per_reader, std::size_t ops_per_writer) {
  ThreadRuntime rt;
  HistoryRecorder rec(4);
  auto sys = build_protocol(kind, rt, rec, Topology{4, readers, writers});
  rt.start();
  WorkloadSpec spec;
  spec.ops_per_reader = ops_per_reader;
  spec.ops_per_writer = ops_per_writer;
  spec.read_span = 2;
  spec.write_span = 2;
  spec.seed = 3;
  ClosedLoopDriver driver(rt, *sys, spec);
  const auto t0 = std::chrono::steady_clock::now();
  driver.start();
  driver.wait();
  const auto t1 = std::chrono::steady_clock::now();
  rt.stop();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(driver.total_ops()) / secs;
}

void print_table() {
  bench::heading("threaded runtime throughput (4 shards, ops/s wall clock)");
  const std::vector<int> widths{14, 10, 10, 14};
  bench::row({"protocol", "readers", "writers", "ops/s"}, widths);
  struct Line {
    std::string kind;
    std::size_t readers, writers;
  };
  const Line lines[] = {
      {"simple", 2, 2},  {"algo-a", 1, 3},
      {"algo-b", 2, 2},   {"algo-c", 2, 2},
      {"eiger", 2, 2},   {"blocking-2pl", 2, 2},
  };
  for (const Line& line : lines) {
    const double ops = run_threads_ops_per_sec(line.kind, line.readers, line.writers, 2000, 500);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", ops);
    bench::row({line.kind, std::to_string(line.readers),
                std::to_string(line.writers), buf},
               widths);
  }
  std::printf("\nshape check: fewer rounds -> fewer mailbox hops -> higher closed-loop\n"
              "throughput; blocking-2pl pays lock queuing on top of its extra rounds.\n");
}

const char* const kBmProtocols[] = {"algo-b", "algo-c", "simple"};

void BM_Threads_ClosedLoop(benchmark::State& state) {
  const std::string kind = kBmProtocols[state.range(0)];
  for (auto _ : state) {
    const double ops = run_threads_ops_per_sec(kind, 2, 2, 300, 100);
    state.counters["ops_per_sec"] = ops;
  }
}
BENCHMARK(BM_Threads_ClosedLoop)
    ->Arg(0)   // algo-b
    ->Arg(1)   // algo-c
    ->Arg(2)   // simple
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
