// Scenario "fig4_two_client": reproduces Fig. 4: the two-client (no C2C)
// impossibility construction (Theorem 2) — executions alpha, beta,
// gamma/eta and the delta descent, replayed on the concrete one-round
// candidate.
#include "bench_util.hpp"
#include "theory/two_client_chain.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

ScenarioResult run_scenario(const ScenarioOptions&) {
  bench::heading("Figure 4: two-client no-C2C impossibility (Theorem 2)");
  auto chain = theory::run_two_client_chain();
  const std::vector<int> widths{12, 62, 10, 9};
  bench::row({"execution", "construction", "R", "verified"}, widths);
  ScenarioResult result;
  bool all_verified = true;
  for (const auto& step : chain.steps) {
    bench::row({step.name, step.description, step.read_values, step.verified ? "yes" : "NO"},
               widths);
    if (!step.note.empty()) std::printf("            note: %s\n", step.note.c_str());
    all_verified = all_verified && step.verified;
    bench::BenchRecord rec;
    rec.protocol = "naive";
    rec.shards = 2;
    rec.set("execution", step.name);
    rec.set("read_values", step.read_values);
    rec.set("verified", step.verified ? "yes" : "no");
    result.records.push_back(std::move(rec));
  }
  std::printf("\nflip boundary: k* = %d, a_{k*+1} occurs at %s\n", chain.flip_k,
              chain.flip_location.c_str());
  std::printf("fracture witness: %s\n", chain.fracture.c_str());
  std::printf("paper: one action at a single server cannot coordinate both servers' versions,\n"
              "so the boundary schedules violate S.  Reproduced: the intermediate delta\n"
              "executions return fractured (x1,y0)-style results.\n");
  result.note("flip_k", std::to_string(chain.flip_k));
  result.note("fracture", chain.fracture);
  result.note("reproduced", (chain.fracture_found && all_verified) ? "yes" : "no");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "fig4_two_client",
    "Fig. 4 two-client descent: mechanised Theorem-2 impossibility executions",
    run_scenario};

}  // namespace
}  // namespace snowkit
