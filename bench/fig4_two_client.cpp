// Reproduces Fig. 4: the two-client (no C2C) impossibility construction
// (Theorem 2) — executions alpha, beta, gamma/eta and the delta descent,
// replayed on the concrete one-round candidate.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "theory/two_client_chain.hpp"

namespace snowkit {
namespace {

void print_chain() {
  bench::heading("Figure 4: two-client no-C2C impossibility (Theorem 2)");
  auto result = theory::run_two_client_chain();
  const std::vector<int> widths{12, 62, 10, 9};
  bench::row({"execution", "construction", "R", "verified"}, widths);
  for (const auto& step : result.steps) {
    bench::row({step.name, step.description, step.read_values, step.verified ? "yes" : "NO"},
               widths);
    if (!step.note.empty()) std::printf("            note: %s\n", step.note.c_str());
  }
  std::printf("\nflip boundary: k* = %d, a_{k*+1} occurs at %s\n", result.flip_k,
              result.flip_location.c_str());
  std::printf("fracture witness: %s\n", result.fracture.c_str());
  std::printf("paper: one action at a single server cannot coordinate both servers' versions,\n"
              "so the boundary schedules violate S.  Reproduced: the intermediate delta\n"
              "executions return fractured (x1,y0)-style results.\n");
}

void BM_TwoClientChain(benchmark::State& state) {
  for (auto _ : state) {
    auto result = snowkit::theory::run_two_client_chain();
    benchmark::DoNotOptimize(result.fracture_found);
  }
}
BENCHMARK(BM_TwoClientChain);

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_chain();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
