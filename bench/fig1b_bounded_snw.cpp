// Scenario "fig1b_bounded_snw": reproduces Fig. 1(b): bounded SNW
// algorithms — the (rounds x versions) matrix for strictly serializable,
// non-blocking READ transactions with conflicting WRITEs and no
// client-to-client communication.
//
//   versions \ rounds |  1       2        inf
//   ------------------+--------------------------
//   1                 |  (x)     ✓ (B)    (✓ prior work)
//   |W|               |  ✓ (C)
//
// For each implemented cell the harness measures, over adversarial random
// schedules: max rounds per READ, max versions per server response, the
// non-blocking verdict from the trace monitor, and the Lemma-20 S verdict.
// The (1,1) cell is witnessed impossible via the naive candidate's fracture.
#include "bench_util.hpp"
#include "theory/two_client_chain.hpp"

namespace snowkit {
namespace {

using bench::heading;
using bench::row;
using bench::yesno;
using bench::ScenarioOptions;
using bench::ScenarioResult;

struct CellResult {
  int rounds{0};
  int versions{0};
  bool nonblocking{false};
  bool s_ok{false};
};

CellResult run_cell(const std::string& kind, std::size_t writers, std::uint64_t seeds) {
  CellResult cell;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    WorkloadSpec spec;
    spec.ops_per_reader = 60;
    spec.ops_per_writer = 30;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = seed;
    auto r = bench::run_sim_workload(kind, Topology{3, 2, writers}, spec, seed);
    cell.rounds = std::max(cell.rounds, r.snow.max_read_rounds);
    cell.versions = std::max(cell.versions, r.snow.max_versions_per_response);
    cell.nonblocking = seed == 1 ? r.snow.satisfies_n() : (cell.nonblocking && r.snow.satisfies_n());
    cell.s_ok = seed == 1 ? r.tag_order_ok : (cell.s_ok && r.tag_order_ok);
  }
  return cell;
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  heading("Figure 1(b): bounded SNW algorithms (S + N + W, no C2C)");
  const std::vector<int> widths{28, 10, 12, 14, 10};
  row({"cell (rounds, versions)", "rounds", "versions", "non-blocking", "S holds"}, widths);

  const std::size_t W = 3;  // concurrent writers
  const std::uint64_t seeds = opts.quick ? 2 : 5;
  const CellResult b = run_cell("algo-b", W, seeds);
  const CellResult c = run_cell("algo-c", W, seeds);
  const CellResult o = run_cell("occ-reads", W, seeds);

  auto chain = theory::run_two_client_chain();
  row({"(1, 1)  — impossible", "1", "1", "yes", "NO*"}, widths);
  std::printf("        * witness: %s\n", chain.fracture.c_str());
  row({"(2, 1)  — Algorithm B", std::to_string(b.rounds), std::to_string(b.versions),
       yesno(b.nonblocking), yesno(b.s_ok)},
      widths);
  row({"(1, |W|) — Algorithm C", std::to_string(c.rounds), std::to_string(c.versions),
       yesno(c.nonblocking), yesno(c.s_ok)},
      widths);
  row({"(inf, 1) — occ-reads", std::to_string(o.rounds) + " (unbounded)",
       std::to_string(o.versions), yesno(o.nonblocking), yesno(o.s_ok)},
      widths);
  std::printf("\n|W| = %zu concurrent writers; Algorithm C responses carried up to %d versions "
              "(<= total writes without GC; see ablation_coordinator for the bounded-GC mode).\n",
              W, c.versions);
  std::printf("paper Fig.1(b): (1,1) x | (2,1) ✓ B | (inf,1) ✓ | (1,|W|) ✓ C — reproduced.\n");

  ScenarioResult result;
  auto record = [&](const char* name, const std::string& protocol, const CellResult& cell) {
    bench::BenchRecord rec;
    rec.protocol = protocol;
    rec.shards = 3;
    rec.set("cell", name);
    rec.set("rounds", std::to_string(cell.rounds));
    rec.set("versions", std::to_string(cell.versions));
    rec.set("nonblocking", yesno(cell.nonblocking));
    rec.set("s_holds", yesno(cell.s_ok));
    result.records.push_back(std::move(rec));
  };
  record("(2,1)", "algo-b", b);
  record("(1,|W|)", "algo-c", c);
  record("(inf,1)", "occ-reads", o);
  result.note("impossible_cell_witness", chain.fracture);
  result.note("reproduced", (b.s_ok && c.s_ok && o.s_ok && chain.fracture_found) ? "yes" : "no");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "fig1b_bounded_snw",
    "Fig. 1(b) bounded SNW matrix: rounds/versions/N/S per implemented cell",
    run_scenario};

}  // namespace
}  // namespace snowkit
