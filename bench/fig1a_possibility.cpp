// Scenario "fig1a_possibility": reproduces Fig. 1(a): "Is SNOW possible?" —
// the possibility matrix over {2 clients, MWSR, >=3 clients} x {C2C allowed,
// C2C disallowed}.
//
//  - ✓ cells run Algorithm A under randomized schedules and verify, per run,
//    all four SNOW properties: S via the Lemma-20 tag order, N and O
//    mechanically from the simulation trace, W by completion counting.
//  - ✗ cells run the corresponding SNOW *candidate* and print the concrete
//    strict-serializability violation an adversarial schedule produces:
//    the one-round no-C2C candidate fractures (Theorem 2), and Algorithm A
//    extended to two readers admits a stale re-read (Theorem 1).
#include "bench_util.hpp"
#include "proto/algo_a/algo_a.hpp"
#include "sim/script.hpp"
#include "theory/two_client_chain.hpp"

namespace snowkit {
namespace {

using bench::heading;
using bench::row;
using bench::ScenarioOptions;
using bench::ScenarioResult;

/// ✓-cell evidence: Algorithm A satisfies SNOW across seeds.
std::string snow_ok_cell(std::size_t writers, int seeds) {
  for (int seed = 1; seed <= seeds; ++seed) {
    WorkloadSpec spec;
    spec.ops_per_reader = 60;
    spec.ops_per_writer = 20;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = static_cast<std::uint64_t>(seed);
    auto r = bench::run_sim_workload("algo-a", Topology{2, 1, writers}, spec,
                                     static_cast<std::uint64_t>(seed));
    if (!r.tag_order_ok) return "UNEXPECTED S-violation: " + r.tag_order_note;
    if (!r.snow.satisfies_n() || !r.snow.satisfies_o()) return "UNEXPECTED N/O violation";
    if (r.history.completed_writes() != writers * 20) return "UNEXPECTED stuck write";
  }
  return "YES (" + std::to_string(seeds) + " seeds: S+N+O+W verified)";
}

/// ✗-cell evidence for >=3 clients: Algorithm A with two readers.
std::string three_client_cell() {
  SimRuntime sim;
  HistoryRecorder rec(2);
  AlgoAOptions opts;
  opts.allow_multiple_readers = true;
  auto sys = build_algo_a(sim, rec, Topology{2, 2, 1}, opts);
  sim.start();
  const NodeId r2 = sys->reader(1).node_id();
  sim.hold_matching(script::all_of({script::payload_is("info-reader"), script::to_node(r2)}));
  invoke_write(sim, sys->writer(0), {{0, 1}, {1, 2}}, [](const WriteResult&) {});
  sim.run_until_idle();
  invoke_read(sim, sys->reader(0), {0, 1}, [](const ReadResult&) {});
  sim.run_until_idle();
  invoke_read(sim, sys->reader(1), {0, 1}, [](const ReadResult&) {});
  sim.run_until_idle();
  sim.release_all();
  sim.run_until_idle();
  const auto witness = find_stale_reread(rec.snapshot());
  return witness.empty() ? "UNEXPECTED: no violation" : "NO — " + witness;
}

/// ✗-cell evidence without C2C: the Fig. 4 descent fracture.
std::string no_c2c_cell() {
  auto chain = theory::run_two_client_chain();
  return chain.fracture_found ? "NO — " + chain.fracture : "UNEXPECTED: no fracture";
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  const int seeds = opts.quick ? 2 : 5;
  heading("Figure 1(a): Is SNOW possible?  (paper: ✓=algorithm exists, ✗=impossible)");
  const std::vector<int> widths{12, 66, 66};

  const std::string two_c2c = snow_ok_cell(1, seeds);
  const std::string mwsr_c2c = snow_ok_cell(4, seeds);
  const std::string three_cell = three_client_cell();
  const std::string no_c2c = no_c2c_cell();

  row({"Setting", "C2C allowed", "C2C disallowed"}, widths);
  row({"2 clients", two_c2c, no_c2c}, widths);
  row({"MWSR", mwsr_c2c, no_c2c}, widths);
  row({">=3 clients", three_cell, "NO — implied by the C2C case (Theorem 1)"}, widths);
  std::printf("\npaper Fig.1(a):   2 clients: yes/no | MWSR: yes/no | >=3 clients: no/no\n");
  std::printf("reproduced:       matches — every yes-cell verified, every no-cell witnessed\n");

  ScenarioResult result;
  auto cell = [&](const char* setting, const char* c2c, const std::string& verdict) {
    bench::BenchRecord rec;
    rec.protocol = "algo-a";
    rec.shards = 2;
    rec.set("setting", setting).set("c2c", c2c).set("verdict", verdict);
    result.records.push_back(std::move(rec));
  };
  cell("2-clients", "allowed", two_c2c);
  cell("2-clients", "disallowed", no_c2c);
  cell("mwsr", "allowed", mwsr_c2c);
  cell("mwsr", "disallowed", no_c2c);
  cell("3-clients", "allowed", three_cell);
  const bool reproduced = two_c2c.rfind("YES", 0) == 0 && mwsr_c2c.rfind("YES", 0) == 0 &&
                          three_cell.rfind("NO", 0) == 0 && no_c2c.rfind("NO", 0) == 0;
  result.note("reproduced", reproduced ? "yes" : "no");
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "fig1a_possibility",
    "Fig. 1(a) possibility matrix: SNOW verified where claimed, witnessed impossible elsewhere",
    run_scenario};

}  // namespace
}  // namespace snowkit
