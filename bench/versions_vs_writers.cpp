// Scenario "versions_vs_writers": validates Algorithm C's |W| bound
// (Theorem 5 / Fig. 1(b)): with the bounded-version GC extension, the number
// of versions a read-vals response carries stays within (concurrent writers
// + 1), independent of history length; without GC it grows with the total
// number of writes.
#include "bench_util.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

void run_table(const ScenarioOptions& opts, ScenarioResult& result) {
  bench::heading("Algorithm C: versions per response vs concurrent writers (|W| bound)");
  const std::vector<int> widths{10, 16, 18, 18, 10};
  bench::row({"writers", "writes total", "versions (noGC)", "versions (GC)", "S holds"}, widths);
  for (std::size_t writers : {1, 2, 4, 8}) {
    if (opts.quick && writers > 4) continue;
    WorkloadSpec spec;
    spec.ops_per_reader = opts.scaled(50);
    spec.ops_per_writer = opts.scaled(50);
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = writers;

    const Topology topo{2, 2, writers};
    BuildOptions nogc;
    nogc.set("gc_versions", false);  // GC is the default now; baseline opts out
    auto base = bench::run_sim_workload("algo-c", topo, spec, writers, nogc);
    BuildOptions gc;
    gc.set("gc_versions", true);
    auto bounded = bench::run_sim_workload("algo-c", topo, spec, writers + 100, gc);
    bench::row({std::to_string(writers), std::to_string(writers * spec.ops_per_writer),
                std::to_string(base.snow.max_versions_per_response),
                std::to_string(bounded.snow.max_versions_per_response),
                bench::yesno(base.tag_order_ok && bounded.tag_order_ok)},
               widths);
    for (const auto* pair : {&base, &bounded}) {
      auto rec = bench::sim_record("algo-c", topo, *pair, pair->read_latency);
      rec.set("gc", pair == &bounded ? "on" : "off");
      rec.set("writers", std::to_string(writers));
      rec.set("max_versions_per_response",
              std::to_string(pair->snow.max_versions_per_response));
      result.records.push_back(std::move(rec));
    }
  }
  std::printf("\nshape check: the no-GC column grows with total writes (the paper's Vals set\n"
              "keeps everything); the GC column stays O(|W|) — at most concurrent writers\n"
              "plus the one stable version, matching Fig. 1(b)'s |W| row.\n");
}

void print_rounds_vs_span(const ScenarioOptions& opts) {
  bench::heading("one-round property is independent of read width (multi-get size)");
  const std::vector<int> widths{12, 10, 12};
  bench::row({"read span", "rounds", "p50(us)"}, widths);
  for (std::size_t span : {1, 2, 4, 8}) {
    WorkloadSpec spec;
    spec.ops_per_reader = opts.scaled(80);
    spec.ops_per_writer = opts.scaled(20);
    spec.read_span = span;
    spec.seed = 9;
    auto r = bench::run_sim_workload("algo-c", Topology{8, 2, 2}, spec, 9);
    bench::row({std::to_string(span), std::to_string(r.snow.max_read_rounds),
                bench::us(static_cast<double>(r.read_latency.p50_ns))},
               widths);
  }
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;
  run_table(opts, result);
  if (!opts.quick) print_rounds_vs_span(opts);
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "versions_vs_writers",
    "Algorithm C |W| bound: versions per response with and without the GC extension",
    run_scenario};

}  // namespace
}  // namespace snowkit
