// E8: validates Algorithm C's |W| bound (Theorem 5 / Fig. 1(b)): with the
// bounded-version GC extension, the number of versions a read-vals response
// carries stays within (concurrent writers + 1), independent of history
// length; without GC it grows with the total number of writes.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace snowkit {
namespace {

void print_table() {
  bench::heading("Algorithm C: versions per response vs concurrent writers (|W| bound)");
  const std::vector<int> widths{10, 16, 18, 18, 10};
  bench::row({"writers", "writes total", "versions (noGC)", "versions (GC)", "S holds"}, widths);
  for (std::size_t writers : {1, 2, 4, 8}) {
    WorkloadSpec spec;
    spec.ops_per_reader = 50;
    spec.ops_per_writer = 50;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = writers;

    BuildOptions nogc;
    auto base = bench::run_sim_workload("algo-c", Topology{2, 2, writers}, spec,
                                        writers, nogc);
    BuildOptions gc;
    gc.set("gc_versions", true);
    auto bounded = bench::run_sim_workload("algo-c", Topology{2, 2, writers}, spec,
                                           writers + 100, gc);
    bench::row({std::to_string(writers), std::to_string(writers * 50),
                std::to_string(base.snow.max_versions_per_response),
                std::to_string(bounded.snow.max_versions_per_response),
                bench::yesno(base.tag_order_ok && bounded.tag_order_ok)},
               widths);
  }
  std::printf("\nshape check: the no-GC column grows with total writes (the paper's Vals set\n"
              "keeps everything); the GC column stays O(|W|) — at most concurrent writers\n"
              "plus the one stable version, matching Fig. 1(b)'s |W| row.\n");
}

void print_rounds_vs_span() {
  bench::heading("one-round property is independent of read width (multi-get size)");
  const std::vector<int> widths{12, 10, 12};
  bench::row({"read span", "rounds", "p50(us)"}, widths);
  for (std::size_t span : {1, 2, 4, 8}) {
    WorkloadSpec spec;
    spec.ops_per_reader = 80;
    spec.ops_per_writer = 20;
    spec.read_span = span;
    spec.seed = 9;
    auto r = bench::run_sim_workload("algo-c", Topology{8, 2, 2}, spec, 9);
    bench::row({std::to_string(span), std::to_string(r.snow.max_read_rounds),
                bench::us(static_cast<double>(r.read_latency.p50_ns))},
               widths);
  }
}

void BM_AlgoC_Gc(benchmark::State& state) {
  const bool gc = state.range(0) != 0;
  for (auto _ : state) {
    WorkloadSpec spec;
    spec.ops_per_reader = 50;
    spec.ops_per_writer = 50;
    spec.seed = 11;
    BuildOptions opts;
    opts.set("gc_versions", gc);
    auto r = bench::run_sim_workload("algo-c", Topology{2, 1, 4}, spec, 11, opts);
    benchmark::DoNotOptimize(r.wire_bytes);
    state.counters["wire_MB"] = static_cast<double>(r.wire_bytes) / 1e6;
  }
}
BENCHMARK(BM_AlgoC_Gc)->Arg(0)->Arg(1);

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_table();
  snowkit::print_rounds_vs_span();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
