// Scenario "adaptive": the per-object B<->C meta-protocol against its two
// static parents on the skew grid's axes.
//
// The claim under test (ISSUE 10 acceptance): adaptive should never be the
// WORST of the pair it composes — write-heavy skewed traffic flips hot
// objects into C-mode prefetching (sojourn tracks algo-c, within 10% of the
// better static protocol), while uniform read-heavy traffic keeps objects in
// B-mode where the watermark-proved client cache eliminates a large slice of
// the round-2 value fetches outright.
//
// Grid: theta {0.0, 0.99} x read-fraction {0.9, 0.1} x
// {adaptive, algo-b, algo-c}, paced engine-mode arrivals on the SIMULATOR —
// deliberately virtual-time where scenario "skew" is wall-clock.  The gates
// here are per-cell p99 RATIOS between protocols, and a ratio gate needs the
// tail to measure protocol rounds x hop delays, not host scheduling (a
// 1-core CI box swings wall-clock p99 by an order of magnitude between
// identical runs; virtual time is exact and reproducible per seed).  The
// TrafficModel axes match skew cell-for-cell.  Adaptive records carry the
// protocol's own counters — cache_hit_rate, switch_count,
// one_round_fraction — and the notes surface the jq-gateable aggregates CI
// checks:
//
//   adaptive_p99_max_ratio        max over cells of p99(adaptive)/min(p99 B, C)
//   cache_hit_rate_uniform_readheavy   the theta=0, rf=0.9 cell's hit rate
//   switch_count_theta099         total mode flips across the skewed cells
#include "bench_util.hpp"

#include <map>

#include "metrics/wire_stats.hpp"
#include "proto/adaptive/adaptive.hpp"

namespace snowkit {
namespace {

using bench::BenchRecord;
using bench::ScenarioOptions;
using bench::ScenarioResult;

constexpr std::size_t kObjects = 64;
constexpr std::size_t kServers = 4;
constexpr std::size_t kReaders = 4;
constexpr std::size_t kWriters = 4;
constexpr std::uint64_t kLogicalClients = 1'000'000;
constexpr std::size_t kArrivalShards = 4;

TrafficModel make_model(double theta, double read_fraction) {
  TrafficModel model;
  model.zipf_theta = theta;
  model.permute_ranks = true;
  model.read_fraction = read_fraction;
  model.read_span = SpanDist{SpanKind::kGeometric, 1, 4, 0.5};
  model.write_span = SpanDist::fixed(2);
  model.logical_clients = kLogicalClients;
  return model;
}

struct CellRun {
  std::uint64_t ops{0};
  double ops_per_sec{0};
  double achieved_rate{0};
  LatencySummary sojourn;
  std::uint64_t wire_messages{0};
  std::uint64_t wire_bytes{0};
  bool has_adaptive{false};
  AdaptiveStats adaptive;
};

CellRun run_cell(const std::string& kind, const TrafficModel& model, std::size_t total_ops,
                 TimeNs interval_ns, std::uint64_t seed) {
  SimRuntime sim(make_uniform_delay(50'000, 2'000'000, seed));  // 50us..2ms hops
  WireStats wire;
  sim.set_observer(&wire);
  HistoryRecorder rec(kObjects);
  SystemConfig cfg;
  cfg.num_objects = kObjects;
  cfg.num_readers = kReaders;
  cfg.num_writers = kWriters;
  cfg.num_servers = kServers;
  cfg.placement = PlacementKind::kRange;
  auto sys = build_protocol(kind, sim, rec, cfg);
  WorkloadSpec spec;
  spec.seed = seed;
  DriverOptions opts;
  opts.mode = ArrivalMode::kOpenLoop;
  opts.arrival_interval_ns = interval_ns;
  opts.traffic = model;
  opts.arrival_shards = kArrivalShards;

  // Steady-state warmup on the SAME system: the adaptive mode table and the
  // client caches converge over the first EWMA window, and a cold-start
  // transient in the measured percentiles would gate on the ramp, not the
  // protocol.  The warmup driver's sojourn histogram is discarded; disjoint
  // value ranges keep the checkers' writer identification exact.
  {
    DriverOptions warm = opts;
    warm.total_ops = std::max<std::size_t>(200, total_ops / 2);
    WorkloadSpec wspec;
    wspec.seed = seed ^ 0x3a3dull;
    WorkloadDriver warmup(sim, *sys, wspec, warm);
    warmup.start();
    sim.run_until_idle();
    opts.value_base = 1 + warm.total_ops * 8;  // past any value warmup handed out
  }
  const std::uint64_t warm_messages = wire.messages();
  const std::uint64_t warm_bytes = wire.bytes();

  opts.total_ops = total_ops;
  WorkloadDriver driver(sim, *sys, spec, opts);
  driver.start();
  sim.run_until_idle();

  CellRun out;
  out.ops = driver.completed_reads() + driver.completed_writes();
  out.ops_per_sec = 0;  // virtual time: wall-clock throughput is meaningless
  out.achieved_rate = driver.achieved_arrival_rate();
  out.sojourn = driver.sojourn_latency();
  out.wire_messages = wire.messages() - warm_messages;
  out.wire_bytes = wire.bytes() - warm_bytes;
  if (const auto* adaptive = dynamic_cast<const AdaptiveSystem*>(sys.get())) {
    out.has_adaptive = true;
    out.adaptive = adaptive->stats();
  }
  return out;
}

std::string fmt(double v, const char* spec = "%.2f") {
  char buf[48];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

double hit_rate(const AdaptiveStats& s) {
  const double consults = static_cast<double>(s.cache_hits + s.cache_misses);
  return consults > 0 ? static_cast<double>(s.cache_hits) / consults : 0.0;
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;

  const std::vector<double> thetas{0.0, 0.99};
  const std::vector<double> mixes{0.9, 0.1};
  const std::vector<std::string> kinds = {"adaptive", "algo-b", "algo-c"};
  // NOT opts.scaled(): the cells run in virtual time (the whole grid is
  // ~0.5s wall), and a 400-sample p99 is too coarse for the 1.1x ratio gate
  // CI applies — quick mode keeps the full 2000 samples per cell.
  const std::size_t total_ops = 2000;
  const TimeNs interval_ns =
      opts.rate > 0 ? static_cast<TimeNs>(1e9 / opts.rate) : TimeNs{500'000};  // 2000 ops/s

  bench::heading(
      "adaptive vs its static parents: theta x read-mix grid, engine-mode pacing;\n"
      "  percentiles are SOJOURN; hit% and switches are the adaptive layer's own counters");
  const std::vector<int> widths{10, 8, 8, 10, 12, 12, 12, 8, 9};
  bench::row({"protocol", "theta", "rdfrac", "ops", "p50(us)", "p95(us)", "p99(us)", "hit%",
              "switches"},
             widths);

  std::map<std::string, double> p99;
  double uniform_readheavy_hit_rate = 0;
  double uniform_readheavy_one_round = 0;
  std::uint64_t switches_theta099 = 0;
  for (const double theta : thetas) {
    for (const double mix : mixes) {
      for (const std::string& kind : kinds) {
        if (!opts.wants(kind)) continue;
        const CellRun r = run_cell(kind, make_model(theta, mix), total_ops, interval_ns,
                                   opts.seed + 100 * static_cast<std::uint64_t>(theta * 100) +
                                       static_cast<std::uint64_t>(mix * 100));
        std::string hits = "-";
        std::string switches = "-";
        BenchRecord rec;
        rec.protocol = kind;
        rec.shards = kServers;
        rec.ops = r.ops;
        rec.ops_per_sec = r.ops_per_sec;
        rec.latency(r.sojourn);
        rec.wire_messages = r.wire_messages;
        rec.wire_bytes = r.wire_bytes;
        rec.set("mode", "engine-adaptive-grid");
        rec.set("runtime", "sim");
        rec.set("zipf_theta", fmt(theta));
        rec.set("read_fraction", fmt(mix));
        rec.set("achieved_rate", fmt(r.achieved_rate, "%.0f"));
        rec.set("logical_clients", std::to_string(kLogicalClients));
        rec.set("arrival_shards", std::to_string(kArrivalShards));
        rec.set("placement", "range");
        if (r.has_adaptive) {
          const AdaptiveStats& s = r.adaptive;
          const double one_round =
              s.reads > 0 ? static_cast<double>(s.one_round_reads) / static_cast<double>(s.reads)
                          : 0.0;
          rec.set("cache_hit_rate", fmt(hit_rate(s)));
          rec.set("one_round_fraction", fmt(one_round));
          rec.set("switch_count", std::to_string(s.switches));
          rec.set("cache_hits", std::to_string(s.cache_hits));
          rec.set("cache_misses", std::to_string(s.cache_misses));
          rec.set("prefetch_resolved", std::to_string(s.prefetch_resolved));
          rec.set("round2_objects", std::to_string(s.round2_objects));
          hits = fmt(100.0 * hit_rate(s), "%.0f");
          switches = std::to_string(s.switches);
          if (theta == 0.0 && mix == 0.9) {
            uniform_readheavy_hit_rate = hit_rate(s);
            uniform_readheavy_one_round = one_round;
          }
          if (theta == 0.99) switches_theta099 += s.switches;
        }
        bench::row({kind, fmt(theta), fmt(mix), std::to_string(r.ops),
                    bench::us(static_cast<double>(r.sojourn.p50_ns)),
                    bench::us(static_cast<double>(r.sojourn.p95_ns)),
                    bench::us(static_cast<double>(r.sojourn.p99_ns)), hits, switches},
                   widths);
        p99[kind + "/" + fmt(theta) + "/" + fmt(mix)] = static_cast<double>(r.sojourn.p99_ns);
        result.records.push_back(std::move(rec));
      }
    }
  }

  // The acceptance aggregates: adaptive must not lose to the better static
  // parent by more than the 10% band in ANY cell, and the write-heavy skewed
  // cell is called out on its own (that is where B and C genuinely diverge).
  if (opts.protocol.empty()) {
    double max_ratio = 0;
    for (const double theta : thetas) {
      for (const double mix : mixes) {
        const std::string cell = fmt(theta) + "/" + fmt(mix);
        const double a = p99["adaptive/" + cell];
        const double best = std::min(p99["algo-b/" + cell], p99["algo-c/" + cell]);
        if (a <= 0 || best <= 0) continue;
        const double ratio = a / best;
        result.note("adaptive_p99_ratio_" + fmt(theta) + "_" + fmt(mix), fmt(ratio));
        max_ratio = std::max(max_ratio, ratio);
        if (theta == thetas.back() && mix == mixes.back()) {
          result.note("adaptive_write_heavy_skew_ratio", fmt(ratio));
        }
      }
    }
    result.note("adaptive_p99_max_ratio", fmt(max_ratio));
    std::printf("\nadaptive p99 vs best static parent: worst cell ratio %.2f (budget 1.10)\n",
                max_ratio);
  }
  result.note("cache_hit_rate_uniform_readheavy", fmt(uniform_readheavy_hit_rate));
  result.note("one_round_fraction_uniform_readheavy", fmt(uniform_readheavy_one_round));
  result.note("switch_count_theta099", std::to_string(switches_theta099));
  std::printf("uniform read-heavy: cache served %.0f%% of per-object resolutions "
              "(%.0f%% of READs closed in one round); theta=0.99 drove %llu mode flips\n",
              100.0 * uniform_readheavy_hit_rate, 100.0 * uniform_readheavy_one_round,
              static_cast<unsigned long long>(switches_theta099));

  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "adaptive",
    "per-object B<->C switching vs the static parents on the skew grid; cache hit-rate and "
    "mode-flip counters",
    run_scenario};

}  // namespace
}  // namespace snowkit
