// Shared helpers for the snowkit benchmark scenarios.
//
// Every scenario prints the paper-style table(s) it reproduces to stdout
// (run `bench_harness --all` to regenerate the whole evaluation) and returns
// BenchRecords that the harness serializes to BENCH_<scenario>.json.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/run_workload.hpp"
#include "core/system.hpp"
#include "harness.hpp"
#include "metrics/wire_stats.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 16;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%-*s", w, cells[i].c_str());
    line += buf;
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

struct SimRunResult {
  History history;
  SnowTraceReport snow;
  LatencySummary read_latency;
  LatencySummary write_latency;
  LatencySummary sojourn_latency;  ///< arrival->completion incl. backlog queueing.
  std::uint64_t wire_messages{0};
  std::uint64_t wire_bytes{0};
  bool tag_order_ok{false};
  std::string tag_order_note;
};

/// Runs a workload for protocol `kind` (a registry name) on a fresh simulator
/// and collects everything the tables need.  `cfg.num_servers` may shard the
/// objects over a smaller fleet; `driver_opts` selects closed vs open loop.
inline SimRunResult run_sim_workload(const std::string& kind, SystemConfig cfg, WorkloadSpec spec,
                                     std::uint64_t delay_seed = 1, BuildOptions opts = {},
                                     DriverOptions driver_opts = {}) {
  SimRuntime sim(make_uniform_delay(50'000, 2'000'000, delay_seed));  // 50us..2ms hops
  WireStats wire;
  sim.set_observer(&wire);
  HistoryRecorder rec(cfg.num_objects);
  auto sys = build_protocol(kind, sim, rec, cfg, opts);
  WorkloadDriver driver(sim, *sys, spec, driver_opts);
  driver.start();
  sim.run_until_idle();

  SimRunResult out;
  out.history = rec.snapshot();
  out.snow = analyze_snow_trace(sim.trace(), sys->num_servers(), out.history);
  out.read_latency = summarize_latency(out.history, /*reads=*/true);
  out.write_latency = summarize_latency(out.history, /*reads=*/false);
  out.sojourn_latency = driver.sojourn_latency();
  out.wire_messages = wire.messages();
  out.wire_bytes = wire.bytes();
  if (provides_tags(kind)) {
    auto verdict = check_tag_order(out.history);
    out.tag_order_ok = verdict.ok;
    out.tag_order_note = verdict.explanation;
  }
  return out;
}

inline std::string us(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", ns / 1000.0);
  return buf;
}

inline std::string yesno(bool b) { return b ? "yes" : "no"; }

/// BenchRecord skeleton for a simulated run: protocol/shard/wire fields from
/// the run, sojourn percentiles from the given latency summary (open-loop
/// runs pass r.sojourn_latency; closed loops — which have no backlog, so
/// invoke->respond IS the sojourn — pass r.read_latency).  ops_per_sec stays
/// 0: simulated time is virtual.
inline BenchRecord sim_record(const std::string& protocol, const SystemConfig& cfg,
                              const SimRunResult& r, const LatencySummary& sojourn) {
  BenchRecord rec;
  rec.protocol = protocol;
  rec.shards = cfg.server_count();
  rec.ops = r.history.completed_reads() + r.history.completed_writes();
  rec.latency(sojourn);
  rec.wire_messages = r.wire_messages;
  rec.wire_bytes = r.wire_bytes;
  return rec;
}

}  // namespace snowkit::bench
