// Scenario "ablation_coordinator": ablations for the design choices
// DESIGN.md calls out.
//
//  1. Coordinator placement (Algorithms B/C): does colocating s* with a hot
//     object change read latency?  (It shouldn't materially: the coordinator
//     round is to s* regardless; only message locality changes.)
//  2. Algorithm C version GC: wire bytes, response sizes and one-round
//     retry rate with and without the finalize/GC extension — the price of
//     bounded responses is a small probability of an extra round.
//  3. Algorithm A's C2C fan-out: writer-side latency as the only cost of
//     SNOW reads in MWSR.
#include "bench_util.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

void run_coordinator_placement(const ScenarioOptions& opts, ScenarioResult& result) {
  bench::heading("ablation 1: coordinator placement (8 shards, zipfian hot shard = 0)");
  const std::vector<int> widths{10, 14, 12, 12, 10};
  bench::row({"protocol", "s* location", "p50(us)", "p99(us)", "S holds"}, widths);
  for (const char* kind : {"algo-b", "algo-c"}) {
    if (!opts.wants(kind)) continue;
    for (ObjectId coor : {ObjectId{0}, ObjectId{7}}) {
      WorkloadSpec spec;
      spec.ops_per_reader = opts.scaled(80);
      spec.ops_per_writer = opts.scaled(30);
      spec.read_span = 3;
      spec.zipf_theta = 0.9;
      spec.seed = 17;
      BuildOptions bopts;
      bopts.set("coordinator", coor);
      const Topology topo{8, 2, 2};
      auto r = bench::run_sim_workload(kind, topo, spec, 17, bopts);
      bench::row({kind, coor == 0 ? "hot shard" : "cold shard",
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  bench::us(static_cast<double>(r.read_latency.p99_ns)),
                  bench::yesno(r.tag_order_ok)},
                 widths);
      auto rec = bench::sim_record(kind, topo, r, r.read_latency);
      rec.set("ablation", "coordinator-placement");
      rec.set("coordinator", coor == 0 ? "hot" : "cold");
      result.records.push_back(std::move(rec));
    }
  }
  std::printf("\nshape check: placement shifts load, not rounds — latency differences stay\n"
              "within network noise because the coordinator answers non-blocking either way.\n");
}

void run_gc_ablation(const ScenarioOptions& opts, ScenarioResult& result) {
  if (!opts.wants("algo-c")) return;
  bench::heading("ablation 2: Algorithm C bounded-version GC (2 shards, 4 writers)");
  const std::vector<int> widths{8, 16, 14, 14, 12, 10};
  bench::row({"GC", "max versions", "wire bytes", "extra-round", "p50(us)", "S holds"}, widths);
  for (bool gc : {false, true}) {
    WorkloadSpec spec;
    spec.ops_per_reader = opts.scaled(100);
    spec.ops_per_writer = opts.scaled(60);
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = 23;
    BuildOptions bopts;
    bopts.set("gc_versions", gc);
    const Topology topo{2, 2, 4};
    auto r = bench::run_sim_workload("algo-c", topo, spec, 23, bopts);
    int retried = 0;
    for (const auto& t : r.history.txns) {
      if (t.is_read && t.complete && t.rounds > 1) ++retried;
    }
    bench::row({bench::yesno(gc), std::to_string(r.snow.max_versions_per_response),
                std::to_string(r.wire_bytes),
                std::to_string(retried) + "/" + std::to_string(r.history.completed_reads()),
                bench::us(static_cast<double>(r.read_latency.p50_ns)),
                bench::yesno(r.tag_order_ok)},
               widths);
    auto rec = bench::sim_record("algo-c", topo, r, r.read_latency);
    rec.set("ablation", "gc");
    rec.set("gc", bench::yesno(gc));
    rec.set("read_retries", std::to_string(retried));
    result.records.push_back(std::move(rec));
  }
  std::printf("\nshape check: GC bounds responses at |W|+1 and cuts wire volume sharply; the\n"
              "cost is a rare descent failure that retries the READ (an extra round) — the\n"
              "trade the paper's one-round/one-version dichotomy predicts.\n");
}

void run_c2c_cost(const ScenarioOptions& opts, ScenarioResult& result) {
  bench::heading("ablation 3: Algorithm A's write path (the cost of SNOW reads in MWSR)");
  const std::vector<int> widths{12, 14, 14, 14};
  bench::row({"protocol", "write p50(us)", "write p99(us)", "read p50(us)"}, widths);
  for (const char* kind : {"algo-a", "algo-b", "simple"}) {
    if (!opts.wants(kind)) continue;
    WorkloadSpec spec;
    spec.ops_per_reader = opts.scaled(60);
    spec.ops_per_writer = opts.scaled(60);
    spec.write_span = 3;
    spec.read_span = 3;
    spec.seed = 29;
    const std::size_t readers = 1;  // MWSR for a fair A comparison
    const Topology topo{4, readers, 3};
    auto r = bench::run_sim_workload(kind, topo, spec, 29);
    bench::row({kind, bench::us(static_cast<double>(r.write_latency.p50_ns)),
                bench::us(static_cast<double>(r.write_latency.p99_ns)),
                bench::us(static_cast<double>(r.read_latency.p50_ns))},
               widths);
    auto rec = bench::sim_record(kind, topo, r, r.read_latency);
    rec.set("ablation", "c2c-write-cost");
    rec.set("write_p50_us", bench::us(static_cast<double>(r.write_latency.p50_ns)));
    result.records.push_back(std::move(rec));
  }
  std::printf("\nshape check: algo-a's WRITEs pay an extra C2C round (info-reader) relative to\n"
              "simple writes — that is where SNOW's read optimality is paid for; algo-b pays\n"
              "the same extra round at the coordinator instead.\n");
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;
  run_coordinator_placement(opts, result);
  run_gc_ablation(opts, result);
  if (!opts.quick) run_c2c_cost(opts, result);
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "ablation_coordinator",
    "design ablations: coordinator placement, Algorithm C GC, Algorithm A C2C write cost",
    run_scenario};

}  // namespace
}  // namespace snowkit
