// E10a: scaling with shard count — latency and wire volume per protocol as
// the number of servers (and read width) grows.  READ-transaction cost per
// object should stay flat for the one-round protocols; Algorithm C's
// get-tag-arr history payload and the coordinator's fan-in are the costs to
// watch.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace snowkit {
namespace {

void print_servers_sweep() {
  bench::heading("scaling with shard count (read span = k/2, 2 readers, 2 writers)");
  const std::vector<int> widths{10, 12, 10, 12, 14, 14};
  bench::row({"protocol", "servers", "rounds", "p50(us)", "msgs/txn", "bytes/txn"}, widths);
  for (ProtocolKind kind : {ProtocolKind::AlgoA, ProtocolKind::AlgoB, ProtocolKind::AlgoC}) {
    for (std::size_t k : {2, 4, 8, 16}) {
      if (kind == ProtocolKind::AlgoA && k > 8) continue;  // keep the MWSR case small
      WorkloadSpec spec;
      spec.ops_per_reader = 60;
      spec.ops_per_writer = 20;
      spec.read_span = std::max<std::size_t>(1, k / 2);
      spec.write_span = 2;
      spec.seed = k;
      const std::size_t readers = kind == ProtocolKind::AlgoA ? 1 : 2;
      auto r = bench::run_sim_workload(kind, Topology{k, readers, 2}, spec, k);
      const std::size_t txns = r.history.completed_reads() + r.history.completed_writes();
      bench::row({protocol_name(kind), std::to_string(k), std::to_string(r.snow.max_read_rounds),
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  std::to_string(r.wire_messages / std::max<std::size_t>(1, txns)),
                  std::to_string(r.wire_bytes / std::max<std::size_t>(1, txns))},
                 widths);
    }
  }
  std::printf("\nshape check: rounds stay constant in k for all three algorithms (1/2/1);\n"
              "messages per txn grow linearly with the read/write span, as in the paper's\n"
              "model; algo-c's bytes grow fastest (multi-version responses + key history).\n");
}

void print_multiget_width() {
  bench::heading("latency vs multi-get width (16 shards)");
  const std::vector<int> widths{10, 8, 12, 12};
  bench::row({"protocol", "span", "p50(us)", "p99(us)"}, widths);
  for (ProtocolKind kind : {ProtocolKind::Simple, ProtocolKind::AlgoB, ProtocolKind::AlgoC}) {
    for (std::size_t span : {1, 4, 8, 16}) {
      WorkloadSpec spec;
      spec.ops_per_reader = 60;
      spec.ops_per_writer = 10;
      spec.read_span = span;
      spec.seed = span;
      auto r = bench::run_sim_workload(kind, Topology{16, 2, 2}, spec, span);
      bench::row({protocol_name(kind), std::to_string(span),
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  bench::us(static_cast<double>(r.read_latency.p99_ns))},
                 widths);
    }
  }
  std::printf("\nshape check: wider multi-gets raise latency via the max over parallel\n"
              "straggler hops, not via extra rounds — non-blocking one-round reads cost\n"
              "max(hop) + hop regardless of span.\n");
}

void BM_Scal_AlgoC_Servers(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    WorkloadSpec spec;
    spec.ops_per_reader = 30;
    spec.ops_per_writer = 10;
    spec.read_span = std::max<std::size_t>(1, k / 2);
    spec.seed = 13;
    auto r = bench::run_sim_workload(ProtocolKind::AlgoC, Topology{k, 2, 2}, spec, 13);
    benchmark::DoNotOptimize(r.read_latency.count);
  }
}
BENCHMARK(BM_Scal_AlgoC_Servers)->Arg(2)->Arg(8)->Arg(16);

}  // namespace
}  // namespace snowkit

int main(int argc, char** argv) {
  snowkit::print_servers_sweep();
  snowkit::print_multiget_width();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
