// Scenario "scalability": scaling with shard count — latency and wire volume
// per protocol as the number of servers (and read width) grows.
// READ-transaction cost per object should stay flat for the one-round
// protocols; Algorithm C's get-tag-arr history payload and the coordinator's
// fan-in are the costs to watch.
#include "bench_util.hpp"
#include "metrics/gc_stats.hpp"

namespace snowkit {
namespace {

using bench::ScenarioOptions;
using bench::ScenarioResult;

/// Algorithm C wire volume under sustained writes: the watermark-GC'd
/// version store (the default) against the paper's literal keep-everything
/// Vals.  Fixed op counts even in --quick — the CI gate asserts the shrink
/// factor in the notes, so the workload must not vary with the mode.
void run_version_growth(const ScenarioOptions& opts, ScenarioResult& result) {
  if (!opts.wants("algo-c")) return;
  bench::heading("algo-c wire volume vs history length (2 shards, 4 writers, 300 ops/client)");
  const std::vector<int> widths{10, 12, 14, 14, 14, 10};
  bench::row({"GC", "txns", "bytes/txn", "inserted", "pruned", "S holds"}, widths);

  double bytes_per_op[2] = {0, 0};
  for (const bool gc : {false, true}) {
    WorkloadSpec spec;
    spec.ops_per_reader = 300;
    spec.ops_per_writer = 300;
    spec.read_span = 2;
    spec.write_span = 2;
    spec.seed = 41;
    BuildOptions bopts;
    bopts.set("gc_versions", gc);
    const Topology topo{2, 2, 4};
    const GcSnapshot before = GcCounters::global().snapshot();
    auto r = bench::run_sim_workload("algo-c", topo, spec, 41, bopts);
    const GcSnapshot gc_delta = GcCounters::global().snapshot().delta(before);
    const std::size_t txns = r.history.completed_reads() + r.history.completed_writes();
    bytes_per_op[gc ? 1 : 0] =
        static_cast<double>(r.wire_bytes) / static_cast<double>(std::max<std::size_t>(1, txns));
    char bpo[32];
    std::snprintf(bpo, sizeof bpo, "%.0f", bytes_per_op[gc ? 1 : 0]);
    bench::row({bench::yesno(gc), std::to_string(txns), bpo,
                std::to_string(gc_delta.inserted), std::to_string(gc_delta.pruned),
                bench::yesno(r.tag_order_ok)},
               widths);
    auto rec = bench::sim_record("algo-c", topo, r, r.read_latency);
    rec.set("sweep", "version-growth");
    rec.set("gc", bench::yesno(gc));
    rec.set("gc_versions_pruned", std::to_string(gc_delta.pruned));
    result.records.push_back(std::move(rec));
  }
  const double shrink = bytes_per_op[1] > 0 ? bytes_per_op[0] / bytes_per_op[1] : 0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", bytes_per_op[1]);
  result.note("algoc_bytes_per_op", buf);
  std::snprintf(buf, sizeof buf, "%.0f", bytes_per_op[0]);
  result.note("algoc_bytes_per_op_nogc", buf);
  std::snprintf(buf, sizeof buf, "%.2f", shrink);
  result.note("algoc_wire_shrink_x", buf);
  std::printf("\nshrink: %.1fx fewer wire bytes per txn with watermark GC (CI gates >= 10x)\n",
              shrink);
  std::printf("shape check: keep-everything responses grow linearly with completed writes —\n"
              "bytes/txn is O(history) — while the GC'd store ships only the anchor plus the\n"
              "versions of writes concurrent with an in-flight READ, so bytes/txn is flat.\n");
}

void run_servers_sweep(const ScenarioOptions& opts, ScenarioResult& result) {
  bench::heading("scaling with shard count (read span = k/2, 2 readers, 2 writers)");
  const std::vector<int> widths{10, 12, 10, 12, 14, 14};
  bench::row({"protocol", "servers", "rounds", "p50(us)", "msgs/txn", "bytes/txn"}, widths);
  for (const std::string kind : {"algo-a", "algo-b", "algo-c"}) {
    if (!opts.wants(kind)) continue;
    for (std::size_t k : {2, 4, 8, 16}) {
      if (kind == "algo-a" && k > 8) continue;  // keep the MWSR case small
      if (opts.quick && k > 4) continue;
      WorkloadSpec spec;
      spec.ops_per_reader = opts.scaled(60);
      spec.ops_per_writer = opts.scaled(20);
      spec.read_span = std::max<std::size_t>(1, k / 2);
      spec.write_span = 2;
      spec.seed = k;
      const std::size_t readers = kind == "algo-a" ? 1 : 2;
      const Topology topo{k, readers, 2};
      auto r = bench::run_sim_workload(kind, topo, spec, k);
      const std::size_t txns = r.history.completed_reads() + r.history.completed_writes();
      bench::row({kind, std::to_string(k), std::to_string(r.snow.max_read_rounds),
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  std::to_string(r.wire_messages / std::max<std::size_t>(1, txns)),
                  std::to_string(r.wire_bytes / std::max<std::size_t>(1, txns))},
                 widths);
      auto rec = bench::sim_record(kind, topo, r, r.read_latency);
      rec.set("sweep", "servers");
      rec.set("max_read_rounds", std::to_string(r.snow.max_read_rounds));
      result.records.push_back(std::move(rec));
    }
  }
  std::printf("\nshape check: rounds stay constant in k for all three algorithms (1/2/1);\n"
              "messages per txn grow linearly with the read/write span, as in the paper's\n"
              "model; algo-c's bytes grow fastest (multi-version responses + key history).\n");
}

void print_multiget_width(const ScenarioOptions& opts) {
  bench::heading("latency vs multi-get width (16 shards)");
  const std::vector<int> widths{10, 8, 12, 12};
  bench::row({"protocol", "span", "p50(us)", "p99(us)"}, widths);
  for (const char* kind : {"simple", "algo-b", "algo-c"}) {
    if (!opts.wants(kind)) continue;
    for (std::size_t span : {1, 4, 8, 16}) {
      WorkloadSpec spec;
      spec.ops_per_reader = opts.scaled(60);
      spec.ops_per_writer = opts.scaled(10);
      spec.read_span = span;
      spec.seed = span;
      auto r = bench::run_sim_workload(kind, Topology{16, 2, 2}, spec, span);
      bench::row({kind, std::to_string(span),
                  bench::us(static_cast<double>(r.read_latency.p50_ns)),
                  bench::us(static_cast<double>(r.read_latency.p99_ns))},
                 widths);
    }
  }
  std::printf("\nshape check: wider multi-gets raise latency via the max over parallel\n"
              "straggler hops, not via extra rounds — non-blocking one-round reads cost\n"
              "max(hop) + hop regardless of span.\n");
}

void run_sharded_fleet(const ScenarioOptions& opts, ScenarioResult& result) {
  bench::heading("object placement: 16 objects sharded over smaller server fleets");
  const std::vector<int> widths{10, 10, 12, 10, 12, 14};
  bench::row({"protocol", "servers", "placement", "rounds", "p50(us)", "S holds"}, widths);
  for (const std::string kind : {"algo-b", "algo-c"}) {
    if (!opts.wants(kind)) continue;
    for (std::size_t servers : {16, 8, 4, 2}) {
      if (opts.quick && servers != 4) continue;
      for (PlacementKind placement : {PlacementKind::kHash, PlacementKind::kRange}) {
        if (servers == 16 && placement == PlacementKind::kRange) continue;  // identity either way
        SystemConfig cfg{16, 2, 2};
        cfg.num_servers = servers;
        cfg.placement = placement;
        WorkloadSpec spec;
        spec.ops_per_reader = opts.scaled(60);
        spec.ops_per_writer = opts.scaled(20);
        spec.read_span = 4;
        spec.write_span = 2;
        spec.seed = servers;
        auto r = bench::run_sim_workload(kind, cfg, spec, servers);
        bench::row({kind, std::to_string(servers),
                    placement == PlacementKind::kHash ? "hash" : "range",
                    std::to_string(r.snow.max_read_rounds),
                    bench::us(static_cast<double>(r.read_latency.p50_ns)),
                    bench::yesno(r.tag_order_ok)},
                   widths);
        auto rec = bench::sim_record(kind, cfg, r, r.read_latency);
        rec.set("sweep", "placement");
        rec.set("placement", placement == PlacementKind::kHash ? "hash" : "range");
        rec.set("s_holds", bench::yesno(r.tag_order_ok));
        result.records.push_back(std::move(rec));
      }
    }
  }
  std::printf("\nshape check: correctness (S, rounds) is placement-independent — sharding\n"
              "collapses fan-out, not protocol structure; latency shifts only via which\n"
              "parallel requests share a server hop.\n");
}

void run_open_loop(const ScenarioOptions& opts, ScenarioResult& result) {
  if (!opts.wants("algo-c")) return;
  bench::heading("open-loop mixed workload (algo-c, 8 objects on 3 servers, 90% reads)");
  const std::vector<int> widths{18, 10, 16, 16, 10};
  bench::row({"arrival gap (us)", "ops", "sojourn p50(us)", "sojourn p99(us)", "S holds"},
             widths);
  for (TimeNs gap_ns : {2'000'000, 500'000, 100'000, 20'000}) {
    if (opts.quick && gap_ns != 100'000) continue;
    SystemConfig cfg{8, 2, 2};
    cfg.num_servers = 3;
    WorkloadSpec spec;
    spec.read_span = 3;
    spec.write_span = 2;
    spec.seed = 7;
    DriverOptions dopts;
    dopts.mode = ArrivalMode::kOpenLoop;
    dopts.total_ops = opts.scaled(200, 2);
    dopts.arrival_interval_ns = gap_ns;
    dopts.read_fraction = 0.9;
    auto r = bench::run_sim_workload("algo-c", cfg, spec, 7, {}, dopts);
    bench::row({bench::us(static_cast<double>(gap_ns)),
                std::to_string(r.history.completed_reads() + r.history.completed_writes()),
                bench::us(static_cast<double>(r.sojourn_latency.p50_ns)),
                bench::us(static_cast<double>(r.sojourn_latency.p99_ns)),
                bench::yesno(r.tag_order_ok)},
               widths);
    auto rec = bench::sim_record("algo-c", cfg, r, r.sojourn_latency);
    rec.set("sweep", "open-loop");
    rec.set("arrival_gap_us", bench::us(static_cast<double>(gap_ns)));
    result.records.push_back(std::move(rec));
  }
  std::printf("\nshape check: closed-loop latencies hide queueing; as the open-loop arrival\n"
              "gap drops below service time, client-side backlog inflates p99 while strict\n"
              "serializability holds — the knee is the capacity of the 3-server fleet.\n");
}

ScenarioResult run_scenario(const ScenarioOptions& opts) {
  ScenarioResult result;
  run_servers_sweep(opts, result);
  if (!opts.quick) print_multiget_width(opts);
  run_sharded_fleet(opts, result);
  run_open_loop(opts, result);
  run_version_growth(opts, result);
  bench::stamp_host_cores(result);
  return result;
}

const bench::ScenarioRegistration kReg{
    "scalability",
    "shard-count / placement / multi-get-width / open-loop sweeps on the simulator",
    run_scenario};

}  // namespace
}  // namespace snowkit
