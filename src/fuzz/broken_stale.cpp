// broken-stale: a deliberately faulty protocol that guards the fuzzer
// against vacuity.
//
// The server keeps every committed version but serves reads LAGGED a fixed
// number of writes behind the newest one (BuildOptions "lag", default 2) —
// a classic stale-replica bug.  It reuses the simple/naive wire protocol
// and client nodes, and ADVERTISES strict serializability while the
// registry truth denies it, so the fuzz oracle audits it and must convict
// it within a handful of seeds (tests/fuzz_oracle_test.cpp).  If a checker
// or scheduler change ever lets broken-stale run clean, the fuzzer has gone
// blind and CI fails.
#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/simple/parallel_rw.hpp"

namespace snowkit {
namespace {

class StaleServer final : public Node {
 public:
  explicit StaleServer(std::size_t lag) : lag_(lag) {}

  void on_message(NodeId from, const Message& m) override {
    if (const auto* w = std::get_if<SimpleWriteReq>(&m.payload)) {
      versions_[w->obj].push_back(w->value);
      send(from, Message{m.txn, SimpleWriteAck{w->obj}});
      return;
    }
    if (const auto* r = std::get_if<SimpleReadReq>(&m.payload)) {
      Value v = kInitialValue;
      if (const auto it = versions_.find(r->obj); it != versions_.end()) {
        const auto& vs = it->second;
        // The bug: ignore the newest `lag_` committed versions.
        v = vs.size() > lag_ ? vs[vs.size() - 1 - lag_] : vs.front();
      }
      send(from, Message{m.txn, SimpleReadResp{r->obj, v}});
      return;
    }
    SNOW_UNREACHABLE("broken-stale server got unexpected payload");
  }

 private:
  std::size_t lag_;
  std::map<ObjectId, std::vector<Value>> versions_;
};

const ProtocolRegistration kRegisterBrokenStale{
    ProtocolTraits{
        .name = "broken-stale",
        .summary = "fault-injection stub: reads lag 2 writes behind — fuzzer vacuity guard",
        .claims_strict_serializability = false,
        .advertises_strict_serializability = true,  // the lie the oracle must catch
        .provides_tags = false,
        .snow_s = false,
        .snow_n = true,
        .snow_o = true,
        .snow_w = true,
        .mwmr = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      cfg.validate();
      const Placement place(cfg);
      rec.attach_runtime(&rt);
      const auto lag = static_cast<std::size_t>(opts.get_int("lag", 2));
      for (std::size_t i = 0; i < place.num_servers(); ++i) {
        const NodeId id = rt.add_node(std::make_unique<StaleServer>(lag));
        SNOW_CHECK(id == i);
      }
      std::vector<detail::ParallelReader*> readers;
      for (std::size_t i = 0; i < cfg.num_readers; ++i) {
        auto node = std::make_unique<detail::ParallelReader>(rec, place);
        readers.push_back(node.get());
        rt.add_node(std::move(node));
      }
      std::vector<detail::ParallelWriter*> writers;
      for (std::size_t i = 0; i < cfg.num_writers; ++i) {
        auto node = std::make_unique<detail::ParallelWriter>(rec, place);
        writers.push_back(node.get());
        rt.add_node(std::move(node));
      }
      return std::make_unique<detail::ParallelSystem>("broken-stale", cfg, rt, std::move(readers),
                                                      std::move(writers));
    }};

}  // namespace
}  // namespace snowkit
