// broken-adaptive: the adaptive layer with its cache proof removed — the
// differential-fuzz battery's vacuity guard for the client version cache.
//
// It is the REAL adaptive build (src/proto/adaptive) with
// AdaptiveOptions::broken_cache set: a reader serves ANY cached entry for an
// object instead of requiring the cached key to equal latest[obj] in the
// fresh tag array.  Once a second write lands on a cached object, the next
// READ returns the superseded version — a stale read the history checkers
// convict.  Like broken-stale, it ADVERTISES strict serializability while
// the registry truth denies it, so the fuzz oracle audits it and
// tests/adaptive_fuzz_test.cpp must convict it within a handful of seeds;
// if it ever runs clean, the cache-invariant half of the battery has gone
// blind and CI fails.
#include "core/registry.hpp"
#include "proto/adaptive/adaptive.hpp"

namespace snowkit {
namespace {

const ProtocolRegistration kRegisterBrokenAdaptive{
    ProtocolTraits{
        .name = "broken-adaptive",
        .summary = "fault-injection stub: adaptive cache without the watermark "
                   "proof — differential-fuzz vacuity guard",
        .claims_strict_serializability = false,
        .advertises_strict_serializability = true,  // the lie the oracle must catch
        .provides_tags = false,
        .snow_s = false,
        .snow_n = true,
        .snow_o = false,
        .snow_w = true,
        .mwmr = true,
        .supports_replication = true,
        .version_bound = "<=|W|+1",
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AdaptiveOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.gc_versions = opts.get_bool("gc_versions", true);
      o.replicas = static_cast<std::size_t>(opts.get_int("replicas", 1));
      o.wal_dir = opts.get("wal_dir", "");
      o.unsafe_ack = opts.get_bool("unsafe_ack", false);
      o.broken_cache = true;  // the planted bug
      o.name = "broken-adaptive";
      return build_adaptive(rt, rec, cfg, o);
    }};

}  // namespace
}  // namespace snowkit
