// The fuzzer's oracle: per-run checker battery + differential cross-protocol
// comparison.
//
// check_run() feeds a completed CaseRun through every checker the protocol's
// traits make applicable — liveness, the fast strict-serializability
// detectors, the exact search checker (on small histories), the Lemma-20
// tag-order verifier and the trace-level non-blocking monitor — and reports
// the first violation.  A violation is EXPECTED when the registry's ground
// truth already denies the audited claim (eiger, naive, broken-stale): those
// are the paper's counterexamples rediscovered, not bugs.
//
// differential_check() runs the SAME client program and schedule seed across
// every protocol of a consistency class and compares verdicts: a protocol
// that fails while a reference implementation of the class passes the
// identical workload is a differential divergence attributed to that
// protocol.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"

namespace snowkit::fuzz {

struct OracleOptions {
  /// Run the exact serializability search only on histories at most this
  /// large (completed transactions); the fast detectors cover the rest.
  std::size_t max_search_txns{48};
  /// Search-state cap for the exact checker (exhaustion = inconclusive,
  /// never reported as a violation).
  std::size_t max_states{400'000};
};

struct OracleReport {
  bool violation{false};
  /// True when the registry truth (ProtocolTraits::claims_strict_serializability)
  /// already denies the audited claim — an expected divergence.
  bool expected{false};
  std::string checker;      ///< "liveness", "unwritten-value", "fractured-read",
                            ///< "stale-reread", "serializability", "tag-order",
                            ///< "non-blocking" — or "" when ok.
  std::string explanation;
};

/// Audits one run against the protocol's claimed AND advertised guarantees.
OracleReport check_run(const std::string& protocol, const CaseRun& run,
                       const OracleOptions& opts = {});

/// True if the protocol's claimed-or-advertised level is strict
/// serializability, i.e. the S checkers apply to it.
bool audits_strict_serializability(const std::string& protocol);

/// All registered protocols whose claimed-or-advertised level is strict
/// serializability (the differential class), sorted.
std::vector<std::string> strict_serializable_class();

struct DifferentialOutcome {
  std::string protocol;
  OracleReport report;
  std::size_t completed_reads{0};
  std::size_t distinct_read_observations{0};  ///< distinct (object, value) read pairs.
};

struct DifferentialReport {
  /// Some audited protocol violated while another passed the same program.
  bool divergence{false};
  /// A truthfully-claiming protocol violated: a genuine bug, never expected.
  bool unexpected{false};
  std::vector<DifferentialOutcome> outcomes;
  std::string details;  ///< human-readable per-protocol verdict lines.
};

/// Runs `base`'s client program + schedule seed across `protocols`
/// (base.protocol is ignored).  The base case must be compatible with every
/// protocol in the class — generate it with GenParams::single_reader when
/// the class contains an MWSR protocol.
DifferentialReport differential_check(const FuzzCase& base,
                                      const std::vector<std::string>& protocols,
                                      const OracleOptions& opts = {});

}  // namespace snowkit::fuzz
