// Fuzz trace files: the on-disk repro artifact.
//
// A trace file bundles everything needed to re-trigger a checker failure
// deterministically: the minimized FuzzCase, the recorded ScheduleLog of the
// failing run, the checker that fired with its explanation, and an FNV-1a
// fingerprint of the failing run's sim/trace so a replay can assert
// byte-identical reproduction.  The binary format reuses the wire codec's
// Buffer machinery (schema tag "snowkit-fuzz-trace-v2"); files are
// platform-independent on little-endian machines, like the wire codec.
//
// v2 added FuzzCase::replicas.  v1 files (no replicas field) still decode —
// they predate replication, so replicas=1 is implied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"

namespace snowkit::fuzz {

inline constexpr const char* kFuzzTraceSchema = "snowkit-fuzz-trace-v2";
inline constexpr const char* kFuzzTraceSchemaV1 = "snowkit-fuzz-trace-v1";

struct FuzzTraceFile {
  FuzzCase c;
  ScheduleLog log;
  std::string checker;
  std::string explanation;
  std::uint64_t trace_hash{0};

  friend bool operator==(const FuzzTraceFile&, const FuzzTraceFile&) = default;
};

std::vector<std::uint8_t> encode_trace_file(const FuzzTraceFile& f);
/// Throws std::invalid_argument on schema mismatch or truncation.
FuzzTraceFile decode_trace_file(const std::vector<std::uint8_t>& bytes);

/// Throws std::runtime_error on I/O failure.
void write_trace_file(const std::string& path, const FuzzTraceFile& f);
FuzzTraceFile read_trace_file(const std::string& path);

}  // namespace snowkit::fuzz
