#include "fuzz/fuzz_case.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/registry.hpp"
#include "core/system.hpp"

namespace snowkit::fuzz {

namespace {

/// Rejects malformed cases (hand-edited or truncated trace files) with a
/// precise message instead of tripping protocol asserts mid-run.
void validate_case(const FuzzCase& c) {
  if (c.num_objects == 0) throw std::invalid_argument("FuzzCase: num_objects must be >= 1");
  if (c.num_readers == 0 && c.num_writers == 0) {
    throw std::invalid_argument("FuzzCase: needs at least one client");
  }
  // Magnitude bounds: cases come from trace FILES too, and a corrupted
  // header must fail here with a message, not OOM building a billion nodes.
  constexpr std::uint32_t kMaxFleet = 4096;
  if (c.num_objects > kMaxFleet || c.num_readers > kMaxFleet || c.num_writers > kMaxFleet ||
      c.num_servers > kMaxFleet) {
    throw std::invalid_argument("FuzzCase: topology exceeds the " +
                                std::to_string(kMaxFleet) + "-node sanity bound");
  }
  if (c.replicas != 1 && c.replicas != 2) {
    throw std::invalid_argument("FuzzCase: replicas must be 1 or 2, got " +
                                std::to_string(c.replicas));
  }
  if (c.replicas == 2 &&
      !ProtocolRegistry::global().traits(c.protocol).supports_replication) {
    throw std::invalid_argument("FuzzCase: protocol '" + c.protocol +
                                "' does not support replicas=2");
  }
  const std::size_t clients = c.num_clients();
  for (std::size_t i = 0; i < c.ops.size(); ++i) {
    const FuzzOp& op = c.ops[i];
    const std::string at = "FuzzCase: op " + std::to_string(i);
    if (op.client >= clients) throw std::invalid_argument(at + " names an unknown client");
    if (op.objects.empty()) throw std::invalid_argument(at + " has an empty object set");
    if (op.is_read) {
      if (!op.values.empty()) throw std::invalid_argument(at + " is a READ carrying values");
      if (c.num_readers == 0) throw std::invalid_argument(at + " is a READ but there are no read-clients");
    } else {
      if (op.values.size() != op.objects.size()) {
        throw std::invalid_argument(at + " write values not aligned with objects");
      }
      if (c.num_writers == 0) throw std::invalid_argument(at + " is a WRITE but there are no write-clients");
      for (Value v : op.values) {
        if (v == kInitialValue) throw std::invalid_argument(at + " writes the reserved initial value");
      }
    }
    std::vector<ObjectId> objs = op.objects;
    std::sort(objs.begin(), objs.end());
    if (std::adjacent_find(objs.begin(), objs.end()) != objs.end()) {
      throw std::invalid_argument(at + " repeats an object");
    }
    if (objs.back() >= c.num_objects) throw std::invalid_argument(at + " names an unknown object");
  }
}

/// `span` distinct objects out of [0, k), deterministically per rng state.
std::vector<ObjectId> sample_objects(Xoshiro256& rng, std::uint32_t k, std::uint32_t span) {
  std::vector<ObjectId> ids(k);
  for (std::uint32_t i = 0; i < k; ++i) ids[i] = i;
  for (std::uint32_t i = 0; i < span; ++i) {
    const std::uint32_t j = i + static_cast<std::uint32_t>(rng.below(k - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(span);
  return ids;
}

CaseRun execute(const FuzzCase& c, SchedulePolicy& policy, ScheduleLog* record,
                std::size_t max_decisions) {
  validate_case(c);
  CaseRun out;
  SimRuntime sim;
  HistoryRecorder rec(c.num_objects);
  BuildOptions build_opts;
  if (c.replicas != 1) build_opts.set("replicas", c.replicas);
  auto sys = build_protocol(c.protocol, sim, rec, c.config(), build_opts);
  out.num_servers = sys->num_servers();

  std::vector<std::vector<const FuzzOp*>> per_client(sys->num_clients());
  for (const FuzzOp& op : c.ops) per_client[op.client].push_back(&op);

  std::size_t remaining = c.ops.size();
  // Closed-loop chain per client: op i+1 is submitted from op i's completion
  // callback, preserving the program order the case records.
  std::function<void(std::size_t, std::size_t)> issue = [&](std::size_t client, std::size_t idx) {
    const FuzzOp& op = *per_client[client][idx];
    TxnRequest req;
    if (op.is_read) {
      req = read_txn(op.objects);
    } else {
      std::vector<std::pair<ObjectId, Value>> writes;
      writes.reserve(op.objects.size());
      for (std::size_t i = 0; i < op.objects.size(); ++i) {
        writes.emplace_back(op.objects[i], op.values[i]);
      }
      req = write_txn(std::move(writes));
    }
    sys->client(client).submit(std::move(req), [&, client, idx](const TxnResult&) {
      --remaining;
      if (idx + 1 < per_client[client].size()) issue(client, idx + 1);
    });
  };
  for (std::size_t client = 0; client < per_client.size(); ++client) {
    if (!per_client[client].empty()) issue(client, 0);
  }

  out.stats = run_scheduled(sim, policy, record, max_decisions);
  out.completed = remaining == 0;
  out.history = rec.snapshot();
  out.trace = sim.trace();
  return out;
}

}  // namespace

SystemConfig FuzzCase::config() const {
  SystemConfig cfg{num_objects, num_readers, num_writers};
  cfg.num_servers = num_servers;
  cfg.placement = placement;
  return cfg;
}

std::size_t FuzzCase::num_clients() const {
  return std::max<std::size_t>(num_readers, num_writers);
}

FuzzCase generate_case(const std::string& protocol, const GenParams& params, std::uint64_t seed) {
  const ProtocolTraits& traits = ProtocolRegistry::global().traits(protocol);
  SplitMix64 streams(seed);
  Xoshiro256 rng(streams.next());

  FuzzCase c;
  c.protocol = protocol;
  c.schedule_seed = streams.next();
  c.num_objects = 2 + static_cast<std::uint32_t>(rng.below(std::max<std::uint32_t>(params.max_objects, 2) - 1));
  const bool single_reader = params.single_reader || !traits.mwmr;
  c.num_readers = single_reader ? 1 : 1 + static_cast<std::uint32_t>(rng.below(params.max_readers));
  c.num_writers = 1 + static_cast<std::uint32_t>(rng.below(params.max_writers));
  // Mostly the paper's one-server-per-object model (where the adversary has
  // the most freedom); one case in four shards objects over fewer servers.
  if (c.num_objects > 1 && rng.chance(0.25)) {
    c.num_servers = 1 + static_cast<std::uint32_t>(rng.below(c.num_objects - 1));
    c.placement = rng.chance(0.5) ? PlacementKind::kHash : PlacementKind::kRange;
  }
  const double hold_choices[] = {0.3, 0.5, 0.7, 0.9};
  const double release_choices[] = {0.1, 0.25, 0.35, 0.5};
  c.hold_probability = hold_choices[rng.below(4)];
  c.release_probability = release_choices[rng.below(4)];

  Value next_value = 1;
  const std::size_t clients = c.num_clients();
  for (std::uint32_t client = 0; client < clients; ++client) {
    const std::size_t n_ops = 1 + rng.below(params.max_ops_per_client);
    for (std::size_t i = 0; i < n_ops; ++i) {
      FuzzOp op;
      op.client = client;
      op.is_read = rng.chance(params.read_fraction);
      // Multi-object transactions are where anomalies live: bias spans up.
      const std::uint32_t span =
          c.num_objects == 1 ? 1
                             : (rng.chance(0.7) ? c.num_objects
                                                : 1 + static_cast<std::uint32_t>(
                                                          rng.below(c.num_objects)));
      op.objects = sample_objects(rng, c.num_objects, span);
      if (!op.is_read) {
        op.values.reserve(op.objects.size());
        for (std::size_t j = 0; j < op.objects.size(); ++j) op.values.push_back(next_value++);
      }
      c.ops.push_back(std::move(op));
    }
  }
  return c;
}

CaseRun run_case(const FuzzCase& c, std::size_t max_decisions) {
  RandomSchedulePolicy policy(c.schedule_seed, c.hold_probability, c.release_probability);
  ScheduleLog log;
  CaseRun out = execute(c, policy, &log, max_decisions);
  out.log = std::move(log);
  return out;
}

CaseRun run_case_with_crash(const FuzzCase& c, NodeId victim, std::size_t crash_at,
                            std::size_t restart_at, std::size_t max_decisions) {
  if (c.replicas != 2) {
    throw std::invalid_argument("run_case_with_crash: case must have replicas=2 "
                                "(unreplicated servers never opt into crashes)");
  }
  RandomSchedulePolicy inner(c.schedule_seed, c.hold_probability, c.release_probability);
  CrashRestartPolicy policy(inner, victim, crash_at, restart_at);
  ScheduleLog log;
  CaseRun out = execute(c, policy, &log, max_decisions);
  out.log = std::move(log);
  return out;
}

CaseRun replay_case(const FuzzCase& c, const ScheduleLog& log, std::size_t max_decisions) {
  RecordedSchedulePolicy policy(log);
  ScheduleLog replayed;
  CaseRun out = execute(c, policy, &replayed, max_decisions);
  out.log = std::move(replayed);
  return out;
}

}  // namespace snowkit::fuzz
