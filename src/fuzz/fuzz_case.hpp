// Fuzz cases: explicit, shrinkable workloads over the deterministic simulator.
//
// Where WorkloadDriver generates operations on the fly from a seed, a
// FuzzCase carries the full client program as data — every transaction's
// client, kind, object set and write values — so the delta-debugging
// minimizer (fuzz/shrink.hpp) can drop transactions, drop objects from a
// multi-get, cut clients and renumber values while the schedule seed stays
// fixed.  run_case() executes a case under the seeded chaos adversary
// (recording the full ScheduleLog); replay_case() re-executes it under a
// recorded log, byte-identically when the case is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "history/history.hpp"
#include "proto/api.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"

namespace snowkit::fuzz {

/// One transaction of the client program.  `objects` is the read-set or the
/// write-set keys; `values` is index-aligned with `objects` for writes and
/// empty for reads.
struct FuzzOp {
  std::uint32_t client{0};
  bool is_read{false};
  std::vector<ObjectId> objects;
  std::vector<Value> values;

  friend bool operator==(const FuzzOp&, const FuzzOp&) = default;
};

/// A self-contained (protocol, workload, schedule) triple.  Everything the
/// simulator needs to reproduce a run lives here; serialization is in
/// fuzz/trace_io.hpp.
struct FuzzCase {
  std::string protocol;
  std::uint32_t num_objects{2};
  std::uint32_t num_readers{1};
  std::uint32_t num_writers{1};
  std::uint32_t num_servers{0};  ///< 0 = one server per object (paper model).
  /// 2 = crash-tolerant shards (proto/replica.hpp): each server gets a
  /// WAL-backed backup and crash/restart schedule decisions become
  /// applicable.  Requires ProtocolTraits::supports_replication.
  std::uint32_t replicas{1};
  PlacementKind placement{PlacementKind::kHash};
  std::uint64_t schedule_seed{1};
  double hold_probability{0.6};
  double release_probability{0.35};
  std::vector<FuzzOp> ops;

  SystemConfig config() const;
  std::size_t num_clients() const;

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

/// Workload-shape knobs for the generator.  Defaults keep histories small
/// enough for the exact serializability search to stay cheap per run.
struct GenParams {
  std::uint32_t max_objects{3};
  std::uint32_t max_readers{2};
  std::uint32_t max_writers{2};
  std::size_t max_ops_per_client{10};
  double read_fraction{0.5};
  /// Force a single read-client (required for MWSR protocols like algo-a,
  /// and for differential groups that include one).
  bool single_reader{false};
};

/// Deterministically generates the (protocol, seed) case: topology, client
/// program and chaos knobs all derive from `seed`.  Respects the protocol's
/// traits (MWSR protocols get one read-client).
FuzzCase generate_case(const std::string& protocol, const GenParams& params, std::uint64_t seed);

/// The outcome of executing a case.
struct CaseRun {
  History history;
  Trace trace;
  ScheduleLog log;  ///< recorded (run_case) or as-replayed (replay_case).
  ScheduleRunStats stats;
  bool completed{false};  ///< every op of the client program finished.
  std::size_t num_servers{0};
};

/// Executes the case under RandomSchedulePolicy(schedule_seed), recording
/// the complete ScheduleLog.  `max_decisions` is the liveness guard passed
/// to run_scheduled (0 = unlimited).
CaseRun run_case(const FuzzCase& c, std::size_t max_decisions = 1'000'000);

/// Like run_case, but wraps the random policy in CrashRestartPolicy: at
/// decision `crash_at` node `victim` crashes, and at `restart_at` (if
/// non-zero and later) it restarts.  The injected decisions are recorded in
/// the returned log like any others, so the run replays through the plain
/// replay_case with no wrapper — recorded schedules can kill a primary
/// mid-transaction.  Requires c.replicas == 2 (only replicated servers opt
/// into crashes); a victim that cannot crash at that point simply trips the
/// deterministic-drain guard.
CaseRun run_case_with_crash(const FuzzCase& c, NodeId victim, std::size_t crash_at,
                            std::size_t restart_at = 0, std::size_t max_decisions = 1'000'000);

/// Re-executes the case under a recorded log.  For the exact case the log
/// was recorded from this reproduces the original run byte-identically
/// (compare encode_trace / trace_fingerprint).
CaseRun replay_case(const FuzzCase& c, const ScheduleLog& log,
                    std::size_t max_decisions = 1'000'000);

}  // namespace snowkit::fuzz
