#include "fuzz/trace_io.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

#include "common/buffer.hpp"
#include "common/untrusted_reader.hpp"

namespace snowkit::fuzz {

namespace {

// A malformed trace FILE is expected input (repros come off disks and CI
// artifacts), so decoding runs over the shared bounds-checked reader for
// untrusted bytes instead of BufReader's abort-on-corruption contract.
using ThrowingReader = UntrustedReader;

void encode_case(const FuzzCase& c, BufWriter& w) {
  w.str(c.protocol);
  w.u32(c.num_objects);
  w.u32(c.num_readers);
  w.u32(c.num_writers);
  w.u32(c.num_servers);
  w.u32(c.replicas);
  w.u8(static_cast<std::uint8_t>(c.placement));
  w.u64(c.schedule_seed);
  w.u64(std::bit_cast<std::uint64_t>(c.hold_probability));
  w.u64(std::bit_cast<std::uint64_t>(c.release_probability));
  w.vec(c.ops, [](BufWriter& w2, const FuzzOp& op) {
    w2.u32(op.client);
    w2.u8(op.is_read ? 1 : 0);
    w2.vec(op.objects, [](BufWriter& w3, ObjectId obj) { w3.u32(obj); });
    w2.vec(op.values, [](BufWriter& w3, Value v) { w3.i64(v); });
  });
}

FuzzCase decode_case(ThrowingReader& r, bool has_replicas) {
  FuzzCase c;
  c.protocol = r.str();
  c.num_objects = r.u32();
  c.num_readers = r.u32();
  c.num_writers = r.u32();
  c.num_servers = r.u32();
  c.replicas = has_replicas ? r.u32() : 1;  // v1 predates replication
  c.placement = static_cast<PlacementKind>(r.u8());
  c.schedule_seed = r.u64();
  c.hold_probability = std::bit_cast<double>(r.u64());
  c.release_probability = std::bit_cast<double>(r.u64());
  c.ops = r.vec<FuzzOp>([](ThrowingReader& r2) {
    FuzzOp op;
    op.client = r2.u32();
    op.is_read = r2.u8() != 0;
    op.objects = r2.vec<ObjectId>([](ThrowingReader& r3) { return r3.u32(); });
    op.values = r2.vec<Value>([](ThrowingReader& r3) { return r3.i64(); });
    return op;
  });
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_trace_file(const FuzzTraceFile& f) {
  BufWriter w;
  w.str(kFuzzTraceSchema);
  encode_case(f.c, w);
  encode_schedule_log(f.log, w);
  w.str(f.checker);
  w.str(f.explanation);
  w.u64(f.trace_hash);
  return w.take();
}

FuzzTraceFile decode_trace_file(const std::vector<std::uint8_t>& bytes) {
  ThrowingReader r(bytes, "fuzz trace");
  const std::string schema = r.str();
  if (schema != kFuzzTraceSchema && schema != kFuzzTraceSchemaV1) {
    throw std::invalid_argument("fuzz trace: unknown schema '" + schema + "' (expected " +
                                kFuzzTraceSchema + " or " + kFuzzTraceSchemaV1 + ")");
  }
  FuzzTraceFile f;
  f.c = decode_case(r, /*has_replicas=*/schema == kFuzzTraceSchema);
  f.log = decode_schedule_log(r);
  f.checker = r.str();
  f.explanation = r.str();
  f.trace_hash = r.u64();
  if (!r.done()) throw std::invalid_argument("fuzz trace: trailing bytes");
  return f;
}

void write_trace_file(const std::string& path, const FuzzTraceFile& f) {
  const auto bytes = encode_trace_file(f);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) throw std::runtime_error("cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), out);
  const int close_err = std::fclose(out);
  if (written != bytes.size() || close_err != 0) {
    throw std::runtime_error("short write to " + path);
  }
}

FuzzTraceFile read_trace_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(in);
  return decode_trace_file(bytes);
}

}  // namespace snowkit::fuzz
