// Failing-schedule minimization: delta debugging over the client program.
//
// Given a failing FuzzCase, shrink_case() searches for a smaller case that
// still trips the SAME checker under its (fixed) schedule seed:
//   1. ddmin over whole transactions (drop chunks, halving granularity);
//   2. per-transaction object-set reduction (shrink multi-gets/multi-puts);
//   3. client-count reduction (fold clients modulo the smaller fleet);
//   4. object-space compaction (drop unused objects, renumber densely);
//   5. write-value renumbering to small consecutive integers.
// Every candidate is re-executed under the seeded chaos adversary and kept
// only if the violation persists, so the result is always a true repro.  The
// minimized run's ScheduleLog and trace fingerprint are returned for the
// byte-identical replay artifact (fuzz/trace_io.hpp).
#pragma once

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"

namespace snowkit::fuzz {

struct ShrinkOptions {
  /// Budget: candidate executions before settling for the best-so-far.
  std::size_t max_runs{400};
  /// Liveness guard per candidate execution.
  std::size_t max_decisions{500'000};
};

struct ShrinkResult {
  FuzzCase minimized;
  OracleReport report;      ///< the violation as observed on `minimized`.
  ScheduleLog log;          ///< recorded schedule of the minimized failing run.
  std::uint64_t trace_hash{0};  ///< trace_fingerprint of that run.
  std::size_t runs{0};      ///< candidate executions spent.
};

/// Minimizes `failing` while preserving a violation of `checker` (the value
/// of OracleReport::checker from the original failure).  `failing` itself
/// must trip that checker; shrink_case re-verifies it first and throws
/// std::invalid_argument if it does not reproduce.
ShrinkResult shrink_case(const FuzzCase& failing, const std::string& checker,
                         const OracleOptions& oracle_opts = {},
                         const ShrinkOptions& shrink_opts = {});

}  // namespace snowkit::fuzz
