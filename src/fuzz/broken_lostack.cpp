// broken-lostack: the lost-acknowledged-write bug the crash schedules must
// convict — the replication analogue of broken-stale's vacuity guard.
//
// It is algo-b with crash-tolerant shards, except the primaries ack writers
// IMMEDIATELY instead of waiting for the backup's replication ack
// (Replicator::Config::unsafe_ack).  In failure-free runs it is
// indistinguishable from the real protocol; under a crash schedule that
// kills a primary after it acked a WRITE but before the backup ingested the
// covering log batch, the backup takes over WITHOUT the acknowledged write
// and later reads miss it — the exact bug "acknowledged means replicated"
// exists to prevent.  If the crash-schedule battery
// (tests/replica_fuzz_test.cpp) ever lets broken-lostack run clean, the
// failover fuzzing has gone vacuous and CI fails.
#include "core/registry.hpp"
#include "proto/algo_b/algo_b.hpp"

namespace snowkit {
namespace {

const ProtocolRegistration kRegisterBrokenLostack{
    ProtocolTraits{
        .name = "broken-lostack",
        .summary = "fault-injection stub: replicated algo-b acking before replication — "
                   "crash-schedule vacuity guard",
        .claims_strict_serializability = false,
        .advertises_strict_serializability = true,  // the lie crash schedules must catch
        .provides_tags = true,
        .snow_s = false,
        .snow_n = true,
        .snow_o = true,
        .snow_w = true,
        .mwmr = true,
        .supports_replication = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AlgoBOptions o;
      o.name = "broken-lostack";
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.wal_dir = opts.get("wal_dir", "");
      // Always replicated and always unsafe: without a backup to fail over
      // to there is no crash for the schedule to inject, and without the
      // premature ack there is no bug.
      o.replicas = 2;
      o.unsafe_ack = true;
      // GC off: a lost insert plus a later finalize for it would trip the
      // VersionStore presence assert — an abort, not a conviction.  The bug
      // under audit is the lost acknowledged write; keep-everything Vals
      // lets the checkers observe it as a stale read / wedged retry instead
      // of crashing the harness.
      o.gc_versions = false;
      return build_algo_b(rt, rec, cfg, o);
    }};

}  // namespace
}  // namespace snowkit
