#include "fuzz/oracle.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "checker/serializability.hpp"
#include "checker/snow_monitor.hpp"
#include "checker/tag_order.hpp"
#include "core/registry.hpp"

namespace snowkit::fuzz {

namespace {

OracleReport violation(const ProtocolTraits& traits, bool s_family, std::string checker,
                       std::string explanation) {
  OracleReport r;
  r.violation = true;
  // Only the strict-serializability family can be an expected divergence:
  // liveness, tag sanity and non-blocking are unconditional contracts.
  r.expected = s_family && !traits.claims_strict_serializability;
  r.checker = std::move(checker);
  r.explanation = std::move(explanation);
  return r;
}

}  // namespace

bool audits_strict_serializability(const std::string& protocol) {
  const ProtocolTraits& t = ProtocolRegistry::global().traits(protocol);
  return t.claims_strict_serializability || t.advertises_strict_serializability;
}

std::vector<std::string> strict_serializable_class() {
  std::vector<std::string> out;
  for (const std::string& name : ProtocolRegistry::global().names()) {
    if (audits_strict_serializability(name)) out.push_back(name);
  }
  return out;
}

OracleReport check_run(const std::string& protocol, const CaseRun& run,
                       const OracleOptions& opts) {
  const ProtocolTraits& traits = ProtocolRegistry::global().traits(protocol);

  if (!run.completed) {
    return violation(traits, /*s_family=*/false, "liveness",
                     "client program did not complete (deadlock or lost completion)");
  }

  if (traits.provides_tags) {
    const TagOrderResult tags = check_tag_order(run.history);
    if (!tags.ok) return violation(traits, /*s_family=*/false, "tag-order", tags.explanation);
  }

  if (traits.snow_n) {
    const SnowTraceReport snow = analyze_snow_trace(run.trace, run.num_servers, run.history);
    if (!snow.satisfies_n()) {
      return violation(traits, /*s_family=*/false, "non-blocking",
                       snow.violations.empty() ? "server blocked during a read"
                                               : snow.violations.front());
    }
  }

  const bool audited_s =
      traits.claims_strict_serializability || traits.advertises_strict_serializability;
  if (audited_s) {
    if (std::string why = find_unwritten_value(run.history); !why.empty()) {
      return violation(traits, /*s_family=*/true, "unwritten-value", std::move(why));
    }
    if (std::string why = find_fractured_read(run.history); !why.empty()) {
      return violation(traits, /*s_family=*/true, "fractured-read", std::move(why));
    }
    if (std::string why = find_stale_reread(run.history); !why.empty()) {
      return violation(traits, /*s_family=*/true, "stale-reread", std::move(why));
    }
    const std::size_t completed =
        run.history.completed_reads() + run.history.completed_writes();
    if (completed <= opts.max_search_txns) {
      const CheckResult exact =
          check_strict_serializability(run.history, CheckOptions{opts.max_states});
      if (!exact.ok && !exact.exhausted) {
        return violation(traits, /*s_family=*/true, "serializability", exact.explanation);
      }
    }
  }

  return OracleReport{};
}

DifferentialReport differential_check(const FuzzCase& base,
                                      const std::vector<std::string>& protocols,
                                      const OracleOptions& opts) {
  DifferentialReport report;
  std::ostringstream details;
  bool any_pass = false;
  for (const std::string& name : protocols) {
    FuzzCase c = base;
    c.protocol = name;
    const CaseRun run = run_case(c);
    DifferentialOutcome out;
    out.protocol = name;
    out.report = check_run(name, run, opts);
    out.completed_reads = run.history.completed_reads();
    std::set<std::pair<ObjectId, Value>> observed;
    for (const TxnRecord& t : run.history.txns) {
      if (!t.complete || !t.is_read) continue;
      for (const auto& pair : t.reads) observed.insert(pair);
    }
    out.distinct_read_observations = observed.size();
    details << "  " << name << ": "
            << (out.report.violation
                    ? (out.report.expected ? "EXPECTED divergence (" : "VIOLATION (") +
                          out.report.checker + "): " + out.report.explanation
                    : "ok")
            << " [reads=" << out.completed_reads
            << " distinct-observations=" << out.distinct_read_observations << "]\n";
    if (out.report.violation) {
      report.divergence = true;  // provisional; requires a passing peer below
      if (!out.report.expected) report.unexpected = true;
    } else {
      any_pass = true;
    }
    report.outcomes.push_back(std::move(out));
  }
  report.divergence = report.divergence && any_pass;
  report.details = details.str();
  return report;
}

}  // namespace snowkit::fuzz
