#include "fuzz/shrink.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace snowkit::fuzz {

namespace {

struct Shrinker {
  std::string checker;
  OracleOptions oracle_opts;
  ShrinkOptions opts;
  std::size_t runs{0};

  FuzzCase best;
  OracleReport best_report;
  ScheduleLog best_log;
  std::uint64_t best_hash{0};

  bool budget_left() const { return runs < opts.max_runs; }

  /// Executes a candidate; accepts it as the new best iff the same checker
  /// still fires.
  bool try_candidate(const FuzzCase& candidate) {
    if (!budget_left()) return false;
    ++runs;
    CaseRun run;
    try {
      run = run_case(candidate, opts.max_decisions);
    } catch (const std::exception&) {
      return false;  // candidate broke a protocol precondition; discard
    }
    const OracleReport report = check_run(candidate.protocol, run, oracle_opts);
    if (!report.violation || report.checker != checker) return false;
    best = candidate;
    best_report = report;
    best_log = std::move(run.log);
    best_hash = trace_fingerprint(run.trace);
    return true;
  }

  /// Phase 1: ddmin over whole transactions.
  void shrink_ops() {
    std::size_t chunk = std::max<std::size_t>(1, best.ops.size() / 2);
    while (chunk >= 1 && budget_left()) {
      bool removed_any = false;
      for (std::size_t start = 0; start < best.ops.size() && budget_left();) {
        FuzzCase candidate = best;
        const std::size_t end = std::min(start + chunk, candidate.ops.size());
        candidate.ops.erase(candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
                            candidate.ops.begin() + static_cast<std::ptrdiff_t>(end));
        if (!candidate.ops.empty() && try_candidate(candidate)) {
          removed_any = true;  // best shrank; retry the same offset
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !removed_any) break;
      if (!removed_any) chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }

  /// Phase 2: drop individual objects from multi-object transactions.
  void shrink_spans() {
    bool progress = true;
    while (progress && budget_left()) {
      progress = false;
      for (std::size_t i = 0; i < best.ops.size() && budget_left(); ++i) {
        for (std::size_t j = 0; j < best.ops[i].objects.size() && budget_left();) {
          if (best.ops[i].objects.size() <= 1) break;
          FuzzCase candidate = best;
          FuzzOp& op = candidate.ops[i];
          op.objects.erase(op.objects.begin() + static_cast<std::ptrdiff_t>(j));
          if (!op.is_read) op.values.erase(op.values.begin() + static_cast<std::ptrdiff_t>(j));
          if (try_candidate(candidate)) {
            progress = true;  // same j now names the next object
          } else {
            ++j;
          }
        }
      }
    }
  }

  /// Phase 3: fewer clients (folding the program modulo the smaller fleet).
  void shrink_clients() {
    bool progress = true;
    while (progress && budget_left()) {
      progress = false;
      for (const bool readers : {true, false}) {
        FuzzCase candidate = best;
        std::uint32_t& count = readers ? candidate.num_readers : candidate.num_writers;
        if (count <= 1) continue;
        --count;
        const auto clients = static_cast<std::uint32_t>(candidate.num_clients());
        for (FuzzOp& op : candidate.ops) op.client %= clients;
        if (try_candidate(candidate)) progress = true;
      }
    }
  }

  /// Phase 4: drop unused objects and renumber the rest densely.
  void compact_objects() {
    std::set<ObjectId> used;
    for (const FuzzOp& op : best.ops) used.insert(op.objects.begin(), op.objects.end());
    if (used.empty() || used.size() == best.num_objects) return;
    std::map<ObjectId, ObjectId> remap;
    for (ObjectId obj : used) remap[obj] = static_cast<ObjectId>(remap.size());
    FuzzCase candidate = best;
    candidate.num_objects = static_cast<std::uint32_t>(used.size());
    if (candidate.num_servers >= candidate.num_objects) candidate.num_servers = 0;
    for (FuzzOp& op : candidate.ops) {
      for (ObjectId& obj : op.objects) obj = remap.at(obj);
    }
    try_candidate(candidate);
  }

  /// Phase 5: renumber write values to 1..n in order of first appearance.
  void renumber_values() {
    std::map<Value, Value> remap;
    FuzzCase candidate = best;
    for (FuzzOp& op : candidate.ops) {
      for (Value& v : op.values) {
        auto [it, inserted] = remap.try_emplace(v, static_cast<Value>(remap.size() + 1));
        v = it->second;
      }
    }
    if (candidate != best) try_candidate(candidate);
  }
};

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const std::string& checker,
                         const OracleOptions& oracle_opts, const ShrinkOptions& shrink_opts) {
  Shrinker s;
  s.checker = checker;
  s.oracle_opts = oracle_opts;
  s.opts = shrink_opts;
  s.best = failing;  // placeholder until re-verified
  if (!s.try_candidate(failing)) {
    throw std::invalid_argument("shrink_case: the input case does not reproduce checker '" +
                                checker + "'");
  }

  // Two passes over the phases: later structural reductions (fewer clients,
  // fewer objects) often unlock further transaction drops.
  for (int pass = 0; pass < 2 && s.budget_left(); ++pass) {
    const FuzzCase before = s.best;
    s.shrink_ops();
    s.shrink_spans();
    s.shrink_clients();
    s.compact_objects();
    if (s.best == before) break;
  }
  s.renumber_values();

  ShrinkResult result;
  result.minimized = std::move(s.best);
  result.report = std::move(s.best_report);
  result.log = std::move(s.best_log);
  result.trace_hash = s.best_hash;
  result.runs = s.runs;
  return result;
}

}  // namespace snowkit::fuzz
