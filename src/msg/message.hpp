// The message envelope every transport carries.
#pragma once

#include <string>

#include "msg/payloads.hpp"

namespace snowkit {

/// Envelope: a payload stamped with the transaction it belongs to.  The txn
/// id lets the SNOW monitors attribute traffic to transactions and lets
/// adversarial schedulers target specific operations.
struct Message {
  TxnId txn{kInvalidTxn};
  Payload payload;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Stable human-readable payload-type name (used in traces and demos).
const char* payload_name(const Payload& p);

/// True if this payload is a client->server request that starts a server-side
/// read step of a READ transaction (used by the non-blocking monitor).
bool is_read_request(const Payload& p);

/// True if this payload is a server->client response carrying object
/// versions; `version_count` says how many versions it carries (O property).
bool is_read_response(const Payload& p);
int version_count(const Payload& p);

std::string describe(const Message& m);

}  // namespace snowkit
