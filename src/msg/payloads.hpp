// Typed message payloads for every protocol in the library.
//
// One shared payload vocabulary keeps the codec in one place and lets the
// SNOW monitors (checker/snow_monitor) classify traffic without knowing
// which protocol produced it.  Payload names follow the paper's pseudocode:
// write-val / info-reader / update-coor / get-tag-arr / read-val / read-vals
// (Pseudocodes 4-7), plus the mini-Eiger, blocking-2PL, simple and naive
// protocol messages that serve as comparators.
#pragma once

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace snowkit {

/// A (key, value) version as stored in a server's Vals set (§5.2).
struct Version {
  WriteKey key;
  Value value{kInitialValue};
  friend bool operator==(const Version&, const Version&) = default;
};

/// A List entry (kappa, (b_1..b_k)) plus its position, used when the
/// coordinator ships per-object key history to readers (Algorithm C).
struct ListedKey {
  Tag position{0};   ///< index of this entry in List (1-based; 0 = initial).
  WriteKey key;
  friend bool operator==(const ListedKey&, const ListedKey&) = default;
};

// --- Algorithms A / B / C (paper pseudocodes 4-7) -------------------------

/// write-val: writer -> server s_i, carrying (kappa, v_i).
struct WriteValReq {
  WriteKey key;
  ObjectId obj{0};
  Value value{kInitialValue};

  friend bool operator==(const WriteValReq&, const WriteValReq&) = default;
};

/// ack for write-val: server -> writer.
struct WriteValAck {
  WriteKey key;
  ObjectId obj{0};

  friend bool operator==(const WriteValAck&, const WriteValAck&) = default;
};

/// info-reader: writer -> reader (Algorithm A; this is the C2C message).
struct InfoReaderReq {
  WriteKey key;
  std::vector<std::uint8_t> mask;  ///< b_1..b_k, 1 iff object i was written.
  friend bool operator==(const InfoReaderReq&, const InfoReaderReq&) = default;
};

/// (ack, t_w): reader -> writer.
struct InfoReaderAck {
  Tag tag{0};

  friend bool operator==(const InfoReaderAck&, const InfoReaderAck&) = default;
};

/// update-coor: writer -> coordinator s* (Algorithms B and C).
struct UpdateCoorReq {
  WriteKey key;
  std::vector<std::uint8_t> mask;

  friend bool operator==(const UpdateCoorReq&, const UpdateCoorReq&) = default;
};

/// (ack, t_w): coordinator -> writer.  `watermark` is the coordinator's
/// current read watermark (see proto/version_store.hpp): the writer forwards
/// it to servers on its finalize fan-out, which is how watermark advancement
/// reaches the version stores without any extra message round.
struct UpdateCoorAck {
  Tag tag{0};
  Tag watermark{0};

  friend bool operator==(const UpdateCoorAck&, const UpdateCoorAck&) = default;
};

/// get-tag-arr: reader -> coordinator s*.
struct GetTagArrReq {
  std::vector<std::uint8_t> want;  ///< interest mask over objects (I).
  friend bool operator==(const GetTagArrReq&, const GetTagArrReq&) = default;
};

/// (t_r, (kappa_1..kappa_k)): coordinator -> reader.  For Algorithm C the
/// response additionally carries, per requested object, the key history
/// (position, key) up to t_r so the reader can run the feasibility descent
/// (see DESIGN.md §5 and proto/algo_c).
struct GetTagArrResp {
  Tag tag{0};
  Tag watermark{0};  ///< coordinator read watermark; readers piggyback it on read-val.
  std::vector<WriteKey> latest;              ///< kappa_i per object (index-aligned).
  std::vector<std::vector<ListedKey>> history;  ///< optional; per requested object.
  friend bool operator==(const GetTagArrResp&, const GetTagArrResp&) = default;
};

/// read-val: reader -> server s_i, naming the exact version kappa_i wanted.
/// `watermark` piggybacks the coordinator watermark the reader saw in its tag
/// array, so stores on the read path advance (and prune) with zero extra
/// messages.
struct ReadValReq {
  ObjectId obj{0};
  WriteKey key;
  Tag watermark{0};

  friend bool operator==(const ReadValReq&, const ReadValReq&) = default;
};

/// one-version response: server -> reader.  `found` is false when the named
/// key is not (or no longer) in Vals — reachable only by speculative readers
/// (occ) whose guessed key was superseded and garbage-collected; protocols
/// that request watermark-protected keys always get found == true.
struct ReadValResp {
  ObjectId obj{0};
  WriteKey key;
  Value value{kInitialValue};
  bool found{true};

  friend bool operator==(const ReadValResp&, const ReadValResp&) = default;
};

/// read-vals: reader -> server s_i (Algorithm C; server returns its Vals).
struct ReadValsReq {
  ObjectId obj{0};

  friend bool operator==(const ReadValsReq&, const ReadValsReq&) = default;
};

/// multi-version response: server -> reader (Algorithm C).
struct ReadValsResp {
  ObjectId obj{0};
  std::vector<Version> versions;

  friend bool operator==(const ReadValsResp&, const ReadValsResp&) = default;
};

/// finalize: writer -> server, piggybacking the List position assigned to a
/// completed WRITE so servers can garbage-collect superseded versions.  This
/// is snowkit's bounded-version extension for Algorithm C (DESIGN.md §5);
/// it adds no round to any transaction.
struct FinalizeReq {
  WriteKey key;
  ObjectId obj{0};
  Tag position{0};
  /// Coordinator read watermark as of this write's update-coor ack; the
  /// receiving store advances its watermark to it and prunes superseded
  /// finalized versions (proto/version_store.hpp states the safety rule).
  Tag watermark{0};

  friend bool operator==(const FinalizeReq&, const FinalizeReq&) = default;
};

/// finalize-coor: writer -> coordinator s*, fire-and-forget notice that the
/// WRITE at List `position` has completed.  The coordinator's max finalized
/// position is the base of the read watermark: a position only counts into
/// the watermark once its write finished, so every in-flight or future READ
/// can still be served at or above it.
struct FinalizeCoorReq {
  Tag position{0};

  friend bool operator==(const FinalizeCoorReq&, const FinalizeCoorReq&) = default;
};

/// read-done: reader -> coordinator (algorithms B/C and occ) or the read
/// servers (eiger), fire-and-forget notice that the sender's READ `txn`
/// completed.  Deregisters the read from watermark accounting.  The txn
/// rides in the payload (the envelope carries kInvalidTxn so monitors don't
/// count the notice as a READ round), and deregistration is keyed by
/// (sender, txn): txn ids are monotone per client, so a reordered stale
/// notice can never unpin a newer READ.
struct ReadDoneReq {
  TxnId txn{kInvalidTxn};

  friend bool operator==(const ReadDoneReq&, const ReadDoneReq&) = default;
};

// --- mini-Eiger (§6, Fig. 5) ----------------------------------------------

/// Write one object with Lamport-clock metadata.
struct EigerWriteReq {
  ObjectId obj{0};
  Value value{kInitialValue};
  std::uint64_t lamport{0};

  friend bool operator==(const EigerWriteReq&, const EigerWriteReq&) = default;
};

struct EigerWriteAck {
  ObjectId obj{0};
  std::uint64_t commit_ts{0};  ///< Lamport timestamp assigned by the server.
  std::uint64_t lamport{0};

  friend bool operator==(const EigerWriteAck&, const EigerWriteAck&) = default;
};

/// First-round read: server returns current value + logical validity interval.
struct EigerReadReq {
  ObjectId obj{0};
  std::uint64_t lamport{0};

  friend bool operator==(const EigerReadReq&, const EigerReadReq&) = default;
};

struct EigerReadResp {
  ObjectId obj{0};
  Value value{kInitialValue};
  std::uint64_t valid_from{0};   ///< commit timestamp of the returned version.
  std::uint64_t valid_until{0};  ///< server's Lamport clock when responding.
  std::uint64_t lamport{0};

  friend bool operator==(const EigerReadResp&, const EigerReadResp&) = default;
};

/// Second-round read at an explicit effective time (Eiger's slow path).
struct EigerReadAtReq {
  ObjectId obj{0};
  std::uint64_t at{0};
  std::uint64_t lamport{0};

  friend bool operator==(const EigerReadAtReq&, const EigerReadAtReq&) = default;
};

struct EigerReadAtResp {
  ObjectId obj{0};
  Value value{kInitialValue};
  std::uint64_t lamport{0};

  friend bool operator==(const EigerReadAtResp&, const EigerReadAtResp&) = default;
};

// --- blocking two-phase-locking comparator ---------------------------------

struct LockReq {
  ObjectId obj{0};
  bool exclusive{false};

  friend bool operator==(const LockReq&, const LockReq&) = default;
};

/// Grant; for shared locks carries the current value so a READ needs no
/// separate fetch round.
struct LockGrant {
  ObjectId obj{0};
  Value value{kInitialValue};

  friend bool operator==(const LockGrant&, const LockGrant&) = default;
};

/// Write the value and release the exclusive lock in one step.
struct WriteUnlockReq {
  ObjectId obj{0};
  Value value{kInitialValue};

  friend bool operator==(const WriteUnlockReq&, const WriteUnlockReq&) = default;
};

struct UnlockReq {
  ObjectId obj{0};

  friend bool operator==(const UnlockReq&, const UnlockReq&) = default;
};

struct UnlockAck {
  ObjectId obj{0};

  friend bool operator==(const UnlockAck&, const UnlockAck&) = default;
};

// --- simple (non-transactional) and naive one-round protocols --------------

struct SimpleReadReq {
  ObjectId obj{0};

  friend bool operator==(const SimpleReadReq&, const SimpleReadReq&) = default;
};

struct SimpleReadResp {
  ObjectId obj{0};
  Value value{kInitialValue};

  friend bool operator==(const SimpleReadResp&, const SimpleReadResp&) = default;
};

struct SimpleWriteReq {
  ObjectId obj{0};
  Value value{kInitialValue};

  friend bool operator==(const SimpleWriteReq&, const SimpleWriteReq&) = default;
};

struct SimpleWriteAck {
  ObjectId obj{0};

  friend bool operator==(const SimpleWriteAck&, const SimpleWriteAck&) = default;
};

// --- per-shard primary/backup replication (proto/replica.hpp) ---------------
//
// Replication envelopes all carry txn = kInvalidTxn, so the SNOW monitors
// never count replica traffic as transaction rounds.  Tags 30-35; appended
// per the snowkit-wire-v1 freeze (docs/WIRE.md).

/// One entry of a shard's replicated operation log: the primary's mutations
/// to its VersionStores (and, on the coordinator shard, its CoorList),
/// exactly the stream a backup must apply to reach the same state.
struct ReplRecord {
  enum Kind : std::uint8_t {
    kInsert = 0,        ///< VersionStore::insert(key, value) on `obj`.
    kFinalize = 1,      ///< finalize(key, position) + advance_watermark on `obj`.
    kListPush = 2,      ///< CoorList::push(key, mask) -> must yield `position`.
    kCoorFinalize = 3,  ///< CoorList::finalize(position).
    kEpoch = 4,         ///< local-only WAL marker: epoch/role change (never shipped).
  };
  std::uint8_t kind{kInsert};
  ObjectId obj{0};
  WriteKey key;
  Value value{kInitialValue};
  Tag position{0};
  Tag watermark{0};
  std::vector<std::uint8_t> mask;  ///< kListPush: the update-coor interest mask.
  TxnId txn{kInvalidTxn};          ///< kListPush: the writer's txn (retry dedup).
  NodeId writer{kInvalidNode};     ///< kListPush: the writer node (retry dedup).
  std::uint64_t epoch{0};          ///< kEpoch: new epoch value.
  std::uint8_t primary{0};         ///< kEpoch: 1 iff the appender is primary.

  friend bool operator==(const ReplRecord&, const ReplRecord&) = default;
};

/// Primary -> backup: log records [first_seq, first_seq + records.size()).
/// Also the WAL batch format and the rejoin catch-up stream.
struct ReplAppendReq {
  std::uint64_t epoch{0};
  std::uint64_t first_seq{0};
  std::vector<ReplRecord> records;

  friend bool operator==(const ReplAppendReq&, const ReplAppendReq&) = default;
};

/// Backup -> primary: "my log now holds `acked_seq` records."  An ack with a
/// HIGHER epoch than the receiver's is the fencing signal that demotes a
/// stale primary.
struct ReplAppendAck {
  std::uint64_t epoch{0};
  std::uint64_t acked_seq{0};

  friend bool operator==(const ReplAppendAck&, const ReplAppendAck&) = default;
};

/// (Re)joining replica -> its peer: "adopt me as your backup; I have
/// `have_seq` records from epoch `epoch`."  `was_primary` forces a full
/// resync — a deposed primary's log tail may diverge from the new lineage.
struct ReplJoinReq {
  std::uint64_t epoch{0};
  std::uint64_t have_seq{0};
  std::uint8_t was_primary{0};

  friend bool operator==(const ReplJoinReq&, const ReplJoinReq&) = default;
};

/// Primary -> joiner: accepted at `epoch`; if `reset`, the joiner discards
/// its state and WAL first.  The catch-up stream rides IN the response
/// (`records` starting at `first_seq`) rather than as a separate append so
/// that message reordering can never deliver catch-up records against the
/// joiner's pre-reset state.
struct ReplJoinResp {
  std::uint64_t epoch{0};
  std::uint8_t reset{0};
  std::uint64_t first_seq{0};
  std::vector<ReplRecord> records;

  friend bool operator==(const ReplJoinResp&, const ReplJoinResp&) = default;
};

/// New primary -> every client node: shard `shard` is now served by `node`.
/// Clients keep a per-shard route table ordered by epoch and re-send
/// un-acked requests to the new primary.
struct TakeoverNotice {
  std::uint64_t shard{0};
  NodeId node{kInvalidNode};
  std::uint64_t epoch{0};

  friend bool operator==(const TakeoverNotice&, const TakeoverNotice&) = default;
};

/// Failure detector -> watcher (Runtime::watch_node): `node` is down.  In
/// SimRuntime this is exact (emitted by crash()); in NetRuntime it fires
/// after a peer link stays down past TransportOptions::peer_down_grace_ns,
/// so it can be a false positive — receivers must treat it as a hint that
/// self-heals (a live peer's next message restores liveness tracking).
struct NodeDownNotice {
  NodeId node{kInvalidNode};

  friend bool operator==(const NodeDownNotice&, const NodeDownNotice&) = default;
};

// --- adaptive meta-protocol (proto/adaptive) --------------------------------
//
// Tags 36-40; appended per the snowkit-wire-v1 freeze (docs/WIRE.md).  The
// adaptive layer serializes every READ exactly like Algorithm B (serve
// latest[obj] at the coordinator cut t_r); per-object modes only change the
// MESSAGE SHAPE of the value fetch, never the version selected, which is why
// a mode switch can ride an existing leg instead of needing a barrier.

/// Coordinator -> reader, the adaptive tag-array response (replaces
/// GetTagArrResp on the adaptive read path).  `modes` is the per-object
/// fetch-mode mask (bit i = 1 iff object i is in C-mode, i.e. readers should
/// prefetch its version list in round 1).  `mode_epoch` fences switches:
/// readers adopt `modes` only when `mode_epoch` is >= their cached epoch, so
/// a held or reordered response can never roll the mode table backwards —
/// and an in-flight read always completes under the plan it started with.
struct AdaptTagArrResp {
  Tag tag{0};
  Tag watermark{0};
  std::vector<WriteKey> latest;    ///< kappa_i per object (index-aligned).
  std::vector<std::uint8_t> modes; ///< per-object fetch mode (1 = C/prefetch).
  std::uint64_t mode_epoch{0};     ///< bumps on every coordinator switch.
  friend bool operator==(const AdaptTagArrResp&, const AdaptTagArrResp&) = default;
};

/// One (object, exact key) fetch within a batched read-val.
struct BatchReadEntry {
  ObjectId obj{0};
  WriteKey key;
  friend bool operator==(const BatchReadEntry&, const BatchReadEntry&) = default;
};

/// Reader -> server: all of this READ's round-2 read-vals for objects on one
/// server, packed into a single frame (and thus a single coalescer write).
struct ReadValBatchReq {
  Tag watermark{0};  ///< piggybacked coordinator watermark, as in ReadValReq.
  std::vector<BatchReadEntry> entries;
  friend bool operator==(const ReadValBatchReq&, const ReadValBatchReq&) = default;
};

/// One resolved entry of a ReadValBatchReq (same semantics as ReadValResp).
struct BatchReadResult {
  ObjectId obj{0};
  WriteKey key;
  Value value{kInitialValue};
  bool found{true};
  friend bool operator==(const BatchReadResult&, const BatchReadResult&) = default;
};

/// Server -> reader: the batched one-version responses.
struct ReadValBatchResp {
  std::vector<BatchReadResult> entries;
  friend bool operator==(const ReadValBatchResp&, const ReadValBatchResp&) = default;
};

/// Reader -> server: round-1 prefetch of the full version lists for this
/// READ's C-mode objects on one server (batched Algorithm-C read-vals).
struct ReadValsBatchReq {
  Tag watermark{0};  ///< last watermark the reader saw (0 before any read).
  std::vector<ObjectId> objs;
  friend bool operator==(const ReadValsBatchReq&, const ReadValsBatchReq&) = default;
};

/// One object's version list within a batched prefetch response.
struct ObjectVersions {
  ObjectId obj{0};
  std::vector<Version> versions;
  friend bool operator==(const ObjectVersions&, const ObjectVersions&) = default;
};

/// Server -> reader: the batched multi-version responses.
struct ReadValsBatchResp {
  std::vector<ObjectVersions> entries;
  friend bool operator==(const ReadValsBatchResp&, const ReadValsBatchResp&) = default;
};

using Payload = std::variant<
    WriteValReq, WriteValAck, InfoReaderReq, InfoReaderAck, UpdateCoorReq,
    UpdateCoorAck, GetTagArrReq, GetTagArrResp, ReadValReq, ReadValResp,
    ReadValsReq, ReadValsResp, FinalizeReq, EigerWriteReq, EigerWriteAck,
    EigerReadReq, EigerReadResp, EigerReadAtReq, EigerReadAtResp, LockReq,
    LockGrant, WriteUnlockReq, UnlockReq, UnlockAck, SimpleReadReq,
    SimpleReadResp, SimpleWriteReq, SimpleWriteAck, FinalizeCoorReq,
    ReadDoneReq, ReplAppendReq, ReplAppendAck, ReplJoinReq, ReplJoinResp,
    TakeoverNotice, NodeDownNotice, AdaptTagArrResp, ReadValBatchReq,
    ReadValBatchResp, ReadValsBatchReq, ReadValsBatchResp>;

}  // namespace snowkit
