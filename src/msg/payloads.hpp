// Typed message payloads for every protocol in the library.
//
// One shared payload vocabulary keeps the codec in one place and lets the
// SNOW monitors (checker/snow_monitor) classify traffic without knowing
// which protocol produced it.  Payload names follow the paper's pseudocode:
// write-val / info-reader / update-coor / get-tag-arr / read-val / read-vals
// (Pseudocodes 4-7), plus the mini-Eiger, blocking-2PL, simple and naive
// protocol messages that serve as comparators.
#pragma once

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace snowkit {

/// A (key, value) version as stored in a server's Vals set (§5.2).
struct Version {
  WriteKey key;
  Value value{kInitialValue};
  friend bool operator==(const Version&, const Version&) = default;
};

/// A List entry (kappa, (b_1..b_k)) plus its position, used when the
/// coordinator ships per-object key history to readers (Algorithm C).
struct ListedKey {
  Tag position{0};   ///< index of this entry in List (1-based; 0 = initial).
  WriteKey key;
  friend bool operator==(const ListedKey&, const ListedKey&) = default;
};

// --- Algorithms A / B / C (paper pseudocodes 4-7) -------------------------

/// write-val: writer -> server s_i, carrying (kappa, v_i).
struct WriteValReq {
  WriteKey key;
  ObjectId obj{0};
  Value value{kInitialValue};
};

/// ack for write-val: server -> writer.
struct WriteValAck {
  WriteKey key;
  ObjectId obj{0};
};

/// info-reader: writer -> reader (Algorithm A; this is the C2C message).
struct InfoReaderReq {
  WriteKey key;
  std::vector<std::uint8_t> mask;  ///< b_1..b_k, 1 iff object i was written.
};

/// (ack, t_w): reader -> writer.
struct InfoReaderAck {
  Tag tag{0};
};

/// update-coor: writer -> coordinator s* (Algorithms B and C).
struct UpdateCoorReq {
  WriteKey key;
  std::vector<std::uint8_t> mask;
};

/// (ack, t_w): coordinator -> writer.
struct UpdateCoorAck {
  Tag tag{0};
};

/// get-tag-arr: reader -> coordinator s*.
struct GetTagArrReq {
  std::vector<std::uint8_t> want;  ///< interest mask over objects (I).
};

/// (t_r, (kappa_1..kappa_k)): coordinator -> reader.  For Algorithm C the
/// response additionally carries, per requested object, the key history
/// (position, key) up to t_r so the reader can run the feasibility descent
/// (see DESIGN.md §5 and proto/algo_c).
struct GetTagArrResp {
  Tag tag{0};
  std::vector<WriteKey> latest;              ///< kappa_i per object (index-aligned).
  std::vector<std::vector<ListedKey>> history;  ///< optional; per requested object.
};

/// read-val: reader -> server s_i, naming the exact version kappa_i wanted.
struct ReadValReq {
  ObjectId obj{0};
  WriteKey key;
};

/// one-version response: server -> reader.
struct ReadValResp {
  ObjectId obj{0};
  WriteKey key;
  Value value{kInitialValue};
};

/// read-vals: reader -> server s_i (Algorithm C; server returns its Vals).
struct ReadValsReq {
  ObjectId obj{0};
};

/// multi-version response: server -> reader (Algorithm C).
struct ReadValsResp {
  ObjectId obj{0};
  std::vector<Version> versions;
};

/// finalize: writer -> server, piggybacking the List position assigned to a
/// completed WRITE so servers can garbage-collect superseded versions.  This
/// is snowkit's bounded-version extension for Algorithm C (DESIGN.md §5);
/// it adds no round to any transaction.
struct FinalizeReq {
  WriteKey key;
  ObjectId obj{0};
  Tag position{0};
};

// --- mini-Eiger (§6, Fig. 5) ----------------------------------------------

/// Write one object with Lamport-clock metadata.
struct EigerWriteReq {
  ObjectId obj{0};
  Value value{kInitialValue};
  std::uint64_t lamport{0};
};

struct EigerWriteAck {
  ObjectId obj{0};
  std::uint64_t commit_ts{0};  ///< Lamport timestamp assigned by the server.
  std::uint64_t lamport{0};
};

/// First-round read: server returns current value + logical validity interval.
struct EigerReadReq {
  ObjectId obj{0};
  std::uint64_t lamport{0};
};

struct EigerReadResp {
  ObjectId obj{0};
  Value value{kInitialValue};
  std::uint64_t valid_from{0};   ///< commit timestamp of the returned version.
  std::uint64_t valid_until{0};  ///< server's Lamport clock when responding.
  std::uint64_t lamport{0};
};

/// Second-round read at an explicit effective time (Eiger's slow path).
struct EigerReadAtReq {
  ObjectId obj{0};
  std::uint64_t at{0};
  std::uint64_t lamport{0};
};

struct EigerReadAtResp {
  ObjectId obj{0};
  Value value{kInitialValue};
  std::uint64_t lamport{0};
};

// --- blocking two-phase-locking comparator ---------------------------------

struct LockReq {
  ObjectId obj{0};
  bool exclusive{false};
};

/// Grant; for shared locks carries the current value so a READ needs no
/// separate fetch round.
struct LockGrant {
  ObjectId obj{0};
  Value value{kInitialValue};
};

/// Write the value and release the exclusive lock in one step.
struct WriteUnlockReq {
  ObjectId obj{0};
  Value value{kInitialValue};
};

struct UnlockReq {
  ObjectId obj{0};
};

struct UnlockAck {
  ObjectId obj{0};
};

// --- simple (non-transactional) and naive one-round protocols --------------

struct SimpleReadReq {
  ObjectId obj{0};
};

struct SimpleReadResp {
  ObjectId obj{0};
  Value value{kInitialValue};
};

struct SimpleWriteReq {
  ObjectId obj{0};
  Value value{kInitialValue};
};

struct SimpleWriteAck {
  ObjectId obj{0};
};

using Payload = std::variant<
    WriteValReq, WriteValAck, InfoReaderReq, InfoReaderAck, UpdateCoorReq,
    UpdateCoorAck, GetTagArrReq, GetTagArrResp, ReadValReq, ReadValResp,
    ReadValsReq, ReadValsResp, FinalizeReq, EigerWriteReq, EigerWriteAck,
    EigerReadReq, EigerReadResp, EigerReadAtReq, EigerReadAtResp, LockReq,
    LockGrant, WriteUnlockReq, UnlockReq, UnlockAck, SimpleReadReq,
    SimpleReadResp, SimpleWriteReq, SimpleWriteAck>;

}  // namespace snowkit
