// Binary wire codec for Message.  Roundtrip property: decode(encode(m)) == m.
//
// The threaded runtime encodes every message; the simulator can optionally do
// so too (codec cross-check mode) to guarantee no protocol smuggles state
// through shared memory.
#pragma once

#include <cstdint>
#include <vector>

#include "msg/message.hpp"

namespace snowkit {

std::vector<std::uint8_t> encode_message(const Message& m);
Message decode_message(const std::vector<std::uint8_t>& bytes);

/// Encoded size in bytes (for wire-volume metrics) without retaining a copy.
std::size_t encoded_size(const Message& m);

}  // namespace snowkit
