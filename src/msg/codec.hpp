// Binary wire codec for Message.  Roundtrip property: decode(encode(m)) == m.
//
// The threaded runtime encodes every message; the simulator can optionally do
// so too (codec cross-check mode) to guarantee no protocol smuggles state
// through shared memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msg/message.hpp"

namespace snowkit {

std::vector<std::uint8_t> encode_message(const Message& m);

/// Decodes TRUSTED in-process bytes (ThreadRuntime mailboxes, sim
/// roundtrips): malformation aborts, it means our own encoder or memory is
/// corrupt.
Message decode_message(const std::vector<std::uint8_t>& bytes);

/// Decodes UNTRUSTED bytes (NetRuntime frames — a TCP peer's only credential
/// is an unauthenticated HELLO): false + `err` on any malformation, never an
/// abort, so a hostile payload cannot kill the process.
bool try_decode_message(const std::vector<std::uint8_t>& bytes, Message& out,
                        std::string& err) noexcept;

/// Encodes `m` into `out`.  `out` is cleared first but its CAPACITY is kept,
/// so encoding into a recycled buffer is allocation-free once warm — this is
/// the ThreadRuntime fast path (one scratch buffer per sender thread, swapped
/// into a per-mailbox buffer pool on enqueue).
void encode_message_into(const Message& m, std::vector<std::uint8_t>& out);

/// Encoded size in bytes (for wire-volume metrics).  Counts without
/// serializing: no allocation, no copy.
std::size_t encoded_size(const Message& m);

}  // namespace snowkit
