#include "msg/codec.hpp"

#include "common/assert.hpp"
#include "common/buffer.hpp"

namespace snowkit {

namespace {

// The put_* helpers and Encoder are templated over the writer so the same
// encoding logic runs against BufWriter (serialize) and SizeWriter (count).
//
// Encoding conventions (the compact wire format):
//  * integers ride as LEB128 varints (`uv`), values as zigzag varints (`zz`),
//    so the common small-number case costs one byte instead of 4-8;
//  * 0/1 interest masks are bit-packed to ceil(k/8) bytes;
//  * version lists are delta-coded: Vals is key-ordered, so consecutive
//    WriteKey seqs are non-decreasing and each entry stores only the delta;
//  * List histories are position-ascending, so positions delta-code the
//    same way.
// A writer id of kInvalidNode (the initial version's placeholder w0) maps to
// varint 0 rather than a 5-byte max-u32 varint.

template <typename W>
void put_writer(W& w, NodeId writer) {
  w.uv(writer == kInvalidNode ? 0 : static_cast<std::uint64_t>(writer) + 1);
}

NodeId get_writer(BufReader& r) {
  const std::uint64_t v = r.uv();
  return v == 0 ? kInvalidNode : static_cast<NodeId>(v - 1);
}

template <typename W>
void put_key(W& w, const WriteKey& k) {
  w.uv(k.seq);
  put_writer(w, k.writer);
}

WriteKey get_key(BufReader& r) {
  WriteKey k;
  k.seq = r.uv();
  k.writer = get_writer(r);
  return k;
}

/// Version list, seq delta-coded (ReadValsResp).  Vals ships key-ordered, so
/// the zigzag deltas are small non-negatives; arbitrary orders stay valid.
template <typename W>
void put_versions(W& w, const std::vector<Version>& vs) {
  w.uv(vs.size());
  std::uint64_t prev_seq = 0;
  for (const Version& v : vs) {
    w.zz(static_cast<std::int64_t>(v.key.seq - prev_seq));
    put_writer(w, v.key.writer);
    w.zz(v.value);
    prev_seq = v.key.seq;
  }
}

std::vector<Version> get_versions(BufReader& r) {
  const std::uint64_t n = r.uv();
  std::vector<Version> vs;
  vs.reserve(n);
  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    Version v;
    prev_seq += static_cast<std::uint64_t>(r.zz());
    v.key.seq = prev_seq;
    v.key.writer = get_writer(r);
    v.value = r.zz();
    vs.push_back(v);
  }
  return vs;
}

/// List history, position delta-coded (GetTagArrResp); coordinators ship it
/// position-ascending, so deltas are small non-negatives.
template <typename W>
void put_history(W& w, const std::vector<ListedKey>& h) {
  w.uv(h.size());
  Tag prev = 0;
  for (const ListedKey& lk : h) {
    w.zz(static_cast<std::int64_t>(lk.position - prev));
    put_key(w, lk.key);
    prev = lk.position;
  }
}

std::vector<ListedKey> get_history(BufReader& r) {
  const std::uint64_t n = r.uv();
  std::vector<ListedKey> h;
  h.reserve(n);
  Tag prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    ListedKey lk;
    prev += static_cast<std::uint64_t>(r.zz());
    lk.position = prev;
    lk.key = get_key(r);
    h.push_back(lk);
  }
  return h;
}

/// Replication log records: flat field-by-field encode.  Unused fields cost
/// one varint byte each, and replica traffic never rides a hot client path.
template <typename W>
void put_repl_record(W& w, const ReplRecord& r) {
  w.u8(r.kind);
  w.uv(r.obj);
  put_key(w, r.key);
  w.zz(r.value);
  w.uv(r.position);
  w.uv(r.watermark);
  w.mask(r.mask);
  w.uv(r.txn);
  put_writer(w, r.writer);
  w.uv(r.epoch);
  w.u8(r.primary);
}

ReplRecord get_repl_record(BufReader& r) {
  ReplRecord rec;
  rec.kind = r.u8();
  rec.obj = static_cast<ObjectId>(r.uv());
  rec.key = get_key(r);
  rec.value = r.zz();
  rec.position = r.uv();
  rec.watermark = r.uv();
  rec.mask = r.mask();
  rec.txn = r.uv();
  rec.writer = get_writer(r);
  rec.epoch = r.uv();
  rec.primary = r.u8();
  return rec;
}

template <typename W>
struct Encoder {
  W& w;

  void operator()(const WriteValReq& p) { put_key(w, p.key); w.uv(p.obj); w.zz(p.value); }
  void operator()(const WriteValAck& p) { put_key(w, p.key); w.uv(p.obj); }
  void operator()(const InfoReaderReq& p) { put_key(w, p.key); w.mask(p.mask); }
  void operator()(const InfoReaderAck& p) { w.uv(p.tag); }
  void operator()(const UpdateCoorReq& p) { put_key(w, p.key); w.mask(p.mask); }
  void operator()(const UpdateCoorAck& p) { w.uv(p.tag); w.uv(p.watermark); }
  void operator()(const GetTagArrReq& p) { w.mask(p.want); }
  void operator()(const GetTagArrResp& p) {
    w.uv(p.tag);
    w.uv(p.watermark);
    w.cvec(p.latest, [](auto& w2, const WriteKey& k) { put_key(w2, k); });
    w.cvec(p.history,
           [](auto& w2, const std::vector<ListedKey>& h) { put_history(w2, h); });
  }
  void operator()(const ReadValReq& p) { w.uv(p.obj); put_key(w, p.key); w.uv(p.watermark); }
  void operator()(const ReadValResp& p) {
    w.uv(p.obj); put_key(w, p.key); w.zz(p.value); w.u8(p.found ? 1 : 0);
  }
  void operator()(const ReadValsReq& p) { w.uv(p.obj); }
  void operator()(const ReadValsResp& p) { w.uv(p.obj); put_versions(w, p.versions); }
  void operator()(const FinalizeReq& p) {
    put_key(w, p.key); w.uv(p.obj); w.uv(p.position); w.uv(p.watermark);
  }
  void operator()(const FinalizeCoorReq& p) { w.uv(p.position); }
  void operator()(const ReadDoneReq& p) { w.uv(p.txn); }
  void operator()(const EigerWriteReq& p) { w.uv(p.obj); w.zz(p.value); w.uv(p.lamport); }
  void operator()(const EigerWriteAck& p) { w.uv(p.obj); w.uv(p.commit_ts); w.uv(p.lamport); }
  void operator()(const EigerReadReq& p) { w.uv(p.obj); w.uv(p.lamport); }
  void operator()(const EigerReadResp& p) {
    w.uv(p.obj); w.zz(p.value); w.uv(p.valid_from); w.uv(p.valid_until); w.uv(p.lamport);
  }
  void operator()(const EigerReadAtReq& p) { w.uv(p.obj); w.uv(p.at); w.uv(p.lamport); }
  void operator()(const EigerReadAtResp& p) { w.uv(p.obj); w.zz(p.value); w.uv(p.lamport); }
  void operator()(const LockReq& p) { w.uv(p.obj); w.u8(p.exclusive ? 1 : 0); }
  void operator()(const LockGrant& p) { w.uv(p.obj); w.zz(p.value); }
  void operator()(const WriteUnlockReq& p) { w.uv(p.obj); w.zz(p.value); }
  void operator()(const UnlockReq& p) { w.uv(p.obj); }
  void operator()(const UnlockAck& p) { w.uv(p.obj); }
  void operator()(const SimpleReadReq& p) { w.uv(p.obj); }
  void operator()(const SimpleReadResp& p) { w.uv(p.obj); w.zz(p.value); }
  void operator()(const SimpleWriteReq& p) { w.uv(p.obj); w.zz(p.value); }
  void operator()(const SimpleWriteAck& p) { w.uv(p.obj); }
  void operator()(const ReplAppendReq& p) {
    w.uv(p.epoch);
    w.uv(p.first_seq);
    w.cvec(p.records, [](auto& w2, const ReplRecord& r) { put_repl_record(w2, r); });
  }
  void operator()(const ReplAppendAck& p) { w.uv(p.epoch); w.uv(p.acked_seq); }
  void operator()(const ReplJoinReq& p) {
    w.uv(p.epoch); w.uv(p.have_seq); w.u8(p.was_primary);
  }
  void operator()(const ReplJoinResp& p) {
    w.uv(p.epoch);
    w.u8(p.reset);
    w.uv(p.first_seq);
    w.cvec(p.records, [](auto& w2, const ReplRecord& r) { put_repl_record(w2, r); });
  }
  void operator()(const TakeoverNotice& p) {
    w.uv(p.shard); put_writer(w, p.node); w.uv(p.epoch);
  }
  void operator()(const NodeDownNotice& p) { put_writer(w, p.node); }
  void operator()(const AdaptTagArrResp& p) {
    w.uv(p.tag);
    w.uv(p.watermark);
    w.cvec(p.latest, [](auto& w2, const WriteKey& k) { put_key(w2, k); });
    w.mask(p.modes);
    w.uv(p.mode_epoch);
  }
  void operator()(const ReadValBatchReq& p) {
    w.uv(p.watermark);
    w.cvec(p.entries, [](auto& w2, const BatchReadEntry& e) {
      w2.uv(e.obj);
      put_key(w2, e.key);
    });
  }
  void operator()(const ReadValBatchResp& p) {
    w.cvec(p.entries, [](auto& w2, const BatchReadResult& e) {
      w2.uv(e.obj);
      put_key(w2, e.key);
      w2.zz(e.value);
      w2.u8(e.found ? 1 : 0);
    });
  }
  void operator()(const ReadValsBatchReq& p) {
    w.uv(p.watermark);
    w.cvec(p.objs, [](auto& w2, ObjectId obj) { w2.uv(obj); });
  }
  void operator()(const ReadValsBatchResp& p) {
    w.cvec(p.entries, [](auto& w2, const ObjectVersions& e) {
      w2.uv(e.obj);
      put_versions(w2, e.versions);
    });
  }
};

template <std::size_t I = 0>
Payload decode_alternative(std::size_t index, BufReader& r);

struct Decoder {
  BufReader& r;

  template <typename T>
  T get();
};

template <>
WriteValReq Decoder::get<WriteValReq>() {
  WriteValReq p; p.key = get_key(r); p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz();
  return p;
}
template <>
WriteValAck Decoder::get<WriteValAck>() {
  WriteValAck p; p.key = get_key(r); p.obj = static_cast<ObjectId>(r.uv()); return p;
}
template <>
InfoReaderReq Decoder::get<InfoReaderReq>() {
  InfoReaderReq p; p.key = get_key(r); p.mask = r.mask(); return p;
}
template <>
InfoReaderAck Decoder::get<InfoReaderAck>() {
  InfoReaderAck p; p.tag = r.uv(); return p;
}
template <>
UpdateCoorReq Decoder::get<UpdateCoorReq>() {
  UpdateCoorReq p; p.key = get_key(r); p.mask = r.mask(); return p;
}
template <>
UpdateCoorAck Decoder::get<UpdateCoorAck>() {
  UpdateCoorAck p; p.tag = r.uv(); p.watermark = r.uv(); return p;
}
template <>
GetTagArrReq Decoder::get<GetTagArrReq>() {
  GetTagArrReq p; p.want = r.mask(); return p;
}
template <>
GetTagArrResp Decoder::get<GetTagArrResp>() {
  GetTagArrResp p;
  p.tag = r.uv();
  p.watermark = r.uv();
  p.latest = r.cvec<WriteKey>([](BufReader& r2) { return get_key(r2); });
  p.history = r.cvec<std::vector<ListedKey>>([](BufReader& r2) { return get_history(r2); });
  return p;
}
template <>
ReadValReq Decoder::get<ReadValReq>() {
  ReadValReq p; p.obj = static_cast<ObjectId>(r.uv()); p.key = get_key(r); p.watermark = r.uv();
  return p;
}
template <>
ReadValResp Decoder::get<ReadValResp>() {
  ReadValResp p;
  p.obj = static_cast<ObjectId>(r.uv()); p.key = get_key(r); p.value = r.zz();
  p.found = r.u8() != 0;
  return p;
}
template <>
ReadValsReq Decoder::get<ReadValsReq>() {
  ReadValsReq p; p.obj = static_cast<ObjectId>(r.uv()); return p;
}
template <>
ReadValsResp Decoder::get<ReadValsResp>() {
  ReadValsResp p;
  p.obj = static_cast<ObjectId>(r.uv());
  p.versions = get_versions(r);
  return p;
}
template <>
FinalizeReq Decoder::get<FinalizeReq>() {
  FinalizeReq p;
  p.key = get_key(r); p.obj = static_cast<ObjectId>(r.uv()); p.position = r.uv();
  p.watermark = r.uv();
  return p;
}
template <>
FinalizeCoorReq Decoder::get<FinalizeCoorReq>() {
  FinalizeCoorReq p; p.position = r.uv(); return p;
}
template <>
ReadDoneReq Decoder::get<ReadDoneReq>() {
  ReadDoneReq p; p.txn = r.uv(); return p;
}
template <>
EigerWriteReq Decoder::get<EigerWriteReq>() {
  EigerWriteReq p; p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); p.lamport = r.uv();
  return p;
}
template <>
EigerWriteAck Decoder::get<EigerWriteAck>() {
  EigerWriteAck p; p.obj = static_cast<ObjectId>(r.uv()); p.commit_ts = r.uv();
  p.lamport = r.uv();
  return p;
}
template <>
EigerReadReq Decoder::get<EigerReadReq>() {
  EigerReadReq p; p.obj = static_cast<ObjectId>(r.uv()); p.lamport = r.uv(); return p;
}
template <>
EigerReadResp Decoder::get<EigerReadResp>() {
  EigerReadResp p;
  p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); p.valid_from = r.uv();
  p.valid_until = r.uv(); p.lamport = r.uv();
  return p;
}
template <>
EigerReadAtReq Decoder::get<EigerReadAtReq>() {
  EigerReadAtReq p; p.obj = static_cast<ObjectId>(r.uv()); p.at = r.uv(); p.lamport = r.uv();
  return p;
}
template <>
EigerReadAtResp Decoder::get<EigerReadAtResp>() {
  EigerReadAtResp p; p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); p.lamport = r.uv();
  return p;
}
template <>
LockReq Decoder::get<LockReq>() {
  LockReq p; p.obj = static_cast<ObjectId>(r.uv()); p.exclusive = r.u8() != 0; return p;
}
template <>
LockGrant Decoder::get<LockGrant>() {
  LockGrant p; p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); return p;
}
template <>
WriteUnlockReq Decoder::get<WriteUnlockReq>() {
  WriteUnlockReq p; p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); return p;
}
template <>
UnlockReq Decoder::get<UnlockReq>() {
  UnlockReq p; p.obj = static_cast<ObjectId>(r.uv()); return p;
}
template <>
UnlockAck Decoder::get<UnlockAck>() {
  UnlockAck p; p.obj = static_cast<ObjectId>(r.uv()); return p;
}
template <>
SimpleReadReq Decoder::get<SimpleReadReq>() {
  SimpleReadReq p; p.obj = static_cast<ObjectId>(r.uv()); return p;
}
template <>
SimpleReadResp Decoder::get<SimpleReadResp>() {
  SimpleReadResp p; p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); return p;
}
template <>
SimpleWriteReq Decoder::get<SimpleWriteReq>() {
  SimpleWriteReq p; p.obj = static_cast<ObjectId>(r.uv()); p.value = r.zz(); return p;
}
template <>
SimpleWriteAck Decoder::get<SimpleWriteAck>() {
  SimpleWriteAck p; p.obj = static_cast<ObjectId>(r.uv()); return p;
}
template <>
ReplAppendReq Decoder::get<ReplAppendReq>() {
  ReplAppendReq p;
  p.epoch = r.uv();
  p.first_seq = r.uv();
  p.records = r.cvec<ReplRecord>([](BufReader& r2) { return get_repl_record(r2); });
  return p;
}
template <>
ReplAppendAck Decoder::get<ReplAppendAck>() {
  ReplAppendAck p; p.epoch = r.uv(); p.acked_seq = r.uv(); return p;
}
template <>
ReplJoinReq Decoder::get<ReplJoinReq>() {
  ReplJoinReq p; p.epoch = r.uv(); p.have_seq = r.uv(); p.was_primary = r.u8(); return p;
}
template <>
ReplJoinResp Decoder::get<ReplJoinResp>() {
  ReplJoinResp p;
  p.epoch = r.uv();
  p.reset = r.u8();
  p.first_seq = r.uv();
  p.records = r.cvec<ReplRecord>([](BufReader& r2) { return get_repl_record(r2); });
  return p;
}
template <>
TakeoverNotice Decoder::get<TakeoverNotice>() {
  TakeoverNotice p; p.shard = r.uv(); p.node = get_writer(r); p.epoch = r.uv(); return p;
}
template <>
NodeDownNotice Decoder::get<NodeDownNotice>() {
  NodeDownNotice p; p.node = get_writer(r); return p;
}
template <>
AdaptTagArrResp Decoder::get<AdaptTagArrResp>() {
  AdaptTagArrResp p;
  p.tag = r.uv();
  p.watermark = r.uv();
  p.latest = r.cvec<WriteKey>([](BufReader& r2) { return get_key(r2); });
  p.modes = r.mask();
  p.mode_epoch = r.uv();
  return p;
}
template <>
ReadValBatchReq Decoder::get<ReadValBatchReq>() {
  ReadValBatchReq p;
  p.watermark = r.uv();
  p.entries = r.cvec<BatchReadEntry>([](BufReader& r2) {
    BatchReadEntry e;
    e.obj = static_cast<ObjectId>(r2.uv());
    e.key = get_key(r2);
    return e;
  });
  return p;
}
template <>
ReadValBatchResp Decoder::get<ReadValBatchResp>() {
  ReadValBatchResp p;
  p.entries = r.cvec<BatchReadResult>([](BufReader& r2) {
    BatchReadResult e;
    e.obj = static_cast<ObjectId>(r2.uv());
    e.key = get_key(r2);
    e.value = r2.zz();
    e.found = r2.u8() != 0;
    return e;
  });
  return p;
}
template <>
ReadValsBatchReq Decoder::get<ReadValsBatchReq>() {
  ReadValsBatchReq p;
  p.watermark = r.uv();
  p.objs = r.cvec<ObjectId>([](BufReader& r2) { return static_cast<ObjectId>(r2.uv()); });
  return p;
}
template <>
ReadValsBatchResp Decoder::get<ReadValsBatchResp>() {
  ReadValsBatchResp p;
  p.entries = r.cvec<ObjectVersions>([](BufReader& r2) {
    ObjectVersions e;
    e.obj = static_cast<ObjectId>(r2.uv());
    e.versions = get_versions(r2);
    return e;
  });
  return p;
}

template <std::size_t I>
Payload decode_alternative(std::size_t index, BufReader& r) {
  if constexpr (I < std::variant_size_v<Payload>) {
    if (index == I) {
      Decoder d{r};
      return Payload{d.get<std::variant_alternative_t<I, Payload>>()};
    }
    return decode_alternative<I + 1>(index, r);
  } else {
    SNOW_UNREACHABLE("bad payload index in decode");
  }
}

static_assert(std::variant_size_v<Payload> <= 256, "payload index must fit one byte");

// snowkit-wire-v1 FREEZE (docs/WIRE.md): the payload tag is the variant
// index, and both the TCP transport and the checked-in fuzz trace files
// depend on these numbers.  APPEND new payloads to the variant; reordering
// or inserting breaks every stored trace and any mixed-version fleet, so it
// requires a wire-version bump.  These asserts pin the frozen assignment.
template <typename T>
constexpr std::size_t payload_tag = Payload{T{}}.index();
static_assert(payload_tag<WriteValReq> == 0 && payload_tag<WriteValAck> == 1 &&
              payload_tag<InfoReaderReq> == 2 && payload_tag<InfoReaderAck> == 3 &&
              payload_tag<UpdateCoorReq> == 4 && payload_tag<UpdateCoorAck> == 5 &&
              payload_tag<GetTagArrReq> == 6 && payload_tag<GetTagArrResp> == 7 &&
              payload_tag<ReadValReq> == 8 && payload_tag<ReadValResp> == 9 &&
              payload_tag<ReadValsReq> == 10 && payload_tag<ReadValsResp> == 11 &&
              payload_tag<FinalizeReq> == 12 && payload_tag<EigerWriteReq> == 13 &&
              payload_tag<EigerWriteAck> == 14 && payload_tag<EigerReadReq> == 15 &&
              payload_tag<EigerReadResp> == 16 && payload_tag<EigerReadAtReq> == 17 &&
              payload_tag<EigerReadAtResp> == 18 && payload_tag<LockReq> == 19 &&
              payload_tag<LockGrant> == 20 && payload_tag<WriteUnlockReq> == 21 &&
              payload_tag<UnlockReq> == 22 && payload_tag<UnlockAck> == 23 &&
              payload_tag<SimpleReadReq> == 24 && payload_tag<SimpleReadResp> == 25 &&
              payload_tag<SimpleWriteReq> == 26 && payload_tag<SimpleWriteAck> == 27 &&
              payload_tag<FinalizeCoorReq> == 28 && payload_tag<ReadDoneReq> == 29 &&
              payload_tag<ReplAppendReq> == 30 && payload_tag<ReplAppendAck> == 31 &&
              payload_tag<ReplJoinReq> == 32 && payload_tag<ReplJoinResp> == 33 &&
              payload_tag<TakeoverNotice> == 34 && payload_tag<NodeDownNotice> == 35,
              "snowkit-wire-v1 payload tags are frozen (docs/WIRE.md): append new payloads, "
              "never reorder; a reorder requires a wire-version bump");

// Adaptive-layer payloads, appended in PR 10.  A separate assert so the
// frozen 0-35 block above stays byte-identical to what earlier checkins
// compiled against.
static_assert(payload_tag<AdaptTagArrResp> == 36 && payload_tag<ReadValBatchReq> == 37 &&
              payload_tag<ReadValBatchResp> == 38 && payload_tag<ReadValsBatchReq> == 39 &&
              payload_tag<ReadValsBatchResp> == 40,
              "snowkit-wire-v1 adaptive payload tags are frozen (docs/WIRE.md): append new "
              "payloads, never reorder; a reorder requires a wire-version bump");

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& m) {
  BufWriter w;
  w.uv(m.txn);
  w.u8(static_cast<std::uint8_t>(m.payload.index()));
  std::visit(Encoder<BufWriter>{w}, m.payload);
  return w.take();
}

void encode_message_into(const Message& m, std::vector<std::uint8_t>& out) {
  BufWriter w(out);
  w.uv(m.txn);
  w.u8(static_cast<std::uint8_t>(m.payload.index()));
  std::visit(Encoder<BufWriter>{w}, m.payload);
}

namespace {

/// Shared decode body; malformation surfaces as CodecError, and the two
/// public entry points choose the failure mode (abort vs error-return).
Message decode_message_impl(const std::vector<std::uint8_t>& bytes) {
  BufReader r(bytes);
  Message m;
  m.txn = r.uv();
  std::size_t index = r.u8();
  if (index >= std::variant_size_v<Payload>) {
    throw CodecError("payload index " + std::to_string(index) + " out of range");
  }
  m.payload = decode_alternative<0>(index, r);
  if (!r.done()) {
    throw CodecError(std::string("trailing bytes after payload ") + payload_name(m.payload));
  }
  return m;
}

}  // namespace

Message decode_message(const std::vector<std::uint8_t>& bytes) {
  // Trusted in-process bytes (ThreadRuntime mailboxes, sim roundtrips): a
  // decode failure means OUR encoder or memory is corrupt — abort, exactly
  // as before BufReader learned to throw.
  try {
    return decode_message_impl(bytes);
  } catch (const CodecError& e) {
    SNOW_UNREACHABLE("decode_message on trusted bytes failed: " + std::string(e.what()));
  }
}

bool try_decode_message(const std::vector<std::uint8_t>& bytes, Message& out,
                        std::string& err) noexcept {
  // Untrusted network bytes (NetRuntime frames from a greeted-but-
  // unauthenticated TCP peer): malformation is expected input, never a
  // reason to die.
  try {
    out = decode_message_impl(bytes);
    return true;
  } catch (const CodecError& e) {
    err = e.what();
    return false;
  } catch (const std::bad_alloc&) {
    err = "allocation failure during decode";
    return false;
  }
}

std::size_t encoded_size(const Message& m) {
  SizeWriter w;
  w.uv(m.txn);
  w.u8(static_cast<std::uint8_t>(m.payload.index()));
  std::visit(Encoder<SizeWriter>{w}, m.payload);
  return w.size();
}

}  // namespace snowkit
