#include "msg/codec.hpp"

#include "common/assert.hpp"
#include "common/buffer.hpp"

namespace snowkit {

namespace {

// The put_* helpers and Encoder are templated over the writer so the same
// encoding logic runs against BufWriter (serialize) and SizeWriter (count).

template <typename W>
void put_key(W& w, const WriteKey& k) {
  w.u64(k.seq);
  w.u32(k.writer);
}

WriteKey get_key(BufReader& r) {
  WriteKey k;
  k.seq = r.u64();
  k.writer = r.u32();
  return k;
}

template <typename W>
void put_mask(W& w, const std::vector<std::uint8_t>& mask) {
  w.vec(mask, [](auto& w2, std::uint8_t b) { w2.u8(b); });
}

std::vector<std::uint8_t> get_mask(BufReader& r) {
  return r.vec<std::uint8_t>([](BufReader& r2) { return r2.u8(); });
}

template <typename W>
void put_version(W& w, const Version& v) {
  put_key(w, v.key);
  w.i64(v.value);
}

Version get_version(BufReader& r) {
  Version v;
  v.key = get_key(r);
  v.value = r.i64();
  return v;
}

template <typename W>
void put_listed(W& w, const ListedKey& lk) {
  w.u64(lk.position);
  put_key(w, lk.key);
}

ListedKey get_listed(BufReader& r) {
  ListedKey lk;
  lk.position = r.u64();
  lk.key = get_key(r);
  return lk;
}

template <typename W>
struct Encoder {
  W& w;

  void operator()(const WriteValReq& p) { put_key(w, p.key); w.u32(p.obj); w.i64(p.value); }
  void operator()(const WriteValAck& p) { put_key(w, p.key); w.u32(p.obj); }
  void operator()(const InfoReaderReq& p) { put_key(w, p.key); put_mask(w, p.mask); }
  void operator()(const InfoReaderAck& p) { w.u64(p.tag); }
  void operator()(const UpdateCoorReq& p) { put_key(w, p.key); put_mask(w, p.mask); }
  void operator()(const UpdateCoorAck& p) { w.u64(p.tag); }
  void operator()(const GetTagArrReq& p) { put_mask(w, p.want); }
  void operator()(const GetTagArrResp& p) {
    w.u64(p.tag);
    w.vec(p.latest, [](auto& w2, const WriteKey& k) { put_key(w2, k); });
    w.vec(p.history, [](auto& w2, const std::vector<ListedKey>& h) {
      w2.vec(h, [](auto& w3, const ListedKey& lk) { put_listed(w3, lk); });
    });
  }
  void operator()(const ReadValReq& p) { w.u32(p.obj); put_key(w, p.key); }
  void operator()(const ReadValResp& p) { w.u32(p.obj); put_key(w, p.key); w.i64(p.value); }
  void operator()(const ReadValsReq& p) { w.u32(p.obj); }
  void operator()(const ReadValsResp& p) {
    w.u32(p.obj);
    w.vec(p.versions, [](auto& w2, const Version& v) { put_version(w2, v); });
  }
  void operator()(const FinalizeReq& p) { put_key(w, p.key); w.u32(p.obj); w.u64(p.position); }
  void operator()(const EigerWriteReq& p) { w.u32(p.obj); w.i64(p.value); w.u64(p.lamport); }
  void operator()(const EigerWriteAck& p) { w.u32(p.obj); w.u64(p.commit_ts); w.u64(p.lamport); }
  void operator()(const EigerReadReq& p) { w.u32(p.obj); w.u64(p.lamport); }
  void operator()(const EigerReadResp& p) {
    w.u32(p.obj); w.i64(p.value); w.u64(p.valid_from); w.u64(p.valid_until); w.u64(p.lamport);
  }
  void operator()(const EigerReadAtReq& p) { w.u32(p.obj); w.u64(p.at); w.u64(p.lamport); }
  void operator()(const EigerReadAtResp& p) { w.u32(p.obj); w.i64(p.value); w.u64(p.lamport); }
  void operator()(const LockReq& p) { w.u32(p.obj); w.u8(p.exclusive ? 1 : 0); }
  void operator()(const LockGrant& p) { w.u32(p.obj); w.i64(p.value); }
  void operator()(const WriteUnlockReq& p) { w.u32(p.obj); w.i64(p.value); }
  void operator()(const UnlockReq& p) { w.u32(p.obj); }
  void operator()(const UnlockAck& p) { w.u32(p.obj); }
  void operator()(const SimpleReadReq& p) { w.u32(p.obj); }
  void operator()(const SimpleReadResp& p) { w.u32(p.obj); w.i64(p.value); }
  void operator()(const SimpleWriteReq& p) { w.u32(p.obj); w.i64(p.value); }
  void operator()(const SimpleWriteAck& p) { w.u32(p.obj); }
};

template <std::size_t I = 0>
Payload decode_alternative(std::size_t index, BufReader& r);

struct Decoder {
  BufReader& r;

  template <typename T>
  T get();
};

template <>
WriteValReq Decoder::get<WriteValReq>() {
  WriteValReq p; p.key = get_key(r); p.obj = r.u32(); p.value = r.i64(); return p;
}
template <>
WriteValAck Decoder::get<WriteValAck>() {
  WriteValAck p; p.key = get_key(r); p.obj = r.u32(); return p;
}
template <>
InfoReaderReq Decoder::get<InfoReaderReq>() {
  InfoReaderReq p; p.key = get_key(r); p.mask = get_mask(r); return p;
}
template <>
InfoReaderAck Decoder::get<InfoReaderAck>() {
  InfoReaderAck p; p.tag = r.u64(); return p;
}
template <>
UpdateCoorReq Decoder::get<UpdateCoorReq>() {
  UpdateCoorReq p; p.key = get_key(r); p.mask = get_mask(r); return p;
}
template <>
UpdateCoorAck Decoder::get<UpdateCoorAck>() {
  UpdateCoorAck p; p.tag = r.u64(); return p;
}
template <>
GetTagArrReq Decoder::get<GetTagArrReq>() {
  GetTagArrReq p; p.want = get_mask(r); return p;
}
template <>
GetTagArrResp Decoder::get<GetTagArrResp>() {
  GetTagArrResp p;
  p.tag = r.u64();
  p.latest = r.vec<WriteKey>([](BufReader& r2) { return get_key(r2); });
  p.history = r.vec<std::vector<ListedKey>>([](BufReader& r2) {
    return r2.vec<ListedKey>([](BufReader& r3) { return get_listed(r3); });
  });
  return p;
}
template <>
ReadValReq Decoder::get<ReadValReq>() {
  ReadValReq p; p.obj = r.u32(); p.key = get_key(r); return p;
}
template <>
ReadValResp Decoder::get<ReadValResp>() {
  ReadValResp p; p.obj = r.u32(); p.key = get_key(r); p.value = r.i64(); return p;
}
template <>
ReadValsReq Decoder::get<ReadValsReq>() {
  ReadValsReq p; p.obj = r.u32(); return p;
}
template <>
ReadValsResp Decoder::get<ReadValsResp>() {
  ReadValsResp p;
  p.obj = r.u32();
  p.versions = r.vec<Version>([](BufReader& r2) { return get_version(r2); });
  return p;
}
template <>
FinalizeReq Decoder::get<FinalizeReq>() {
  FinalizeReq p; p.key = get_key(r); p.obj = r.u32(); p.position = r.u64(); return p;
}
template <>
EigerWriteReq Decoder::get<EigerWriteReq>() {
  EigerWriteReq p; p.obj = r.u32(); p.value = r.i64(); p.lamport = r.u64(); return p;
}
template <>
EigerWriteAck Decoder::get<EigerWriteAck>() {
  EigerWriteAck p; p.obj = r.u32(); p.commit_ts = r.u64(); p.lamport = r.u64(); return p;
}
template <>
EigerReadReq Decoder::get<EigerReadReq>() {
  EigerReadReq p; p.obj = r.u32(); p.lamport = r.u64(); return p;
}
template <>
EigerReadResp Decoder::get<EigerReadResp>() {
  EigerReadResp p;
  p.obj = r.u32(); p.value = r.i64(); p.valid_from = r.u64(); p.valid_until = r.u64();
  p.lamport = r.u64();
  return p;
}
template <>
EigerReadAtReq Decoder::get<EigerReadAtReq>() {
  EigerReadAtReq p; p.obj = r.u32(); p.at = r.u64(); p.lamport = r.u64(); return p;
}
template <>
EigerReadAtResp Decoder::get<EigerReadAtResp>() {
  EigerReadAtResp p; p.obj = r.u32(); p.value = r.i64(); p.lamport = r.u64(); return p;
}
template <>
LockReq Decoder::get<LockReq>() {
  LockReq p; p.obj = r.u32(); p.exclusive = r.u8() != 0; return p;
}
template <>
LockGrant Decoder::get<LockGrant>() {
  LockGrant p; p.obj = r.u32(); p.value = r.i64(); return p;
}
template <>
WriteUnlockReq Decoder::get<WriteUnlockReq>() {
  WriteUnlockReq p; p.obj = r.u32(); p.value = r.i64(); return p;
}
template <>
UnlockReq Decoder::get<UnlockReq>() {
  UnlockReq p; p.obj = r.u32(); return p;
}
template <>
UnlockAck Decoder::get<UnlockAck>() {
  UnlockAck p; p.obj = r.u32(); return p;
}
template <>
SimpleReadReq Decoder::get<SimpleReadReq>() {
  SimpleReadReq p; p.obj = r.u32(); return p;
}
template <>
SimpleReadResp Decoder::get<SimpleReadResp>() {
  SimpleReadResp p; p.obj = r.u32(); p.value = r.i64(); return p;
}
template <>
SimpleWriteReq Decoder::get<SimpleWriteReq>() {
  SimpleWriteReq p; p.obj = r.u32(); p.value = r.i64(); return p;
}
template <>
SimpleWriteAck Decoder::get<SimpleWriteAck>() {
  SimpleWriteAck p; p.obj = r.u32(); return p;
}

template <std::size_t I>
Payload decode_alternative(std::size_t index, BufReader& r) {
  if constexpr (I < std::variant_size_v<Payload>) {
    if (index == I) {
      Decoder d{r};
      return Payload{d.get<std::variant_alternative_t<I, Payload>>()};
    }
    return decode_alternative<I + 1>(index, r);
  } else {
    SNOW_UNREACHABLE("bad payload index in decode");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& m) {
  BufWriter w;
  w.u64(m.txn);
  w.u32(static_cast<std::uint32_t>(m.payload.index()));
  std::visit(Encoder<BufWriter>{w}, m.payload);
  return w.take();
}

void encode_message_into(const Message& m, std::vector<std::uint8_t>& out) {
  BufWriter w(out);
  w.u64(m.txn);
  w.u32(static_cast<std::uint32_t>(m.payload.index()));
  std::visit(Encoder<BufWriter>{w}, m.payload);
}

Message decode_message(const std::vector<std::uint8_t>& bytes) {
  BufReader r(bytes);
  Message m;
  m.txn = r.u64();
  std::size_t index = r.u32();
  SNOW_CHECK_MSG(index < std::variant_size_v<Payload>, "payload index " << index);
  m.payload = decode_alternative<0>(index, r);
  SNOW_CHECK_MSG(r.done(), "trailing bytes after payload " << payload_name(m.payload));
  return m;
}

std::size_t encoded_size(const Message& m) {
  SizeWriter w;
  w.u64(m.txn);
  w.u32(static_cast<std::uint32_t>(m.payload.index()));
  std::visit(Encoder<SizeWriter>{w}, m.payload);
  return w.size();
}

}  // namespace snowkit
