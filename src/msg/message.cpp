#include "msg/message.hpp"

#include <sstream>

namespace snowkit {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

const char* payload_name(const Payload& p) {
  return std::visit(
      Overloaded{
          [](const WriteValReq&) { return "write-val"; },
          [](const WriteValAck&) { return "write-val-ack"; },
          [](const InfoReaderReq&) { return "info-reader"; },
          [](const InfoReaderAck&) { return "info-reader-ack"; },
          [](const UpdateCoorReq&) { return "update-coor"; },
          [](const UpdateCoorAck&) { return "update-coor-ack"; },
          [](const GetTagArrReq&) { return "get-tag-arr"; },
          [](const GetTagArrResp&) { return "tag-arr"; },
          [](const ReadValReq&) { return "read-val"; },
          [](const ReadValResp&) { return "read-val-resp"; },
          [](const ReadValsReq&) { return "read-vals"; },
          [](const ReadValsResp&) { return "read-vals-resp"; },
          [](const FinalizeReq&) { return "finalize"; },
          [](const EigerWriteReq&) { return "eiger-write"; },
          [](const EigerWriteAck&) { return "eiger-write-ack"; },
          [](const EigerReadReq&) { return "eiger-read"; },
          [](const EigerReadResp&) { return "eiger-read-resp"; },
          [](const EigerReadAtReq&) { return "eiger-read-at"; },
          [](const EigerReadAtResp&) { return "eiger-read-at-resp"; },
          [](const LockReq&) { return "lock-req"; },
          [](const LockGrant&) { return "lock-grant"; },
          [](const WriteUnlockReq&) { return "write-unlock"; },
          [](const UnlockReq&) { return "unlock"; },
          [](const UnlockAck&) { return "unlock-ack"; },
          [](const SimpleReadReq&) { return "simple-read"; },
          [](const SimpleReadResp&) { return "simple-read-resp"; },
          [](const SimpleWriteReq&) { return "simple-write"; },
          [](const SimpleWriteAck&) { return "simple-write-ack"; },
          [](const FinalizeCoorReq&) { return "finalize-coor"; },
          [](const ReadDoneReq&) { return "read-done"; },
          [](const ReplAppendReq&) { return "repl-append"; },
          [](const ReplAppendAck&) { return "repl-append-ack"; },
          [](const ReplJoinReq&) { return "repl-join"; },
          [](const ReplJoinResp&) { return "repl-join-resp"; },
          [](const TakeoverNotice&) { return "takeover-notice"; },
          [](const NodeDownNotice&) { return "node-down-notice"; },
          [](const AdaptTagArrResp&) { return "adapt-tag-arr"; },
          [](const ReadValBatchReq&) { return "read-val-batch"; },
          [](const ReadValBatchResp&) { return "read-val-batch-resp"; },
          [](const ReadValsBatchReq&) { return "read-vals-batch"; },
          [](const ReadValsBatchResp&) { return "read-vals-batch-resp"; },
      },
      p);
}

bool is_read_request(const Payload& p) {
  return std::holds_alternative<ReadValReq>(p) || std::holds_alternative<ReadValsReq>(p) ||
         std::holds_alternative<GetTagArrReq>(p) || std::holds_alternative<EigerReadReq>(p) ||
         std::holds_alternative<EigerReadAtReq>(p) || std::holds_alternative<SimpleReadReq>(p) ||
         std::holds_alternative<ReadValBatchReq>(p) ||
         std::holds_alternative<ReadValsBatchReq>(p);
}

bool is_read_response(const Payload& p) {
  return std::holds_alternative<ReadValResp>(p) || std::holds_alternative<ReadValsResp>(p) ||
         std::holds_alternative<GetTagArrResp>(p) || std::holds_alternative<EigerReadResp>(p) ||
         std::holds_alternative<EigerReadAtResp>(p) ||
         std::holds_alternative<SimpleReadResp>(p) ||
         std::holds_alternative<AdaptTagArrResp>(p) ||
         std::holds_alternative<ReadValBatchResp>(p) ||
         std::holds_alternative<ReadValsBatchResp>(p);
}

int version_count(const Payload& p) {
  if (const auto* rv = std::get_if<ReadValsResp>(&p)) return static_cast<int>(rv->versions.size());
  if (const auto* bv = std::get_if<ReadValsBatchResp>(&p)) {
    // The O-property metric is versions per server SEND; a batched prefetch
    // response honestly carries the SUM over its objects, not the max.
    std::size_t total = 0;
    for (const ObjectVersions& e : bv->entries) total += e.versions.size();
    return static_cast<int>(total);
  }
  if (const auto* b = std::get_if<ReadValBatchResp>(&p)) {
    return static_cast<int>(b->entries.size());
  }
  if (is_read_response(p)) return 1;
  return 0;
}

std::string describe(const Message& m) {
  std::ostringstream oss;
  oss << payload_name(m.payload) << "[txn=" << m.txn << "]";
  return oss.str();
}

}  // namespace snowkit
