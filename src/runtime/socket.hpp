// snowkit-wire-v1 framing + TCP socket helpers for NetRuntime.
//
// The stream format (frozen in docs/WIRE.md) wraps the existing message
// codec (msg/codec.cpp, reused verbatim via encode_message_into) in
// length-prefixed frames so it can cross process boundaries:
//
//   frame   := len:u32le  body
//   body    := type:u8  type-specific bytes          (len = |body|)
//   HELLO   := 0x01  magic:u32le("SNWK")  version:uv  process_index:uv
//   MSG     := 0x02  from:uv  to:uv  encoded-Message  (codec bytes verbatim)
//   SHUTDOWN:= 0x03                                    (empty)
//
// FrameDecoder is the incremental reassembly unit: bytes arrive in arbitrary
// TCP chunks, frames pop out whole.  It is deliberately separable from the
// runtime so tests can split encoded streams at every byte offset
// (tests/frame_roundtrip_test.cpp).  A TCP peer's only credential is its
// HELLO, and the HELLO fields are public, so EVERYTHING on the stream stays
// untrusted: malformed framing, bad routing headers, and undecodable
// Message payloads are all reported as errors and drop the CONNECTION,
// never the process (NetRuntime uses try_decode_message for frame
// payloads).  What remains trusted is only control-plane INTENT: a
// well-formed SHUTDOWN from any greeted peer stops the daemon, so fleet
// ports must sit behind the operator's network boundary — snowkit-wire-v1
// has no peer authentication (see the trust model note in net_runtime.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msg/message.hpp"

namespace snowkit::net {

/// "SNWK" little-endian: the first 4 body bytes of every HELLO.
inline constexpr std::uint32_t kWireMagic = 0x4B574E53u;
/// snowkit-wire-v1.  Bump on any incompatible codec or framing change
/// (docs/WIRE.md is the contract; fuzz trace files share the codec layer).
inline constexpr std::uint64_t kWireVersion = 1;
/// Frames above this are a protocol error, not a large message: the biggest
/// legitimate payload (a GetTagArrResp carrying full histories) is orders of
/// magnitude smaller, so an absurd length prefix means a desynced or hostile
/// stream and must not drive a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  kHello = 0x01,     ///< handshake: identifies the sending fleet process.
  kMsg = 0x02,       ///< one routed Message.
  kShutdown = 0x03,  ///< fleet-wide stop notice (client -> servers).
};

struct Frame {
  FrameType type{FrameType::kMsg};
  std::vector<std::uint8_t> body;  ///< bytes after the type byte.
};

/// Incremental frame reassembly over an untrusted byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet.
    kFrame,     ///< one frame popped into `out`.
    kError,     ///< stream is corrupt; error() says why.  Terminal.
  };

  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const std::vector<std::uint8_t>& bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next complete frame.  After kError the decoder stays in the
  /// error state (callers close the connection).
  Status next(Frame& out);

  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }
  /// True when buffered bytes form only a prefix of a frame — i.e. the
  /// stream ended mid-frame (a truncation, if the peer is gone).
  bool mid_frame() const { return error_.empty() && !buf_.empty(); }

 private:
  std::vector<std::uint8_t> buf_;  ///< unconsumed bytes (compacted on pop).
  std::size_t pos_ = 0;            ///< consumed prefix of buf_.
  std::string error_;
};

// --- frame builders (append to an outbox buffer) ----------------------------

void append_hello(std::vector<std::uint8_t>& out, std::uint64_t process_index);
/// Frames one routed message; the Message bytes are produced by
/// encode_message_into — the exact bytes ThreadRuntime mailboxes carry.
void append_msg(std::vector<std::uint8_t>& out, NodeId from, NodeId to, const Message& m);
void append_shutdown(std::vector<std::uint8_t>& out);

// --- frame body parsers (untrusted until noted) -----------------------------

struct HelloBody {
  std::uint64_t process_index{0};
};

/// Validates magic + version; false (with `err`) on any malformation.
bool parse_hello(const std::vector<std::uint8_t>& body, HelloBody& out, std::string& err);

struct MsgHeader {
  NodeId from{kInvalidNode};
  NodeId to{kInvalidNode};
  std::size_t payload_offset{0};  ///< where the encoded Message starts in body.
};

/// Parses the routing header only (bounds-checked, error-returning).
bool parse_msg_header(const std::vector<std::uint8_t>& body, MsgHeader& out, std::string& err);

/// Decodes the Message of a parsed MSG frame, aborting on malformation —
/// for tests and tools operating on bytes they encoded themselves.  The
/// transport does NOT use this on live traffic: NetRuntime workers decode
/// network frames with try_decode_message and drop the connection instead.
Message decode_msg_payload(const std::vector<std::uint8_t>& body, std::size_t payload_offset);

// --- socket helpers (Linux; -1/err on failure, no exceptions) ---------------

/// True when this build carries the TCP transport (Linux epoll).  Non-Linux
/// builds keep the framing layer (it is pure) but NetRuntime refuses to
/// construct; tests skip via this flag.
bool transport_supported();

/// Listening socket on host:port (SO_REUSEADDR, nonblocking, CLOEXEC).
int tcp_listen(const std::string& host, std::uint16_t port, std::string& err);

/// Starts a nonblocking connect; the fd completes (or fails) via epoll
/// EPOLLOUT + SO_ERROR.  TCP_NODELAY is set: the transport's frames are
/// small and latency-bound, Nagle would serialize round trips.
int tcp_connect_start(const std::string& host, std::uint16_t port, std::string& err);

/// Accepts one pending connection (nonblocking, CLOEXEC, TCP_NODELAY).
int tcp_accept(int listen_fd, std::string& err);

/// Binds port 0 on 127.0.0.1 and returns the kernel-chosen free port
/// (the socket is closed again; benches/tests use this to pick fleet ports).
std::uint16_t pick_free_port();

/// n distinct free ports: all probe sockets are held open until every port
/// is chosen, so one fleet can never be handed the same port twice.
std::vector<std::uint16_t> pick_free_ports(std::size_t n);

}  // namespace snowkit::net
