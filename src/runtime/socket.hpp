// snowkit-wire-v1 framing + TCP socket helpers for NetRuntime.
//
// The stream format (frozen in docs/WIRE.md) wraps the existing message
// codec (msg/codec.cpp, reused verbatim via encode_message_into) in
// length-prefixed frames so it can cross process boundaries:
//
//   frame   := len:u32le  body
//   body    := type:u8  type-specific bytes          (len = |body|)
//   HELLO   := 0x01  magic:u32le("SNWK")  version:uv  process_index:uv
//   MSG     := 0x02  from:uv  to:uv  encoded-Message  (codec bytes verbatim)
//   SHUTDOWN:= 0x03                                    (empty)
//
// FrameDecoder is the incremental reassembly unit: bytes arrive in arbitrary
// TCP chunks, frames pop out whole.  It is deliberately separable from the
// runtime so tests can split encoded streams at every byte offset
// (tests/frame_roundtrip_test.cpp).  A TCP peer's only credential is its
// HELLO, and the HELLO fields are public, so EVERYTHING on the stream stays
// untrusted: malformed framing, bad routing headers, and undecodable
// Message payloads are all reported as errors and drop the CONNECTION,
// never the process (NetRuntime uses try_decode_message for frame
// payloads).  What remains trusted is only control-plane INTENT: a
// well-formed SHUTDOWN from any greeted peer stops the daemon, so fleet
// ports must sit behind the operator's network boundary — snowkit-wire-v1
// has no peer authentication (see the trust model note in net_runtime.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "msg/message.hpp"

namespace snowkit::net {

/// "SNWK" little-endian: the first 4 body bytes of every HELLO.
inline constexpr std::uint32_t kWireMagic = 0x4B574E53u;
/// snowkit-wire-v1.  Bump on any incompatible codec or framing change
/// (docs/WIRE.md is the contract; fuzz trace files share the codec layer).
inline constexpr std::uint64_t kWireVersion = 1;
/// Frames above this are a protocol error, not a large message: the biggest
/// legitimate payload (a GetTagArrResp carrying full histories) is orders of
/// magnitude smaller, so an absurd length prefix means a desynced or hostile
/// stream and must not drive a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  kHello = 0x01,     ///< handshake: identifies the sending fleet process.
  kMsg = 0x02,       ///< one routed Message.
  kShutdown = 0x03,  ///< fleet-wide stop notice (client -> servers).
};

struct Frame {
  FrameType type{FrameType::kMsg};
  std::vector<std::uint8_t> body;  ///< bytes after the type byte.
};

/// Incremental frame reassembly over an untrusted byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet.
    kFrame,     ///< one frame popped into `out`.
    kError,     ///< stream is corrupt; error() says why.  Terminal.
  };

  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const std::vector<std::uint8_t>& bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next complete frame.  After kError the decoder stays in the
  /// error state (callers close the connection).
  Status next(Frame& out);

  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }
  /// True when buffered bytes form only a prefix of a frame — i.e. the
  /// stream ended mid-frame (a truncation, if the peer is gone).
  bool mid_frame() const { return error_.empty() && !buf_.empty(); }

 private:
  std::vector<std::uint8_t> buf_;  ///< unconsumed bytes (compacted on pop).
  std::size_t pos_ = 0;            ///< consumed prefix of buf_.
  std::string error_;
};

// --- write-side coalescing ---------------------------------------------------

/// One gather segment: a view into a queued frame's unsent bytes.  Portable
/// stand-in for struct iovec so this layer (and its every-byte-offset tests)
/// never touches <sys/uio.h>; the transport casts slices into its iovec array
/// at the sendmsg call site.
struct IoSlice {
  const std::uint8_t* data{nullptr};
  std::size_t len{0};
};

/// The send-side frame queue of one peer link: whole frames go in, gather
/// lists capped by (max_frames, max_bytes) come out, and consume() advances
/// past whatever the kernel actually accepted — including a partial write
/// that stops at ANY byte offset inside or across frame boundaries (the next
/// gather resumes mid-frame).  Frames are never re-encoded, split or merged:
/// coalescing is purely how many of the SAME snowkit-wire-v1 bytes share one
/// syscall, which frame_roundtrip_test proves by comparing gathered bytes
/// against the flat reference stream.
///
/// Separable from the transport on purpose: no fds, no syscalls — just the
/// bookkeeping whose edge cases (partial resume, iovec-cap overflow,
/// reconnect recovery) need exhaustive testing.
class WriteCoalescer {
 public:
  /// Both caps must be positive (TransportOptions::validate enforces the
  /// real bounds; this layer just honors them).
  void set_limits(std::size_t max_frames, std::size_t max_bytes) {
    max_frames_ = max_frames;
    max_bytes_ = max_bytes;
  }

  bool empty() const { return q_.empty(); }
  std::size_t pending_bytes() const { return bytes_; }
  std::size_t pending_frames() const { return q_.size(); }
  /// True when the front frame is partially written — a connection drop now
  /// loses that frame (its tail is meaningless to a fresh peer decoder).
  bool front_partially_written() const { return off_ > 0; }

  /// Queues one whole frame (length prefix included).  Empty frames are
  /// meaningless at this layer and ignored.
  void push(std::vector<std::uint8_t>&& frame) {
    if (frame.empty()) return;
    bytes_ += frame.size();
    q_.push_back(std::move(frame));
  }

  /// Fills `out` with the next gather list: at most max_iov and the
  /// configured max_frames slices, stopping at max_bytes — but always at
  /// least one slice when non-empty, so an oversized frame still makes
  /// progress.  The first slice starts at the front frame's unsent offset.
  std::size_t gather(IoSlice* out, std::size_t max_iov) const;

  /// Advances past `n` bytes the kernel accepted (n may end anywhere).
  /// Returns the number of frames fully written; their buffers are moved
  /// into `*spent` (capacity recycling) when it is non-null.
  std::size_t consume(std::size_t n, std::vector<std::vector<std::uint8_t>>* spent = nullptr);

  /// Connection-drop recovery: returns every frame the socket never touched
  /// (oldest first) and resets.  The partially-written front frame, if any,
  /// is dropped — its prefix is on the dead socket and cannot be resent.
  std::deque<std::vector<std::uint8_t>> take_unsent();

 private:
  std::deque<std::vector<std::uint8_t>> q_;  ///< whole frames, send order.
  std::size_t off_ = 0;                      ///< sent bytes of q_.front().
  std::size_t bytes_ = 0;                    ///< unsent bytes across q_.
  std::size_t max_frames_ = 64;
  std::size_t max_bytes_ = 1u << 20;
};

// --- frame builders (append to an outbox buffer) ----------------------------

void append_hello(std::vector<std::uint8_t>& out, std::uint64_t process_index);
/// Frames one routed message; the Message bytes are produced by
/// encode_message_into — the exact bytes ThreadRuntime mailboxes carry.
void append_msg(std::vector<std::uint8_t>& out, NodeId from, NodeId to, const Message& m);
void append_shutdown(std::vector<std::uint8_t>& out);

// --- frame body parsers (untrusted until noted) -----------------------------

struct HelloBody {
  std::uint64_t process_index{0};
};

/// Validates magic + version; false (with `err`) on any malformation.
bool parse_hello(const std::vector<std::uint8_t>& body, HelloBody& out, std::string& err);

struct MsgHeader {
  NodeId from{kInvalidNode};
  NodeId to{kInvalidNode};
  std::size_t payload_offset{0};  ///< where the encoded Message starts in body.
};

/// Parses the routing header only (bounds-checked, error-returning).
bool parse_msg_header(const std::vector<std::uint8_t>& body, MsgHeader& out, std::string& err);

/// Decodes the Message of a parsed MSG frame, aborting on malformation —
/// for tests and tools operating on bytes they encoded themselves.  The
/// transport does NOT use this on live traffic: NetRuntime workers decode
/// network frames with try_decode_message and drop the connection instead.
Message decode_msg_payload(const std::vector<std::uint8_t>& body, std::size_t payload_offset);

// --- socket helpers (Linux; -1/err on failure, no exceptions) ---------------

/// True when this build carries the TCP transport (Linux epoll).  Non-Linux
/// builds keep the framing layer (it is pure) but NetRuntime refuses to
/// construct; tests skip via this flag.
bool transport_supported();

/// Listening socket on host:port (SO_REUSEADDR, nonblocking, CLOEXEC).
int tcp_listen(const std::string& host, std::uint16_t port, std::string& err);

/// Starts a nonblocking connect; the fd completes (or fails) via epoll
/// EPOLLOUT + SO_ERROR.  TCP_NODELAY is set: the transport's frames are
/// small and latency-bound, Nagle would serialize round trips.
int tcp_connect_start(const std::string& host, std::uint16_t port, std::string& err);

/// Accepts one pending connection (nonblocking, CLOEXEC, TCP_NODELAY).
int tcp_accept(int listen_fd, std::string& err);

/// Binds port 0 on 127.0.0.1 and returns the kernel-chosen free port
/// (the socket is closed again; benches/tests use this to pick fleet ports).
std::uint16_t pick_free_port();

/// n distinct free ports: all probe sockets are held open until every port
/// is chosen, so one fleet can never be handed the same port twice.
std::vector<std::uint16_t> pick_free_ports(std::size_t n);

}  // namespace snowkit::net
