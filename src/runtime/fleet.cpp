#include "runtime/fleet.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace snowkit {

namespace {

[[noreturn]] void bad_line(std::size_t lineno, const std::string& why) {
  throw std::invalid_argument("fleet config line " + std::to_string(lineno) + ": " + why);
}

}  // namespace

std::size_t FleetConfig::owner_of(NodeId node) const {
  const std::size_t shards = system.server_count();
  const std::size_t sprocs = server_processes();
  if (node < shards) {
    // Contiguous split, same arithmetic as PlacementKind::kRange: shard s of
    // S goes to server process s*P/S.
    return static_cast<std::size_t>(node) * sprocs / shards;
  }
  if (replicas == 2) {
    // Backup nodes are registered AFTER the clients (build_algo_b/c), at ids
    // [base, base + shards).  The backup of shard s lives on the server
    // process AFTER s's primary (cyclically) — validate() requires >= 2
    // server processes, so primary and backup never share a process and one
    // SIGKILL never takes both copies of a shard.
    const std::size_t base = shards + system.num_readers + system.num_writers;
    if (node >= base && node < base + shards) {
      const std::size_t s = node - base;
      return (s * sprocs / shards + 1) % sprocs;
    }
  }
  return client_index();
}

NetOptions FleetConfig::net_options(std::size_t index) const {
  validate();
  if (index >= processes.size()) {
    throw std::invalid_argument("fleet process index " + std::to_string(index) +
                                " out of range (fleet has " + std::to_string(processes.size()) +
                                " processes)");
  }
  NetOptions opts;
  opts.index = index;
  opts.peers = processes;
  // Capture a copy: the owner map must outlive this FleetConfig, and it must
  // be THE owner_of rule (one implementation), since every fleet process
  // derives its routing from it.
  opts.owner = [cfg = *this](NodeId node) { return cfg.owner_of(node); };
  opts.transport = transport;
  return opts;
}

void FleetConfig::validate() const {
  if (protocol.empty()) {
    throw std::invalid_argument("fleet config: a protocol name is required");
  }
  if (!ProtocolRegistry::global().contains(protocol)) {
    std::string msg = "fleet config: unknown protocol '" + protocol + "'; registered:";
    for (const auto& n : ProtocolRegistry::global().names()) msg += " " + n;
    throw std::invalid_argument(msg);
  }
  if (processes.size() < 2) {
    throw std::invalid_argument("fleet config: at least one server process and the client "
                                "process are required");
  }
  system.validate();
  transport.validate();
  if (server_processes() > system.server_count()) {
    throw std::invalid_argument(
        "fleet config: " + std::to_string(server_processes()) + " server processes but only " +
        std::to_string(system.server_count()) +
        " shards — every server process must host at least one shard");
  }
  if (replicas != 1 && replicas != 2) {
    throw std::invalid_argument("fleet config: replicas must be 1 or 2, got " +
                                std::to_string(replicas));
  }
  if (replicas == 2) {
    if (!ProtocolRegistry::global().traits(protocol).supports_replication) {
      throw std::invalid_argument("fleet config: protocol '" + protocol +
                                  "' does not support replicas 2");
    }
    if (server_processes() < 2) {
      throw std::invalid_argument(
          "fleet config: replicas 2 needs at least two server processes so a shard's "
          "primary and backup never share a process");
    }
  }
}

FleetConfig parse_fleet_text(const std::string& text) {
  FleetConfig fleet;
  std::vector<NetPeerAddr> servers;
  std::vector<NetPeerAddr> clients;
  bool saw_client = false;

  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line

    auto need_value = [&](const char* what) -> std::string {
      std::string v;
      if (!(ls >> v)) bad_line(lineno, std::string("'") + key + "' needs " + what);
      return v;
    };
    auto need_size = [&]() -> std::size_t {
      const std::string v = need_value("a non-negative integer");
      // std::stoull accepts "-1" by wrapping; reject any non-digit up front.
      const bool digits = !v.empty() && v.find_first_not_of("0123456789") == std::string::npos;
      if (!digits) bad_line(lineno, "'" + key + "' value '" + v + "' is not a non-negative integer");
      try {
        return static_cast<std::size_t>(std::stoull(v));
      } catch (const std::exception&) {
        bad_line(lineno, "'" + key + "' value '" + v + "' is out of range");
      }
    };
    auto need_addr = [&]() -> NetPeerAddr {
      NetPeerAddr addr;
      addr.host = need_value("HOST PORT");
      const std::string port = need_value("a port number");
      try {
        const unsigned long p = std::stoul(port);
        if (p == 0 || p > 65535) throw std::out_of_range("port");
        addr.port = static_cast<std::uint16_t>(p);
      } catch (const std::exception&) {
        bad_line(lineno, "port '" + port + "' is not in [1, 65535]");
      }
      return addr;
    };

    // The documented format puts the client line LAST; enforce it for EVERY
    // key, not just `server` — a `shards` or `transport` line after `client`
    // used to be silently applied, diverging from what fleet_text round-trips.
    if (saw_client) {
      if (key == "client") bad_line(lineno, "exactly one client line is allowed");
      bad_line(lineno, "'" + key + "' appears after the client line (client must be last)");
    }

    if (key == "protocol") {
      fleet.protocol = need_value("a protocol name");
    } else if (key == "objects") {
      fleet.system.num_objects = need_size();
    } else if (key == "readers") {
      fleet.system.num_readers = need_size();
    } else if (key == "writers") {
      fleet.system.num_writers = need_size();
    } else if (key == "shards") {
      fleet.system.num_servers = need_size();
    } else if (key == "placement") {
      const std::string v = need_value("hash|range");
      if (v == "hash") {
        fleet.system.placement = PlacementKind::kHash;
      } else if (v == "range") {
        fleet.system.placement = PlacementKind::kRange;
      } else {
        bad_line(lineno, "placement '" + v + "' is not hash|range");
      }
    } else if (key == "replicas") {
      fleet.replicas = need_size();
      if (fleet.replicas != 1 && fleet.replicas != 2) {
        bad_line(lineno, "replicas must be 1 or 2, got " + std::to_string(fleet.replicas));
      }
    } else if (key == "options") {
      try {
        fleet.options = BuildOptions::parse(need_value("key=value[,key=value]"));
      } catch (const std::invalid_argument& e) {
        bad_line(lineno, e.what());
      }
    } else if (key == "transport") {
      try {
        fleet.transport.parse_csv(need_value("key=value[,key=value]"));
      } catch (const std::invalid_argument& e) {
        bad_line(lineno, e.what());
      }
    } else if (key == "server") {
      servers.push_back(need_addr());
    } else if (key == "client") {
      saw_client = true;
      clients.push_back(need_addr());
    } else {
      bad_line(lineno, "unknown key '" + key + "'");
    }
    std::string extra;
    if (ls >> extra) bad_line(lineno, "trailing token '" + extra + "'");
  }

  if (!saw_client) {
    throw std::invalid_argument("fleet config: a client line is required (and must be last)");
  }
  fleet.processes = std::move(servers);
  fleet.processes.push_back(clients.front());
  // Protocol factories only see BuildOptions, so the replicas line mirrors
  // itself there (build_algo_b/c read it back); fleet_text skips the mirror
  // so the round-trip stays one `replicas` line.
  if (fleet.replicas == 2) fleet.options.set("replicas", std::int64_t{2});
  fleet.validate();
  return fleet;
}

FleetConfig parse_fleet_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::invalid_argument("cannot read fleet config '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_fleet_text(buf.str());
}

std::string fleet_text(const FleetConfig& fleet) {
  std::ostringstream out;
  out << "protocol " << fleet.protocol << "\n";
  out << "objects " << fleet.system.num_objects << "\n";
  out << "readers " << fleet.system.num_readers << "\n";
  out << "writers " << fleet.system.num_writers << "\n";
  out << "shards " << fleet.system.num_servers << "\n";
  out << "placement " << (fleet.system.placement == PlacementKind::kHash ? "hash" : "range")
      << "\n";
  if (fleet.replicas != 1) out << "replicas " << fleet.replicas << "\n";
  // Skip the parse-time `replicas` mirror: it re-materializes from the
  // replicas line above, keeping parse(fleet_text(x)) == x.
  bool has_options = false;
  for (const auto& [k, v] : fleet.options.entries()) {
    if (k != "replicas") has_options = true;
  }
  if (has_options) {
    out << "options ";
    bool first = true;
    for (const auto& [k, v] : fleet.options.entries()) {
      if (k == "replicas") continue;
      if (!first) out << ",";
      first = false;
      out << k << "=" << v;
    }
    out << "\n";
  }
  // Only non-default transport knobs are emitted, so configs show what they
  // changed and parse(fleet_text(x)) round-trips exactly.
  const auto transport_entries = fleet.transport.non_default_entries();
  if (!transport_entries.empty()) {
    out << "transport ";
    bool first = true;
    for (const auto& [k, v] : transport_entries) {
      if (!first) out << ",";
      first = false;
      out << k << "=" << v;
    }
    out << "\n";
  }
  for (std::size_t i = 0; i < fleet.processes.size(); ++i) {
    const bool is_client = i + 1 == fleet.processes.size();
    out << (is_client ? "client " : "server ") << fleet.processes[i].host << " "
        << fleet.processes[i].port << "\n";
  }
  return out.str();
}

}  // namespace snowkit
