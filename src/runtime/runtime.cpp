#include "runtime/runtime.hpp"

#include "common/assert.hpp"

namespace snowkit {

void Node::send(NodeId to, Message m) {
  SNOW_CHECK_MSG(rt_ != nullptr, "node used before attachment to a runtime");
  rt_->send(id_, to, std::move(m));
}

NodeId Runtime::add_node(std::unique_ptr<Node> node) {
  SNOW_CHECK(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->rt_ = this;
  node->id_ = id;
  nodes_.push_back(std::move(node));
  on_node_added(id);
  return id;
}

Node& Runtime::node(NodeId id) const {
  SNOW_CHECK_MSG(id < nodes_.size(), "bad node id " << id);
  return *nodes_[id];
}

}  // namespace snowkit
