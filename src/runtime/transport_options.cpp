#include "runtime/transport_options.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace snowkit {

namespace {

// The sendmsg gather list is stack-allocated per flush; IOV_MAX is at least
// 1024 everywhere Linux runs, so the cap doubles as the validation bound.
constexpr std::size_t kMaxCoalesceFrames = 1024;
constexpr std::size_t kMaxIoThreads = 64;

[[noreturn]] void bad(const std::string& why) {
  throw std::invalid_argument("TransportOptions: " + why);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  // std::stoull accepts "-1" by wrapping; reject any non-digit up front.
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    bad("'" + key + "' value '" + value + "' is not a non-negative integer");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    bad("'" + key + "' value '" + value + "' is out of range");
  }
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

}  // namespace

void TransportOptions::validate() const {
  if (io_threads == 0 || io_threads > kMaxIoThreads) {
    bad("io_threads must be in [1, " + std::to_string(kMaxIoThreads) + "], got " +
        std::to_string(io_threads));
  }
  if (coalesce_max_frames == 0 || coalesce_max_frames > kMaxCoalesceFrames) {
    bad("coalesce_max_frames must be in [1, " + std::to_string(kMaxCoalesceFrames) +
        "] (IOV_MAX bound), got " + std::to_string(coalesce_max_frames));
  }
  if (coalesce_max_bytes == 0) bad("coalesce_max_bytes must be positive");
  if (backpressure_bytes == 0) bad("backpressure_bytes must be positive");
  if (inbound_budget_bytes == 0) bad("inbound_budget_bytes must be positive");
  if (read_chunk_bytes < 4096) {
    bad("read_chunk_bytes must be at least 4096, got " + std::to_string(read_chunk_bytes));
  }
  if (reconnect_initial_ns == 0) bad("reconnect_initial_ms must be positive");
  if (reconnect_max_ns < reconnect_initial_ns) {
    bad("reconnect_max_ms (" + std::to_string(reconnect_max_ns / 1'000'000) +
        "ms) must be >= reconnect_initial_ms (" +
        std::to_string(reconnect_initial_ns / 1'000'000) + "ms)");
  }
  if (peer_down_grace_ns == 0) bad("peer_down_grace_ms must be positive");
  if (max_pending_conns == 0) bad("max_pending_conns must be positive");
  // A HELLO frame is 4 (len) + 1 (type) + 4 (magic) + up to 10+10 (varints);
  // a bound below that would reject every legitimate handshake.
  if (max_pending_handshake_bytes < 32) {
    bad("max_pending_handshake_bytes must be at least 32 (a HELLO frame), got " +
        std::to_string(max_pending_handshake_bytes));
  }
  if (pending_handshake_timeout_ns == 0) bad("pending_handshake_timeout_ms must be positive");
}

void TransportOptions::apply(const std::string& key, const std::string& value) {
  const std::uint64_t v = parse_u64(key, value);
  if (key == "io_threads") {
    io_threads = static_cast<std::size_t>(v);
  } else if (key == "coalesce_max_frames") {
    coalesce_max_frames = static_cast<std::size_t>(v);
  } else if (key == "coalesce_max_bytes") {
    coalesce_max_bytes = static_cast<std::size_t>(v);
  } else if (key == "backpressure_bytes") {
    backpressure_bytes = static_cast<std::size_t>(v);
  } else if (key == "inbound_budget_bytes") {
    inbound_budget_bytes = static_cast<std::size_t>(v);
  } else if (key == "read_chunk_bytes") {
    read_chunk_bytes = static_cast<std::size_t>(v);
  } else if (key == "reconnect_initial_ms") {
    reconnect_initial_ns = static_cast<TimeNs>(v) * 1'000'000;
  } else if (key == "reconnect_max_ms") {
    reconnect_max_ns = static_cast<TimeNs>(v) * 1'000'000;
  } else if (key == "peer_down_grace_ms") {
    peer_down_grace_ns = static_cast<TimeNs>(v) * 1'000'000;
  } else if (key == "max_pending_conns") {
    max_pending_conns = static_cast<std::size_t>(v);
  } else if (key == "max_pending_handshake_bytes") {
    max_pending_handshake_bytes = static_cast<std::size_t>(v);
  } else if (key == "pending_handshake_timeout_ms") {
    pending_handshake_timeout_ns = static_cast<TimeNs>(v) * 1'000'000;
  } else {
    bad("unknown key '" + key + "'");
  }
}

void TransportOptions::parse_csv(const std::string& csv) {
  std::istringstream stream(csv);
  std::string item;
  std::vector<std::string> seen;
  while (std::getline(stream, item, ',')) {
    // Whitespace around '=' or between items is a typo, not a different key:
    // trim before dispatch so "io_threads = 2" gets the real diagnostic.
    if (trim(item).empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      bad("expected key=value, got '" + trim(item) + "'");
    }
    const std::string key = trim(item.substr(0, eq));
    if (key.empty()) {
      bad("expected key=value, got '" + trim(item) + "'");
    }
    // A duplicate key in ONE csv string is a conflict, not an override —
    // "io_threads=4,io_threads=1" silently masking the intended setting is
    // exactly the misconfiguration this parser exists to catch.  Layering
    // (fleet file then --transport) still works: each layer is its own call.
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      bad("duplicate key '" + key + "' in '" + csv + "'");
    }
    seen.push_back(key);
    apply(key, trim(item.substr(eq + 1)));
  }
  validate();
}

std::vector<std::pair<std::string, std::string>> TransportOptions::non_default_entries() const {
  const TransportOptions defaults;
  std::vector<std::pair<std::string, std::string>> out;
  auto diff = [&](const char* key, std::uint64_t mine, std::uint64_t theirs) {
    if (mine != theirs) out.emplace_back(key, std::to_string(mine));
  };
  diff("io_threads", io_threads, defaults.io_threads);
  diff("coalesce_max_frames", coalesce_max_frames, defaults.coalesce_max_frames);
  diff("coalesce_max_bytes", coalesce_max_bytes, defaults.coalesce_max_bytes);
  diff("backpressure_bytes", backpressure_bytes, defaults.backpressure_bytes);
  diff("inbound_budget_bytes", inbound_budget_bytes, defaults.inbound_budget_bytes);
  diff("read_chunk_bytes", read_chunk_bytes, defaults.read_chunk_bytes);
  diff("reconnect_initial_ms", reconnect_initial_ns / 1'000'000,
       defaults.reconnect_initial_ns / 1'000'000);
  diff("reconnect_max_ms", reconnect_max_ns / 1'000'000, defaults.reconnect_max_ns / 1'000'000);
  diff("peer_down_grace_ms", peer_down_grace_ns / 1'000'000,
       defaults.peer_down_grace_ns / 1'000'000);
  diff("max_pending_conns", max_pending_conns, defaults.max_pending_conns);
  diff("max_pending_handshake_bytes", max_pending_handshake_bytes,
       defaults.max_pending_handshake_bytes);
  diff("pending_handshake_timeout_ms", pending_handshake_timeout_ns / 1'000'000,
       defaults.pending_handshake_timeout_ns / 1'000'000);
  return out;
}

}  // namespace snowkit
