// ThreadRuntime: one OS thread per node, mailbox message passing.
//
// This is the "real concurrency" substrate: every message is serialized
// through the wire codec (msg/codec) and crosses a mutex-protected queue, so
// protocol state machines experience genuine asynchrony, reordering across
// senders, and memory-visibility effects — the in-process stand-in for the
// gRPC deployment suggested by the reproduction notes.
//
// Delivery guarantees match the paper's model: reliable, unbounded delay
// (scheduling), FIFO per (sender, receiver) pair.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "runtime/runtime.hpp"

namespace snowkit {

class ThreadRuntime final : public Runtime {
 public:
  ThreadRuntime() = default;
  ~ThreadRuntime() override;

  /// Spawns one thread per registered node and calls on_start on each.
  /// No nodes may be added after start().
  void start();

  /// Drains mailboxes until all are empty and all nodes idle, then joins.
  void stop();

  void send(NodeId from, NodeId to, Message m) override;
  void post(NodeId node, std::function<void()> fn) override;
  /// Delivered by a dedicated timer thread; timers still pending at stop()
  /// are discarded.
  void post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) override;
  TimeNs now_ns() const override;

  /// Blocks until every mailbox is empty and every node is idle.  Only valid
  /// when no external driver keeps injecting work.
  void wait_idle();

 private:
  struct Mailbox {
    struct Item {
      NodeId from{kInvalidNode};
      std::vector<std::uint8_t> bytes;   // encoded message (empty for tasks)
      std::function<void()> task;        // non-null for posted tasks
    };
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Item> queue;
    bool busy = false;   // a handler is currently running
    bool stop = false;
  };

  void worker(NodeId id);
  void enqueue(NodeId to, Mailbox::Item item);
  void timer_worker();
  void stop_timer_thread();

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> threads_;
  bool started_ = false;

  struct Timer {
    std::chrono::steady_clock::time_point due;
    NodeId node{kInvalidNode};
    std::function<void()> fn;
  };
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::multimap<std::chrono::steady_clock::time_point, Timer> timers_;
  std::thread timer_thread_;
  bool timer_stop_ = false;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

 protected:
  void on_node_added(NodeId id) override;
};

}  // namespace snowkit
