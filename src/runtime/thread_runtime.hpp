// ThreadRuntime: one OS thread per node, mailbox message passing.
//
// This is the "real concurrency" substrate: every message is serialized
// through the wire codec (msg/codec) and crosses a mutex-protected queue, so
// protocol state machines experience genuine asynchrony, reordering across
// senders, and memory-visibility effects — the in-process stand-in for the
// gRPC deployment suggested by the reproduction notes.
//
// Delivery guarantees match the paper's model: reliable, unbounded delay
// (scheduling), FIFO per (sender, receiver) pair.
//
// Fast path (default): a worker drains its WHOLE mailbox under one lock
// acquisition (deque swap) and delivers the burst outside the critical
// section, and senders encode into recycled byte buffers (thread-local
// scratch swapped against a per-mailbox pool), so steady-state delivery
// costs one lock round-trip per BURST and zero allocations per message.
// Options{.batched = false} keeps the seed's per-message-lock behaviour so
// benches can measure the fast path against its baseline in one binary.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "runtime/mailbox.hpp"
#include "runtime/runtime.hpp"

namespace snowkit {

class ThreadRuntime final : public Runtime {
 public:
  struct Options {
    /// Batch-drain mailboxes and recycle encode buffers (the fast path).
    /// false = seed behaviour: one lock acquisition and one fresh heap
    /// buffer per message (kept as the measurable baseline).
    bool batched{true};
  };

  /// Messages delivered vs. worker wakeups: messages / wakeups is the mean
  /// burst size a node handles per lock round-trip (1.0 in legacy mode).
  struct DeliveryStats {
    std::uint64_t messages{0};
    std::uint64_t tasks{0};
    std::uint64_t wakeups{0};
  };

  ThreadRuntime() = default;
  explicit ThreadRuntime(Options opts) : opts_(opts) {}
  ~ThreadRuntime() override;

  /// Spawns one thread per registered node and calls on_start on each.
  /// No nodes may be added after start().
  void start();

  /// Drains mailboxes until all are empty and all nodes idle, then joins.
  void stop();

  void send(NodeId from, NodeId to, Message m) override;
  void post(NodeId node, std::function<void()> fn) override;
  /// Delivered by a dedicated timer thread; timers still pending at stop()
  /// are discarded.
  void post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) override;
  TimeNs now_ns() const override;

  /// Blocks until every mailbox is empty and every node is idle.  Only valid
  /// when no external driver keeps injecting work.
  void wait_idle();

  const Options& options() const { return opts_; }
  DeliveryStats delivery_stats() const;

 private:
  /// The mailbox struct (and its pooling bounds) is shared with NetRuntime —
  /// see runtime/mailbox.hpp.
  using Mailbox = NodeMailbox;

  void worker(NodeId id);
  void worker_batched(NodeId id);
  void enqueue(NodeId to, Mailbox::Item item);
  void deliver(NodeId id, Mailbox::Item& item);
  void notify_idle();
  void timer_worker();
  void stop_timer_thread();

  Options opts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> threads_;
  bool started_ = false;

  std::atomic<std::uint64_t> delivered_messages_{0};
  std::atomic<std::uint64_t> delivered_tasks_{0};
  std::atomic<std::uint64_t> wakeups_{0};

  struct Timer {
    std::chrono::steady_clock::time_point due;
    NodeId node{kInvalidNode};
    std::function<void()> fn;
  };
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::multimap<std::chrono::steady_clock::time_point, Timer> timers_;
  std::thread timer_thread_;
  bool timer_stop_ = false;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

 protected:
  void on_node_added(NodeId id) override;
};

}  // namespace snowkit
