#include "runtime/thread_runtime.hpp"

#include <chrono>

#include "common/assert.hpp"
#include "msg/codec.hpp"

namespace snowkit {

ThreadRuntime::~ThreadRuntime() {
  if (started_) stop();
}

void ThreadRuntime::on_node_added(NodeId id) {
  SNOW_CHECK_MSG(!started_, "cannot add nodes after start()");
  (void)id;
  mailboxes_.push_back(std::make_unique<Mailbox>());
}

void ThreadRuntime::start() {
  SNOW_CHECK(!started_);
  started_ = true;
  for (NodeId id = 0; id < node_count(); ++id) start_node(id);
  threads_.reserve(node_count());
  for (NodeId id = 0; id < node_count(); ++id) {
    threads_.emplace_back([this, id] { worker(id); });
  }
}

void ThreadRuntime::stop() {
  if (!started_) return;
  wait_idle();
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->stop = true;
    mb->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  started_ = false;
}

void ThreadRuntime::send(NodeId from, NodeId to, Message m) {
  SNOW_CHECK_MSG(to < node_count(), "send to unknown node " << to);
  auto bytes = encode_message(m);
  if (observer() != nullptr) observer()->on_send(from, to, m, bytes.size());
  enqueue(to, Mailbox::Item{from, std::move(bytes), nullptr});
}

void ThreadRuntime::post(NodeId node, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post to unknown node " << node);
  enqueue(node, Mailbox::Item{kInvalidNode, {}, std::move(fn)});
}

TimeNs ThreadRuntime::now_ns() const {
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThreadRuntime::enqueue(NodeId to, Mailbox::Item item) {
  Mailbox& mb = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.queue.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

void ThreadRuntime::worker(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  while (true) {
    Mailbox::Item item;
    {
      std::unique_lock<std::mutex> lock(mb.mu);
      mb.cv.wait(lock, [&] { return mb.stop || !mb.queue.empty(); });
      if (mb.queue.empty()) return;  // stop requested and drained
      item = std::move(mb.queue.front());
      mb.queue.pop_front();
      mb.busy = true;
    }
    if (item.task) {
      item.task();
    } else {
      Message m = decode_message(item.bytes);
      if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
      deliver_to(item.from, id, m);
    }
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.busy = false;
    }
    {
      // Locking idle_mu_ orders this notify after any concurrent predicate
      // check in wait_idle, so the waiter cannot miss the transition to idle.
      std::lock_guard<std::mutex> lock(idle_mu_);
    }
    idle_cv_.notify_all();
  }
}

void ThreadRuntime::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    for (auto& mb : mailboxes_) {
      std::lock_guard<std::mutex> l(mb->mu);
      if (!mb->queue.empty() || mb->busy) return false;
    }
    return true;
  });
}

}  // namespace snowkit
