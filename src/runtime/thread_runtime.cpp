#include "runtime/thread_runtime.hpp"

#include <chrono>

#include "common/assert.hpp"
#include "msg/codec.hpp"

namespace snowkit {

ThreadRuntime::~ThreadRuntime() {
  if (started_) {
    stop();
  } else {
    stop_timer_thread();
  }
}

void ThreadRuntime::on_node_added(NodeId id) {
  SNOW_CHECK_MSG(!started_, "cannot add nodes after start()");
  (void)id;
  mailboxes_.push_back(std::make_unique<Mailbox>());
}

void ThreadRuntime::start() {
  SNOW_CHECK(!started_);
  started_ = true;
  for (NodeId id = 0; id < node_count(); ++id) start_node(id);
  threads_.reserve(node_count());
  for (NodeId id = 0; id < node_count(); ++id) {
    threads_.emplace_back([this, id] { worker(id); });
  }
}

void ThreadRuntime::stop() {
  if (!started_) return;
  stop_timer_thread();
  wait_idle();
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->stop = true;
    mb->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  started_ = false;
}

void ThreadRuntime::send(NodeId from, NodeId to, Message m) {
  SNOW_CHECK_MSG(to < node_count(), "send to unknown node " << to);
  auto bytes = encode_message(m);
  if (observer() != nullptr) observer()->on_send(from, to, m, bytes.size());
  enqueue(to, Mailbox::Item{from, std::move(bytes), nullptr});
}

void ThreadRuntime::post(NodeId node, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post to unknown node " << node);
  enqueue(node, Mailbox::Item{kInvalidNode, {}, std::move(fn)});
}

void ThreadRuntime::post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post_after to unknown node " << node);
  const auto due = std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay_ns);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    SNOW_CHECK_MSG(!timer_stop_, "post_after after stop()");
    timers_.emplace(due, Timer{due, node, std::move(fn)});
    if (!timer_thread_.joinable()) {
      timer_thread_ = std::thread([this] { timer_worker(); });
    }
  }
  timer_cv_.notify_one();
}

void ThreadRuntime::timer_worker() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock, [&] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    const auto due = timers_.begin()->first;
    if (timer_cv_.wait_until(lock, due, [&] {
          return timer_stop_ || (!timers_.empty() && timers_.begin()->first < due);
        })) {
      continue;  // stopped, or an earlier timer arrived — re-evaluate
    }
    // `due` has passed: fire every expired timer.
    while (!timers_.empty() && timers_.begin()->first <= std::chrono::steady_clock::now()) {
      Timer t = std::move(timers_.begin()->second);
      timers_.erase(timers_.begin());
      lock.unlock();
      post(t.node, std::move(t.fn));
      lock.lock();
    }
  }
}

void ThreadRuntime::stop_timer_thread() {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

TimeNs ThreadRuntime::now_ns() const {
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThreadRuntime::enqueue(NodeId to, Mailbox::Item item) {
  Mailbox& mb = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.queue.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

void ThreadRuntime::worker(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  while (true) {
    Mailbox::Item item;
    {
      std::unique_lock<std::mutex> lock(mb.mu);
      mb.cv.wait(lock, [&] { return mb.stop || !mb.queue.empty(); });
      if (mb.queue.empty()) return;  // stop requested and drained
      item = std::move(mb.queue.front());
      mb.queue.pop_front();
      mb.busy = true;
    }
    if (item.task) {
      item.task();
    } else {
      Message m = decode_message(item.bytes);
      if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
      deliver_to(item.from, id, m);
    }
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.busy = false;
    }
    {
      // Locking idle_mu_ orders this notify after any concurrent predicate
      // check in wait_idle, so the waiter cannot miss the transition to idle.
      std::lock_guard<std::mutex> lock(idle_mu_);
    }
    idle_cv_.notify_all();
  }
}

void ThreadRuntime::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    for (auto& mb : mailboxes_) {
      std::lock_guard<std::mutex> l(mb->mu);
      if (!mb->queue.empty() || mb->busy) return false;
    }
    return true;
  });
}

}  // namespace snowkit
