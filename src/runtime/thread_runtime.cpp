#include "runtime/thread_runtime.hpp"

#include <chrono>

#include "common/assert.hpp"
#include "msg/codec.hpp"

namespace snowkit {

ThreadRuntime::~ThreadRuntime() {
  if (started_) {
    stop();
  } else {
    stop_timer_thread();
  }
}

void ThreadRuntime::on_node_added(NodeId id) {
  SNOW_CHECK_MSG(!started_, "cannot add nodes after start()");
  (void)id;
  mailboxes_.push_back(std::make_unique<Mailbox>());
}

void ThreadRuntime::start() {
  SNOW_CHECK(!started_);
  started_ = true;
  for (NodeId id = 0; id < node_count(); ++id) start_node(id);
  threads_.reserve(node_count());
  for (NodeId id = 0; id < node_count(); ++id) {
    threads_.emplace_back([this, id] {
      if (opts_.batched) {
        worker_batched(id);
      } else {
        worker(id);
      }
    });
  }
}

void ThreadRuntime::stop() {
  if (!started_) return;
  stop_timer_thread();
  wait_idle();
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->stop = true;
    mb->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  started_ = false;
}

void ThreadRuntime::send(NodeId from, NodeId to, Message m) {
  SNOW_CHECK_MSG(to < node_count(), "send to unknown node " << to);
  if (!opts_.batched) {
    // Legacy baseline: fresh heap buffer per message.
    auto bytes = encode_message(m);
    if (observer() != nullptr) observer()->on_send(from, to, m, bytes.size());
    enqueue(to, Mailbox::Item{from, std::move(bytes), nullptr});
    return;
  }
  // Fast path: encode into this thread's scratch buffer (capacity persists
  // across sends), then swap it against a recycled buffer from the target
  // mailbox's pool under the single enqueue lock.  Once capacities warm up,
  // a send performs zero heap allocations.
  thread_local std::vector<std::uint8_t> scratch;
  encode_message_into(m, scratch);
  if (observer() != nullptr) observer()->on_send(from, to, m, scratch.size());
  Mailbox& mb = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    Mailbox::Item item;
    item.from = from;
    if (!mb.pool.empty()) {
      item.bytes = std::move(mb.pool.back());
      mb.pool.pop_back();
    }
    item.bytes.swap(scratch);  // item gets the encoded bytes, scratch the recycled capacity
    mb.queue.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

void ThreadRuntime::post(NodeId node, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post to unknown node " << node);
  enqueue(node, Mailbox::Item{kInvalidNode, {}, std::move(fn)});
}

void ThreadRuntime::post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post_after to unknown node " << node);
  const auto due = std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay_ns);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    SNOW_CHECK_MSG(!timer_stop_, "post_after after stop()");
    timers_.emplace(due, Timer{due, node, std::move(fn)});
    if (!timer_thread_.joinable()) {
      timer_thread_ = std::thread([this] { timer_worker(); });
    }
  }
  timer_cv_.notify_one();
}

void ThreadRuntime::timer_worker() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock, [&] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    const auto due = timers_.begin()->first;
    if (timer_cv_.wait_until(lock, due, [&] {
          return timer_stop_ || (!timers_.empty() && timers_.begin()->first < due);
        })) {
      continue;  // stopped, or an earlier timer arrived — re-evaluate
    }
    // `due` has passed: fire every expired timer.
    while (!timers_.empty() && timers_.begin()->first <= std::chrono::steady_clock::now()) {
      Timer t = std::move(timers_.begin()->second);
      timers_.erase(timers_.begin());
      lock.unlock();
      post(t.node, std::move(t.fn));
      lock.lock();
    }
  }
}

void ThreadRuntime::stop_timer_thread() {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

TimeNs ThreadRuntime::now_ns() const {
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadRuntime::DeliveryStats ThreadRuntime::delivery_stats() const {
  DeliveryStats s;
  s.messages = delivered_messages_.load(std::memory_order_relaxed);
  s.tasks = delivered_tasks_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  return s;
}

void ThreadRuntime::enqueue(NodeId to, Mailbox::Item item) {
  Mailbox& mb = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.queue.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

void ThreadRuntime::deliver(NodeId id, Mailbox::Item& item) {
  if (item.task) {
    item.task();
    delivered_tasks_.fetch_add(1, std::memory_order_relaxed);
  } else {
    Message m = decode_message(item.bytes);
    if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
    deliver_to(item.from, id, m);
    delivered_messages_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadRuntime::notify_idle() {
  {
    // Locking idle_mu_ orders this notify after any concurrent predicate
    // check in wait_idle, so the waiter cannot miss the transition to idle.
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_all();
}

void ThreadRuntime::worker(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  while (true) {
    Mailbox::Item item;
    {
      std::unique_lock<std::mutex> lock(mb.mu);
      mb.cv.wait(lock, [&] { return mb.stop || !mb.queue.empty(); });
      if (mb.queue.empty()) return;  // stop requested and drained
      item = std::move(mb.queue.front());
      mb.queue.pop_front();
      mb.busy = true;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    deliver(id, item);
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.busy = false;
    }
    notify_idle();
  }
}

void ThreadRuntime::worker_batched(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  std::deque<Mailbox::Item> batch;       // capacity ping-pongs with mb.queue
  std::vector<std::vector<std::uint8_t>> drained;  // buffers to recycle
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mb.mu);
      mb.cv.wait(lock, [&] { return mb.stop || !mb.queue.empty(); });
      if (mb.queue.empty()) return;  // stop requested and drained
      batch.swap(mb.queue);          // O(1): take the whole burst
      mb.busy = true;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    // Deliver the entire burst outside the critical section.  FIFO per
    // (sender, receiver) is preserved: the burst is processed in enqueue
    // order and `busy` keeps this node's handlers serialized.
    for (Mailbox::Item& item : batch) {
      deliver(id, item);
      if (!item.bytes.empty()) drained.push_back(std::move(item.bytes));
    }
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.busy = false;
      while (!drained.empty() && mb.pool.size() < kMaxPooledBuffers) {
        if (drained.back().capacity() <= kMaxPooledCapacity) {
          mb.pool.push_back(std::move(drained.back()));
        }
        drained.pop_back();
      }
    }
    drained.clear();
    notify_idle();
  }
}

void ThreadRuntime::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    for (auto& mb : mailboxes_) {
      std::lock_guard<std::mutex> l(mb->mu);
      if (!mb->queue.empty() || mb->busy) return false;
    }
    return true;
  });
}

}  // namespace snowkit
