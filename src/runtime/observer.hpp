// Observation hooks shared by both transports.
#pragma once

#include <cstddef>

#include "msg/message.hpp"

namespace snowkit {

/// Sees every message at send time.  Implementations must be thread-safe when
/// used with ThreadRuntime.  Used for wire metrics and SNOW round counting.
class MessageObserver {
 public:
  virtual ~MessageObserver() = default;
  virtual void on_send(NodeId from, NodeId to, const Message& m, std::size_t bytes) = 0;
  virtual void on_deliver(NodeId from, NodeId to, const Message& m) = 0;
};

}  // namespace snowkit
