// TransportStats: the typed transport-counters snapshot every Runtime can
// answer.  This is the ONE stats seam between the transport and its
// consumers — the bench harness (bench/net_loopback.cpp), the snowkit_server
// shutdown banner, and audit tooling all read the same struct instead of
// assembling stringly-typed extras by hand.  Single-process substrates
// (SimRuntime, ThreadRuntime) return the default snapshot: zero syscalls,
// zero threads — "no transport" is an answer, not an error.
//
// Counters are sampled with relaxed atomics on the hot path, so a snapshot
// taken mid-run is approximate (fields may be mutually skewed by in-flight
// increments); a snapshot taken after traffic quiesces is exact.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace snowkit {

struct TransportStats {
  // --- frame + byte totals ---------------------------------------------------
  std::uint64_t frames_sent{0};       ///< frames queued by senders.
  std::uint64_t frames_received{0};   ///< MSG frames decoded off the wire.
  std::uint64_t bytes_sent{0};        ///< TCP payload bytes actually written.
  std::uint64_t bytes_received{0};

  // --- syscall-level efficiency (the coalescing scoreboard) ------------------
  std::uint64_t send_syscalls{0};     ///< sendmsg calls that wrote >= 1 byte.
  std::uint64_t frames_written{0};    ///< frames whose final byte was written.
  std::uint64_t short_writes{0};      ///< sendmsg accepted fewer bytes than offered.
  std::uint64_t recv_syscalls{0};     ///< read calls that returned >= 1 byte.
  std::uint64_t mailbox_bursts{0};    ///< batched (node, iteration) deliveries.

  // --- link + flow-control events --------------------------------------------
  std::uint64_t reconnects{0};          ///< successful re-establishments after a drop.
  std::uint64_t backpressure_waits{0};  ///< send() calls that had to block.
  std::uint64_t inbound_pauses{0};      ///< times reading was paused fleet-wide.
  std::uint64_t churn_drops{0};         ///< inject_link_drop calls that cut a live link.
  std::uint64_t churn_stalls{0};        ///< inject_read_stall windows applied.

  /// Wakeups (epoll_wait returns with >= 1 event) per I/O thread, index-
  /// aligned; size() is the transport's io_threads (empty: no transport).
  std::vector<std::uint64_t> epoll_wakeups;

  // --- derived ----------------------------------------------------------------
  double frames_per_syscall() const {
    return send_syscalls == 0 ? 0.0
                              : static_cast<double>(frames_written) /
                                    static_cast<double>(send_syscalls);
  }
  double bytes_per_writev() const {
    return send_syscalls == 0
               ? 0.0
               : static_cast<double>(bytes_sent) / static_cast<double>(send_syscalls);
  }
  std::uint64_t total_epoll_wakeups() const {
    std::uint64_t sum = 0;
    for (const auto w : epoll_wakeups) sum += w;
    return sum;
  }

  /// The snapshot as bench-record extras — key names are the stable contract
  /// the CI jq gates and the checked-in BENCH json trajectory read.
  std::vector<std::pair<std::string, std::string>> extras() const;
};

}  // namespace snowkit
