// Node's out-of-line members live in runtime.cpp (they need Runtime's
// definition).  This TU anchors the header for build hygiene.
#include "runtime/runtime.hpp"

namespace snowkit {

static_assert(kInvalidNode != 0, "node ids start at 0; the sentinel must differ");

}  // namespace snowkit
