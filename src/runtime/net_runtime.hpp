// NetRuntime: the multi-process TCP substrate — snowkit's third Runtime.
//
// A fleet is F processes (N server processes + 1 client process).  EVERY
// process builds the same ProtocolSystem from the same SystemConfig, so node
// numbering is identical everywhere; each process then OWNS a partition of
// the node ids (NetOptions::owner) and only owned nodes get executors and
// receive on_start.  A send between two locally-owned nodes goes through the
// local mailbox exactly like ThreadRuntime; a send to a remote node is
// framed (runtime/socket.hpp, snowkit-wire-v1: the codec bytes of
// encode_message_into behind a length prefix and a routing header) and
// shipped over a per-peer TCP connection.  Protocols run unmodified: the
// paper's model — clients and servers as separate processes over
// asynchronous reliable channels (§2) — finally matches the deployment.
//
// Transport properties (every knob below is a TransportOptions field —
// runtime/transport_options.hpp is the single configuration surface):
//  * nonblocking sockets driven by `io_threads` epoll threads with PER-LINK
//    AFFINITY: link -> thread `peer % io_threads`, so each link's socket
//    state is touched by exactly one thread, no locks on the socket path.
//    Thread 0 additionally owns the listen socket and the untrusted
//    pre-HELLO pending set; once a HELLO names the peer, the accepted fd is
//    handed off to its home thread (the per-link connection GENERATION in
//    every epoll tag makes event routing and stale-drop safe across the
//    handoff, exactly as it already did across fd reuse);
//  * WRITE-SIDE COALESCING: each flush gathers up to coalesce_max_frames /
//    coalesce_max_bytes of queued frames into one sendmsg, resuming
//    partial writes at any byte offset (net::WriteCoalescer) — frame BYTES
//    are unchanged, only the syscall boundaries move;
//  * READ-SIDE BATCH DECODE: each recv fills a read_chunk_bytes buffer,
//    frames split out in bulk, and decoded messages reach workers as one
//    mailbox burst per (node, epoll iteration) instead of one lock+notify
//    per frame;
//  * per-peer write queues with byte-bounded BACKPRESSURE: a sender whose
//    peer outbox is full blocks in send() until the socket drains — flow
//    control reaches protocol code as scheduling delay, never unbounded
//    memory;
//  * connections are initiated by the HIGHER process index (so the client
//    process, last by convention, dials every server) and retried with
//    exponential backoff — starting the client before the servers just
//    works, and a dropped link re-establishes itself;
//  * FIFO per (sender, receiver) pair is preserved: one ordered TCP stream
//    per process pair, frames coalesce in queue order, batches deliver in
//    arrival order into the receiver's mailbox;
//  * post_after timers ride a per-thread timerfd in the epoll loops, so the
//    open-loop WorkloadDriver paces wall-clock arrivals unchanged.
//
// Delivery is reliable WHILE connected; frames queued for a peer survive
// reconnects — a drop loses at most the one frame cut by a partial write
// plus bytes already handed to the dead socket (TCP's contract).  The SNOW
// protocols tolerate that only at fleet shutdown, where the SHUTDOWN frame
// (broadcast_shutdown) already ends the run; mid-run process crashes are out
// of scope for snowkit-wire-v1.
//
// Trust model: a peer's only credential is its unauthenticated HELLO, so
// every byte off the wire is handled as untrusted input — malformed frames,
// misrouted headers, foreign sender nodes and undecodable payloads drop the
// connection, pre-HELLO connections are capped/bounded/deadlined, and
// nothing a network peer sends can abort the process.  What wire-v1 does
// NOT defend against is control-plane spoofing: any process that can reach
// a fleet port and speak the public HELLO can deliver a SHUTDOWN (stopping
// the daemon) or displace a genuine peer's connection.  Fleet ports belong
// inside the operator's network boundary (loopback or a private segment);
// an authenticated handshake would need a wire-version bump.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/mailbox.hpp"
#include "runtime/runtime.hpp"
#include "runtime/socket.hpp"
#include "runtime/transport_options.hpp"

namespace snowkit {

/// One fleet process's address.
struct NetPeerAddr {
  std::string host;
  std::uint16_t port{0};
};

struct NetOptions {
  /// This process's index into `peers`.
  std::size_t index{0};
  /// Every fleet process, index-aligned; the entry at `index` is the local
  /// listen address (processes that no higher-index peer dials never listen).
  std::vector<NetPeerAddr> peers;
  /// Node partition: owner(node) is the fleet index hosting that node.  Must
  /// be a pure function, identical in every process (runtime/fleet.hpp
  /// derives it from the shared FleetConfig).
  std::function<std::size_t(NodeId)> owner;
  /// All transport tuning — threading, coalescing, budgets, backoff, the
  /// pre-HELLO bounds.  Validated (fail-fast) by the NetRuntime constructor.
  TransportOptions transport;
};

class NetRuntime final : public Runtime {
 public:
  /// Validates the options (including TransportOptions::validate); throws
  /// std::runtime_error on non-Linux builds (the framing layer is portable,
  /// the epoll transport is not).
  explicit NetRuntime(NetOptions opts);
  ~NetRuntime() override;

  /// Binds the listen socket (if any inbound peer exists), spawns the I/O
  /// threads and one executor per OWNED node, calls on_start on owned nodes,
  /// and starts dialing lower-index peers.  Throws std::runtime_error if the
  /// listen address is unavailable.
  void start();

  /// Tears the fleet links down and joins all threads.  Outboxes are
  /// flushed best-effort (bounded by `drain` below) before sockets close.
  void stop();

  bool owns(NodeId id) const { return opts_.owner(id) == opts_.index; }
  bool owns_node(NodeId id) const override { return owns(id); }
  std::size_t owner_of(NodeId id) const { return opts_.owner(id); }
  std::size_t process_index() const { return opts_.index; }

  void send(NodeId from, NodeId to, Message m) override;
  void post(NodeId node, std::function<void()> fn) override;
  void post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) override;
  TimeNs now_ns() const override;

  /// Blocks until every link this process INITIATES (to lower-index peers)
  /// has completed its TCP connect + HELLO.  The client process initiates
  /// all its links, so this is "the fleet is reachable" for drivers.
  void wait_connected();

  /// wait_connected with a deadline; false if the fleet did not come up in
  /// time (benches use this to fail loudly instead of hanging on a dead
  /// server process).
  bool wait_connected_for(TimeNs timeout_ns);

  /// Fleet-wide stop: appends a SHUTDOWN frame behind all queued traffic on
  /// every peer link (FIFO, so it arrives after the run's messages) and
  /// flushes.  The local process is NOT stopped — call stop() after.
  void broadcast_shutdown();

  /// Daemon mode: blocks until a SHUTDOWN frame arrives from any peer (or
  /// stop() is called locally).
  void run_until_shutdown();

  /// Local shutdown request: unblocks run_until_shutdown() as if a SHUTDOWN
  /// frame had arrived.  Safe to call from any thread — snowkit_server's
  /// signal thread uses it so SIGTERM takes the same clean-exit path.
  void request_shutdown();
  bool shutdown_requested() const { return shutdown_.load(std::memory_order_acquire); }

  /// Relaxed-atomic snapshot of the typed transport counters (the one stats
  /// seam — runtime/transport_stats.hpp); counters are bumped lock-free on
  /// the hot path, so mid-run snapshots are approximate, quiesced ones exact.
  TransportStats transport_stats() const override;

  /// Churn injection (benches + e2e tests): asks `peer`'s home I/O thread to
  /// drop the live link, exactly as a wire fault would — the initiator side
  /// redials with backoff and the re-established link counts a reconnect.
  /// Asynchronous (the close runs on the home thread); no-op for self, an
  /// out-of-range peer, or a link that is already down.  Safe any thread.
  ///
  /// A drop can cut a partially-written frame (see the reliability note
  /// above), so churn controllers quiesce traffic first — core/churn.hpp
  /// drains the driver's in-flight window to zero before calling this.
  void inject_link_drop(std::size_t peer);

  /// Churn injection: stop reading from EVERY peer for `duration_ns` — a
  /// process-wide slow-reader stall.  Each I/O thread unsubscribes its
  /// sockets from EPOLLIN (the same mechanism as inbound flow control), so
  /// the kernel receive windows fill and TCP pushes back into the peers'
  /// write queues — their backpressure counters, not ours, score the stall.
  /// Reading resumes automatically when the deadline passes.  Safe any
  /// thread; overlapping calls extend the stall to the later deadline.
  void inject_read_stall(TimeNs duration_ns);

  /// Timeout failure detection for replicated shards: when the link to a
  /// peer process stays down for transport.peer_down_grace_ns after a drop,
  /// every locally-owned `watcher` watching a node owned by that peer gets a
  /// NodeDownNotice delivered through its normal mailbox.  This detector can
  /// be WRONG (a slow peer looks dead) — see proto/replica.hpp for what that
  /// costs a 2-replica group.  Reconnecting re-arms it.
  void watch_node(NodeId watcher, NodeId watched) override;

  const NetOptions& options() const { return opts_; }

 private:
  /// Owned-node executors reuse THE mailbox struct (and pooling bounds)
  /// shared with ThreadRuntime — runtime/mailbox.hpp.
  using Mailbox = NodeMailbox;

  // --- peer links (home-I/O-thread state except the locked outbox) ----------
  struct PeerLink {
    enum class State : std::uint8_t {
      kIdle,        ///< inbound peer not yet connected to us.
      kConnecting,  ///< our nonblocking connect is in flight.
      kUp,          ///< link established (HELLO exchanged / sent).
      kSelf,        ///< the local process; never used.
    };
    /// Written by the home I/O thread; read by stop()/broadcast_shutdown()
    /// from other threads, hence atomic.
    std::atomic<State> state{State::kIdle};
    int fd = -1;
    /// Monotonic connection generation, bumped whenever fd is assigned or
    /// closed.  Epoll tags carry it so a stale event queued for an earlier
    /// connection is detectably stale even if the kernel reuses the same fd
    /// number for the replacement socket — and so a pre-HELLO handoff from
    /// thread 0 can never be confused with the connection it displaced.
    std::uint32_t gen = 0;
    bool initiator = false;         ///< we dial (peer index < ours).
    net::FrameDecoder decoder;
    /// Home-thread write staging: whole frames queued for the socket,
    /// gathered into capped sendmsg batches (see socket.hpp).
    net::WriteCoalescer wq;
    /// Cached epoll interest mask so unchanged masks skip the epoll_ctl
    /// syscall on the per-flush path.
    std::uint32_t epoll_mask = 0;
    TimeNs backoff_ns = 0;          ///< current reconnect delay.
    /// One suspicion per outage: set when the grace timer is armed after a
    /// drop, cleared on reconnect.  Home-I/O-thread state.
    bool down_notice_armed = false;
    /// Written by the home I/O thread; also read by stop()'s drain loop
    /// (which skips links that never connected), hence atomic.
    std::atomic<bool> ever_connected{false};

    std::mutex out_mu;               ///< guards outbox/outbox_bytes/pool + drain cv.
    std::condition_variable out_cv;  ///< signaled when outbox drains.
    std::deque<std::vector<std::uint8_t>> outbox;  ///< one whole frame per entry.
    std::size_t outbox_bytes = 0;    ///< backpressure accounting for outbox.
    /// Recycled frame buffers (capacity retained): senders swap their
    /// thread-local framing scratch against one of these, the home I/O
    /// thread returns fully-written buffers — allocation-free steady state,
    /// same pooling rules as the mailboxes.
    std::vector<std::vector<std::uint8_t>> pool;
    /// Unsent staging bytes (wq.pending_bytes()), mirrored atomically by the
    /// home I/O thread so stop()'s drain loop can see frames stuck behind
    /// EAGAIN without touching I/O-thread state.
    std::atomic<std::size_t> staged{0};
  };

  struct PendingConn {  ///< accepted, HELLO not yet seen (thread 0 only).
    int fd = -1;
    net::FrameDecoder decoder;
    TimeNs accepted_ns = 0;     ///< for the handshake deadline reap.
    std::size_t fed_bytes = 0;  ///< pre-HELLO bytes buffered (bounded).
  };

  struct UserTimer {
    TimeNs due_ns{0};
    std::uint64_t seq{0};  ///< FIFO tiebreak for equal deadlines.
    NodeId node{kInvalidNode};  ///< kInvalidNode = internal I/O-thread callback.
    std::function<void()> fn;
    bool operator>(const UserTimer& o) const {
      return due_ns != o.due_ns ? due_ns > o.due_ns : seq > o.seq;
    }
  };

  /// A greeted connection handed from thread 0 to the peer's home thread.
  struct Handoff {
    std::size_t peer = 0;
    int fd = -1;
    net::FrameDecoder decoder;  ///< bytes buffered past the HELLO carry over.
  };

  // --- one epoll I/O thread ---------------------------------------------------
  struct IoThread {
    std::size_t id = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    int timer_fd = -1;
    std::thread thread;

    /// Timer min-heap by (due, seq).  Thread 0's heap carries post_after
    /// timers; every heap carries its own links' internal (reconnect/drop)
    /// callbacks.  Locked: senders and workers push from outside.
    std::mutex timer_mu;
    std::vector<UserTimer> timers;
    std::uint64_t timer_seq = 0;  ///< FIFO tiebreak within this heap.
    TimeNs armed_due = 0;  ///< timerfd's current deadline (0 = disarmed).

    /// Connections greeted on thread 0, waiting for this thread to adopt.
    std::mutex handoff_mu;
    std::vector<Handoff> handoffs;

    /// Wakeup elision handshake: a sender marks `pending` after queueing and
    /// writes the eventfd only if this thread is `armed` (about to block in
    /// epoll_wait).  The loop re-checks `pending` after arming, so the
    /// queue-without-wake window can never stall a frame; seq_cst on all
    /// four accesses makes the flag dance airtight.  Under load this elides
    /// one eventfd write per send.
    std::atomic<bool> armed{false};
    std::atomic<bool> pending{false};

    std::atomic<bool> kick_connects{false};  ///< broadcast_shutdown redial request.
    std::atomic<std::uint64_t> wakeups{0};   ///< epoll_wait returns with >= 1 event.
    bool inbound_paused_applied = false;     ///< this thread's view of the global pause.

    std::vector<std::size_t> links;       ///< peer indexes homed here.
    std::vector<std::uint8_t> rbuf;       ///< batch-read buffer (read_chunk_bytes).
    std::vector<net::IoSlice> slices;     ///< gather scratch (coalesce_max_frames).
    /// Read-side delivery buckets: decoded items per node, flushed as one
    /// mailbox burst per epoll iteration.
    std::vector<std::vector<Mailbox::Item>> ready;
    std::vector<NodeId> touched;          ///< nodes with non-empty buckets.
  };

  std::size_t home_index(std::size_t peer) const {
    return peer % opts_.transport.io_threads;
  }
  IoThread& home(std::size_t peer) { return *io_threads_[home_index(peer)]; }

  void worker(NodeId id);
  void enqueue_local(NodeId to, Mailbox::Item item);
  void request_link_drop(std::size_t peer, std::uint32_t gen);
  void push_timer(IoThread& io, UserTimer t);
  void io_loop(IoThread& io);
  void io_wake(IoThread& io);
  void io_wake_all();
  void io_update_events(std::size_t peer);
  void io_apply_inbound_flow_control(IoThread& io);
  void io_start_connect(std::size_t peer);
  void io_schedule_reconnect(std::size_t peer);
  void io_link_failed(std::size_t peer, const std::string& why);
  void io_on_connect_ready(std::size_t peer);
  void io_flush(std::size_t peer);
  void io_read(IoThread& io, std::size_t peer);
  bool io_handle_frame(IoThread& io, std::size_t peer, net::Frame& f);
  void io_deliver_ready(IoThread& io);
  void io_adopt_handoffs(IoThread& io);
  void io_accept_all(IoThread& io);
  void io_reap_stale_pending(IoThread& io);
  void io_read_pending(IoThread& io, std::size_t slot);
  void io_fire_timers(IoThread& io);
  void io_rearm_timerfd(IoThread& io);
  void close_link(std::size_t peer);
  void note_connected(std::size_t peer);
  void io_peer_down_check(std::size_t peer);

  NetOptions opts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  ///< index-aligned; null for remote nodes.
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<PeerLink>> links_;  ///< index-aligned with peers.
  std::vector<PendingConn> pending_;              ///< thread 0 only.
  std::vector<std::unique_ptr<IoThread>> io_threads_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  bool started_ = false;

  /// Inbound flow control: bytes enqueued from the network and not yet
  /// delivered.  Above the budget every I/O thread unsubscribes its sockets
  /// from EPOLLIN; workers refund charges and wake them to resume below half
  /// the budget.
  std::atomic<std::size_t> inbound_bytes_{0};
  std::atomic<bool> inbound_paused_{false};

  /// inject_read_stall deadline: while now < stall_until, every I/O thread
  /// treats its links as inbound-paused (OR-ed with the budget pause, so the
  /// budget state machine is untouched).  0 = no stall.
  std::atomic<TimeNs> stall_until_ns_{0};

  /// watch_node registrations (watcher, watched); appended from worker
  /// threads at on_start, read by I/O threads when a grace timer fires.
  std::mutex watch_mu_;
  std::vector<std::pair<NodeId, NodeId>> watches_;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;  ///< wait_connected / run_until_shutdown.
  std::size_t initiated_up_ = 0;     ///< initiator links currently kUp.
  std::size_t initiated_total_ = 0;

  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> send_syscalls{0};
    std::atomic<std::uint64_t> frames_written{0};
    std::atomic<std::uint64_t> short_writes{0};
    std::atomic<std::uint64_t> recv_syscalls{0};
    std::atomic<std::uint64_t> mailbox_bursts{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> backpressure_waits{0};
    std::atomic<std::uint64_t> inbound_pauses{0};
    std::atomic<std::uint64_t> churn_drops{0};   ///< inject_link_drop calls that found a live link.
    std::atomic<std::uint64_t> churn_stalls{0};  ///< inject_read_stall calls.
  };
  AtomicStats stats_;

 protected:
  void on_node_added(NodeId id) override;
};

}  // namespace snowkit
