// NetRuntime: the multi-process TCP substrate — snowkit's third Runtime.
//
// A fleet is F processes (N server processes + 1 client process).  EVERY
// process builds the same ProtocolSystem from the same SystemConfig, so node
// numbering is identical everywhere; each process then OWNS a partition of
// the node ids (NetOptions::owner) and only owned nodes get executors and
// receive on_start.  A send between two locally-owned nodes goes through the
// local mailbox exactly like ThreadRuntime; a send to a remote node is
// framed (runtime/socket.hpp, snowkit-wire-v1: the codec bytes of
// encode_message_into behind a length prefix and a routing header) and
// shipped over a per-peer TCP connection.  Protocols run unmodified: the
// paper's model — clients and servers as separate processes over
// asynchronous reliable channels (§2) — finally matches the deployment.
//
// Transport properties:
//  * nonblocking sockets driven by one epoll I/O thread per process;
//  * per-peer write queues with byte-bounded BACKPRESSURE: a sender whose
//    peer outbox is full blocks in send() until the socket drains — flow
//    control reaches protocol code as scheduling delay, never unbounded
//    memory;
//  * connections are initiated by the HIGHER process index (so the client
//    process, last by convention, dials every server) and retried with
//    exponential backoff — starting the client before the servers just
//    works, and a dropped link re-establishes itself;
//  * FIFO per (sender, receiver) pair is preserved: one ordered TCP stream
//    per process pair, arrival-order delivery into the receiver's mailbox;
//  * post_after timers ride a timerfd in the epoll loop, so the open-loop
//    WorkloadDriver paces wall-clock arrivals unchanged.
//
// Delivery is reliable WHILE connected; frames buffered in a peer outbox
// survive reconnects, and staged frames the socket never accepted are
// re-queued on a drop — a reconnect loses at most the one frame cut by a
// partial write plus bytes already handed to the dead socket (TCP's
// contract).  The SNOW protocols tolerate that only at fleet shutdown,
// where the SHUTDOWN frame (broadcast_shutdown) already ends the run;
// mid-run process crashes are out of scope for snowkit-wire-v1.
//
// Trust model: a peer's only credential is its unauthenticated HELLO, so
// every byte off the wire is handled as untrusted input — malformed frames,
// misrouted headers, foreign sender nodes and undecodable payloads drop the
// connection, pre-HELLO connections are capped/bounded/deadlined, and
// nothing a network peer sends can abort the process.  What wire-v1 does
// NOT defend against is control-plane spoofing: any process that can reach
// a fleet port and speak the public HELLO can deliver a SHUTDOWN (stopping
// the daemon) or displace a genuine peer's connection.  Fleet ports belong
// inside the operator's network boundary (loopback or a private segment);
// an authenticated handshake would need a wire-version bump.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"
#include "runtime/runtime.hpp"
#include "runtime/socket.hpp"

namespace snowkit {

/// One fleet process's address.
struct NetPeerAddr {
  std::string host;
  std::uint16_t port{0};
};

struct NetOptions {
  /// This process's index into `peers`.
  std::size_t index{0};
  /// Every fleet process, index-aligned; the entry at `index` is the local
  /// listen address (processes that no higher-index peer dials never listen).
  std::vector<NetPeerAddr> peers;
  /// Node partition: owner(node) is the fleet index hosting that node.  Must
  /// be a pure function, identical in every process (runtime/fleet.hpp
  /// derives it from the shared FleetConfig).
  std::function<std::size_t(NodeId)> owner;

  /// Backpressure cap per peer outbox: send() blocks above this.
  std::size_t max_outbox_bytes{8u << 20};
  /// Inbound flow-control budget: when frames queued into local mailboxes
  /// (and not yet delivered) exceed this, the I/O thread stops READING all
  /// peer sockets until workers drain below half of it — TCP then
  /// backpressures the senders, whose own outbox caps block their send()
  /// calls.  Bounded memory end to end.
  ///
  /// Caveat (configuration-dependent, not structural): if request/reply
  /// traffic flows both ways and BOTH processes exhaust their outbox AND
  /// inbound budgets simultaneously, every worker is blocked in send() and
  /// no one refunds inbound charges — a distributed stall.  Keep the
  /// budgets large relative to peak in-flight work (the defaults are; the
  /// paper's one-outstanding-txn well-formedness also bounds in-flight
  /// traffic structurally).  Shrink them only on one side at a time, as
  /// the flow-control tests do.
  std::size_t max_inbound_bytes{8u << 20};
  /// Reconnect backoff: initial delay, doubling to the max.
  TimeNs reconnect_initial_ns{20'000'000};   // 20ms
  TimeNs reconnect_max_ns{2'000'000'000};    // 2s
};

class NetRuntime final : public Runtime {
 public:
  /// Validates the options; throws std::runtime_error on non-Linux builds
  /// (the framing layer is portable, the epoll transport is not).
  explicit NetRuntime(NetOptions opts);
  ~NetRuntime() override;

  /// Binds the listen socket (if any inbound peer exists), spawns the I/O
  /// thread and one executor per OWNED node, calls on_start on owned nodes,
  /// and starts dialing lower-index peers.  Throws std::runtime_error if the
  /// listen address is unavailable.
  void start();

  /// Tears the fleet links down and joins all threads.  Outboxes are
  /// flushed best-effort (bounded by `drain` below) before sockets close.
  void stop();

  bool owns(NodeId id) const { return opts_.owner(id) == opts_.index; }
  bool owns_node(NodeId id) const override { return owns(id); }
  std::size_t owner_of(NodeId id) const { return opts_.owner(id); }
  std::size_t process_index() const { return opts_.index; }

  void send(NodeId from, NodeId to, Message m) override;
  void post(NodeId node, std::function<void()> fn) override;
  void post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) override;
  TimeNs now_ns() const override;

  /// Blocks until every link this process INITIATES (to lower-index peers)
  /// has completed its TCP connect + HELLO.  The client process initiates
  /// all its links, so this is "the fleet is reachable" for drivers.
  void wait_connected();

  /// wait_connected with a deadline; false if the fleet did not come up in
  /// time (benches use this to fail loudly instead of hanging on a dead
  /// server process).
  bool wait_connected_for(TimeNs timeout_ns);

  /// Fleet-wide stop: appends a SHUTDOWN frame behind all queued traffic on
  /// every peer link (FIFO, so it arrives after the run's messages) and
  /// flushes.  The local process is NOT stopped — call stop() after.
  void broadcast_shutdown();

  /// Daemon mode: blocks until a SHUTDOWN frame arrives from any peer (or
  /// stop() is called locally).
  void run_until_shutdown();

  /// Local shutdown request: unblocks run_until_shutdown() as if a SHUTDOWN
  /// frame had arrived.  Safe to call from any thread — snowkit_server's
  /// signal thread uses it so SIGTERM takes the same clean-exit path.
  void request_shutdown();
  bool shutdown_requested() const { return shutdown_.load(std::memory_order_acquire); }

  struct NetStats {
    std::uint64_t frames_sent{0};
    std::uint64_t frames_received{0};
    std::uint64_t bytes_sent{0};      ///< TCP payload bytes actually written.
    std::uint64_t bytes_received{0};
    std::uint64_t reconnects{0};      ///< successful re-establishments after a drop.
    std::uint64_t backpressure_waits{0};  ///< send() calls that had to block.
    std::uint64_t inbound_pauses{0};  ///< times the I/O thread paused reading.
  };
  /// Relaxed-atomic snapshot; counters are bumped lock-free on the hot path.
  NetStats net_stats() const;

  const NetOptions& options() const { return opts_; }

 private:
  /// Owned-node executors reuse THE mailbox struct (and pooling bounds)
  /// shared with ThreadRuntime — runtime/mailbox.hpp.
  using Mailbox = NodeMailbox;

  // --- peer links (I/O-thread state except the locked outbox) --------------
  struct PeerLink {
    enum class State : std::uint8_t {
      kIdle,        ///< inbound peer not yet connected to us.
      kConnecting,  ///< our nonblocking connect is in flight.
      kUp,          ///< link established (HELLO exchanged / sent).
      kSelf,        ///< the local process; never used.
    };
    /// Written by the I/O thread; read by stop()/broadcast_shutdown() from
    /// other threads, hence atomic.
    std::atomic<State> state{State::kIdle};
    int fd = -1;
    /// Monotonic connection generation, bumped whenever fd is assigned or
    /// closed.  Epoll tags carry it so a stale event queued for an earlier
    /// connection is detectably stale even if the kernel reuses the same fd
    /// number for the replacement socket.
    std::uint32_t gen = 0;
    bool initiator = false;         ///< we dial (peer index < ours).
    net::FrameDecoder decoder;
    std::vector<std::uint8_t> wbuf;  ///< I/O-thread write staging (unsent tail).
    std::size_t wbuf_off = 0;
    TimeNs backoff_ns = 0;          ///< current reconnect delay.
    /// Written by the I/O thread; also read by stop()'s drain loop (which
    /// skips links that never connected), hence atomic.
    std::atomic<bool> ever_connected{false};

    std::mutex out_mu;               ///< guards outbox + drain cv.
    std::condition_variable out_cv;  ///< signaled when outbox drains.
    std::vector<std::uint8_t> outbox;  ///< frames queued by sender threads.
    /// Unsent staging bytes (wbuf.size() - wbuf_off), mirrored atomically by
    /// the I/O thread so stop()'s drain loop can see frames stuck behind
    /// EAGAIN without touching I/O-thread state.
    std::atomic<std::size_t> staged{0};
  };

  struct PendingConn {  ///< accepted, HELLO not yet seen.
    int fd = -1;
    net::FrameDecoder decoder;
    TimeNs accepted_ns = 0;     ///< for the handshake deadline reap.
    std::size_t fed_bytes = 0;  ///< pre-HELLO bytes buffered (bounded).
  };

  struct UserTimer {
    TimeNs due_ns{0};
    std::uint64_t seq{0};  ///< FIFO tiebreak for equal deadlines.
    NodeId node{kInvalidNode};  ///< kInvalidNode = internal I/O-thread callback.
    std::function<void()> fn;
    bool operator>(const UserTimer& o) const {
      return due_ns != o.due_ns ? due_ns > o.due_ns : seq > o.seq;
    }
  };

  void worker(NodeId id);
  void enqueue_local(NodeId to, Mailbox::Item item);
  void request_link_drop(std::size_t peer, std::uint32_t gen);
  void io_loop();
  void io_wake();
  void io_update_events(std::size_t peer);
  void io_apply_inbound_flow_control();
  void io_start_connect(std::size_t peer);
  void io_schedule_reconnect(std::size_t peer);
  void io_link_failed(std::size_t peer, const std::string& why);
  void io_on_connect_ready(std::size_t peer);
  void io_flush(std::size_t peer);
  void io_read(std::size_t peer);
  bool io_handle_frame(std::size_t peer, net::Frame& f);
  void io_accept_all();
  void io_reap_stale_pending();
  void io_read_pending(std::size_t slot);
  void io_fire_timers();
  void io_rearm_timerfd();
  void close_link(PeerLink& link);
  void note_connected(std::size_t peer);

  NetOptions opts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  ///< index-aligned; null for remote nodes.
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<PeerLink>> links_;  ///< index-aligned with peers.
  std::vector<PendingConn> pending_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int timer_fd_ = -1;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  bool started_ = false;

  /// Inbound flow control: bytes enqueued from the network and not yet
  /// delivered.  Above max_inbound_bytes the I/O thread unsubscribes every
  /// socket from EPOLLIN; workers refund charges and wake it to resume
  /// below half the budget.
  std::atomic<std::size_t> inbound_bytes_{0};
  std::atomic<bool> inbound_paused_{false};
  /// broadcast_shutdown sets this: links sitting in reconnect backoff are
  /// redialed immediately so the queued SHUTDOWN frames can still flush.
  std::atomic<bool> kick_connects_{false};

  std::mutex timer_mu_;
  std::vector<UserTimer> timers_;  ///< min-heap by (due, seq).
  std::uint64_t timer_seq_ = 0;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;  ///< wait_connected / run_until_shutdown.
  std::size_t initiated_up_ = 0;     ///< initiator links currently kUp.
  std::size_t initiated_total_ = 0;

  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> backpressure_waits{0};
    std::atomic<std::uint64_t> inbound_pauses{0};
  };
  AtomicStats stats_;

 protected:
  void on_node_added(NodeId id) override;
};

}  // namespace snowkit
