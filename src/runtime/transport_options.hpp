// TransportOptions: THE configuration surface of the TCP transport.
//
// Every NetRuntime knob — I/O thread count, writev coalescing caps,
// backpressure and inbound-flow-control budgets, reconnect backoff, the
// pre-HELLO handshake bounds — lives in this one struct.  It is exposed
// uniformly at every layer:
//
//   * fleet files:      transport io_threads=2,coalesce_max_frames=64
//   * snowkit_server:   --transport io_threads=2,coalesce_max_frames=64
//   * C++ callers:      NetOptions::transport (runtime/net_runtime.hpp)
//
// All three funnel through the same csv parser (`apply`/`parse_csv`), and
// every construction path calls validate() — invalid combinations fail fast
// at build time with a named error, exactly like BuildOptions does for
// protocol knobs (core/registry.hpp).  There are deliberately no scattered
// constants left in net_runtime.cpp: if a limit matters enough to exist, it
// matters enough to be configurable and validated here.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace snowkit {

struct TransportOptions {
  /// Number of epoll I/O threads.  Peer links are partitioned by index
  /// (link -> thread `peer % io_threads`), so each link's socket state is
  /// touched by exactly one thread; thread 0 additionally owns the listen
  /// socket and the pre-HELLO pending set, handing accepted links off to
  /// their home thread after the HELLO names the peer.
  std::size_t io_threads{1};

  /// Write-side coalescing: one sendmsg gathers up to this many queued
  /// frames...
  std::size_t coalesce_max_frames{64};
  /// ...or this many bytes, whichever cap is hit first.  A single frame
  /// larger than the byte cap still goes out alone (progress is never
  /// blocked by the cap).
  std::size_t coalesce_max_bytes{1u << 20};

  /// Backpressure cap per peer outbox: send() blocks above this.
  std::size_t backpressure_bytes{8u << 20};
  /// Inbound flow-control budget: when frames queued into local mailboxes
  /// (and not yet delivered) exceed this, the I/O threads stop READING all
  /// peer sockets until workers drain below half of it — TCP then
  /// backpressures the senders, whose own outbox caps block their send()
  /// calls.  Bounded memory end to end.
  ///
  /// Caveat (configuration-dependent, not structural): if request/reply
  /// traffic flows both ways and BOTH processes exhaust their outbox AND
  /// inbound budgets simultaneously, every worker is blocked in send() and
  /// no one refunds inbound charges — a distributed stall.  Keep the
  /// budgets large relative to peak in-flight work (the defaults are; the
  /// paper's one-outstanding-txn well-formedness also bounds in-flight
  /// traffic structurally).  Shrink them only on one side at a time, as
  /// the flow-control tests do.
  std::size_t inbound_budget_bytes{8u << 20};

  /// Read-side batch decode: each recv fills a buffer of this size, frames
  /// are split out of it in bulk and delivered to workers as one mailbox
  /// burst per (node, epoll iteration).
  std::size_t read_chunk_bytes{256u << 10};

  /// Reconnect backoff: initial delay, doubling to the max.
  TimeNs reconnect_initial_ns{20'000'000};   // 20ms
  TimeNs reconnect_max_ns{2'000'000'000};    // 2s

  /// Failure-detection grace for Runtime::watch_node: after a peer link
  /// drops, the watcher's NodeDownNotice fires only once the link has stayed
  /// down this long (a clean reconnect cancels it).  This is a TIMEOUT-based
  /// detector and therefore fallible — see the replication caveat in
  /// docs/ARCHITECTURE.md; keep it well above reconnect_initial_ms so a
  /// transient drop rides out its first redial quietly.
  TimeNs peer_down_grace_ns{1'000'000'000};  // 1s

  /// Pre-HELLO bounds.  Accepted-but-not-greeted connections are fully
  /// untrusted, so their resource footprint is hard-capped: at most
  /// `max_pending_conns` live at once, at most `max_pending_handshake_bytes`
  /// buffered each (a HELLO is tens of bytes — a partial frame bigger than
  /// this is never going to become one), and at most
  /// `pending_handshake_timeout_ns` to complete the handshake before being
  /// reaped.  Without these, anyone who can reach the listen socket could
  /// pin fds and up to kMaxFrameBytes of decoder buffer each, forever.
  std::size_t max_pending_conns{64};
  std::size_t max_pending_handshake_bytes{512};
  TimeNs pending_handshake_timeout_ns{5'000'000'000};  // 5s

  /// Throws std::invalid_argument naming the offending field on any invalid
  /// value or combination.  Called by every construction path (NetRuntime
  /// ctor, fleet parsing, CLI flags) — misconfiguration fails at build time.
  void validate() const;

  /// Applies one `key=value` (csv grammar below); throws std::invalid_argument
  /// on an unknown key or unparseable value.  Durations take MILLISECONDS on
  /// the text surface (`reconnect_initial_ms=20`) — fleet files are written
  /// by humans.
  void apply(const std::string& key, const std::string& value);

  /// Applies `key=value[,key=value...]` on top of *this, then validates.
  /// This is the single parser behind the fleet-file `transport` key and the
  /// snowkit_server `--transport` flag.
  void parse_csv(const std::string& csv);

  /// The fields differing from a default-constructed TransportOptions, as
  /// (key, value) pairs in `apply` grammar — fleet_text uses this so configs
  /// only show what they changed, and parse(fleet_text(x)) == x.
  std::vector<std::pair<std::string, std::string>> non_default_entries() const;
};

}  // namespace snowkit
