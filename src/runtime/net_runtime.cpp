#include "runtime/net_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"
#include "msg/codec.hpp"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>
#endif

namespace snowkit {

namespace {

// epoll_event.data.u64 tags.  Peer-link tags CARRY THE LINK'S CONNECTION
// GENERATION so a stale event for an already-closed-and-replaced connection
// (same peer index, queued in the same epoll_wait batch) is detectably stale
// and ignored instead of tearing down — or prematurely promoting — the
// replacement link.  The fd number alone is not enough: the kernel reuses fd
// numbers, so a reconnect can land on the exact fd the stale event names.
constexpr std::uint64_t kTagListen = 0;
constexpr std::uint64_t kTagWake = 1;
constexpr std::uint64_t kTagTimer = 2;
constexpr std::uint64_t kTagPeerBit = 1ull << 63;
constexpr std::uint64_t kTagPendingBit = 1ull << 62;
constexpr std::uint64_t kTagPeerMask = (1ull << 24) - 1;  // fleets are tiny

std::uint64_t peer_tag(std::size_t peer, std::uint32_t gen) {
  return kTagPeerBit | (static_cast<std::uint64_t>(gen) << 24) | (peer & kTagPeerMask);
}

// Pre-HELLO connections are fully untrusted, so their resource footprint is
// hard-bounded: at most kMaxPendingConns live at once, at most
// kMaxPendingHandshakeBytes buffered each (a HELLO is tens of bytes — a
// partial frame bigger than this is never going to become one), and at most
// kPendingHandshakeTimeoutNs to complete the handshake before being reaped.
// Without these, anyone who can reach the listen socket could pin fds and
// up to kMaxFrameBytes of decoder buffer per connection, forever.
constexpr std::size_t kMaxPendingConns = 64;
constexpr std::size_t kMaxPendingHandshakeBytes = 512;
constexpr TimeNs kPendingHandshakeTimeoutNs = 5'000'000'000;  // 5s

}  // namespace

NetRuntime::NetRuntime(NetOptions opts) : opts_(std::move(opts)) {
  if (!net::transport_supported()) {
    throw std::runtime_error("NetRuntime requires Linux (epoll/timerfd); "
                             "use SimRuntime or ThreadRuntime on this platform");
  }
  if (opts_.peers.empty() || opts_.index >= opts_.peers.size()) {
    throw std::runtime_error("NetRuntime: process index " + std::to_string(opts_.index) +
                             " out of range (fleet size " + std::to_string(opts_.peers.size()) +
                             ")");
  }
  if (!opts_.owner) {
    throw std::runtime_error("NetRuntime: an owner partition function is required");
  }
  links_.reserve(opts_.peers.size());
  for (std::size_t i = 0; i < opts_.peers.size(); ++i) {
    auto link = std::make_unique<PeerLink>();
    if (i == opts_.index) {
      link->state = PeerLink::State::kSelf;
    } else if (i < opts_.index) {
      link->initiator = true;  // higher index dials lower
      ++initiated_total_;
    }
    links_.push_back(std::move(link));
  }
}

NetRuntime::~NetRuntime() {
  if (started_) stop();
}

void NetRuntime::on_node_added(NodeId id) {
  SNOW_CHECK_MSG(!started_, "cannot add nodes after start()");
  mailboxes_.push_back(owns(id) ? std::make_unique<Mailbox>() : nullptr);
}

TimeNs NetRuntime::now_ns() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

#ifdef __linux__

void NetRuntime::start() {
  SNOW_CHECK(!started_);
  started_ = true;

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SNOW_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SNOW_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  SNOW_CHECK_MSG(timer_fd_ >= 0, "timerfd_create failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagWake;
  SNOW_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  ev.data.u64 = kTagTimer;
  SNOW_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) == 0);

  // Listen only when some higher-index process will dial us.
  if (opts_.index + 1 < opts_.peers.size()) {
    const NetPeerAddr& self = opts_.peers[opts_.index];
    std::string err;
    listen_fd_ = net::tcp_listen(self.host, self.port, err);
    if (listen_fd_ < 0) {
      throw std::runtime_error("NetRuntime: " + err);
    }
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListen;
    SNOW_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  }

  for (NodeId id = 0; id < node_count(); ++id) {
    if (owns(id)) start_node(id);
  }
  workers_.reserve(node_count());
  for (NodeId id = 0; id < node_count(); ++id) {
    if (owns(id)) workers_.emplace_back([this, id] { worker(id); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
}

void NetRuntime::stop() {
  if (!started_) return;
  // Best-effort outbound drain (bounded): give the I/O thread up to a second
  // to flush queued frames (e.g. the SHUTDOWN broadcast) before teardown.
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(1);
  // Never-connected links get a SHORTER sub-window: a daemon that was not
  // reachable by now is almost certainly dead, and waiting the full second
  // on frames that can never flush defeats the point of the bound.  150ms
  // still covers the kick_connects_ redial plus a few backoff retries, so a
  // daemon that comes up moments after broadcast_shutdown() gets its
  // SHUTDOWN; one that comes up later than that loses it (it was equally
  // lost before this window existed — SHUTDOWN delivery is best-effort).
  const auto never_connected_deadline = start + std::chrono::milliseconds(150);
  while (std::chrono::steady_clock::now() < deadline) {
    bool dirty = false;
    // Read BEFORE scanning links: the I/O thread clears this flag only
    // AFTER dialing the kicked links, so a false here (acquire, paired with
    // its release store) guarantees kicked links already show kConnecting.
    const bool kick_pending = kick_connects_.load(std::memory_order_acquire);
    for (auto& link : links_) {
      // Count DOWN links too: a link in reconnect backoff may still hold
      // the SHUTDOWN broadcast, and the kick_connects_ redial is racing to
      // flush it within this window.
      if (link->state == PeerLink::State::kSelf) continue;
      if (!kick_pending && !link->ever_connected.load(std::memory_order_acquire) &&
          link->state == PeerLink::State::kIdle &&
          std::chrono::steady_clock::now() >= never_connected_deadline) {
        continue;
      }
      // Read BOTH under out_mu: io_flush publishes staged (under this lock)
      // before it empties the outbox view, so a locked reader always sees a
      // queued-or-staged SHUTDOWN as dirty — staged-but-unsent bytes
      // (EAGAIN) count too, since the frame may sit there, not in the
      // outbox.
      std::lock_guard<std::mutex> lock(link->out_mu);
      if (!link->outbox.empty() || link->staged.load(std::memory_order_acquire) > 0) {
        dirty = true;
      }
    }
    if (!dirty) break;
    io_wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stopping_.store(true, std::memory_order_release);
  io_wake();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
  }
  conn_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();

  // Release any sender blocked on backpressure.
  for (auto& link : links_) {
    std::lock_guard<std::mutex> lock(link->out_mu);
    link->out_cv.notify_all();
  }

  for (auto& mb : mailboxes_) {
    if (!mb) continue;
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->stop = true;
    mb->cv.notify_all();
  }
  for (auto& t : workers_) t.join();
  workers_.clear();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = timer_fd_ = epoll_fd_ = -1;
  started_ = false;
}

void NetRuntime::send(NodeId from, NodeId to, Message m) {
  SNOW_CHECK_MSG(to < node_count(), "send to unknown node " << to);
  if (observer() != nullptr) observer()->on_send(from, to, m, encoded_size(m));
  const std::size_t peer = owner_of(to);  // one owner lookup per send
  if (peer == opts_.index) {
    // Local delivery still crosses the codec, exactly like ThreadRuntime,
    // including its recycled-buffer fast path: encode into a thread-local
    // scratch, swap it against a pooled buffer under the enqueue lock.
    thread_local std::vector<std::uint8_t> scratch;
    encode_message_into(m, scratch);
    Mailbox* mb = mailboxes_[to].get();
    SNOW_CHECK_MSG(mb != nullptr, "delivery to non-owned node " << to);
    {
      std::lock_guard<std::mutex> lock(mb->mu);
      Mailbox::Item item;
      item.from = from;
      if (!mb->pool.empty()) {
        item.bytes = std::move(mb->pool.back());
        mb->pool.pop_back();
      }
      item.bytes.swap(scratch);  // item takes the bytes, scratch the capacity
      mb->queue.push_back(std::move(item));
    }
    mb->cv.notify_one();
    return;
  }
  SNOW_CHECK_MSG(peer < links_.size(), "owner(" << to << ") = " << peer << " out of range");
  PeerLink& link = *links_[peer];
  // Frame into a thread-local scratch BEFORE taking the outbox lock, so
  // encoding cost (potentially a multi-KB history payload) never serializes
  // concurrent senders or stalls the I/O thread's outbox swap.
  thread_local std::vector<std::uint8_t> framebuf;
  framebuf.clear();
  net::append_msg(framebuf, from, to, m);
  {
    std::unique_lock<std::mutex> lock(link.out_mu);
    if (link.outbox.size() >= opts_.max_outbox_bytes) {
      // Backpressure: block this sender until the socket drains (or the
      // runtime stops).  The I/O thread never blocks here, so inbound
      // traffic keeps flowing — unless BOTH directions saturate both their
      // outbox and inbound budgets at once (see the flow-control caveat in
      // net_runtime.hpp); the defaults keep that configuration-dependent
      // stall out of reach for well-formed workloads.
      stats_.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
      link.out_cv.wait(lock, [&] {
        return link.outbox.size() < opts_.max_outbox_bytes ||
               stopping_.load(std::memory_order_acquire);
      });
      if (stopping_.load(std::memory_order_acquire)) return;
    }
    link.outbox.insert(link.outbox.end(), framebuf.begin(), framebuf.end());
  }
  stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  io_wake();
}

void NetRuntime::post(NodeId node, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post to unknown node " << node);
  SNOW_CHECK_MSG(owns(node), "post to remote node " << node << " (owned by process "
                                                    << owner_of(node) << ")");
  enqueue_local(node, Mailbox::Item{kInvalidNode, {}, std::move(fn)});
}

void NetRuntime::post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post_after to unknown node " << node);
  SNOW_CHECK_MSG(owns(node), "post_after to remote node " << node);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push_back(UserTimer{now_ns() + delay_ns, timer_seq_++, node, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
  }
  io_wake();
}

void NetRuntime::enqueue_local(NodeId to, Mailbox::Item item) {
  Mailbox* mb = mailboxes_[to].get();
  SNOW_CHECK_MSG(mb != nullptr, "delivery to non-owned node " << to);
  {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->queue.push_back(std::move(item));
  }
  mb->cv.notify_one();
}

void NetRuntime::worker(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  std::deque<Mailbox::Item> batch;
  std::vector<std::vector<std::uint8_t>> drained;  // buffers to recycle
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mb.mu);
      mb.cv.wait(lock, [&] { return mb.stop || !mb.queue.empty(); });
      if (mb.queue.empty()) return;  // stop requested and drained
      batch.swap(mb.queue);
      while (!drained.empty() && mb.pool.size() < kMaxPooledBuffers) {
        if (drained.back().capacity() <= kMaxPooledCapacity) {
          mb.pool.push_back(std::move(drained.back()));
        }
        drained.pop_back();
      }
    }
    drained.clear();
    std::size_t refund = 0;
    for (Mailbox::Item& item : batch) {
      refund += item.charge;
      if (item.task) {
        item.task();
      } else if (item.charge > 0) {
        // Network-origin frame (charge is only ever set by io_handle_frame):
        // the payload comes from a peer whose sole credential is an
        // unauthenticated HELLO, so a decode failure is hostile/corrupt
        // traffic — drop the frame and the connection it rode in on, never
        // the process.
        Message m;
        std::string err;
        if (try_decode_message(item.bytes, m, err)) {
          if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
          deliver_to(item.from, id, m);
        } else {
          std::fprintf(stderr, "[snowkit-net %zu] dropping undecodable frame for node %u: %s\n",
                       opts_.index, id, err.c_str());
          request_link_drop(owner_of(item.from), item.link_gen);
        }
        if (!item.bytes.empty()) drained.push_back(std::move(item.bytes));
      } else {
        // Locally delivered bytes crossed only our own encoder: trusted.
        Message m = decode_message(item.bytes);
        if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
        deliver_to(item.from, id, m);
        if (!item.bytes.empty()) drained.push_back(std::move(item.bytes));
      }
    }
    batch.clear();
    if (refund > 0) {
      // Refund the inbound budget; if reading is paused and we crossed the
      // resume threshold (the SAME threshold io_apply_inbound_flow_control
      // resumes at, floored so a 1-byte budget still resumes), wake the
      // I/O thread to re-subscribe EPOLLIN.
      const std::size_t before = inbound_bytes_.fetch_sub(refund, std::memory_order_acq_rel);
      const std::size_t resume_below = std::max<std::size_t>(1, opts_.max_inbound_bytes / 2);
      if (inbound_paused_.load(std::memory_order_acquire) && before - refund < resume_below) {
        io_wake();
      }
    }
  }
}

// --- connection management (I/O thread only unless noted) --------------------

/// Worker-thread request to tear down a peer link (e.g. an undecodable
/// payload surfaced after the I/O thread already enqueued the frame).  Rides
/// the internal-timer path so the actual close runs on the I/O thread.  The
/// generation pins the request to the connection the offending frame
/// arrived on: if that connection already died and a healthy replacement
/// took its place, the request must no-op, not kill the replacement.
void NetRuntime::request_link_drop(std::size_t peer, std::uint32_t gen) {
  if (peer >= links_.size() || peer == opts_.index) return;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push_back(
        UserTimer{now_ns(), timer_seq_++, kInvalidNode, [this, peer, gen] {
                    PeerLink& link = *links_[peer];
                    if (link.fd >= 0 && link.gen == gen) {
                      io_link_failed(peer, "undecodable payload");
                    }
                  }});
    std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
  }
  io_wake();
}

void NetRuntime::io_wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

void NetRuntime::io_start_connect(std::size_t peer) {
  PeerLink& link = *links_[peer];
  SNOW_CHECK(link.initiator);
  // A backoff timer and a broadcast_shutdown kick can both request a dial;
  // whoever runs second must no-op instead of leaking the in-flight fd.
  if (link.state != PeerLink::State::kIdle || link.fd >= 0) return;
  std::string err;
  const NetPeerAddr& addr = opts_.peers[peer];
  const int fd = net::tcp_connect_start(addr.host, addr.port, err);
  if (fd < 0) {
    io_schedule_reconnect(peer);
    return;
  }
  link.fd = fd;
  ++link.gen;
  link.state = PeerLink::State::kConnecting;
  epoll_event ev{};
  ev.events = EPOLLOUT;
  ev.data.u64 = peer_tag(peer, link.gen);
  SNOW_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
}

void NetRuntime::io_schedule_reconnect(std::size_t peer) {
  PeerLink& link = *links_[peer];
  link.backoff_ns = link.backoff_ns == 0
                        ? opts_.reconnect_initial_ns
                        : std::min<TimeNs>(link.backoff_ns * 2, opts_.reconnect_max_ns);
  const TimeNs delay = link.backoff_ns;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push_back(UserTimer{now_ns() + delay, timer_seq_++, kInvalidNode,
                                [this, peer] { io_start_connect(peer); }});
    std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
  }
}

void NetRuntime::close_link(PeerLink& link) {
  if (link.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link.fd, nullptr);
    ::close(link.fd);
    link.fd = -1;
    ++link.gen;  // events registered for the closed connection are now stale
  }
  // Frame-aligned recovery: the peer's decoder dies with the connection, so
  // a frame already cut by a partial write is unrecoverable — but staged
  // frames the socket never touched are not.  Walk the staging buffer's
  // length prefixes to the first frame boundary at or past the write
  // offset and push everything from there back to the FRONT of the outbox
  // (they are older than anything queued since), so a reconnect loses at
  // most the one partially-written frame plus bytes TCP itself dropped.
  if (link.wbuf_off < link.wbuf.size()) {
    std::size_t pos = 0;
    while (pos < link.wbuf_off && pos + 4 <= link.wbuf.size()) {
      const std::uint32_t len = static_cast<std::uint32_t>(link.wbuf[pos]) |
                                (static_cast<std::uint32_t>(link.wbuf[pos + 1]) << 8) |
                                (static_cast<std::uint32_t>(link.wbuf[pos + 2]) << 16) |
                                (static_cast<std::uint32_t>(link.wbuf[pos + 3]) << 24);
      pos += 4u + len;
    }
    if (pos < link.wbuf.size()) {
      std::lock_guard<std::mutex> lock(link.out_mu);
      link.outbox.insert(link.outbox.begin(),
                         link.wbuf.begin() + static_cast<std::ptrdiff_t>(pos),
                         link.wbuf.end());
    }
  }
  link.wbuf.clear();
  link.wbuf_off = 0;
  link.staged.store(0, std::memory_order_release);
  link.decoder = net::FrameDecoder{};
  const bool was_up = link.state == PeerLink::State::kUp;
  link.state = PeerLink::State::kIdle;
  if (was_up && link.initiator) {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --initiated_up_;
  }
}

void NetRuntime::io_link_failed(std::size_t peer, const std::string& why) {
  PeerLink& link = *links_[peer];
  // Quiet once the fleet is ending: peers closing their sockets after a
  // SHUTDOWN broadcast is the expected teardown, not a fault.
  if (!stopping_.load(std::memory_order_acquire) &&
      !shutdown_.load(std::memory_order_acquire) && link.ever_connected) {
    std::fprintf(stderr, "[snowkit-net %zu] link to %zu dropped: %s\n", opts_.index, peer,
                 why.c_str());
  }
  close_link(link);
  if (link.initiator && !stopping_.load(std::memory_order_acquire)) {
    io_schedule_reconnect(peer);
  }
}

void NetRuntime::note_connected(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.ever_connected) {
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }
  link.ever_connected = true;
  link.backoff_ns = 0;
  if (link.initiator) {
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++initiated_up_;
    }
    conn_cv_.notify_all();
  }
}

void NetRuntime::io_on_connect_ready(std::size_t peer) {
  PeerLink& link = *links_[peer];
  int soerr = 0;
  socklen_t len = sizeof soerr;
  if (::getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
    io_link_failed(peer, "connect failed");
    return;
  }
  link.state = PeerLink::State::kUp;
  // HELLO leads every connection (and every reconnection) so the acceptor
  // can route this stream before any message frame arrives.
  net::append_hello(link.wbuf, opts_.index);
  link.staged.store(link.wbuf.size() - link.wbuf_off, std::memory_order_release);
  io_update_events(peer);
  note_connected(peer);
}

void NetRuntime::io_flush(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.state != PeerLink::State::kUp || link.fd < 0) return;
  while (true) {
    if (link.wbuf_off == link.wbuf.size()) {
      link.wbuf.clear();
      link.wbuf_off = 0;
      std::lock_guard<std::mutex> lock(link.out_mu);
      if (link.outbox.empty()) break;
      link.wbuf.swap(link.outbox);
      // Publish BEFORE writing: stop()'s drain loop must never observe the
      // window where these frames have left the outbox but staged still
      // reads 0, or it would tear down under a queued SHUTDOWN.
      link.staged.store(link.wbuf.size(), std::memory_order_release);
      link.out_cv.notify_all();  // backpressured senders may proceed
    }
    // MSG_NOSIGNAL: a peer that closed/RST between epoll_wait and this write
    // must yield EPIPE (handled below as a link failure), never a
    // process-killing SIGPIPE.  This is the transport's only socket write,
    // so no process-global signal disposition is needed (or touched).
    const auto n = ::send(link.fd, link.wbuf.data() + link.wbuf_off,
                          link.wbuf.size() - link.wbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      link.wbuf_off += static_cast<std::size_t>(n);
      stats_.bytes_sent.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    io_link_failed(peer, "write error");
    return;
  }
  link.staged.store(link.wbuf.size() - link.wbuf_off, std::memory_order_release);
  io_update_events(peer);
}

/// Recomputes a live link's epoll interest: EPOLLIN unless inbound flow
/// control paused reading, EPOLLOUT only while staged bytes are pending
/// (the per-iteration sweep handles freshly queued outboxes).  ERR/HUP are
/// always reported by the kernel regardless of the mask, so drops are still
/// detected while fully unsubscribed.
void NetRuntime::io_update_events(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.fd < 0 || link.state != PeerLink::State::kUp) return;
  epoll_event ev{};
  ev.events = (inbound_paused_.load(std::memory_order_relaxed) ? 0u : EPOLLIN) |
              (link.wbuf_off < link.wbuf.size() ? EPOLLOUT : 0u);
  ev.data.u64 = peer_tag(peer, link.gen);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, link.fd, &ev);
}

/// Pauses/resumes reading every socket around the inbound byte budget: when
/// workers lag, queued-but-undelivered frames are capped, TCP's own flow
/// control pushes back to the senders, and their outbox caps block send() —
/// bounded memory end to end, with no blocking on this thread.
void NetRuntime::io_apply_inbound_flow_control() {
  const std::size_t queued = inbound_bytes_.load(std::memory_order_acquire);
  const bool paused = inbound_paused_.load(std::memory_order_relaxed);
  const std::size_t resume_below = std::max<std::size_t>(1, opts_.max_inbound_bytes / 2);
  if (!paused && queued >= opts_.max_inbound_bytes) {
    inbound_paused_.store(true, std::memory_order_release);
    stats_.inbound_pauses.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < links_.size(); ++i) io_update_events(i);
  } else if (paused && queued < resume_below) {
    inbound_paused_.store(false, std::memory_order_release);
    for (std::size_t i = 0; i < links_.size(); ++i) io_update_events(i);
  }
}

bool NetRuntime::io_handle_frame(std::size_t peer, net::Frame& f) {
  switch (f.type) {
    case net::FrameType::kHello:
      return true;  // duplicate hello on an established link: ignore.
    case net::FrameType::kMsg: {
      net::MsgHeader hdr;
      std::string err;
      if (!net::parse_msg_header(f.body, hdr, err)) {
        io_link_failed(peer, "bad msg frame: " + err);
        return false;
      }
      // A routable fleet shares ONE config, so a frame addressed to a node
      // we do not own means either divergent fleet configs or a hostile /
      // confused peer.  The HELLO handshake is unauthenticated, so this is
      // untrusted input: treat it like any other malformed traffic — log and
      // drop the connection — never abort the process.
      if (hdr.to >= node_count() || !owns(hdr.to)) {
        io_link_failed(peer, "misrouted frame for node " + std::to_string(hdr.to) +
                                 " not owned by process " + std::to_string(opts_.index) +
                                 " (divergent fleet configs?)");
        return false;
      }
      // The sender node is equally untrusted: a foreign `from` would flow
      // into the protocol handler's reply send(), whose to<node_count()
      // invariant check would abort THIS process.  Legitimate traffic only
      // ever carries a from-node owned by the peer the stream came from.
      if (hdr.from >= node_count() || owner_of(hdr.from) != peer) {
        io_link_failed(peer, "frame with foreign sender node " + std::to_string(hdr.from) +
                                 " not owned by peer " + std::to_string(peer));
        return false;
      }
      Mailbox::Item item;
      item.from = hdr.from;
      item.link_gen = links_[peer]->gen;
      // Strip the routing header in place and MOVE the body: one memmove,
      // zero allocations on the I/O thread's per-frame path.
      f.body.erase(f.body.begin(),
                   f.body.begin() + static_cast<std::ptrdiff_t>(hdr.payload_offset));
      item.bytes = std::move(f.body);
      // Charge the inbound budget (refunded by the worker after delivery);
      // +64 floors the cost of tiny frames so a flood of 2-byte payloads
      // still trips the pause.
      item.charge = item.bytes.size() + 64;
      inbound_bytes_.fetch_add(item.charge, std::memory_order_relaxed);
      enqueue_local(hdr.to, std::move(item));
      stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case net::FrameType::kShutdown: {
      shutdown_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
      }
      conn_cv_.notify_all();
      return true;
    }
  }
  io_link_failed(peer, "unhandled frame type");
  return false;
}

void NetRuntime::io_read(std::size_t peer) {
  PeerLink& link = *links_[peer];
  std::uint8_t buf[65536];
  while (link.fd >= 0) {
    const auto n = ::read(link.fd, buf, sizeof buf);
    if (n > 0) {
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      link.decoder.feed(buf, static_cast<std::size_t>(n));
      net::Frame f;
      while (true) {
        const auto st = link.decoder.next(f);
        if (st == net::FrameDecoder::Status::kNeedMore) break;
        if (st == net::FrameDecoder::Status::kError) {
          io_link_failed(peer, "stream corrupt: " + link.decoder.error());
          return;
        }
        if (!io_handle_frame(peer, f)) return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;  // drained
      continue;
    }
    if (n == 0) {
      io_link_failed(peer, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    io_link_failed(peer, "read error");
    return;
  }
}

void NetRuntime::io_accept_all() {
  while (true) {
    std::string err;
    const int fd = net::tcp_accept(listen_fd_, err);
    if (fd < 0) return;
    std::size_t slot = pending_.size();
    std::size_t live = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].fd < 0) {
        if (slot == pending_.size()) slot = i;
      } else {
        ++live;
      }
    }
    if (live >= kMaxPendingConns) {
      // Handshake flood: refuse outright rather than pin another fd.  A
      // legitimate fleet peer retries with backoff and gets a slot once the
      // deadline reap (io_reap_stale_pending) clears the squatters.
      std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: pending handshake cap\n",
                   opts_.index);
      ::close(fd);
      continue;
    }
    if (slot == pending_.size()) pending_.emplace_back();
    pending_[slot].fd = fd;
    pending_[slot].decoder = net::FrameDecoder{};
    pending_[slot].accepted_ns = now_ns();
    pending_[slot].fed_bytes = 0;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagPendingBit | slot;
    SNOW_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  }
}

/// Drops accepted connections that have not completed their HELLO within the
/// deadline: pre-HELLO peers are untrusted and must not hold fds forever.
void NetRuntime::io_reap_stale_pending() {
  const TimeNs now = now_ns();
  for (PendingConn& pc : pending_) {
    if (pc.fd < 0 || now - pc.accepted_ns < kPendingHandshakeTimeoutNs) continue;
    std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: handshake timeout\n",
                 opts_.index);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, pc.fd, nullptr);
    ::close(pc.fd);
    pc.fd = -1;
  }
}

void NetRuntime::io_read_pending(std::size_t slot) {
  if (slot >= pending_.size() || pending_[slot].fd < 0) return;
  PendingConn& pc = pending_[slot];
  std::uint8_t buf[4096];
  const auto n = ::read(pc.fd, buf, sizeof buf);
  auto drop = [&] {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, pc.fd, nullptr);
    ::close(pc.fd);
    pc.fd = -1;
  };
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
    drop();
    return;
  }
  if (n < 0) return;
  pc.fed_bytes += static_cast<std::size_t>(n);
  pc.decoder.feed(buf, static_cast<std::size_t>(n));
  net::Frame f;
  const auto st = pc.decoder.next(f);
  if (st == net::FrameDecoder::Status::kNeedMore) {
    if (pc.fed_bytes > kMaxPendingHandshakeBytes) {
      // A "HELLO" still incomplete after this many bytes is never going to
      // be one (e.g. a huge length prefix trickling a body in) — don't let
      // an unauthenticated peer buffer up to kMaxFrameBytes.
      std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: oversized handshake\n",
                   opts_.index);
      drop();
    }
    return;
  }
  net::HelloBody hello;
  std::string err;
  if (st == net::FrameDecoder::Status::kError || f.type != net::FrameType::kHello ||
      !net::parse_hello(f.body, hello, err)) {
    std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: bad hello (%s)\n",
                 opts_.index,
                 st == net::FrameDecoder::Status::kError ? pc.decoder.error().c_str()
                                                         : err.c_str());
    drop();
    return;
  }
  const std::size_t peer = hello.process_index;
  if (peer <= opts_.index || peer >= links_.size()) {
    std::fprintf(stderr, "[snowkit-net %zu] rejecting hello from invalid peer index %zu\n",
                 opts_.index, peer);
    drop();
    return;
  }
  PeerLink& link = *links_[peer];
  if (link.fd >= 0) close_link(link);  // peer reconnected before we saw the drop
  link.fd = pc.fd;
  ++link.gen;
  link.state = PeerLink::State::kUp;
  link.decoder = std::move(pc.decoder);  // bytes buffered past the HELLO carry over
  pc.fd = -1;
  io_update_events(peer);
  note_connected(peer);
  // Frames that arrived in the same chunk as the HELLO are already buffered.
  net::Frame more;
  while (true) {
    const auto st2 = link.decoder.next(more);
    if (st2 == net::FrameDecoder::Status::kNeedMore) break;
    if (st2 == net::FrameDecoder::Status::kError) {
      io_link_failed(peer, "stream corrupt: " + link.decoder.error());
      return;
    }
    if (!io_handle_frame(peer, more)) return;
  }
}

void NetRuntime::io_fire_timers() {
  while (true) {
    UserTimer t;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      if (timers_.empty() || timers_.front().due_ns > now_ns()) break;
      std::pop_heap(timers_.begin(), timers_.end(), std::greater<>());
      t = std::move(timers_.back());
      timers_.pop_back();
    }
    if (t.node == kInvalidNode) {
      t.fn();  // internal (reconnect) callback: runs on the I/O thread
    } else {
      enqueue_local(t.node, Mailbox::Item{kInvalidNode, {}, std::move(t.fn)});
    }
  }
}

void NetRuntime::io_rearm_timerfd() {
  TimeNs due = 0;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (!timers_.empty()) due = timers_.front().due_ns;
  }
  itimerspec its{};
  if (due != 0) {
    const TimeNs now = now_ns();
    const TimeNs delta = due > now ? due - now : 1;
    its.it_value.tv_sec = static_cast<time_t>(delta / 1'000'000'000ull);
    its.it_value.tv_nsec = static_cast<long>(delta % 1'000'000'000ull);
    if (its.it_value.tv_sec == 0 && its.it_value.tv_nsec == 0) its.it_value.tv_nsec = 1;
  }
  ::timerfd_settime(timer_fd_, 0, &its, nullptr);
}

void NetRuntime::io_loop() {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i]->initiator) io_start_connect(i);
  }
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    io_rearm_timerfd();
    const int n = ::epoll_wait(epoll_fd_, events, 64, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t evs = events[i].events;
      if (tag == kTagWake) {
        std::uint64_t tmp;
        while (::read(wake_fd_, &tmp, sizeof tmp) > 0) {
        }
      } else if (tag == kTagListen) {
        io_accept_all();
      } else if (tag == kTagTimer) {
        std::uint64_t tmp;
        while (::read(timer_fd_, &tmp, sizeof tmp) > 0) {
        }
      } else if (tag & kTagPeerBit) {
        const std::size_t peer = static_cast<std::size_t>(tag & kTagPeerMask);
        const std::uint32_t gen = static_cast<std::uint32_t>(tag >> 24);
        if (peer >= links_.size()) continue;
        PeerLink& link = *links_[peer];
        // Stale event: the connection this event was registered for has
        // since been closed (and possibly replaced — even on the SAME fd
        // number, which the kernel reuses — by a reconnection in this very
        // batch).  Acting on it would tear down the healthy new link, or
        // promote a still-in-flight connect to kUp.
        if (link.fd < 0 || link.gen != gen) continue;
        if (link.state == PeerLink::State::kConnecting) {
          io_on_connect_ready(peer);
          if (link.state == PeerLink::State::kUp) io_flush(peer);
          continue;
        }
        if (evs & (EPOLLERR | EPOLLHUP)) {
          io_link_failed(peer, "socket error/hup");
          continue;
        }
        if (evs & EPOLLIN) io_read(peer);
        if (link.gen == gen && link.fd >= 0 && (evs & EPOLLOUT)) io_flush(peer);
      } else if (tag & kTagPendingBit) {
        io_read_pending(static_cast<std::size_t>(tag & ~kTagPendingBit));
      }
    }
    io_fire_timers();
    io_reap_stale_pending();
    if (kick_connects_.load(std::memory_order_acquire)) {
      // broadcast_shutdown queued SHUTDOWN frames; redial links sitting in
      // reconnect backoff NOW so those frames can still flush before stop().
      for (std::size_t i = 0; i < links_.size(); ++i) {
        if (links_[i]->initiator && links_[i]->state == PeerLink::State::kIdle) {
          io_start_connect(i);
        }
      }
      // Cleared only AFTER the dials: stop()'s drain skip reads this flag
      // and must never observe it false while a kicked link is still kIdle.
      kick_connects_.store(false, std::memory_order_release);
    }
    io_apply_inbound_flow_control();
    // Flush any peer with queued outbound frames (sends wake us via eventfd
    // but do not name the peer; fleets are small, so a sweep is cheap).
    for (std::size_t i = 0; i < links_.size(); ++i) {
      PeerLink& link = *links_[i];
      if (link.state != PeerLink::State::kUp) continue;
      bool pending_out = link.wbuf_off < link.wbuf.size();
      if (!pending_out) {
        std::lock_guard<std::mutex> lock(link.out_mu);
        pending_out = !link.outbox.empty();
      }
      if (pending_out) io_flush(i);
    }
  }
  // Final flush attempt, then close all sockets.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i]->state == PeerLink::State::kUp) io_flush(i);
    close_link(*links_[i]);
  }
  for (auto& pc : pending_) {
    if (pc.fd >= 0) {
      ::close(pc.fd);
      pc.fd = -1;
    }
  }
}

void NetRuntime::wait_connected() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [&] {
    return initiated_up_ == initiated_total_ || stopping_.load(std::memory_order_acquire);
  });
}

bool NetRuntime::wait_connected_for(TimeNs timeout_ns) {
  std::unique_lock<std::mutex> lock(conn_mu_);
  return conn_cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns), [&] {
    return initiated_up_ == initiated_total_ || stopping_.load(std::memory_order_acquire);
  });
}

void NetRuntime::broadcast_shutdown() {
  // The broadcaster knows the fleet is ending: mark locally too, so
  // peers' sockets closing afterwards is treated as teardown, not faults.
  shutdown_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i == opts_.index) continue;
    PeerLink& link = *links_[i];
    std::lock_guard<std::mutex> lock(link.out_mu);
    net::append_shutdown(link.outbox);
  }
  // Links down in reconnect backoff would silently eat their SHUTDOWN;
  // have the I/O thread redial them immediately.
  kick_connects_.store(true, std::memory_order_release);
  io_wake();
}

void NetRuntime::run_until_shutdown() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [&] {
    return shutdown_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  });
}

void NetRuntime::request_shutdown() {
  {
    // Take conn_mu_ so a run_until_shutdown() waiter between its predicate
    // check and its wait cannot miss the notify.
    std::lock_guard<std::mutex> lock(conn_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  conn_cv_.notify_all();
}

NetRuntime::NetStats NetRuntime::net_stats() const {
  NetStats s;
  s.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  s.frames_received = stats_.frames_received.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.backpressure_waits = stats_.backpressure_waits.load(std::memory_order_relaxed);
  s.inbound_pauses = stats_.inbound_pauses.load(std::memory_order_relaxed);
  return s;
}

#else  // !__linux__ — constructor already threw; keep the linker satisfied.

void NetRuntime::start() { SNOW_UNREACHABLE("NetRuntime on non-Linux"); }
void NetRuntime::stop() {}
void NetRuntime::send(NodeId, NodeId, Message) { SNOW_UNREACHABLE("NetRuntime on non-Linux"); }
void NetRuntime::post(NodeId, std::function<void()>) {
  SNOW_UNREACHABLE("NetRuntime on non-Linux");
}
void NetRuntime::post_after(NodeId, TimeNs, std::function<void()>) {
  SNOW_UNREACHABLE("NetRuntime on non-Linux");
}
void NetRuntime::enqueue_local(NodeId, Mailbox::Item) {}
void NetRuntime::request_link_drop(std::size_t, std::uint32_t) {}
void NetRuntime::worker(NodeId) {}
void NetRuntime::io_loop() {}
void NetRuntime::io_wake() {}
void NetRuntime::io_update_events(std::size_t) {}
void NetRuntime::io_apply_inbound_flow_control() {}
void NetRuntime::io_start_connect(std::size_t) {}
void NetRuntime::io_schedule_reconnect(std::size_t) {}
void NetRuntime::io_link_failed(std::size_t, const std::string&) {}
void NetRuntime::io_on_connect_ready(std::size_t) {}
void NetRuntime::io_flush(std::size_t) {}
void NetRuntime::io_read(std::size_t) {}
bool NetRuntime::io_handle_frame(std::size_t, net::Frame&) { return false; }
void NetRuntime::io_accept_all() {}
void NetRuntime::io_reap_stale_pending() {}
void NetRuntime::io_read_pending(std::size_t) {}
void NetRuntime::io_fire_timers() {}
void NetRuntime::io_rearm_timerfd() {}
void NetRuntime::close_link(PeerLink&) {}
void NetRuntime::note_connected(std::size_t) {}
void NetRuntime::wait_connected() {}
bool NetRuntime::wait_connected_for(TimeNs) { return false; }
void NetRuntime::broadcast_shutdown() {}
void NetRuntime::run_until_shutdown() {}
void NetRuntime::request_shutdown() {}
NetRuntime::NetStats NetRuntime::net_stats() const { return {}; }

#endif

}  // namespace snowkit
