#include "runtime/net_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"
#include "msg/codec.hpp"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

namespace snowkit {

namespace {

// epoll_event.data.u64 tags.  Peer-link tags CARRY THE LINK'S CONNECTION
// GENERATION so a stale event for an already-closed-and-replaced connection
// (same peer index, queued in the same epoll_wait batch) is detectably stale
// and ignored instead of tearing down — or prematurely promoting — the
// replacement link.  The fd number alone is not enough: the kernel reuses fd
// numbers, so a reconnect can land on the exact fd the stale event names.
// The same property is what makes the thread-0 -> home-thread handoff of
// accepted connections safe: each registration is pinned to its generation.
constexpr std::uint64_t kTagListen = 0;
constexpr std::uint64_t kTagWake = 1;
constexpr std::uint64_t kTagTimer = 2;
constexpr std::uint64_t kTagPeerBit = 1ull << 63;
constexpr std::uint64_t kTagPendingBit = 1ull << 62;
constexpr std::uint64_t kTagPeerMask = (1ull << 24) - 1;  // fleets are tiny

std::uint64_t peer_tag(std::size_t peer, std::uint32_t gen) {
  return kTagPeerBit | (static_cast<std::uint64_t>(gen) << 24) | (peer & kTagPeerMask);
}

}  // namespace

NetRuntime::NetRuntime(NetOptions opts) : opts_(std::move(opts)) {
  if (!net::transport_supported()) {
    throw std::runtime_error("NetRuntime requires Linux (epoll/timerfd); "
                             "use SimRuntime or ThreadRuntime on this platform");
  }
  if (opts_.peers.empty() || opts_.index >= opts_.peers.size()) {
    throw std::runtime_error("NetRuntime: process index " + std::to_string(opts_.index) +
                             " out of range (fleet size " + std::to_string(opts_.peers.size()) +
                             ")");
  }
  if (!opts_.owner) {
    throw std::runtime_error("NetRuntime: an owner partition function is required");
  }
  opts_.transport.validate();  // fail-fast: misconfiguration never reaches start()
  links_.reserve(opts_.peers.size());
  for (std::size_t i = 0; i < opts_.peers.size(); ++i) {
    auto link = std::make_unique<PeerLink>();
    if (i == opts_.index) {
      link->state = PeerLink::State::kSelf;
    } else if (i < opts_.index) {
      link->initiator = true;  // higher index dials lower
      ++initiated_total_;
    }
    link->wq.set_limits(opts_.transport.coalesce_max_frames, opts_.transport.coalesce_max_bytes);
    links_.push_back(std::move(link));
  }
}

NetRuntime::~NetRuntime() {
  if (started_) stop();
}

void NetRuntime::on_node_added(NodeId id) {
  SNOW_CHECK_MSG(!started_, "cannot add nodes after start()");
  mailboxes_.push_back(owns(id) ? std::make_unique<Mailbox>() : nullptr);
}

TimeNs NetRuntime::now_ns() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

#ifdef __linux__

void NetRuntime::start() {
  SNOW_CHECK(!started_);
  started_ = true;
  stopping_.store(false, std::memory_order_release);

  const TransportOptions& t = opts_.transport;
  io_threads_.clear();
  pending_.clear();
  for (std::size_t id = 0; id < t.io_threads; ++id) {
    auto io = std::make_unique<IoThread>();
    io->id = id;
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    SNOW_CHECK_MSG(io->epoll_fd >= 0, "epoll_create1 failed");
    io->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    SNOW_CHECK_MSG(io->wake_fd >= 0, "eventfd failed");
    io->timer_fd = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
    SNOW_CHECK_MSG(io->timer_fd >= 0, "timerfd_create failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWake;
    SNOW_CHECK(::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->wake_fd, &ev) == 0);
    ev.data.u64 = kTagTimer;
    SNOW_CHECK(::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->timer_fd, &ev) == 0);
    io->rbuf.resize(t.read_chunk_bytes);
    io->slices.resize(t.coalesce_max_frames);
    io->ready.resize(node_count());
    io_threads_.push_back(std::move(io));
  }
  for (std::size_t peer = 0; peer < links_.size(); ++peer) {
    if (peer == opts_.index) continue;
    io_threads_[home_index(peer)]->links.push_back(peer);
  }

  // Listen only when some higher-index process will dial us; accepts (and the
  // untrusted pre-HELLO phase) are thread 0's job.
  if (opts_.index + 1 < opts_.peers.size()) {
    const NetPeerAddr& self = opts_.peers[opts_.index];
    std::string err;
    listen_fd_ = net::tcp_listen(self.host, self.port, err);
    if (listen_fd_ < 0) {
      throw std::runtime_error("NetRuntime: " + err);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListen;
    SNOW_CHECK(::epoll_ctl(io_threads_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  }

  for (NodeId id = 0; id < node_count(); ++id) {
    if (owns(id)) start_node(id);
  }
  workers_.reserve(node_count());
  for (NodeId id = 0; id < node_count(); ++id) {
    if (owns(id)) workers_.emplace_back([this, id] { worker(id); });
  }
  for (auto& io : io_threads_) {
    IoThread* raw = io.get();
    io->thread = std::thread([this, raw] { io_loop(*raw); });
  }
}

void NetRuntime::stop() {
  if (!started_) return;
  // Best-effort outbound drain (bounded): give the I/O threads up to a second
  // to flush queued frames (e.g. the SHUTDOWN broadcast) before teardown.
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(1);
  // Never-connected links get a SHORTER sub-window: a daemon that was not
  // reachable by now is almost certainly dead, and waiting the full second
  // on frames that can never flush defeats the point of the bound.  150ms
  // still covers the kick_connects redial plus a few backoff retries, so a
  // daemon that comes up moments after broadcast_shutdown() gets its
  // SHUTDOWN; one that comes up later than that loses it (it was equally
  // lost before this window existed — SHUTDOWN delivery is best-effort).
  const auto never_connected_deadline = start + std::chrono::milliseconds(150);
  while (std::chrono::steady_clock::now() < deadline) {
    bool dirty = false;
    // Read BEFORE scanning links: each I/O thread clears its flag only
    // AFTER dialing the kicked links, so all-false here (acquire, paired
    // with the release stores) guarantees kicked links already show
    // kConnecting.
    bool kick_pending = false;
    for (const auto& io : io_threads_) {
      kick_pending = kick_pending || io->kick_connects.load(std::memory_order_acquire);
    }
    for (auto& link : links_) {
      // Count DOWN links too: a link in reconnect backoff may still hold
      // the SHUTDOWN broadcast, and the kick_connects redial is racing to
      // flush it within this window.
      if (link->state == PeerLink::State::kSelf) continue;
      if (!kick_pending && !link->ever_connected.load(std::memory_order_acquire) &&
          link->state == PeerLink::State::kIdle &&
          std::chrono::steady_clock::now() >= never_connected_deadline) {
        continue;
      }
      // Read BOTH under out_mu: io_flush publishes staged (under this lock)
      // before it empties the outbox view, so a locked reader always sees a
      // queued-or-staged SHUTDOWN as dirty — staged-but-unsent bytes
      // (EAGAIN) count too, since the frame may sit there, not in the
      // outbox.
      std::lock_guard<std::mutex> lock(link->out_mu);
      if (!link->outbox.empty() || link->staged.load(std::memory_order_acquire) > 0) {
        dirty = true;
      }
    }
    if (!dirty) break;
    io_wake_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stopping_.store(true, std::memory_order_release);
  io_wake_all();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
  }
  conn_cv_.notify_all();
  for (auto& io : io_threads_) {
    if (io->thread.joinable()) io->thread.join();
  }

  // Release any sender blocked on backpressure.
  for (auto& link : links_) {
    std::lock_guard<std::mutex> lock(link->out_mu);
    link->out_cv.notify_all();
  }

  for (auto& mb : mailboxes_) {
    if (!mb) continue;
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->stop = true;
    mb->cv.notify_all();
  }
  for (auto& t : workers_) t.join();
  workers_.clear();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& io : io_threads_) {
    if (io->wake_fd >= 0) ::close(io->wake_fd);
    if (io->timer_fd >= 0) ::close(io->timer_fd);
    if (io->epoll_fd >= 0) ::close(io->epoll_fd);
    io->wake_fd = io->timer_fd = io->epoll_fd = -1;
  }
  started_ = false;
}

void NetRuntime::send(NodeId from, NodeId to, Message m) {
  SNOW_CHECK_MSG(to < node_count(), "send to unknown node " << to);
  if (observer() != nullptr) observer()->on_send(from, to, m, encoded_size(m));
  const std::size_t peer = owner_of(to);  // one owner lookup per send
  if (peer == opts_.index) {
    // Local delivery still crosses the codec, exactly like ThreadRuntime,
    // including its recycled-buffer fast path: encode into a thread-local
    // scratch, swap it against a pooled buffer under the enqueue lock.
    thread_local std::vector<std::uint8_t> scratch;
    encode_message_into(m, scratch);
    Mailbox* mb = mailboxes_[to].get();
    SNOW_CHECK_MSG(mb != nullptr, "delivery to non-owned node " << to);
    {
      std::lock_guard<std::mutex> lock(mb->mu);
      Mailbox::Item item;
      item.from = from;
      if (!mb->pool.empty()) {
        item.bytes = std::move(mb->pool.back());
        mb->pool.pop_back();
      }
      item.bytes.swap(scratch);  // item takes the bytes, scratch the capacity
      mb->queue.push_back(std::move(item));
    }
    mb->cv.notify_one();
    return;
  }
  SNOW_CHECK_MSG(peer < links_.size(), "owner(" << to << ") = " << peer << " out of range");
  PeerLink& link = *links_[peer];
  // Frame into a thread-local scratch BEFORE taking the outbox lock, so
  // encoding cost (potentially a multi-KB history payload) never serializes
  // concurrent senders or stalls the home I/O thread's outbox pull.
  thread_local std::vector<std::uint8_t> framebuf;
  framebuf.clear();
  net::append_msg(framebuf, from, to, m);
  {
    std::unique_lock<std::mutex> lock(link.out_mu);
    if (link.outbox_bytes >= opts_.transport.backpressure_bytes) {
      // Backpressure: block this sender until the socket drains (or the
      // runtime stops).  I/O threads never block here, so inbound traffic
      // keeps flowing — unless BOTH directions saturate both their outbox
      // and inbound budgets at once (see the flow-control caveat in
      // transport_options.hpp); the defaults keep that configuration-
      // dependent stall out of reach for well-formed workloads.
      stats_.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
      link.out_cv.wait(lock, [&] {
        return link.outbox_bytes < opts_.transport.backpressure_bytes ||
               stopping_.load(std::memory_order_acquire);
      });
      if (stopping_.load(std::memory_order_acquire)) return;
    }
    std::vector<std::uint8_t> buf;
    if (!link.pool.empty()) {
      buf = std::move(link.pool.back());
      link.pool.pop_back();
    }
    buf.swap(framebuf);  // buf takes the frame, framebuf keeps the capacity
    link.outbox_bytes += buf.size();
    link.outbox.push_back(std::move(buf));
  }
  stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  // Wakeup elision: mark work pending, write the eventfd only if the home
  // thread is (about to be) asleep in epoll_wait.  The loop re-checks
  // `pending` after arming, so this can never strand a frame.
  IoThread& io = home(peer);
  io.pending.store(true, std::memory_order_seq_cst);
  if (io.armed.load(std::memory_order_seq_cst)) io_wake(io);
}

void NetRuntime::post(NodeId node, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post to unknown node " << node);
  SNOW_CHECK_MSG(owns(node), "post to remote node " << node << " (owned by process "
                                                    << owner_of(node) << ")");
  enqueue_local(node, Mailbox::Item{kInvalidNode, {}, std::move(fn)});
}

void NetRuntime::post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post_after to unknown node " << node);
  SNOW_CHECK_MSG(owns(node), "post_after to remote node " << node);
  // User timers all ride thread 0's heap (any heap works — the callback only
  // enqueues into a mailbox); internal link timers ride their home thread's.
  push_timer(*io_threads_[0], UserTimer{now_ns() + delay_ns, 0, node, std::move(fn)});
}

void NetRuntime::push_timer(IoThread& io, UserTimer t) {
  {
    std::lock_guard<std::mutex> lock(io.timer_mu);
    t.seq = io.timer_seq++;
    io.timers.push_back(std::move(t));
    std::push_heap(io.timers.begin(), io.timers.end(), std::greater<>());
  }
  io.pending.store(true, std::memory_order_seq_cst);
  if (io.armed.load(std::memory_order_seq_cst)) io_wake(io);
}

void NetRuntime::enqueue_local(NodeId to, Mailbox::Item item) {
  Mailbox* mb = mailboxes_[to].get();
  SNOW_CHECK_MSG(mb != nullptr, "delivery to non-owned node " << to);
  {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->queue.push_back(std::move(item));
  }
  mb->cv.notify_one();
}

void NetRuntime::worker(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  std::deque<Mailbox::Item> batch;
  std::vector<std::vector<std::uint8_t>> drained;  // buffers to recycle
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mb.mu);
      mb.cv.wait(lock, [&] { return mb.stop || !mb.queue.empty(); });
      if (mb.queue.empty()) return;  // stop requested and drained
      batch.swap(mb.queue);
      while (!drained.empty() && mb.pool.size() < kMaxPooledBuffers) {
        if (drained.back().capacity() <= kMaxPooledCapacity) {
          mb.pool.push_back(std::move(drained.back()));
        }
        drained.pop_back();
      }
    }
    drained.clear();
    std::size_t refund = 0;
    for (Mailbox::Item& item : batch) {
      refund += item.charge;
      if (item.task) {
        item.task();
      } else if (item.charge > 0) {
        // Network-origin frame (charge is only ever set by io_handle_frame):
        // the payload comes from a peer whose sole credential is an
        // unauthenticated HELLO, so a decode failure is hostile/corrupt
        // traffic — drop the frame and the connection it rode in on, never
        // the process.
        Message m;
        std::string err;
        if (try_decode_message(item.bytes, m, err)) {
          if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
          deliver_to(item.from, id, m);
        } else {
          std::fprintf(stderr, "[snowkit-net %zu] dropping undecodable frame for node %u: %s\n",
                       opts_.index, id, err.c_str());
          request_link_drop(owner_of(item.from), item.link_gen);
        }
        if (!item.bytes.empty()) drained.push_back(std::move(item.bytes));
      } else {
        // Locally delivered bytes crossed only our own encoder: trusted.
        Message m = decode_message(item.bytes);
        if (observer() != nullptr) observer()->on_deliver(item.from, id, m);
        deliver_to(item.from, id, m);
        if (!item.bytes.empty()) drained.push_back(std::move(item.bytes));
      }
    }
    batch.clear();
    if (refund > 0) {
      // Refund the inbound budget; if reading is paused and we crossed the
      // resume threshold (the SAME threshold io_apply_inbound_flow_control
      // resumes at, floored so a 1-byte budget still resumes), wake every
      // I/O thread to re-subscribe EPOLLIN on its links.
      const std::size_t before = inbound_bytes_.fetch_sub(refund, std::memory_order_acq_rel);
      const std::size_t resume_below =
          std::max<std::size_t>(1, opts_.transport.inbound_budget_bytes / 2);
      if (inbound_paused_.load(std::memory_order_acquire) && before - refund < resume_below) {
        io_wake_all();
      }
    }
  }
}

// --- connection management (home-I/O-thread only unless noted) ---------------

/// Worker-thread request to tear down a peer link (e.g. an undecodable
/// payload surfaced after the I/O thread already enqueued the frame).  Rides
/// the internal-timer path so the actual close runs on the link's home
/// thread.  The generation pins the request to the connection the offending
/// frame arrived on: if that connection already died and a healthy
/// replacement took its place, the request must no-op, not kill the
/// replacement.
void NetRuntime::request_link_drop(std::size_t peer, std::uint32_t gen) {
  if (peer >= links_.size() || peer == opts_.index) return;
  push_timer(home(peer), UserTimer{now_ns(), 0, kInvalidNode, [this, peer, gen] {
                                     PeerLink& link = *links_[peer];
                                     if (link.fd >= 0 && link.gen == gen) {
                                       io_link_failed(peer, "undecodable payload");
                                     }
                                   }});
}

/// Churn injection: same home-thread close path as request_link_drop, but
/// un-pinned from a generation — whatever connection is live when the
/// callback runs is the one torn down (the caller wants "a drop now", not
/// "drop the connection frame X arrived on").
void NetRuntime::inject_link_drop(std::size_t peer) {
  if (peer >= links_.size() || peer == opts_.index) return;
  push_timer(home(peer), UserTimer{now_ns(), 0, kInvalidNode, [this, peer] {
                                     PeerLink& link = *links_[peer];
                                     if (link.fd >= 0 &&
                                         link.state == PeerLink::State::kUp) {
                                       stats_.churn_drops.fetch_add(
                                           1, std::memory_order_relaxed);
                                       io_link_failed(peer, "injected churn drop");
                                     }
                                   }});
}

void NetRuntime::inject_read_stall(TimeNs duration_ns) {
  const TimeNs until = now_ns() + duration_ns;
  TimeNs prev = stall_until_ns_.load(std::memory_order_relaxed);
  while (prev < until &&
         !stall_until_ns_.compare_exchange_weak(prev, until, std::memory_order_acq_rel)) {
  }
  stats_.churn_stalls.fetch_add(1, std::memory_order_relaxed);
  // Each loop applies the stall in io_apply_inbound_flow_control at the top
  // of its next iteration; the wake starts the stall promptly, the deadline
  // timer (a no-op callback) guarantees an iteration happens to END it even
  // on an otherwise-idle thread.
  for (auto& io : io_threads_) {
    push_timer(*io, UserTimer{until, 0, kInvalidNode, [] {}});
    io_wake(*io);
  }
}

void NetRuntime::io_wake(IoThread& io) {
  if (io.wake_fd < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(io.wake_fd, &one, sizeof one);
}

void NetRuntime::io_wake_all() {
  for (auto& io : io_threads_) io_wake(*io);
}

void NetRuntime::io_start_connect(std::size_t peer) {
  PeerLink& link = *links_[peer];
  SNOW_CHECK(link.initiator);
  // A backoff timer and a broadcast_shutdown kick can both request a dial;
  // whoever runs second must no-op instead of leaking the in-flight fd.
  if (link.state != PeerLink::State::kIdle || link.fd >= 0) return;
  std::string err;
  const NetPeerAddr& addr = opts_.peers[peer];
  const int fd = net::tcp_connect_start(addr.host, addr.port, err);
  if (fd < 0) {
    io_schedule_reconnect(peer);
    return;
  }
  link.fd = fd;
  ++link.gen;
  link.state = PeerLink::State::kConnecting;
  epoll_event ev{};
  ev.events = EPOLLOUT;
  link.epoll_mask = EPOLLOUT;
  ev.data.u64 = peer_tag(peer, link.gen);
  SNOW_CHECK(::epoll_ctl(home(peer).epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0);
}

void NetRuntime::io_schedule_reconnect(std::size_t peer) {
  PeerLink& link = *links_[peer];
  link.backoff_ns = link.backoff_ns == 0
                        ? opts_.transport.reconnect_initial_ns
                        : std::min<TimeNs>(link.backoff_ns * 2, opts_.transport.reconnect_max_ns);
  push_timer(home(peer), UserTimer{now_ns() + link.backoff_ns, 0, kInvalidNode,
                                   [this, peer] { io_start_connect(peer); }});
}

void NetRuntime::close_link(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.fd >= 0) {
    ::epoll_ctl(home(peer).epoll_fd, EPOLL_CTL_DEL, link.fd, nullptr);
    ::close(link.fd);
    link.fd = -1;
    ++link.gen;  // events registered for the closed connection are now stale
  }
  link.epoll_mask = 0;
  // Frame-aligned recovery: the peer's decoder dies with the connection, so
  // a frame already cut by a partial write is unrecoverable — but whole
  // frames the socket never touched are not.  take_unsent() drops the
  // partially-written front frame (if any) and returns the rest, which go
  // back to the FRONT of the outbox (they are older than anything queued
  // since), so a reconnect loses at most the one partially-written frame
  // plus bytes TCP itself dropped.
  auto unsent = link.wq.take_unsent();
  if (!unsent.empty()) {
    std::lock_guard<std::mutex> lock(link.out_mu);
    while (!unsent.empty()) {
      link.outbox_bytes += unsent.back().size();
      link.outbox.push_front(std::move(unsent.back()));
      unsent.pop_back();
    }
  }
  link.staged.store(0, std::memory_order_release);
  link.decoder = net::FrameDecoder{};
  const bool was_up = link.state == PeerLink::State::kUp;
  link.state = PeerLink::State::kIdle;
  if (was_up && link.initiator) {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --initiated_up_;
  }
}

void NetRuntime::io_link_failed(std::size_t peer, const std::string& why) {
  PeerLink& link = *links_[peer];
  // Quiet once the fleet is ending: peers closing their sockets after a
  // SHUTDOWN broadcast is the expected teardown, not a fault.
  if (!stopping_.load(std::memory_order_acquire) &&
      !shutdown_.load(std::memory_order_acquire) && link.ever_connected) {
    std::fprintf(stderr, "[snowkit-net %zu] link to %zu dropped: %s\n", opts_.index, peer,
                 why.c_str());
  }
  close_link(peer);
  if (link.initiator && !stopping_.load(std::memory_order_acquire)) {
    io_schedule_reconnect(peer);
  }
  // Failure suspicion for replicated shards: if the link stays down past the
  // grace period, watchers of that peer's nodes get a NodeDownNotice.  Only
  // once per outage, and only for peers that were ever actually up — dial
  // retries against a fleet still coming up are not a death.
  if (link.ever_connected && !link.down_notice_armed &&
      !stopping_.load(std::memory_order_acquire) &&
      !shutdown_.load(std::memory_order_acquire)) {
    link.down_notice_armed = true;
    push_timer(home(peer),
               UserTimer{now_ns() + static_cast<TimeNs>(opts_.transport.peer_down_grace_ns), 0,
                         kInvalidNode, [this, peer] { io_peer_down_check(peer); }});
  }
}

void NetRuntime::io_peer_down_check(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.state.load(std::memory_order_acquire) == PeerLink::State::kUp) {
    // Recovered within the grace period; a future drop re-arms.
    link.down_notice_armed = false;
    return;
  }
  if (stopping_.load(std::memory_order_acquire) ||
      shutdown_.load(std::memory_order_acquire)) {
    return;
  }
  std::vector<std::pair<NodeId, NodeId>> watches;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watches = watches_;
  }
  for (const auto& [watcher, watched] : watches) {
    if (owner_of(watched) != peer) continue;
    // Injected through the trusted local-bytes mailbox path, attributed to
    // the watched node itself — exactly how SimRuntime::crash delivers it.
    enqueue_local(watcher,
                  Mailbox::Item{watched,
                                encode_message(Message{kInvalidTxn, NodeDownNotice{watched}}),
                                nullptr});
  }
  // Stays armed: one suspicion per outage; note_connected re-enables.
}

void NetRuntime::note_connected(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.ever_connected) {
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }
  link.ever_connected = true;
  link.backoff_ns = 0;
  link.down_notice_armed = false;  // next outage may suspect again
  if (link.initiator) {
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++initiated_up_;
    }
    conn_cv_.notify_all();
  }
}

void NetRuntime::io_on_connect_ready(std::size_t peer) {
  PeerLink& link = *links_[peer];
  int soerr = 0;
  socklen_t len = sizeof soerr;
  if (::getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
    io_link_failed(peer, "connect failed");
    return;
  }
  link.state = PeerLink::State::kUp;
  // HELLO leads every connection (and every reconnection) so the acceptor
  // can route this stream before any message frame arrives.
  std::vector<std::uint8_t> hello;
  net::append_hello(hello, opts_.index);
  link.wq.push(std::move(hello));
  link.staged.store(link.wq.pending_bytes(), std::memory_order_release);
  io_update_events(peer);
  note_connected(peer);
}

void NetRuntime::io_flush(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.state != PeerLink::State::kUp || link.fd < 0) return;
  IoThread& io = home(peer);
  thread_local std::vector<struct iovec> iovbuf;
  thread_local std::vector<std::vector<std::uint8_t>> spent;
  while (true) {
    if (link.wq.empty()) {
      std::lock_guard<std::mutex> lock(link.out_mu);
      if (link.outbox.empty()) break;
      while (!link.outbox.empty()) {
        link.wq.push(std::move(link.outbox.front()));
        link.outbox.pop_front();
      }
      link.outbox_bytes = 0;
      // Publish BEFORE writing: stop()'s drain loop must never observe the
      // window where these frames have left the outbox but staged still
      // reads 0, or it would tear down under a queued SHUTDOWN.
      link.staged.store(link.wq.pending_bytes(), std::memory_order_release);
      link.out_cv.notify_all();  // backpressured senders may proceed
    }
    // Coalesce: one sendmsg gathers up to coalesce_max_frames /
    // coalesce_max_bytes of queued frames; a partial write resumes at the
    // exact byte offset on the next gather (WriteCoalescer's contract).
    const std::size_t niov = link.wq.gather(io.slices.data(), io.slices.size());
    if (niov == 0) break;
    iovbuf.resize(niov);
    std::size_t offered = 0;
    for (std::size_t i = 0; i < niov; ++i) {
      iovbuf[i].iov_base = const_cast<std::uint8_t*>(io.slices[i].data);
      iovbuf[i].iov_len = io.slices[i].len;
      offered += io.slices[i].len;
    }
    msghdr mh{};
    mh.msg_iov = iovbuf.data();
    mh.msg_iovlen = niov;
    // MSG_NOSIGNAL: a peer that closed/RST between epoll_wait and this write
    // must yield EPIPE (handled below as a link failure), never a
    // process-killing SIGPIPE.  This is the transport's only socket write,
    // so no process-global signal disposition is needed (or touched).
    const auto n = ::sendmsg(link.fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_sent.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      stats_.send_syscalls.fetch_add(1, std::memory_order_relaxed);
      if (static_cast<std::size_t>(n) < offered) {
        stats_.short_writes.fetch_add(1, std::memory_order_relaxed);
      }
      spent.clear();
      const std::size_t completed = link.wq.consume(static_cast<std::size_t>(n), &spent);
      stats_.frames_written.fetch_add(completed, std::memory_order_relaxed);
      if (!spent.empty()) {
        // Recycle fully-written frame buffers for future send() calls, with
        // the same bounds the mailboxes use: bounded count, bounded
        // capacity — one burst of outsized frames must not pin peak-sized
        // allocations forever.
        std::lock_guard<std::mutex> lock(link.out_mu);
        for (auto& b : spent) {
          if (link.pool.size() >= kMaxPooledBuffers) break;
          if (b.capacity() > kMaxPooledCapacity) continue;
          b.clear();
          link.pool.push_back(std::move(b));
        }
        spent.clear();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    io_link_failed(peer, "write error");
    return;
  }
  link.staged.store(link.wq.pending_bytes(), std::memory_order_release);
  io_update_events(peer);
}

/// Recomputes a live link's epoll interest: EPOLLIN unless inbound flow
/// control paused reading, EPOLLOUT only while staged bytes are pending
/// (the per-iteration sweep handles freshly queued outboxes).  The mask is
/// cached so an unchanged interest skips the epoll_ctl syscall entirely.
/// ERR/HUP are always reported by the kernel regardless of the mask, so
/// drops are still detected while fully unsubscribed.
void NetRuntime::io_update_events(std::size_t peer) {
  PeerLink& link = *links_[peer];
  if (link.fd < 0 || link.state != PeerLink::State::kUp) return;
  IoThread& io = home(peer);
  epoll_event ev{};
  ev.events = (io.inbound_paused_applied ? 0u : EPOLLIN) |
              (!link.wq.empty() ? EPOLLOUT : 0u);
  if (ev.events == link.epoll_mask) return;
  ev.data.u64 = peer_tag(peer, link.gen);
  if (::epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, link.fd, &ev) == 0) {
    link.epoll_mask = ev.events;
  }
}

/// Pauses/resumes reading around the inbound byte budget: when workers lag,
/// queued-but-undelivered frames are capped, TCP's own flow control pushes
/// back to the senders, and their outbox caps block send() — bounded memory
/// end to end, with no blocking on any I/O thread.  The pause decision is
/// global (one budget per process); each thread applies it to its own links.
void NetRuntime::io_apply_inbound_flow_control(IoThread& io) {
  const std::size_t budget = opts_.transport.inbound_budget_bytes;
  const std::size_t queued = inbound_bytes_.load(std::memory_order_acquire);
  const std::size_t resume_below = std::max<std::size_t>(1, budget / 2);
  bool paused = inbound_paused_.load(std::memory_order_acquire);
  if (!paused && queued >= budget) {
    bool expected = false;
    if (inbound_paused_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      stats_.inbound_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    paused = true;
  } else if (paused && queued < resume_below) {
    inbound_paused_.store(false, std::memory_order_release);
    paused = false;
  }
  // An injected slow-reader stall ORs in on top: the budget state machine
  // above is untouched, the sockets just stay unsubscribed until the stall
  // deadline passes (a timer pushed by inject_read_stall guarantees an
  // iteration runs then to resubscribe).
  if (now_ns() < stall_until_ns_.load(std::memory_order_acquire)) paused = true;
  if (paused != io.inbound_paused_applied) {
    io.inbound_paused_applied = paused;
    for (const std::size_t peer : io.links) io_update_events(peer);
  }
}

bool NetRuntime::io_handle_frame(IoThread& io, std::size_t peer, net::Frame& f) {
  switch (f.type) {
    case net::FrameType::kHello:
      return true;  // duplicate hello on an established link: ignore.
    case net::FrameType::kMsg: {
      net::MsgHeader hdr;
      std::string err;
      if (!net::parse_msg_header(f.body, hdr, err)) {
        io_link_failed(peer, "bad msg frame: " + err);
        return false;
      }
      // A routable fleet shares ONE config, so a frame addressed to a node
      // we do not own means either divergent fleet configs or a hostile /
      // confused peer.  The HELLO handshake is unauthenticated, so this is
      // untrusted input: treat it like any other malformed traffic — log and
      // drop the connection — never abort the process.
      if (hdr.to >= node_count() || !owns(hdr.to)) {
        io_link_failed(peer, "misrouted frame for node " + std::to_string(hdr.to) +
                                 " not owned by process " + std::to_string(opts_.index) +
                                 " (divergent fleet configs?)");
        return false;
      }
      // The sender node is equally untrusted: a foreign `from` would flow
      // into the protocol handler's reply send(), whose to<node_count()
      // invariant check would abort THIS process.  Legitimate traffic only
      // ever carries a from-node owned by the peer the stream came from.
      if (hdr.from >= node_count() || owner_of(hdr.from) != peer) {
        io_link_failed(peer, "frame with foreign sender node " + std::to_string(hdr.from) +
                                 " not owned by peer " + std::to_string(peer));
        return false;
      }
      Mailbox::Item item;
      item.from = hdr.from;
      item.link_gen = links_[peer]->gen;
      // Strip the routing header in place and MOVE the body: one memmove,
      // zero allocations on the I/O thread's per-frame path.
      f.body.erase(f.body.begin(),
                   f.body.begin() + static_cast<std::ptrdiff_t>(hdr.payload_offset));
      item.bytes = std::move(f.body);
      // Charge the inbound budget (refunded by the worker after delivery);
      // +64 floors the cost of tiny frames so a flood of 2-byte payloads
      // still trips the pause.
      item.charge = item.bytes.size() + 64;
      inbound_bytes_.fetch_add(item.charge, std::memory_order_relaxed);
      // Batch decode: bucket per destination node; io_deliver_ready flushes
      // each bucket as ONE mailbox burst (one lock, one notify) per epoll
      // iteration instead of per frame.  Per-sender FIFO holds: one ordered
      // stream per peer, decoded in order, appended in order.
      auto& bucket = io.ready[hdr.to];
      if (bucket.empty()) io.touched.push_back(hdr.to);
      bucket.push_back(std::move(item));
      stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case net::FrameType::kShutdown: {
      shutdown_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
      }
      conn_cv_.notify_all();
      return true;
    }
  }
  io_link_failed(peer, "unhandled frame type");
  return false;
}

/// Flushes this iteration's decoded-frame buckets into their mailboxes, one
/// burst per node.  Items were bucketed in arrival order, so per-sender FIFO
/// delivery is preserved through the batch.
void NetRuntime::io_deliver_ready(IoThread& io) {
  for (const NodeId node : io.touched) {
    auto& items = io.ready[node];
    if (items.empty()) continue;
    Mailbox* mb = mailboxes_[node].get();
    {
      std::lock_guard<std::mutex> lock(mb->mu);
      for (auto& item : items) mb->queue.push_back(std::move(item));
    }
    mb->cv.notify_one();
    stats_.mailbox_bursts.fetch_add(1, std::memory_order_relaxed);
    items.clear();
  }
  io.touched.clear();
}

void NetRuntime::io_read(IoThread& io, std::size_t peer) {
  PeerLink& link = *links_[peer];
  while (link.fd >= 0) {
    const auto n = ::read(link.fd, io.rbuf.data(), io.rbuf.size());
    if (n > 0) {
      stats_.recv_syscalls.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      link.decoder.feed(io.rbuf.data(), static_cast<std::size_t>(n));
      net::Frame f;
      while (true) {
        const auto st = link.decoder.next(f);
        if (st == net::FrameDecoder::Status::kNeedMore) break;
        if (st == net::FrameDecoder::Status::kError) {
          io_link_failed(peer, "stream corrupt: " + link.decoder.error());
          return;
        }
        if (!io_handle_frame(io, peer, f)) return;
      }
      if (static_cast<std::size_t>(n) < io.rbuf.size()) return;  // drained
      // A peer that keeps the buffer full must not let this loop outrun the
      // inbound budget; stop here and let the end-of-iteration flow-control
      // check pause reading properly.
      if (inbound_bytes_.load(std::memory_order_relaxed) >=
          opts_.transport.inbound_budget_bytes) {
        return;
      }
      continue;
    }
    if (n == 0) {
      io_link_failed(peer, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    io_link_failed(peer, "read error");
    return;
  }
}

void NetRuntime::io_accept_all(IoThread& io) {
  while (true) {
    std::string err;
    const int fd = net::tcp_accept(listen_fd_, err);
    if (fd < 0) return;
    std::size_t slot = pending_.size();
    std::size_t live = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].fd < 0) {
        if (slot == pending_.size()) slot = i;
      } else {
        ++live;
      }
    }
    if (live >= opts_.transport.max_pending_conns) {
      // Handshake flood: refuse outright rather than pin another fd.  A
      // legitimate fleet peer retries with backoff and gets a slot once the
      // deadline reap (io_reap_stale_pending) clears the squatters.
      std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: pending handshake cap\n",
                   opts_.index);
      ::close(fd);
      continue;
    }
    if (slot == pending_.size()) pending_.emplace_back();
    pending_[slot].fd = fd;
    pending_[slot].decoder = net::FrameDecoder{};
    pending_[slot].accepted_ns = now_ns();
    pending_[slot].fed_bytes = 0;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagPendingBit | slot;
    SNOW_CHECK(::epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0);
  }
}

/// Drops accepted connections that have not completed their HELLO within the
/// deadline: pre-HELLO peers are untrusted and must not hold fds forever.
void NetRuntime::io_reap_stale_pending(IoThread& io) {
  const TimeNs now = now_ns();
  for (PendingConn& pc : pending_) {
    if (pc.fd < 0 || now - pc.accepted_ns < opts_.transport.pending_handshake_timeout_ns) {
      continue;
    }
    std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: handshake timeout\n",
                 opts_.index);
    ::epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, pc.fd, nullptr);
    ::close(pc.fd);
    pc.fd = -1;
  }
}

void NetRuntime::io_read_pending(IoThread& io, std::size_t slot) {
  if (slot >= pending_.size() || pending_[slot].fd < 0) return;
  PendingConn& pc = pending_[slot];
  std::uint8_t buf[4096];
  const auto n = ::read(pc.fd, buf, sizeof buf);
  auto drop = [&] {
    ::epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, pc.fd, nullptr);
    ::close(pc.fd);
    pc.fd = -1;
  };
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
    drop();
    return;
  }
  if (n < 0) return;
  pc.fed_bytes += static_cast<std::size_t>(n);
  pc.decoder.feed(buf, static_cast<std::size_t>(n));
  net::Frame f;
  const auto st = pc.decoder.next(f);
  if (st == net::FrameDecoder::Status::kNeedMore) {
    if (pc.fed_bytes > opts_.transport.max_pending_handshake_bytes) {
      // A "HELLO" still incomplete after this many bytes is never going to
      // be one (e.g. a huge length prefix trickling a body in) — don't let
      // an unauthenticated peer buffer up to kMaxFrameBytes.
      std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: oversized handshake\n",
                   opts_.index);
      drop();
    }
    return;
  }
  net::HelloBody hello;
  std::string err;
  if (st == net::FrameDecoder::Status::kError || f.type != net::FrameType::kHello ||
      !net::parse_hello(f.body, hello, err)) {
    std::fprintf(stderr, "[snowkit-net %zu] rejecting connection: bad hello (%s)\n",
                 opts_.index,
                 st == net::FrameDecoder::Status::kError ? pc.decoder.error().c_str()
                                                         : err.c_str());
    drop();
    return;
  }
  const std::size_t peer = hello.process_index;
  if (peer <= opts_.index || peer >= links_.size()) {
    std::fprintf(stderr, "[snowkit-net %zu] rejecting hello from invalid peer index %zu\n",
                 opts_.index, peer);
    drop();
    return;
  }
  // Greeted: hand the connection to the peer's home thread.  ONLY that
  // thread may touch the PeerLink (including displacing a previous
  // connection), so even home==0 goes through the handoff queue — it is
  // processed later this same iteration.
  ::epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, pc.fd, nullptr);
  IoThread& h = home(peer);
  {
    std::lock_guard<std::mutex> lock(h.handoff_mu);
    h.handoffs.push_back(Handoff{peer, pc.fd, std::move(pc.decoder)});
  }
  pc.fd = -1;
  pc.decoder = net::FrameDecoder{};
  h.pending.store(true, std::memory_order_seq_cst);
  if (h.armed.load(std::memory_order_seq_cst)) io_wake(h);
}

/// Adopts connections greeted on thread 0: registers the fd under a fresh
/// generation, displaces any previous connection for the peer, and drains
/// frames that arrived in the same chunk as the HELLO.
void NetRuntime::io_adopt_handoffs(IoThread& io) {
  std::vector<Handoff> handoffs;
  {
    std::lock_guard<std::mutex> lock(io.handoff_mu);
    handoffs.swap(io.handoffs);
  }
  for (Handoff& h : handoffs) {
    PeerLink& link = *links_[h.peer];
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(h.fd);
      continue;
    }
    if (link.fd >= 0) close_link(h.peer);  // peer reconnected before we saw the drop
    link.fd = h.fd;
    ++link.gen;
    link.state = PeerLink::State::kUp;
    link.decoder = std::move(h.decoder);  // bytes buffered past the HELLO carry over
    epoll_event ev{};
    ev.events = io.inbound_paused_applied ? 0u : EPOLLIN;
    link.epoll_mask = ev.events;
    ev.data.u64 = peer_tag(h.peer, link.gen);
    SNOW_CHECK(::epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, link.fd, &ev) == 0);
    note_connected(h.peer);
    // Frames that arrived in the same chunk as the HELLO are already
    // buffered in the carried-over decoder.
    net::Frame more;
    while (link.fd >= 0) {
      const auto st = link.decoder.next(more);
      if (st == net::FrameDecoder::Status::kNeedMore) break;
      if (st == net::FrameDecoder::Status::kError) {
        io_link_failed(h.peer, "stream corrupt: " + link.decoder.error());
        break;
      }
      if (!io_handle_frame(io, h.peer, more)) break;
    }
  }
}

void NetRuntime::io_fire_timers(IoThread& io) {
  while (true) {
    UserTimer t;
    {
      std::lock_guard<std::mutex> lock(io.timer_mu);
      if (io.timers.empty() || io.timers.front().due_ns > now_ns()) break;
      std::pop_heap(io.timers.begin(), io.timers.end(), std::greater<>());
      t = std::move(io.timers.back());
      io.timers.pop_back();
    }
    if (t.node == kInvalidNode) {
      t.fn();  // internal (reconnect/drop) callback: runs on the home thread
    } else {
      enqueue_local(t.node, Mailbox::Item{kInvalidNode, {}, std::move(t.fn)});
    }
  }
}

void NetRuntime::io_rearm_timerfd(IoThread& io) {
  TimeNs due = 0;
  {
    std::lock_guard<std::mutex> lock(io.timer_mu);
    if (!io.timers.empty()) due = io.timers.front().due_ns;
  }
  if (due == io.armed_due) return;  // unchanged deadline: skip the syscall
  itimerspec its{};
  if (due != 0) {
    const TimeNs now = now_ns();
    const TimeNs delta = due > now ? due - now : 1;
    its.it_value.tv_sec = static_cast<time_t>(delta / 1'000'000'000ull);
    its.it_value.tv_nsec = static_cast<long>(delta % 1'000'000'000ull);
    if (its.it_value.tv_sec == 0 && its.it_value.tv_nsec == 0) its.it_value.tv_nsec = 1;
  }
  ::timerfd_settime(io.timer_fd, 0, &its, nullptr);
  io.armed_due = due;
}

void NetRuntime::io_loop(IoThread& io) {
  for (const std::size_t peer : io.links) {
    if (links_[peer]->initiator) io_start_connect(peer);
  }
  epoll_event events[128];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Wakeup elision handshake (see IoThread): arm, then re-check pending.
    // A sender that queued after our last sweep either sees armed==true and
    // writes the eventfd, or stored pending before our exchange — both wake
    // us.  Under load this skips both the eventfd write and the epoll_wait.
    io.armed.store(true, std::memory_order_seq_cst);
    int n = 0;
    if (io.pending.exchange(false, std::memory_order_seq_cst)) {
      io.armed.store(false, std::memory_order_seq_cst);
    } else {
      io_rearm_timerfd(io);
      n = ::epoll_wait(io.epoll_fd, events, 128, 200);
      io.armed.store(false, std::memory_order_seq_cst);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n > 0) io.wakeups.fetch_add(1, std::memory_order_relaxed);
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t evs = events[i].events;
      if (tag == kTagWake) {
        std::uint64_t tmp;
        while (::read(io.wake_fd, &tmp, sizeof tmp) > 0) {
        }
      } else if (tag == kTagListen) {
        io_accept_all(io);
      } else if (tag == kTagTimer) {
        std::uint64_t tmp;
        while (::read(io.timer_fd, &tmp, sizeof tmp) > 0) {
        }
        io.armed_due = 0;  // one-shot fired; force a rearm
      } else if (tag & kTagPeerBit) {
        const std::size_t peer = static_cast<std::size_t>(tag & kTagPeerMask);
        const std::uint32_t gen = static_cast<std::uint32_t>(tag >> 24);
        if (peer >= links_.size()) continue;
        PeerLink& link = *links_[peer];
        // Stale event: the connection this event was registered for has
        // since been closed (and possibly replaced — even on the SAME fd
        // number, which the kernel reuses — by a reconnection in this very
        // batch).  Acting on it would tear down the healthy new link, or
        // promote a still-in-flight connect to kUp.
        if (link.fd < 0 || link.gen != gen) continue;
        if (link.state == PeerLink::State::kConnecting) {
          io_on_connect_ready(peer);
          if (link.state == PeerLink::State::kUp) io_flush(peer);
          continue;
        }
        if (evs & (EPOLLERR | EPOLLHUP)) {
          io_link_failed(peer, "socket error/hup");
          continue;
        }
        if (evs & EPOLLIN) io_read(io, peer);
        if (link.gen == gen && link.fd >= 0 && (evs & EPOLLOUT)) io_flush(peer);
      } else if (tag & kTagPendingBit) {
        io_read_pending(io, static_cast<std::size_t>(tag & ~kTagPendingBit));
      }
    }
    io_adopt_handoffs(io);
    io_fire_timers(io);
    if (io.id == 0) io_reap_stale_pending(io);
    if (io.kick_connects.load(std::memory_order_acquire)) {
      // broadcast_shutdown queued SHUTDOWN frames; redial links sitting in
      // reconnect backoff NOW so those frames can still flush before stop().
      for (const std::size_t peer : io.links) {
        if (links_[peer]->initiator && links_[peer]->state == PeerLink::State::kIdle) {
          io_start_connect(peer);
        }
      }
      // Cleared only AFTER the dials: stop()'s drain skip reads this flag
      // and must never observe it false while a kicked link is still kIdle.
      io.kick_connects.store(false, std::memory_order_release);
    }
    io_apply_inbound_flow_control(io);
    // Flush any of our links with queued outbound frames (sends mark the
    // home thread pending but do not name the peer; per-thread link sets
    // are small, so a sweep is cheap).
    for (const std::size_t peer : io.links) {
      PeerLink& link = *links_[peer];
      if (link.state != PeerLink::State::kUp) continue;
      bool pending_out = !link.wq.empty();
      if (!pending_out) {
        std::lock_guard<std::mutex> lock(link.out_mu);
        pending_out = !link.outbox.empty();
      }
      if (pending_out) io_flush(peer);
    }
    // One mailbox burst per touched node for everything decoded this
    // iteration — the read-side half of the batching story.
    io_deliver_ready(io);
  }
  // Final flush attempt, then close our links (and, on thread 0, the
  // pending set).  Deliver anything decoded by the final reads.
  for (const std::size_t peer : io.links) {
    if (links_[peer]->state == PeerLink::State::kUp) io_flush(peer);
    close_link(peer);
  }
  io_deliver_ready(io);
  {
    std::lock_guard<std::mutex> lock(io.handoff_mu);
    for (Handoff& h : io.handoffs) {
      if (h.fd >= 0) ::close(h.fd);
    }
    io.handoffs.clear();
  }
  if (io.id == 0) {
    for (auto& pc : pending_) {
      if (pc.fd >= 0) {
        ::close(pc.fd);
        pc.fd = -1;
      }
    }
  }
}

void NetRuntime::wait_connected() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [&] {
    return initiated_up_ == initiated_total_ || stopping_.load(std::memory_order_acquire);
  });
}

bool NetRuntime::wait_connected_for(TimeNs timeout_ns) {
  std::unique_lock<std::mutex> lock(conn_mu_);
  return conn_cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns), [&] {
    return initiated_up_ == initiated_total_ || stopping_.load(std::memory_order_acquire);
  });
}

void NetRuntime::broadcast_shutdown() {
  // The broadcaster knows the fleet is ending: mark locally too, so
  // peers' sockets closing afterwards is treated as teardown, not faults.
  shutdown_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i == opts_.index) continue;
    PeerLink& link = *links_[i];
    std::vector<std::uint8_t> frame;
    net::append_shutdown(frame);
    std::lock_guard<std::mutex> lock(link.out_mu);
    link.outbox_bytes += frame.size();
    link.outbox.push_back(std::move(frame));
  }
  // Links down in reconnect backoff would silently eat their SHUTDOWN;
  // have every I/O thread redial its own immediately.
  for (auto& io : io_threads_) io->kick_connects.store(true, std::memory_order_release);
  io_wake_all();
}

void NetRuntime::run_until_shutdown() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [&] {
    return shutdown_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  });
}

void NetRuntime::request_shutdown() {
  {
    // Take conn_mu_ so a run_until_shutdown() waiter between its predicate
    // check and its wait cannot miss the notify.
    std::lock_guard<std::mutex> lock(conn_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  conn_cv_.notify_all();
}

TransportStats NetRuntime::transport_stats() const {
  TransportStats s;
  s.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  s.frames_received = stats_.frames_received.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  s.send_syscalls = stats_.send_syscalls.load(std::memory_order_relaxed);
  s.frames_written = stats_.frames_written.load(std::memory_order_relaxed);
  s.short_writes = stats_.short_writes.load(std::memory_order_relaxed);
  s.recv_syscalls = stats_.recv_syscalls.load(std::memory_order_relaxed);
  s.mailbox_bursts = stats_.mailbox_bursts.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.backpressure_waits = stats_.backpressure_waits.load(std::memory_order_relaxed);
  s.inbound_pauses = stats_.inbound_pauses.load(std::memory_order_relaxed);
  s.churn_drops = stats_.churn_drops.load(std::memory_order_relaxed);
  s.churn_stalls = stats_.churn_stalls.load(std::memory_order_relaxed);
  s.epoll_wakeups.reserve(io_threads_.size());
  for (const auto& io : io_threads_) {
    s.epoll_wakeups.push_back(io->wakeups.load(std::memory_order_relaxed));
  }
  return s;
}

void NetRuntime::watch_node(NodeId watcher, NodeId watched) {
  SNOW_CHECK_MSG(owns(watcher), "watch_node by remote node " << watcher);
  std::lock_guard<std::mutex> lock(watch_mu_);
  const auto pair = std::make_pair(watcher, watched);
  if (std::find(watches_.begin(), watches_.end(), pair) != watches_.end()) return;
  watches_.push_back(pair);
}

#else  // !__linux__ — constructor already threw; keep the linker satisfied.

void NetRuntime::start() { SNOW_UNREACHABLE("NetRuntime on non-Linux"); }
void NetRuntime::stop() {}
void NetRuntime::send(NodeId, NodeId, Message) { SNOW_UNREACHABLE("NetRuntime on non-Linux"); }
void NetRuntime::post(NodeId, std::function<void()>) {
  SNOW_UNREACHABLE("NetRuntime on non-Linux");
}
void NetRuntime::post_after(NodeId, TimeNs, std::function<void()>) {
  SNOW_UNREACHABLE("NetRuntime on non-Linux");
}
void NetRuntime::push_timer(IoThread&, UserTimer) {}
void NetRuntime::enqueue_local(NodeId, Mailbox::Item) {}
void NetRuntime::request_link_drop(std::size_t, std::uint32_t) {}
void NetRuntime::inject_link_drop(std::size_t) {}
void NetRuntime::inject_read_stall(TimeNs) {}
void NetRuntime::worker(NodeId) {}
void NetRuntime::io_loop(IoThread&) {}
void NetRuntime::io_wake(IoThread&) {}
void NetRuntime::io_wake_all() {}
void NetRuntime::io_update_events(std::size_t) {}
void NetRuntime::io_apply_inbound_flow_control(IoThread&) {}
void NetRuntime::io_start_connect(std::size_t) {}
void NetRuntime::io_schedule_reconnect(std::size_t) {}
void NetRuntime::io_link_failed(std::size_t, const std::string&) {}
void NetRuntime::io_on_connect_ready(std::size_t) {}
void NetRuntime::io_flush(std::size_t) {}
void NetRuntime::io_read(IoThread&, std::size_t) {}
bool NetRuntime::io_handle_frame(IoThread&, std::size_t, net::Frame&) { return false; }
void NetRuntime::io_deliver_ready(IoThread&) {}
void NetRuntime::io_adopt_handoffs(IoThread&) {}
void NetRuntime::io_accept_all(IoThread&) {}
void NetRuntime::io_reap_stale_pending(IoThread&) {}
void NetRuntime::io_read_pending(IoThread&, std::size_t) {}
void NetRuntime::io_fire_timers(IoThread&) {}
void NetRuntime::io_rearm_timerfd(IoThread&) {}
void NetRuntime::close_link(std::size_t) {}
void NetRuntime::note_connected(std::size_t) {}
void NetRuntime::wait_connected() {}
bool NetRuntime::wait_connected_for(TimeNs) { return false; }
void NetRuntime::broadcast_shutdown() {}
void NetRuntime::run_until_shutdown() {}
void NetRuntime::request_shutdown() {}
TransportStats NetRuntime::transport_stats() const { return {}; }
void NetRuntime::watch_node(NodeId, NodeId) {}
void NetRuntime::io_peer_down_check(std::size_t) {}

#endif

}  // namespace snowkit
