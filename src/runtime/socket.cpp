#include "runtime/socket.hpp"

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "msg/codec.hpp"

#ifdef __linux__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace snowkit::net {

namespace {

/// Bounded varint appender (LEB128, same encoding as BufWriter::uv).
void put_uv(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t uv_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Bounds-checked varint read over untrusted bytes; false on truncation or
/// over-length (a varint never legitimately exceeds 10 bytes).
bool get_uv(const std::vector<std::uint8_t>& buf, std::size_t& pos, std::uint64_t& out) {
  out = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= buf.size()) return false;
    const std::uint8_t b = buf[pos++];
    out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;
}

}  // namespace

// --- FrameDecoder ------------------------------------------------------------

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed()) return;  // terminal: drop everything after an error
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (failed()) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Status::kNeedMore;
  const std::uint32_t len = static_cast<std::uint32_t>(buf_[pos_]) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 3]) << 24);
  if (len == 0) {
    error_ = "zero-length frame";
    return Status::kError;
  }
  if (len > kMaxFrameBytes) {
    error_ = "frame length " + std::to_string(len) + " exceeds kMaxFrameBytes";
    return Status::kError;
  }
  if (avail < 4u + len) return Status::kNeedMore;
  const std::uint8_t type = buf_[pos_ + 4];
  if (type != static_cast<std::uint8_t>(FrameType::kHello) &&
      type != static_cast<std::uint8_t>(FrameType::kMsg) &&
      type != static_cast<std::uint8_t>(FrameType::kShutdown)) {
    error_ = "unknown frame type " + std::to_string(type);
    return Status::kError;
  }
  out.type = static_cast<FrameType>(type);
  out.body.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 5),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4u + len;
  // Compact once the consumed prefix dominates, so the buffer cannot grow
  // without bound across a long-lived connection.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Status::kFrame;
}

// --- WriteCoalescer ----------------------------------------------------------

std::size_t WriteCoalescer::gather(IoSlice* out, std::size_t max_iov) const {
  std::size_t n = 0;
  std::size_t gathered = 0;
  std::size_t off = off_;
  for (const auto& frame : q_) {
    if (n >= max_iov || n >= max_frames_) break;
    // The byte cap never blocks the FIRST slice: a frame bigger than
    // max_bytes must still drain (one frame per syscall, worst case).
    if (n > 0 && gathered + (frame.size() - off) > max_bytes_) break;
    out[n].data = frame.data() + off;
    out[n].len = frame.size() - off;
    gathered += out[n].len;
    ++n;
    off = 0;  // only the front frame has a resume offset
  }
  return n;
}

std::size_t WriteCoalescer::consume(std::size_t n,
                                    std::vector<std::vector<std::uint8_t>>* spent) {
  bytes_ -= n;  // caller never consumes more than it gathered
  std::size_t completed = 0;
  while (n > 0) {
    auto& front = q_.front();
    const std::size_t remaining = front.size() - off_;
    if (n < remaining) {
      off_ += n;  // partial write: resume mid-frame on the next gather
      return completed;
    }
    n -= remaining;
    off_ = 0;
    if (spent != nullptr) spent->push_back(std::move(front));
    q_.pop_front();
    ++completed;
  }
  return completed;
}

std::deque<std::vector<std::uint8_t>> WriteCoalescer::take_unsent() {
  if (off_ > 0 && !q_.empty()) q_.pop_front();  // its prefix died with the socket
  off_ = 0;
  bytes_ = 0;
  return std::exchange(q_, {});
}

// --- frame builders ----------------------------------------------------------

void append_hello(std::vector<std::uint8_t>& out, std::uint64_t process_index) {
  const std::size_t body = 1 + 4 + uv_size(kWireVersion) + uv_size(process_index);
  put_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(static_cast<std::uint8_t>(FrameType::kHello));
  put_u32le(out, kWireMagic);
  put_uv(out, kWireVersion);
  put_uv(out, process_index);
}

void append_msg(std::vector<std::uint8_t>& out, NodeId from, NodeId to, const Message& m) {
  // The message bytes are the codec's, verbatim; a thread-local scratch keeps
  // steady-state framing allocation-free, mirroring the ThreadRuntime send
  // fast path.
  thread_local std::vector<std::uint8_t> scratch;
  encode_message_into(m, scratch);
  const std::size_t body = 1 + uv_size(from) + uv_size(to) + scratch.size();
  // Fail at the SENDER with the payload named: an oversize frame would pass
  // through the socket fine and then kill the link at the receiver's
  // decoder, losing the frame on reconnect and hanging the transaction with
  // no diagnostic.
  SNOW_CHECK_MSG(body <= kMaxFrameBytes,
                 "message " << payload_name(m.payload) << " encodes to " << scratch.size()
                            << " bytes, above the snowkit-wire-v1 frame cap ("
                            << kMaxFrameBytes << "); GC the version store or raise the cap");
  put_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(static_cast<std::uint8_t>(FrameType::kMsg));
  put_uv(out, from);
  put_uv(out, to);
  out.insert(out.end(), scratch.begin(), scratch.end());
}

void append_shutdown(std::vector<std::uint8_t>& out) {
  put_u32le(out, 1);
  out.push_back(static_cast<std::uint8_t>(FrameType::kShutdown));
}

// --- frame body parsers ------------------------------------------------------

bool parse_hello(const std::vector<std::uint8_t>& body, HelloBody& out, std::string& err) {
  if (body.size() < 4) {
    err = "hello too short";
    return false;
  }
  const std::uint32_t magic = static_cast<std::uint32_t>(body[0]) |
                              (static_cast<std::uint32_t>(body[1]) << 8) |
                              (static_cast<std::uint32_t>(body[2]) << 16) |
                              (static_cast<std::uint32_t>(body[3]) << 24);
  if (magic != kWireMagic) {
    err = "bad hello magic";
    return false;
  }
  std::size_t pos = 4;
  std::uint64_t version = 0;
  if (!get_uv(body, pos, version)) {
    err = "truncated hello version";
    return false;
  }
  if (version != kWireVersion) {
    err = "wire version " + std::to_string(version) + " (expected " +
          std::to_string(kWireVersion) + ")";
    return false;
  }
  if (!get_uv(body, pos, out.process_index)) {
    err = "truncated hello process index";
    return false;
  }
  if (pos != body.size()) {
    err = "trailing bytes after hello";
    return false;
  }
  return true;
}

bool parse_msg_header(const std::vector<std::uint8_t>& body, MsgHeader& out, std::string& err) {
  std::size_t pos = 0;
  std::uint64_t from = 0, to = 0;
  if (!get_uv(body, pos, from) || !get_uv(body, pos, to)) {
    err = "truncated msg routing header";
    return false;
  }
  if (from >= kInvalidNode || to >= kInvalidNode) {
    err = "msg routing header node id out of range";
    return false;
  }
  if (pos >= body.size()) {
    err = "msg frame carries no payload";
    return false;
  }
  out.from = static_cast<NodeId>(from);
  out.to = static_cast<NodeId>(to);
  out.payload_offset = pos;
  return true;
}

Message decode_msg_payload(const std::vector<std::uint8_t>& body, std::size_t payload_offset) {
  const std::vector<std::uint8_t> payload(body.begin() +
                                              static_cast<std::ptrdiff_t>(payload_offset),
                                          body.end());
  return decode_message(payload);
}

// --- socket helpers ----------------------------------------------------------

#ifdef __linux__

bool transport_supported() { return true; }

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool make_addr(const std::string& host, std::uint16_t port, sockaddr_in& addr,
               std::string& err) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    err = "bad IPv4 address '" + host + "'";
    return false;
  }
  return true;
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port, std::string& err) {
  sockaddr_in addr;
  if (!make_addr(host, port, addr, err)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    err = "bind " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    err = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int tcp_connect_start(const std::string& host, std::uint16_t port, std::string& err) {
  sockaddr_in addr;
  if (!make_addr(host, port, addr, err)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  set_nodelay(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    err = "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int tcp_accept(int listen_fd, std::string& err) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      err = std::string("accept: ") + std::strerror(errno);
    }
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

std::uint16_t pick_free_port() {
  const auto ports = pick_free_ports(1);
  return ports.empty() ? 0 : ports.front();
}

std::vector<std::uint16_t> pick_free_ports(std::size_t n) {
  std::vector<std::uint16_t> ports;
  std::vector<int> fds;
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) break;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    socklen_t len = sizeof addr;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      ports.push_back(ntohs(addr.sin_port));
      fds.push_back(fd);  // keep it bound until all n are distinct
    } else {
      ::close(fd);
      break;
    }
  }
  for (const int fd : fds) ::close(fd);
  if (ports.size() != n) ports.clear();
  return ports;
}

#else  // !__linux__

bool transport_supported() { return false; }

int tcp_listen(const std::string&, std::uint16_t, std::string& err) {
  err = "snowkit TCP transport requires Linux (epoll)";
  return -1;
}
int tcp_connect_start(const std::string&, std::uint16_t, std::string& err) {
  err = "snowkit TCP transport requires Linux (epoll)";
  return -1;
}
int tcp_accept(int, std::string& err) {
  err = "snowkit TCP transport requires Linux (epoll)";
  return -1;
}
std::uint16_t pick_free_port() { return 0; }
std::vector<std::uint16_t> pick_free_ports(std::size_t) { return {}; }

#endif

}  // namespace snowkit::net
