// Fleet configuration: ONE file describes a multi-process snowkit deployment,
// and every process (the snowkit_server daemons and the driving client)
// parses the SAME file, so they all derive identical protocol builds, node
// numbering and owner partitions — the invariant NetRuntime routing depends
// on (see net_runtime.hpp).
//
// Format (line-oriented, '#' comments, whitespace-separated):
//
//   protocol  algo-c
//   objects   4
//   readers   2
//   writers   2
//   shards    3                  # num_servers (0 = one server per object)
//   placement hash               # hash | range (optional, default hash)
//   replicas  2                  # copies per shard: 1 (default) or 2
//   options   gc_versions=true   # BuildOptions csv (optional)
//   transport io_threads=2       # TransportOptions csv (optional)
//   server    127.0.0.1 7101     # fleet process 0
//   server    127.0.0.1 7102     # fleet process 1
//   server    127.0.0.1 7103     # fleet process 2
//   client    127.0.0.1 7100     # the LAST process hosts every client node
//
// The client line must be LAST — any key after it is a parse error.
//
// Server shards are split contiguously over the server processes; all client
// nodes (readers, writers, and anything a protocol registers after the
// servers) live on the single client process.  The client is last by
// convention so it INITIATES every one of its links (NetRuntime dials
// lower-index peers), which is what makes "start the client whenever" work.
//
// `replicas 2` gives every shard a backup node (proto/replica.hpp); backup
// node ids start after the clients, and owner_of places the backup of shard
// s on the NEXT server process after s's primary (cyclically), so killing
// one server process never takes out both copies of a shard.  Requires a
// protocol with ProtocolTraits::supports_replication and at least two
// server processes.
#pragma once

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "runtime/net_runtime.hpp"

namespace snowkit {

struct FleetConfig {
  std::string protocol;
  SystemConfig system;
  BuildOptions options;
  /// Transport tuning for EVERY fleet process (one file, one transport
  /// config — per-process overrides would let fleets drift).  The
  /// snowkit_server `--transport` flag layers on top for local experiments.
  TransportOptions transport;
  /// All fleet processes in index order: the server processes, then the one
  /// client process (always last).
  std::vector<NetPeerAddr> processes;
  /// Copies per shard: 1 (single-copy, the default) or 2 (primary/backup —
  /// see proto/replica.hpp).  Parsed from the `replicas` line, which also
  /// mirrors itself into `options` so protocol builds see it.
  std::size_t replicas{1};

  std::size_t server_processes() const { return processes.empty() ? 0 : processes.size() - 1; }
  std::size_t client_index() const { return processes.size() - 1; }

  /// Which fleet process hosts `node`.  Servers are nodes [0, shard count),
  /// split contiguously over the server processes; everything else is a
  /// client-side node.
  std::size_t owner_of(NodeId node) const;

  /// NetRuntime options for fleet process `index` (shares this owner map).
  NetOptions net_options(std::size_t index) const;

  /// Throws std::invalid_argument on inconsistent fleets (no processes,
  /// more server processes than shards, unknown protocol name).
  void validate() const;
};

/// Parses the fleet file format above; throws std::invalid_argument with a
/// line-numbered message on malformed input.
FleetConfig parse_fleet_text(const std::string& text);
FleetConfig parse_fleet_file(const std::string& path);

/// Serializes a FleetConfig back into the file format (parse round-trips).
std::string fleet_text(const FleetConfig& fleet);

}  // namespace snowkit
