// Runtime: the execution substrate protocols run on.
//
// A protocol is written once as a set of Nodes (event-driven state machines)
// and runs unchanged on two substrates:
//   * SimRuntime  (src/sim)     — deterministic discrete-event simulation
//     with adversarial scheduling; used for the impossibility figures and
//     for property tests over many seeds.
//   * ThreadRuntime (this dir)  — one OS thread per node with serialized
//     message passing; used for wall-clock latency/throughput benches.
//
// The contract mirrors the paper's I/O-automata model (§2, Appendix A):
// channels are reliable but asynchronous, local steps are atomic, and all
// state of a node is touched only from its own executor.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "msg/message.hpp"
#include "runtime/observer.hpp"
#include "runtime/transport_stats.hpp"

namespace snowkit {

class Runtime;

/// Base class for every process (client or server).
///
/// All methods run on the node's executor: exactly one on_message/on_start/
/// posted task is active per node at a time, so subclasses need no locks.
class Node {
 public:
  virtual ~Node() = default;

  /// A message from `from` has been delivered to this node.
  virtual void on_message(NodeId from, const Message& m) = 0;

  /// Called once before any message delivery.
  virtual void on_start() {}

  /// Crash/restart hooks (SimRuntime::crash/restart).  A node that returns
  /// true from supports_crash() must clear ALL volatile state in on_crash()
  /// and recover from durable state (its WAL) in on_restart() — the node
  /// OBJECT survives a simulated crash, only its in-memory protocol state
  /// dies.  Nodes without durable state keep the default false and the
  /// schedule machinery never crashes them.
  virtual bool supports_crash() const { return false; }
  virtual void on_crash() {}
  virtual void on_restart() { on_start(); }

  NodeId id() const { return id_; }

 protected:
  Runtime& rt() const { return *rt_; }
  void send(NodeId to, Message m);

 private:
  friend class Runtime;
  Runtime* rt_ = nullptr;
  NodeId id_ = kInvalidNode;
};

/// Abstract transport + executor collection.
class Runtime {
 public:
  virtual ~Runtime() = default;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers a node; returns its id (ids are dense, in registration order).
  NodeId add_node(std::unique_ptr<Node> node);

  Node& node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Reliable asynchronous unicast.
  virtual void send(NodeId from, NodeId to, Message m) = 0;

  /// Runs `fn` on `node`'s executor (used to invoke transactions on clients).
  virtual void post(NodeId node, std::function<void()> fn) = 0;

  /// Runs `fn` on `node`'s executor after `delay_ns` (virtual time for sim,
  /// wall clock for threads).  Open-loop workload drivers use this to pace
  /// fixed arrival rates on either substrate.
  virtual void post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) = 0;

  /// Current time in nanoseconds (virtual for sim, steady_clock for threads).
  virtual TimeNs now_ns() const = 0;

  /// True when `id`'s executor lives in THIS process.  Single-process
  /// substrates own every node; NetRuntime owns only its fleet partition.
  /// Drivers use this to anchor work (e.g. open-loop timer chains) on a
  /// node they can actually post to.
  virtual bool owns_node(NodeId id) const {
    (void)id;
    return true;
  }

  /// Typed transport-counters snapshot (runtime/transport_stats.hpp): the one
  /// stats seam benches, daemons and audit tooling consume.  Substrates with
  /// no network transport return the default (all-zero, zero-thread)
  /// snapshot; NetRuntime overrides with live counters.
  virtual TransportStats transport_stats() const { return {}; }

  /// Transaction lifecycle notes.  SimRuntime records these as INV/RESP
  /// actions in its trace; ThreadRuntime ignores them.
  virtual void note_invoke(NodeId client, TxnId txn) { (void)client; (void)txn; }
  virtual void note_respond(NodeId client, TxnId txn) { (void)client; (void)txn; }

  /// Adaptive-layer note: the coordinator moved `obj` to fetch-mode `mode`
  /// (0 = B/on-demand, 1 = C/prefetch).  SimRuntime forwards it to the
  /// schedule recorder so switch decisions land in ScheduleLogs and shrink
  /// with the repro; every other substrate ignores it.
  virtual void note_switch(ObjectId obj, int mode) { (void)obj; (void)mode; }

  /// Failure detection: `watcher` asks to receive a NodeDownNotice message
  /// (from `watched`) when the substrate believes `watched` has died.
  /// SimRuntime delivers an exact notice when crash(watched) runs; NetRuntime
  /// fires after the peer's link stays down past peer_down_grace_ns (a
  /// TIMEOUT detector — false positives possible); ThreadRuntime never fires
  /// (in-process nodes don't die alone).  The default is that no-op.
  virtual void watch_node(NodeId watcher, NodeId watched) { (void)watcher; (void)watched; }

  void set_observer(MessageObserver* obs) { observer_ = obs; }
  MessageObserver* observer() const { return observer_; }

 protected:
  Runtime() = default;

  /// Invoked by subclasses after a node is registered.
  virtual void on_node_added(NodeId id) { (void)id; }

  void deliver_to(NodeId from, NodeId to, const Message& m) { node(to).on_message(from, m); }
  void start_node(NodeId id) { node(id).on_start(); }

  std::vector<std::unique_ptr<Node>> nodes_;

 private:
  MessageObserver* observer_ = nullptr;
};

}  // namespace snowkit
