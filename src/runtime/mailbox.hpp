// One node's serialized inbox — THE mailbox struct shared by ThreadRuntime
// and NetRuntime, so the batch-drain + recycled-encode-buffer fast path has
// exactly one definition (constants included) and the two substrates cannot
// drift.  The worker loops stay with their runtimes (idle tracking and
// network flow control differ); the data structure and pooling rules live
// here.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace snowkit {

struct NodeMailbox {
  struct Item {
    NodeId from{kInvalidNode};
    std::vector<std::uint8_t> bytes;  ///< encoded message (empty for tasks)
    std::function<void()> task;       ///< non-null for posted tasks
    /// Inbound-flow-control accounting (NetRuntime): bytes charged against
    /// the runtime's inbound budget when the I/O thread enqueued this item,
    /// refunded by the worker after delivery.  0 for local/task items.
    std::size_t charge{0};
    /// NetRuntime only: the connection generation of the link this frame
    /// arrived on, so a worker-side drop request (undecodable payload)
    /// cannot tear down a replacement connection established since.
    std::uint32_t link_gen{0};
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  /// Recycled encode buffers (capacity retained): senders swap their
  /// thread-local scratch against one of these on enqueue, workers return
  /// drained buffers after delivery.
  std::vector<std::vector<std::uint8_t>> pool;
  bool busy = false;  ///< a handler (or a whole batch) is currently running
  bool stop = false;
};

/// Pooling bounds: at most this many buffers per mailbox...
inline constexpr std::size_t kMaxPooledBuffers = 256;
/// ...and buffers above this capacity are not recycled: one burst of
/// outsized messages must not pin peak-sized allocations for the runtime's
/// lifetime.
inline constexpr std::size_t kMaxPooledCapacity = 4096;

}  // namespace snowkit
