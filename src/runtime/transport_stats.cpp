#include "runtime/transport_stats.hpp"

#include <cstdio>

namespace snowkit {

std::vector<std::pair<std::string, std::string>> TransportStats::extras() const {
  auto fixed2 = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("tcp_frames_sent", std::to_string(frames_sent));
  out.emplace_back("tcp_frames_received", std::to_string(frames_received));
  out.emplace_back("tcp_bytes_sent", std::to_string(bytes_sent));
  out.emplace_back("tcp_bytes_received", std::to_string(bytes_received));
  out.emplace_back("tcp_send_syscalls", std::to_string(send_syscalls));
  out.emplace_back("tcp_recv_syscalls", std::to_string(recv_syscalls));
  out.emplace_back("tcp_short_writes", std::to_string(short_writes));
  out.emplace_back("tcp_mailbox_bursts", std::to_string(mailbox_bursts));
  out.emplace_back("frames_per_syscall", fixed2(frames_per_syscall()));
  out.emplace_back("bytes_per_writev", fixed2(bytes_per_writev()));
  out.emplace_back("tcp_reconnects", std::to_string(reconnects));
  out.emplace_back("tcp_backpressure_waits", std::to_string(backpressure_waits));
  out.emplace_back("tcp_inbound_pauses", std::to_string(inbound_pauses));
  out.emplace_back("tcp_churn_drops", std::to_string(churn_drops));
  out.emplace_back("tcp_churn_stalls", std::to_string(churn_stalls));
  out.emplace_back("io_threads", std::to_string(epoll_wakeups.size()));
  out.emplace_back("tcp_epoll_wakeups", std::to_string(total_epoll_wakeups()));
  return out;
}

}  // namespace snowkit
