#include "sim/chaos.hpp"

namespace snowkit {

std::size_t run_chaos(SimRuntime& sim, const ChaosOptions& opts) {
  Xoshiro256 rng(opts.seed);
  Xoshiro256 hold_rng(opts.seed ^ 0x9E3779B97F4A7C15ull);

  // Capture a random subset of all traffic.  The predicate must be
  // deterministic per message presentation, which a seeded draw per call is
  // (the call sequence itself is deterministic under a fixed seed).
  sim.hold_matching([&hold_rng, p = opts.hold_probability](NodeId, NodeId, const Message&) {
    return hold_rng.chance(p);
  });

  std::size_t decisions = 0;
  while (true) {
    ++decisions;
    const bool has_queue = sim.pending_events() > 0;
    const bool has_held = sim.held_count() > 0;
    if (!has_queue && !has_held) break;
    if (has_held && (!has_queue || rng.chance(opts.release_probability))) {
      // Release a uniformly random held message (delivered immediately).
      const auto& held = sim.held();
      sim.release(held[rng.below(held.size())].id);
    } else {
      sim.step();
    }
  }
  sim.hold_matching(nullptr);
  return decisions;
}

}  // namespace snowkit
