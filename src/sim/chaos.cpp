#include "sim/chaos.hpp"

namespace snowkit {

std::size_t run_chaos(SimRuntime& sim, const ChaosOptions& opts) {
  RandomSchedulePolicy policy(opts.seed, opts.hold_probability, opts.release_probability);
  return run_scheduled(sim, policy, /*record=*/nullptr, opts.max_decisions).decisions;
}

}  // namespace snowkit
