// Chaos scheduling: a seeded random adversary built on hold/release.
//
// Randomized delay models explore only "metric" reorderings — a message can
// overtake another by at most the delay spread.  The chaos runner instead
// captures every message with probability `hold_probability` and releases
// held messages at random points in random order, which reaches the
// unbounded reorderings the paper's adversary is allowed (any finite delay).
// Liveness is preserved: everything held is eventually released, so runs
// terminate and the W property stays checkable.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/schedule.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {

struct ChaosOptions {
  double hold_probability{0.5};
  std::uint64_t seed{1};
  /// Probability per scheduling step of releasing a random held message
  /// instead of delivering the next queued event.
  double release_probability{0.35};
  /// Liveness guard: after this many scheduling decisions the adversary is
  /// abandoned and the run drains deterministically (see run_scheduled).
  /// 0 = unlimited; the default adversary terminates on its own because
  /// everything held is eventually released.
  std::size_t max_decisions{0};
};

/// Runs the simulation to completion under chaos scheduling.
/// Returns the number of scheduling decisions taken.
std::size_t run_chaos(SimRuntime& sim, const ChaosOptions& opts);

}  // namespace snowkit
