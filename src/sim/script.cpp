#include "sim/script.hpp"

namespace snowkit::script {

Pred hold_all() {
  return [](NodeId, NodeId, const Message&) { return true; };
}

Pred to_node(NodeId to) {
  return [to](NodeId, NodeId t, const Message&) { return t == to; };
}

Pred from_node(NodeId from) {
  return [from](NodeId f, NodeId, const Message&) { return f == from; };
}

Pred between(NodeId from, NodeId to) {
  return [from, to](NodeId f, NodeId t, const Message&) { return f == from && t == to; };
}

Pred payload_is(std::string name) {
  return [name = std::move(name)](NodeId, NodeId, const Message& m) {
    return name == payload_name(m.payload);
  };
}

Pred of_txn(TxnId txn) {
  return [txn](NodeId, NodeId, const Message& m) { return m.txn == txn; };
}

Pred all_of(std::vector<Pred> preds) {
  return [preds = std::move(preds)](NodeId f, NodeId t, const Message& m) {
    for (const auto& p : preds) {
      if (!p(f, t, m)) return false;
    }
    return true;
  };
}

Pred any_of(std::vector<Pred> preds) {
  return [preds = std::move(preds)](NodeId f, NodeId t, const Message& m) {
    for (const auto& p : preds) {
      if (p(f, t, m)) return true;
    }
    return false;
  };
}

Pred negate(Pred p) {
  return [p = std::move(p)](NodeId f, NodeId t, const Message& m) { return !p(f, t, m); };
}

bool release_one(SimRuntime& sim, const Pred& p) {
  for (const auto& h : sim.held()) {
    if (p(h.from, h.to, h.msg)) return sim.release(h.id);
  }
  return false;
}

bool release_one_and_drain(SimRuntime& sim, const Pred& p) {
  if (!release_one(sim, p)) return false;
  sim.run_until_idle();
  return true;
}

}  // namespace snowkit::script
