#include "sim/sim_runtime.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "msg/codec.hpp"

namespace snowkit {

SimRuntime::SimRuntime(std::unique_ptr<DelayModel> delay)
    : delay_(delay ? std::move(delay) : make_fixed_delay(1000)) {}

void SimRuntime::start() {
  if (started_) return;
  started_ = true;
  for (NodeId id = 0; id < node_count(); ++id) start_node(id);
}

void SimRuntime::send(NodeId from, NodeId to, Message m) {
  SNOW_CHECK_MSG(to < node_count(), "send to unknown node " << to);
  if (codec_check_) {
    // Round-trip through the wire codec: protocols must not depend on any
    // state that would not survive real serialization.
    m = decode_message(encode_message(m));
  }
  const std::uint64_t msg_seq = next_msg_seq_++;
  if (observer() != nullptr) observer()->on_send(from, to, m, encoded_size(m));
  trace_.append(Action{ActionKind::Send, now_, from, to, m.txn, payload_name(m.payload), msg_seq,
                       version_count(m.payload)});

  if (hold_pred_ && hold_pred_(from, to, m)) {
    held_.push_back(HeldMessage{next_hold_++, from, to, std::move(m), msg_seq});
    return;
  }
  const TimeNs at = now_ + delay_->delay(from, to, m, now_);
  enqueue_delivery(from, to, std::move(m), msg_seq, at);
}

void SimRuntime::enqueue_delivery(NodeId from, NodeId to, Message m, std::uint64_t msg_seq,
                                  TimeNs at) {
  Event ev;
  ev.time = at;
  ev.seq = next_seq_++;
  ev.is_task = false;
  ev.from = from;
  ev.to = to;
  ev.msg = std::move(m);
  ev.msg_seq = msg_seq;
  queue_.push(std::move(ev));
}

void SimRuntime::post(NodeId node, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post to unknown node " << node);
  Event ev;
  ev.time = now_;
  ev.seq = next_seq_++;
  ev.is_task = true;
  ev.to = node;
  ev.task = std::move(fn);
  queue_.push(std::move(ev));
}

void SimRuntime::post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) {
  SNOW_CHECK_MSG(node < node_count(), "post_after to unknown node " << node);
  Event ev;
  ev.time = now_ + delay_ns;
  ev.seq = next_seq_++;
  ev.is_task = true;
  ev.to = node;
  ev.task = std::move(fn);
  queue_.push(std::move(ev));
}

TimeNs SimRuntime::now_ns() const { return now_; }

bool SimRuntime::step() {
  start();
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, then pop.  Safe
  // because we pop immediately and never touch the moved-from slot.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = std::max(now_, ev.time);
  // Events destined for a crashed node vanish silently — the model's channels
  // are reliable, but a dead automaton takes no steps.  The event is still
  // consumed so time advances deterministically.
  if (is_crashed(ev.to)) return true;
  if (ev.is_task) {
    ev.task();
    return true;
  }
  if (observer() != nullptr) observer()->on_deliver(ev.from, ev.to, ev.msg);
  trace_.append(Action{ActionKind::Recv, now_, ev.to, ev.from, ev.msg.txn,
                       payload_name(ev.msg.payload), ev.msg_seq, version_count(ev.msg.payload)});
  deliver_to(ev.from, ev.to, ev.msg);
  return true;
}

void SimRuntime::run_until_idle() {
  while (step()) {
  }
}

bool SimRuntime::run_until(const std::function<bool()>& pred) {
  start();
  while (!pred()) {
    if (!step()) return pred();
  }
  return true;
}

SimRuntime::HoldPredicate SimRuntime::hold_matching(HoldPredicate pred) {
  auto prev = std::move(hold_pred_);
  hold_pred_ = std::move(pred);
  return prev;
}

bool SimRuntime::release(HoldId id) {
  auto it = std::find_if(held_.begin(), held_.end(),
                         [id](const HeldMessage& h) { return h.id == id; });
  if (it == held_.end()) return false;
  HeldMessage h = std::move(*it);
  held_.erase(it);
  // Releasing to a crashed node consumes the message without delivery.
  if (is_crashed(h.to)) return true;
  // Deliver immediately: releasing IS the adversary's choice of "this
  // message arrives now", ahead of anything still sitting in the queue.
  start();
  if (observer() != nullptr) observer()->on_deliver(h.from, h.to, h.msg);
  trace_.append(Action{ActionKind::Recv, now_, h.to, h.from, h.msg.txn,
                       payload_name(h.msg.payload), h.msg_seq, version_count(h.msg.payload)});
  deliver_to(h.from, h.to, h.msg);
  return true;
}

std::size_t SimRuntime::release_if(const HoldPredicate& pred) {
  std::vector<HoldId> ids;
  for (const auto& h : held_) {
    if (pred(h.from, h.to, h.msg)) ids.push_back(h.id);
  }
  for (HoldId id : ids) release(id);
  return ids.size();
}

std::size_t SimRuntime::release_all() {
  return release_if([](NodeId, NodeId, const Message&) { return true; });
}

bool SimRuntime::can_crash(NodeId n) const {
  return n < node_count() && node(n).supports_crash() && !is_crashed(n);
}

bool SimRuntime::can_restart(NodeId n) const { return is_crashed(n); }

void SimRuntime::crash(NodeId n) {
  SNOW_CHECK_MSG(can_crash(n), "crash of node " << n << " not allowed");
  // A schedule may crash before its first step(); watch registrations happen
  // in on_start, so the nodes must have booted for the notice fan-out below.
  start();
  if (crashed_.size() <= n) crashed_.resize(n + 1, false);
  crashed_[n] = true;
  trace_.append(Action{ActionKind::Crash, now_, n, kInvalidNode, kInvalidTxn, "", 0, 0});
  node(n).on_crash();
  // Detection notices travel like any other message so the adversary can
  // delay or reorder them relative to in-flight protocol traffic.
  for (const auto& [watcher, watched] : watches_) {
    if (watched == n) send(n, watcher, Message{kInvalidTxn, NodeDownNotice{n}});
  }
}

void SimRuntime::restart(NodeId n) {
  SNOW_CHECK_MSG(can_restart(n), "restart of node " << n << " not allowed");
  start();
  crashed_[n] = false;
  trace_.append(Action{ActionKind::Restart, now_, n, kInvalidNode, kInvalidTxn, "", 0, 0});
  post(n, [this, n] { node(n).on_restart(); });
}

void SimRuntime::watch_node(NodeId watcher, NodeId watched) {
  // Idempotent: a restarted node re-registers its watch on every boot.
  const auto pair = std::make_pair(watcher, watched);
  if (std::find(watches_.begin(), watches_.end(), pair) != watches_.end()) return;
  watches_.push_back(pair);
}

void SimRuntime::note_invoke(NodeId client, TxnId txn) {
  trace_.append(Action{ActionKind::Invoke, now_, client, kInvalidNode, txn, "", 0, 0});
}

void SimRuntime::note_respond(NodeId client, TxnId txn) {
  trace_.append(Action{ActionKind::Respond, now_, client, kInvalidNode, txn, "", 0, 0});
}

}  // namespace snowkit
