#include "sim/trace.hpp"

#include <map>
#include <sstream>

namespace snowkit {

const char* action_kind_name(ActionKind k) {
  switch (k) {
    case ActionKind::Invoke: return "INV";
    case ActionKind::Respond: return "RESP";
    case ActionKind::Send: return "send";
    case ActionKind::Recv: return "recv";
  }
  return "?";
}

std::string to_string(const Action& a) {
  std::ostringstream oss;
  oss << action_kind_name(a.kind) << "@n" << a.node;
  if (a.kind == ActionKind::Send || a.kind == ActionKind::Recv) {
    oss << (a.kind == ActionKind::Send ? "->n" : "<-n") << a.peer << " " << a.msg;
  }
  if (a.txn != kInvalidTxn) oss << " txn=" << a.txn;
  oss << " t=" << a.time;
  return oss.str();
}

std::vector<std::size_t> Trace::at_node(NodeId node) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].node == node) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Trace::of_txn(TxnId txn) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].txn == txn) out.push_back(i);
  }
  return out;
}

std::string Trace::to_text() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    oss << i << ": " << to_string(actions_[i]) << "\n";
  }
  return oss.str();
}

bool well_formed(const Trace& t, std::string* why) {
  std::map<std::uint64_t, std::size_t> sends;  // msg_seq -> index
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (a.kind == ActionKind::Send) {
      sends[a.msg_seq] = i;
    } else if (a.kind == ActionKind::Recv) {
      auto it = sends.find(a.msg_seq);
      if (it == sends.end()) {
        if (why) *why = "recv at index " + std::to_string(i) + " has no earlier send";
        return false;
      }
      const Action& s = t[it->second];
      if (s.node != a.peer || s.peer != a.node || s.msg != a.msg) {
        if (why) *why = "recv at index " + std::to_string(i) + " mismatches its send";
        return false;
      }
    }
  }
  return true;
}

bool indistinguishable_at(const Trace& a, const Trace& b, NodeId node) {
  auto ia = a.at_node(node);
  auto ib = b.at_node(node);
  if (ia.size() != ib.size()) return false;
  for (std::size_t i = 0; i < ia.size(); ++i) {
    const Action& x = a[ia[i]];
    const Action& y = b[ib[i]];
    if (x.kind != y.kind || x.peer != y.peer || x.txn != y.txn || x.msg != y.msg) return false;
  }
  return true;
}

}  // namespace snowkit
