#include "sim/trace.hpp"

#include <map>
#include <sstream>

#include "common/buffer.hpp"

namespace snowkit {

const char* action_kind_name(ActionKind k) {
  switch (k) {
    case ActionKind::Invoke: return "INV";
    case ActionKind::Respond: return "RESP";
    case ActionKind::Send: return "send";
    case ActionKind::Recv: return "recv";
    case ActionKind::Crash: return "CRASH";
    case ActionKind::Restart: return "RESTART";
  }
  return "?";
}

std::string to_string(const Action& a) {
  std::ostringstream oss;
  oss << action_kind_name(a.kind) << "@n" << a.node;
  if (a.kind == ActionKind::Send || a.kind == ActionKind::Recv) {
    oss << (a.kind == ActionKind::Send ? "->n" : "<-n") << a.peer << " " << a.msg;
  }
  if (a.txn != kInvalidTxn) oss << " txn=" << a.txn;
  oss << " t=" << a.time;
  return oss.str();
}

std::vector<std::size_t> Trace::at_node(NodeId node) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].node == node) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Trace::of_txn(TxnId txn) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].txn == txn) out.push_back(i);
  }
  return out;
}

std::string Trace::to_text() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    oss << i << ": " << to_string(actions_[i]) << "\n";
  }
  return oss.str();
}

std::vector<std::uint8_t> encode_trace(const Trace& t) {
  BufWriter w;
  w.vec(t.actions(), [](BufWriter& w2, const Action& a) {
    w2.u8(static_cast<std::uint8_t>(a.kind));
    w2.u64(a.time);
    w2.u32(a.node);
    w2.u32(a.peer);
    w2.u64(a.txn);
    w2.str(a.msg);
    w2.u64(a.msg_seq);
    w2.u32(static_cast<std::uint32_t>(a.versions));
  });
  return w.take();
}

Trace decode_trace(const std::vector<std::uint8_t>& bytes) {
  // Trusted in-process bytes (roundtrips of our own encode_trace): keep the
  // historical abort-on-corruption contract now that BufReader throws.
  // Untrusted on-disk trace FILES go through fuzz/trace_io's throwing
  // reader, not this function.
  try {
    BufReader r(bytes);
    Trace t;
    const auto actions = r.vec<Action>([](BufReader& r2) {
      Action a;
      a.kind = static_cast<ActionKind>(r2.u8());
      a.time = r2.u64();
      a.node = r2.u32();
      a.peer = r2.u32();
      a.txn = r2.u64();
      a.msg = r2.str();
      a.msg_seq = r2.u64();
      a.versions = static_cast<int>(r2.u32());
      return a;
    });
    for (const Action& a : actions) t.append(a);
    return t;
  } catch (const CodecError& e) {
    SNOW_UNREACHABLE("decode_trace on trusted bytes failed: " + std::string(e.what()));
  }
}

std::uint64_t trace_fingerprint(const Trace& t) {
  const auto bytes = encode_trace(t);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

bool well_formed(const Trace& t, std::string* why) {
  std::map<std::uint64_t, std::size_t> sends;  // msg_seq -> index
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (a.kind == ActionKind::Send) {
      sends[a.msg_seq] = i;
    } else if (a.kind == ActionKind::Recv) {
      auto it = sends.find(a.msg_seq);
      if (it == sends.end()) {
        if (why) *why = "recv at index " + std::to_string(i) + " has no earlier send";
        return false;
      }
      const Action& s = t[it->second];
      if (s.node != a.peer || s.peer != a.node || s.msg != a.msg) {
        if (why) *why = "recv at index " + std::to_string(i) + " mismatches its send";
        return false;
      }
    }
  }
  return true;
}

bool indistinguishable_at(const Trace& a, const Trace& b, NodeId node) {
  auto ia = a.at_node(node);
  auto ib = b.at_node(node);
  if (ia.size() != ib.size()) return false;
  for (std::size_t i = 0; i < ia.size(); ++i) {
    const Action& x = a[ia[i]];
    const Action& y = b[ib[i]];
    if (x.kind != y.kind || x.peer != y.peer || x.txn != y.txn || x.msg != y.msg) return false;
  }
  return true;
}

}  // namespace snowkit
