// Pluggable schedule exploration over SimRuntime's hold/release hooks.
//
// A SchedulePolicy makes the two adversary choices the simulator exposes:
// whether to capture a freshly sent message (should_hold) and what to do at
// each scheduling step (deliver the next queued event, or release one held
// message).  run_scheduled() drives a simulation to quiescence under a
// policy, optionally recording every choice into a ScheduleLog — a compact,
// serializable decision stream.  Replaying a recorded log over the same
// initial conditions (protocol, workload, delay model) reproduces the run
// byte-identically, which is the contract the fuzzer's record/replay and
// shrink machinery (src/fuzz) is built on.
//
// RandomSchedulePolicy reproduces the chaos adversary (sim/chaos.hpp) with
// the exact RNG call order of the original run_chaos loop, so chaos seeds
// keep their meaning.  RecordedSchedulePolicy replays a log; if the log no
// longer matches the run (e.g. after the workload was shrunk), the runner
// falls back to a deterministic drain that preserves liveness.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer.hpp"
#include "common/rng.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit {

enum class ScheduleDecisionKind : std::uint8_t {
  kStep = 0,     ///< deliver the next queued event.
  kRelease = 1,  ///< release held()[held_index] immediately.
  kCrash = 2,    ///< crash node `held_index` (field reused as a NodeId).
  kRestart = 3,  ///< restart node `held_index` (field reused as a NodeId).
  /// Annotation only: the adaptive coordinator switched an object's fetch
  /// mode at this point in the run (held_index packs (obj << 1) | mode).
  /// Recorded via SimRuntime's switch sink, never applied by the runner —
  /// the deterministic re-execution re-emits the identical entries itself,
  /// so recorded logs still replay byte-for-byte and shrink through ddmin
  /// with the switch history visible in the minimized repro.
  kSwitch = 4,
};

struct ScheduleDecision {
  ScheduleDecisionKind kind{ScheduleDecisionKind::kStep};
  /// Index into sim.held() for kRelease; the victim NodeId for
  /// kCrash/kRestart; (obj << 1) | mode for kSwitch (reusing the field keeps
  /// the log codec unchanged).
  std::uint32_t held_index{0};

  friend bool operator==(const ScheduleDecision&, const ScheduleDecision&) = default;
};

/// The complete record of one scheduled run: per-send hold choices (in send
/// presentation order) plus the decision sequence, including any
/// deterministic drain decisions taken after the policy was exhausted.
struct ScheduleLog {
  std::vector<std::uint8_t> holds;  ///< 0/1 per SimRuntime::send presentation.
  std::vector<ScheduleDecision> decisions;

  friend bool operator==(const ScheduleLog&, const ScheduleLog&) = default;
};

void encode_schedule_log(const ScheduleLog& log, BufWriter& w);

/// Generic over the reader so callers choose the failure mode: BufReader
/// (throws CodecError, which trusted in-process entry points turn into an
/// abort) or the fuzz trace file's throwing reader (std::invalid_argument,
/// for untrusted on-disk artifacts).
template <typename Reader>
ScheduleLog decode_schedule_log(Reader& r) {
  ScheduleLog log;
  log.holds = r.template vec<std::uint8_t>([](Reader& r2) { return r2.u8(); });
  log.decisions = r.template vec<ScheduleDecision>([](Reader& r2) {
    ScheduleDecision d;
    d.kind = static_cast<ScheduleDecisionKind>(r2.u8());
    d.held_index = r2.u32();
    return d;
  });
  return log;
}

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Called once per message presentation (SimRuntime::send); true = capture.
  virtual bool should_hold(NodeId from, NodeId to, const Message& m) = 0;

  /// Next decision given current queue/held occupancy.  std::nullopt means
  /// the policy is exhausted: the runner drains deterministically from there.
  virtual std::optional<ScheduleDecision> next(std::size_t pending_events,
                                               std::size_t held_count) = 0;
};

/// The chaos adversary as a policy (same knobs & RNG streams as run_chaos).
class RandomSchedulePolicy final : public SchedulePolicy {
 public:
  RandomSchedulePolicy(std::uint64_t seed, double hold_probability, double release_probability)
      : rng_(seed), hold_rng_(seed ^ 0x9E3779B97F4A7C15ull), hold_p_(hold_probability),
        release_p_(release_probability) {}

  bool should_hold(NodeId, NodeId, const Message&) override { return hold_rng_.chance(hold_p_); }

  std::optional<ScheduleDecision> next(std::size_t pending_events,
                                       std::size_t held_count) override {
    // Short-circuit order matters: it keeps the RNG call sequence identical
    // to the original run_chaos loop, preserving historical seed behaviour.
    if (held_count > 0 && (pending_events == 0 || rng_.chance(release_p_))) {
      return ScheduleDecision{ScheduleDecisionKind::kRelease,
                              static_cast<std::uint32_t>(rng_.below(held_count))};
    }
    return ScheduleDecision{ScheduleDecisionKind::kStep, 0};
  }

 private:
  Xoshiro256 rng_;
  Xoshiro256 hold_rng_;
  double hold_p_;
  double release_p_;
};

/// Replays a recorded ScheduleLog.  Exhausting either stream (holds or
/// decisions) ends the policy; the runner then drains deterministically.
class RecordedSchedulePolicy final : public SchedulePolicy {
 public:
  explicit RecordedSchedulePolicy(ScheduleLog log) : log_(std::move(log)) {}

  bool should_hold(NodeId, NodeId, const Message&) override {
    if (hold_pos_ >= log_.holds.size()) return false;
    return log_.holds[hold_pos_++] != 0;
  }

  std::optional<ScheduleDecision> next(std::size_t, std::size_t) override {
    if (decision_pos_ >= log_.decisions.size()) return std::nullopt;
    return log_.decisions[decision_pos_++];
  }

 private:
  ScheduleLog log_;
  std::size_t hold_pos_{0};
  std::size_t decision_pos_{0};
};

/// Injects one crash (and optionally one restart) into any inner policy's
/// decision stream: at decision `crash_at` it emits {kCrash, victim}; at
/// `restart_at` (if non-zero and later) it emits {kRestart, victim}; every
/// other call delegates to the inner policy.  Because the emitted decisions
/// are recorded in the ScheduleLog like any others, a recorded crash
/// schedule replays byte-identically through RecordedSchedulePolicy with no
/// wrapper at all.
class CrashRestartPolicy final : public SchedulePolicy {
 public:
  CrashRestartPolicy(SchedulePolicy& inner, NodeId victim, std::size_t crash_at,
                     std::size_t restart_at = 0)
      : inner_(inner), victim_(victim), crash_at_(crash_at), restart_at_(restart_at) {}

  bool should_hold(NodeId from, NodeId to, const Message& m) override {
    return inner_.should_hold(from, to, m);
  }

  std::optional<ScheduleDecision> next(std::size_t pending_events,
                                       std::size_t held_count) override {
    const std::size_t i = calls_++;
    if (i == crash_at_) {
      return ScheduleDecision{ScheduleDecisionKind::kCrash, static_cast<std::uint32_t>(victim_)};
    }
    if (restart_at_ != 0 && i == restart_at_) {
      return ScheduleDecision{ScheduleDecisionKind::kRestart,
                              static_cast<std::uint32_t>(victim_)};
    }
    return inner_.next(pending_events, held_count);
  }

 private:
  SchedulePolicy& inner_;
  NodeId victim_;
  std::size_t crash_at_;
  std::size_t restart_at_;
  std::size_t calls_{0};
};

struct ScheduleRunStats {
  std::size_t decisions{0};
  /// True if the runner stopped consulting the policy before quiescence —
  /// max_decisions was hit, or the policy produced an inapplicable decision
  /// (stale held index / step on an empty queue), or it ran out mid-run.
  bool guard_tripped{false};
};

/// Drives `sim` to quiescence (empty queue AND nothing held) under `policy`.
///
/// If `record` is non-null, every hold choice and every applied decision —
/// including deterministic drain decisions — is appended, so replaying the
/// log reproduces the run exactly.  `max_decisions` (0 = unlimited) is the
/// liveness guard: once that many decisions have been applied the policy is
/// abandoned, newly sent messages are no longer held, and the run drains
/// deterministically (release the oldest held message until none remain,
/// then step), so termination is guaranteed for any policy.
ScheduleRunStats run_scheduled(SimRuntime& sim, SchedulePolicy& policy,
                               ScheduleLog* record = nullptr, std::size_t max_decisions = 0);

}  // namespace snowkit
