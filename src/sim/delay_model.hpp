// Network delay models for the simulator.
//
// The paper's network is reliable but fully asynchronous: "any message sent
// will eventually arrive, uncorrupted", with arbitrary and unpredictable
// delay (§2).  A DelayModel samples a finite delay per message; adversarial
// control beyond delays (holding, targeted reordering) lives in
// sim/script.hpp.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"

namespace snowkit {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual TimeNs delay(NodeId from, NodeId to, const Message& m, TimeNs now) = 0;
};

/// Constant per-hop delay (the baseline "one round trip == 2*d" model).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(TimeNs d) : d_(d) {}
  TimeNs delay(NodeId, NodeId, const Message&, TimeNs) override { return d_; }

 private:
  TimeNs d_;
};

/// Uniform random delay in [lo, hi]; seeded, hence replayable.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(TimeNs lo, TimeNs hi, std::uint64_t seed) : lo_(lo), hi_(hi), rng_(seed) {}

  TimeNs delay(NodeId, NodeId, const Message&, TimeNs) override {
    return lo_ + rng_.below(hi_ - lo_ + 1);
  }

 private:
  TimeNs lo_;
  TimeNs hi_;
  Xoshiro256 rng_;
};

/// Heavy-tailed delay: mostly `base`, occasionally up to `base * spike`.
/// Models the stragglers that motivate latency-optimal READ transactions.
class SpikyDelay final : public DelayModel {
 public:
  SpikyDelay(TimeNs base, std::uint32_t spike, double p_spike, std::uint64_t seed)
      : base_(base), spike_(spike), p_spike_(p_spike), rng_(seed) {}

  TimeNs delay(NodeId, NodeId, const Message&, TimeNs) override {
    TimeNs d = base_ / 2 + rng_.below(base_);
    if (rng_.chance(p_spike_)) d *= (1 + rng_.below(spike_));
    return d;
  }

 private:
  TimeNs base_;
  std::uint32_t spike_;
  double p_spike_;
  Xoshiro256 rng_;
};

std::unique_ptr<DelayModel> make_fixed_delay(TimeNs d);
std::unique_ptr<DelayModel> make_uniform_delay(TimeNs lo, TimeNs hi, std::uint64_t seed);
std::unique_ptr<DelayModel> make_spiky_delay(TimeNs base, std::uint32_t spike, double p_spike,
                                             std::uint64_t seed);

}  // namespace snowkit
