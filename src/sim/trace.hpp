// Action traces: the simulator's record of an execution.
//
// The paper reasons about executions as sequences of actions at I/O automata
// (send/recv at clients and servers, plus INV/RESP of transactions).  The
// simulator records exactly those actions, so the theory machinery
// (src/theory) can identify the execution fragments I_i, F_{i,j}, E_i of §3
// and perform the Lemma-2 fragment commutes mechanically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"

namespace snowkit {

enum class ActionKind : std::uint8_t {
  Invoke,   ///< INV(T) at a client.
  Respond,  ///< RESP(T) at a client.
  Send,     ///< send(m)_{node,peer} at `node`.
  Recv,     ///< recv(m)_{peer,node} at `node`.
  Crash,    ///< `node` crashes (volatile state lost; deliveries dropped).
  Restart,  ///< `node` restarts (recovers from its WAL, rejoins as backup).
};

const char* action_kind_name(ActionKind k);

/// One action of an execution.  `node` is the automaton at which the action
/// occurs; for Send/Recv, `peer` is the other endpoint.
struct Action {
  ActionKind kind{ActionKind::Invoke};
  TimeNs time{0};
  NodeId node{kInvalidNode};
  NodeId peer{kInvalidNode};
  TxnId txn{kInvalidTxn};
  std::string msg;     ///< payload name for Send/Recv ("" otherwise).
  std::uint64_t msg_seq{0};  ///< matches a Send to its Recv (0 for non-msg).
  int versions{0};     ///< object versions carried (read responses only).

  bool is_input() const { return kind == ActionKind::Recv || kind == ActionKind::Invoke; }
  bool is_external() const { return true; }  // all recorded actions are external
};

std::string to_string(const Action& a);

/// An execution trace: the sequence of external actions, in order.
class Trace {
 public:
  void append(Action a) { actions_.push_back(std::move(a)); }
  const std::vector<Action>& actions() const { return actions_; }
  std::size_t size() const { return actions_.size(); }
  const Action& operator[](std::size_t i) const { return actions_[i]; }
  void clear() { actions_.clear(); }

  /// Projection onto one automaton: indices of actions occurring at `node`.
  std::vector<std::size_t> at_node(NodeId node) const;

  /// All actions belonging to a transaction.
  std::vector<std::size_t> of_txn(TxnId txn) const;

  /// Index of the first action matching a predicate, if any.
  template <typename Pred>
  std::optional<std::size_t> find(Pred&& pred, std::size_t from = 0) const {
    for (std::size_t i = from; i < actions_.size(); ++i) {
      if (pred(actions_[i])) return i;
    }
    return std::nullopt;
  }

  std::string to_text() const;

 private:
  std::vector<Action> actions_;
};

/// Binary trace codec (same Buffer machinery as the wire codec).  Two runs
/// are byte-identical executions iff their encoded traces compare equal —
/// the determinism contract the fuzzer's record/replay machinery pins.
std::vector<std::uint8_t> encode_trace(const Trace& t);
Trace decode_trace(const std::vector<std::uint8_t>& bytes);

/// FNV-1a fingerprint of encode_trace(t); stored in fuzz trace files so a
/// replay can assert byte-identical reproduction without shipping the trace.
std::uint64_t trace_fingerprint(const Trace& t);

/// True if `t` is a well-formed execution: every Recv has a matching earlier
/// Send with the same msg_seq, endpoints, and payload name.
bool well_formed(const Trace& t, std::string* why = nullptr);

/// True if the two traces are indistinguishable at `node` (same subsequence
/// of actions at that automaton, ignoring global positions and times) —
/// the ~ relation of Appendix A restricted to recorded actions.
bool indistinguishable_at(const Trace& a, const Trace& b, NodeId node);

}  // namespace snowkit
