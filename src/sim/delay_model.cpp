#include "sim/delay_model.hpp"

namespace snowkit {

std::unique_ptr<DelayModel> make_fixed_delay(TimeNs d) { return std::make_unique<FixedDelay>(d); }

std::unique_ptr<DelayModel> make_uniform_delay(TimeNs lo, TimeNs hi, std::uint64_t seed) {
  return std::make_unique<UniformDelay>(lo, hi, seed);
}

std::unique_ptr<DelayModel> make_spiky_delay(TimeNs base, std::uint32_t spike, double p_spike,
                                             std::uint64_t seed) {
  return std::make_unique<SpikyDelay>(base, spike, p_spike, seed);
}

}  // namespace snowkit
