// SimRuntime: deterministic discrete-event simulation of the paper's
// asynchronous message-passing model.
//
// Degrees of freedom exposed to tests/benches, matching what the paper's
// adversary may do:
//   * per-message delays (DelayModel), seeded and replayable;
//   * holding messages indefinitely and releasing them in any order
//     (hold_matching / release), which is how the Fig. 3/4/5 executions are
//     scripted;
//   * step-by-step execution with full action traces (sim/trace.hpp).
//
// Delivery is reliable: a held message stays deliverable forever, and
// run_until_idle() refuses to finish with unreleased messages unless told to.
#pragma once

#include <functional>
#include <queue>

#include "runtime/runtime.hpp"
#include "sim/delay_model.hpp"
#include "sim/trace.hpp"

namespace snowkit {

using HoldId = std::uint64_t;

class SimRuntime final : public Runtime {
 public:
  /// Default delay model is FixedDelay(1000ns).
  explicit SimRuntime(std::unique_ptr<DelayModel> delay = nullptr);

  // --- Runtime interface ---------------------------------------------------
  void send(NodeId from, NodeId to, Message m) override;
  void post(NodeId node, std::function<void()> fn) override;
  void post_after(NodeId node, TimeNs delay_ns, std::function<void()> fn) override;
  TimeNs now_ns() const override;

  // --- execution control ---------------------------------------------------

  /// Calls on_start on all nodes (idempotent; done lazily by step too).
  void start();

  /// Delivers the next eligible event.  Returns false if queue is empty.
  bool step();

  /// Steps until the event queue is empty (held messages do not count).
  void run_until_idle();

  /// Steps until `pred()` holds or the queue empties; returns pred().
  bool run_until(const std::function<bool()>& pred);

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t held_count() const { return held_.size(); }

  // --- adversarial message control -----------------------------------------

  using HoldPredicate = std::function<bool(NodeId from, NodeId to, const Message&)>;

  /// Installs a hold predicate: matching messages are captured instead of
  /// enqueued.  Pass nullptr to stop holding new messages (already-held ones
  /// stay held).  Returns the previous predicate.
  HoldPredicate hold_matching(HoldPredicate pred);

  struct HeldMessage {
    HoldId id{0};
    NodeId from{kInvalidNode};
    NodeId to{kInvalidNode};
    Message msg;
    std::uint64_t msg_seq{0};
  };

  const std::vector<HeldMessage>& held() const { return held_; }

  /// Releases one held message, delivering it IMMEDIATELY (before anything
  /// still in the event queue) — the adversary's "this arrives now".
  bool release(HoldId id);

  /// Releases all held messages matching `pred`; returns how many.
  std::size_t release_if(const HoldPredicate& pred);

  /// Releases everything held.
  std::size_t release_all();

  // --- crash/restart (replicated protocols only) ----------------------------

  /// True if `n` exists, opted in via Node::supports_crash(), and is alive.
  bool can_crash(NodeId n) const;
  /// True if `n` is currently crashed.
  bool can_restart(NodeId n) const;

  /// Crashes `n`: records a Crash action, runs Node::on_crash() (volatile
  /// state dies; the Node object itself survives, keeping any in-memory WAL),
  /// and sends a NodeDownNotice to every registered watcher.  The notices go
  /// through the normal send path, so they are traced, delayed, and holdable
  /// like any other message — the adversary can reorder detection.
  /// While crashed, every delivery and task destined for `n` is dropped.
  void crash(NodeId n);

  /// Restarts `n`: records a Restart action and posts Node::on_restart() to
  /// its executor (recovery runs as an ordinary scheduled task).
  void restart(NodeId n);

  /// Registers `watcher` for NodeDownNotice when crash(watched) runs.
  void watch_node(NodeId watcher, NodeId watched) override;

  // --- trace & transaction bookkeeping --------------------------------------

  const Trace& trace() const { return trace_; }
  Trace& mutable_trace() { return trace_; }

  /// Records INV/RESP actions in the trace.
  void note_invoke(NodeId client, TxnId txn) override;
  void note_respond(NodeId client, TxnId txn) override;

  /// Forwards adaptive mode switches to the installed sink (run_scheduled
  /// installs one while recording a ScheduleLog, so switch decisions land in
  /// repro logs).  No sink = dropped; switches never enter the trace, which
  /// keeps trace fingerprints comparable across protocols.
  void note_switch(ObjectId obj, int mode) override {
    if (switch_sink_) switch_sink_(obj, mode);
  }
  using SwitchSink = std::function<void(ObjectId, int)>;
  void set_switch_sink(SwitchSink sink) { switch_sink_ = std::move(sink); }

  /// When enabled, every sent message is encoded+decoded through the wire
  /// codec before delivery, guaranteeing protocols live on serializable state.
  void set_codec_check(bool on) { codec_check_ = on; }

 private:
  struct Event {
    TimeNs time{0};
    std::uint64_t seq{0};
    // Exactly one of msg / task is active.
    bool is_task{false};
    NodeId from{kInvalidNode};
    NodeId to{kInvalidNode};
    Message msg;
    std::uint64_t msg_seq{0};
    std::function<void()> task;
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };

  void enqueue_delivery(NodeId from, NodeId to, Message m, std::uint64_t msg_seq, TimeNs at);

  bool is_crashed(NodeId n) const {
    return n < crashed_.size() && crashed_[n];
  }

  std::unique_ptr<DelayModel> delay_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<HeldMessage> held_;
  std::vector<bool> crashed_;                         // indexed by NodeId
  std::vector<std::pair<NodeId, NodeId>> watches_;    // (watcher, watched)
  HoldPredicate hold_pred_;
  SwitchSink switch_sink_;
  Trace trace_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_hold_ = 1;
  std::uint64_t next_msg_seq_ = 1;
  bool started_ = false;
  bool codec_check_ = true;
};

}  // namespace snowkit
