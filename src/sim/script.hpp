// Predicate combinators for scripting adversarial schedules.
//
// The impossibility figures are produced by holding specific messages and
// releasing them in a chosen order; these helpers make those scripts read
// like the paper's prose ("delay m_y^{r1} until s_x has responded...").
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "sim/sim_runtime.hpp"

namespace snowkit::script {

using Pred = SimRuntime::HoldPredicate;

Pred hold_all();
Pred to_node(NodeId to);
Pred from_node(NodeId from);
Pred between(NodeId from, NodeId to);
Pred payload_is(std::string name);
Pred of_txn(TxnId txn);
Pred all_of(std::vector<Pred> preds);
Pred any_of(std::vector<Pred> preds);
Pred negate(Pred p);

/// Releases the first held message matching `p`; returns false if none held.
bool release_one(SimRuntime& sim, const Pred& p);

/// Releases one matching message and runs the sim until idle (other messages
/// may still be held).  Returns false if nothing matched.
bool release_one_and_drain(SimRuntime& sim, const Pred& p);

}  // namespace snowkit::script
