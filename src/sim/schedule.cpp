#include "sim/schedule.hpp"

namespace snowkit {

void encode_schedule_log(const ScheduleLog& log, BufWriter& w) {
  w.vec(log.holds, [](BufWriter& w2, std::uint8_t h) { w2.u8(h); });
  w.vec(log.decisions, [](BufWriter& w2, const ScheduleDecision& d) {
    w2.u8(static_cast<std::uint8_t>(d.kind));
    w2.u32(d.held_index);
  });
}

ScheduleRunStats run_scheduled(SimRuntime& sim, SchedulePolicy& policy, ScheduleLog* record,
                               std::size_t max_decisions) {
  ScheduleRunStats stats;
  bool guard = false;  // once set, the policy is out of the loop for good
  auto prev = sim.hold_matching([&guard, &policy, record](NodeId from, NodeId to,
                                                          const Message& m) {
    const bool hold = !guard && policy.should_hold(from, to, m);
    if (record != nullptr) record->holds.push_back(hold ? 1 : 0);
    return hold;
  });
  // Adaptive mode switches are recorded as kSwitch annotations at their
  // position in the decision stream.  They are a deterministic CONSEQUENCE
  // of the delivery order, not a choice: replay skips them when the policy
  // yields one (below) and the re-execution re-emits the identical entries
  // here, so a replayed record matches the original byte-for-byte.
  if (record != nullptr) {
    sim.set_switch_sink([record](ObjectId obj, int mode) {
      record->decisions.push_back(
          {ScheduleDecisionKind::kSwitch,
           (static_cast<std::uint32_t>(obj) << 1) | static_cast<std::uint32_t>(mode & 1)});
    });
  }

  while (sim.pending_events() > 0 || sim.held_count() > 0) {
    if (!guard && max_decisions != 0 && stats.decisions >= max_decisions) {
      guard = true;
      stats.guard_tripped = true;
    }
    std::optional<ScheduleDecision> d;
    if (!guard) {
      d = policy.next(sim.pending_events(), sim.held_count());
      if (d && d->kind == ScheduleDecisionKind::kSwitch) {
        // Annotation from a recorded log: consume without applying,
        // recording or counting — the live sink re-emits it.
        continue;
      }
      if (!d) {
        // The policy ran out before quiescence (e.g. a truncated recorded
        // log): that IS a trip — the header's contract for guard_tripped.
        guard = true;
        stats.guard_tripped = true;
      }
    }
    if (guard) {
      // Deterministic drain preserving liveness: flush held messages oldest
      // first (each release may trigger new sends, which are no longer
      // held), then step the queue dry.
      d = sim.held_count() > 0 ? ScheduleDecision{ScheduleDecisionKind::kRelease, 0}
                               : ScheduleDecision{ScheduleDecisionKind::kStep, 0};
    } else if ((d->kind == ScheduleDecisionKind::kRelease && d->held_index >= sim.held_count()) ||
               (d->kind == ScheduleDecisionKind::kStep && sim.pending_events() == 0) ||
               (d->kind == ScheduleDecisionKind::kCrash && !sim.can_crash(d->held_index)) ||
               (d->kind == ScheduleDecisionKind::kRestart && !sim.can_restart(d->held_index))) {
      // Inapplicable decision (e.g. a recorded log replayed over a shrunk
      // workload, or a crash aimed at a node that never opted in): abandon
      // the policy rather than guessing at intent.
      guard = true;
      stats.guard_tripped = true;
      continue;
    }
    if (record != nullptr) record->decisions.push_back(*d);
    ++stats.decisions;
    switch (d->kind) {
      case ScheduleDecisionKind::kRelease: sim.release(sim.held()[d->held_index].id); break;
      case ScheduleDecisionKind::kCrash: sim.crash(d->held_index); break;
      case ScheduleDecisionKind::kRestart: sim.restart(d->held_index); break;
      case ScheduleDecisionKind::kStep: sim.step(); break;
      case ScheduleDecisionKind::kSwitch: break;  // unreachable: skipped above
    }
  }

  sim.set_switch_sink(nullptr);
  sim.hold_matching(std::move(prev));
  return stats;
}

}  // namespace snowkit
