// Core identifier and value types shared by every snowkit module.
//
// The paper's model (§2, §7.1) has k read/write objects, each maintained by a
// separate server process, plus read-clients and write-clients.  We mirror
// that: an ObjectId doubles as the index of the server that owns the object,
// and NodeId identifies any process (client or server) in a runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace snowkit {

/// Identifies a process (client or server) within one Runtime instance.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifies one of the k sharded objects; object i lives on server i.
using ObjectId = std::uint32_t;

/// Object values.  The paper's domains V_i are abstract; 64-bit integers are
/// enough to carry unique version payloads for checking.
using Value = std::int64_t;
inline constexpr Value kInitialValue = 0;

/// Transaction identifiers, unique per history.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxn = std::numeric_limits<TxnId>::max();

/// Tags t in N used by the Lemma-20 serialization order of algorithms A/B/C.
using Tag = std::uint64_t;
inline constexpr Tag kInvalidTag = std::numeric_limits<Tag>::max();

/// Simulated or wall-clock time in nanoseconds.
using TimeNs = std::uint64_t;

/// A WRITE-transaction key kappa = (z, w): the writer's z-th transaction
/// (§5.2).  Keys uniquely identify WRITE transactions across writers.
struct WriteKey {
  std::uint64_t seq{0};      ///< z: per-writer transaction counter.
  NodeId writer{kInvalidNode};  ///< w: writer id (kInvalidNode = placeholder w0).

  friend bool operator==(const WriteKey&, const WriteKey&) = default;
  friend auto operator<=>(const WriteKey&, const WriteKey&) = default;
};

/// kappa_0 = (0, w0): the placeholder key for the initial version (§5.2).
inline constexpr WriteKey kInitialKey{0, kInvalidNode};

inline std::string to_string(const WriteKey& k) {
  if (k == kInitialKey) return "k0";
  return "(" + std::to_string(k.seq) + ",w" + std::to_string(k.writer) + ")";
}

}  // namespace snowkit

template <>
struct std::hash<snowkit::WriteKey> {
  std::size_t operator()(const snowkit::WriteKey& k) const noexcept {
    std::uint64_t h = k.seq * 0x9E3779B97F4A7C15ull;
    h ^= (static_cast<std::uint64_t>(k.writer) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
    return static_cast<std::size_t>(h);
  }
};
