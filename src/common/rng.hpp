// Deterministic, seedable PRNGs.  Every randomized component (delay models,
// workloads, random schedulers) takes an explicit seed so that any run —
// including a failing property test — can be replayed bit-for-bit.
#pragma once

#include <cstdint>

namespace snowkit {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for everything else.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      std::uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4]{};
};

}  // namespace snowkit
