// Bounds-checked reader over untrusted on-disk bytes.
//
// Where BufReader's CodecError marks an in-process invariant violation
// (trusted entry points catch it and abort), a malformed FILE is expected
// input: repro traces come off disks and CI artifacts, audit chunks survive
// crashes and partial writes.  Every malformation throws
// std::invalid_argument carrying a caller-supplied context prefix, so CLIs
// report "<what>: truncated file" instead of dying.  Shared by the fuzz
// trace codec (fuzz/trace_io.cpp) and the audit chunk loader (audit/chunk).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace snowkit {

class UntrustedReader {
 public:
  /// `context` prefixes every error message (e.g. "fuzz trace").
  UntrustedReader(const std::vector<std::uint8_t>& buf, std::string context)
      : buf_(buf), context_(std::move(context)) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof v); return v; }

  /// LEB128 varint (mirrors BufReader::uv).
  std::uint64_t uv() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    fail("varint longer than 10 bytes");
  }

  /// ZigZag-mapped varint (mirrors BufReader::zz).
  std::int64_t zz() {
    const std::uint64_t u = uv();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_elem) {
    const std::uint32_t n = u32();
    need(n);  // every element is at least one byte: rejects absurd counts early
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(read_elem(*this));
    return v;
  }

  /// Varint-length-prefixed vector (the compact sibling of vec()).
  template <typename T, typename Fn>
  std::vector<T> cvec(Fn&& read_elem) {
    const std::uint64_t n = uv();
    need(n);
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_elem(*this));
    return v;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument(context_ + ": " + why);
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > buf_.size()) fail("truncated file");
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::vector<std::uint8_t>& buf_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace snowkit
