// Internal invariant checks.  These fire in all build types: the library is a
// research artifact whose value is correctness evidence, so we never compile
// the checks out.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace snowkit::detail {

[[noreturn]] inline void check_failed(const char* file, int line, const char* expr,
                                      const std::string& msg) {
  std::fprintf(stderr, "SNOWKIT CHECK FAILED at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace snowkit::detail

#define SNOW_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::snowkit::detail::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define SNOW_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream snow_oss_;                                        \
      snow_oss_ << msg;                                                    \
      ::snowkit::detail::check_failed(__FILE__, __LINE__, #expr, snow_oss_.str()); \
    }                                                                      \
  } while (0)

#define SNOW_UNREACHABLE(msg) \
  ::snowkit::detail::check_failed(__FILE__, __LINE__, "unreachable", msg)
