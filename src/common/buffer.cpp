// buffer.hpp is header-only; this TU exists so the target has a stable anchor
// for the module and a place for future out-of-line helpers.
#include "common/buffer.hpp"

namespace snowkit {

static_assert(sizeof(std::uint64_t) == 8, "snowkit assumes 64-bit integer layout");

}  // namespace snowkit
