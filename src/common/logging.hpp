// Minimal thread-safe leveled logger.  Default level is Warn so that tests
// and benches stay quiet; demos raise it to trace executions.
#pragma once

#include <sstream>
#include <string>

namespace snowkit {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace snowkit

#define SNOW_LOG(level, expr)                                        \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::snowkit::log_level())) { \
      std::ostringstream snow_log_oss_;                              \
      snow_log_oss_ << expr;                                         \
      ::snowkit::detail::log_line(level, snow_log_oss_.str());       \
    }                                                                \
  } while (0)

#define SNOW_TRACE(expr) SNOW_LOG(::snowkit::LogLevel::Trace, expr)
#define SNOW_DEBUG(expr) SNOW_LOG(::snowkit::LogLevel::Debug, expr)
#define SNOW_INFO(expr) SNOW_LOG(::snowkit::LogLevel::Info, expr)
#define SNOW_WARN(expr) SNOW_LOG(::snowkit::LogLevel::Warn, expr)
#define SNOW_ERROR(expr) SNOW_LOG(::snowkit::LogLevel::Error, expr)
