// Byte-buffer reader/writer used by the wire codec (src/msg/codec.cpp).
//
// The threaded runtime serializes every message through this codec so that
// protocols exchange bytes, not shared pointers — the closest in-process
// equivalent of the gRPC deployment the reproduction hint calls for.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace snowkit {

class BufWriter {
 public:
  /// Writes into an internally owned buffer (retrieve with take()).
  BufWriter() : buf_(&own_) {}

  /// Writes into `out`, clearing it first but KEEPING its capacity — the
  /// ThreadRuntime fast path encodes every message into a recycled buffer,
  /// so steady-state sends allocate nothing.
  explicit BufWriter(std::vector<std::uint8_t>& out) : buf_(&out) { out.clear(); }

  // buf_ may point at own_, which copying/moving would leave aliased or
  // dangling; writers are scoped helpers, never passed by value.
  BufWriter(const BufWriter&) = delete;
  BufWriter& operator=(const BufWriter&) = delete;

  void u8(std::uint8_t v) { buf_->push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_elem) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) write_elem(*this, e);
  }

  std::vector<std::uint8_t> take() { return std::move(*buf_); }
  std::size_t size() const { return buf_->size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_->insert(buf_->end(), b, b + n);
  }
  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* buf_;
};

/// Drop-in BufWriter stand-in that only counts bytes: encoded_size() runs the
/// encoder against this, so wire-volume accounting never heap-allocates.
class SizeWriter {
 public:
  void u8(std::uint8_t) { n_ += 1; }
  void u32(std::uint32_t) { n_ += 4; }
  void u64(std::uint64_t) { n_ += 8; }
  void i64(std::int64_t) { n_ += 8; }
  void str(const std::string& s) { n_ += 4 + s.size(); }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_elem) {
    n_ += 4;
    for (const auto& e : v) write_elem(*this, e);
  }

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
};

class BufReader {
 public:
  explicit BufReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    SNOW_CHECK(pos_ + 1 <= buf_.size());
    return buf_[pos_++];
  }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof v); return v; }

  std::string str() {
    std::uint32_t n = u32();
    SNOW_CHECK(pos_ + n <= buf_.size());
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_elem) {
    std::uint32_t n = u32();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(read_elem(*this));
    return v;
  }

  bool done() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    SNOW_CHECK(pos_ + n <= buf_.size());
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace snowkit
