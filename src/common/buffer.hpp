// Byte-buffer reader/writer used by the wire codec (src/msg/codec.cpp).
//
// The threaded runtime serializes every message through this codec so that
// protocols exchange bytes, not shared pointers — the closest in-process
// equivalent of the gRPC deployment the reproduction hint calls for.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace snowkit {

/// Thrown by BufReader on malformed bytes (truncation, overlong varints,
/// absurd lengths).  Trusted-input entry points (decode_message,
/// decode_trace) catch it and abort — in-process bytes are produced by our
/// own encoder, so corruption there is an invariant violation.  Untrusted
/// entry points (try_decode_message, fed by the TCP transport) catch it and
/// error-return so a hostile peer cannot crash the process.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class BufWriter {
 public:
  /// Writes into an internally owned buffer (retrieve with take()).
  BufWriter() : buf_(&own_) {}

  /// Writes into `out`, clearing it first but KEEPING its capacity — the
  /// ThreadRuntime fast path encodes every message into a recycled buffer,
  /// so steady-state sends allocate nothing.
  explicit BufWriter(std::vector<std::uint8_t>& out) : buf_(&out) { out.clear(); }

  // buf_ may point at own_, which copying/moving would leave aliased or
  // dangling; writers are scoped helpers, never passed by value.
  BufWriter(const BufWriter&) = delete;
  BufWriter& operator=(const BufWriter&) = delete;

  void u8(std::uint8_t v) { buf_->push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }

  /// LEB128 varint: 1 byte for values < 128, the common case for object ids,
  /// tags, masks lengths and delta-coded positions on the wire.
  void uv(std::uint64_t v) {
    while (v >= 0x80) {
      buf_->push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_->push_back(static_cast<std::uint8_t>(v));
  }

  /// ZigZag-mapped varint for signed values near zero.
  void zz(std::int64_t v) {
    uv((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_elem) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) write_elem(*this, e);
  }

  /// Varint-length-prefixed vector (the compact sibling of vec()).
  template <typename T, typename Fn>
  void cvec(const std::vector<T>& v, Fn&& write_elem) {
    uv(v.size());
    for (const auto& e : v) write_elem(*this, e);
  }

  /// A 0/1 mask bit-packed to ceil(n/8) bytes after a varint length.  Bytes
  /// other than 0/1 would decode as 1 — fail fast at the violating caller
  /// instead of corrupting silently.
  void mask(const std::vector<std::uint8_t>& m) {
    uv(m.size());
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      SNOW_CHECK_MSG(m[i] <= 1, "mask byte " << int(m[i]) << " is not 0/1");
      if (m[i] != 0) acc |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        buf_->push_back(acc);
        acc = 0;
      }
    }
    if (m.size() % 8 != 0) buf_->push_back(acc);
  }

  std::vector<std::uint8_t> take() { return std::move(*buf_); }
  std::size_t size() const { return buf_->size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_->insert(buf_->end(), b, b + n);
  }
  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* buf_;
};

/// Drop-in BufWriter stand-in that only counts bytes: encoded_size() runs the
/// encoder against this, so wire-volume accounting never heap-allocates.
class SizeWriter {
 public:
  void u8(std::uint8_t) { n_ += 1; }
  void u32(std::uint32_t) { n_ += 4; }
  void u64(std::uint64_t) { n_ += 8; }
  void i64(std::int64_t) { n_ += 8; }

  void uv(std::uint64_t v) {
    ++n_;
    while (v >= 0x80) {
      ++n_;
      v >>= 7;
    }
  }

  void zz(std::int64_t v) {
    uv((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
  }

  void str(const std::string& s) { n_ += 4 + s.size(); }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_elem) {
    n_ += 4;
    for (const auto& e : v) write_elem(*this, e);
  }

  template <typename T, typename Fn>
  void cvec(const std::vector<T>& v, Fn&& write_elem) {
    uv(v.size());
    for (const auto& e : v) write_elem(*this, e);
  }

  void mask(const std::vector<std::uint8_t>& m) {
    uv(m.size());
    n_ += (m.size() + 7) / 8;
  }

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
};

/// Bounds-checked reader; every malformation throws CodecError (see above
/// for who catches it and how).
class BufReader {
 public:
  explicit BufReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof v); return v; }

  std::uint64_t uv() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw CodecError("varint longer than 10 bytes");
  }

  std::int64_t zz() {
    const std::uint64_t u = uv();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_elem) {
    std::uint32_t n = u32();
    if (n > buf_.size()) throw CodecError("vec length exceeds buffer");
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(read_elem(*this));
    return v;
  }

  template <typename T, typename Fn>
  std::vector<T> cvec(Fn&& read_elem) {
    const std::uint64_t n = uv();
    if (n > buf_.size()) throw CodecError("cvec length exceeds buffer");
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_elem(*this));
    return v;
  }

  std::vector<std::uint8_t> mask() {
    const std::uint64_t n = uv();
    if (n > 8 * buf_.size()) throw CodecError("mask length exceeds buffer");
    std::vector<std::uint8_t> m(n, 0);
    std::uint8_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (i % 8 == 0) acc = u8();
      m[i] = (acc >> (i % 8)) & 1;
    }
    return m;
  }

  bool done() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > buf_.size()) throw CodecError("truncated buffer");
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace snowkit
