// Algorithm C (paper §9, Pseudocodes 5 and 7): SNW + one-round READ
// transactions in the MWMR setting, no client-to-client communication.
// A READ sends, in a single parallel round, get-tag-arr to the coordinator
// s* and read-vals to every server it reads; servers respond non-blocking,
// but a read-vals response may carry multiple versions — up to the number of
// concurrent WRITE transactions (the |W| entry of Fig. 1(b)).
//
// Version selection.  Pseudocode 7 returns the value whose key matches the
// coordinator's kappa_j.  Because read-vals may overtake a concurrent
// write-val in the asynchronous network, kappa_j can be absent from the
// returned Vals_j; snowkit's reader therefore runs a *feasibility descent*:
// it takes the largest List position t <= t_r such that, for every object
// read, the newest position-<=-t key for that object is present in the
// returned Vals.  Position t* (the newest write that real-time-precedes the
// READ) is always feasible — every write in List at position <= t* had all
// its write-vals processed before the READ was invoked — so the descent
// terminates and the chosen cut satisfies Lemma 20 (see tests/algo_c and
// DESIGN.md §5).
//
// Options:
//  * gc_versions / finalize (DEFAULT ON): the bounded-version extension.
//    Writers piggyback their assigned List position — and the coordinator's
//    read watermark — to servers on a finalize fan-out (no extra round), and
//    report completion back to the coordinator, whose watermark rule
//    (proto/version_store.hpp) retires versions no in-flight or future READ
//    can legally be served.  This bounds read-vals responses by |W|+1
//    versions and the tag-array history by the live window, but — per the
//    race above — can make a descent fail; the reader then retries the whole
//    READ (giving up one-round, counted in `rounds`).  The ablation bench
//    measures both effects; gc_versions=false restores the paper's
//    keep-everything Vals for comparison.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "proto/api.hpp"

namespace snowkit {

struct AlgoCOptions {
  /// Which server shard acts as coordinator s* (index < server_count()).
  std::size_t coordinator{0};
  /// Finalize fan-out + watermark version GC (bounded responses).  Off means
  /// the paper's literal keep-everything Vals, which grows without bound.
  bool gc_versions{true};
  /// 1 = the paper's failure-free servers; 2 = crash-tolerant shards (see
  /// AlgoBOptions::replicas and proto/replica.hpp).
  std::size_t replicas{1};
  /// Directory for per-node WAL files; empty = in-memory WALs (sim).
  std::string wal_dir;
  /// FAULT INJECTION ONLY: ack writers before the backup confirms.
  bool unsafe_ack{false};
};

std::unique_ptr<ProtocolSystem> build_algo_c(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoCOptions opts = {});

}  // namespace snowkit
